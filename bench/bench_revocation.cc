// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C6: revocation policies (§3.2) -- the guaranteed "clean-up
// operation, e.g., zeroing-out memory or flushing CPU cache".
// Shape to check: base revocation cost is per-page (unmap + TLB flush);
// the zero and flush policies add linear per-page work on top; the
// obfuscating combination is their sum.

#include <benchmark/benchmark.h>

#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

void RevocationWithPolicy(benchmark::State& state, uint8_t policy_mask) {
  TestbedOptions options;
  options.memory_bytes = 512ull << 20;
  auto testbed = Testbed::Create(options);
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kMiB;
  const AddrRange region{testbed->Scratch(kMiB), size};
  const auto created = testbed->monitor().CreateDomain(0, "revokee");
  if (!created.ok()) {
    std::abort();
  }

  uint64_t sim = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto cap = testbed->OsMemCap(region);
    const auto grant = testbed->monitor().GrantMemory(
        0, *cap, created->handle, region, Perms(Perms::kRW), CapRights(CapRights::kAll),
        RevocationPolicy(policy_mask));
    if (!grant.ok()) {
      state.SkipWithError(grant.status().ToString().c_str());
      return;
    }
    const uint64_t before = testbed->machine().cycles().cycles();
    state.ResumeTiming();
    benchmark::DoNotOptimize(testbed->monitor().Revoke(0, grant->granted));
    state.PauseTiming();
    sim += testbed->machine().cycles().cycles() - before;
    ++ops;
    state.ResumeTiming();
  }
  state.counters["region_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(sim) / static_cast<double>(ops));
}

void BM_Revoke_NoPolicy(benchmark::State& state) {
  RevocationWithPolicy(state, RevocationPolicy::kNone);
}
void BM_Revoke_ZeroMemory(benchmark::State& state) {
  RevocationWithPolicy(state, RevocationPolicy::kZeroMemory);
}
void BM_Revoke_FlushCache(benchmark::State& state) {
  RevocationWithPolicy(state, RevocationPolicy::kFlushCache);
}
void BM_Revoke_Obfuscate(benchmark::State& state) {
  RevocationWithPolicy(state, RevocationPolicy::kObfuscate);
}
BENCHMARK(BM_Revoke_NoPolicy)->Arg(1)->Arg(4)->Arg(16)->Iterations(10);
BENCHMARK(BM_Revoke_ZeroMemory)->Arg(1)->Arg(4)->Arg(16)->Iterations(10);
BENCHMARK(BM_Revoke_FlushCache)->Arg(1)->Arg(4)->Arg(16)->Iterations(10);
BENCHMARK(BM_Revoke_Obfuscate)->Arg(1)->Arg(4)->Arg(16)->Iterations(10);

// Revoking a SHARE vs revoking a GRANT (the grant restores ownership).
void BM_RevokeShareVsGrant(benchmark::State& state) {
  const bool use_grant = state.range(0) == 1;
  TestbedOptions options;
  auto testbed = Testbed::Create(options);
  const AddrRange region{testbed->Scratch(kMiB), kMiB};
  const auto created = testbed->monitor().CreateDomain(0, "peer");
  uint64_t sim = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CapId cap = kInvalidCap;
    if (use_grant) {
      cap = testbed->monitor()
                .GrantMemory(0, *testbed->OsMemCap(region), created->handle, region,
                             Perms(Perms::kRW), CapRights(CapRights::kAll),
                             RevocationPolicy{})
                ->granted;
    } else {
      cap = *testbed->monitor().ShareMemory(0, *testbed->OsMemCap(region), created->handle,
                                            region, Perms(Perms::kRW), CapRights{},
                                            RevocationPolicy{});
    }
    const uint64_t before = testbed->machine().cycles().cycles();
    state.ResumeTiming();
    benchmark::DoNotOptimize(testbed->monitor().Revoke(0, cap));
    state.PauseTiming();
    sim += testbed->machine().cycles().cycles() - before;
    ++ops;
    state.ResumeTiming();
  }
  state.counters["is_grant"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(sim) / static_cast<double>(ops));
}
BENCHMARK(BM_RevokeShareVsGrant)->Arg(0)->Arg(1)->Iterations(20);

// Stale-TLB hazard: when a domain loses access (here the OS, granting a
// region away while its TLB is hot), the backend MUST flush the cores
// running it -- otherwise stale translations would keep the access alive.
// Counts the flushes and proves the access actually dies.
void BM_GrantFlushesStaleTlb(benchmark::State& state) {
  TestbedOptions options;
  auto testbed = Testbed::Create(options);
  const AddrRange region{testbed->Scratch(kMiB), kMiB};
  const auto created = testbed->monitor().CreateDomain(0, "sink");
  uint64_t flushes = 0;
  uint64_t killed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Touch the region from the OS so core 0's TLB caches the translation.
    (void)testbed->machine().CheckedRead64(0, region.base);
    const uint64_t before = testbed->machine().cpu(0).tlb().stats().flushes;
    const auto cap = testbed->OsMemCap(region);
    state.ResumeTiming();
    const auto grant = testbed->monitor().GrantMemory(0, *cap, created->handle, region,
                                                      Perms(Perms::kRW),
                                                      CapRights(CapRights::kAll),
                                                      RevocationPolicy{});
    state.PauseTiming();
    flushes += testbed->machine().cpu(0).tlb().stats().flushes - before;
    if (!testbed->machine().CheckedRead64(0, region.base).ok()) {
      ++killed;  // the stale access is really gone
    }
    // Take the region back for the next round.
    if (grant.ok()) {
      (void)testbed->monitor().Revoke(0, grant->granted);
    }
    state.ResumeTiming();
  }
  state.counters["tlb_flushes/op"] = benchmark::Counter(
      static_cast<double>(flushes) / static_cast<double>(state.iterations()));
  state.counters["access_revoked"] = benchmark::Counter(
      static_cast<double>(killed) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_GrantFlushesStaleTlb)->Iterations(20);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
