// Copyright 2026 The Tyche Reproduction Authors.
// Audit-journal overhead. Two questions:
//
//  1. Raw append cost: chain hash per record (enabled), nothing (disabled),
//     and the amortized Schnorr signature when checkpoints are on.
//  2. Dispatch-path cost: with the journal disabled the wrapper must stay
//     within 2x of the telemetry-off fast path from bench_telemetry (one
//     extra relaxed load and a branch); with it enabled the cost of the
//     record build plus chain hash is visible and bounded.
//
// Like bench_telemetry, the dispatched op is kTakeInterrupt with an empty
// queue so the measurement is dispatch plumbing, not capability work.

#include <benchmark/benchmark.h>

#include "src/crypto/schnorr.h"
#include "src/monitor/dispatch.h"
#include "src/os/testbed.h"
#include "src/support/journal.h"

namespace tyche {
namespace {

JournalRecord SampleRecord() {
  JournalRecord record;
  record.span = 7;
  record.event = static_cast<uint8_t>(JournalEvent::kShareMemory);
  record.domain = 1;
  record.dst = 2;
  record.cap = 42;
  record.parent = 3;
  record.base = 0x100000;
  record.size = 0x4000;
  return record;
}

// Appends grow the in-memory log, so drop it outside the timed region every
// 64k records to keep the working set (and allocator effects) bounded.
void AppendLoop(benchmark::State& state, Journal& journal) {
  const JournalRecord record = SampleRecord();
  size_t appended = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.Append(record));
    if (++appended == (64u << 10)) {
      state.PauseTiming();
      journal.Clear();
      appended = 0;
      state.ResumeTiming();
    }
  }
}

void BM_JournalAppend_Disabled(benchmark::State& state) {
  Journal journal;
  journal.set_enabled(false);
  AppendLoop(state, journal);
}

void BM_JournalAppend_Enabled(benchmark::State& state) {
  Journal journal;
  AppendLoop(state, journal);
}

void BM_JournalAppend_Checkpointed(benchmark::State& state) {
  Journal journal(/*checkpoint_interval=*/64);
  const uint8_t seed[] = {'b', 'e', 'n', 'c', 'h'};
  const SchnorrKeyPair key = DeriveKeyPair(seed);
  journal.set_signer([key](const Digest& digest) { return SchnorrSign(key.priv, digest); });
  AppendLoop(state, journal);
}

BENCHMARK(BM_JournalAppend_Disabled);
BENCHMARK(BM_JournalAppend_Enabled);
BENCHMARK(BM_JournalAppend_Checkpointed);

void DispatchLoop(benchmark::State& state, bool journal_on) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::abort();
  }
  Monitor& monitor = testbed->monitor();
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(false);
  monitor.audit().set_enabled(journal_on);

  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  size_t dispatched = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dispatch(&monitor, 0, regs));
    if (journal_on && ++dispatched == (64u << 10)) {
      state.PauseTiming();
      monitor.audit().journal().Clear();
      dispatched = 0;
      state.ResumeTiming();
    }
  }
  state.counters["journal_records"] =
      static_cast<double>(monitor.audit().journal().size());
}

// The acceptance bar: within 2x of BM_Dispatch_TelemetryOff.
void BM_Dispatch_JournalOff(benchmark::State& state) {
  DispatchLoop(state, /*journal_on=*/false);
}
void BM_Dispatch_JournalOn(benchmark::State& state) {
  DispatchLoop(state, /*journal_on=*/true);
}

BENCHMARK(BM_Dispatch_JournalOff);
BENCHMARK(BM_Dispatch_JournalOn);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
