// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C7: TCB minimality (§3.5 / §4).
// Paper claims: the monitor is "minimal (<10K LOC)" and "orders of magnitude
// smaller ... than a typical monolithic kernel or hypervisor", with a
// "narrow API". This harness measures OUR reproduction the same way:
// lines of code per module (what a verifier must trust), the external API
// surface, and the per-domain metadata footprint.
//
// Not a timing benchmark: prints a table.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/monitor/monitor.h"
#include "src/monitor/vtx_backend.h"
#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

struct ModuleCount {
  std::string name;
  uint64_t files = 0;
  uint64_t lines = 0;
  uint64_t code_lines = 0;  // excluding blanks and pure comments
};

ModuleCount CountModule(const std::filesystem::path& dir, const std::string& name) {
  ModuleCount count;
  count.name = name;
  if (!std::filesystem::exists(dir)) {
    return count;
  }
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    ++count.files;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      ++count.lines;
      const size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) {
        continue;  // blank
      }
      if (line.compare(first, 2, "//") == 0) {
        continue;  // comment
      }
      ++count.code_lines;
    }
  }
  return count;
}

std::filesystem::path FindSourceRoot() {
  // Walk up from the CWD until a directory containing src/monitor appears.
  std::filesystem::path current = std::filesystem::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (std::filesystem::exists(current / "src" / "monitor")) {
      return current;
    }
    current = current.parent_path();
  }
  return {};
}

int Run() {
  std::printf("=== C7: TCB accounting ===\n\n");
  const std::filesystem::path root = FindSourceRoot();
  if (root.empty()) {
    std::printf("source tree not found from CWD; LoC table skipped\n");
  } else {
    // The TRUSTED computing base is what enforces + attests isolation:
    // capability engine, monitor, backends, crypto. The hardware model and
    // the OS are explicitly NOT in the TCB.
    const std::vector<std::pair<std::string, std::string>> modules = {
        {"src/capability", "capability engine   [TCB]"},
        {"src/monitor", "isolation monitor   [TCB]"},
        {"src/crypto", "crypto (hash/sign)  [TCB]"},
        {"src/support", "support lib         [TCB]"},
        {"src/tyche", "libtyche            [untrusted]"},
        {"src/os", "LinOS               [untrusted]"},
        {"src/hw", "hardware model      [substrate]"},
        {"src/baseline", "baselines           [harness]"},
    };
    std::printf("%-34s %6s %8s %10s\n", "module", "files", "lines", "code-lines");
    uint64_t tcb_code = 0;
    for (const auto& [dir, label] : modules) {
      const ModuleCount count = CountModule(root / dir, label);
      std::printf("%-34s %6llu %8llu %10llu\n", label.c_str(),
                  static_cast<unsigned long long>(count.files),
                  static_cast<unsigned long long>(count.lines),
                  static_cast<unsigned long long>(count.code_lines));
      if (label.find("[TCB]") != std::string::npos) {
        tcb_code += count.code_lines;
      }
    }
    std::printf("\nTCB total (code lines):            %llu   (paper target: < 10,000)\n",
                static_cast<unsigned long long>(tcb_code));
    std::printf("Linux kernel for comparison:       > 20,000,000\n");
  }

  std::printf("\n--- API surface ---\n");
  std::printf("monitor API operations:            %d\n", static_cast<int>(ApiOp::kOpCount));
  for (int op = 0; op < static_cast<int>(ApiOp::kOpCount); ++op) {
    std::printf("  %2d. %s\n", op + 1, ApiOpName(static_cast<ApiOp>(op)));
  }
  std::printf("(Linux syscall surface for comparison: ~450 syscalls + ioctls)\n");

  std::printf("\n--- per-domain monitor metadata ---\n");
  auto testbed = Testbed::Create(TestbedOptions{});
  if (testbed.ok()) {
    auto* backend = dynamic_cast<VtxBackend*>(&testbed->monitor().backend());
    const uint64_t before = backend != nullptr ? backend->TotalTableFrames() : 0;
    const TycheImage image = TycheImage::MakeDemo("probe", kPageSize, 0);
    LoadOptions load;
    load.base = testbed->Scratch(1ull << 20);
    load.size = 1ull << 20;
    load.cores = {1};
    load.core_caps = {*testbed->OsCoreCap(1)};
    auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
    if (enclave.ok() && backend != nullptr) {
      std::printf("EPT table frames for a 1 MiB domain: %llu (%llu KiB)\n",
                  static_cast<unsigned long long>(backend->TotalTableFrames() - before),
                  static_cast<unsigned long long>((backend->TotalTableFrames() - before) *
                                                  4));
    }
    std::printf("capability-tree nodes after 1 load:  %llu\n",
                static_cast<unsigned long long>(testbed->monitor().engine().total_caps()));
    std::printf("monitor API calls for 1 load:        %llu\n",
                static_cast<unsigned long long>(testbed->monitor().stats().TotalCalls()));
  }
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
