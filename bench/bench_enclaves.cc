// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C5: Tyche-enclaves vs the SGX model (§4.2).
// Shapes to check:
//   - build cost: SGX pays per-EPC-page EADD+EEXTEND; Tyche pays grants +
//     measurement (both linear in size, different constants);
//   - enclaves per host: SGX capped by the EPC, Tyche by total memory;
//   - nesting: SGX depth 0, Tyche arbitrary;
//   - address reuse: SGX forbids, Tyche allows (reported as a counter).

#include <benchmark/benchmark.h>

#include "src/baseline/sgx_model.h"
#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

// --- Build + teardown, vs enclave size ---

void BM_TycheEnclaveLifecycle(benchmark::State& state) {
  TestbedOptions options;
  options.memory_bytes = 512ull << 20;
  auto testbed = Testbed::Create(options);
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kMiB;
  TycheImage image("e");
  ImageSegment text;
  text.name = "text";
  text.size = size / 2;  // half the enclave is measured content
  text.perms = Perms(Perms::kRWX);
  text.measured = true;
  text.data.assign(4096, 0x11);
  (void)image.AddSegment(std::move(text));
  image.set_entry_offset(0);

  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    LoadOptions load;
    load.base = testbed->Scratch(kMiB);
    load.size = size;
    load.cores = {1};
    load.core_caps = {*testbed->OsCoreCap(1)};
    auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
    if (!enclave.ok()) {
      state.SkipWithError(enclave.status().ToString().c_str());
      return;
    }
    if (!testbed->monitor().DestroyDomain(0, enclave->handle()).ok()) {
      state.SkipWithError("destroy failed");
      return;
    }
    ++ops;
  }
  state.counters["enclave_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_TycheEnclaveLifecycle)->Arg(1)->Arg(4)->Arg(16)->Iterations(20);

void BM_SgxEnclaveLifecycle(benchmark::State& state) {
  CycleAccount cycles;
  SgxProcessor sgx(1u << 20, &cycles);  // effectively unlimited EPC
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kMiB;
  const std::vector<uint8_t> page(kPageSize, 0x11);
  const uint64_t start = cycles.cycles();
  uint64_t ops = 0;
  uint32_t process = 0;
  for (auto _ : state) {
    // Fresh process id per round: SGX forbids ELRANGE reuse.
    const auto id = sgx.Ecreate(process++, AddrRange{1ull << 32, size});
    if (!id.ok()) {
      state.SkipWithError("ecreate failed");
      return;
    }
    // Populate half the range (mirroring the Tyche benchmark's content).
    for (uint64_t off = 0; off < size / 2; off += kPageSize) {
      (void)sgx.Eadd(*id, off, std::span<const uint8_t>(page));
    }
    (void)sgx.Einit(*id);
    (void)sgx.Eremove(*id);
    ++ops;
  }
  state.counters["enclave_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(cycles.cycles() - start) /
                         static_cast<double>(ops));
}
BENCHMARK(BM_SgxEnclaveLifecycle)->Arg(1)->Arg(4)->Arg(16)->Iterations(20);

// --- Enclaves per host until the platform says no ---

void BM_TycheEnclavesPerHost(benchmark::State& state) {
  for (auto _ : state) {
    TestbedOptions options;
    options.memory_bytes = 256ull << 20;
    // Give the monitor a 32 MiB metadata pool so the experiment is bounded
    // by machine memory rather than by EPT-frame budget (with the default
    // 4 MiB pool the answer is ~220 -- still far beyond the SGX EPC story,
    // and a knob the OS controls at boot).
    options.monitor_memory_bytes = 32ull << 20;
    auto testbed = Testbed::Create(options);
    const TycheImage image = TycheImage::MakeDemo("many", kPageSize, 0);
    int built = 0;
    for (int i = 0; i < 1024; ++i) {
      LoadOptions load;
      load.base = testbed->Scratch(kMiB + static_cast<uint64_t>(i) * 128 * 1024);
      load.size = 128 * 1024;
      load.cores = {1};
      load.core_caps = {*testbed->OsCoreCap(1)};
      if (load.base + load.size > testbed->machine().memory().size()) {
        break;
      }
      auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
      if (!enclave.ok()) {
        break;
      }
      ++built;
    }
    state.counters["enclaves_built"] = built;
  }
}
BENCHMARK(BM_TycheEnclavesPerHost)->Iterations(1);

void BM_SgxEnclavesPerHost(benchmark::State& state) {
  // Classic client EPC: 93.5 MiB usable ~= 23936 pages. Each enclave here
  // uses 32 pages (128 KiB), mirroring the Tyche benchmark.
  for (auto _ : state) {
    CycleAccount cycles;
    SgxProcessor sgx(23936, &cycles);
    const std::vector<uint8_t> page(kPageSize, 1);
    int built = 0;
    for (int i = 0; i < 1024; ++i) {
      const auto id = sgx.Ecreate(static_cast<uint32_t>(i), AddrRange{1ull << 32, 128 * 1024});
      if (!id.ok()) {
        break;
      }
      bool ok = true;
      for (int p = 0; p < 32; ++p) {
        if (!sgx.Eadd(*id, static_cast<uint64_t>(p) * kPageSize,
                      std::span<const uint8_t>(page))
                 .ok()) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        break;
      }
      (void)sgx.Einit(*id);
      ++built;
    }
    state.counters["enclaves_built"] = built;
  }
}
BENCHMARK(BM_SgxEnclavesPerHost)->Iterations(1);

// --- Nesting depth until failure ---

void BM_TycheNestingDepth(benchmark::State& state) {
  for (auto _ : state) {
    TestbedOptions options;
    options.memory_bytes = 512ull << 20;
    auto testbed = Testbed::Create(options);
    const TycheImage image = TycheImage::MakeDemo("nest", kPageSize, 0);
    LoadOptions load;
    load.base = testbed->Scratch(kMiB);
    load.size = 256 * kMiB;
    load.cores = {1};
    load.core_caps = {*testbed->OsCoreCap(1)};
    auto current = Enclave::Create(&testbed->monitor(), 0, image, load);
    int depth = 0;
    if (current.ok()) {
      std::vector<Enclave> chain;
      chain.push_back(std::move(*current));
      uint64_t size = 256 * kMiB;
      while (size > 64 * 1024) {
        if (!chain.back().Enter(1).ok()) {
          break;
        }
        size /= 2;
        auto child = chain.back().SpawnNested(
            1, image, chain.back().base() + chain.back().size() - size, size, {1});
        if (!child.ok()) {
          break;
        }
        chain.push_back(std::move(*child));
        ++depth;
      }
    }
    state.counters["max_depth"] = depth;
  }
}
BENCHMARK(BM_TycheNestingDepth)->Iterations(1);

void BM_SgxNestingDepth(benchmark::State& state) {
  for (auto _ : state) {
    CycleAccount cycles;
    SgxProcessor sgx(4096, &cycles);
    const std::vector<uint8_t> page(64, 1);
    const auto outer = sgx.Ecreate(1, AddrRange{1ull << 32, kMiB});
    (void)sgx.Eadd(*outer, 0, std::span<const uint8_t>(page));
    (void)sgx.Einit(*outer);
    (void)sgx.Eenter(*outer);
    int depth = 0;
    // Any attempt to create an enclave from enclave mode fails.
    if (sgx.Ecreate(1, AddrRange{1ull << 33, kMiB}).ok()) {
      ++depth;
    }
    (void)sgx.Eexit(*outer);
    state.counters["max_depth"] = depth;
  }
}
BENCHMARK(BM_SgxNestingDepth)->Iterations(1);

// --- Address reuse after teardown ---

void BM_AddressReuse(benchmark::State& state) {
  const bool tyche = state.range(0) == 1;
  for (auto _ : state) {
    int reuses = 0;
    if (tyche) {
      TestbedOptions options;
      auto testbed = Testbed::Create(options);
      const TycheImage image = TycheImage::MakeDemo("reuse", kPageSize, 0);
      for (int i = 0; i < 16; ++i) {
        LoadOptions load;
        load.base = testbed->Scratch(kMiB);  // SAME address every round
        load.size = kMiB;
        load.cores = {1};
        load.core_caps = {*testbed->OsCoreCap(1)};
        auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
        if (!enclave.ok() ||
            !testbed->monitor().DestroyDomain(0, enclave->handle()).ok()) {
          break;
        }
        ++reuses;
      }
    } else {
      CycleAccount cycles;
      SgxProcessor sgx(4096, &cycles);
      const std::vector<uint8_t> page(64, 1);
      for (int i = 0; i < 16; ++i) {
        const auto id = sgx.Ecreate(1, AddrRange{1ull << 32, kMiB});  // SAME range
        if (!id.ok()) {
          break;
        }
        (void)sgx.Eadd(*id, 0, std::span<const uint8_t>(page));
        (void)sgx.Einit(*id);
        (void)sgx.Eremove(*id);
        ++reuses;
      }
    }
    state.counters["successful_reuses_of_16"] = reuses;
  }
  state.counters["tyche"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AddressReuse)->Arg(0)->Arg(1)->Iterations(1);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
