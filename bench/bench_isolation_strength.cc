// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C8: the attack matrix. Each row is an attack from the paper's
// problem statement (§2.2); the columns show whether it succeeds on the
// commodity baseline, on the SGX model, and on the isolation monitor.
// The paper's argument holds iff the last column is all-BLOCKED while the
// baselines leak.
//
// Not a timing benchmark: prints a table.

#include <cstdio>

#include "src/baseline/monopoly.h"
#include "src/baseline/sgx_model.h"
#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

const char* Cell(bool attack_succeeds) { return attack_succeeds ? "LEAKS   " : "blocked "; }
const char* CellNa() { return "n/a     "; }

int Run() {
  std::printf("=== C8: isolation strength (attack matrix) ===\n\n");

  // --- Set up all three systems ---
  CommodityStack stack;
  const uint32_t kernel = stack.AddActor("kernel", PrivLevel::kGuestKernel, 0);
  const uint32_t app = stack.AddActor("app", PrivLevel::kUserProcess, kernel);
  (void)stack.Assign(kernel, app, AddrRange{8 * kMiB, kMiB});

  CycleAccount sgx_cycles;
  SgxProcessor sgx(4096, &sgx_cycles);
  const auto sgx_enclave = sgx.Ecreate(1, AddrRange{1ull << 32, kMiB});
  const std::vector<uint8_t> page(64, 1);
  (void)sgx.Eadd(*sgx_enclave, 0, std::span<const uint8_t>(page));
  (void)sgx.Einit(*sgx_enclave);

  TestbedOptions options;
  options.with_nic = true;
  auto testbed = Testbed::Create(options);
  const TycheImage image = TycheImage::MakeDemo("victim", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = testbed->Scratch(kMiB);
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {*testbed->OsCoreCap(1)};
  auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
  if (!enclave.ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  auto* nic = static_cast<DmaEngine*>(testbed->machine().FindDevice(Testbed::kNicBdf));

  std::printf("%-44s %-10s %-10s %-10s\n", "attack", "commodity", "sgx-model", "tyche");
  std::printf("%.100s\n",
              "--------------------------------------------------------------------------"
              "--------------------------");

  // 1. Privileged code reads protected user memory.
  {
    const bool commodity = stack.CanAccess(kernel, AddrRange{8 * kMiB, kPageSize});
    // SGX: EPC reads by the kernel are blocked (that is its one job).
    const bool sgx_leak = false;
    const bool tyche = testbed->machine().CheckedRead64(0, enclave->base()).ok();
    std::printf("%-44s %-10s %-10s %-10s\n", "1. kernel reads protected memory",
                Cell(commodity), Cell(sgx_leak), Cell(tyche));
  }

  // 2. Privileged code tampers with protected memory (integrity).
  {
    const bool commodity = stack.CanAccess(kernel, AddrRange{8 * kMiB, kPageSize});
    const bool tyche = testbed->machine().CheckedWrite64(0, enclave->base(), 0).ok();
    std::printf("%-44s %-10s %-10s %-10s\n", "2. kernel overwrites protected memory",
                Cell(commodity), Cell(false), Cell(tyche));
  }

  // 3. Enclave/library code reaches host memory it was never given.
  {
    // Commodity: a library shares the process address space by definition.
    // SGX: enclave code CAN dereference host memory (implicit inclusion).
    bool tyche = false;
    (void)enclave->Enter(1);
    tyche = testbed->machine()
                .CheckedRead64(1, testbed->Scratch(64 * kMiB))
                .ok();
    (void)enclave->Exit(1);
    std::printf("%-44s %-10s %-10s %-10s\n", "3. compartment reads host memory",
                Cell(true), Cell(SgxProcessor::kEnclaveSeesHostMemory), Cell(tyche));
  }

  // 4. Malicious driver DMA into protected memory.
  {
    const bool tyche =
        nic->Copy(&testbed->machine(), enclave->base(), testbed->Scratch(64 * kMiB), 64)
            .ok();
    // Commodity: devices DMA anywhere unless the kernel programs the IOMMU
    // (and the kernel is the attacker). SGX: EPC is DMA-protected.
    std::printf("%-44s %-10s %-10s %-10s\n", "4. driver DMA into protected memory",
                Cell(true), Cell(false), Cell(tyche));
  }

  // 5. Host forges/replays an attestation.
  {
    RemoteVerifier verifier(testbed->machine().tpm().attestation_key(),
                            testbed->golden_firmware(), testbed->golden_monitor());
    auto report = enclave->Attest(0, 1);
    bool tyche_forge = false;
    if (report.ok()) {
      DomainAttestation forged = *report;
      forged.measurement.bytes[0] ^= 1;
      forged.report_digest = forged.ComputeDigest();
      tyche_forge = verifier
                        .VerifyDomain(forged, testbed->monitor().public_key(), 1, nullptr)
                        .ok();
    }
    // Commodity systems have nothing to forge (no attestation at all).
    std::printf("%-44s %-10s %-10s %-10s\n", "5. forge attestation of a victim",
                CellNa(), Cell(false), Cell(tyche_forge));
  }

  // 6. Hide a sharing relationship from the verifier.
  {
    // Share the enclave's heap with the OS... impossible: the OS holds no
    // capability. Instead the OS shares some OTHER region and claims it is
    // the enclave's: the report's refcounts are signed, so the lie fails.
    RemoteVerifier verifier(testbed->machine().tpm().attestation_key(),
                            testbed->golden_firmware(), testbed->golden_monitor());
    auto report = enclave->Attest(0, 2);
    bool tyche_hide = false;
    if (report.ok()) {
      DomainAttestation doctored = *report;
      for (ResourceClaim& claim : doctored.resources) {
        claim.ref_count = 1;
      }
      doctored.report_digest = doctored.ComputeDigest();
      tyche_hide = verifier
                       .VerifyDomain(doctored, testbed->monitor().public_key(), 2, nullptr)
                       .ok();
    }
    std::printf("%-44s %-10s %-10s %-10s\n", "6. hide sharing from the verifier",
                CellNa(), CellNa(), Cell(tyche_hide));
  }

  // 7. Use revocation to read leftover secrets.
  {
    (void)enclave->Enter(1);
    (void)testbed->machine().CheckedWrite64(1, enclave->base() + kPageSize, 0x5ec4e7);
    (void)enclave->Exit(1);
    CapId granted = kInvalidCap;
    testbed->monitor().engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == enclave->domain() && cap.kind == ResourceKind::kMemory &&
          cap.range.Contains(enclave->base() + kPageSize)) {
        granted = cap.id;
      }
    });
    (void)testbed->monitor().Revoke(0, granted);
    const auto read = testbed->machine().CheckedRead64(0, enclave->base() + kPageSize);
    const bool tyche = read.ok() && *read == 0x5ec4e7;
    // Commodity: freed memory is returned unzeroed unless the OS decides
    // otherwise -- and here the OS is the attacker.
    std::printf("%-44s %-10s %-10s %-10s\n", "7. read secrets after revocation",
                Cell(true), Cell(false), Cell(tyche));
  }

  std::printf("\ncolumns: commodity = privilege hierarchy (no monitor); sgx-model = "
              "enclave-only\npoint solution; tyche = isolation monitor. The paper's claim "
              "is the tyche column.\n");
  const auto audit = testbed->monitor().AuditHardwareConsistency();
  std::printf("\nfinal hardware/capability audit: %s\n",
              audit.ok() && *audit ? "OK" : "FAILED");
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
