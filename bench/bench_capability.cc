// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C2: capability-engine operation costs (§4.1's grant / share /
// revoke tree). Shape to check: individual operations stay cheap as the
// tree grows; cascading revocation is linear in the subtree it kills,
// including in the presence of circular sharing.

#include <benchmark/benchmark.h>

#include "src/capability/engine.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint64_t kSpace = 1ull << 40;  // plenty of disjoint ranges

// An engine pre-populated with `count` active share capabilities.
struct PopulatedEngine {
  CapabilityEngine engine;
  CapId root = kInvalidCap;
  std::vector<CapId> shares;
};

PopulatedEngine MakePopulated(int64_t count) {
  PopulatedEngine p;
  p.engine.RegisterDomain(0, CapabilityEngine::kNoCreator);
  p.engine.RegisterDomain(1, 0);
  p.root = *p.engine.MintMemory(0, AddrRange{0, kSpace}, Perms(Perms::kRWX),
                                CapRights(CapRights::kAll));
  CapEffects effects;
  for (int64_t i = 0; i < count; ++i) {
    p.shares.push_back(*p.engine.ShareMemory(
        0, p.root, 1, AddrRange{static_cast<uint64_t>(i) * kMiB, kMiB}, Perms(Perms::kRW),
        CapRights(CapRights::kAll), RevocationPolicy{}, &effects));
  }
  return p;
}

// Share latency as the tree grows.
void BM_ShareMemory(benchmark::State& state) {
  PopulatedEngine p = MakePopulated(state.range(0));
  uint64_t next = 1ull << 30;
  CapEffects effects;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.engine.ShareMemory(0, p.root, 1, AddrRange{next, kMiB},
                                                  Perms(Perms::kRW), CapRights{},
                                                  RevocationPolicy{}, &effects));
    next += kMiB;
  }
  state.counters["existing_caps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ShareMemory)->Arg(16)->Arg(256)->Arg(4096)->Iterations(20000);

// Grant latency (includes splitting the source capability).
void BM_GrantMemory(benchmark::State& state) {
  PopulatedEngine p = MakePopulated(state.range(0));
  uint64_t next = 1ull << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.engine.GrantMemory(0, p.root, 1, AddrRange{next, kMiB},
                                                  Perms(Perms::kRW),
                                                  CapRights(CapRights::kAll),
                                                  RevocationPolicy{}));
    // The root is donated on the first grant; keep granting from the tail
    // remainder found via the domain map (realistic usage goes through the
    // monitor, which rediscovers).
    state.PauseTiming();
    CapId tail = kInvalidCap;
    p.engine.ForEachActive([&](const Capability& cap) {
      if (cap.owner == 0 && cap.kind == ResourceKind::kMemory &&
          cap.range.Contains(next + kMiB)) {
        tail = cap.id;
      }
    });
    p.root = tail;
    next += kMiB;
    state.ResumeTiming();
  }
  state.counters["existing_caps"] = static_cast<double>(state.range(0));
}
// Iteration-capped: every grant grows the lineage tree, so unbounded
// default timing degenerates quadratically in the paused rediscovery scan.
BENCHMARK(BM_GrantMemory)->Arg(16)->Arg(256)->Arg(1024)->Iterations(2000);

// Cascading revocation vs chain depth (A->B->A->B->... circular sharing).
void BM_RevokeCascadeDepth(benchmark::State& state) {
  const int64_t depth = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    CapabilityEngine engine;
    engine.RegisterDomain(0, CapabilityEngine::kNoCreator);
    engine.RegisterDomain(1, 0);
    engine.RegisterDomain(2, 0);
    const CapId root = *engine.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                          CapRights(CapRights::kAll));
    CapEffects effects;
    CapId chain = *engine.ShareMemory(0, root, 1, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                      CapRights(CapRights::kAll), RevocationPolicy{},
                                      &effects);
    const CapId first = chain;
    for (int64_t i = 1; i < depth; ++i) {
      const CapDomainId from = i % 2 == 0 ? 2 : 1;
      const CapDomainId to = i % 2 == 0 ? 1 : 2;
      chain = *engine.ShareMemory(from, chain, to, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                  CapRights(CapRights::kAll), RevocationPolicy{}, &effects);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Revoke(0, first));
  }
  state.counters["chain_depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_RevokeCascadeDepth)->Arg(4)->Arg(32)->Arg(256)->Arg(1024)->Iterations(200);

// Cascading revocation vs fan-out (one cap shared to N domains).
void BM_RevokeCascadeFanout(benchmark::State& state) {
  const int64_t fanout = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    CapabilityEngine engine;
    engine.RegisterDomain(0, CapabilityEngine::kNoCreator);
    const CapId root = *engine.MintMemory(0, AddrRange{0, kMiB}, Perms(Perms::kRWX),
                                          CapRights(CapRights::kAll));
    CapEffects effects;
    const CapId hub = *engine.ShareMemory(0, root, 0, AddrRange{0, kMiB}, Perms(Perms::kRW),
                                          CapRights(CapRights::kAll), RevocationPolicy{},
                                          &effects);
    for (int64_t i = 0; i < fanout; ++i) {
      engine.RegisterDomain(static_cast<CapDomainId>(i + 1), 0);
      (void)*engine.ShareMemory(0, hub, static_cast<CapDomainId>(i + 1),
                                AddrRange{0, kMiB}, Perms(Perms::kRead), CapRights{},
                                RevocationPolicy{}, &effects);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Revoke(0, hub));
  }
  state.counters["fanout"] = static_cast<double>(fanout);
}
BENCHMARK(BM_RevokeCascadeFanout)->Arg(4)->Arg(32)->Arg(256)->Arg(1024)->Iterations(200);

// Reference-count query cost (used on every attestation).
void BM_MemoryRefCount(benchmark::State& state) {
  PopulatedEngine p = MakePopulated(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.engine.MemoryRefCount(AddrRange{0, kMiB}));
  }
  state.counters["existing_caps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MemoryRefCount)->Arg(16)->Arg(256)->Arg(4096)->Iterations(20000);

// The Figure-4 style full-memory view (what an auditor renders).
void BM_MemoryView(benchmark::State& state) {
  PopulatedEngine p = MakePopulated(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.engine.MemoryView());
  }
  state.counters["existing_caps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MemoryView)->Arg(16)->Arg(256)->Arg(1024)->Iterations(500);

// Effective-permission recomputation (backend resync unit of work).
void BM_EffectivePerms(benchmark::State& state) {
  PopulatedEngine p = MakePopulated(state.range(0));
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.engine.EffectivePerms(1, addr));
    addr = (addr + kMiB) % (static_cast<uint64_t>(state.range(0)) * kMiB);
  }
  state.counters["existing_caps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EffectivePerms)->Arg(16)->Arg(256)->Arg(4096)->Iterations(20000);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
