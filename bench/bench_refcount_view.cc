// Copyright 2026 The Tyche Reproduction Authors.
// Experiment F4: regenerates the paper's Figure 4 -- "view of a subset of
// the physical memory ... with domain-to-regions mappings and regions
// reference counts" -- as a printed table, from a live deployment shaped
// like Figure 3 (crypto engine, SaaS app, SaaS VM, driver).
//
// Not a timing benchmark: prints the reconstructed figure.

#include <cstdio>
#include <map>

#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

int Run() {
  std::printf("=== F4: physical memory view with reference counts (paper Fig. 4) ===\n\n");
  auto testbed = Testbed::Create(TestbedOptions{});
  Monitor& monitor = testbed->monitor();

  std::map<DomainId, std::string> names;
  names[testbed->os_domain()] = "os";

  // Actors of Figure 3/4.
  const auto crypto = monitor.CreateDomain(0, "crypto-engine");
  const auto saas = monitor.CreateDomain(0, "saas-app");
  const auto vm = monitor.CreateDomain(0, "saas-vm");
  const auto driver = monitor.CreateDomain(0, "driver");
  names[crypto->domain] = "crypto";
  names[saas->domain] = "saas";
  names[vm->domain] = "vm";
  names[driver->domain] = "driver";

  const uint64_t base = testbed->Scratch(16 * kMiB);
  auto grant = [&](uint64_t offset, CapId handle) {
    const AddrRange range{base + offset * kMiB, kMiB};
    (void)monitor.GrantMemory(0, *testbed->OsMemCap(range), handle, range,
                              Perms(Perms::kRW), CapRights(CapRights::kAll),
                              RevocationPolicy{});
    return range;
  };

  // Exclusive regions (count 1).
  const AddrRange crypto_conf = grant(0, crypto->handle);
  grant(2, saas->handle);
  grant(5, driver->handle);

  // crypto <-> saas shared region (count 2): granted to crypto, which then
  // shares it with the saas app (run as crypto on core 1).
  const AddrRange crypto_saas = grant(1, crypto->handle);
  (void)monitor.ShareUnit(0, *testbed->OsCoreCap(1), crypto->handle,
                          CapRights(CapRights::kShare), RevocationPolicy{});
  (void)monitor.ShareUnit(
      0, *FindUnitCap(monitor, testbed->os_domain(), ResourceKind::kDomain, saas->domain),
      crypto->handle, CapRights(CapRights::kShare), RevocationPolicy{});
  (void)monitor.SetEntryPoint(0, crypto->handle, crypto_conf.base);
  (void)monitor.Transition(1, crypto->handle);
  (void)monitor.ShareMemory(
      1, *FindMemoryCap(monitor, crypto->domain, crypto_saas),
      *FindUnitCap(monitor, crypto->domain, ResourceKind::kDomain, saas->domain),
      crypto_saas, Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
  (void)monitor.ReturnFromDomain(1);

  // driver <-> vm shared region (count 2), same pattern.
  const AddrRange driver_vm = grant(4, driver->handle);
  (void)monitor.ShareUnit(0, *testbed->OsCoreCap(1), driver->handle,
                          CapRights(CapRights::kShare), RevocationPolicy{});
  (void)monitor.ShareUnit(
      0, *FindUnitCap(monitor, testbed->os_domain(), ResourceKind::kDomain, vm->domain),
      driver->handle, CapRights(CapRights::kShare), RevocationPolicy{});
  (void)monitor.SetEntryPoint(0, driver->handle, driver_vm.base);
  (void)monitor.Transition(1, driver->handle);
  (void)monitor.ShareMemory(
      1, *FindMemoryCap(monitor, driver->domain, driver_vm),
      *FindUnitCap(monitor, driver->domain, ResourceKind::kDomain, vm->domain), driver_vm,
      Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
  (void)monitor.ReturnFromDomain(1);

  // Region visible to the whole stack (count 4).
  const AddrRange all_shared{base + 3 * kMiB, kMiB};
  for (const CapId handle : {crypto->handle, saas->handle, vm->handle}) {
    (void)monitor.ShareMemory(0, *testbed->OsMemCap(all_shared), handle, all_shared,
                              Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
  }

  // ---- Print the reconstructed figure ----
  std::printf("%-26s %-9s %-6s %s\n", "region [base, end)", "size", "count", "domains");
  std::printf("%.78s\n",
              "----------------------------------------------------------------------"
              "--------");
  for (const RegionView& view : monitor.MemoryView()) {
    if (view.range.base < base || view.range.end() > base + 6 * kMiB) {
      continue;
    }
    std::string domains;
    for (const CapDomainId domain : view.domains) {
      if (!domains.empty()) {
        domains += ", ";
      }
      const auto it = names.find(domain);
      domains += it != names.end() ? it->second : std::to_string(domain);
    }
    std::printf("[0x%08llx, 0x%08llx) %4llu KiB %5u   %s\n",
                static_cast<unsigned long long>(view.range.base),
                static_cast<unsigned long long>(view.range.end()),
                static_cast<unsigned long long>(view.range.size / 1024), view.ref_count(),
                domains.c_str());
  }
  std::printf("\npaper Figure 4 sequence of counts: 1 2 1 4 2 1 -- reproduced above.\n");

  // Controlled-sharing checks the customer of Figure 2 would run.
  std::printf("\ncrypto-engine confidential region exclusive: %s\n",
              monitor.engine().ExclusivelyOwned(crypto->domain, crypto_conf) ? "yes"
                                                                             : "NO!");
  std::printf("crypto<->saas channel refcount == 2:          %s\n",
              monitor.engine().MemoryRefCount(crypto_saas) == 2 ? "yes" : "NO!");
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
