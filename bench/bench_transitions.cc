// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C1: domain-transition cost.
//
// Paper claim (§4.1): trap-mediated transitions can be accelerated to "fast
// (100 cycles) domain transitions using VMFUNC"; the baselines are OS
// context switches and SGX EENTER/EEXIT. Absolute numbers come from the
// simulator's cost model (see src/hw/cost_model.h for provenance); the
// SHAPE to check against the paper: vmfunc << vmcall < sgx round trip, and
// vmfunc << OS context switch.
//
// Counters: sim_cycles/op is the simulated-hardware cost; wall time measures
// only the simulator and is not meaningful on its own.

#include <benchmark/benchmark.h>

#include "src/baseline/sgx_model.h"
#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

struct TransitionWorld {
  Testbed testbed;
  Enclave enclave;
};

TransitionWorld MakeWorld(IsaArch arch) {
  TestbedOptions options;
  options.arch = arch;
  auto testbed = Testbed::Create(options);
  if (!testbed.ok()) {
    std::abort();
  }
  const TycheImage image = TycheImage::MakeDemo("callee", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = testbed->Scratch(kMiB);
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {*testbed->OsCoreCap(1)};
  auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
  if (!enclave.ok()) {
    std::abort();
  }
  return TransitionWorld{std::move(*testbed), std::move(*enclave)};
}

// Trap-mediated call+return through the monitor (VMCALL path on x86).
void BM_TrapTransitionRoundTrip(benchmark::State& state) {
  TransitionWorld world = MakeWorld(IsaArch::kX86_64);
  const uint64_t start = world.testbed.machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.enclave.Enter(1));
    benchmark::DoNotOptimize(world.enclave.Exit(1));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(world.testbed.machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_TrapTransitionRoundTrip);

// Hardware fast path (VMFUNC EPTP switch), pre-armed.
void BM_FastTransitionRoundTrip(benchmark::State& state) {
  TransitionWorld world = MakeWorld(IsaArch::kX86_64);
  if (!world.enclave.EnableFastCalls(1).ok()) {
    state.SkipWithError("fast path unavailable");
    return;
  }
  const uint64_t start = world.testbed.machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.enclave.FastEnter(1));
    benchmark::DoNotOptimize(world.enclave.FastExit(1));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(world.testbed.machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_FastTransitionRoundTrip);

// RISC-V: the trap path goes through M-mode and rewrites PMP entries.
void BM_PmpTransitionRoundTrip(benchmark::State& state) {
  TransitionWorld world = MakeWorld(IsaArch::kRiscV);
  const uint64_t start = world.testbed.machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.enclave.Enter(1));
    benchmark::DoNotOptimize(world.enclave.Exit(1));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(world.testbed.machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_PmpTransitionRoundTrip);

// Baseline 1: OS process context switch.
void BM_ProcessContextSwitch(benchmark::State& state) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::abort();
  }
  (void)testbed->os().CreateProcess("a", kMiB);
  (void)testbed->os().CreateProcess("b", kMiB);
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(testbed->os().scheduler().Tick());
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_ProcessContextSwitch);

// Baseline 2: OS syscall round trip (the cost of driver work in user mode,
// §2.2's "extra context switches for privileged operations").
void BM_SyscallRoundTrip(benchmark::State& state) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::abort();
  }
  const Pid pid = *testbed->os().CreateProcess("app", kMiB);
  const AddrRange memory = (*testbed->os().GetProcess(pid))->memory;
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(testbed->os().SysRead(0, pid, memory.base, 8));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_SyscallRoundTrip);

// Baseline 3: SGX EENTER/EEXIT round trip.
void BM_SgxEnterExitRoundTrip(benchmark::State& state) {
  CycleAccount cycles;
  SgxProcessor sgx(1024, &cycles);
  const auto id = sgx.Ecreate(1, AddrRange{0x10000000, kMiB});
  const std::vector<uint8_t> page(64, 1);
  (void)sgx.Eadd(*id, 0, std::span<const uint8_t>(page));
  (void)sgx.Einit(*id);
  const uint64_t start = cycles.cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sgx.Eenter(*id));
    benchmark::DoNotOptimize(sgx.Eexit(*id));
    ++ops;
  }
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(cycles.cycles() - start) /
                         static_cast<double>(ops));
}
BENCHMARK(BM_SgxEnterExitRoundTrip);

// Steady-state memory access through the enclave's EPT (TLB-hot): shows
// that isolation costs nothing once translations are cached.
void BM_EnclaveMemoryAccessTlbHot(benchmark::State& state) {
  TransitionWorld world = MakeWorld(IsaArch::kX86_64);
  (void)world.enclave.Enter(1);
  (void)world.testbed.machine().CheckedRead64(1, world.enclave.base());  // warm
  const uint64_t start = world.testbed.machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.testbed.machine().CheckedRead64(1, world.enclave.base()));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(world.testbed.machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
BENCHMARK(BM_EnclaveMemoryAccessTlbHot);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
