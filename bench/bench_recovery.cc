// Copyright 2026 The Tyche Reproduction Authors.
// Recovery-subsystem cost. Four questions:
//
//  1. Snapshot capture: what does a signed checkpoint pay to serialize and
//     hash-commit the full monitor state (engine tree, domain table,
//     allocators)?
//  2. Replay throughput: records/second through the shadow-replay engine --
//     this bounds how much journal suffix a recovery can afford.
//  3. End-to-end Recover(): verify + restore + replay + full hardware
//     re-sync, on both backends.
//  4. The fast-path bill: dispatch latency with the recovery machinery
//     armed (snapshot store bound, checkpoints signing) must stay within
//     noise of the journal-on dispatch path, and with the journal off it
//     must stay at the journal-off baseline -- the machinery is free when
//     idle because the snapshot provider only runs when a checkpoint signs.
//
// Like bench_journal, the dispatched op is kTakeInterrupt with an empty
// queue so the fast-path numbers measure plumbing, not capability work.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/monitor/audit.h"
#include "src/monitor/dispatch.h"
#include "src/monitor/recovery.h"
#include "src/os/testbed.h"
#include "src/support/log.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

// A populated monitor: extra domains with shares and one grant each, so
// snapshots and replays work on a non-trivial capability tree.
void PopulateState(Testbed& bed, int domains) {
  Monitor& monitor = bed.monitor();
  const CapRights all{CapRights::kAll};
  const RevocationPolicy policy;
  for (int i = 0; i < domains; ++i) {
    const auto domain = monitor.CreateDomain(0, "bench-" + std::to_string(i));
    if (!domain.ok()) {
      std::abort();
    }
    const AddrRange share_window{bed.Scratch((1 + 2 * i) * kMiB), 8 * kPageSize};
    const auto share_cap = bed.OsMemCap(share_window);
    if (!share_cap.ok() ||
        !monitor
             .ShareMemory(0, *share_cap, domain->handle, share_window,
                          Perms(Perms::kRW), all, policy)
             .ok()) {
      std::abort();
    }
    const AddrRange grant_window{bed.Scratch((2 + 2 * i) * kMiB), 4 * kPageSize};
    const auto grant_cap = bed.OsMemCap(grant_window);
    if (!grant_cap.ok() ||
        !monitor
             .GrantMemory(0, *grant_cap, domain->handle, grant_window,
                          Perms(Perms::kRW), all, policy)
             .ok()) {
      std::abort();
    }
  }
}

Testbed MakeBed(IsaArch arch, int domains) {
  TestbedOptions options;
  options.arch = arch;
  auto bed = Testbed::Create(options);
  if (!bed.ok()) {
    std::abort();
  }
  PopulateState(*bed, domains);
  return std::move(*bed);
}

void BM_SnapshotCapture(benchmark::State& state) {
  Testbed bed = MakeBed(IsaArch::kX86_64, static_cast<int>(state.range(0)));
  std::vector<uint8_t> snapshot;
  for (auto _ : state) {
    snapshot = bed.monitor().CaptureSnapshot();
    benchmark::DoNotOptimize(snapshot.data());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(snapshot.size());
}
BENCHMARK(BM_SnapshotCapture)->Arg(2)->Arg(8)->Arg(24);

void BM_SnapshotDigest(benchmark::State& state) {
  Testbed bed = MakeBed(IsaArch::kX86_64, 8);
  const std::vector<uint8_t> snapshot = bed.monitor().CaptureSnapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SnapshotDigest(snapshot));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(snapshot.size()));
}
BENCHMARK(BM_SnapshotDigest);

void BM_JournalReplay(benchmark::State& state) {
  Testbed bed = MakeBed(IsaArch::kX86_64, static_cast<int>(state.range(0)));
  const std::vector<JournalRecord> records = bed.monitor().audit().journal().Records();
  for (auto _ : state) {
    CapabilityEngine shadow;
    const auto replay = ReplayJournalInto(&shadow, records);
    if (!replay.ok()) {
      std::abort();
    }
    benchmark::DoNotOptimize(replay->applied);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records.size()));
  state.counters["journal_records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_JournalReplay)->Arg(8)->Arg(24);

// End-to-end: the live monitor recovers onto itself from its own journal
// and latest snapshot -- chain verification, snapshot restore, suffix
// replay, full backend rebuild, device reconciliation, core re-binding.
// `domains` stays small on the PMP backend: each grant fragments the OS
// domain's address space, and a 16-entry PMP file only holds so many ranges.
void RecoverLoop(benchmark::State& state, IsaArch arch, int domains) {
  Logger::Get().set_level(LogLevel::kError);  // one kWarn per recovery otherwise
  Testbed bed = MakeBed(arch, domains);
  Monitor& monitor = bed.monitor();
  SnapshotStore store;
  if (!monitor.EnableSnapshots(&store).ok()) {
    std::abort();
  }
  monitor.audit().journal().Checkpoint();  // binds one snapshot at the head
  const auto snapshot = store.Latest();
  if (!snapshot.ok()) {
    std::abort();
  }
  const auto parsed = Journal::Deserialize(monitor.audit().journal().Serialize());
  if (!parsed.ok()) {
    std::abort();
  }
  for (auto _ : state) {
    const Status recovered = monitor.Recover(snapshot->bytes, *parsed);
    if (!recovered.ok()) {
      std::abort();
    }
  }
  state.counters["journal_records"] = static_cast<double>(parsed->records.size());
}

void BM_RecoverEndToEnd_Vtx(benchmark::State& state) {
  RecoverLoop(state, IsaArch::kX86_64, 8);
}
void BM_RecoverEndToEnd_Pmp(benchmark::State& state) {
  RecoverLoop(state, IsaArch::kRiscV, 3);
}
BENCHMARK(BM_RecoverEndToEnd_Vtx);
BENCHMARK(BM_RecoverEndToEnd_Pmp);

// The fast-path bill. `armed` binds a snapshot store (checkpoints capture
// and commit snapshots); `journal_on` controls the append path itself.
void DispatchLoop(benchmark::State& state, bool journal_on, bool armed) {
  auto bed = Testbed::Create(TestbedOptions{});
  if (!bed.ok()) {
    std::abort();
  }
  Monitor& monitor = bed->monitor();
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(false);
  monitor.audit().set_enabled(journal_on);
  SnapshotStore store;
  if (armed && !monitor.EnableSnapshots(&store).ok()) {
    std::abort();
  }

  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  size_t dispatched = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dispatch(&monitor, 0, regs));
    if (journal_on && ++dispatched == (64u << 10)) {
      state.PauseTiming();
      monitor.audit().journal().Clear();  // seqs restart: the store re-overwrites
      dispatched = 0;
      state.ResumeTiming();
    }
  }
  state.counters["snapshots_taken"] = static_cast<double>(store.size());
}

// The acceptance bar: RecoveryArmed_JournalOff == JournalOff (idle recovery
// machinery costs nothing), RecoveryArmed_JournalOn within noise of the
// bench_journal BM_Dispatch_JournalOn path (snapshots amortize across the
// checkpoint interval).
void BM_Dispatch_JournalOff(benchmark::State& state) {
  DispatchLoop(state, /*journal_on=*/false, /*armed=*/false);
}
void BM_Dispatch_RecoveryArmed_JournalOff(benchmark::State& state) {
  DispatchLoop(state, /*journal_on=*/false, /*armed=*/true);
}
void BM_Dispatch_JournalOn(benchmark::State& state) {
  DispatchLoop(state, /*journal_on=*/true, /*armed=*/false);
}
void BM_Dispatch_RecoveryArmed_JournalOn(benchmark::State& state) {
  DispatchLoop(state, /*journal_on=*/true, /*armed=*/true);
}
BENCHMARK(BM_Dispatch_JournalOff);
BENCHMARK(BM_Dispatch_RecoveryArmed_JournalOff);
BENCHMARK(BM_Dispatch_JournalOn);
BENCHMARK(BM_Dispatch_RecoveryArmed_JournalOn);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
