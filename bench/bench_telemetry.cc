// Copyright 2026 The Tyche Reproduction Authors.
// Telemetry overhead on the Dispatch() fast path. The acceptance bar for
// the observability layer: with tracing and histograms disabled the wrapper
// must cost within noise of the raw dispatch (two relaxed atomic loads and
// a branch); with them enabled the cost of the clock reads, digest, and
// ring insertion is visible and bounded. The metrics registry gets the same
// treatment: BM_Dispatch_MetricsRegistryOnly vs BM_Dispatch_TelemetryOff is
// the +10% gate enforced by tools/check_latency_gate.py against
// bench/baselines/metrics_baseline.json.
//
// The op under test is kTakeInterrupt with an empty queue: it fails fast
// inside the monitor, so the measurement is dominated by dispatch plumbing
// rather than capability work. (The failing result also exercises the
// flight recorder's dedup reject path -- the production default -- on every
// iteration.)

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/monitor/dispatch.h"

namespace tyche {
namespace {

void DispatchLoop(benchmark::State& state, bool trace, bool histograms, bool counters) {
  Testbed testbed = bench::MustTestbed();
  Monitor& monitor = testbed.monitor();
  monitor.telemetry().set_trace_enabled(trace);
  monitor.telemetry().set_histograms_enabled(histograms);
  monitor.set_counters_enabled(counters);
  // Journal cost is measured separately in bench_journal; keep these numbers
  // comparable to the telemetry-only baseline.
  monitor.audit().set_enabled(false);

  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dispatch(&monitor, 0, regs));
  }
  state.counters["trace_recorded"] =
      static_cast<double>(monitor.telemetry().ring().recorded());
  if (histograms) {
    // Shared-schema percentiles from the histogram view, exported into the
    // bench JSON so the latency gate can bound the tail as well as the mean.
    bench::ExportPercentiles(state, monitor);
  }
}

void BM_Dispatch_TelemetryOff(benchmark::State& state) {
  DispatchLoop(state, /*trace=*/false, /*histograms=*/false, /*counters=*/false);
}
// The registry alone: striped stat counters on, everything else off. Gated
// within +10% of BM_Dispatch_TelemetryOff.
void BM_Dispatch_MetricsRegistryOnly(benchmark::State& state) {
  DispatchLoop(state, /*trace=*/false, /*histograms=*/false, /*counters=*/true);
}
void BM_Dispatch_TraceRingOnly(benchmark::State& state) {
  DispatchLoop(state, /*trace=*/true, /*histograms=*/false, /*counters=*/false);
}
void BM_Dispatch_HistogramsOnly(benchmark::State& state) {
  DispatchLoop(state, /*trace=*/false, /*histograms=*/true, /*counters=*/false);
}
// Histograms + registry: the subject of the p99 tail gate (reference:
// BM_Dispatch_HistogramsOnly, which exports the same percentile counters).
void BM_Dispatch_HistogramsMetricsOn(benchmark::State& state) {
  DispatchLoop(state, /*trace=*/false, /*histograms=*/true, /*counters=*/true);
}
void BM_Dispatch_TelemetryFull(benchmark::State& state) {
  DispatchLoop(state, /*trace=*/true, /*histograms=*/true, /*counters=*/true);
}

BENCHMARK(BM_Dispatch_TelemetryOff);
BENCHMARK(BM_Dispatch_MetricsRegistryOnly);
BENCHMARK(BM_Dispatch_TraceRingOnly);
BENCHMARK(BM_Dispatch_HistogramsOnly);
BENCHMARK(BM_Dispatch_HistogramsMetricsOn);
BENCHMARK(BM_Dispatch_TelemetryFull);

// The snapshot/export path: how expensive is DumpTelemetry() itself once a
// workload has filled the ring and built a capability graph. Run outside
// the timed region: build state once, snapshot per iteration.
void BM_DumpTelemetry(benchmark::State& state) {
  Testbed testbed = bench::MustTestbed();
  Monitor& monitor = testbed.monitor();
  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (int i = 0; i < 1024; ++i) {
    (void)Dispatch(&monitor, 0, regs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.DumpTelemetry());
  }
}
BENCHMARK(BM_DumpTelemetry);

// The scrape path: rendering the full Prometheus snapshot, histograms and
// pull callbacks included, over the same warmed-up state.
void BM_ExportMetrics(benchmark::State& state) {
  Testbed testbed = bench::MustTestbed();
  Monitor& monitor = testbed.monitor();
  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (int i = 0; i < 1024; ++i) {
    (void)Dispatch(&monitor, 0, regs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.ExportMetrics());
  }
}
BENCHMARK(BM_ExportMetrics);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
