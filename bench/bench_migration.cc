// Copyright 2026 The Tyche Reproduction Authors.
// Live-migration cost curve (DESIGN.md §11). Three footprint axes, each
// swept independently while the other two stay at the baseline:
//
//   pages    -- memory image size: capture serializes and the destination
//               rewrites every granted page, so this axis is the payload
//               bulk (BM_MigratePages).
//   caps     -- capability count: every granted window is a separate cap
//               the destination must re-carve from its own tree, so this
//               axis is the restore-stage graph work (BM_MigrateCaps).
//   journal  -- source journal length: the full journal ships as
//               provenance and the destination shadow-replays it, so this
//               axis is the verification bill (BM_MigrateJournalSuffix).
//
// Each iteration boots a fresh source/dest pair (timing paused), then
// times MigrateDomain end to end over a perfect channel. Counters follow
// the bench_common.h schema: payload_bytes / frames_sent / retries come
// straight from the MigrationReport of the last iteration.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/monitor/boot.h"
#include "src/monitor/migration.h"
#include "src/tyche/loader.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

struct Pair {
  std::unique_ptr<Machine> source_machine;
  std::unique_ptr<Machine> dest_machine;
  std::unique_ptr<Monitor> source;
  std::unique_ptr<Monitor> dest;
  DomainId victim = kInvalidDomain;
};

// Boots two identically-measured monitors and builds one sealed victim on
// the source with the requested footprint. Aborts on any failure: a bench
// without a world has nothing to measure.
Pair MakePair(int caps, int pages_per_cap, int journal_ops) {
  Pair pair;
  MachineConfig config;
  pair.source_machine = std::make_unique<Machine>(config);
  pair.dest_machine = std::make_unique<Machine>(config);
  const std::vector<uint8_t> firmware = DemoFirmwareImage();
  const std::vector<uint8_t> monitor_image = DemoMonitorImage();
  BootParams params;
  params.firmware_image = firmware;
  params.monitor_image = monitor_image;
  auto source_boot = MeasuredBoot(pair.source_machine.get(), params);
  auto dest_boot = MeasuredBoot(pair.dest_machine.get(), params);
  if (!source_boot.ok() || !dest_boot.ok()) {
    std::abort();
  }
  pair.source = std::move(source_boot->monitor);
  pair.dest = std::move(dest_boot->monitor);
  Monitor& monitor = *pair.source;
  const DomainId os = source_boot->initial_domain;

  // Journal depth: churn create/destroy pairs before the victim exists so
  // the extra records are pure suffix, not extra live state.
  for (int i = 0; i < journal_ops; ++i) {
    const auto churn = monitor.CreateDomain(0, "churn-" + std::to_string(i));
    if (!churn.ok() || !monitor.DestroyDomain(0, churn->handle).ok()) {
      std::abort();
    }
  }

  const auto created = monitor.CreateDomain(0, "victim");
  if (!created.ok()) {
    std::abort();
  }
  pair.victim = created->domain;
  const uint64_t scratch = monitor.monitor_range().end() + kMiB;
  const CapRights all{CapRights::kAll};
  const RevocationPolicy policy{RevocationPolicy::kZeroMemory};
  for (int c = 0; c < caps; ++c) {
    const AddrRange window{scratch + static_cast<uint64_t>(c) * kMiB,
                           static_cast<uint64_t>(pages_per_cap) * kPageSize};
    const auto cap = FindMemoryCap(monitor, os, window);
    if (!cap.ok() ||
        !monitor
             .GrantMemory(0, *cap, created->handle, window, Perms(Perms::kRWX),
                          all, policy)
             .ok()) {
      std::abort();
    }
  }
  const AddrRange entry_window{scratch, kPageSize};
  if (!monitor.SetEntryPoint(0, created->handle, entry_window.base).ok() ||
      !monitor.ExtendMeasurement(0, created->handle, entry_window).ok() ||
      !monitor.Seal(0, created->handle).ok()) {
    std::abort();
  }
  return pair;
}

void RunMigration(benchmark::State& state, int caps, int pages_per_cap,
                  int journal_ops) {
  MigrationReport last;
  uint64_t sim_cycles = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Pair pair = MakePair(caps, pages_per_cap, journal_ops);
    ReliableTransport transport;
    const uint64_t before = pair.source_machine->cycles().cycles() +
                            pair.dest_machine->cycles().cycles();
    state.ResumeTiming();
    const auto report =
        MigrateDomain(pair.source.get(), pair.dest.get(), pair.victim,
                      &transport, pair.source->public_key());
    if (!report.ok()) {
      std::abort();
    }
    sim_cycles += pair.source_machine->cycles().cycles() +
                  pair.dest_machine->cycles().cycles() - before;
    ++ops;
    last = *report;
  }
  state.counters["sim_cycles/op"] =
      static_cast<double>(sim_cycles) / static_cast<double>(ops);
  state.counters["payload_bytes"] = static_cast<double>(last.payload_bytes);
  state.counters["frames_sent"] = static_cast<double>(last.frames_sent);
  state.counters["retries"] = static_cast<double>(last.retries);
  state.counters["caps_moved"] = static_cast<double>(caps);
  state.counters["pages_moved"] = static_cast<double>(caps * pages_per_cap);
}

// Payload bulk: one capability, growing page count.
void BM_MigratePages(benchmark::State& state) {
  RunMigration(state, /*caps=*/1, /*pages_per_cap=*/static_cast<int>(state.range(0)),
               /*journal_ops=*/0);
}
BENCHMARK(BM_MigratePages)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Graph work: growing capability count, one page each.
void BM_MigrateCaps(benchmark::State& state) {
  RunMigration(state, /*caps=*/static_cast<int>(state.range(0)),
               /*pages_per_cap=*/1, /*journal_ops=*/0);
}
BENCHMARK(BM_MigrateCaps)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

// Verification bill: growing journal suffix, baseline memory footprint.
void BM_MigrateJournalSuffix(benchmark::State& state) {
  RunMigration(state, /*caps=*/1, /*pages_per_cap=*/4,
               /*journal_ops=*/static_cast<int>(state.range(0)));
}
BENCHMARK(BM_MigrateJournalSuffix)->Arg(0)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
