// Copyright 2026 The Tyche Reproduction Authors.
// Concurrent dispatch: threads-vs-throughput scaling and the serial-path
// regression guard. Three questions:
//
//  1. Does the serial fast path still cost what it did before the locks
//     existed? BM_Dispatch_SerialBaseline is the number the CI latency gate
//     compares against bench/baselines/dispatch_baseline.json (ratio must
//     stay within 1.10x): with concurrency off the guards are a relaxed
//     load and a predicted branch.
//  2. Do read-heavy mixes scale? Attestation dominates the read mix, runs
//     under the shared api lock, and should scale near-linearly to 8
//     threads (acceptance bar: >= 3x from 1 -> 8).
//  3. What does the journal cost under contention? The write mix and the
//     raw concurrent-append benchmark exercise group commit; the batch
//     counters are exported so the JSON artifact shows how many lock
//     acquisitions the combiner saved.
//
// Threaded benchmarks pin thread t to core t (the monitor's documented
// concurrency contract: one dispatching thread per core).

#include <benchmark/benchmark.h>

#include <array>
#include <memory>

#include "bench/bench_common.h"
#include "src/monitor/dispatch.h"
#include "src/support/prng.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint32_t kMaxThreads = 8;

struct ConcurrencyWorld {
  Testbed testbed;
  // Per-thread resources, all owned by the OS domain (the caller on every
  // core): a child domain to share into, the source memory capability, and
  // a disjoint scratch window for shares and attestation out-buffers.
  std::array<CapId, kMaxThreads> child_handle{};
  std::array<CapId, kMaxThreads> src_cap{};
  std::array<uint64_t, kMaxThreads> share_base{};
  std::array<uint64_t, kMaxThreads> attest_buf{};
};

ConcurrencyWorld* MakeWorld(bool journal_on, bool counters_on = true) {
  TestbedOptions options;
  options.cores = kMaxThreads;
  options.memory_bytes = 256ull << 20;
  auto testbed = Testbed::Create(options);
  if (!testbed.ok()) {
    std::abort();
  }
  auto* world = new ConcurrencyWorld{std::move(*testbed), {}, {}, {}, {}};
  Monitor& monitor = world->testbed.monitor();
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(false);
  monitor.set_counters_enabled(counters_on);
  monitor.audit().set_enabled(journal_on);
  for (uint32_t t = 0; t < kMaxThreads; ++t) {
    const auto child = monitor.CreateDomain(0, "bench-child");
    if (!child.ok()) {
      std::abort();
    }
    world->child_handle[t] = child->handle;
    world->share_base[t] = world->testbed.Scratch(16 * kMiB + t * kMiB);
    world->attest_buf[t] = world->testbed.Scratch(32 * kMiB + t * kMiB);
    const auto src = world->testbed.OsMemCap(AddrRange{world->share_base[t], kPageSize});
    if (!src.ok()) {
      std::abort();
    }
    world->src_cap[t] = src.value();
  }
  if (!monitor.EnableConcurrentDispatch().ok()) {
    std::abort();
  }
  return world;
}

ApiResult AttestSelf(ConcurrencyWorld* world, CoreId core, uint64_t nonce) {
  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kAttestDomain);
  regs.arg0 = 0;  // self
  regs.arg1 = nonce;
  regs.arg2 = world->attest_buf[core];
  regs.arg3 = kMiB;
  return Dispatch(&world->testbed.monitor(), core, regs);
}

ApiResult TakeInterrupt(ConcurrencyWorld* world, CoreId core) {
  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  return Dispatch(&world->testbed.monitor(), core, regs);
}

// The serial-path regression guard: concurrency OFF, journal and telemetry
// off, the same empty-queue kTakeInterrupt loop bench_journal uses. This is
// the ~40ns dispatch boundary the locks must not tax.
void BM_Dispatch_SerialBaseline(benchmark::State& state) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::abort();
  }
  Monitor& monitor = testbed->monitor();
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(false);
  monitor.audit().set_enabled(false);
  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dispatch(&monitor, 0, regs));
  }
}
BENCHMARK(BM_Dispatch_SerialBaseline);

// 90% attestation (shared lock, signature-heavy) / 10% take-interrupt
// (exclusive lock, cheap). The scaling acceptance bar lives here.
void ReadHeavyLoop(benchmark::State& state, ConcurrencyWorld* world) {
  const auto core = static_cast<CoreId>(state.thread_index());
  Prng prng(0x5eed + core);
  uint64_t nonce = 0;
  for (auto _ : state) {
    if (prng.Below(10) == 0) {
      benchmark::DoNotOptimize(TakeInterrupt(world, core));
    } else {
      benchmark::DoNotOptimize(AttestSelf(world, core, ++nonce));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// Worlds are function-local magic statics: every thread (including the ones
// the framework starts before thread 0 runs any setup code) initializes or
// waits on the same construction, and the world persists across the per-
// thread-count runs of one benchmark. Leaked deliberately: these are
// process-lifetime fixtures.
void BM_Dispatch_ReadHeavy(benchmark::State& state) {
  static ConcurrencyWorld* world = MakeWorld(/*journal_on=*/false);
  ReadHeavyLoop(state, world);
}
BENCHMARK(BM_Dispatch_ReadHeavy)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// Striped-counter scaling control: the identical mix with the registry's
// stat counters disabled. Comparing 8-thread throughput against
// BM_Dispatch_ReadHeavy bounds the registry's concurrency tax -- striping
// should make the two indistinguishable (a shared-line counter would show
// up here as a scaling gap).
void BM_Dispatch_ReadHeavyCountersOff(benchmark::State& state) {
  static ConcurrencyWorld* world =
      MakeWorld(/*journal_on=*/false, /*counters_on=*/false);
  ReadHeavyLoop(state, world);
}
BENCHMARK(BM_Dispatch_ReadHeavyCountersOff)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

// Same mix with the journal on: every dispatch appends a record, so the
// group-commit combiner is on the hot path even for reads.
void BM_Dispatch_ReadHeavyJournal(benchmark::State& state) {
  static ConcurrencyWorld* world = MakeWorld(/*journal_on=*/true);
  ReadHeavyLoop(state, world);
  if (state.thread_index() == 0) {
    // Cumulative across the per-thread-count runs of this benchmark.
    bench::ExportGroupCommitStats(state, world->testbed.monitor().audit().journal());
  }
}
BENCHMARK(BM_Dispatch_ReadHeavyJournal)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Iterations(1 << 14);

// 50/50 share+revoke (both exclusive, multi-record journal families) and
// attestation: contended writers plus group commit under load.
void BM_Dispatch_WriteHeavy(benchmark::State& state) {
  static ConcurrencyWorld* world = MakeWorld(/*journal_on=*/true);
  const auto core = static_cast<CoreId>(state.thread_index());
  Prng prng(0xfeed + core);
  uint64_t nonce = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    if (prng.Below(2) == 0) {
      ApiRegs share;
      share.op = static_cast<uint64_t>(ApiOp::kShareMemory);
      share.arg0 = world->src_cap[core];
      share.arg1 = world->child_handle[core];
      share.arg2 = world->share_base[core];
      share.arg3 = kPageSize;
      share.arg4 = Perms::kRead | Perms::kWrite;
      share.arg5 = static_cast<uint64_t>(CapRights::kAll) << 8;
      const ApiResult shared = Dispatch(&world->testbed.monitor(), core, share);
      ApiRegs revoke;
      revoke.op = static_cast<uint64_t>(ApiOp::kRevoke);
      revoke.arg0 = shared.ret0;
      benchmark::DoNotOptimize(Dispatch(&world->testbed.monitor(), core, revoke));
      ops += 2;
    } else {
      benchmark::DoNotOptimize(AttestSelf(world, core, ++nonce));
      ++ops;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  if (state.thread_index() == 0) {
    bench::ExportGroupCommitStats(state, world->testbed.monitor().audit().journal());
  }
}
BENCHMARK(BM_Dispatch_WriteHeavy)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Iterations(1 << 13);

// Raw concurrent appends against one journal: how much lock traffic does
// flat combining absorb? (Compare against the single-threaded
// BM_JournalAppend_Enabled in bench_journal.)
void BM_JournalAppend_Concurrent(benchmark::State& state) {
  static Journal* journal = new Journal();
  JournalRecord record;
  record.span = 7;
  record.event = static_cast<uint8_t>(JournalEvent::kDispatch);
  record.domain = static_cast<uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal->Append(record));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    bench::ExportGroupCommitStats(state, *journal);
    // All threads have passed the stop barrier: bound the working set
    // before the next thread-count run.
    journal->Clear();
  }
}
BENCHMARK(BM_JournalAppend_Concurrent)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Iterations(1 << 16);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
