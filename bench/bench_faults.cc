// Copyright 2026 The Tyche Reproduction Authors.
// Fault-injection hook overhead. The contract from faults.h: a disabled
// TYCHE_FAULT_POINT is one relaxed atomic load plus a predicted-not-taken
// branch, so production dispatch latency must be indistinguishable from the
// pre-fault-injection baseline (~39-42 ns dispatch fast path, see
// bench_telemetry / bench_journal).
//
//  1. Raw hook cost: a Status-returning function that is nothing but the
//     hook, disabled vs counting vs armed-elsewhere vs armed-here-future.
//  2. Dispatch-path cost: the full ABI dispatch loop (kTakeInterrupt, empty
//     queue) with the injector disabled -- the number to compare against
//     BM_Dispatch_JournalOff/TelemetryOff in the bench JSON artifacts.

#include <benchmark/benchmark.h>

#include "src/monitor/dispatch.h"
#include "src/os/testbed.h"
#include "src/support/faults.h"

namespace tyche {
namespace {

constexpr std::string_view kBenchSite = "bench.hook";
constexpr std::string_view kOtherSite = "bench.other";

Status HookedNoop() {
  TYCHE_FAULT_POINT(kBenchSite);
  return OkStatus();
}

// The disabled fast path: this is the cost every production call site pays.
void BM_FaultPoint_Disabled(benchmark::State& state) {
  FaultInjector::Instance().Disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedNoop());
  }
}

// Counting mode: mutex + map lookup per hit; only test harnesses pay this.
void BM_FaultPoint_Counting(benchmark::State& state) {
  FaultInjector::Instance().StartCounting();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedNoop());
  }
  benchmark::DoNotOptimize(FaultInjector::Instance().StopCounting());
}

// Armed, but the plan names a different site: the slow path filters it out.
void BM_FaultPoint_ArmedOtherSite(benchmark::State& state) {
  FaultInjector::Instance().Arm(FaultPlan::Single(kOtherSite, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedNoop());
  }
  FaultInjector::Instance().Disarm();
}

// Armed for this site at an occurrence the loop never reaches: the full
// matching cost without ever firing.
void BM_FaultPoint_ArmedNeverFires(benchmark::State& state) {
  FaultInjector::Instance().Arm(
      FaultPlan::Single(kBenchSite, ~0ull, ErrorCode::kInternal));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedNoop());
  }
  FaultInjector::Instance().Disarm();
}

BENCHMARK(BM_FaultPoint_Disabled);
BENCHMARK(BM_FaultPoint_Counting);
BENCHMARK(BM_FaultPoint_ArmedOtherSite);
BENCHMARK(BM_FaultPoint_ArmedNeverFires);

// The end-to-end number: ABI dispatch with the injector disabled must match
// the ~39-42 ns baseline from bench_telemetry/bench_journal.
void DispatchLoop(benchmark::State& state, bool injector_active) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::abort();
  }
  Monitor& monitor = testbed->monitor();
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(false);
  monitor.audit().set_enabled(false);
  if (injector_active) {
    FaultInjector::Instance().Arm(FaultPlan::Single(kOtherSite, 1));
  } else {
    FaultInjector::Instance().Disarm();
  }

  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dispatch(&monitor, 0, regs));
  }
  FaultInjector::Instance().Disarm();
}

void BM_Dispatch_FaultsDisabled(benchmark::State& state) {
  DispatchLoop(state, /*injector_active=*/false);
}
// Armed (for sites the dispatch path never hits): the worst case a test run
// pays while a plan is live.
void BM_Dispatch_FaultsArmed(benchmark::State& state) {
  DispatchLoop(state, /*injector_active=*/true);
}

BENCHMARK(BM_Dispatch_FaultsDisabled);
BENCHMARK(BM_Dispatch_FaultsArmed);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
