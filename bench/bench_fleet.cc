// Copyright 2026 The Tyche Reproduction Authors.
// Fleet verification throughput under three weather conditions
// (DESIGN.md §12, EXPERIMENTS.md C10):
//
//   BM_FleetHealthy   -- all nodes serving, Zipf-distributed service load:
//                        the steady state where the measurement cache does
//                        most of the work (cache_hit_ratio counter).
//   BM_FleetWire      -- healthy fleet, cache invalidated before every
//                        verify: the full two-tier wire path, and the
//                        reference for the degraded-mode gate.
//   BM_FleetOneDown   -- node 0 crashed and failed over during setup; the
//                        timed region is the 2-node WIRE steady state (cache
//                        invalidated per verify), i.e. the cost of running
//                        degraded, not the failover itself.
//   BM_FleetOverload  -- Submit() bursts past the admission queue capacity
//                        with periodic drains, cache cleared per burst;
//                        shed_ratio counts the typed kOverloaded fraction
//                        (bounded work, never a hang).
//
// Phase-2 throughput modes (DESIGN.md §13, EXPERIMENTS.md C11):
//
//   BM_QuoteVerifySingle8 / BM_QuoteVerifyBatch8
//                     -- the verifier's hot loop in isolation: 8 quotes from
//                        one monitor key checked one by one vs as ONE
//                        randomized-combiner multi-exponentiation. The pair
//                        carries the batch-speedup gate.
//   BM_FleetBatchDrain/1 and /8
//                     -- end to end: 8 same-node requests drained serially
//                        (max_batch=1) vs as one batch (max_batch=8), cache
//                        off and resumption off so the wire+verify path is
//                        what gets timed. Both drain 8 quotes per iteration,
//                        so real_time is directly comparable.
//   BM_FleetFullChainVerify / BM_FleetResumedVerify
//                     -- one verification paying the full two-tier chain
//                        walk every iteration vs riding an established
//                        session token. The pair carries the resumption gate.
//   BM_FleetQuotaAdmission
//                     -- warm-cache Submit() under per-tenant token buckets;
//                        quota_reject_ratio must stay inside the recorded
//                        band (admission keeps throttling, never collapses
//                        into rejecting everything or nothing).
//   BM_FleetManyDomains
//                     -- Zipf verification against 2 nodes x 1024 sealed
//                        domains (tight window packing): the thousands-of-
//                        domains scale point.
//
// real_time is host time per operation; the sim_p50/p90/p99_ns counters are
// percentiles of the front end's DETERMINISTIC simulated latency, so the
// baseline gates on them are machine-independent by construction.
// verifications/sec comes out of google-benchmark's items_per_second.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/crypto/schnorr.h"
#include "src/fleet/frontend.h"
#include "src/fleet/zipf.h"

namespace tyche {
namespace {

struct World {
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<VerificationFrontEnd> frontend;
};

World MakeWorld(size_t queue_capacity = 16) {
  World world;
  world.fleet = Fleet::Create(FleetOptions{});
  if (world.fleet == nullptr) {
    std::abort();  // a bench without a world has nothing to measure
  }
  FrontEndOptions options;
  options.queue_capacity = queue_capacity;
  world.frontend =
      std::make_unique<VerificationFrontEnd>(world.fleet.get(), options);
  return world;
}

// Percentile over simulated per-verify latencies (exact, not histogram
// buckets: the sample count is the iteration count, which is small enough
// to sort).
uint64_t Percentile(std::vector<uint64_t>* samples, double p) {
  if (samples->empty()) {
    return 0;
  }
  std::sort(samples->begin(), samples->end());
  const size_t index = std::min(
      samples->size() - 1, static_cast<size_t>(p * (samples->size() - 1) + 0.5));
  return (*samples)[index];
}

void ReportSimPercentiles(benchmark::State& state, std::vector<uint64_t>* samples) {
  state.counters["sim_p50_ns"] = static_cast<double>(Percentile(samples, 0.50));
  state.counters["sim_p90_ns"] = static_cast<double>(Percentile(samples, 0.90));
  state.counters["sim_p99_ns"] = static_cast<double>(Percentile(samples, 0.99));
}

void ReportCacheRatio(benchmark::State& state, VerificationFrontEnd* frontend) {
  const double hits = static_cast<double>(frontend->cache().hits());
  const double total = hits + static_cast<double>(frontend->cache().misses());
  state.counters["cache_hit_ratio"] = total > 0 ? hits / total : 0.0;
}

// Drops every cached measurement (all epochs of all nodes), forcing the
// next verification of each service back onto the wire.
void DropCache(World* world) {
  for (size_t n = 0; n < world->fleet->num_nodes(); ++n) {
    world->frontend->cache().InvalidateEpochsBelow(static_cast<uint32_t>(n),
                                                   UINT64_MAX);
  }
}

// Shared verify loop: one Zipf-picked verification per iteration, optional
// cache drop before each so the wire path is what gets timed.
void RunVerifyLoop(benchmark::State& state, World* world, uint64_t seed,
                   bool wire_only) {
  const ZipfPicker zipf(world->fleet->num_services(), /*s=*/1.1);
  Prng load(seed);
  std::vector<uint64_t> latencies;
  uint64_t nonce = 1;
  uint64_t verified = 0;
  for (auto _ : state) {
    if (wire_only) {
      DropCache(world);
    }
    const auto verdict =
        world->frontend->Verify({zipf.Pick(load), /*nonce=*/nonce});
    ++nonce;
    if (!verdict.ok()) {
      state.SkipWithError(verdict.status().ToString().c_str());
      return;
    }
    ++verified;
    latencies.push_back(verdict->latency_ns);
  }
  state.SetItemsProcessed(static_cast<int64_t>(verified));
  ReportSimPercentiles(state, &latencies);
  ReportCacheRatio(state, world->frontend.get());
}

void BM_FleetHealthy(benchmark::State& state) {
  World world = MakeWorld();
  RunVerifyLoop(state, &world, 0xBE7C4, /*wire_only=*/false);
}
BENCHMARK(BM_FleetHealthy);

void BM_FleetWire(benchmark::State& state) {
  World world = MakeWorld();
  RunVerifyLoop(state, &world, 0xBE7C5, /*wire_only=*/true);
}
BENCHMARK(BM_FleetWire);

void BM_FleetOneDown(benchmark::State& state) {
  World world = MakeWorld();
  // The failover ladder runs during setup; the timed region is the degraded
  // steady state (two nodes carrying all six services).
  world.fleet->node(0)->Crash();
  if (!world.frontend->TriggerFailover(0).ok()) {
    state.SkipWithError("failover failed");
    return;
  }
  RunVerifyLoop(state, &world, 0xBE7C6, /*wire_only=*/true);
  state.counters["failovers"] =
      static_cast<double>(world.frontend->failovers_triggered());
}
BENCHMARK(BM_FleetOneDown);

// --- Phase 2: batched quote verification ----------------------------------

// 8 valid quotes from one monitor key — the shape DrainQueue's batch path
// hands to the verifier.
std::vector<SchnorrBatchItem> MakeQuoteBatch(size_t n) {
  const uint8_t seed[] = {'b', 'e', 'n', 'c', 'h', '-', 'b', 'v'};
  const SchnorrKeyPair key = DeriveKeyPair(seed);
  std::vector<SchnorrBatchItem> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Digest digest;
    for (size_t b = 0; b < digest.bytes.size(); ++b) {
      digest.bytes[b] = static_cast<uint8_t>(0x33 ^ (i * 17) ^ (b * 5));
    }
    items.push_back({key.pub, digest, SchnorrSign(key.priv, digest)});
  }
  return items;
}

void BM_QuoteVerifySingle8(benchmark::State& state) {
  const auto items = MakeQuoteBatch(8);
  for (auto _ : state) {
    bool all = true;
    for (const auto& item : items) {
      all = all && SchnorrVerify(item.pub, item.message_digest, item.sig);
    }
    benchmark::DoNotOptimize(all);
    if (!all) {
      state.SkipWithError("single verify rejected a valid quote");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_QuoteVerifySingle8);

void BM_QuoteVerifyBatch8(benchmark::State& state) {
  const auto items = MakeQuoteBatch(8);
  for (auto _ : state) {
    const SchnorrBatchOutcome outcome = SchnorrBatchVerify(items);
    benchmark::DoNotOptimize(outcome);
    if (!outcome.all_valid || outcome.used_fallback) {
      state.SkipWithError("batch verification fell back on valid quotes");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_QuoteVerifyBatch8);

// End to end: 8 requests homed on ONE node, drained serially (arg 1) or as
// one batch (arg 8). Cache and resumption are off in both variants so the
// measured delta is the batched wire round + batched Schnorr check; both
// variants process 8 quotes per iteration, making real_time comparable.
void BM_FleetBatchDrain(benchmark::State& state) {
  World world;
  FleetOptions fleet_options;
  fleet_options.num_nodes = 2;
  fleet_options.services_per_node = 8;
  world.fleet = Fleet::Create(fleet_options);
  if (world.fleet == nullptr) {
    std::abort();
  }
  FrontEndOptions options;
  options.cache_capacity = 0;        // every drain pays the wire
  options.enable_resumption = false; // isolate batching from resumption
  options.max_batch = static_cast<size_t>(state.range(0));
  world.frontend =
      std::make_unique<VerificationFrontEnd>(world.fleet.get(), options);

  uint64_t nonce = 1;
  uint64_t quotes = 0;
  for (auto _ : state) {
    for (uint32_t s = 0; s < 8; ++s) {  // services 0..7 all live on node 0
      const auto outcome = world.frontend->Submit({s, /*nonce=*/nonce});
      ++nonce;
      if (!outcome.ok() || !outcome->enqueued) {
        state.SkipWithError("submit did not enqueue");
        return;
      }
    }
    const auto drained = world.frontend->DrainQueue();
    for (const auto& item : drained) {
      if (!item.result.ok()) {
        state.SkipWithError(item.result.status().ToString().c_str());
        return;
      }
    }
    quotes += drained.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(quotes));
  state.counters["batch_verifies"] =
      static_cast<double>(world.frontend->batch_verifies());
  state.counters["batch_fallbacks"] =
      static_cast<double>(world.frontend->batch_fallbacks());
}
BENCHMARK(BM_FleetBatchDrain)->Arg(1)->Arg(8);

// --- Phase 2: session resumption ------------------------------------------

// Reference: every iteration re-pays tier 1 (identity + TPM quote) and
// tier 2 (attest + report verify) — the cost a verifier without sessions
// pays for every repeat verification.
void BM_FleetFullChainVerify(benchmark::State& state) {
  World world;
  world.fleet = Fleet::Create(FleetOptions{});
  if (world.fleet == nullptr) {
    std::abort();
  }
  FrontEndOptions options;
  options.cache_capacity = 0;
  options.enable_resumption = false;
  world.frontend =
      std::make_unique<VerificationFrontEnd>(world.fleet.get(), options);
  uint64_t nonce = 1;
  for (auto _ : state) {
    world.frontend->ForgetVerifiedMonitors();
    const auto verdict = world.frontend->Verify({/*service=*/0, /*nonce=*/nonce});
    ++nonce;
    if (!verdict.ok()) {
      state.SkipWithError(verdict.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetFullChainVerify);

void BM_FleetResumedVerify(benchmark::State& state) {
  World world;
  world.fleet = Fleet::Create(FleetOptions{});
  if (world.fleet == nullptr) {
    std::abort();
  }
  FrontEndOptions options;
  options.cache_capacity = 0;  // force the wire — resumption, not the cache
  world.frontend =
      std::make_unique<VerificationFrontEnd>(world.fleet.get(), options);
  // Establish the session with one full chain walk outside the timed region.
  if (!world.frontend->Verify({/*service=*/0, /*nonce=*/0xFEED}).ok()) {
    state.SkipWithError("session establishment failed");
    return;
  }
  uint64_t nonce = 1;
  for (auto _ : state) {
    const auto verdict = world.frontend->Verify({/*service=*/0, /*nonce=*/nonce});
    ++nonce;
    if (!verdict.ok() || !verdict->resumed) {
      state.SkipWithError("verification did not resume");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sessions_resumed"] =
      static_cast<double>(world.frontend->sessions_resumed());
}
BENCHMARK(BM_FleetResumedVerify);

// --- Phase 2: tenant quotas -----------------------------------------------

// Warm-cache admission under per-tenant token buckets: 4 tenants arrive at
// ~250 req/s each (1 ms of simulated time per arrival) against a 125/s
// refill, so roughly half of each tenant's traffic is throttled with typed
// kQuotaExceeded. quota_reject_ratio carries the gate: the bucket keeps
// throttling (ratio above the floor) without collapsing into rejecting
// everything (below the ceiling).
void BM_FleetQuotaAdmission(benchmark::State& state) {
  World world;
  world.fleet = Fleet::Create(FleetOptions{});
  if (world.fleet == nullptr) {
    std::abort();
  }
  FrontEndOptions options;
  options.tenant_quota.rate_per_sec = 125.0;
  options.tenant_quota.burst = 4.0;
  world.frontend =
      std::make_unique<VerificationFrontEnd>(world.fleet.get(), options);
  for (uint32_t s = 0; s < world.fleet->num_services(); ++s) {
    if (!world.frontend->Verify({s, /*nonce=*/0xAB00 + s}).ok()) {
      state.SkipWithError("cache warmup failed");
      return;
    }
  }
  Prng load(0xBE7C8);
  uint64_t nonce = 1;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  for (auto _ : state) {
    world.fleet->clock().Advance(1'000'000);  // 1 ms between arrivals
    VerifyRequest request;
    request.service =
        static_cast<uint32_t>(load.Next() % world.fleet->num_services());
    request.nonce = nonce++;
    request.tenant = static_cast<uint32_t>(load.Next() % 4);
    const auto outcome = world.frontend->Submit(request);
    if (outcome.ok()) {
      ++admitted;
    } else if (outcome.code() == ErrorCode::kQuotaExceeded) {
      ++rejected;
    } else {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(admitted + rejected));
  const double total = static_cast<double>(admitted + rejected);
  state.counters["quota_reject_ratio"] =
      total > 0 ? static_cast<double>(rejected) / total : 0.0;
}
BENCHMARK(BM_FleetQuotaAdmission);

// --- Phase 2: thousands of domains per node -------------------------------

void BM_FleetManyDomains(benchmark::State& state) {
  // 2048 sealed domains take a while to install; boot the world once and
  // leak it — google-benchmark re-enters this function for its timing runs.
  static World* world = [] {
    auto* built = new World;
    FleetOptions options;
    options.num_nodes = 2;
    options.services_per_node = 1024;
    options.pages_per_service = 1;
    built->fleet = Fleet::Create(options);
    if (built->fleet == nullptr) {
      std::abort();
    }
    built->frontend = std::make_unique<VerificationFrontEnd>(built->fleet.get());
    return built;
  }();
  static uint64_t nonce = 1;
  const ZipfPicker zipf(world->fleet->num_services(), /*s=*/1.1);
  Prng load(0xBE7C9);
  std::vector<uint64_t> latencies;
  uint64_t verified = 0;
  for (auto _ : state) {
    const auto verdict = world->frontend->Verify({zipf.Pick(load), /*nonce=*/nonce});
    ++nonce;
    if (!verdict.ok()) {
      state.SkipWithError(verdict.status().ToString().c_str());
      return;
    }
    ++verified;
    latencies.push_back(verdict->latency_ns);
  }
  state.SetItemsProcessed(static_cast<int64_t>(verified));
  ReportSimPercentiles(state, &latencies);
  ReportCacheRatio(state, world->frontend.get());
  state.counters["domains"] = static_cast<double>(world->fleet->num_services());
}
BENCHMARK(BM_FleetManyDomains);

void BM_FleetOverload(benchmark::State& state) {
  constexpr size_t kQueueCapacity = 8;
  World world = MakeWorld(kQueueCapacity);
  const ZipfPicker zipf(world.fleet->num_services(), /*s=*/1.1);
  Prng load(0xBE7C7);
  uint64_t nonce = 1;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t verified = 0;
  for (auto _ : state) {
    // Burst at 3x the queue capacity, then drain: every request terminates
    // with a verdict or a typed kOverloaded, never an unbounded queue. The
    // cache is dropped first so the burst really queues instead of being
    // answered inline.
    DropCache(&world);
    for (size_t i = 0; i < 3 * kQueueCapacity; ++i) {
      const auto outcome =
          world.frontend->Submit({zipf.Pick(load), /*nonce=*/nonce});
      ++nonce;
      if (outcome.ok()) {
        ++admitted;
        verified += outcome->verdict.has_value() ? 1 : 0;
      } else if (outcome.code() == ErrorCode::kOverloaded) {
        ++shed;
      } else {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
    }
    for (const auto& item : world.frontend->DrainQueue()) {
      if (item.result.ok()) {
        ++verified;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(admitted + shed));
  const double total = static_cast<double>(admitted + shed);
  state.counters["shed_ratio"] = total > 0 ? static_cast<double>(shed) / total : 0.0;
  state.counters["verified"] = static_cast<double>(verified);
  ReportCacheRatio(state, world.frontend.get());
}
BENCHMARK(BM_FleetOverload);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
