// Copyright 2026 The Tyche Reproduction Authors.
// Fleet verification throughput under three weather conditions
// (DESIGN.md §12, EXPERIMENTS.md C10):
//
//   BM_FleetHealthy   -- all nodes serving, Zipf-distributed service load:
//                        the steady state where the measurement cache does
//                        most of the work (cache_hit_ratio counter).
//   BM_FleetWire      -- healthy fleet, cache invalidated before every
//                        verify: the full two-tier wire path, and the
//                        reference for the degraded-mode gate.
//   BM_FleetOneDown   -- node 0 crashed and failed over during setup; the
//                        timed region is the 2-node WIRE steady state (cache
//                        invalidated per verify), i.e. the cost of running
//                        degraded, not the failover itself.
//   BM_FleetOverload  -- Submit() bursts past the admission queue capacity
//                        with periodic drains, cache cleared per burst;
//                        shed_ratio counts the typed kOverloaded fraction
//                        (bounded work, never a hang).
//
// real_time is host time per operation; the sim_p50/p90/p99_ns counters are
// percentiles of the front end's DETERMINISTIC simulated latency, so the
// baseline gates on them are machine-independent by construction.
// verifications/sec comes out of google-benchmark's items_per_second.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/fleet/frontend.h"
#include "src/fleet/zipf.h"

namespace tyche {
namespace {

struct World {
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<VerificationFrontEnd> frontend;
};

World MakeWorld(size_t queue_capacity = 16) {
  World world;
  world.fleet = Fleet::Create(FleetOptions{});
  if (world.fleet == nullptr) {
    std::abort();  // a bench without a world has nothing to measure
  }
  FrontEndOptions options;
  options.queue_capacity = queue_capacity;
  world.frontend =
      std::make_unique<VerificationFrontEnd>(world.fleet.get(), options);
  return world;
}

// Percentile over simulated per-verify latencies (exact, not histogram
// buckets: the sample count is the iteration count, which is small enough
// to sort).
uint64_t Percentile(std::vector<uint64_t>* samples, double p) {
  if (samples->empty()) {
    return 0;
  }
  std::sort(samples->begin(), samples->end());
  const size_t index = std::min(
      samples->size() - 1, static_cast<size_t>(p * (samples->size() - 1) + 0.5));
  return (*samples)[index];
}

void ReportSimPercentiles(benchmark::State& state, std::vector<uint64_t>* samples) {
  state.counters["sim_p50_ns"] = static_cast<double>(Percentile(samples, 0.50));
  state.counters["sim_p90_ns"] = static_cast<double>(Percentile(samples, 0.90));
  state.counters["sim_p99_ns"] = static_cast<double>(Percentile(samples, 0.99));
}

void ReportCacheRatio(benchmark::State& state, VerificationFrontEnd* frontend) {
  const double hits = static_cast<double>(frontend->cache().hits());
  const double total = hits + static_cast<double>(frontend->cache().misses());
  state.counters["cache_hit_ratio"] = total > 0 ? hits / total : 0.0;
}

// Drops every cached measurement (all epochs of all nodes), forcing the
// next verification of each service back onto the wire.
void DropCache(World* world) {
  for (size_t n = 0; n < world->fleet->num_nodes(); ++n) {
    world->frontend->cache().InvalidateEpochsBelow(static_cast<uint32_t>(n),
                                                   UINT64_MAX);
  }
}

// Shared verify loop: one Zipf-picked verification per iteration, optional
// cache drop before each so the wire path is what gets timed.
void RunVerifyLoop(benchmark::State& state, World* world, uint64_t seed,
                   bool wire_only) {
  const ZipfPicker zipf(world->fleet->num_services(), /*s=*/1.1);
  Prng load(seed);
  std::vector<uint64_t> latencies;
  uint64_t nonce = 1;
  uint64_t verified = 0;
  for (auto _ : state) {
    if (wire_only) {
      DropCache(world);
    }
    const auto verdict =
        world->frontend->Verify({zipf.Pick(load), /*nonce=*/nonce});
    ++nonce;
    if (!verdict.ok()) {
      state.SkipWithError(verdict.status().ToString().c_str());
      return;
    }
    ++verified;
    latencies.push_back(verdict->latency_ns);
  }
  state.SetItemsProcessed(static_cast<int64_t>(verified));
  ReportSimPercentiles(state, &latencies);
  ReportCacheRatio(state, world->frontend.get());
}

void BM_FleetHealthy(benchmark::State& state) {
  World world = MakeWorld();
  RunVerifyLoop(state, &world, 0xBE7C4, /*wire_only=*/false);
}
BENCHMARK(BM_FleetHealthy);

void BM_FleetWire(benchmark::State& state) {
  World world = MakeWorld();
  RunVerifyLoop(state, &world, 0xBE7C5, /*wire_only=*/true);
}
BENCHMARK(BM_FleetWire);

void BM_FleetOneDown(benchmark::State& state) {
  World world = MakeWorld();
  // The failover ladder runs during setup; the timed region is the degraded
  // steady state (two nodes carrying all six services).
  world.fleet->node(0)->Crash();
  if (!world.frontend->TriggerFailover(0).ok()) {
    state.SkipWithError("failover failed");
    return;
  }
  RunVerifyLoop(state, &world, 0xBE7C6, /*wire_only=*/true);
  state.counters["failovers"] =
      static_cast<double>(world.frontend->failovers_triggered());
}
BENCHMARK(BM_FleetOneDown);

void BM_FleetOverload(benchmark::State& state) {
  constexpr size_t kQueueCapacity = 8;
  World world = MakeWorld(kQueueCapacity);
  const ZipfPicker zipf(world.fleet->num_services(), /*s=*/1.1);
  Prng load(0xBE7C7);
  uint64_t nonce = 1;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t verified = 0;
  for (auto _ : state) {
    // Burst at 3x the queue capacity, then drain: every request terminates
    // with a verdict or a typed kOverloaded, never an unbounded queue. The
    // cache is dropped first so the burst really queues instead of being
    // answered inline.
    DropCache(&world);
    for (size_t i = 0; i < 3 * kQueueCapacity; ++i) {
      const auto outcome =
          world.frontend->Submit({zipf.Pick(load), /*nonce=*/nonce});
      ++nonce;
      if (outcome.ok()) {
        ++admitted;
        verified += outcome->verdict.has_value() ? 1 : 0;
      } else if (outcome.code() == ErrorCode::kOverloaded) {
        ++shed;
      } else {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
    }
    for (const auto& item : world.frontend->DrainQueue()) {
      if (item.result.ok()) {
        ++verified;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(admitted + shed));
  const double total = static_cast<double>(admitted + shed);
  state.counters["shed_ratio"] = total > 0 ? static_cast<double>(shed) / total : 0.0;
  state.counters["verified"] = static_cast<double>(verified);
  ReportCacheRatio(state, world.frontend.get());
}
BENCHMARK(BM_FleetOverload);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
