// Copyright 2026 The Tyche Reproduction Authors.
// Dispatch phase-profiler overhead and accounting. Two acceptance bars,
// both enforced by tools/check_latency_gate.py against
// bench/baselines/profile_baseline.json in the same CI run:
//
//  1. Overhead: BM_Dispatch_ProfilingOn vs BM_Dispatch_ProfilingOff (same
//     telemetry configuration, profiler the only difference) must stay
//     within 1.15x on the mean and within one log2 bucket on p99. Both
//     export the shared p50/p90/p99 counters plus the per-phase totals, so
//     a tripped gate names WHICH phase grew instead of just "slower".
//  2. Accounting: the per-phase sums (minus the detached telemetry phase)
//     must reconcile with the end-to-end histogram total within 10% --
//     phase_sum_ratio, gated as a counter-bounds check. The window opens
//     and closes on the same clock reads the TraceEntry timing uses, so
//     this ratio catches any drift in the continuous accounting.
//
// The overhead pair uses the empty-queue kTakeInterrupt loop every other
// dispatch bench uses (plumbing-dominated, comparable numbers); the
// reconciliation bench uses a mixed lifecycle workload so every phase --
// engine, backend, journal, lock waits -- carries real time.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/monitor/dispatch.h"

namespace tyche {
namespace {

void ProfiledDispatchLoop(benchmark::State& state, bool profiling) {
  Testbed testbed = bench::MustTestbed();
  Monitor& monitor = testbed.monitor();
  // Histograms stay ON in both variants: the p99 gate needs percentile
  // counters from the same run, and a shared configuration keeps the
  // comparison profiler-only.
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(true);
  monitor.set_counters_enabled(false);
  monitor.audit().set_enabled(false);
  monitor.profiler().set_enabled(profiling);

  ApiRegs regs;
  regs.op = static_cast<uint64_t>(ApiOp::kTakeInterrupt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dispatch(&monitor, 0, regs));
  }
  bench::ExportPercentiles(state, monitor);
  if (profiling) {
    bench::ExportPhaseTotals(state, monitor.profiler());
    state.counters["profiled_samples"] =
        static_cast<double>(monitor.profiler().TotalSamples());
  }
}

void BM_Dispatch_ProfilingOff(benchmark::State& state) {
  ProfiledDispatchLoop(state, /*profiling=*/false);
}
void BM_Dispatch_ProfilingOn(benchmark::State& state) {
  ProfiledDispatchLoop(state, /*profiling=*/true);
}
BENCHMARK(BM_Dispatch_ProfilingOff);
BENCHMARK(BM_Dispatch_ProfilingOn);

// Mixed domain-lifecycle workload with every layer on: the phase sums must
// add back up to the end-to-end latency. kOther is the residual bucket, so
// the only excluded phase is telemetry (recorded detached, after the e2e
// clock stops). phase_sum_ratio is gated at [0.90, 1.10].
void BM_Dispatch_PhaseReconciliation(benchmark::State& state) {
  Testbed testbed = bench::MustTestbed();
  Monitor& monitor = testbed.monitor();
  monitor.telemetry().set_trace_enabled(false);
  monitor.telemetry().set_histograms_enabled(true);
  monitor.set_counters_enabled(true);
  monitor.audit().set_enabled(true);
  monitor.profiler().set_enabled(true);

  auto call = [&](ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                  uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs{static_cast<uint64_t>(op), a0, a1, a2, a3, a4, a5};
    return Dispatch(&monitor, /*core=*/0, regs);
  };
  const uint64_t scratch = testbed.Scratch(0);
  const auto os_mem = testbed.OsMemCap(AddrRange{scratch, 64 * kPageSize});
  if (!os_mem.ok()) {
    std::abort();
  }
  const uint64_t rights_policy =
      (static_cast<uint64_t>(CapRights::kAll) << 8) | RevocationPolicy::kZeroMemory;

  for (auto _ : state) {
    const ApiResult created = call(ApiOp::kCreateDomain);
    const ApiResult shared = call(ApiOp::kShareMemory, *os_mem, created.ret1, scratch,
                                  8 * kPageSize, Perms::kRW, rights_policy);
    call(ApiOp::kEnumerate, created.ret1);
    call(ApiOp::kRevoke, shared.ret0);
    call(ApiOp::kDestroyDomain, created.ret1);
  }

  uint64_t e2e_sum = 0;
  for (size_t op = 0; op < monitor.telemetry().op_count(); ++op) {
    e2e_sum += monitor.telemetry().OpHistogram(op).sum();
  }
  uint64_t phase_sum = 0;
  const DispatchProfiler& profiler = monitor.profiler();
  for (uint16_t op = 0; op < static_cast<uint16_t>(profiler.op_count()); ++op) {
    for (size_t p = 0; p < kDispatchPhaseCount; ++p) {
      if (static_cast<DispatchPhase>(p) == DispatchPhase::kTelemetry) {
        continue;  // detached: runs after the e2e clock stops
      }
      phase_sum += profiler.PhaseSnapshot(op, static_cast<DispatchPhase>(p)).sum;
    }
  }
  state.counters["e2e_sum_ns"] = static_cast<double>(e2e_sum);
  state.counters["phase_sum_ns"] = static_cast<double>(phase_sum);
  state.counters["phase_sum_ratio"] =
      e2e_sum == 0 ? 0.0 : static_cast<double>(phase_sum) / static_cast<double>(e2e_sum);
  bench::ExportPhaseTotals(state, profiler);
}
BENCHMARK(BM_Dispatch_PhaseReconciliation)->Iterations(1 << 12);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
