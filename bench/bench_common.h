// Copyright 2026 The Tyche Reproduction Authors.
// Shared JSON-schema helpers for the dispatch-path benchmarks.
//
// Every bench that feeds tools/check_latency_gate.py exports the same
// counter names on top of google-benchmark's name/real_time (mean ns):
//
//   p50_ns / p90_ns / p99_ns      histogram-view percentiles (benches that
//                                 run with latency histograms enabled)
//   batches / batched_records /   journal group-commit stats (benches that
//   max_batch                     run with the journal enabled)
//   phase_<name>_ns               per-phase attribution totals
//                                 (bench_profile)
//
// Keeping the names in one header keeps the gate baselines, the CI artifact
// consumers, and the benches from drifting apart.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "src/os/testbed.h"
#include "src/support/journal.h"
#include "src/support/profiler.h"

namespace tyche {
namespace bench {

// Testbed::Create with the bench-standard failure policy (abort: a bench
// without a world has nothing to measure).
inline Testbed MustTestbed(TestbedOptions options = TestbedOptions{}) {
  auto testbed = Testbed::Create(options);
  if (!testbed.ok()) {
    std::abort();
  }
  return std::move(*testbed);
}

// Percentiles of the merged per-op latency histogram, exported under the
// shared counter names. Call only when histograms were enabled for the
// measured loop; the latency gate compares these across benches.
inline void ExportPercentiles(benchmark::State& state, Monitor& monitor) {
  const LatencyHistogram merged = monitor.telemetry().MergedHistogram();
  state.counters["p50_ns"] = static_cast<double>(merged.Percentile(50));
  state.counters["p90_ns"] = static_cast<double>(merged.Percentile(90));
  state.counters["p99_ns"] = static_cast<double>(merged.Percentile(99));
}

// Journal group-commit stats under the shared counter names.
inline void ExportGroupCommitStats(benchmark::State& state, const Journal& journal) {
  const auto stats = journal.group_commit_stats();
  state.counters["batches"] = static_cast<double>(stats.batches);
  state.counters["batched_records"] = static_cast<double>(stats.batched_records);
  state.counters["max_batch"] = static_cast<double>(stats.max_batch);
}

// Per-phase attribution totals summed over every op, exported as
// phase_<name>_ns. The latency gate uses these to name the phase that
// regressed when the profiling-overhead gate trips.
inline void ExportPhaseTotals(benchmark::State& state, const DispatchProfiler& profiler) {
  for (size_t p = 0; p < kDispatchPhaseCount; ++p) {
    const auto phase = static_cast<DispatchPhase>(p);
    uint64_t total = 0;
    for (uint16_t op = 0; op < static_cast<uint16_t>(profiler.op_count()); ++op) {
      total += profiler.PhaseSnapshot(op, phase).sum;
    }
    state.counters[std::string("phase_") + DispatchPhaseName(phase) + "_ns"] =
        static_cast<double>(total);
  }
}

}  // namespace bench
}  // namespace tyche

#endif  // BENCH_BENCH_COMMON_H_
