// Copyright 2026 The Tyche Reproduction Authors.
// Ablations of the reproduction's design choices (DESIGN.md §4 companion):
//   A1  scrub-on-exit side-channel mitigation: what the policy costs per
//       transition, vs plain trap transitions and the fast path.
//   A2  ASID/VPID-tagged TLB: fast transitions keep translations warm;
//       ablated by flushing after every switch (what untagged HW would do).
//   A3  attestation granularity: constant-refcount splitting vs naive
//       one-claim-per-capability reports (claims emitted + what a
//       coarse report would hide).
//   A4  range-scoped backend resync: grant cost must not scale with the
//       domain's total size, only with the granted range.

#include <benchmark/benchmark.h>

#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

Result<Enclave> BuildEnclave(Testbed* testbed, uint64_t base, uint64_t size,
                             bool scrub = false) {
  const TycheImage image = TycheImage::MakeDemo("ablate", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = base;
  load.size = size;
  load.cores = {1};
  load.core_caps = {*testbed->OsCoreCap(1)};
  load.seal = !scrub;
  auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
  if (enclave.ok() && scrub) {
    (void)testbed->monitor().SetTransitionPolicy(0, enclave->handle(), true);
    (void)testbed->monitor().Seal(0, enclave->handle());
  }
  return enclave;
}

// --- A1: transition cost with / without the scrub policy ---

void TransitionWithPolicy(benchmark::State& state, bool scrub) {
  auto testbed = Testbed::Create(TestbedOptions{});
  auto enclave = BuildEnclave(&*testbed, testbed->Scratch(kMiB), kMiB, scrub);
  if (!enclave.ok()) {
    std::abort();
  }
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave->Enter(1));
    benchmark::DoNotOptimize(enclave->Exit(1));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
void BM_A1_Transition_Plain(benchmark::State& state) { TransitionWithPolicy(state, false); }
void BM_A1_Transition_ScrubOnExit(benchmark::State& state) {
  TransitionWithPolicy(state, true);
}
BENCHMARK(BM_A1_Transition_Plain);
BENCHMARK(BM_A1_Transition_ScrubOnExit);

// --- A2: tagged TLB vs flush-per-switch ---

void FastCallsWithTagging(benchmark::State& state, bool tagged) {
  auto testbed = Testbed::Create(TestbedOptions{});
  auto enclave = BuildEnclave(&*testbed, testbed->Scratch(kMiB), kMiB);
  if (!enclave.ok() || !enclave->EnableFastCalls(1).ok()) {
    std::abort();
  }
  // Warm both sides' working sets once.
  (void)testbed->machine().CheckedRead64(1, testbed->Scratch(32 * kMiB));
  (void)enclave->FastEnter(1);
  (void)testbed->machine().CheckedRead64(1, enclave->base());
  (void)enclave->FastExit(1);
  testbed->machine().cpu(1).tlb().ResetStats();

  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave->FastEnter(1));
    if (!tagged) {
      // Untagged hardware cannot keep both address spaces cached.
      testbed->machine().FlushTlb(1);
    }
    benchmark::DoNotOptimize(testbed->machine().CheckedRead64(1, enclave->base()));
    benchmark::DoNotOptimize(enclave->FastExit(1));
    if (!tagged) {
      testbed->machine().FlushTlb(1);
    }
    benchmark::DoNotOptimize(
        testbed->machine().CheckedRead64(1, testbed->Scratch(32 * kMiB)));
    ++ops;
  }
  const auto& stats = testbed->machine().cpu(1).tlb().stats();
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
  state.counters["tlb_miss_rate_pct"] = benchmark::Counter(
      100.0 * static_cast<double>(stats.misses) /
      static_cast<double>(stats.misses + stats.hits));
}
void BM_A2_FastCalls_TaggedTlb(benchmark::State& state) {
  FastCallsWithTagging(state, true);
}
void BM_A2_FastCalls_UntaggedTlb(benchmark::State& state) {
  FastCallsWithTagging(state, false);
}
BENCHMARK(BM_A2_FastCalls_TaggedTlb);
BENCHMARK(BM_A2_FastCalls_UntaggedTlb);

// --- A3: attestation granularity ---

void BM_A3_AttestationGranularity(benchmark::State& state) {
  auto testbed = Testbed::Create(TestbedOptions{});
  // Domain A owns a 4 MiB region and shares ONE page out of its middle with
  // domain B: A's own capability now spans both private and refcount-2
  // bytes. The split-report scheme exposes the page; a naive
  // one-claim-per-capability report would tag the whole 4 MiB with
  // refcount 2.
  const TycheImage image = TycheImage::MakeDemo("grain", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = testbed->Scratch(kMiB);
  load.size = 4 * kMiB;
  load.cores = {1};
  load.core_caps = {*testbed->OsCoreCap(1)};
  load.seal = false;
  auto loaded = LoadImage(&testbed->monitor(), 0, image, load);
  if (!loaded.ok()) {
    std::abort();
  }
  const auto b = testbed->monitor().CreateDomain(0, "peer");
  // Hand A the handle of B, enter A, share the page, return.
  const auto b_handle_for_a = testbed->monitor().ShareUnit(
      0,
      *FindUnitCap(testbed->monitor(), testbed->os_domain(), ResourceKind::kDomain,
                   b->domain),
      loaded->handle, CapRights{}, RevocationPolicy{});
  if (!b_handle_for_a.ok() || !testbed->monitor().Transition(1, loaded->handle).ok()) {
    std::abort();
  }
  const AddrRange window{load.base + 2 * kMiB, kPageSize};
  const DomainId a_id = testbed->monitor().CurrentDomain(1);
  (void)testbed->monitor().ShareMemory(
      1, *FindMemoryCap(testbed->monitor(), a_id, window), *b_handle_for_a, window,
      Perms(Perms::kRW), CapRights{}, RevocationPolicy{});
  (void)testbed->monitor().ReturnFromDomain(1);
  (void)testbed->monitor().Seal(0, loaded->handle);

  uint64_t split_claims = 0;
  uint64_t coarse_claims = 0;
  uint64_t hidden_shared_bytes = 0;
  for (auto _ : state) {
    const auto report = testbed->monitor().AttestDomain(0, loaded->handle, 1);
    if (!report.ok()) {
      state.SkipWithError("attest failed");
      return;
    }
    split_claims = report->resources.size();
    // Naive per-capability report for comparison.
    coarse_claims = 0;
    hidden_shared_bytes = 0;
    testbed->monitor().engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner != loaded->domain) {
        return;
      }
      ++coarse_claims;
      if (cap.kind != ResourceKind::kMemory) {
        return;
      }
      // Bytes whose refcount differs from the cap-wide refcount: what the
      // coarse report misrepresents.
      const uint32_t coarse = testbed->monitor().engine().MemoryRefCount(cap.range);
      for (const RegionView& view : testbed->monitor().engine().MemoryView()) {
        if (view.range.Overlaps(cap.range) && view.ref_count() != coarse) {
          hidden_shared_bytes += std::min(view.range.end(), cap.range.end()) -
                                 std::max(view.range.base, cap.range.base);
        }
      }
    });
    benchmark::DoNotOptimize(report);
  }
  state.counters["split_claims"] = static_cast<double>(split_claims);
  state.counters["coarse_claims"] = static_cast<double>(coarse_claims);
  state.counters["bytes_misrepresented_by_coarse"] =
      static_cast<double>(hidden_shared_bytes);
}
BENCHMARK(BM_A3_AttestationGranularity)->Iterations(20);

// --- A4: range-scoped resync ---

void BM_A4_GrantCostVsDomainSize(benchmark::State& state) {
  TestbedOptions options;
  options.memory_bytes = 512ull << 20;
  auto testbed = Testbed::Create(options);
  const uint64_t domain_size = static_cast<uint64_t>(state.range(0)) * kMiB;
  auto enclave = BuildEnclave(&*testbed, testbed->Scratch(kMiB), domain_size);
  if (!enclave.ok()) {
    std::abort();
  }
  // Repeatedly grant+revoke ONE page into the (unsealed would be needed --
  // use a fresh helper domain instead).
  const auto sink = testbed->monitor().CreateDomain(0, "sink");
  const AddrRange page{testbed->Scratch(256 * kMiB), kPageSize};
  uint64_t sim = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    const auto cap = testbed->OsMemCap(page);
    const uint64_t before = testbed->machine().cycles().cycles();
    const auto grant = testbed->monitor().GrantMemory(0, *cap, sink->handle, page,
                                                      Perms(Perms::kRW),
                                                      CapRights(CapRights::kAll),
                                                      RevocationPolicy{});
    sim += testbed->machine().cycles().cycles() - before;
    if (grant.ok()) {
      (void)testbed->monitor().Revoke(0, grant->granted);
    }
    ++ops;
  }
  // Flat across bystander-domain sizes => resync is range-scoped, not
  // whole-domain.
  state.counters["bystander_domain_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(sim) / static_cast<double>(ops));
}
BENCHMARK(BM_A4_GrantCostVsDomainSize)->Arg(1)->Arg(16)->Arg(64)->Iterations(50);

// --- A5: cost of the OS's guest-paging layer on top of the monitor's ---

void MemoryAccessLayers(benchmark::State& state, bool guest_paging) {
  auto testbed = Testbed::Create(TestbedOptions{});
  const Pid pid = *testbed->os().CreateProcess("layers", kMiB);
  uint64_t addr = (*testbed->os().GetProcess(pid))->memory.base;
  if (guest_paging) {
    if (!testbed->os().RunProcess(1, pid).ok()) {
      std::abort();
    }
    addr = LinOs::kUserBase;
  }
  // Warm the physical-layer TLB.
  (void)testbed->machine().CheckedRead64Virt(1, addr);
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(testbed->machine().CheckedRead64Virt(1, addr));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
void BM_A5_Access_MonitorLayerOnly(benchmark::State& state) {
  MemoryAccessLayers(state, false);
}
void BM_A5_Access_GuestPlusMonitorLayer(benchmark::State& state) {
  MemoryAccessLayers(state, true);
}
BENCHMARK(BM_A5_Access_MonitorLayerOnly);
BENCHMARK(BM_A5_Access_GuestPlusMonitorLayer);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
