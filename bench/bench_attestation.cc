// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C3: the two-tier attestation pipeline (§3.4).
// Shape to check: measurement cost scales linearly with the measured bytes;
// report generation/verification are (cheap) constants on top; the boot
// quote is a one-time cost.

#include <benchmark/benchmark.h>

#include "src/os/testbed.h"
#include "src/tyche/enclave.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

// Builds an enclave whose measured text segment is `measured_bytes` long.
struct AttestWorld {
  Testbed testbed;
  Enclave enclave;
  TycheImage image;
  LoadOptions load;
};

AttestWorld MakeWorld(uint64_t measured_bytes) {
  TestbedOptions options;
  options.memory_bytes = 256ull << 20;
  auto testbed = Testbed::Create(options);
  if (!testbed.ok()) {
    std::abort();
  }
  TycheImage image("measured");
  ImageSegment text;
  text.name = "text";
  text.size = AlignUp(measured_bytes, kPageSize);
  text.perms = Perms(Perms::kRWX);
  text.measured = true;
  text.data.assign(measured_bytes, 0x7a);
  (void)image.AddSegment(std::move(text));
  image.set_entry_offset(0);
  LoadOptions load;
  load.base = testbed->Scratch(kMiB);
  load.size = AlignUp(2 * measured_bytes + kMiB, kMiB);
  load.cores = {1};
  load.core_caps = {*testbed->OsCoreCap(1)};
  auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
  if (!enclave.ok()) {
    std::abort();
  }
  return AttestWorld{std::move(*testbed), std::move(*enclave), std::move(image), load};
}

// Full domain build incl. measurement, vs measured size.
void BM_MeasuredLoad(benchmark::State& state) {
  const uint64_t bytes = static_cast<uint64_t>(state.range(0)) * kMiB;
  uint64_t sim = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TestbedOptions options;
    options.memory_bytes = 256ull << 20;
    auto testbed = Testbed::Create(options);
    TycheImage image("m");
    ImageSegment text;
    text.name = "text";
    text.size = bytes;
    text.perms = Perms(Perms::kRWX);
    text.measured = true;
    text.data.assign(1024, 1);
    (void)image.AddSegment(std::move(text));
    image.set_entry_offset(0);
    LoadOptions load;
    load.base = testbed->Scratch(kMiB);
    load.size = bytes + kMiB;
    load.cores = {1};
    load.core_caps = {*testbed->OsCoreCap(1)};
    const uint64_t before = testbed->machine().cycles().cycles();
    state.ResumeTiming();
    auto enclave = Enclave::Create(&testbed->monitor(), 0, image, load);
    state.PauseTiming();
    if (!enclave.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    sim += testbed->machine().cycles().cycles() - before;
    state.ResumeTiming();
  }
  state.counters["measured_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(sim) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MeasuredLoad)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Iterations(5);

// Report generation (monitor side).
void BM_AttestDomain(benchmark::State& state) {
  AttestWorld world = MakeWorld(static_cast<uint64_t>(state.range(0)) * kMiB);
  const uint64_t start = world.testbed.machine().cycles().cycles();
  uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.enclave.Attest(0, nonce++));
  }
  state.counters["measured_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(world.testbed.machine().cycles().cycles() - start) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_AttestDomain)->Arg(1)->Arg(16);

// Report verification (customer side; wall time is the honest metric here
// since verification runs on the verifier's real CPU).
void BM_VerifyDomainReport(benchmark::State& state) {
  AttestWorld world = MakeWorld(4 * kMiB);
  const auto report = world.enclave.Attest(0, 9);
  CustomerVerifier customer(world.testbed.machine().tpm().attestation_key(),
                            world.testbed.golden_firmware(),
                            world.testbed.golden_monitor());
  (void)customer.VerifyMonitor(*world.testbed.monitor().Identity(1), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(customer.VerifyDomainAgainstImage(
        *report, world.image, world.load.base, world.load.size, world.load.cores, 9));
  }
}
BENCHMARK(BM_VerifyDomainReport);

// Offline golden-measurement computation (customer side).
void BM_ComputeExpectedMeasurement(benchmark::State& state) {
  AttestWorld world = MakeWorld(static_cast<uint64_t>(state.range(0)) * kMiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeExpectedMeasurement(world.image, world.load.base,
                                                        world.load.size, world.load.cores));
  }
  state.counters["measured_MiB"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ComputeExpectedMeasurement)->Arg(1)->Arg(16);

// Tier-1: boot quote generation + verification.
void BM_MonitorIdentityQuote(benchmark::State& state) {
  auto testbed = Testbed::Create(TestbedOptions{});
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(testbed->monitor().Identity(nonce++));
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MonitorIdentityQuote);

void BM_VerifyMonitorIdentity(benchmark::State& state) {
  auto testbed = Testbed::Create(TestbedOptions{});
  const auto identity = testbed->monitor().Identity(3);
  CustomerVerifier customer(testbed->machine().tpm().attestation_key(),
                            testbed->golden_firmware(), testbed->golden_monitor());
  for (auto _ : state) {
    benchmark::DoNotOptimize(customer.VerifyMonitor(*identity, 3));
  }
}
BENCHMARK(BM_VerifyMonitorIdentity);

// The whole measured boot (one-time cost).
void BM_MeasuredBoot(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    auto testbed = Testbed::Create(TestbedOptions{});
    benchmark::DoNotOptimize(testbed);
    sim += testbed->machine().cycles().cycles();
    ++ops;
  }
  state.counters["sim_cycles/op"] =
      benchmark::Counter(static_cast<double>(sim) / static_cast<double>(ops));
}
BENCHMARK(BM_MeasuredBoot)->Iterations(10);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
