// Copyright 2026 The Tyche Reproduction Authors.
// Experiment C4: VT-x/EPT backend vs RISC-V/PMP backend (§4).
// Shape to check: the PMP backend enforces the same policies but (1) its
// entry budget caps how fragmented a domain's layout may be, (2) its
// transition cost scales with the entries rewritten, while EPT pays page
// walks and TLB flushes instead.

#include <benchmark/benchmark.h>

#include "src/monitor/pmp_backend.h"
#include "src/monitor/vtx_backend.h"
#include "src/os/testbed.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

Result<Enclave> BuildEnclave(Testbed* testbed, uint64_t base, uint64_t size) {
  const TycheImage image = TycheImage::MakeDemo("bench", 2 * kPageSize, 0);
  LoadOptions load;
  load.base = base;
  load.size = size;
  load.cores = {1};
  load.core_caps = {*testbed->OsCoreCap(1)};
  return Enclave::Create(&testbed->monitor(), 0, image, load);
}

// Full domain build+teardown on each backend, vs domain size.
void DomainLifecycle(benchmark::State& state, IsaArch arch) {
  TestbedOptions options;
  options.arch = arch;
  options.memory_bytes = 512ull << 20;
  auto testbed = Testbed::Create(options);
  if (!testbed.ok()) {
    std::abort();
  }
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kMiB;
  // NAPOT-friendly placement for the PMP backend.
  const uint64_t base = AlignUp(testbed->Scratch(0), size);
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    auto enclave = BuildEnclave(&*testbed, base, size);
    if (!enclave.ok()) {
      state.SkipWithError(enclave.status().ToString().c_str());
      return;
    }
    if (!testbed->monitor().DestroyDomain(0, enclave->handle()).ok()) {
      state.SkipWithError("destroy failed");
      return;
    }
    ++ops;
  }
  state.counters["domain_MiB"] = static_cast<double>(state.range(0));
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
void BM_DomainLifecycle_Ept(benchmark::State& state) {
  DomainLifecycle(state, IsaArch::kX86_64);
}
void BM_DomainLifecycle_Pmp(benchmark::State& state) {
  DomainLifecycle(state, IsaArch::kRiscV);
}
BENCHMARK(BM_DomainLifecycle_Ept)->Arg(1)->Arg(4)->Arg(16)->Iterations(20);
BENCHMARK(BM_DomainLifecycle_Pmp)->Arg(1)->Arg(4)->Arg(16)->Iterations(20);

// Transition cost on each backend.
void TransitionCost(benchmark::State& state, IsaArch arch) {
  TestbedOptions options;
  options.arch = arch;
  auto testbed = Testbed::Create(options);
  const uint64_t base = AlignUp(testbed->Scratch(0), kMiB);
  auto enclave = BuildEnclave(&*testbed, base, kMiB);
  if (!enclave.ok()) {
    std::abort();
  }
  const uint64_t start = testbed->machine().cycles().cycles();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave->Enter(1));
    benchmark::DoNotOptimize(enclave->Exit(1));
    ++ops;
  }
  state.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(testbed->machine().cycles().cycles() - start) /
      static_cast<double>(ops));
}
void BM_Transition_Ept(benchmark::State& state) { TransitionCost(state, IsaArch::kX86_64); }
void BM_Transition_Pmp(benchmark::State& state) { TransitionCost(state, IsaArch::kRiscV); }
BENCHMARK(BM_Transition_Ept);
BENCHMARK(BM_Transition_Pmp);

// PMP layout compilation: entries consumed vs fragmentation, and where the
// budget breaks ("requires a careful memory layout of trust domains").
void BM_PmpCompile(benchmark::State& state) {
  const int64_t fragments = state.range(0);
  std::vector<CapabilityEngine::MappedRegion> map;
  for (int64_t i = 0; i < fragments; ++i) {
    map.push_back({AddrRange{static_cast<uint64_t>(i) * 2 * kMiB, kMiB},
                   Perms(Perms::kRWX)});
  }
  int entries = 0;
  bool fits = true;
  for (auto _ : state) {
    auto program = PmpBackend::Compile(map, PmpBackend::kDomainEntryBudget);
    fits = program.ok();
    entries = fits ? static_cast<int>(program->entries.size()) : 0;
    benchmark::DoNotOptimize(program);
  }
  state.counters["fragments"] = static_cast<double>(fragments);
  state.counters["pmp_entries"] = entries;
  state.counters["fits_budget"] = fits ? 1 : 0;
}
BENCHMARK(BM_PmpCompile)->DenseRange(1, 19, 3);

// Maximum concurrent fragmented domains per machine: EPT is bounded by
// metadata frames, PMP by nothing global (entries are per-hart) -- but each
// DOMAIN's own layout must fit. Measure domains built until failure with
// an N-fragment layout each.
void BM_FragmentedDomainCapacity(benchmark::State& state) {
  const bool use_pmp = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    TestbedOptions options;
    options.arch = use_pmp ? IsaArch::kRiscV : IsaArch::kX86_64;
    options.memory_bytes = 512ull << 20;
    auto testbed = Testbed::Create(options);
    state.ResumeTiming();
    // Each domain: 8 disjoint single-page shares (NAPOT-friendly).
    int built = 0;
    for (int d = 0; d < 64; ++d) {
      auto created = testbed->monitor().CreateDomain(0, "frag");
      if (!created.ok()) {
        break;
      }
      bool all_ok = true;
      for (int i = 0; i < 8; ++i) {
        const AddrRange page{
            testbed->Scratch(static_cast<uint64_t>(d) * kMiB +
                             static_cast<uint64_t>(i) * 8 * kPageSize),
            kPageSize};
        const auto cap = testbed->OsMemCap(page);
        if (!cap.ok() ||
            !testbed->monitor()
                 .ShareMemory(0, *cap, created->handle, page, Perms(Perms::kRW),
                              CapRights{}, RevocationPolicy{})
                 .ok()) {
          all_ok = false;
          break;
        }
      }
      if (!all_ok) {
        break;
      }
      ++built;
    }
    state.counters["domains_built"] = built;
  }
  state.counters["backend_pmp"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FragmentedDomainCapacity)->Arg(0)->Arg(1)->Iterations(3);

// EPT metadata footprint: table frames consumed per domain size.
void BM_EptMetadataFootprint(benchmark::State& state) {
  TestbedOptions options;
  options.memory_bytes = 512ull << 20;
  auto testbed = Testbed::Create(options);
  const uint64_t size = static_cast<uint64_t>(state.range(0)) * kMiB;
  auto enclave = BuildEnclave(&*testbed, AlignUp(testbed->Scratch(0), size), size);
  if (!enclave.ok()) {
    std::abort();
  }
  auto* backend = static_cast<VtxBackend*>(&testbed->monitor().backend());
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->TotalTableFrames());
  }
  state.counters["domain_MiB"] = static_cast<double>(state.range(0));
  state.counters["table_frames"] =
      static_cast<double>(backend->DomainEpt(enclave->domain())->table_frames());
}
BENCHMARK(BM_EptMetadataFootprint)->Arg(1)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tyche

BENCHMARK_MAIN();
