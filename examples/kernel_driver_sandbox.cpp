// Copyright 2026 The Tyche Reproduction Authors.
// Kernel compartmentalization: LinOS confines an untrusted NIC driver to a
// monitor-enforced sandbox. The driver keeps working through its window,
// but its "bugs" (wild DMA, kernel-memory scribbles) are now faults instead
// of kernel compromises. Also shows the per-process enclave that §3.5
// promises ("the monitor transparently allows sub-compartments within a
// process").

#include "examples/demo_common.h"

namespace tyche {
namespace {

int Run() {
  Banner("LinOS boots on the monitor");
  DemoWorld world = MakeDemoWorld(IsaArch::kX86_64, 128ull << 20, /*with_gpu=*/false,
                                  /*with_nic=*/true);
  Monitor* monitor = world.monitor.get();
  Machine* machine = world.machine.get();
  LinOs* os = world.os.get();
  const PciBdf nic_bdf(0, 3, 0);

  const Pid editor = *os->CreateProcess("editor", 8 * kMiB);
  const Pid browser = *os->CreateProcess("browser", 8 * kMiB);
  std::printf("LinOS running with %llu processes (pids %u, %u), scheduler round-robin\n",
              static_cast<unsigned long long>(os->process_count()), editor, browser);
  for (int i = 0; i < 6; ++i) {
    std::printf("  tick %d -> pid %u\n", i, os->scheduler().Tick());
  }

  Banner("the problem: in-kernel drivers are all-powerful");
  auto* nic = static_cast<DmaEngine*>(machine->FindDevice(nic_bdf));
  const AddrRange editor_mem = (*os->GetProcess(editor))->memory;
  const std::vector<uint8_t> secret = {'p', 'w', ':', 's', '3', 'c', 'r', '3', 't'};
  DEMO_CHECK(os->SysWrite(0, editor, editor_mem.base, std::span<const uint8_t>(secret))
                 .ok());
  // A buggy/malicious driver DMAs the editor's secret wherever it wants.
  const bool leak_worked =
      nic->Copy(machine, editor_mem.base, editor_mem.base + 4 * kMiB, secret.size()).ok();
  std::printf("unsandboxed driver DMA over process memory: %s\n",
              leak_worked ? "SUCCEEDS (the monopoly problem)" : "blocked?");
  DEMO_CHECK(leak_worked);

  Banner("the fix: a kernel sandbox owning only its window + the NIC");
  auto sandbox =
      os->LoadDriverSandboxed(0, "nic-driver", kMiB, world.OsDeviceCap(nic_bdf.value), 1,
                              world.OsCoreCap(1));
  DEMO_CHECK(sandbox.ok());
  const AddrRange window = monitor->engine().DomainMemoryMap(sandbox->domain())[0].range;
  std::printf("driver sandbox: domain %u, window [0x%llx, +%llu KiB], NIC granted\n",
              sandbox->domain(), static_cast<unsigned long long>(window.base),
              static_cast<unsigned long long>(window.size / 1024));

  // Legitimate driver work: DMA within its window.
  const bool rx_ok = nic->Copy(machine, window.base, window.base + kPageSize, 1500).ok();
  std::printf("  driver RX path (DMA inside window):        %s\n", rx_ok ? "OK" : "fault");
  DEMO_CHECK(rx_ok);

  // The same attacks, now blocked.
  const auto dma_attack = nic->Copy(machine, editor_mem.base, window.base, secret.size());
  std::printf("  driver DMA from process memory:            %s\n",
              dma_attack.ok() ? "LEAKED!" : "BLOCKED (IOMMU fault)");
  DEMO_CHECK(!dma_attack.ok());

  DEMO_CHECK(sandbox->Enter(1).ok());
  const bool cpu_attack = machine->CheckedRead64(1, editor_mem.base).ok();
  std::printf("  driver CPU read of process memory:         %s\n",
              cpu_attack ? "LEAKED!" : "BLOCKED (EPT fault)");
  DEMO_CHECK(!cpu_attack);
  DEMO_CHECK(sandbox->Exit(1).ok());

  Banner("sub-compartments within a process");
  // The editor keeps a wallet enclave INSIDE its own process memory; even
  // LinOS itself cannot read it afterwards.
  const TycheImage wallet = TycheImage::MakeDemo("wallet", 2 * kPageSize, 0);
  auto enclave = os->SpawnProcessEnclave(0, editor, wallet, 2 * kMiB, 2, world.OsCoreCap(2));
  DEMO_CHECK(enclave.ok());
  DEMO_CHECK(enclave->Enter(2).ok());
  DEMO_CHECK(machine->CheckedWrite64(2, enclave->base() + kPageSize, 0xB17C01).ok());
  DEMO_CHECK(enclave->Exit(2).ok());
  const bool kernel_peek = os->KernelPeek(0, enclave->base() + kPageSize, 8).ok();
  std::printf("wallet enclave carved from pid %u; KernelPeek on it: %s\n", editor,
              kernel_peek ? "LEAKED!" : "BLOCKED");
  DEMO_CHECK(!kernel_peek);
  std::printf("the OS still manages the process: %llu KiB left in its bookkeeping\n",
              static_cast<unsigned long long>((*os->GetProcess(editor))->memory.size /
                                              1024));

  Banner("cleanup");
  DEMO_CHECK(sandbox->Destroy(0).ok());
  DEMO_CHECK(monitor->DestroyDomain(0, enclave->handle()).ok());
  DEMO_CHECK(os->KillProcess(editor).ok());
  DEMO_CHECK(os->KillProcess(browser).ok());
  DumpObservability(*monitor);
  DEMO_CHECK(*monitor->AuditHardwareConsistency());
  std::printf("all compartments destroyed, audit OK, %llu context switches charged\n",
              static_cast<unsigned long long>(os->scheduler().switches()));
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
