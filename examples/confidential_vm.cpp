// Copyright 2026 The Tyche Reproduction Authors.
// Confidential VMs on the isolation monitor: the cloud-provider OS deploys
// a guest it cannot read, with two vCPUs and an exclusively granted NIC.
// Includes the RISC-V/PMP variant to show the same API running on the
// weaker enforcement mechanism (§4).

#include "examples/demo_common.h"
#include "src/tyche/confidential_vm.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

TycheImage GuestKernelImage() {
  TycheImage image("guest-kernel");
  ImageSegment kernel;
  kernel.name = "kernel";
  kernel.offset = 0;
  kernel.size = 16 * kPageSize;
  kernel.perms = Perms(Perms::kRWX);
  kernel.measured = true;
  kernel.data.assign(16 * kPageSize, 0x90);  // nop sled standing in for a kernel
  (void)image.AddSegment(std::move(kernel));
  image.set_entry_offset(0);
  return image;
}

int RunX86() {
  Banner("x86_64 / VT-x: confidential VM with device passthrough");
  DemoWorld world = MakeDemoWorld(IsaArch::kX86_64, 256ull << 20, /*with_gpu=*/false,
                                  /*with_nic=*/true);
  Monitor* monitor = world.monitor.get();
  Machine* machine = world.machine.get();
  const PciBdf nic_bdf(0, 3, 0);

  const TycheImage guest = GuestKernelImage();
  ConfidentialVmOptions options;
  options.base = world.Scratch(32 * kMiB);
  options.size = 64 * kMiB;
  options.cores = {1, 2};
  options.core_caps = {world.OsCoreCap(1), world.OsCoreCap(2)};
  options.device_caps = {world.OsDeviceCap(nic_bdf.value)};
  auto vm = ConfidentialVm::Create(monitor, 0, guest, options);
  DEMO_CHECK(vm.ok());
  std::printf("VM: domain %u, 64 MiB exclusive, vCPUs on cores 1+2, NIC passthrough\n",
              vm->domain());
  DEMO_CHECK(vm->MemoryIsExclusive());

  // Remote attestation before the tenant sends anything.
  CustomerVerifier tenant(machine->tpm().attestation_key(), world.golden_firmware,
                          world.golden_monitor);
  DEMO_CHECK(tenant.VerifyMonitor(*monitor->Identity(7), 7).ok());
  const auto report = vm->Attest(0, 8);
  DEMO_CHECK(report.ok());
  const auto golden = ComputeExpectedMeasurement(guest, options.base, options.size,
                                                 options.cores, {nic_bdf.value});
  DEMO_CHECK(golden.ok());
  DEMO_CHECK(report->measurement == *golden);
  std::printf("tenant verified the guest measurement offline: %s...\n",
              report->measurement.ToHex().substr(0, 16).c_str());

  // Boot both vCPUs; the guest touches memory the host cannot.
  DEMO_CHECK(vm->StartVcpu(1).ok());
  DEMO_CHECK(vm->StartVcpu(2).ok());
  DEMO_CHECK(machine->CheckedWrite64(1, options.base + kMiB, 111).ok());
  DEMO_CHECK(machine->CheckedWrite64(2, options.base + 2 * kMiB, 222).ok());
  std::printf("both vCPUs executing inside the VM\n");

  // NIC DMA lands in guest memory only.
  auto* nic = static_cast<DmaEngine*>(machine->FindDevice(nic_bdf));
  DEMO_CHECK(nic->Copy(machine, options.base + kMiB, options.base + 3 * kMiB, 512).ok());
  const bool host_dma_blocked =
      !nic->Copy(machine, options.base, world.Scratch(0), 512).ok();
  std::printf("NIC DMA: guest<->guest OK, guest->host %s\n",
              host_dma_blocked ? "BLOCKED" : "LEAKED!");
  DEMO_CHECK(host_dma_blocked);

  const bool host_read_blocked = !machine->CheckedRead64(0, options.base).ok();
  std::printf("host read of guest memory: %s\n", host_read_blocked ? "BLOCKED" : "LEAKED!");
  DEMO_CHECK(host_read_blocked);

  DEMO_CHECK(vm->StopVcpu(2).ok());
  DEMO_CHECK(vm->StopVcpu(1).ok());
  DEMO_CHECK(monitor->DestroyDomain(0, vm->handle()).ok());
  DEMO_CHECK(*machine->CheckedRead64(0, options.base + kMiB) == 0);
  std::printf("VM destroyed; memory returned to the host zeroed\n");
  return 0;
}

int RunRiscV() {
  Banner("RISC-V / PMP: the same confidential VM on segment registers");
  DemoWorld world = MakeDemoWorld(IsaArch::kRiscV, 256ull << 20);
  Monitor* monitor = world.monitor.get();
  Machine* machine = world.machine.get();

  const TycheImage guest = GuestKernelImage();
  ConfidentialVmOptions options;
  // PMP prefers NAPOT-friendly placement: 64 MiB aligned to 64 MiB.
  options.base = 64 * kMiB;
  options.size = 64 * kMiB;
  options.cores = {1};
  options.core_caps = {world.OsCoreCap(1)};
  auto vm = ConfidentialVm::Create(monitor, 0, guest, options);
  DEMO_CHECK(vm.ok());
  std::printf("VM: domain %u enforced with %d PMP entries on its hart\n", vm->domain(),
              16);

  DEMO_CHECK(vm->StartVcpu(1).ok());
  DEMO_CHECK(machine->CheckedWrite64(1, options.base + kMiB, 42).ok());
  const bool guest_escape_blocked = !machine->CheckedRead64(1, world.Scratch(0)).ok();
  const bool monitor_blocked = !machine->CheckedRead64(1, 0x1000).ok();
  std::printf("guest -> host memory: %s; guest -> monitor: %s\n",
              guest_escape_blocked ? "BLOCKED" : "LEAKED!",
              monitor_blocked ? "BLOCKED (locked guard entry)" : "LEAKED!");
  DEMO_CHECK(guest_escape_blocked);
  DEMO_CHECK(monitor_blocked);
  DEMO_CHECK(vm->StopVcpu(1).ok());

  const bool host_read_blocked = !machine->CheckedRead64(0, options.base).ok();
  std::printf("host read of guest memory: %s\n", host_read_blocked ? "BLOCKED" : "LEAKED!");
  DEMO_CHECK(host_read_blocked);
  DumpObservability(*monitor);
  DEMO_CHECK(*monitor->AuditHardwareConsistency());
  std::printf("PMP backend audit OK\n");
  return 0;
}

}  // namespace
}  // namespace tyche

int main() {
  const int x86 = tyche::RunX86();
  const int riscv = tyche::RunRiscV();
  return x86 != 0 || riscv != 0 ? 1 : 0;
}
