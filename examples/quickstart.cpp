// Copyright 2026 The Tyche Reproduction Authors.
// Quickstart: the isolation monitor in ~100 lines.
//
//   1. Boot a simulated machine under the Tyche monitor (measured boot).
//   2. Build an enclave from an image; the untrusted OS loses access.
//   3. Attest it and verify the report like a remote customer would.
//   4. Tear it down; the zero-on-revoke policy wipes the memory.

#include "examples/demo_common.h"
#include "src/tyche/enclave.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

int Run() {
  Banner("1. measured boot");
  DemoWorld world = MakeDemoWorld();
  std::printf("machine booted: %u cores, %llu MiB, arch=x86_64 (VT-x backend)\n",
              world.machine->num_cores(),
              static_cast<unsigned long long>(world.machine->memory().size() / kMiB));
  std::printf("monitor measurement: %s\n", world.golden_monitor.ToHex().c_str());
  std::printf("initial domain (LinOS) installed as domain %u\n", world.os_domain);

  Banner("2. build an enclave");
  const TycheImage image = TycheImage::MakeDemo("quickstart-enclave", 8 * 1024, 4096);
  LoadOptions options;
  options.base = world.Scratch(kMiB);
  options.size = kMiB;
  options.cores = {1};
  options.core_caps = {world.OsCoreCap(1)};
  auto enclave = Enclave::Create(world.monitor.get(), /*core=*/0, image, options);
  DEMO_CHECK(enclave.ok());
  std::printf("enclave domain %u at [0x%llx, +%llu KiB), sealed\n", enclave->domain(),
              static_cast<unsigned long long>(enclave->base()),
              static_cast<unsigned long long>(enclave->size() / 1024));

  // The OS can no longer touch the enclave's confidential memory.
  const bool os_blocked = !world.machine->CheckedRead64(0, enclave->base()).ok();
  std::printf("OS read of enclave text: %s\n", os_blocked ? "BLOCKED" : "allowed?!");
  DEMO_CHECK(os_blocked);

  // The enclave itself runs fine.
  DEMO_CHECK(enclave->Enter(1).ok());
  DEMO_CHECK(world.machine->CheckedWrite64(1, enclave->base() + 4096, 0xC0FFEE).ok());
  DEMO_CHECK(enclave->Exit(1).ok());
  std::printf("enclave executed on core 1 and wrote to its private heap\n");

  Banner("3. two-tier attestation");
  CustomerVerifier customer(world.machine->tpm().attestation_key(), world.golden_firmware,
                            world.golden_monitor);
  const auto identity = world.monitor->Identity(/*nonce=*/1);
  DEMO_CHECK(identity.ok());
  DEMO_CHECK(customer.VerifyMonitor(*identity, 1).ok());
  std::printf("tier 1: TPM quote verified -- machine runs the golden monitor\n");

  const auto report = enclave->Attest(0, /*nonce=*/2);
  DEMO_CHECK(report.ok());
  DEMO_CHECK(customer
                 .VerifyDomainAgainstImage(*report, image, options.base, options.size,
                                           options.cores, 2)
                 .ok());
  std::printf("tier 2: domain report verified against the offline-computed measurement\n");
  std::printf("        measurement = %s\n", report->measurement.ToHex().c_str());
  for (const ResourceClaim& claim : report->resources) {
    if (claim.kind == ResourceKind::kMemory) {
      std::printf("        memory [0x%llx,+%llu KiB] perms=%s refcount=%u\n",
                  static_cast<unsigned long long>(claim.range.base),
                  static_cast<unsigned long long>(claim.range.size / 1024),
                  claim.perms.ToString().c_str(), claim.ref_count);
    }
  }

  Banner("4. teardown with guaranteed cleanup");
  DEMO_CHECK(world.monitor->DestroyDomain(0, enclave->handle()).ok());
  const uint64_t after = *world.machine->CheckedRead64(0, enclave->base() + 4096);
  std::printf("enclave destroyed; revoked memory reads back as %llu (zeroed)\n",
              static_cast<unsigned long long>(after));
  DEMO_CHECK(after == 0);

  const bool consistent = *world.monitor->AuditHardwareConsistency();
  std::printf("hardware/capability consistency audit: %s\n", consistent ? "OK" : "FAILED");
  DEMO_CHECK(consistent);

  std::printf("\nquickstart complete: %llu monitor API calls, %llu simulated cycles\n",
              static_cast<unsigned long long>(world.monitor->stats().TotalCalls()),
              static_cast<unsigned long long>(world.machine->cycles().cycles()));

  DumpObservability(*world.monitor);
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
