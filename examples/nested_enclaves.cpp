// Copyright 2026 The Tyche Reproduction Authors.
// Nested enclaves (§4.2): an enclave maps libtyche, spawns nested enclaves,
// and shares exclusively-owned pages with them as secured channels --
// repeatedly, to arbitrary depth. The same program also shows the SGX-model
// baseline failing at depth 1.

#include "examples/demo_common.h"
#include "src/baseline/sgx_model.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

int Run() {
  Banner("tyche: a 4-level enclave matryoshka");
  DemoWorld world = MakeDemoWorld(IsaArch::kX86_64, 256ull << 20);
  Monitor* monitor = world.monitor.get();
  Machine* machine = world.machine.get();

  const TycheImage image = TycheImage::MakeDemo("level", 2 * kPageSize, 0);
  LoadOptions options;
  options.base = world.Scratch(kMiB);
  options.size = 32 * kMiB;
  options.cores = {1};
  options.core_caps = {world.OsCoreCap(1)};
  auto root = Enclave::Create(monitor, 0, image, options);
  DEMO_CHECK(root.ok());
  std::printf("level 0: domain %u, 32 MiB, created by the OS\n", root->domain());

  std::vector<Enclave> chain;
  chain.push_back(std::move(*root));
  uint64_t size = 32 * kMiB;
  for (int depth = 1; depth <= 3; ++depth) {
    DEMO_CHECK(chain.back().Enter(1).ok());
    size /= 2;
    const uint64_t child_base = chain.back().base() + chain.back().size() - size;
    auto child = chain.back().SpawnNested(1, image, child_base, size, {1});
    DEMO_CHECK(child.ok());
    std::printf("level %d: domain %u, %llu MiB, spawned FROM INSIDE level %d\n", depth,
                child->domain(), static_cast<unsigned long long>(size / kMiB), depth - 1);
    chain.push_back(std::move(*child));
  }
  // Unwind the transition stack (each SpawnNested left us inside a parent).
  for (int depth = 3; depth >= 1; --depth) {
    DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  }

  std::printf("\nvisibility matrix (r = readable, . = blocked):\n        ");
  for (size_t j = 0; j < chain.size(); ++j) {
    std::printf("L%zu ", j);
  }
  std::printf("\n");
  // Who can read whose first private page? Run each level on core 1 and
  // probe every level's heap.
  for (size_t i = 0; i < chain.size(); ++i) {
    // Walk down to level i.
    for (size_t d = 0; d <= i; ++d) {
      DEMO_CHECK(chain[d].Enter(1).ok());
    }
    std::printf("  L%zu:   ", i);
    for (size_t j = 0; j < chain.size(); ++j) {
      // Probe a page in level j that is NOT part of level j+1's carving.
      const uint64_t probe = chain[j].base() + kPageSize;
      const bool readable = machine->CheckedRead64(1, probe).ok();
      std::printf("%s  ", readable ? "r" : ".");
    }
    std::printf("\n");
    for (size_t d = 0; d <= i; ++d) {
      DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
    }
  }
  std::printf("(each level reads only itself: carved memory moves, never copies)\n");

  Banner("channel between level 2 and its nested level 3");
  DEMO_CHECK(chain[0].Enter(1).ok());
  DEMO_CHECK(chain[1].Enter(1).ok());
  DEMO_CHECK(chain[2].Enter(1).ok());
  const AddrRange channel{chain[2].base() + kPageSize * 8, kPageSize};
  // chain[3] is sealed, so the channel must have been shared before sealing
  // -- spawn a FRESH level-3 with a pre-seal channel this time.
  const uint64_t fresh_base = chain[2].base() + 2 * kMiB;
  auto fresh = chain[2].SpawnNested(1, image, fresh_base, kMiB, {1}, /*seal=*/false);
  DEMO_CHECK(fresh.ok());
  DEMO_CHECK(chain[2].ShareWithChild(1, fresh->handle(), channel, Perms(Perms::kRW)).ok());
  DEMO_CHECK(monitor->Seal(1, fresh->handle()).ok());
  std::printf("channel page 0x%llx shared, refcount=%u (parent + child, nobody else)\n",
              static_cast<unsigned long long>(channel.base),
              monitor->engine().MemoryRefCount(channel));
  DEMO_CHECK(monitor->engine().MemoryRefCount(channel) == 2);
  DEMO_CHECK(machine->CheckedWrite64(1, channel.base, 0xABCD).ok());
  DEMO_CHECK(fresh->Enter(1).ok());
  DEMO_CHECK(*machine->CheckedRead64(1, channel.base) == 0xABCD);
  DEMO_CHECK(fresh->Exit(1).ok());
  std::printf("message passed parent -> child over the exclusive channel\n");
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());

  Banner("SGX-model baseline: nesting is architecturally impossible");
  CycleAccount cycles;
  SgxProcessor sgx(/*epc_pages=*/1024, &cycles);
  const auto outer = sgx.Ecreate(1, AddrRange{0x10000000, kMiB});
  DEMO_CHECK(outer.ok());
  const std::vector<uint8_t> page(64, 1);
  DEMO_CHECK(sgx.Eadd(*outer, 0, std::span<const uint8_t>(page)).ok());
  DEMO_CHECK(sgx.Einit(*outer).ok());
  DEMO_CHECK(sgx.Eenter(*outer).ok());
  const auto nested = sgx.Ecreate(1, AddrRange{0x20000000, kMiB});
  std::printf("ECREATE from inside an enclave: %s\n", nested.status().ToString().c_str());
  DEMO_CHECK(!nested.ok());
  DEMO_CHECK(sgx.Eexit(*outer).ok());

  DumpObservability(*monitor);

  DEMO_CHECK(*monitor->AuditHardwareConsistency());
  std::printf("\nnesting demo complete: %llu domains alive, audit OK\n",
              static_cast<unsigned long long>(monitor->num_domains_alive()));
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
