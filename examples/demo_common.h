// Copyright 2026 The Tyche Reproduction Authors.
// Shared setup for the example programs: a booted machine with LinOS as the
// initial domain, plus small printing helpers.

#ifndef EXAMPLES_DEMO_COMMON_H_
#define EXAMPLES_DEMO_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "src/monitor/attestation.h"
#include "src/monitor/boot.h"
#include "src/monitor/dispatch.h"
#include "src/os/kernel.h"
#include "src/support/profiler.h"
#include "src/support/trace_export.h"
#include "src/tyche/loader.h"

namespace tyche {

constexpr uint64_t kMiB = 1ull << 20;

struct DemoWorld {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<Monitor> monitor;
  std::unique_ptr<LinOs> os;
  DomainId os_domain = kInvalidDomain;
  Digest golden_firmware;
  Digest golden_monitor;
  std::vector<uint8_t> firmware_image = DemoFirmwareImage();
  std::vector<uint8_t> monitor_image = DemoMonitorImage();

  CapId OsMemCap(AddrRange range) { return *FindMemoryCap(*monitor, os_domain, range); }
  CapId OsCoreCap(CoreId core) {
    return *FindUnitCap(*monitor, os_domain, ResourceKind::kCpuCore, core);
  }
  CapId OsDeviceCap(uint16_t bdf) {
    return *FindUnitCap(*monitor, os_domain, ResourceKind::kPciDevice, bdf);
  }
  // Kernel-reserved scratch space for direct domain placement.
  uint64_t Scratch(uint64_t offset) const { return monitor->monitor_range().end() + offset; }
};

inline DemoWorld MakeDemoWorld(IsaArch arch = IsaArch::kX86_64,
                               uint64_t memory_bytes = 128ull << 20, bool with_gpu = false,
                               bool with_nic = false) {
  DemoWorld world;
  MachineConfig config;
  config.arch = arch;
  config.memory_bytes = memory_bytes;
  config.num_cores = 4;
  world.machine = std::make_unique<Machine>(config);
  if (with_gpu) {
    (void)world.machine->AddDevice(std::make_unique<GpuDevice>(PciBdf(0, 4, 0), "gpu0"));
  }
  if (with_nic) {
    (void)world.machine->AddDevice(std::make_unique<DmaEngine>(PciBdf(0, 3, 0), "nic0"));
  }

  BootParams params;
  params.firmware_image = world.firmware_image;
  params.monitor_image = world.monitor_image;
  auto outcome = MeasuredBoot(world.machine.get(), params);
  if (!outcome.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", outcome.status().ToString().c_str());
    std::abort();
  }
  world.monitor = std::move(outcome->monitor);
  world.os_domain = outcome->initial_domain;
  world.golden_firmware = outcome->firmware_measurement;
  world.golden_monitor = outcome->monitor_measurement;

  // Opt-in observability for CI and ad-hoc runs, armed up front so the
  // whole demo workload is covered: TYCHE_PROF_OUT=<path> enables the
  // dispatch phase profiler (DumpObservability writes the folded stacks
  // there on exit); TYCHE_WATCHDOG_N=<n> arms the invariant watchdog to
  // check every n dispatches.
  if (const char* prof = std::getenv("TYCHE_PROF_OUT"); prof != nullptr && *prof) {
    world.monitor->profiler().set_enabled(true);
  }
  if (const char* wd = std::getenv("TYCHE_WATCHDOG_N"); wd != nullptr && *wd) {
    world.monitor->EnableWatchdog(std::strtoull(wd, nullptr, 10));
  }

  const uint64_t os_base = world.monitor->monitor_range().end();
  const uint64_t os_size = memory_bytes - os_base;
  world.os = std::make_unique<LinOs>(
      world.monitor.get(), world.os_domain,
      *FindMemoryCap(*world.monitor, world.os_domain, AddrRange{os_base, os_size}),
      AddrRange{os_base + os_size / 2, os_size / 2});
  return world;
}

#define DEMO_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, #expr);   \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

inline void Banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

// Prints the telemetry snapshot and audit-journal summary, then closes the
// loop: exports the journal and verifies it offline (hash chain, checkpoint
// signatures, shadow replay against the live capability-graph snapshot), the
// same path a remote verifier would run on a captured journal.
inline void DumpObservability(Monitor& monitor) {
  Banner("observability");
  const TelemetrySnapshot snapshot = monitor.DumpTelemetry();
  std::printf("%s", snapshot.ToString().c_str());
  std::printf("%s\n", monitor.audit().Summary().c_str());
  const std::vector<uint8_t> wire = monitor.ExportJournal();
  const Status verdict = RemoteVerifier::VerifyJournal(wire, monitor.public_key(),
                                                       &snapshot.capability_graph_json);
  std::printf("offline journal verification (%zu bytes): %s\n", wire.size(),
              verdict.ok() ? "chain + checkpoint signatures + graph replay OK"
                           : verdict.ToString().c_str());
  DEMO_CHECK(verdict.ok());

  // The demos exercise the high-level Monitor API; the phase profiler and
  // the invariant watchdog instrument the raw dispatch ABI boundary. When
  // profiling was armed, drive a short representative ABI load over the
  // demo's final world state so the folded stacks have samples and the
  // watchdog has dispatches to check -- the profile attributes dispatch
  // phases on this world, not the high-level demo calls themselves.
  if (monitor.profiler().enabled()) {
    const auto call = [&monitor](ApiOp op, uint64_t a0 = 0) {
      ApiRegs regs{static_cast<uint64_t>(op), a0, 0, 0, 0, 0, 0};
      return Dispatch(&monitor, /*core=*/0, regs);
    };
    for (int i = 0; i < 64; ++i) {
      const ApiResult created = call(ApiOp::kCreateDomain);
      if (created.error != 0) {
        break;  // pool exhausted by the demo: keep whatever was profiled
      }
      (void)call(ApiOp::kEnumerate, created.ret1);
      (void)call(ApiOp::kDestroyDomain, created.ret1);
      (void)call(ApiOp::kTakeInterrupt);  // routine kNotFound error path
    }
  }

  // Optional scrape artifacts for CI and ad-hoc inspection: set
  // TYCHE_METRICS_OUT / TYCHE_TRACE_OUT / TYCHE_FLIGHT_OUT to file paths and
  // the demo writes the Prometheus snapshot, the chrome://tracing timeline,
  // and the flight-recorder dump alongside its normal output.
  const auto write_artifact = [](const char* env, const std::string& body,
                                 const char* what) {
    const char* path = std::getenv(env);
    if (path == nullptr || *path == '\0') {
      return;
    }
    std::ofstream out(path, std::ios::trunc);
    out << body;
    out.close();
    std::printf("wrote %s to %s (%zu bytes)\n", what, path, body.size());
    DEMO_CHECK(out.good());
  };
  write_artifact("TYCHE_METRICS_OUT", monitor.ExportMetrics(), "metrics snapshot");
  write_artifact(
      "TYCHE_TRACE_OUT",
      ExportChromeTrace(
          snapshot.trace, monitor.audit().journal().Records(),
          [](uint16_t op) { return std::string(ApiOpName(static_cast<ApiOp>(op))); },
          [](uint8_t event) {
            return std::string(JournalEventName(static_cast<JournalEvent>(event)));
          }),
      "chrome trace");
  write_artifact("TYCHE_FLIGHT_OUT",
                 monitor.flight_recorder().DumpJson([](uint16_t op) {
                   return std::string(ApiOpName(static_cast<ApiOp>(op)));
                 }),
                 "flight-recorder dump");
  write_artifact("TYCHE_PROF_OUT",
                 ExportFoldedStacks(monitor.profiler(), [](uint16_t op) {
                   return std::string(ApiOpName(static_cast<ApiOp>(op)));
                 }),
                 "folded phase stacks");
}

}  // namespace tyche

#endif  // EXAMPLES_DEMO_COMMON_H_
