// Copyright 2026 The Tyche Reproduction Authors.
// Fleet quickstart: the fault-tolerant verification front end in one demo.
//
//   1. Boot a 3-node attestation fleet (same measured image on every node).
//   2. Verify a service end to end (tier-1 TPM quote, tier-2 domain report),
//      then watch the second verification hit the measurement cache.
//   3. Crash a node: the SAME Verify() call trips the circuit breaker,
//      declares the node down, recovers it from its journal, migrates its
//      service domains to the replica, and returns the pinned golden
//      measurement — attestation continuity across the failover.
//   4. Splice the crashed and replica journals into one verified history.
//   5. Overload the admission queue and watch requests shed with typed
//      kOverloaded (cache-servable ones still answer inline).
//   6. Throughput phase 2 (DESIGN.md §13): drain same-node requests as ONE
//      batched Schnorr verification, resume a repeat verification with the
//      epoch-bound session token (no chain walk), throttle a tenant past its
//      token bucket with typed kQuotaExceeded, and expire a cache entry past
//      its TTL.
//
// Set TYCHE_METRICS_OUT=<path> to write the front end's Prometheus scrape
// (the tyche_fleet_* families) for CI format-checking and dashboards.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/fleet/frontend.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

#define DEMO_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, #expr); \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

void Banner(const char* title) { std::printf("\n=== %s ===\n", title); }

int Run() {
  Banner("1. boot the fleet");
  FleetOptions fleet_options;
  auto fleet = Fleet::Create(fleet_options);
  DEMO_CHECK(fleet != nullptr);
  std::printf("%zu nodes booted from the same measured image, %zu services\n",
              fleet->num_nodes(), fleet->num_services());
  for (uint32_t s = 0; s < fleet->num_services(); ++s) {
    const ServiceRecord& record = fleet->service(s);
    std::printf("  service %u (%s) on node %u, golden %s...\n", s,
                record.name.c_str(), record.node,
                record.measurement.ToHex().substr(0, 16).c_str());
  }

  FrontEndOptions options;
  options.queue_capacity = 4;  // small, so the overload demo sheds visibly
  // Phase 2 knobs: per-tenant token buckets (generous enough that only the
  // quota demo in section 6 exhausts one) and a cache TTL far beyond the
  // simulated time the earlier sections spend.
  options.tenant_quota.rate_per_sec = 1000.0;
  options.tenant_quota.burst = 16.0;
  options.cache_ttl_ns = 2'000'000'000;  // 2 simulated seconds
  VerificationFrontEnd frontend(fleet.get(), options);

  Banner("2. verify, then hit the cache");
  const auto first = frontend.Verify({/*service=*/0, /*nonce=*/1});
  DEMO_CHECK(first.ok());
  std::printf("wire verification: node %u epoch %llu, %u attempt(s), %llu ns\n",
              first->node, static_cast<unsigned long long>(first->epoch),
              first->attempts, static_cast<unsigned long long>(first->latency_ns));
  const auto second = frontend.Verify({/*service=*/0, /*nonce=*/2});
  DEMO_CHECK(second.ok() && second->from_cache);
  std::printf("second verification served from the (pcr, node, epoch) cache\n");

  Banner("3. crash a node, fail over inside one Verify()");
  fleet->node(0)->Crash();
  std::printf("node 0 crashed; its journal survives\n");
  // Service 1 is homed on node 0 and not yet cached, so this Verify() must
  // take the wire: timeouts open the breaker, the failed half-open probe
  // declares the node down, and the failover ladder runs mid-call.
  const auto failover = frontend.Verify({/*service=*/1, /*nonce=*/3});
  DEMO_CHECK(failover.ok());
  DEMO_CHECK(failover->measurement == fleet->service(1).measurement);
  std::printf("verdict from node %u (epoch %llu) after %u attempts -- the\n"
              "golden measurement survived recovery + migration unchanged\n",
              failover->node, static_cast<unsigned long long>(failover->epoch),
              failover->attempts);
  DEMO_CHECK(failover->node != 0);
  std::printf("breaker opened %llu time(s); fleet ran %llu failover(s), "
              "%llu migration(s)\n",
              static_cast<unsigned long long>(frontend.breaker(0).times_opened()),
              static_cast<unsigned long long>(fleet->failovers()),
              static_cast<unsigned long long>(fleet->migrations()));
  // Epoch is part of the cache key: the entry verified against the
  // pre-crash node-0 instance became unreachable the moment it recovered.
  const auto recached = frontend.Verify({/*service=*/0, /*nonce=*/4});
  DEMO_CHECK(recached.ok() && !recached->from_cache);
  std::printf("service 0's pre-crash cache entry was epoch-invalidated; it "
              "re-verified on node %u\n", recached->node);

  Banner("4. splice the journals");
  const Status splice = VerifyJournalSplice(
      fleet->node(0)->monitor()->ExportJournal(),
      fleet->node(fleet->service(1).node)->monitor()->ExportJournal(),
      fleet->node(0)->monitor()->public_key(),
      fleet->node(fleet->service(1).node)->monitor()->public_key());
  DEMO_CHECK(splice.ok());
  std::printf("crashed-node and replica journals verify as one spliced "
              "history: migrate-out links migrate-in\n");

  Banner("5. overload: typed shedding, cache served inline");
  uint64_t enqueued = 0;
  uint64_t overloaded = 0;
  for (uint32_t i = 0; i < 3 * static_cast<uint32_t>(options.queue_capacity); ++i) {
    const uint32_t service = 1 + (i % (static_cast<uint32_t>(fleet->num_services()) - 1));
    const auto admitted = frontend.Submit({service, /*nonce=*/100 + i});
    if (admitted.ok()) {
      enqueued += admitted->enqueued ? 1 : 0;
    } else {
      DEMO_CHECK(admitted.code() == ErrorCode::kOverloaded);
      ++overloaded;
    }
  }
  std::printf("burst of %zu: %llu queued (capacity %zu), %llu shed with "
              "typed kOverloaded\n",
              3 * options.queue_capacity, static_cast<unsigned long long>(enqueued),
              options.queue_capacity, static_cast<unsigned long long>(overloaded));
  DEMO_CHECK(overloaded > 0);
  // The cache-warm service still answers inline while the queue is full.
  const auto inline_hit = frontend.Submit({/*service=*/0, /*nonce=*/999});
  DEMO_CHECK(inline_hit.ok() && inline_hit->verdict.has_value() &&
             inline_hit->verdict->from_cache);
  std::printf("cache-servable request answered inline despite the full queue\n");
  uint64_t drained_ok = 0;
  for (const auto& item : frontend.DrainQueue()) {
    drained_ok += item.result.ok() ? 1 : 0;
  }
  std::printf("queue drained: %llu verified\n",
              static_cast<unsigned long long>(drained_ok));

  Banner("6a. batched drain: one Schnorr check for a same-node group");
  // After the failover, node 1 is home to four services. Cold the cache so
  // the queued requests really take the wire, then drain: the same-node run
  // goes out as one wire round and ONE batched signature verification.
  for (uint32_t n = 0; n < static_cast<uint32_t>(fleet->num_nodes()); ++n) {
    frontend.cache().InvalidateEpochsBelow(n, UINT64_MAX);
  }
  uint32_t batched_submits = 0;
  const uint32_t batch_home = fleet->service(0).node;
  for (uint32_t s = 0; s < static_cast<uint32_t>(fleet->num_services()); ++s) {
    if (fleet->service(s).node != batch_home || batched_submits >= 4) {
      continue;
    }
    // A fresh tenant: section 5's burst already drew down tenant 0's bucket.
    const auto admitted =
        frontend.Submit({s, /*nonce=*/200 + s, /*deadline_ns=*/0, /*tenant=*/1});
    DEMO_CHECK(admitted.ok() && admitted->enqueued);
    ++batched_submits;
  }
  DEMO_CHECK(batched_submits >= 2);
  uint64_t batch_ok = 0;
  for (const auto& item : frontend.DrainQueue()) {
    DEMO_CHECK(item.result.ok());
    DEMO_CHECK(item.result->measurement ==
               fleet->service(item.request.service).measurement);
    ++batch_ok;
  }
  DEMO_CHECK(frontend.batch_verifies() > 0 && frontend.batch_quotes() >= 2);
  std::printf("%llu same-node quotes verified by %llu batched check(s)\n",
              static_cast<unsigned long long>(frontend.batch_quotes()),
              static_cast<unsigned long long>(frontend.batch_verifies()));

  Banner("6b. session resumption: repeat verify without the chain walk");
  // The verifies above established epoch-bound sessions. With the cache
  // cold, a repeat verification presents the session token instead of
  // re-walking identity + attest: one wire round, MAC-checked response.
  for (uint32_t n = 0; n < static_cast<uint32_t>(fleet->num_nodes()); ++n) {
    frontend.cache().InvalidateEpochsBelow(n, UINT64_MAX);
  }
  const auto resumed = frontend.Verify({/*service=*/0, /*nonce=*/300});
  DEMO_CHECK(resumed.ok() && resumed->resumed);
  DEMO_CHECK(resumed->measurement == fleet->service(0).measurement);
  std::printf("resumed verification on node %u: %llu session(s) established, "
              "%llu resumed\n", resumed->node,
              static_cast<unsigned long long>(frontend.sessions_established()),
              static_cast<unsigned long long>(frontend.sessions_resumed()));

  Banner("6c. tenant quota: typed kQuotaExceeded, per tenant");
  // Tenant 9 burns through its own bucket; the rejection is typed
  // kQuotaExceeded (not kOverloaded -- the queue is empty) and other
  // tenants' buckets are untouched.
  uint64_t quota_admitted = 0;
  uint64_t quota_rejected = 0;
  for (uint32_t i = 0; i < 20; ++i) {
    VerifyRequest request;
    request.service = 0;
    request.nonce = 400 + i;
    request.tenant = 9;
    const auto admitted = frontend.Submit(request);
    if (admitted.ok()) {
      ++quota_admitted;
    } else {
      DEMO_CHECK(admitted.code() == ErrorCode::kQuotaExceeded);
      ++quota_rejected;
    }
  }
  DEMO_CHECK(quota_rejected > 0);
  VerifyRequest other_tenant;
  other_tenant.service = 0;
  other_tenant.nonce = 450;
  other_tenant.tenant = 5;
  DEMO_CHECK(frontend.Submit(other_tenant).ok());
  std::printf("tenant 9: %llu admitted, %llu rejected with kQuotaExceeded; "
              "tenant 5 still admitted\n",
              static_cast<unsigned long long>(quota_admitted),
              static_cast<unsigned long long>(quota_rejected));
  for (const auto& item : frontend.DrainQueue()) {
    DEMO_CHECK(item.result.ok());
  }

  Banner("6d. cache TTL: stale entries expire instead of serving forever");
  const auto fresh = frontend.Verify({/*service=*/0, /*nonce=*/500});
  DEMO_CHECK(fresh.ok());
  fleet->clock().Advance(3'000'000'000);  // 3 simulated seconds > the 2 s TTL
  const auto after_ttl = frontend.Verify({/*service=*/0, /*nonce=*/501});
  DEMO_CHECK(after_ttl.ok() && !after_ttl->from_cache);
  DEMO_CHECK(frontend.cache().expired() > 0);
  std::printf("entry verified %llu simulated seconds ago expired; "
              "%llu expiration(s) counted\n", 3ull,
              static_cast<unsigned long long>(frontend.cache().expired()));

  Banner("metrics");
  const std::string scrape = frontend.metrics().ExportPrometheus();
  std::printf("front end exports %zu bytes of Prometheus text "
              "(tyche_fleet_* families)\n", scrape.size());
  if (const char* path = std::getenv("TYCHE_METRICS_OUT");
      path != nullptr && *path != '\0') {
    std::ofstream out(path, std::ios::trunc);
    out << scrape;
    out.close();
    DEMO_CHECK(out.good());
    std::printf("wrote fleet metrics scrape to %s\n", path);
  }
  std::printf("\nfleet quickstart done\n");
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
