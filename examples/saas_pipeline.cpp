// Copyright 2026 The Tyche Reproduction Authors.
// The paper's Figure 2/3 scenario as a runnable program: confidential
// processing of customer data through an UNTRUSTED SaaS stack.
//
//   customer ----(encrypted traffic)----> [OS netbuf]
//        SaaS app <--channel--> crypto engine (holds the key)
//        SaaS app <--frame buffer--> GPU (I/O trust domain)
//
// The customer verifies the monitor, the measurements, and every reference
// count before provisioning its key. Afterwards the OS demonstrably sees
// only ciphertext.

#include "examples/demo_common.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

void XorCrypt(std::span<uint8_t> data, uint64_t key) {
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= static_cast<uint8_t>(key >> (8 * (i % 8)));
  }
}

int Run() {
  Banner("deployment: untrusted cloud, one GPU");
  DemoWorld world = MakeDemoWorld(IsaArch::kX86_64, 128ull << 20, /*with_gpu=*/true);
  Monitor* monitor = world.monitor.get();
  Machine* machine = world.machine.get();
  const PciBdf gpu_bdf(0, 4, 0);

  // ---- The OS deploys the SaaS app (sealed, with the GPU delegated) ----
  TycheImage saas_image("saas-app");
  {
    ImageSegment text;
    text.name = "text";
    text.size = 4 * kPageSize;
    text.perms = Perms(Perms::kRWX);
    text.measured = true;
    text.data.assign(2048, 0xaa);
    DEMO_CHECK(saas_image.AddSegment(std::move(text)).ok());
    ImageSegment netbuf;
    netbuf.name = "netbuf";
    netbuf.offset = 8 * kPageSize;
    netbuf.size = 4 * kPageSize;
    netbuf.perms = Perms(Perms::kRW);
    netbuf.shared = true;
    DEMO_CHECK(saas_image.AddSegment(std::move(netbuf)).ok());
  }
  LoadOptions load;
  load.base = world.Scratch(16 * kMiB);
  load.size = 16 * kMiB;
  load.cores = {1};
  load.core_caps = {world.OsCoreCap(1)};
  load.seal = false;
  auto saas = LoadImage(monitor, 0, saas_image, load);
  DEMO_CHECK(saas.ok());
  DEMO_CHECK(monitor
                 ->GrantUnit(0, world.OsDeviceCap(gpu_bdf.value), saas->handle,
                             CapRights(CapRights::kGrant), RevocationPolicy{})
                 .ok());
  DEMO_CHECK(monitor->Seal(0, saas->handle).ok());
  const uint64_t base = load.base;
  const uint64_t netbuf = base + 8 * kPageSize;
  std::printf("SaaS app: domain %u, sealed, netbuf shared with the OS\n", saas->domain);

  // ---- Inside the SaaS app: crypto engine + GPU I/O domain ----
  DEMO_CHECK(monitor->Transition(1, saas->handle).ok());
  const DomainId saas_domain = monitor->CurrentDomain(1);

  const TycheImage crypto_image = TycheImage::MakeDemo("crypto-engine", 2 * kPageSize, 0);
  LoadOptions crypto_load;
  crypto_load.base = base + 4 * kMiB;
  crypto_load.size = kMiB;
  crypto_load.cores = {1};
  crypto_load.core_caps = {*FindUnitCap(*monitor, saas_domain, ResourceKind::kCpuCore, 1)};
  crypto_load.seal = false;
  auto crypto = LoadImage(monitor, 1, crypto_image, crypto_load);
  DEMO_CHECK(crypto.ok());
  const AddrRange channel{base + 6 * kMiB, kPageSize};
  DEMO_CHECK(monitor
                 ->ShareMemory(1, *FindMemoryCap(*monitor, saas_domain, channel),
                               crypto->handle, channel, Perms(Perms::kRW), CapRights{},
                               RevocationPolicy(RevocationPolicy::kObfuscate))
                 .ok());
  DEMO_CHECK(monitor->Seal(1, crypto->handle).ok());
  std::printf("crypto engine: domain %u nested in the SaaS app, channel at 0x%llx\n",
              crypto->domain, static_cast<unsigned long long>(channel.base));

  const auto gpu_created = monitor->CreateDomain(1, "gpu-domain");
  DEMO_CHECK(gpu_created.ok());
  const AddrRange gpu_fw{base + 8 * kMiB, 64 * 1024};
  const AddrRange framebuf{base + 9 * kMiB, 64 * 1024};
  DEMO_CHECK(monitor
                 ->GrantMemory(1, *FindMemoryCap(*monitor, saas_domain, gpu_fw),
                               gpu_created->handle, gpu_fw, Perms(Perms::kRWX), CapRights{},
                               RevocationPolicy(RevocationPolicy::kObfuscate))
                 .ok());
  DEMO_CHECK(monitor
                 ->ShareMemory(1, *FindMemoryCap(*monitor, saas_domain, framebuf),
                               gpu_created->handle, framebuf, Perms(Perms::kRW), CapRights{},
                               RevocationPolicy(RevocationPolicy::kObfuscate))
                 .ok());
  DEMO_CHECK(monitor
                 ->GrantUnit(1, *FindUnitCap(*monitor, saas_domain, ResourceKind::kPciDevice,
                                             gpu_bdf.value),
                             gpu_created->handle, CapRights{}, RevocationPolicy{})
                 .ok());
  DEMO_CHECK(monitor->SetEntryPoint(1, gpu_created->handle, gpu_fw.base).ok());
  DEMO_CHECK(monitor->Seal(1, gpu_created->handle).ok());
  std::printf("GPU I/O domain: domain %u owns the device + firmware + frame buffer\n",
              gpu_created->domain);

  const auto saas_report = monitor->AttestSelf(1, 101);
  const auto crypto_report = monitor->AttestDomain(1, crypto->handle, 102);
  const auto gpu_report = monitor->AttestDomain(1, gpu_created->handle, 103);
  DEMO_CHECK(saas_report.ok() && crypto_report.ok() && gpu_report.ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());

  // ---- The customer verifies everything ----
  Banner("customer-side verification");
  CustomerVerifier customer(machine->tpm().attestation_key(), world.golden_firmware,
                            world.golden_monitor);
  DEMO_CHECK(customer.VerifyMonitor(*monitor->Identity(100), 100).ok());
  std::printf("tier 1 OK: golden monitor controls the machine\n");

  const auto crypto_golden = ComputeExpectedMeasurement(
      crypto_image, crypto_load.base, crypto_load.size, crypto_load.cores, {},
      {ExtraRegion{channel, Perms(Perms::kRW)}});
  DEMO_CHECK(crypto_golden.ok() && crypto_report->measurement == *crypto_golden);
  std::printf("tier 2 OK: crypto engine measurement matches the offline golden value\n");

  SharingPolicy crypto_policy;
  crypto_policy.expected_shared = {channel};
  DEMO_CHECK(CustomerVerifier::CheckSharingPolicy(*crypto_report, crypto_policy).ok());
  SharingPolicy saas_policy;
  saas_policy.expected_shared = {AddrRange{netbuf, 4 * kPageSize}, channel, framebuf};
  DEMO_CHECK(CustomerVerifier::CheckSharingPolicy(*saas_report, saas_policy).ok());
  SharingPolicy gpu_policy;
  gpu_policy.expected_shared = {framebuf};
  DEMO_CHECK(CustomerVerifier::CheckSharingPolicy(*gpu_report, gpu_policy).ok());
  std::printf("sharing policy OK: every region exclusive except the declared channels\n");

  // ---- Key provisioning + one round trip of confidential processing ----
  Banner("confidential processing");
  const uint64_t key = 0x1122334455667788ULL;
  const uint64_t key_slot = crypto_load.base + crypto_load.size - kPageSize;
  DEMO_CHECK(monitor->Transition(1, saas->handle).ok());
  DEMO_CHECK(monitor->Transition(1, crypto->handle).ok());
  DEMO_CHECK(machine->CheckedWrite64(1, key_slot, key).ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  std::printf("customer key provisioned into the crypto engine\n");

  std::vector<uint8_t> wire(48);
  for (size_t i = 0; i < wire.size(); ++i) {
    wire[i] = static_cast<uint8_t>('A' + (i % 26));
  }
  const std::vector<uint8_t> plaintext = wire;
  XorCrypt(std::span<uint8_t>(wire), key);
  DEMO_CHECK(machine->CheckedWrite(0, netbuf, std::span<const uint8_t>(wire)).ok());
  std::printf("OS delivered %zu encrypted bytes into the netbuf\n", wire.size());

  DEMO_CHECK(monitor->Transition(1, saas->handle).ok());
  std::vector<uint8_t> buffer(wire.size());
  DEMO_CHECK(machine->CheckedRead(1, netbuf, std::span<uint8_t>(buffer)).ok());
  DEMO_CHECK(machine->CheckedWrite(1, channel.base, std::span<const uint8_t>(buffer)).ok());
  DEMO_CHECK(monitor->Transition(1, crypto->handle).ok());
  DEMO_CHECK(machine->CheckedRead(1, channel.base, std::span<uint8_t>(buffer)).ok());
  XorCrypt(std::span<uint8_t>(buffer), *machine->CheckedRead64(1, key_slot));
  DEMO_CHECK(machine->CheckedWrite(1, channel.base, std::span<const uint8_t>(buffer)).ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  DEMO_CHECK(machine->CheckedRead(1, channel.base, std::span<uint8_t>(buffer)).ok());
  DEMO_CHECK(buffer == plaintext);
  DEMO_CHECK(machine->CheckedWrite(1, framebuf.base, std::span<const uint8_t>(buffer)).ok());
  auto* gpu = static_cast<GpuDevice*>(machine->FindDevice(gpu_bdf));
  DEMO_CHECK(gpu->RunKernel(machine, framebuf.base, framebuf.base + kPageSize, wire.size(),
                            0x5a)
                 .ok());
  DEMO_CHECK(monitor->ReturnFromDomain(1).ok());
  std::printf("SaaS app decrypted via the crypto engine and ran the GPU kernel\n");

  // ---- What the attacker sees ----
  Banner("attack surface check (all of these must be blocked)");
  struct Probe {
    const char* what;
    uint64_t addr;
  };
  const Probe probes[] = {
      {"plaintext channel", channel.base},
      {"GPU frame buffer", framebuf.base},
      {"crypto engine key slot", key_slot},
      {"SaaS app text", base},
  };
  for (const Probe& probe : probes) {
    const bool blocked = !machine->CheckedRead64(0, probe.addr).ok();
    std::printf("  OS reads %-24s -> %s\n", probe.what, blocked ? "BLOCKED" : "LEAKED!");
    DEMO_CHECK(blocked);
  }
  const bool dma_blocked =
      gpu->RunKernel(machine, key_slot, framebuf.base, 8, 0).code() ==
      ErrorCode::kIommuFault;
  std::printf("  GPU DMA into the crypto engine -> %s\n",
              dma_blocked ? "BLOCKED (IOMMU)" : "LEAKED!");
  DEMO_CHECK(dma_blocked);
  std::vector<uint8_t> os_view(wire.size());
  DEMO_CHECK(machine->CheckedRead(0, netbuf, std::span<uint8_t>(os_view)).ok());
  std::printf("  OS reads the netbuf -> allowed, sees %s\n",
              os_view == wire ? "ciphertext only" : "SOMETHING ELSE?!");
  DEMO_CHECK(os_view == wire);

  DEMO_CHECK(*monitor->AuditHardwareConsistency());
  std::printf("\npipeline complete; hardware state consistent with the capability tree\n");
  DumpObservability(*monitor);
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
