// Copyright 2026 The Tyche Reproduction Authors.
// An attested secret vault: the downstream-app view of the monitor's API.
//
// A password-manager enclave keeps its database sealed to its own code
// identity. The UNTRUSTED OS stores the blob between runs (that is fine:
// the blob is opaque), but only the same vault image under the same monitor
// can open it. Service restarts recover the secrets; the OS, a tampered
// vault, and a blob-tamperer all fail.

#include "examples/demo_common.h"
#include "src/tyche/channel.h"
#include "src/tyche/enclave.h"

namespace tyche {
namespace {

TycheImage VaultImage(uint8_t version) {
  TycheImage image("vault");
  ImageSegment code;
  code.name = "code";
  code.size = 2 * kPageSize;
  code.perms = Perms(Perms::kRWX);
  code.measured = true;
  code.data.assign(1024, version);  // "the vault binary"
  (void)image.AddSegment(std::move(code));
  ImageSegment mailbox;
  mailbox.name = "mailbox";
  mailbox.offset = 2 * kPageSize;
  mailbox.size = 2 * kPageSize;
  mailbox.perms = Perms(Perms::kRW);
  mailbox.shared = true;  // request/response channel with the OS
  (void)image.AddSegment(std::move(mailbox));
  image.set_entry_offset(0);
  return image;
}

Result<Enclave> SpawnVault(DemoWorld* world, const TycheImage& image,
                           uint64_t offset = kMiB) {
  LoadOptions load;
  load.base = world->Scratch(offset);
  load.size = kMiB;
  load.cores = {1};
  load.core_caps = {world->OsCoreCap(1)};
  return Enclave::Create(world->monitor.get(), 0, image, load);
}

int Run() {
  Banner("vault v1: first run, seal the database");
  DemoWorld world = MakeDemoWorld();
  Monitor* monitor = world.monitor.get();
  Machine* machine = world.machine.get();

  const TycheImage image = VaultImage(/*version=*/1);
  auto vault = SpawnVault(&world, image);
  DEMO_CHECK(vault.ok());

  const std::string database = "site:example.com user:alice pw:hunter2";
  std::vector<uint8_t> blob;  // what the OS gets to keep
  {
    DEMO_CHECK(vault->Enter(1).ok());
    const auto sealed = monitor->SealData(
        1, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(database.data()),
                                    database.size()));
    DEMO_CHECK(sealed.ok());
    blob = *sealed;
    DEMO_CHECK(vault->Exit(1).ok());
  }
  std::printf("vault sealed %zu bytes of secrets into a %zu-byte blob\n",
              database.size(), blob.size());
  std::printf("the OS stores the blob; it is ciphertext to everyone but the vault\n");

  Banner("service restart: same image recovers the database");
  DEMO_CHECK(monitor->DestroyDomain(0, vault->handle()).ok());
  auto vault2 = SpawnVault(&world, image);
  DEMO_CHECK(vault2.ok());
  {
    DEMO_CHECK(vault2->Enter(1).ok());
    const auto opened = monitor->UnsealData(1, blob);
    DEMO_CHECK(opened.ok());
    const std::string recovered(opened->begin(), opened->end());
    DEMO_CHECK(recovered == database);
    std::printf("vault v1 (new instance) unsealed: \"%.24s...\"\n", recovered.c_str());

    // Serve one request through the shared mailbox: the OS asks whether a
    // password exists; only a yes/no ever crosses the boundary.
    const AddrRange mailbox{vault2->base() + 2 * kPageSize, 2 * kPageSize};
    auto channel = Channel::Create(monitor, 1, mailbox);
    DEMO_CHECK(channel.ok());
    DEMO_CHECK(vault2->Exit(1).ok());

    const std::string query = "has:example.com";
    DEMO_CHECK(channel
                   ->Send(0, std::span<const uint8_t>(
                                 reinterpret_cast<const uint8_t*>(query.data()),
                                 query.size()))
                   .ok());
    DEMO_CHECK(vault2->Enter(1).ok());
    const auto request = channel->Recv(1);
    DEMO_CHECK(request.ok());
    const std::string answer =
        database.find("example.com") != std::string::npos ? "yes" : "no";
    DEMO_CHECK(channel
                   ->Send(1, std::span<const uint8_t>(
                                 reinterpret_cast<const uint8_t*>(answer.data()),
                                 answer.size()))
                   .ok());
    DEMO_CHECK(vault2->Exit(1).ok());
    const auto response = channel->Recv(0);
    DEMO_CHECK(response.ok());
    std::printf("OS asked \"%s\" over the mailbox -> vault answered \"%s\"\n",
                query.c_str(), std::string(response->begin(), response->end()).c_str());
  }

  Banner("every way to steal the database fails");
  // 1. The OS tries to unseal the blob itself.
  const auto os_attempt = monitor->UnsealData(0, blob);
  std::printf("OS unseals the blob:               %s\n",
              os_attempt.ok() ? "LEAKED!" : os_attempt.status().ToString().c_str());
  DEMO_CHECK(!os_attempt.ok());

  // 2. A tampered vault image (one byte differs) tries.
  DEMO_CHECK(monitor->DestroyDomain(0, vault2->handle()).ok());
  auto evil = SpawnVault(&world, VaultImage(/*version=*/2), 4 * kMiB);
  DEMO_CHECK(evil.ok());
  DEMO_CHECK(evil->Enter(1).ok());
  const auto evil_attempt = monitor->UnsealData(1, blob);
  std::printf("tampered vault unseals the blob:   %s\n",
              evil_attempt.ok() ? "LEAKED!" : evil_attempt.status().ToString().c_str());
  DEMO_CHECK(!evil_attempt.ok());
  DEMO_CHECK(evil->Exit(1).ok());

  // 3. A bit-flipped blob is rejected even for the honest vault.
  auto vault3 = SpawnVault(&world, image);
  DEMO_CHECK(vault3.ok());
  std::vector<uint8_t> flipped = blob;
  flipped[flipped.size() / 2] ^= 0x01;
  DEMO_CHECK(vault3->Enter(1).ok());
  const auto flip_attempt = monitor->UnsealData(1, flipped);
  std::printf("bit-flipped blob at honest vault:  %s\n",
              flip_attempt.ok() ? "ACCEPTED?!" : flip_attempt.status().ToString().c_str());
  DEMO_CHECK(!flip_attempt.ok());
  DEMO_CHECK(vault3->Exit(1).ok());

  // 4. And of course the OS cannot read the vault's memory directly.
  const bool direct_blocked = !machine->CheckedRead64(0, vault3->base()).ok();
  std::printf("OS reads vault memory directly:    %s\n",
              direct_blocked ? "BLOCKED" : "LEAKED!");
  DEMO_CHECK(direct_blocked);

  DumpObservability(*monitor);

  DEMO_CHECK(*monitor->AuditHardwareConsistency());
  std::printf("\nvault demo complete; audit OK\n");
  return 0;
}

}  // namespace
}  // namespace tyche

int main() { return tyche::Run(); }
