// Copyright 2026 The Tyche Reproduction Authors.
// Dispatch phase-profile exporter tool.
//
// Boots a simulated deployment with the dispatch phase profiler armed,
// drives a repetitive workload through the dispatch ABI (domain lifecycle,
// sharing, cascading revokes, attestation, interrupt polls), then renders
// where the nanoseconds went:
//
//  - folded-stack output ("op;phase count", count = accumulated ns), one
//    line per (op, phase) cell with samples -- pipe straight into
//    flamegraph.pl for an attribution flamegraph;
//  - a top-N attribution table (count, total, mean, share of all profiled
//    time) on stdout for humans and CI logs.
//
// The folded output is self-checked before it is written: it must be
// non-empty (the profiler actually ran) and every line must match the
// "frame;frame weight" shape flamegraph.pl expects, so a profiler or
// exporter regression fails the tool instead of producing a silently
// useless artifact.
//
// Usage:
//   prof_export [--folded out.folded] [--top N] [--iters N]
//
// With no --folded the folded stacks go to stdout (table to stderr so the
// two streams stay pipeable). Exit codes: 0 ok, 1 self-check failed,
// 2 usage / IO error.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/monitor/dispatch.h"
#include "src/os/testbed.h"
#include "src/support/profiler.h"

namespace tyche {
namespace {

bool WriteFile(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

// Validates the folded-stack shape: every non-empty line is
// "frame(;frame)* <digits>" with a non-empty frame set and a positive
// weight. Returns an empty string on success, else a description.
std::string CheckFolded(const std::string& folded, size_t* lines_out) {
  size_t lines = 0;
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return "line " + std::to_string(lines + 1) + " has no 'stack weight' split: " + line;
    }
    const std::string stack = line.substr(0, space);
    const std::string weight = line.substr(space + 1);
    for (const char c : weight) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return "line " + std::to_string(lines + 1) + " has a non-numeric weight: " + line;
      }
    }
    if (stack.find(';') == std::string::npos) {
      return "line " + std::to_string(lines + 1) + " has no phase frame: " + line;
    }
    if (stack.front() == ';' || stack.back() == ';') {
      return "line " + std::to_string(lines + 1) + " has an empty frame: " + line;
    }
    ++lines;
  }
  *lines_out = lines;
  if (lines == 0) {
    return "folded output is empty (profiler recorded no samples)";
  }
  return std::string();
}

int Run(const char* folded_path, size_t top_n, size_t iters) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", testbed.status().ToString().c_str());
    return 2;
  }
  Monitor& monitor = testbed->monitor();
  monitor.profiler().set_enabled(true);

  auto call = [&](ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                  uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs{static_cast<uint64_t>(op), a0, a1, a2, a3, a4, a5};
    return Dispatch(&monitor, /*core=*/0, regs);
  };

  const uint64_t scratch = testbed->Scratch(0);
  const auto os_mem = testbed->OsMemCap(AddrRange{scratch, 64 * kPageSize});
  if (!os_mem.ok()) {
    std::fprintf(stderr, "no OS memory capability found\n");
    return 2;
  }
  const uint64_t rights_policy =
      (static_cast<uint64_t>(CapRights::kAll) << 8) | RevocationPolicy::kZeroMemory;

  // Workload: `iters` full domain lifecycles so every phase -- engine
  // mutation, backend apply, journal append, telemetry record -- collects
  // enough samples for a stable attribution, plus routine interrupt polls
  // for an error-path op in the profile.
  for (size_t i = 0; i < iters; ++i) {
    const ApiResult created = call(ApiOp::kCreateDomain);
    if (created.error != 0) {
      std::fprintf(stderr, "create_domain failed on iteration %zu\n", i);
      return 2;
    }
    const uint64_t handle = created.ret1;
    const ApiResult shared = call(ApiOp::kShareMemory, *os_mem, handle, scratch,
                                  8 * kPageSize, Perms::kRW, rights_policy);
    if (shared.error != 0) {
      std::fprintf(stderr, "share_memory failed on iteration %zu\n", i);
      return 2;
    }
    call(ApiOp::kEnumerate, handle);
    if (call(ApiOp::kRevoke, shared.ret0).error != 0) {
      std::fprintf(stderr, "revoke failed on iteration %zu\n", i);
      return 2;
    }
    if (call(ApiOp::kDestroyDomain, handle).error != 0) {
      std::fprintf(stderr, "destroy_domain failed on iteration %zu\n", i);
      return 2;
    }
    if (i % 8 == 0) {
      call(ApiOp::kTakeInterrupt);  // kNotFound: routine error path
    }
  }

  const auto op_name = [](uint16_t op) {
    return std::string(ApiOpName(static_cast<ApiOp>(op)));
  };
  const std::string folded = ExportFoldedStacks(monitor.profiler(), op_name);
  size_t lines = 0;
  const std::string problem = CheckFolded(folded, &lines);
  if (!problem.empty()) {
    std::fprintf(stderr, "self-check failed: %s\n", problem.c_str());
    return 1;
  }

  const std::string table = ExportAttributionTable(monitor.profiler(), op_name, top_n);
  if (folded_path != nullptr) {
    if (!WriteFile(folded_path, folded)) {
      std::fprintf(stderr, "cannot write %s\n", folded_path);
      return 2;
    }
    std::printf("wrote %zu folded-stack lines (%zu samples) to %s\n", lines,
                static_cast<size_t>(monitor.profiler().TotalSamples()), folded_path);
    std::printf("%s", table.c_str());
  } else {
    std::fputs(folded.c_str(), stdout);
    std::fputs(table.c_str(), stderr);
  }
  return 0;
}

}  // namespace
}  // namespace tyche

int main(int argc, char** argv) {
  const char* folded_path = nullptr;
  size_t top_n = 10;
  size_t iters = 200;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) {
        return nullptr;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = value("--folded")) {
      folded_path = v;
      continue;
    }
    if (const char* v = value("--top")) {
      top_n = std::strtoull(v, nullptr, 10);
      continue;
    }
    if (const char* v = value("--iters")) {
      iters = std::strtoull(v, nullptr, 10);
      continue;
    }
    std::fprintf(stderr, "usage: %s [--folded out.folded] [--top N] [--iters N]\n",
                 argv[0]);
    return 2;
  }
  return tyche::Run(folded_path, top_n, iters);
}
