// Copyright 2026 The Tyche Reproduction Authors.
// Offline audit-journal verifier.
//
// With no arguments: self-test mode. Boots a simulated deployment, runs a
// sharing / revocation workload, exports the journal, verifies it (chain,
// checkpoint signatures, shadow replay against the graph snapshot), and then
// demonstrates tamper detection by flipping one byte.
//
// With arguments:
//   `journal_verify [--snapshot snap.bin] <journal.bin> <monitor_pubkey_y> [graph.json]`
// verifies a journal captured from a live run against the monitor's public
// key (the decimal y coordinate printed by the examples) and, optionally, a
// graph_export JSON snapshot file. `--snapshot` enables snapshot-anchored
// verification: the snapshot's digest must be bound into a signed
// checkpoint, and the journal suffix replays on top of its engine image —
// the only way to fully verify a journal compacted with TruncateBefore().
//
//   `journal_verify --splice <source.bin> <dest.bin> <source_pubkey_y> <dest_pubkey_y>`
// verifies the two journals of a live migration as one spliced custody
// chain: each chain on its own, then every kMigrateIn adoption paired with
// exactly one matching kMigrateOut handoff (payload digest and chain-link
// binding), with the source required to purge the domain afterwards.
//
// Exit codes:
//   0  verified
//   1  verification failed (unclassified)
//   2  usage / IO error
//   3  hash chain broken (record tamper, drop, reorder, missing anchor)
//   4  a checkpoint signature is invalid (or snapshot not bound to one)
//   5  replay divergence (journal and claimed state disagree)
//
// `--json` switches the verdict to a single machine-readable JSON object on
// stdout (chain length, checkpoint count, exit-code reason), for CI jobs
// that archive verification results as artifacts. Exit codes are unchanged.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/monitor/attestation.h"
#include "src/monitor/audit.h"
#include "src/monitor/boot.h"
#include "src/monitor/dispatch.h"
#include "src/monitor/migration.h"
#include "src/monitor/recovery.h"
#include "src/os/testbed.h"
#include "src/tyche/loader.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kJournalChainBroken:
      return 3;
    case ErrorCode::kJournalSignatureInvalid:
      return 4;
    case ErrorCode::kJournalReplayDivergence:
      return 5;
    default:
      return 1;
  }
}

const char* ReasonFor(int exit_code) {
  switch (exit_code) {
    case 0:
      return "ok";
    case 2:
      return "io_error";
    case 3:
      return "chain_broken";
    case 4:
      return "signature_invalid";
    case 5:
      return "replay_divergence";
    default:
      return "verification_failed";
  }
}

// Splice mode: two journals, two keys — verifies each chain and then the
// migration handoffs between them (VerifyJournalSplice, src/tyche/verifier).
int VerifySplice(const char* source_path, const char* dest_path, const char* source_key_str,
                 const char* dest_key_str, bool json);

// The machine-readable verdict, one JSON object on stdout. `error` is a
// human-oriented status string (already free of quotes-sensitive content:
// Status::ToString emits code names and plain messages).
void PrintJsonVerdict(int exit_code, size_t records, size_t checkpoints,
                      bool snapshot_anchored, bool graph_replay,
                      const std::string& error) {
  std::string escaped;
  for (const char c : error) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      escaped += ' ';
      continue;
    }
    escaped += c;
  }
  std::printf(
      "{\"verified\":%s,\"exit_code\":%d,\"reason\":\"%s\",\"records\":%zu,"
      "\"checkpoints\":%zu,\"snapshot_anchored\":%s,\"graph_replay\":%s,"
      "\"error\":\"%s\"}\n",
      exit_code == 0 ? "true" : "false", exit_code, ReasonFor(exit_code), records,
      checkpoints, snapshot_anchored ? "true" : "false",
      graph_replay ? "true" : "false", escaped.c_str());
}

bool ReadFile(const char* path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return true;
}

int VerifyFile(const char* journal_path, const char* pubkey_str, const char* graph_path,
               const char* snapshot_path, bool json) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(journal_path, &bytes)) {
    std::fprintf(stderr, "cannot open %s\n", journal_path);
    if (json) {
      PrintJsonVerdict(2, 0, 0, snapshot_path != nullptr, graph_path != nullptr,
                       std::string("cannot open ") + journal_path);
    }
    return 2;
  }

  SchnorrPublicKey key;
  key.y = std::strtoull(pubkey_str, nullptr, 0);

  std::string graph;
  const std::string* expected = nullptr;
  if (graph_path != nullptr) {
    std::ifstream graph_in(graph_path, std::ios::binary);
    if (!graph_in) {
      std::fprintf(stderr, "cannot open %s\n", graph_path);
      return 2;
    }
    std::ostringstream buffer;
    buffer << graph_in.rdbuf();
    graph = buffer.str();
    expected = &graph;
  }

  Status status = OkStatus();
  if (snapshot_path != nullptr) {
    std::vector<uint8_t> snapshot;
    if (!ReadFile(snapshot_path, &snapshot)) {
      std::fprintf(stderr, "cannot open %s\n", snapshot_path);
      return 2;
    }
    status = VerifyJournalWithSnapshot(bytes, snapshot, key, expected ? *expected : "");
  } else {
    status = RemoteVerifier::VerifyJournal(bytes, key, expected);
  }
  // Deserialize for the verdict's chain-length numbers; on failure the
  // journal may still parse (tamper detection happens at verify, not parse).
  size_t records = 0;
  size_t checkpoints = 0;
  if (const auto parsed = Journal::Deserialize(bytes); parsed.ok()) {
    records = parsed->records.size();
    checkpoints = parsed->checkpoints.size();
  }
  const int exit_code = status.ok() ? 0 : ExitCodeFor(status);
  if (json) {
    PrintJsonVerdict(exit_code, records, checkpoints, snapshot_path != nullptr,
                     expected != nullptr, status.ok() ? "" : status.ToString());
    return exit_code;
  }
  if (!status.ok()) {
    std::printf("FAIL: %s\n", status.ToString().c_str());
    return exit_code;
  }
  std::printf("OK: %zu records, %zu checkpoints verified%s%s\n", records, checkpoints,
              snapshot_path ? ", snapshot-anchored" : "",
              expected ? ", graph replay matches" : "");
  return 0;
}

int VerifySplice(const char* source_path, const char* dest_path, const char* source_key_str,
                 const char* dest_key_str, bool json) {
  std::vector<uint8_t> source_bytes;
  std::vector<uint8_t> dest_bytes;
  for (const auto& [path, out] :
       {std::pair{source_path, &source_bytes}, std::pair{dest_path, &dest_bytes}}) {
    if (!ReadFile(path, out)) {
      std::fprintf(stderr, "cannot open %s\n", path);
      if (json) {
        PrintJsonVerdict(2, 0, 0, false, false, std::string("cannot open ") + path);
      }
      return 2;
    }
  }
  SchnorrPublicKey source_key;
  source_key.y = std::strtoull(source_key_str, nullptr, 0);
  SchnorrPublicKey dest_key;
  dest_key.y = std::strtoull(dest_key_str, nullptr, 0);

  const Status status =
      VerifyJournalSplice(source_bytes, dest_bytes, source_key, dest_key);
  size_t records = 0;
  size_t checkpoints = 0;
  for (const std::vector<uint8_t>* bytes : {&source_bytes, &dest_bytes}) {
    if (const auto parsed = Journal::Deserialize(*bytes); parsed.ok()) {
      records += parsed->records.size();
      checkpoints += parsed->checkpoints.size();
    }
  }
  const int exit_code = status.ok() ? 0 : ExitCodeFor(status);
  if (json) {
    PrintJsonVerdict(exit_code, records, checkpoints, false, false,
                     status.ok() ? "" : status.ToString());
    return exit_code;
  }
  if (!status.ok()) {
    std::printf("FAIL: %s\n", status.ToString().c_str());
    return exit_code;
  }
  std::printf("OK: journals splice into one history (%zu records, %zu checkpoints)\n",
              records, checkpoints);
  return 0;
}

// `records`/`checkpoints` report the chain the self-test exported, so the
// --json verdict carries real numbers.
int SelfTest(size_t* records, size_t* checkpoints) {
  std::printf("journal_verify self-test: boot, workload, export, verify, tamper\n");
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", testbed.status().ToString().c_str());
    return 2;
  }
  Monitor& monitor = testbed->monitor();

  // Workload: create two enclave-ish domains, share memory both ways via the
  // dispatch ABI (so every record carries a span), then revoke -> cascade.
  auto call = [&](ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                  uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs{static_cast<uint64_t>(op), a0, a1, a2, a3, a4, a5};
    return Dispatch(&monitor, /*core=*/0, regs);
  };

  const ApiResult created_a = call(ApiOp::kCreateDomain);
  const ApiResult created_b = call(ApiOp::kCreateDomain);
  if (created_a.error != 0 || created_b.error != 0) {
    std::fprintf(stderr, "create_domain failed\n");
    return 2;
  }
  const CapId handle_a = created_a.ret1;
  const CapId handle_b = created_b.ret1;

  const uint64_t scratch = testbed->Scratch(0);
  const auto mem_cap = testbed->OsMemCap(AddrRange{scratch, 64 * kPageSize});
  if (!mem_cap.ok()) {
    std::fprintf(stderr, "no OS memory capability found\n");
    return 2;
  }
  const CapId os_mem = *mem_cap;

  const uint64_t rights_policy =
      (static_cast<uint64_t>(CapRights::kAll) << 8) | RevocationPolicy::kZeroMemory;
  const ApiResult shared = call(ApiOp::kShareMemory, os_mem, handle_a, scratch,
                                8 * kPageSize, Perms::kRW, rights_policy);
  if (shared.error != 0) {
    std::fprintf(stderr, "share_memory failed (err=%llu)\n",
                 static_cast<unsigned long long>(shared.error));
    return 2;
  }
  // Share the same range onward to B as well, then revoke the root share:
  // the cascade deactivates both children under one span.
  const ApiResult shared_b = call(ApiOp::kShareMemory, os_mem, handle_b,
                                  scratch, 4 * kPageSize, Perms::kRW, rights_policy);
  if (shared_b.error != 0) {
    std::fprintf(stderr, "second share failed\n");
    return 2;
  }
  const ApiResult revoked = call(ApiOp::kRevoke, shared.ret0);
  if (revoked.error != 0) {
    std::fprintf(stderr, "revoke failed\n");
    return 2;
  }

  const TelemetrySnapshot snapshot = monitor.DumpTelemetry();
  std::vector<uint8_t> wire = monitor.ExportJournal();
  *records = monitor.audit().journal().size();
  *checkpoints = monitor.audit().journal().checkpoint_count();
  std::printf("exported %zu bytes (%zu records, %zu checkpoints)\n", wire.size(),
              *records, *checkpoints);

  Status verdict = RemoteVerifier::VerifyJournal(wire, monitor.public_key(),
                                                 &snapshot.capability_graph_json);
  if (!verdict.ok()) {
    std::printf("FAIL: pristine journal rejected: %s\n", verdict.ToString().c_str());
    return 1;
  }
  std::printf("pristine journal verifies and replays to the graph snapshot\n");

  // Tamper: flip one byte in the middle of the record region.
  std::vector<uint8_t> tampered = wire;
  tampered[tampered.size() / 2] ^= 0x01;
  verdict = RemoteVerifier::VerifyJournal(tampered, monitor.public_key(), nullptr);
  if (verdict.ok()) {
    std::printf("FAIL: tampered journal accepted\n");
    return 1;
  }
  std::printf("single-bit tamper detected: %s\n", verdict.ToString().c_str());

  // Splice leg: two measured-boot monitors, one migrated domain, and the
  // offline custody-chain verdict — plus a tampered-handoff rejection.
  std::printf("splice self-test: boot two monitors, migrate, splice-verify, tamper\n");
  MachineConfig config;
  Machine source_machine(config);
  Machine dest_machine(config);
  const std::vector<uint8_t> firmware = DemoFirmwareImage();
  const std::vector<uint8_t> monitor_image = DemoMonitorImage();
  BootParams params;
  params.firmware_image = firmware;
  params.monitor_image = monitor_image;
  auto source_boot = MeasuredBoot(&source_machine, params);
  auto dest_boot = MeasuredBoot(&dest_machine, params);
  if (!source_boot.ok() || !dest_boot.ok()) {
    std::fprintf(stderr, "two-monitor boot failed\n");
    return 2;
  }
  Monitor& source = *source_boot->monitor;
  Monitor& dest = *dest_boot->monitor;
  const auto svc = source.CreateDomain(0, "svc");
  if (!svc.ok()) {
    std::fprintf(stderr, "create_domain failed on the source\n");
    return 2;
  }
  const AddrRange window{source.monitor_range().end() + (1ull << 20), 2 * kPageSize};
  const auto window_cap = FindMemoryCap(source, source_boot->initial_domain, window);
  if (!window_cap.ok() ||
      !source
           .GrantMemory(0, *window_cap, svc->handle, window, Perms(Perms::kRWX),
                        CapRights(CapRights::kAll),
                        RevocationPolicy(RevocationPolicy::kZeroMemory))
           .ok() ||
      !source.SetEntryPoint(0, svc->handle, window.base).ok() ||
      !source.ExtendMeasurement(0, svc->handle, window).ok() ||
      !source.Seal(0, svc->handle).ok()) {
    std::fprintf(stderr, "victim setup failed on the source\n");
    return 2;
  }
  ReliableTransport transport;
  const auto migrated =
      MigrateDomain(&source, &dest, svc->domain, &transport, source.public_key());
  if (!migrated.ok()) {
    std::printf("FAIL: migration failed: %s\n", migrated.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t> src_wire = source.ExportJournal();
  const std::vector<uint8_t> dst_wire = dest.ExportJournal();
  verdict = VerifyJournalSplice(src_wire, dst_wire, source.public_key(),
                                dest.public_key());
  if (!verdict.ok()) {
    std::printf("FAIL: clean splice rejected: %s\n", verdict.ToString().c_str());
    return 1;
  }
  std::printf("spliced custody chain verifies (migrated domain %llu)\n",
              static_cast<unsigned long long>(migrated->dest_domain));
  std::vector<uint8_t> forged = dst_wire;
  forged[forged.size() / 2] ^= 0x01;
  verdict = VerifyJournalSplice(src_wire, forged, source.public_key(),
                                dest.public_key());
  if (verdict.ok()) {
    std::printf("FAIL: tampered destination journal spliced cleanly\n");
    return 1;
  }
  std::printf("tampered handoff detected: %s\n", verdict.ToString().c_str());
  std::printf("self-test OK\n");
  return 0;
}

}  // namespace
}  // namespace tyche

int main(int argc, char** argv) {
  const char* snapshot_path = nullptr;
  bool json = false;
  bool splice = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--snapshot needs a file argument\n");
        return 2;
      }
      snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--splice") == 0) {
      splice = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (splice) {
    if (positional.size() != 4 || snapshot_path != nullptr) {
      std::fprintf(stderr,
                   "usage: %s [--json] --splice <source.bin> <dest.bin> "
                   "<source_pubkey_y> <dest_pubkey_y>\n",
                   argv[0]);
      return 2;
    }
    return tyche::VerifySplice(positional[0], positional[1], positional[2], positional[3],
                               json);
  }
  if (positional.empty()) {
    // Self-test mode; with --json the final verdict line is machine-readable.
    size_t records = 0;
    size_t checkpoints = 0;
    const int exit_code = tyche::SelfTest(&records, &checkpoints);
    if (json) {
      tyche::PrintJsonVerdict(exit_code, records, checkpoints, false,
                              /*graph_replay=*/exit_code == 0,
                              exit_code == 0 ? "" : "self-test failed");
    }
    return exit_code;
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: %s [--json]              (self-test)\n"
                 "       %s [--json] [--snapshot snap.bin] <journal.bin> "
                 "<monitor_pubkey_y> [graph.json]\n"
                 "       %s [--json] --splice <source.bin> <dest.bin> "
                 "<source_pubkey_y> <dest_pubkey_y>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  return tyche::VerifyFile(positional[0], positional[1],
                           positional.size() == 3 ? positional[2] : nullptr, snapshot_path,
                           json);
}
