// Copyright 2026 The Tyche Reproduction Authors.
// Chrome trace_event exporter tool.
//
// Boots a simulated deployment, drives a workload through the dispatch ABI
// (domain lifecycle, sharing both ways, a cascading revoke, interrupt polls
// including the routine kNotFound misses), then converts the trace ring plus
// the audit journal's span tree into a chrome://tracing-loadable timeline
// via ExportChromeTrace(). The output is round-trip validated with
// ParseChromeTrace() before it is written, so a schema regression fails the
// tool instead of producing a file the viewer rejects.
//
// The dispatch profiler runs during the workload, and each (op, phase)
// slowest-sample exemplar is joined into the timeline as an instant event
// inside its owning dispatch slice -- a histogram outlier in the metrics
// snapshot is clickable into the trace by span id.
//
// Usage:
//   trace_export [--out trace.json] [--metrics metrics.prom]
//                [--flight flight.json] [--empty-ring]
//
// With no --out the trace JSON goes to stdout. --metrics additionally
// writes the monitor's Prometheus snapshot, --flight the post-mortem
// flight-recorder dump; both cover the same workload, so CI can archive a
// coherent artifact set from one invocation. --empty-ring skips the
// workload so the trace ring stays empty: the self-check must then fail
// with exit 1 (regression coverage for the empty-export bug, where an
// empty ring used to produce a vacuously "valid" zero-slice trace).
//
// Exit codes: 0 ok, 1 self-check failed, 2 usage / IO error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/monitor/dispatch.h"
#include "src/os/testbed.h"
#include "src/support/profiler.h"
#include "src/support/trace_export.h"

namespace tyche {
namespace {

bool WriteFile(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

int Run(const char* out_path, const char* metrics_path, const char* flight_path,
        bool empty_ring) {
  auto testbed = Testbed::Create(TestbedOptions{});
  if (!testbed.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", testbed.status().ToString().c_str());
    return 2;
  }
  Monitor& monitor = testbed->monitor();
  monitor.profiler().set_enabled(true);

  auto call = [&](ApiOp op, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                  uint64_t a3 = 0, uint64_t a4 = 0, uint64_t a5 = 0) {
    ApiRegs regs{static_cast<uint64_t>(op), a0, a1, a2, a3, a4, a5};
    return Dispatch(&monitor, /*core=*/0, regs);
  };

  // Workload: enough op diversity that the timeline shows slices of several
  // names, nested journal ticks under the revoke cascade, and a couple of
  // flight-recorder captures from the failing interrupt polls.
  if (!empty_ring) {
    const ApiResult created_a = call(ApiOp::kCreateDomain);
    const ApiResult created_b = call(ApiOp::kCreateDomain);
    if (created_a.error != 0 || created_b.error != 0) {
      std::fprintf(stderr, "create_domain failed\n");
      return 2;
    }
    const uint64_t scratch = testbed->Scratch(0);
    const auto os_mem = testbed->OsMemCap(AddrRange{scratch, 64 * kPageSize});
    if (!os_mem.ok()) {
      std::fprintf(stderr, "no OS memory capability found\n");
      return 2;
    }
    const uint64_t rights_policy =
        (static_cast<uint64_t>(CapRights::kAll) << 8) | RevocationPolicy::kZeroMemory;
    const ApiResult shared = call(ApiOp::kShareMemory, *os_mem, created_a.ret1, scratch,
                                  8 * kPageSize, Perms::kRW, rights_policy);
    const ApiResult shared_b = call(ApiOp::kShareMemory, *os_mem, created_b.ret1,
                                    scratch, 4 * kPageSize, Perms::kRW, rights_policy);
    if (shared.error != 0 || shared_b.error != 0) {
      std::fprintf(stderr, "share_memory failed\n");
      return 2;
    }
    if (call(ApiOp::kRevoke, shared.ret0).error != 0) {
      std::fprintf(stderr, "revoke failed\n");
      return 2;
    }
    for (int i = 0; i < 8; ++i) {
      call(ApiOp::kTakeInterrupt);  // kNotFound: routine error, flight-recorded once
    }
    call(ApiOp::kEnumerate, created_b.ret1);
  }

  const TelemetrySnapshot snapshot = monitor.DumpTelemetry();
  const std::vector<JournalRecord> records = monitor.audit().journal().Records();

  // Join the profiler's slowest-sample exemplars into the timeline so a
  // histogram outlier in the metrics snapshot is clickable by span id.
  const DispatchProfiler& profiler = monitor.profiler();
  std::vector<TraceExemplarMark> marks;
  for (uint16_t op = 0; op < static_cast<uint16_t>(profiler.op_count()); ++op) {
    for (size_t p = 0; p < kDispatchPhaseCount; ++p) {
      const DispatchPhase phase = static_cast<DispatchPhase>(p);
      const DispatchProfiler::ExemplarSample sample = profiler.Exemplar(op, phase);
      if (sample.ns == 0) {
        continue;
      }
      TraceExemplarMark mark;
      mark.name = "slowest " + std::string(ApiOpName(static_cast<ApiOp>(op))) + "/" +
                  DispatchPhaseName(phase);
      mark.span = sample.span;
      mark.ts_ns = sample.ts_ns;
      mark.duration_ns = sample.ns;
      marks.push_back(std::move(mark));
    }
  }

  const std::string trace_json = ExportChromeTrace(
      snapshot.trace, records,
      [](uint16_t op) { return std::string(ApiOpName(static_cast<ApiOp>(op))); },
      [](uint8_t event) {
        return std::string(JournalEventName(static_cast<JournalEvent>(event)));
      },
      marks);

  // Self-check: the ring must be non-empty (a workload ran and tracing was
  // actually on -- an empty export used to pass vacuously), the export must
  // parse back with dispatch slices present, and every slice span must be
  // resolvable in the journal's span set.
  if (snapshot.trace.empty()) {
    std::fprintf(stderr, "self-check failed: trace ring is empty (no dispatches "
                         "recorded, nothing to export)\n");
    return 1;
  }
  const auto parsed = ParseChromeTrace(trace_json);
  if (!parsed.ok()) {
    std::fprintf(stderr, "self-check failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  size_t slices = 0;
  for (const ParsedTraceEvent& event : *parsed) {
    if (event.phase == "X") {
      ++slices;
    }
  }
  if (slices != snapshot.trace.size()) {
    std::fprintf(stderr, "self-check failed: %zu slices for %zu trace entries\n", slices,
                 snapshot.trace.size());
    return 1;
  }

  if (out_path != nullptr) {
    if (!WriteFile(out_path, trace_json)) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 2;
    }
    std::printf("wrote %zu bytes of trace JSON (%zu events, %zu slices) to %s\n",
                trace_json.size(), parsed->size(), slices, out_path);
  } else {
    std::fputs(trace_json.c_str(), stdout);
    std::fputc('\n', stdout);
  }

  if (metrics_path != nullptr) {
    const std::string metrics = monitor.ExportMetrics();
    if (!WriteFile(metrics_path, metrics)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path);
      return 2;
    }
    std::printf("wrote %zu bytes of metrics to %s\n", metrics.size(), metrics_path);
  }
  if (flight_path != nullptr) {
    const std::string flight = monitor.flight_recorder().DumpJson(
        [](uint16_t op) { return std::string(ApiOpName(static_cast<ApiOp>(op))); });
    if (!WriteFile(flight_path, flight)) {
      std::fprintf(stderr, "cannot write %s\n", flight_path);
      return 2;
    }
    std::printf("wrote %zu bytes of flight records to %s\n", flight.size(), flight_path);
  }
  return 0;
}

}  // namespace
}  // namespace tyche

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  const char* metrics_path = nullptr;
  const char* flight_path = nullptr;
  bool empty_ring = false;
  for (int i = 1; i < argc; ++i) {
    auto take = [&](const char* flag, const char** slot) {
      if (std::strcmp(argv[i], flag) != 0) {
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a file argument\n", flag);
        std::exit(2);
      }
      *slot = argv[++i];
      return true;
    };
    if (take("--out", &out_path) || take("--metrics", &metrics_path) ||
        take("--flight", &flight_path)) {
      continue;
    }
    if (std::strcmp(argv[i], "--empty-ring") == 0) {
      empty_ring = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--out trace.json] [--metrics metrics.prom] "
                 "[--flight flight.json] [--empty-ring]\n",
                 argv[0]);
    return 2;
  }
  return tyche::Run(out_path, metrics_path, flight_path, empty_ring);
}
