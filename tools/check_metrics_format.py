#!/usr/bin/env python3
"""CI check: Monitor::ExportMetrics() output must be valid Prometheus text.

Validates the text exposition format line by line -- HELP/TYPE headers,
metric-name and label syntax, numeric sample values, histogram structure
(cumulative buckets ending in le="+Inf", plus _sum and _count) -- and then
asserts the export covers the signal families every DumpTelemetry() consumer
relies on. Fails (exit 1) listing every violation, so a formatting
regression in the exporter is caught before a real scraper trips on it.

Usage:
    check_metrics_format.py metrics.prom [--require-nonzero tyche_api_calls_total]
    check_metrics_format.py fleet.prom --profile fleet

`--profile` selects which family checklist applies: `monitor` (default) is
the Monitor::ExportMetrics() contract, `fleet` is the verification
front end's registry (tyche_fleet_* families).
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[0-9]+(?:\.[0-9]+)?|[+-]Inf|NaN)\s*$"
)

# Families the monitor has always surfaced through DumpTelemetry(); the
# export is only complete if each appears (a histogram counts via _count).
MONITOR_FAMILIES = [
    "tyche_api_calls_total",
    "tyche_transitions_total",
    "tyche_capability_ops_total",
    "tyche_revocations_cascaded_total",
    "tyche_recoveries_total",
    "tyche_effects_total",
    "tyche_backend_ops_total",
    "tyche_journal_records",
    "tyche_journal_checkpoints",
    "tyche_journal_group_commit_batches_total",
    "tyche_journal_group_commit_records_total",
    "tyche_journal_group_commit_max_batch",
    "tyche_trace_recorded_total",
    "tyche_trace_dropped_total",
    "tyche_lock_contention_total",
    "tyche_fault_injections_fired_total",
    "tyche_fault_injection_active",
    "tyche_domains_alive",
    "tyche_dispatch_latency_ns",
    "tyche_flight_captures_total",
]

# Families the fleet verification front end registers; the fleet-sweep CI
# job scrapes its registry and every dashboard signal must be present.
FLEET_FAMILIES = [
    "tyche_fleet_verifications_total",
    "tyche_fleet_retries_total",
    "tyche_fleet_hedged_total",
    "tyche_fleet_hedged_wins_total",
    "tyche_fleet_shed_total",
    "tyche_fleet_failover_total",
    "tyche_fleet_deadline_exceeded_total",
    "tyche_fleet_cache_hits_total",
    "tyche_fleet_cache_misses_total",
    "tyche_fleet_cache_hit_ratio_percent",
    "tyche_fleet_breaker_state",
    "tyche_fleet_node_epoch",
    "tyche_fleet_queue_depth",
    # Phase 2 (DESIGN.md §13): batching, session resumption, TTL expiry, and
    # per-tenant quota accounting.
    "tyche_fleet_cache_expired_total",
    "tyche_fleet_session_established_total",
    "tyche_fleet_session_resumed_total",
    "tyche_fleet_session_rejected_total",
    "tyche_fleet_batch_verifies_total",
    "tyche_fleet_batch_quotes_total",
    "tyche_fleet_batch_forged_total",
    "tyche_fleet_batch_fallback_total",
    "tyche_fleet_tenant_admitted_total",
    "tyche_fleet_tenant_quota_exceeded_total",
    "tyche_fleet_tenant_tokens",
]

PROFILES = {"monitor": MONITOR_FAMILIES, "fleet": FLEET_FAMILIES}


def base_family(sample_name):
    """Strips histogram suffixes so samples map back to their family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_labels(raw, line_no, errors):
    pos = 0
    while pos < len(raw):
        match = LABEL_RE.match(raw, pos)
        if not match:
            errors.append(f"line {line_no}: malformed label set at '{raw[pos:pos + 30]}'")
            return {}
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(f"line {line_no}: expected ',' between labels")
                return {}
            pos += 1
    return dict(LABEL_RE.findall(raw))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="metrics text file to validate")
    parser.add_argument(
        "--require-nonzero",
        action="append",
        default=[],
        help="family that must have at least one sample > 0 (repeatable)",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="monitor",
        help="which required-family checklist applies (default: monitor)",
    )
    args = parser.parse_args()

    with open(args.path) as f:
        lines = f.read().splitlines()

    errors = []
    declared = {}  # family -> type
    family_values = {}  # family -> [float]
    histogram_state = {}  # family+labels(frozen) -> last cumulative, saw_inf

    for line_no, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                errors.append(f"line {line_no}: malformed {parts[1]} line")
                continue
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    errors.append(f"line {line_no}: unknown TYPE '{parts[3]}'")
                if parts[2] in declared:
                    errors.append(f"line {line_no}: duplicate TYPE for {parts[2]}")
                declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            errors.append(f"line {line_no}: unexpected comment '{line[:40]}'")
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample '{line[:60]}'")
            continue
        name = match.group("name")
        labels = validate_labels(match.group("labels") or "", line_no, errors)
        family = base_family(name)
        if family not in declared:
            errors.append(f"line {line_no}: sample '{name}' has no TYPE declaration")
            continue
        ftype = declared[family]
        value = float(match.group("value").replace("Inf", "inf"))
        family_values.setdefault(family, []).append(value)

        if ftype == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {line_no}: histogram bucket without 'le' label")
                    continue
                key = (family, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
                last, saw_inf = histogram_state.get(key, (0.0, False))
                if saw_inf:
                    errors.append(f"line {line_no}: bucket after le=\"+Inf\" for {family}")
                if value < last:
                    errors.append(
                        f"line {line_no}: non-cumulative bucket for {family} "
                        f"({value} < {last})"
                    )
                histogram_state[key] = (value, labels["le"] == "+Inf")
            elif not (name.endswith("_sum") or name.endswith("_count")):
                errors.append(f"line {line_no}: bad histogram sample name '{name}'")
        elif ftype == "counter":
            if not family.endswith("_total"):
                errors.append(f"line {line_no}: counter family '{family}' lacks _total")
            if value < 0:
                errors.append(f"line {line_no}: negative counter value")

    for key, (_, saw_inf) in histogram_state.items():
        if not saw_inf:
            errors.append(f"histogram series {key[0]}{dict(key[1])} never emitted le=\"+Inf\"")

    for family in PROFILES[args.profile]:
        if family not in family_values:
            errors.append(f"required family missing from export: {family}")

    for family in args.require_nonzero:
        values = family_values.get(family, [])
        if not any(v > 0 for v in values):
            errors.append(f"family {family} has no nonzero sample")

    if errors:
        for error in errors:
            print(error)
        print(f"FAIL: {len(errors)} problem(s) in {args.path}")
        return 1
    print(
        f"OK: {args.path} is valid Prometheus text "
        f"({len(declared)} families, {sum(len(v) for v in family_values.values())} samples)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
