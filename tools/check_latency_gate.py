#!/usr/bin/env python3
"""CI gate: the serial dispatch path must not regress under the lock guards.

Reads two google-benchmark JSON artifacts produced in the same run and the
recorded baseline policy, then fails (exit 1) if

    real_time(subject) > max_ratio * real_time(reference)

The subject (BM_Dispatch_SerialBaseline, from bench_concurrency) runs the
dispatch boundary with the concurrency guards compiled in but disengaged;
the reference (BM_Dispatch_JournalOff, from bench_journal) is the same
boundary as the pre-concurrency releases measured it. Comparing two numbers
from one machine and one run keeps the gate meaningful on heterogeneous CI
runners, where an absolute nanosecond floor would be noise.

Usage:
    check_latency_gate.py --subject BENCH_concurrency.json \
        --reference BENCH_journal.json \
        --baseline bench/baselines/dispatch_baseline.json
"""

import argparse
import json
import sys


def find_benchmark(path, name):
    with open(path) as f:
        data = json.load(f)
    for bench in data.get("benchmarks", []):
        if bench.get("name") == name:
            return bench
    raise SystemExit(f"error: benchmark '{name}' not found in {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subject", required=True, help="JSON with the gated benchmark")
    parser.add_argument("--reference", required=True, help="JSON with the reference benchmark")
    parser.add_argument("--baseline", required=True, help="baseline policy JSON")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)

    subject = find_benchmark(args.subject, baseline["subject"])
    reference = find_benchmark(args.reference, baseline["reference"])
    subject_ns = float(subject["real_time"])
    reference_ns = float(reference["real_time"])
    max_ratio = float(baseline["max_ratio"])

    ratio = subject_ns / reference_ns
    print(f"{baseline['subject']}: {subject_ns:.1f} ns")
    print(f"{baseline['reference']}: {reference_ns:.1f} ns")
    print(f"ratio: {ratio:.3f} (allowed: {max_ratio:.2f})")
    if ratio > max_ratio:
        print("FAIL: serial dispatch latency regressed beyond the gate")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
