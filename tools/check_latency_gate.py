#!/usr/bin/env python3
"""CI gate: dispatch-path latency must not regress past the recorded policy.

Reads google-benchmark JSON artifacts produced in the same run and a
baseline policy file, then fails (exit 1) if any gate trips:

    real_time(subject) > max_ratio * real_time(reference)

and, for gates that name a percentile counter (benches export p50_ns /
p90_ns / p99_ns from their histogram views):

    counter(subject) > max_p99_ratio * counter(reference)

Comparing two numbers from one machine and one run keeps the gates
meaningful on heterogeneous CI runners, where an absolute nanosecond floor
would be noise.

Two baseline shapes are accepted:

  {"subject": ..., "reference": ..., "max_ratio": ...}          # single gate
  {"gates": [{...}, {...}]}                                     # several

Each gate entry holds subject / reference benchmark names and max_ratio,
plus optionally "p99_counter" (the counter name to compare) and
"max_p99_ratio" (its allowed ratio, defaulting to max_ratio). Benchmarks
are looked up in the --subject file first, then the --reference file, so
gate pairs that live in one artifact can pass the same path for both.

Two extensions for the phase-profile baseline
(bench/baselines/profile_baseline.json):

  - Counter-bounds gates ({"subject": ..., "counter": ..., "min": ...,
    "max": ...}) check an exported counter against an absolute interval
    instead of a cross-benchmark ratio -- used for accounting invariants
    like phase_sum_ratio, which must stay within 10% of 1.0.
  - Ratio gates may carry "phase_shares": the expected share of each
    dispatch phase (from the subject's phase_<name>_ns counters, as
    recorded when the baseline was set). When the mean or p99 gate trips,
    the report breaks the subject down by phase and names the phases whose
    share grew past the baseline -- "which phase regressed", not just
    "slower".
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    return data.get("benchmarks", [])


def find_benchmark(pools, name):
    for path, benchmarks in pools:
        for bench in benchmarks:
            if bench.get("name") == name:
                return bench
    paths = ", ".join(path for path, _ in pools)
    raise SystemExit(f"error: benchmark '{name}' not found in {paths}")


def phase_shares(bench):
    """Extracts phase_<name>_ns counters as {name: share-of-total}."""
    totals = {}
    for key, value in bench.items():
        if key.startswith("phase_") and key.endswith("_ns"):
            totals[key[len("phase_") : -len("_ns")]] = float(value)
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {name: ns / grand for name, ns in totals.items()}


def report_phase_regression(gate, subject):
    """Names the phases whose share of dispatch time grew past the baseline."""
    baseline_shares = gate.get("phase_shares")
    measured = phase_shares(subject)
    if not measured:
        print("(no phase_<name>_ns counters in the subject; cannot attribute)")
        return
    print("per-phase attribution of the regression:")
    names = sorted(
        measured, key=lambda n: measured[n] - float((baseline_shares or {}).get(n, 0)),
        reverse=True,
    )
    culprits = []
    for name in names:
        line = f"  {name:<16} {100.0 * measured[name]:5.1f}% of dispatch time"
        if baseline_shares and name in baseline_shares:
            base = float(baseline_shares[name])
            delta = measured[name] - base
            line += f" (baseline {100.0 * base:5.1f}%, {100.0 * delta:+5.1f}pp)"
            if delta > 0.02:
                culprits.append(name)
        print(line)
    if culprits:
        print(f"phase(s) that regressed: {', '.join(culprits)}")


def check_bounds_gate(gate, pools):
    subject = find_benchmark(pools, gate["subject"])
    counter = gate["counter"]
    if counter not in subject:
        raise SystemExit(f"error: counter '{counter}' missing from {gate['subject']}")
    value = float(subject[counter])
    lo = float(gate["min"])
    hi = float(gate["max"])
    print(f"{gate['subject']} {counter}: {value:.4f} (allowed: [{lo:.4f}, {hi:.4f}])")
    if value < lo or value > hi:
        print(f"FAIL: {gate['subject']} {counter} is outside the allowed bounds")
        return False
    return True


def check_gate(gate, pools):
    if "counter" in gate and "reference" not in gate:
        return check_bounds_gate(gate, pools)
    subject = find_benchmark(pools, gate["subject"])
    reference = find_benchmark(pools, gate["reference"])
    max_ratio = float(gate["max_ratio"])

    subject_ns = float(subject["real_time"])
    reference_ns = float(reference["real_time"])
    ratio = subject_ns / reference_ns
    print(f"{gate['subject']}: {subject_ns:.1f} ns")
    print(f"{gate['reference']}: {reference_ns:.1f} ns")
    print(f"ratio: {ratio:.3f} (allowed: {max_ratio:.2f})")
    ok = True
    if ratio > max_ratio:
        print(f"FAIL: {gate['subject']} mean latency regressed beyond the gate")
        report_phase_regression(gate, subject)
        ok = False

    counter = gate.get("p99_counter")
    if counter:
        if counter not in subject or counter not in reference:
            raise SystemExit(
                f"error: counter '{counter}' missing from "
                f"{gate['subject']} or {gate['reference']}"
            )
        subject_p99 = float(subject[counter])
        reference_p99 = float(reference[counter])
        max_p99 = float(gate.get("max_p99_ratio", max_ratio))
        # Log2 histogram buckets quantize percentiles to powers of two, so
        # tiny absolute values can double across a bucket edge without any
        # real regression; only gate once the tail is measurably nonzero.
        if reference_p99 > 0:
            p99_ratio = subject_p99 / reference_p99
            print(
                f"{counter}: {subject_p99:.0f} vs {reference_p99:.0f} ns, "
                f"ratio {p99_ratio:.3f} (allowed: {max_p99:.2f})"
            )
            if p99_ratio > max_p99:
                print(f"FAIL: {gate['subject']} {counter} regressed beyond the gate")
                if ok:  # avoid printing the same breakdown twice
                    report_phase_regression(gate, subject)
                ok = False
        else:
            print(f"{counter}: reference is 0, skipping tail gate")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subject", required=True, help="JSON with the gated benchmark")
    parser.add_argument("--reference", required=True, help="JSON with the reference benchmark")
    parser.add_argument("--baseline", required=True, help="baseline policy JSON")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    gates = baseline["gates"] if "gates" in baseline else [baseline]

    pools = [(args.subject, load_benchmarks(args.subject))]
    if args.reference != args.subject:
        pools.append((args.reference, load_benchmarks(args.reference)))

    failed = 0
    for gate in gates:
        if not check_gate(gate, pools):
            failed += 1
        print()
    if failed:
        print(f"FAIL: {failed} of {len(gates)} latency gates tripped")
        return 1
    print(f"OK: {len(gates)} gate(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
