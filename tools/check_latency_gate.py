#!/usr/bin/env python3
"""CI gate: dispatch-path latency must not regress past the recorded policy.

Reads google-benchmark JSON artifacts produced in the same run and a
baseline policy file, then fails (exit 1) if any gate trips:

    real_time(subject) > max_ratio * real_time(reference)

and, for gates that name a percentile counter (benches export p50_ns /
p90_ns / p99_ns from their histogram views):

    counter(subject) > max_p99_ratio * counter(reference)

Comparing two numbers from one machine and one run keeps the gates
meaningful on heterogeneous CI runners, where an absolute nanosecond floor
would be noise.

Two baseline shapes are accepted:

  {"subject": ..., "reference": ..., "max_ratio": ...}          # single gate
  {"gates": [{...}, {...}]}                                     # several

Each gate entry holds subject / reference benchmark names and max_ratio,
plus optionally "p99_counter" (the counter name to compare) and
"max_p99_ratio" (its allowed ratio, defaulting to max_ratio). Benchmarks
are looked up in the --subject file first, then the --reference file, so
gate pairs that live in one artifact can pass the same path for both.

Two extensions for the phase-profile baseline
(bench/baselines/profile_baseline.json):

  - Counter-bounds gates ({"subject": ..., "counter": ..., "min": ...,
    "max": ...}) check an exported counter against an absolute interval
    instead of a cross-benchmark ratio -- used for accounting invariants
    like phase_sum_ratio, which must stay within 10% of 1.0.
  - Ratio gates may carry "phase_shares": the expected share of each
    dispatch phase (from the subject's phase_<name>_ns counters, as
    recorded when the baseline was set). When the mean or p99 gate trips,
    the report breaks the subject down by phase and names the phases whose
    share grew past the baseline -- "which phase regressed", not just
    "slower".

Exit codes: 0 all gates passed, 1 a gate tripped (a real regression),
2 usage error, 3 missing or malformed input JSON (baseline / subject /
reference) -- CI can tell "the build got slower" apart from "the gate was
never evaluated". `--self-check` exercises all of these against synthetic
artifacts and needs no other arguments.
"""

import argparse
import json
import sys

EXIT_GATE_TRIPPED = 1
EXIT_BAD_INPUT = 3


def input_error(message):
    """A missing or malformed input file: exit 3, never a traceback."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(EXIT_BAD_INPUT)


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as exc:
        input_error(f"{what} '{path}' cannot be read: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        input_error(f"{what} '{path}' is not valid JSON: {exc}")


def load_benchmarks(path):
    data = load_json(path, "benchmark artifact")
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks", []), list):
        input_error(f"benchmark artifact '{path}' has no 'benchmarks' array")
    return data.get("benchmarks", [])


def load_gates(path):
    baseline = load_json(path, "baseline policy")
    if not isinstance(baseline, dict):
        input_error(f"baseline policy '{path}' must be a JSON object")
    gates = baseline["gates"] if "gates" in baseline else [baseline]
    if not isinstance(gates, list) or not gates:
        input_error(f"baseline policy '{path}': 'gates' must be a non-empty array")
    for i, gate in enumerate(gates):
        if not isinstance(gate, dict) or "subject" not in gate:
            input_error(f"baseline policy '{path}': gate #{i} lacks 'subject'")
        if "counter" in gate and "reference" not in gate:
            missing = [k for k in ("min", "max") if k not in gate]
        else:
            missing = [k for k in ("reference", "max_ratio") if k not in gate]
        if missing:
            input_error(
                f"baseline policy '{path}': gate #{i} ('{gate['subject']}') "
                f"lacks {', '.join(missing)}"
            )
    return gates


def find_benchmark(pools, name):
    for path, benchmarks in pools:
        for bench in benchmarks:
            if bench.get("name") == name:
                return bench
    paths = ", ".join(path for path, _ in pools)
    raise SystemExit(f"error: benchmark '{name}' not found in {paths}")


def phase_shares(bench):
    """Extracts phase_<name>_ns counters as {name: share-of-total}."""
    totals = {}
    for key, value in bench.items():
        if key.startswith("phase_") and key.endswith("_ns"):
            totals[key[len("phase_") : -len("_ns")]] = float(value)
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {name: ns / grand for name, ns in totals.items()}


def report_phase_regression(gate, subject):
    """Names the phases whose share of dispatch time grew past the baseline."""
    baseline_shares = gate.get("phase_shares")
    measured = phase_shares(subject)
    if not measured:
        print("(no phase_<name>_ns counters in the subject; cannot attribute)")
        return
    print("per-phase attribution of the regression:")
    names = sorted(
        measured, key=lambda n: measured[n] - float((baseline_shares or {}).get(n, 0)),
        reverse=True,
    )
    culprits = []
    for name in names:
        line = f"  {name:<16} {100.0 * measured[name]:5.1f}% of dispatch time"
        if baseline_shares and name in baseline_shares:
            base = float(baseline_shares[name])
            delta = measured[name] - base
            line += f" (baseline {100.0 * base:5.1f}%, {100.0 * delta:+5.1f}pp)"
            if delta > 0.02:
                culprits.append(name)
        print(line)
    if culprits:
        print(f"phase(s) that regressed: {', '.join(culprits)}")


def check_bounds_gate(gate, pools):
    subject = find_benchmark(pools, gate["subject"])
    counter = gate["counter"]
    if counter not in subject:
        raise SystemExit(f"error: counter '{counter}' missing from {gate['subject']}")
    value = float(subject[counter])
    lo = float(gate["min"])
    hi = float(gate["max"])
    print(f"{gate['subject']} {counter}: {value:.4f} (allowed: [{lo:.4f}, {hi:.4f}])")
    if value < lo or value > hi:
        print(f"FAIL: {gate['subject']} {counter} is outside the allowed bounds")
        return False
    return True


def check_gate(gate, pools):
    if "counter" in gate and "reference" not in gate:
        return check_bounds_gate(gate, pools)
    subject = find_benchmark(pools, gate["subject"])
    reference = find_benchmark(pools, gate["reference"])
    max_ratio = float(gate["max_ratio"])

    subject_ns = float(subject["real_time"])
    reference_ns = float(reference["real_time"])
    ratio = subject_ns / reference_ns
    print(f"{gate['subject']}: {subject_ns:.1f} ns")
    print(f"{gate['reference']}: {reference_ns:.1f} ns")
    print(f"ratio: {ratio:.3f} (allowed: {max_ratio:.2f})")
    ok = True
    if ratio > max_ratio:
        print(f"FAIL: {gate['subject']} mean latency regressed beyond the gate")
        report_phase_regression(gate, subject)
        ok = False

    counter = gate.get("p99_counter")
    if counter:
        if counter not in subject or counter not in reference:
            raise SystemExit(
                f"error: counter '{counter}' missing from "
                f"{gate['subject']} or {gate['reference']}"
            )
        subject_p99 = float(subject[counter])
        reference_p99 = float(reference[counter])
        max_p99 = float(gate.get("max_p99_ratio", max_ratio))
        # Log2 histogram buckets quantize percentiles to powers of two, so
        # tiny absolute values can double across a bucket edge without any
        # real regression; only gate once the tail is measurably nonzero.
        if reference_p99 > 0:
            p99_ratio = subject_p99 / reference_p99
            print(
                f"{counter}: {subject_p99:.0f} vs {reference_p99:.0f} ns, "
                f"ratio {p99_ratio:.3f} (allowed: {max_p99:.2f})"
            )
            if p99_ratio > max_p99:
                print(f"FAIL: {gate['subject']} {counter} regressed beyond the gate")
                if ok:  # avoid printing the same breakdown twice
                    report_phase_regression(gate, subject)
                ok = False
        else:
            print(f"{counter}: reference is 0, skipping tail gate")
    return ok


def run_self_check():
    """Verifies the tool's own verdicts and exit codes on synthetic inputs."""
    import os
    import tempfile

    def invoke(argv):
        saved = sys.argv
        sys.argv = ["check_latency_gate.py"] + argv
        try:
            try:
                code = main()
            except SystemExit as exc:
                code = exc.code if isinstance(exc.code, int) else 1
            return 0 if code is None else code
        finally:
            sys.argv = saved

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, text):
            path = os.path.join(tmp, name)
            with open(path, "w") as f:
                f.write(text)
            return path

        bench = write("bench.json", json.dumps({"benchmarks": [
            {"name": "fast", "real_time": 100.0},
            {"name": "slow", "real_time": 300.0},
        ]}))
        passing = write("passing.json",
                        json.dumps({"subject": "fast", "reference": "slow",
                                    "max_ratio": 1.0}))
        tripping = write("tripping.json",
                         json.dumps({"subject": "slow", "reference": "fast",
                                     "max_ratio": 1.5}))
        truncated = write("truncated.json", '{"gates": [')
        keyless = write("keyless.json", json.dumps({"subject": "fast"}))
        missing = os.path.join(tmp, "does_not_exist.json")

        cases = [
            ("passing gate exits 0", [
                "--subject", bench, "--reference", bench, "--baseline", passing], 0),
            ("tripped gate exits 1", [
                "--subject", bench, "--reference", bench, "--baseline", tripping],
                EXIT_GATE_TRIPPED),
            ("missing baseline exits 3", [
                "--subject", bench, "--reference", bench, "--baseline", missing],
                EXIT_BAD_INPUT),
            ("malformed baseline exits 3", [
                "--subject", bench, "--reference", bench, "--baseline", truncated],
                EXIT_BAD_INPUT),
            ("baseline without max_ratio exits 3", [
                "--subject", bench, "--reference", bench, "--baseline", keyless],
                EXIT_BAD_INPUT),
            ("missing subject artifact exits 3", [
                "--subject", missing, "--reference", bench, "--baseline", passing],
                EXIT_BAD_INPUT),
        ]
        failures = 0
        for name, argv, want in cases:
            got = invoke(argv)
            verdict = "ok" if got == want else f"FAIL (exit {got}, want {want})"
            print(f"self-check: {name}: {verdict}")
            if got != want:
                failures += 1
        if failures:
            print(f"self-check FAILED: {failures} of {len(cases)} cases")
            return 1
        print(f"self-check OK: {len(cases)} cases")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subject", help="JSON with the gated benchmark")
    parser.add_argument("--reference", help="JSON with the reference benchmark")
    parser.add_argument("--baseline", help="baseline policy JSON")
    parser.add_argument("--self-check", action="store_true",
                        help="verify the tool's verdicts and exit codes, then exit")
    args = parser.parse_args()

    if args.self_check:
        return run_self_check()
    if not (args.subject and args.reference and args.baseline):
        parser.error("--subject, --reference and --baseline are required")

    gates = load_gates(args.baseline)

    pools = [(args.subject, load_benchmarks(args.subject))]
    if args.reference != args.subject:
        pools.append((args.reference, load_benchmarks(args.reference)))

    failed = 0
    for gate in gates:
        if not check_gate(gate, pools):
            failed += 1
        print()
    if failed:
        print(f"FAIL: {failed} of {len(gates)} latency gates tripped")
        return EXIT_GATE_TRIPPED
    print(f"OK: {len(gates)} gate(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
