// Copyright 2026 The Tyche Reproduction Authors.
// Authenticated encryption built from SHA-256 primitives (encrypt-then-MAC
// with an HMAC-derived keystream). Backs the monitor's measurement-bound
// sealed storage. Same caveat as the rest of src/crypto: sound construction,
// toy deployment -- see DESIGN.md.

#ifndef SRC_CRYPTO_AUTHENTICATED_H_
#define SRC_CRYPTO_AUTHENTICATED_H_

#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/support/status.h"

namespace tyche {

struct SealedBlob {
  uint64_t nonce = 0;
  std::vector<uint8_t> ciphertext;
  Digest tag;

  std::vector<uint8_t> Serialize() const;
  static Result<SealedBlob> Deserialize(std::span<const uint8_t> bytes);
};

// Encrypts and authenticates `plaintext` under `key`. The nonce must be
// unique per key (the caller supplies it; the monitor uses a counter).
SealedBlob AeadSeal(const Digest& key, uint64_t nonce, std::span<const uint8_t> plaintext);

// Verifies and decrypts. Fails with kSignatureInvalid on any tampering or
// wrong key.
Result<std::vector<uint8_t>> AeadOpen(const Digest& key, const SealedBlob& blob);

}  // namespace tyche

#endif  // SRC_CRYPTO_AUTHENTICATED_H_
