// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TYCHE_SHA_NI_CANDIDATE 1
#endif

namespace tyche {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t Load32BE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void Store32BE(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

constexpr char kHexDigits[] = "0123456789abcdef";

#ifdef TYCHE_SHA_NI_CANDIDATE
// Hardware-assisted compression via the SHA extensions. One block in ~a
// dozen nanoseconds versus hundreds for the scalar rounds; everything
// downstream (attestation digests, HMAC session tokens, batch combiners)
// is hash-bound, so this is the single biggest throughput lever the fleet
// has. Layout follows the SHA-NI dataflow: state is carried as the ABEF /
// CDGH register pair, four message words per rnds2 step.
__attribute__((target("sha,sse4.1")))
void ProcessBlockShaNi(uint32_t* state, const uint8_t* block) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  auto k = [](int i) {
    return _mm_set_epi32(static_cast<int>(kK[i + 3]), static_cast<int>(kK[i + 2]),
                         static_cast<int>(kK[i + 1]), static_cast<int>(kK[i]));
  };

  // Rounds 0-15: load + byte-swap the message, no schedule yet.
  __m128i msg0 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0)), kShuffle);
  __m128i msg = _mm_add_epi32(msg0, k(0));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  __m128i msg1 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), kShuffle);
  msg = _mm_add_epi32(msg1, k(4));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  __m128i msg2 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), kShuffle);
  msg = _mm_add_epi32(msg2, k(8));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  __m128i msg3 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), kShuffle);
  msg = _mm_add_epi32(msg3, k(12));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-51: schedule four words per step with msg1/msg2 helpers.
  for (int i = 16; i < 52; i += 4) {
    msg = _mm_add_epi32(msg0, k(i));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    const __m128i rot0 = msg1;
    msg1 = msg2;
    msg2 = msg3;
    msg3 = msg0;
    msg0 = rot0;
  }

  // Rounds 52-63: no further schedule needed.
  msg = _mm_add_epi32(msg0, k(52));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  msg = _mm_add_epi32(msg1, k(56));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  msg = _mm_add_epi32(msg2, k(60));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool DetectShaNi() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
}

const bool kUseShaNi = DetectShaNi();
#endif  // TYCHE_SHA_NI_CANDIDATE

}  // namespace

std::string Digest::ToHex() const {
  std::string out;
  out.reserve(64);
  for (uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlock(const uint8_t* block) {
#ifdef TYCHE_SHA_NI_CANDIDATE
  if (kUseShaNi) {
    ProcessBlockShaNi(state_, block);
    return;
  }
#endif
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = Load32BE(block + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];
  uint32_t e = state_[4];
  uint32_t f = state_[5];
  uint32_t g = state_[6];
  uint32_t h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t offset = 0;

  if (buffer_len_ > 0) {
    const size_t take = std::min(data.size(), sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }

  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }

  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha256::Update(std::string_view data) {
  Update(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

Digest Sha256::Finalize() {
  const uint64_t bit_len = total_bytes_ * 8;

  const uint8_t pad_byte = 0x80;
  Update(std::span<const uint8_t>(&pad_byte, 1));
  const uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(std::span<const uint8_t>(&zero, 1));
  }

  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_bytes_ accounting: the length field is part of padding.
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  buffer_len_ += 8;
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Digest digest;
  for (int i = 0; i < 8; ++i) {
    Store32BE(digest.bytes.data() + 4 * i, state_[i]);
  }
  Reset();
  return digest;
}

Digest Sha256::Hash(std::span<const uint8_t> data) {
  Sha256 ctx;
  ctx.Update(data);
  return ctx.Finalize();
}

Digest Sha256::Hash(std::string_view data) {
  Sha256 ctx;
  ctx.Update(data);
  return ctx.Finalize();
}

Digest HmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> message) {
  uint8_t key_block[64] = {};
  if (key.size() > 64) {
    const Digest hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.bytes.data(), hashed.bytes.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64];
  uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(std::span<const uint8_t>(ipad, 64));
  inner.Update(message);
  const Digest inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(std::span<const uint8_t>(opad, 64));
  outer.Update(std::span<const uint8_t>(inner_digest.bytes.data(), inner_digest.bytes.size()));
  return outer.Finalize();
}

}  // namespace tyche
