// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/schnorr.h"

#include <algorithm>
#include <cstring>

namespace tyche {

namespace {

// Reduces a digest to an exponent modulo m (uses the first 8 bytes, which is
// plenty of entropy relative to the 62-bit toy group).
uint64_t DigestToScalar(const Digest& digest, uint64_t m) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | digest.bytes[i];
  }
  const uint64_t scalar = v % m;
  return scalar == 0 ? 1 : scalar;
}

Digest ChallengeHash(uint64_t r, const SchnorrPublicKey& pub, const Digest& message_digest) {
  // One contiguous 55-byte buffer: a 7-byte domain tag + r + y + digest.
  // 55 bytes is the most a single SHA-256 block can carry after padding, so
  // the challenge costs exactly one compression — this hash runs once per
  // signature on BOTH the signing and (batched or not) verification paths,
  // and it is the floor under the batch-vs-serial throughput ratio.
  uint8_t buf[55];
  std::memcpy(buf, "tySchn2", 7);
  std::memcpy(buf + 7, &r, 8);
  std::memcpy(buf + 15, &pub.y, 8);
  std::memcpy(buf + 23, message_digest.bytes.data(), 32);
  return Sha256::Hash(std::span<const uint8_t>(buf, sizeof(buf)));
}

}  // namespace

const SchnorrParams& SchnorrParams::Default() {
  // Safe prime p = 2q + 1 just below 2^62; g = 2^2 generates the order-q
  // subgroup of quadratic residues.
  static const SchnorrParams params{
      .p = 0x3fffffffffffd6bbULL,
      .q = 0x1fffffffffffeb5dULL,
      .g = 4,
  };
  return params;
}

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1) {
      result = MulMod(result, base, m);
    }
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

SchnorrKeyPair DeriveKeyPair(std::span<const uint8_t> seed) {
  const SchnorrParams& params = SchnorrParams::Default();
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-keyderive-v1"));
  ctx.Update(seed);
  const Digest d = ctx.Finalize();

  SchnorrKeyPair pair;
  pair.priv.x = DigestToScalar(d, params.q);
  pair.pub.y = PowMod(params.g, pair.priv.x, params.p);
  return pair;
}

SchnorrSignature SchnorrSign(const SchnorrPrivateKey& priv, const Digest& message_digest) {
  const SchnorrParams& params = SchnorrParams::Default();

  // Deterministic nonce: k = HMAC(x, digest) reduced mod q (RFC 6979 spirit).
  uint8_t key_bytes[8];
  std::memcpy(key_bytes, &priv.x, sizeof(key_bytes));
  const Digest k_digest =
      HmacSha256(std::span<const uint8_t>(key_bytes, sizeof(key_bytes)),
                 std::span<const uint8_t>(message_digest.bytes.data(),
                                          message_digest.bytes.size()));
  const uint64_t k = DigestToScalar(k_digest, params.q);

  const uint64_t r = PowMod(params.g, k, params.p);
  const SchnorrPublicKey pub{PowMod(params.g, priv.x, params.p)};
  const Digest e = ChallengeHash(r, pub, message_digest);
  const uint64_t e_scalar = DigestToScalar(e, params.q);

  SchnorrSignature sig;
  // s = k + x * e mod q
  sig.s = (k + MulMod(priv.x, e_scalar, params.q)) % params.q;
  sig.e = e;
  sig.r = r;
  return sig;
}

SchnorrSignature SchnorrSign(const SchnorrPrivateKey& priv, std::span<const uint8_t> message) {
  return SchnorrSign(priv, Sha256::Hash(message));
}

bool SchnorrVerify(const SchnorrPublicKey& pub, const Digest& message_digest,
                   const SchnorrSignature& sig) {
  const SchnorrParams& params = SchnorrParams::Default();
  if (sig.s >= params.q || pub.y == 0 || pub.y >= params.p) {
    return false;
  }
  const uint64_t e_scalar = DigestToScalar(sig.e, params.q);
  // r' = g^s * y^{-e} = g^s * y^{q - e} mod p (y has order q).
  const uint64_t gs = PowMod(params.g, sig.s, params.p);
  const uint64_t y_inv_e = PowMod(pub.y, params.q - e_scalar, params.p);
  const uint64_t r = MulMod(gs, y_inv_e, params.p);
  // A carried commitment (r != 0) must be the one the equation reproduces;
  // otherwise the triple is inconsistent and batch/single verdicts would
  // disagree about the same bytes.
  if (sig.r != 0 && sig.r != r) {
    return false;
  }
  return ChallengeHash(r, pub, message_digest) == sig.e;
}

bool SchnorrVerify(const SchnorrPublicKey& pub, std::span<const uint8_t> message,
                   const SchnorrSignature& sig) {
  return SchnorrVerify(pub, Sha256::Hash(message), sig);
}

uint64_t MultiExpMod(std::span<const uint64_t> bases, std::span<const uint64_t> exps,
                     uint64_t m) {
  uint64_t result = 1 % m;
  uint64_t max_exp = 0;
  for (uint64_t e : exps) {
    max_exp |= e;
  }
  if (max_exp == 0) {
    return result;
  }
  // Two structural facts shape this loop. First, a batch mixes a few
  // full-width exponents (g, the public keys) with many short random
  // combiners on the commitments, so bases are ordered by the top bit of
  // their exponent and only the prefix "live" at the current bit is
  // scanned. Second, exponent bits are uniformly random, so per-base
  // "multiply if the bit is set" branches mispredict half the time; instead
  // bases are processed in Shamir pairs through a 4-entry product table
  // indexed by the two current bits, multiplied in unconditionally
  // (table[0] == 1). One shared square per bit position covers every base.
  auto top_bit = [](uint64_t e) { return e == 0 ? -1 : 63 - __builtin_clzll(e); };

  // The generic MulMod reduces with a hardware divide, and the divider is the
  // one unpipelined unit on the critical path — batching is throughput-bound
  // on divq, not on chain latency. For odd moduli (p and q both are) every
  // multiply in the window walk instead runs in the Montgomery domain
  // (R = 2^64): two pipelined full multiplies replace the divide. Setup is a
  // handful of Newton steps for -m^{-1} mod 2^64 plus one real divide for
  // R^2 mod m, amortized across the whole walk.
  const bool mont = (m & 1) != 0;
  uint64_t neg_inv = 0;
  uint64_t mont_one = 1 % m;
  uint64_t r2 = 0;
  if (mont) {
    uint64_t inv = m;  // m * inv == 1 (mod 8); each step doubles the bits.
    for (int i = 0; i < 5; ++i) {
      inv *= 2 - m * inv;
    }
    neg_inv = ~inv + 1;
    mont_one = (~0ull % m) + 1;  // 2^64 mod m
    if (mont_one == m) {
      mont_one = 0;
    }
    r2 = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(mont_one) * mont_one) % m);
  }
  auto mul = [&](uint64_t a, uint64_t b) -> uint64_t {
    if (!mont) {
      return MulMod(a, b, m);
    }
    const unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
    const uint64_t lo = static_cast<uint64_t>(t);
    const uint64_t hi = static_cast<uint64_t>(t >> 64);
    const uint64_t u = lo * neg_inv;
    const uint64_t um_hi =
        static_cast<uint64_t>((static_cast<unsigned __int128>(u) * m) >> 64);
    // low(t) + low(u*m) == 0 mod 2^64 by construction of u, so the carry out
    // of the low half is exactly (lo != 0).
    uint64_t r = hi + um_hi + (lo != 0);
    if (r >= m) {
      r -= m;
    }
    return r;
  };
  auto to_mont = [&](uint64_t x) { return mont ? mul(x, r2) : x; };

  const size_t n = bases.size();
  constexpr size_t kInline = 24;
  size_t order_buf[kInline];
  std::vector<size_t> order_heap;
  size_t* order = order_buf;
  if (n > kInline) {
    order_heap.resize(n);
    order = order_heap.data();
  }
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order, order + n, [&](size_t a, size_t b) {
    return top_bit(exps[a]) > top_bit(exps[b]);
  });

  // Each pair digests TWO exponent bits per step through a 16-entry table
  // (b0^i * b1^j for i, j in 0..3). The serial result chain — the latency
  // bottleneck, since every modmul depends on the previous one — shrinks to
  // 2 squarings + 1 multiply per pair per 2 bits; the table fill is
  // independent work the CPU pipelines behind it.
  struct ShamirPair {
    uint64_t table[16];
    uint64_t e0, e1;
    int top;
  };
  const size_t num_pairs = (n + 1) / 2;
  ShamirPair pair_buf[kInline / 2 + 1];
  std::vector<ShamirPair> pair_heap;
  ShamirPair* pairs = pair_buf;
  if (num_pairs > kInline / 2 + 1) {
    pair_heap.resize(num_pairs);
    pairs = pair_heap.data();
  }
  for (size_t p = 0; p < num_pairs; ++p) {
    const uint64_t b0 = to_mont(bases[order[2 * p]] % m);
    const uint64_t e0 = exps[order[2 * p]];
    const bool has_second = 2 * p + 1 < n;
    const uint64_t b1 =
        has_second ? to_mont(bases[order[2 * p + 1]] % m) : mont_one;
    const uint64_t e1 = has_second ? exps[order[2 * p + 1]] : 0;
    ShamirPair& pair = pairs[p];
    pair.e0 = e0;
    pair.e1 = e1;
    pair.top = top_bit(e0 | e1);
    uint64_t pow0[4] = {mont_one, b0, mul(b0, b0), 0};
    pow0[3] = mul(pow0[2], b0);
    uint64_t pow1[4] = {mont_one, b1, mul(b1, b1), 0};
    pow1[3] = mul(pow1[2], b1);
    for (int j = 0; j < 4; ++j) {
      for (int i = 0; i < 4; ++i) {
        pair.table[i | (j << 2)] =
            j == 0 ? pow0[i] : (i == 0 ? pow1[j] : mul(pow0[i], pow1[j]));
      }
    }
  }

  // Two accumulators, pairs assigned round-robin: the per-step squarings of
  // one chain are independent of the other's, so out-of-order execution
  // overlaps what would otherwise be one long serial modmul dependency. An
  // accumulator only starts squaring once a pair assigned to it is live
  // (squaring an empty accumulator would be wasted divider work — the short
  // combiner exponents sit idle for half the walk).
  uint64_t acc[2] = {mont_one, mont_one};
  int acc_top[2] = {-1, -1};
  for (size_t p = 0; p < num_pairs; ++p) {
    acc_top[p & 1] = std::max(acc_top[p & 1], pairs[p].top);
  }
  size_t active = 0;
  int bit = top_bit(max_exp) | 1;  // odd start so steps cover [bit, bit-1]
  for (; bit >= 1; bit -= 2) {
    for (int a = 0; a < 2; ++a) {
      if (acc_top[a] >= bit - 1) {
        acc[a] = mul(acc[a], acc[a]);
        acc[a] = mul(acc[a], acc[a]);
      }
    }
    while (active < num_pairs && pairs[active].top >= bit - 1) {
      ++active;
    }
    for (size_t p = 0; p < active; ++p) {
      const size_t idx = ((pairs[p].e0 >> (bit - 1)) & 3) |
                         (((pairs[p].e1 >> (bit - 1)) & 3) << 2);
      acc[p & 1] = mul(acc[p & 1], pairs[p].table[idx]);
    }
  }
  uint64_t combined = mul(acc[0], acc[1]);
  if (mont) {
    combined = mul(combined, 1);  // leave the Montgomery domain
  }
  return MulMod(result, combined, m);
}

namespace {

// Per-signature fallback: the authoritative verdicts when the fast path
// cannot vouch for the whole batch at once.
SchnorrBatchOutcome BatchFallback(std::span<const SchnorrBatchItem> items) {
  SchnorrBatchOutcome out;
  out.used_fallback = true;
  for (size_t i = 0; i < items.size(); ++i) {
    if (!SchnorrVerify(items[i].pub, items[i].message_digest, items[i].sig)) {
      out.all_valid = false;
      out.invalid.push_back(i);
    }
  }
  return out;
}

// Random combiners derived by hashing the entire batch, so no signer can
// choose a signature as a function of its own combiner.
std::vector<uint64_t> BatchCombiners(std::span<const SchnorrBatchItem> items) {
  // Transcript = tag || (s, r, e[0:16]) per item, assembled contiguously so
  // the hash runs at block speed instead of through per-field Update
  // buffering. The public key and message digest are deliberately absent:
  // e = H(r, y, m) binds both, so committing to e commits to them
  // transitively, and 128 bits of e is far past the toy group's 62-bit
  // security level.
  std::vector<uint8_t> transcript;
  transcript.reserve(8 + items.size() * 32);
  const char* tag = "tyBatch2";
  transcript.insert(transcript.end(), tag, tag + 8);
  for (const SchnorrBatchItem& item : items) {
    const uint8_t* s = reinterpret_cast<const uint8_t*>(&item.sig.s);
    const uint8_t* r = reinterpret_cast<const uint8_t*>(&item.sig.r);
    transcript.insert(transcript.end(), s, s + 8);
    transcript.insert(transcript.end(), r, r + 8);
    transcript.insert(transcript.end(), item.sig.e.bytes.begin(),
                      item.sig.e.bytes.begin() + 16);
  }
  const Digest seed = Sha256::Hash(
      std::span<const uint8_t>(transcript.data(), transcript.size()));

  // Expand the transcript digest into per-item 32-bit combiners with a
  // splitmix-style permutation. The security requirement is only that no
  // signer can predict its combiner before the whole batch is fixed; that
  // comes from the transcript hash above, so the expansion itself need not
  // be a second round of SHA per item.
  uint64_t state = 0;
  for (int i = 0; i < 8; ++i) {
    state = (state << 8) | seed.bytes[i];
  }
  std::vector<uint64_t> combiners;
  combiners.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    const uint64_t z = x >> 32;
    combiners.push_back(z == 0 ? 1 : z);
  }
  return combiners;
}

}  // namespace

SchnorrBatchOutcome SchnorrBatchVerify(std::span<const SchnorrBatchItem> items) {
  const SchnorrParams& params = SchnorrParams::Default();
  if (items.empty()) {
    return SchnorrBatchOutcome{};
  }
  if (items.size() == 1) {
    SchnorrBatchOutcome out;
    if (!SchnorrVerify(items[0].pub, items[0].message_digest, items[0].sig)) {
      out.all_valid = false;
      out.invalid.push_back(0);
    }
    return out;
  }

  // Pre-checks: range bounds and the challenge binding e_i = H(r_i, y_i, m_i).
  // These are the cheap (hash-only) halves of single verification; any
  // failure means the combined group equation could not be trusted anyway,
  // so go straight to per-signature verdicts.
  for (const SchnorrBatchItem& item : items) {
    if (item.sig.s >= params.q || item.pub.y == 0 || item.pub.y >= params.p ||
        item.sig.r == 0 || item.sig.r >= params.p ||
        ChallengeHash(item.sig.r, item.pub, item.message_digest) != item.sig.e) {
      return BatchFallback(items);
    }
  }

  const std::vector<uint64_t> z = BatchCombiners(items);

  // Combined equation, folded to a product-equals-one test:
  //   g^{q - sum z_i s_i} * prod_y y^{sum_{i: y_i=y} z_i e_i} * prod_i r_i^{z_i} == 1
  // Exponents on g and y may be reduced mod q because g (a system constant)
  // and any honest y, r lie in the order-q subgroup; an adversarial value
  // outside the subgroup merely fails this check and drops to the fallback.
  uint64_t s_acc = 0;
  std::vector<uint64_t> bases;
  std::vector<uint64_t> exps;
  bases.reserve(items.size() + 2);
  exps.reserve(items.size() + 2);
  bases.push_back(params.g);
  exps.push_back(0);  // patched below once s_acc is known
  for (size_t i = 0; i < items.size(); ++i) {
    s_acc = (s_acc + MulMod(z[i], items[i].sig.s, params.q)) % params.q;
    const uint64_t e_scalar = DigestToScalar(items[i].sig.e, params.q);
    const uint64_t weighted_e = MulMod(z[i], e_scalar, params.q);
    // Same-key grouping: quotes from one monitor share y, so their challenge
    // exponents collapse onto a single base.
    size_t slot = 0;
    for (slot = 1; slot < bases.size(); ++slot) {
      if (bases[slot] == items[i].pub.y) {
        break;
      }
    }
    if (slot == bases.size()) {
      bases.push_back(items[i].pub.y);
      exps.push_back(weighted_e);
    } else {
      exps[slot] = (exps[slot] + weighted_e) % params.q;
    }
  }
  exps[0] = (params.q - s_acc) % params.q;
  for (size_t i = 0; i < items.size(); ++i) {
    bases.push_back(items[i].sig.r);
    exps.push_back(z[i]);
  }

  if (MultiExpMod(bases, exps, params.p) == 1 % params.p) {
    return SchnorrBatchOutcome{};  // whole batch vouched for at once
  }
  return BatchFallback(items);
}

Digest DhSharedSecret(const SchnorrPrivateKey& mine, const SchnorrPublicKey& theirs) {
  const SchnorrParams& params = SchnorrParams::Default();
  const uint64_t shared = PowMod(theirs.y, mine.x, params.p);
  Sha256 kdf;
  kdf.Update(std::string_view("tyche-dh-kdf-v1"));
  kdf.UpdateValue(shared);
  return kdf.Finalize();
}

}  // namespace tyche
