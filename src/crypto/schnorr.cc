// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/schnorr.h"

#include <cstring>

namespace tyche {

namespace {

// Reduces a digest to an exponent modulo m (uses the first 8 bytes, which is
// plenty of entropy relative to the 62-bit toy group).
uint64_t DigestToScalar(const Digest& digest, uint64_t m) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | digest.bytes[i];
  }
  const uint64_t scalar = v % m;
  return scalar == 0 ? 1 : scalar;
}

Digest ChallengeHash(uint64_t r, const SchnorrPublicKey& pub, const Digest& message_digest) {
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-schnorr-v1"));
  ctx.UpdateValue(r);
  ctx.UpdateValue(pub.y);
  ctx.Update(std::span<const uint8_t>(message_digest.bytes.data(), message_digest.bytes.size()));
  return ctx.Finalize();
}

}  // namespace

const SchnorrParams& SchnorrParams::Default() {
  // Safe prime p = 2q + 1 just below 2^62; g = 2^2 generates the order-q
  // subgroup of quadratic residues.
  static const SchnorrParams params{
      .p = 0x3fffffffffffd6bbULL,
      .q = 0x1fffffffffffeb5dULL,
      .g = 4,
  };
  return params;
}

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1) {
      result = MulMod(result, base, m);
    }
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

SchnorrKeyPair DeriveKeyPair(std::span<const uint8_t> seed) {
  const SchnorrParams& params = SchnorrParams::Default();
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-keyderive-v1"));
  ctx.Update(seed);
  const Digest d = ctx.Finalize();

  SchnorrKeyPair pair;
  pair.priv.x = DigestToScalar(d, params.q);
  pair.pub.y = PowMod(params.g, pair.priv.x, params.p);
  return pair;
}

SchnorrSignature SchnorrSign(const SchnorrPrivateKey& priv, const Digest& message_digest) {
  const SchnorrParams& params = SchnorrParams::Default();

  // Deterministic nonce: k = HMAC(x, digest) reduced mod q (RFC 6979 spirit).
  uint8_t key_bytes[8];
  std::memcpy(key_bytes, &priv.x, sizeof(key_bytes));
  const Digest k_digest =
      HmacSha256(std::span<const uint8_t>(key_bytes, sizeof(key_bytes)),
                 std::span<const uint8_t>(message_digest.bytes.data(),
                                          message_digest.bytes.size()));
  const uint64_t k = DigestToScalar(k_digest, params.q);

  const uint64_t r = PowMod(params.g, k, params.p);
  const SchnorrPublicKey pub{PowMod(params.g, priv.x, params.p)};
  const Digest e = ChallengeHash(r, pub, message_digest);
  const uint64_t e_scalar = DigestToScalar(e, params.q);

  SchnorrSignature sig;
  // s = k + x * e mod q
  sig.s = (k + MulMod(priv.x, e_scalar, params.q)) % params.q;
  sig.e = e;
  return sig;
}

SchnorrSignature SchnorrSign(const SchnorrPrivateKey& priv, std::span<const uint8_t> message) {
  return SchnorrSign(priv, Sha256::Hash(message));
}

bool SchnorrVerify(const SchnorrPublicKey& pub, const Digest& message_digest,
                   const SchnorrSignature& sig) {
  const SchnorrParams& params = SchnorrParams::Default();
  if (sig.s >= params.q || pub.y == 0 || pub.y >= params.p) {
    return false;
  }
  const uint64_t e_scalar = DigestToScalar(sig.e, params.q);
  // r' = g^s * y^{-e} = g^s * y^{q - e} mod p (y has order q).
  const uint64_t gs = PowMod(params.g, sig.s, params.p);
  const uint64_t y_inv_e = PowMod(pub.y, params.q - e_scalar, params.p);
  const uint64_t r = MulMod(gs, y_inv_e, params.p);
  return ChallengeHash(r, pub, message_digest) == sig.e;
}

bool SchnorrVerify(const SchnorrPublicKey& pub, std::span<const uint8_t> message,
                   const SchnorrSignature& sig) {
  return SchnorrVerify(pub, Sha256::Hash(message), sig);
}

Digest DhSharedSecret(const SchnorrPrivateKey& mine, const SchnorrPublicKey& theirs) {
  const SchnorrParams& params = SchnorrParams::Default();
  const uint64_t shared = PowMod(theirs.y, mine.x, params.p);
  Sha256 kdf;
  kdf.Update(std::string_view("tyche-dh-kdf-v1"));
  kdf.UpdateValue(shared);
  return kdf.Finalize();
}

}  // namespace tyche
