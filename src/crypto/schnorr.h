// Copyright 2026 The Tyche Reproduction Authors.
// Deterministic Schnorr signatures over a toy prime-order subgroup of Z_p^*.
//
// The paper's judiciary branch relies on two signing parties: the TPM-like
// root of trust (signing boot-time quotes) and the attested monitor (signing
// domain attestations). What matters for the reproduction is the *protocol*
// -- key certification chains and verifiable reports -- not the hardness of
// the underlying group, so this implementation uses a 62-bit safe prime and
// is NOT cryptographically strong. See DESIGN.md ("substitutions").

#ifndef SRC_CRYPTO_SCHNORR_H_
#define SRC_CRYPTO_SCHNORR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/support/status.h"

namespace tyche {

// Group parameters: p = 2q + 1 with q prime, generator g of the order-q
// subgroup. Fixed for the whole system (a real deployment would use a
// standardized curve).
struct SchnorrParams {
  uint64_t p;  // safe prime modulus
  uint64_t q;  // subgroup order, q = (p - 1) / 2
  uint64_t g;  // generator of the order-q subgroup

  static const SchnorrParams& Default();
};

struct SchnorrPrivateKey {
  uint64_t x = 0;  // secret exponent in [1, q)
};

struct SchnorrPublicKey {
  uint64_t y = 0;  // y = g^x mod p

  bool operator==(const SchnorrPublicKey& other) const = default;
};

struct SchnorrSignature {
  uint64_t s = 0;  // response
  Digest e;        // challenge hash
  // Commitment r = g^k mod p. Redundant for single verification (which
  // recomputes r' = g^s * y^{-e} and checks the challenge hash), but carried
  // so batch verification can check one randomized-combiner equation over a
  // whole batch instead of two exponentiations per signature. A signature
  // with r == 0 (e.g. deserialized from a pre-batching wire format) simply
  // falls off the batch fast path onto per-signature verification.
  uint64_t r = 0;

  bool operator==(const SchnorrSignature& other) const = default;
};

struct SchnorrKeyPair {
  SchnorrPrivateKey priv;
  SchnorrPublicKey pub;
};

// Derives a key pair deterministically from seed material (e.g. the TPM's
// endorsement seed, or the monitor's measurement-bound identity seed).
SchnorrKeyPair DeriveKeyPair(std::span<const uint8_t> seed);

// Deterministic signing (nonce derived via HMAC from key and message, in the
// spirit of RFC 6979).
SchnorrSignature SchnorrSign(const SchnorrPrivateKey& priv, std::span<const uint8_t> message);
SchnorrSignature SchnorrSign(const SchnorrPrivateKey& priv, const Digest& message_digest);

bool SchnorrVerify(const SchnorrPublicKey& pub, std::span<const uint8_t> message,
                   const SchnorrSignature& sig);
bool SchnorrVerify(const SchnorrPublicKey& pub, const Digest& message_digest,
                   const SchnorrSignature& sig);

// One quote in a batch verification: who allegedly signed what.
struct SchnorrBatchItem {
  SchnorrPublicKey pub;
  Digest message_digest;
  SchnorrSignature sig;
};

struct SchnorrBatchOutcome {
  bool all_valid = true;       // every signature in the batch verified
  bool used_fallback = false;  // the combined check failed (or a pre-check
                               // did) and per-signature verification ran
  std::vector<size_t> invalid;  // indices rejected by per-signature verify
};

// Batch verification: one randomized-combiner multi-exponentiation checks
// the whole batch at a fraction of the per-signature cost. For each item the
// challenge binding e_i == H(r_i, y_i, m_i) is checked directly (hashing is
// cheap), then random 32-bit combiners z_i — derived by hashing the batch
// itself, so they are fixed only after every signature is — weight one
// combined group equation
//
//     g^{sum z_i s_i}  ==  prod_y y^{sum_{i: y_i = y} z_i e_i} * prod_i r_i^{z_i}
//
// evaluated as a single shared-squarings multi-exponentiation (same-key
// items collapse onto one base, which is the common case for a batch of
// quotes from one monitor). If any pre-check or the combined equation fails,
// the batch falls back to per-signature SchnorrVerify to identify the
// culprit(s) — so the reported verdicts are always exactly the single-verify
// verdicts; the fast path is only ever an accelerator for the all-valid
// case. An empty batch is trivially valid.
SchnorrBatchOutcome SchnorrBatchVerify(std::span<const SchnorrBatchItem> items);

// Diffie-Hellman on the same group: two parties exchange public keys and
// derive the same shared secret. Used by the cross-machine attested-channel
// protocol. Same toy-strength caveat as the signatures.
Digest DhSharedSecret(const SchnorrPrivateKey& mine, const SchnorrPublicKey& theirs);

// Modular arithmetic helpers (exposed for tests).
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);
// prod_i bases[i]^{exps[i]} mod m with one shared square-and-multiply pass:
// the squarings are paid once for the whole product instead of once per
// base, which is what makes batch verification cheaper than verifying each
// signature alone. Requires bases.size() == exps.size().
uint64_t MultiExpMod(std::span<const uint64_t> bases, std::span<const uint64_t> exps,
                     uint64_t m);

}  // namespace tyche

#endif  // SRC_CRYPTO_SCHNORR_H_
