// Copyright 2026 The Tyche Reproduction Authors.
// From-scratch SHA-256 (FIPS 180-4). Used for all measurements: the measured
// boot chain, domain/segment measurements, and attestation report digests.

#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace tyche {

// A 256-bit digest. Comparable and hashable so it can key maps of golden
// measurements.
struct Digest {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Digest& other) const = default;
  auto operator<=>(const Digest& other) const = default;

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  // Lowercase hex, 64 characters.
  std::string ToHex() const;
};

// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(std::span<const uint8_t> data);
  void Update(std::string_view data);
  // Convenience for hashing trivially-copyable values (lengths, ids, flags).
  template <typename T>
  void UpdateValue(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Update(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
  }

  Digest Finalize();

  static Digest Hash(std::span<const uint8_t> data);
  static Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// HMAC-SHA256 (RFC 2104). Used to derive deterministic nonces and as the MAC
// inside sealed storage.
Digest HmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> message);

}  // namespace tyche

#endif  // SRC_CRYPTO_SHA256_H_
