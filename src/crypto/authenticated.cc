// Copyright 2026 The Tyche Reproduction Authors.

#include "src/crypto/authenticated.h"

#include <cstring>

#include "src/support/faults.h"

namespace tyche {

namespace {

Digest SubKey(const Digest& key, const char* label) {
  return HmacSha256(std::span<const uint8_t>(key.bytes.data(), key.bytes.size()),
                    std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(label),
                                             std::strlen(label)));
}

// XORs `data` with the keystream SHA256(key_enc || nonce || counter).
void ApplyKeystream(const Digest& key_enc, uint64_t nonce, std::span<uint8_t> data) {
  uint64_t counter = 0;
  size_t offset = 0;
  while (offset < data.size()) {
    Sha256 block;
    block.Update(std::span<const uint8_t>(key_enc.bytes.data(), key_enc.bytes.size()));
    block.UpdateValue(nonce);
    block.UpdateValue(counter);
    const Digest keystream = block.Finalize();
    const size_t take = std::min<size_t>(32, data.size() - offset);
    for (size_t i = 0; i < take; ++i) {
      data[offset + i] ^= keystream.bytes[i];
    }
    offset += take;
    ++counter;
  }
}

Digest ComputeTag(const Digest& key_mac, uint64_t nonce,
                  std::span<const uint8_t> ciphertext) {
  Sha256 body;
  body.UpdateValue(nonce);
  body.UpdateValue(static_cast<uint64_t>(ciphertext.size()));
  body.Update(ciphertext);
  const Digest digest = body.Finalize();
  return HmacSha256(std::span<const uint8_t>(key_mac.bytes.data(), key_mac.bytes.size()),
                    std::span<const uint8_t>(digest.bytes.data(), digest.bytes.size()));
}

void PutU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

}  // namespace

std::vector<uint8_t> SealedBlob::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(&out, nonce);
  PutU64(&out, ciphertext.size());
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  out.insert(out.end(), tag.bytes.begin(), tag.bytes.end());
  return out;
}

Result<SealedBlob> SealedBlob::Deserialize(std::span<const uint8_t> bytes) {
  if (bytes.size() < 16 + 32) {
    return Error(ErrorCode::kInvalidArgument, "blob too short");
  }
  SealedBlob blob;
  uint64_t length = 0;
  for (int i = 0; i < 8; ++i) {
    blob.nonce |= static_cast<uint64_t>(bytes[i]) << (8 * i);
    length |= static_cast<uint64_t>(bytes[8 + i]) << (8 * i);
  }
  if (length != bytes.size() - 16 - 32) {
    return Error(ErrorCode::kInvalidArgument, "blob length mismatch");
  }
  blob.ciphertext.assign(bytes.begin() + 16, bytes.end() - 32);
  std::copy(bytes.end() - 32, bytes.end(), blob.tag.bytes.begin());
  return blob;
}

SealedBlob AeadSeal(const Digest& key, uint64_t nonce, std::span<const uint8_t> plaintext) {
  const Digest key_enc = SubKey(key, "tyche-aead-enc");
  const Digest key_mac = SubKey(key, "tyche-aead-mac");
  SealedBlob blob;
  blob.nonce = nonce;
  blob.ciphertext.assign(plaintext.begin(), plaintext.end());
  ApplyKeystream(key_enc, nonce, std::span<uint8_t>(blob.ciphertext));
  blob.tag = ComputeTag(key_mac, nonce, std::span<const uint8_t>(blob.ciphertext));
  return blob;
}

Result<std::vector<uint8_t>> AeadOpen(const Digest& key, const SealedBlob& blob) {
  TYCHE_FAULT_POINT(faults::kAeadOpen);
  const Digest key_enc = SubKey(key, "tyche-aead-enc");
  const Digest key_mac = SubKey(key, "tyche-aead-mac");
  const Digest expected =
      ComputeTag(key_mac, blob.nonce, std::span<const uint8_t>(blob.ciphertext));
  if (expected != blob.tag) {
    return Error(ErrorCode::kSignatureInvalid, "AEAD tag mismatch");
  }
  std::vector<uint8_t> plaintext = blob.ciphertext;
  ApplyKeystream(key_enc, blob.nonce, std::span<uint8_t>(plaintext));
  return plaintext;
}

}  // namespace tyche
