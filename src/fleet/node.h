// Copyright 2026 The Tyche Reproduction Authors.
// The attestation fleet substrate (DESIGN.md §12): N independently booted
// monitors ("nodes"), each hosting sealed service domains, reachable only
// through lossy request/response channels. Every node boots the SAME
// measured demo image, so all monitors derive the same attestation key —
// the key continuity that lets a domain fail over to a replica (PR 8
// migration) without breaking the quote a customer pinned before the crash.
//
// Failure model per node:
//   Crash()          the node stops serving entirely; in-flight and future
//                    requests see only silence (timeouts). The journal is
//                    durable and survives.
//   BeginRecovery()  the node answers every request with a typed, retryable
//                    kUnavailable while its state is being rebuilt.
//   Recover()        PR 4 MeasuredRecovery from the surviving journal
//                    (genesis replay, no snapshot), then the serving epoch
//                    bumps — invalidating every cached measurement verified
//                    against the pre-crash instance.
//
// Fleet::FailoverNode composes the full ladder: recover the crashed
// monitor from its journal, drain its service domains to the replica via
// the PR 8 migration protocol over a lossy channel, repoint the routing
// table, and leave a journal pair that splices (VerifyJournalSplice).

#ifndef SRC_FLEET_NODE_H_
#define SRC_FLEET_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/monitor/boot.h"
#include "src/monitor/monitor.h"
#include "src/tyche/channel.h"

namespace tyche {

// Simulated wall clock for deadlines, timeouts, and backoff. The fleet is a
// deterministic synchronous simulation: time only moves when a component
// advances it, so every fault schedule replays exactly from its seed.
struct SimClock {
  uint64_t now_ns = 0;
  void Advance(uint64_t ns) { now_ns += ns; }
};

// Wire protocol between the front end and a node, framed over LossyChannel.
// One frame = one message; drops/dups/reorders are the transport's business
// and the front end's retry problem.
//
// kResume (DESIGN.md §13) skips the full chain walk: a verifier that has
// already completed one two-tier verification presents an epoch-bound MAC
// token derived from the DH shared secret between its key and the monitor's
// attestation key. The node validates the token statelessly (it can derive
// the same secret from `client_pub`) and answers with the domain's current
// measurement plus a MAC over (node, epoch, domain, nonce, measurement)
// under the same secret — fresh, bound to this request, and unforgeable
// without the shared secret. An epoch bump invalidates every outstanding
// token the same instant it kills the measurement cache.
enum class FleetRequestKind : uint8_t { kIdentity = 0, kAttest = 1, kResume = 2 };

struct FleetRequest {
  uint64_t request_id = 0;
  FleetRequestKind kind = FleetRequestKind::kAttest;
  uint32_t domain = 0;   // kAttest / kResume
  uint64_t nonce = 0;
  uint64_t client_pub = 0;  // kResume: the verifier's DH public key
  Digest token;             // kResume: FleetSessionToken under the shared secret
};

struct FleetResponse {
  uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kOk;
  // Serialized MonitorIdentity or DomainAttestation when code == kOk.
  std::vector<uint8_t> payload;
};

std::vector<uint8_t> EncodeFleetRequest(const FleetRequest& request);
bool DecodeFleetRequest(std::span<const uint8_t> bytes, FleetRequest* out);
std::vector<uint8_t> EncodeFleetResponse(const FleetResponse& response);
bool DecodeFleetResponse(std::span<const uint8_t> bytes, FleetResponse* out);

// First 8 bytes of a digest, little-endian (cache keys, seeds).
uint64_t DigestPrefix64(const Digest& digest);

// Session-resumption MACs (DESIGN.md §13). Both sides derive `secret` via
// DhSharedSecret, so both can compute — and neither can forge to a third
// party — the epoch-bound token and the per-response ack.
Digest FleetSessionToken(const Digest& secret, uint32_t node, uint64_t epoch);
Digest FleetSessionAck(const Digest& secret, uint32_t node, uint64_t epoch,
                       uint32_t domain, uint64_t nonce, const Digest& measurement);

// A resume response's payload: the domain's measurement followed by the ack
// MAC, 64 bytes total.
inline constexpr size_t kResumePayloadSize = 64;

class MonitorNode {
 public:
  // Boots a fresh machine + monitor from the demo images. Null on failure.
  // `expected_services` sizes the monitor's metadata reservation: the 4 MiB
  // default holds a couple hundred domains, dense nodes (thousands of
  // services) need proportionally more metadata frames.
  static std::unique_ptr<MonitorNode> Boot(uint32_t id, IsaArch arch,
                                           uint32_t expected_services = 0);

  // Creates, measures, and seals a service domain over `pages` exclusively
  // granted pages at `window_base` (fleet-wide unique so the domain can
  // migrate to any replica without a range collision). Returns the golden
  // measurement a customer would pin.
  struct ServicePlacement {
    DomainId domain = kInvalidDomain;
    Digest measurement;
    AddrRange window;
  };
  Result<ServicePlacement> InstallService(const std::string& name,
                                          uint64_t window_base, uint32_t pages);

  // Serves every pending request on the request channel. Crossing this is
  // also where the fleet.node_crash fault site lives: an injected hit
  // crashes the node mid-pump.
  void Pump();

  void Crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }
  void BeginRecovery() { recovering_ = true; }
  bool recovering() const { return recovering_; }

  // PR 4 measured recovery from the surviving journal; bumps the epoch.
  Status Recover();

  uint32_t id() const { return id_; }
  uint64_t epoch() const { return epoch_; }
  Monitor* monitor() { return monitor_.get(); }
  Machine* machine() { return machine_.get(); }
  DomainId os_domain() const { return os_domain_; }
  const Digest& golden_firmware() const { return golden_firmware_; }
  const Digest& golden_monitor() const { return golden_monitor_; }
  // PCR1-equivalent prefix for cache keys.
  uint64_t pcr_prefix() const { return DigestPrefix64(golden_monitor_); }

  LossyChannel* requests() { return &requests_; }
  LossyChannel* responses() { return &responses_; }
  uint64_t served() const { return served_; }

 private:
  MonitorNode() = default;

  void HandleRequest(std::span<const uint8_t> frame);
  void Respond(uint64_t request_id, ErrorCode code, std::vector<uint8_t> payload);

  uint32_t id_ = 0;
  uint64_t epoch_ = 0;
  bool crashed_ = false;
  bool recovering_ = false;
  uint64_t served_ = 0;
  std::vector<uint8_t> firmware_image_;
  std::vector<uint8_t> monitor_image_;
  Digest golden_firmware_;
  Digest golden_monitor_;
  DomainId os_domain_ = kInvalidDomain;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Monitor> monitor_;
  LossyChannel requests_;   // front end -> node
  LossyChannel responses_;  // node -> front end

  // Resume fast path: the DH session secret and the epoch-bound token are
  // deterministic per (client_pub, epoch), so the node memoizes the last
  // few derivations instead of re-running the key exchange on every kResume.
  // Purely a cache — a miss (new client, post-recovery epoch bump) re-derives
  // and validates exactly as before.
  struct ResumeSecret {
    bool valid = false;  // an empty slot must never match a crafted request
    uint64_t client_pub = 0;
    uint64_t epoch = 0;
    Digest secret;
    Digest expected_token;
  };
  static constexpr size_t kResumeSecretSlots = 8;
  ResumeSecret resume_secrets_[kResumeSecretSlots];
};

struct FleetOptions {
  uint32_t num_nodes = 3;
  IsaArch arch = IsaArch::kX86_64;
  uint32_t services_per_node = 2;
  uint32_t pages_per_service = 2;
  // Spacing between service windows (fleet-wide unique bases). 0 = auto:
  // the roomy legacy 2 MiB stride when every window fits in node memory,
  // otherwise windows pack tightly so thousands of services per node fit
  // inside the 64 MiB simulated machines.
  uint64_t window_stride = 0;
};

// Routing-table entry: where a service currently lives and what its
// verified identity must be. `node`/`domain` change on failover; the
// golden `measurement` NEVER does — that is attestation continuity.
struct ServiceRecord {
  uint32_t service = 0;
  uint32_t node = 0;
  DomainId domain = kInvalidDomain;
  Digest measurement;
  std::string name;
  uint64_t failovers = 0;
};

class Fleet {
 public:
  static std::unique_ptr<Fleet> Create(const FleetOptions& options);

  size_t num_nodes() const { return nodes_.size(); }
  MonitorNode* node(size_t i) { return nodes_[i].get(); }
  size_t num_services() const { return services_.size(); }
  const ServiceRecord& service(uint32_t id) const { return services_[id]; }
  uint32_t replica_of(uint32_t node_id) const {
    return static_cast<uint32_t>((node_id + 1) % nodes_.size());
  }

  SimClock& clock() { return clock_; }
  // One serving round for every live node.
  void PumpAll();

  // The failover ladder for a down node: measured recovery from the
  // surviving journal (epoch bump), then every service homed there drains
  // to the replica via PR 8 migration over a lossy channel, and the routing
  // table repoints. kUnavailable if the replica is down too.
  Status FailoverNode(uint32_t node_id);

  uint64_t failovers() const { return failovers_; }
  uint64_t migrations() const { return migrations_; }

 private:
  Fleet() = default;

  SimClock clock_;
  std::vector<std::unique_ptr<MonitorNode>> nodes_;
  std::vector<ServiceRecord> services_;
  uint64_t failovers_ = 0;
  uint64_t migrations_ = 0;
};

}  // namespace tyche

#endif  // SRC_FLEET_NODE_H_
