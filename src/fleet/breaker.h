// Copyright 2026 The Tyche Reproduction Authors.
// Per-monitor circuit breaker for the verification front end (DESIGN.md
// §12). Health is inferred purely from the typed outcomes of remote
// verifications — there is no side channel to a monitor's true state, which
// is the point: a crashed monitor and a blackholed wire look identical to a
// client, and the breaker must handle both.
//
//   closed     normal operation; consecutive failures are counted and
//              `failure_threshold` of them open the breaker.
//   open       requests are refused locally (fail fast, no wire traffic);
//              after `open_cooldown_ns` the breaker moves to half-open.
//   half-open  exactly ONE probe request is admitted at a time; a success
//              (repeated `probe_successes` times) closes the breaker, any
//              failure re-opens it and restarts the cooldown.
//
// Only availability-shaped outcomes feed the breaker: timeouts,
// kUnavailable, kMigrating, integrity failures (a poisoned report means the
// path to the monitor is compromised — stop trusting it). kNotFound and
// kOverloaded say nothing about THIS monitor's health and must not trip it.

#ifndef SRC_FLEET_BREAKER_H_
#define SRC_FLEET_BREAKER_H_

#include <cstdint>

namespace tyche {

enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

inline const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

struct BreakerConfig {
  uint32_t failure_threshold = 3;   // consecutive failures that open
  uint64_t open_cooldown_ns = 150'000;  // open -> half-open after this
  uint32_t probe_successes = 1;     // half-open probes needed to close
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  // Current state with the open->half-open transition applied lazily.
  BreakerState state(uint64_t now_ns) const {
    if (state_ == BreakerState::kOpen &&
        now_ns >= opened_at_ns_ + config_.open_cooldown_ns) {
      return BreakerState::kHalfOpen;
    }
    return state_;
  }

  // True if a request may go to the monitor now. Half-open admits exactly
  // one in-flight probe; the caller should report the probe's outcome via
  // RecordSuccess/RecordFailure. If no outcome arrives within
  // `open_cooldown_ns` of admission (a caller early-returned and dropped the
  // probe), the lock lapses and a new probe is admitted — without the
  // deadline a single dropped probe would wedge the breaker half-open and
  // make the node unreachable until restart.
  bool Admit(uint64_t now_ns) {
    Refresh(now_ns);
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kOpen:
        return false;
      case BreakerState::kHalfOpen:
        if (probe_in_flight_ && now_ns < probe_deadline_ns_) {
          return false;
        }
        probe_in_flight_ = true;
        probe_deadline_ns_ = now_ns + config_.open_cooldown_ns;
        return true;
    }
    return false;
  }

  void RecordSuccess(uint64_t now_ns) {
    Refresh(now_ns);
    if (state_ == BreakerState::kHalfOpen) {
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.probe_successes) {
        state_ = BreakerState::kClosed;
      }
    }
    consecutive_failures_ = 0;
  }

  void RecordFailure(uint64_t now_ns) {
    Refresh(now_ns);
    if (state_ == BreakerState::kHalfOpen) {
      Open(now_ns);  // failed probe: back to open, cooldown restarts
      return;
    }
    if (state_ == BreakerState::kClosed &&
        ++consecutive_failures_ >= config_.failure_threshold) {
      Open(now_ns);
    }
  }

  // After a failover the monitor is a NEW serving identity (epoch bumped);
  // its breaker starts closed with a clean history.
  void Reset() {
    state_ = BreakerState::kClosed;
    consecutive_failures_ = 0;
    half_open_successes_ = 0;
    probe_in_flight_ = false;
    probe_deadline_ns_ = 0;
  }

  // Times the breaker transitioned closed/half-open -> open.
  uint64_t times_opened() const { return times_opened_; }

 private:
  void Refresh(uint64_t now_ns) {
    if (state_ == BreakerState::kOpen &&
        now_ns >= opened_at_ns_ + config_.open_cooldown_ns) {
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = false;
      half_open_successes_ = 0;
    }
  }

  void Open(uint64_t now_ns) {
    state_ = BreakerState::kOpen;
    opened_at_ns_ = now_ns;
    consecutive_failures_ = 0;
    half_open_successes_ = 0;
    probe_in_flight_ = false;
    ++times_opened_;
  }

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  uint64_t probe_deadline_ns_ = 0;
  uint64_t opened_at_ns_ = 0;
  uint64_t times_opened_ = 0;
};

}  // namespace tyche

#endif  // SRC_FLEET_BREAKER_H_
