// Copyright 2026 The Tyche Reproduction Authors.
// Verified-measurement cache for the verification front end (DESIGN.md §12).
//
// An entry records "domain `service` on monitor `node` (PCR digest
// `pcr_prefix`, serving epoch `epoch`) attested measurement M and the full
// chain verified" — so a repeat verification of the same service can be
// answered without a wire round trip.
//
// The epoch is PART OF THE KEY. Every recovery or migration bumps the
// serving node's epoch (or changes the route's node), so entries verified
// against a pre-failover monitor become unreachable the instant the route
// changes: there is no window where a stale measurement can be served as
// fresh. InvalidateEpochsBelow additionally purges the dead entries so the
// capacity bound measures live state only.
//
// An optional TTL (default off) bounds how long even a same-epoch entry may
// be served: at thousands of domains a long-lived epoch would otherwise
// serve arbitrarily old measurements forever. Expired entries count in the
// tyche_fleet_cache_expired metric and read as misses.
//
// Only FULLY VERIFIED results are ever inserted — a report that failed
// signature, digest, nonce, or golden-measurement checks never touches the
// cache. That is the entire defense against cache poisoning: the
// fleet.cache_poison fault tampers reports in transit, and the sweep
// asserts the tampered bytes die at verification, not in here.
//
// Recency is an intrusive LRU list (map value holds its list iterator), so
// Lookup/Insert are O(log n) map operations plus O(1) splices — the old
// implementation scanned all `capacity` entries to find the eviction victim,
// which is quadratic under churn at thousands of domains.

#ifndef SRC_FLEET_CACHE_H_
#define SRC_FLEET_CACHE_H_

#include <cstdint>
#include <list>
#include <map>

#include "src/crypto/sha256.h"

namespace tyche {

struct MeasurementCacheKey {
  uint64_t pcr_prefix = 0;  // first 8 bytes of the monitor's PCR1 image
  uint32_t node = 0;        // fleet node id (two nodes share a PCR)
  uint64_t epoch = 0;       // the node's serving epoch at verification time
  uint32_t service = 0;     // fleet-wide service id

  auto operator<=>(const MeasurementCacheKey&) const = default;
};

struct MeasurementCacheEntry {
  Digest measurement;
  uint64_t verified_at_ns = 0;
};

class MeasurementCache {
 public:
  // ttl_ns == 0 disables the staleness bound (the historical behavior).
  explicit MeasurementCache(size_t capacity, uint64_t ttl_ns = 0)
      : capacity_(capacity), ttl_ns_(ttl_ns) {}

  // nullptr on miss. Hits refresh LRU order. With a TTL configured, an entry
  // older than the bound (relative to `now_ns`) is erased and reads as a
  // miss. Hit/miss/expired tallies feed the tyche_fleet_cache_* metrics.
  const MeasurementCacheEntry* Lookup(const MeasurementCacheKey& key, uint64_t now_ns = 0) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    if (ttl_ns_ != 0 && now_ns > it->second.entry.verified_at_ns + ttl_ns_) {
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
      ++expired_;
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return &it->second.entry;
  }

  void Insert(const MeasurementCacheKey& key, const MeasurementCacheEntry& entry) {
    if (capacity_ == 0) {
      return;
    }
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.entry = entry;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return;
    }
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(key);
    entries_.emplace(key, Slot{entry, lru_.begin()});
  }

  // Epoch-bump invalidation: after node `node` recovers into epoch E, every
  // entry verified against an earlier epoch of that node is dead history.
  void InvalidateEpochsBelow(uint32_t node, uint64_t epoch) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.node == node && it->first.epoch < epoch) {
        lru_.erase(it->second.lru_it);
        it = entries_.erase(it);
        ++invalidated_;
      } else {
        ++it;
      }
    }
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t ttl_ns() const { return ttl_ns_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t invalidated() const { return invalidated_; }
  uint64_t expired() const { return expired_; }

 private:
  struct Slot {
    MeasurementCacheEntry entry;
    // Position in lru_ (front = most recent). Intrusive: erasing the map
    // entry must erase the list node and vice versa.
    std::list<MeasurementCacheKey>::iterator lru_it;
  };

  size_t capacity_;
  uint64_t ttl_ns_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidated_ = 0;
  uint64_t expired_ = 0;
  std::list<MeasurementCacheKey> lru_;
  std::map<MeasurementCacheKey, Slot> entries_;
};

}  // namespace tyche

#endif  // SRC_FLEET_CACHE_H_
