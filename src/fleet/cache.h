// Copyright 2026 The Tyche Reproduction Authors.
// Verified-measurement cache for the verification front end (DESIGN.md §12).
//
// An entry records "domain `service` on monitor `node` (PCR digest
// `pcr_prefix`, serving epoch `epoch`) attested measurement M and the full
// chain verified" — so a repeat verification of the same service can be
// answered without a wire round trip.
//
// The epoch is PART OF THE KEY. Every recovery or migration bumps the
// serving node's epoch (or changes the route's node), so entries verified
// against a pre-failover monitor become unreachable the instant the route
// changes: there is no window where a stale measurement can be served as
// fresh. InvalidateEpochsBelow additionally purges the dead entries so the
// capacity bound measures live state only.
//
// Only FULLY VERIFIED results are ever inserted — a report that failed
// signature, digest, nonce, or golden-measurement checks never touches the
// cache. That is the entire defense against cache poisoning: the
// fleet.cache_poison fault tampers reports in transit, and the sweep
// asserts the tampered bytes die at verification, not in here.

#ifndef SRC_FLEET_CACHE_H_
#define SRC_FLEET_CACHE_H_

#include <cstdint>
#include <map>

#include "src/crypto/sha256.h"

namespace tyche {

struct MeasurementCacheKey {
  uint64_t pcr_prefix = 0;  // first 8 bytes of the monitor's PCR1 image
  uint32_t node = 0;        // fleet node id (two nodes share a PCR)
  uint64_t epoch = 0;       // the node's serving epoch at verification time
  uint32_t service = 0;     // fleet-wide service id

  auto operator<=>(const MeasurementCacheKey&) const = default;
};

struct MeasurementCacheEntry {
  Digest measurement;
  uint64_t verified_at_ns = 0;
};

class MeasurementCache {
 public:
  explicit MeasurementCache(size_t capacity) : capacity_(capacity) {}

  // nullptr on miss. Hits refresh LRU order. Hit/miss tallies feed the
  // tyche_fleet_cache_* metrics.
  const MeasurementCacheEntry* Lookup(const MeasurementCacheKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    it->second.last_use = ++tick_;
    return &it->second.entry;
  }

  void Insert(const MeasurementCacheKey& key, const MeasurementCacheEntry& entry) {
    if (capacity_ == 0) {
      return;
    }
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.entry = entry;
      it->second.last_use = ++tick_;
      return;
    }
    if (entries_.size() >= capacity_) {
      auto victim = entries_.begin();
      for (auto cur = entries_.begin(); cur != entries_.end(); ++cur) {
        if (cur->second.last_use < victim->second.last_use) {
          victim = cur;
        }
      }
      entries_.erase(victim);
      ++evictions_;
    }
    entries_.emplace(key, Slot{entry, ++tick_});
  }

  // Epoch-bump invalidation: after node `node` recovers into epoch E, every
  // entry verified against an earlier epoch of that node is dead history.
  void InvalidateEpochsBelow(uint32_t node, uint64_t epoch) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.node == node && it->first.epoch < epoch) {
        it = entries_.erase(it);
        ++invalidated_;
      } else {
        ++it;
      }
    }
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t invalidated() const { return invalidated_; }

 private:
  struct Slot {
    MeasurementCacheEntry entry;
    uint64_t last_use = 0;
  };

  size_t capacity_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidated_ = 0;
  std::map<MeasurementCacheKey, Slot> entries_;
};

}  // namespace tyche

#endif  // SRC_FLEET_CACHE_H_
