// Copyright 2026 The Tyche Reproduction Authors.

#include "src/fleet/node.h"

#include <algorithm>
#include <utility>

#include "src/monitor/attestation.h"
#include "src/monitor/migration.h"
#include "src/monitor/recovery.h"
#include "src/support/align.h"
#include "src/support/faults.h"
#include "src/support/journal.h"
#include "src/support/snapshot.h"
#include "src/tyche/loader.h"

namespace tyche {
namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint32_t kRequestMagic = 0xF1E37001;
constexpr uint32_t kResponseMagic = 0xF1E37002;
// Spacing between service windows: fleet-wide unique bases so any domain
// can migrate to any replica without a range collision.
constexpr uint64_t kWindowStride = 2 * kMiB;

}  // namespace

namespace {

Digest SessionMac(const Digest& secret, std::string_view label,
                  std::span<const uint64_t> fields, const Digest* trailer) {
  SectionWriter writer;
  for (const char c : label) {
    writer.Append<uint8_t>(static_cast<uint8_t>(c));
  }
  for (const uint64_t field : fields) {
    writer.Append<uint64_t>(field);
  }
  if (trailer != nullptr) {
    writer.AppendDigest(*trailer);
  }
  const std::vector<uint8_t> message = writer.Take();
  return HmacSha256(
      std::span<const uint8_t>(secret.bytes.data(), secret.bytes.size()), message);
}

}  // namespace

Digest FleetSessionToken(const Digest& secret, uint32_t node, uint64_t epoch) {
  const uint64_t fields[] = {node, epoch};
  return SessionMac(secret, "tyche-resume-v1", fields, nullptr);
}

Digest FleetSessionAck(const Digest& secret, uint32_t node, uint64_t epoch,
                       uint32_t domain, uint64_t nonce, const Digest& measurement) {
  const uint64_t fields[] = {node, epoch, domain, nonce};
  return SessionMac(secret, "tyche-resume-ack-v1", fields, &measurement);
}

uint64_t DigestPrefix64(const Digest& digest) {
  uint64_t prefix = 0;
  for (int i = 0; i < 8; ++i) {
    prefix |= static_cast<uint64_t>(digest.bytes[i]) << (8 * i);
  }
  return prefix;
}

std::vector<uint8_t> EncodeFleetRequest(const FleetRequest& request) {
  SectionWriter writer;
  writer.Append<uint32_t>(kRequestMagic);
  writer.Append<uint64_t>(request.request_id);
  writer.Append<uint8_t>(static_cast<uint8_t>(request.kind));
  writer.Append<uint32_t>(request.domain);
  writer.Append<uint64_t>(request.nonce);
  writer.Append<uint64_t>(request.client_pub);
  writer.AppendDigest(request.token);
  return writer.Take();
}

bool DecodeFleetRequest(std::span<const uint8_t> bytes, FleetRequest* out) {
  SectionReader reader(bytes);
  uint32_t magic = 0;
  uint8_t kind = 0;
  if (!reader.Read(&magic) || magic != kRequestMagic ||
      !reader.Read(&out->request_id) || !reader.Read(&kind) ||
      !reader.Read(&out->domain) || !reader.Read(&out->nonce) ||
      !reader.Read(&out->client_pub) || !reader.ReadDigest(&out->token) ||
      reader.remaining() != 0 ||
      kind > static_cast<uint8_t>(FleetRequestKind::kResume)) {
    return false;
  }
  out->kind = static_cast<FleetRequestKind>(kind);
  return true;
}

std::vector<uint8_t> EncodeFleetResponse(const FleetResponse& response) {
  SectionWriter writer;
  writer.Append<uint32_t>(kResponseMagic);
  writer.Append<uint64_t>(response.request_id);
  writer.Append<uint8_t>(static_cast<uint8_t>(response.code));
  writer.AppendString(std::string(response.payload.begin(), response.payload.end()));
  return writer.Take();
}

bool DecodeFleetResponse(std::span<const uint8_t> bytes, FleetResponse* out) {
  SectionReader reader(bytes);
  uint32_t magic = 0;
  uint8_t code = 0;
  std::string payload;
  if (!reader.Read(&magic) || magic != kResponseMagic ||
      !reader.Read(&out->request_id) || !reader.Read(&code) ||
      !reader.ReadString(&payload) || reader.remaining() != 0) {
    return false;
  }
  out->code = static_cast<ErrorCode>(code);
  out->payload.assign(payload.begin(), payload.end());
  return true;
}

std::unique_ptr<MonitorNode> MonitorNode::Boot(uint32_t id, IsaArch arch,
                                               uint32_t expected_services) {
  auto node = std::unique_ptr<MonitorNode>(new MonitorNode());
  node->id_ = id;
  MachineConfig config;
  config.arch = arch;
  config.memory_bytes = 64ull << 20;
  config.num_cores = 4;
  node->machine_ = std::make_unique<Machine>(config);
  node->firmware_image_ = DemoFirmwareImage();
  node->monitor_image_ = DemoMonitorImage();
  BootParams params;
  params.firmware_image = node->firmware_image_;
  params.monitor_image = node->monitor_image_;
  // Domain metadata (page tables, capability records) draws from the
  // monitor's reservation at roughly five frames per domain; grow it for
  // dense nodes but never past half the machine, leaving the rest for
  // service windows.
  const uint64_t metadata_need =
      (static_cast<uint64_t>(expected_services) + 64) * 6 * kPageSize;
  if (metadata_need > params.monitor_memory_bytes) {
    params.monitor_memory_bytes =
        std::min(AlignUp(metadata_need, 1ull << 20), config.memory_bytes / 2);
  }
  auto boot = MeasuredBoot(node->machine_.get(), params);
  if (!boot.ok()) {
    return nullptr;
  }
  node->monitor_ = std::move(boot->monitor);
  node->os_domain_ = boot->initial_domain;
  node->golden_firmware_ = boot->firmware_measurement;
  node->golden_monitor_ = boot->monitor_measurement;
  return node;
}

Result<MonitorNode::ServicePlacement> MonitorNode::InstallService(
    const std::string& name, uint64_t window_base, uint32_t pages) {
  TYCHE_ASSIGN_OR_RETURN(const CreateDomainResult created,
                         monitor_->CreateDomain(0, name));
  const AddrRange window{window_base, pages * kPageSize};
  std::vector<uint8_t> content(window.size);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(0x5A ^ (i * 29) ^ (id_ * 7) ^ name.size());
  }
  TYCHE_RETURN_IF_ERROR(machine_->memory().Write(window.base, content));
  TYCHE_ASSIGN_OR_RETURN(const CapId mem_cap,
                         FindMemoryCap(*monitor_, os_domain_, window));
  const auto granted = monitor_->GrantMemory(
      0, mem_cap, created.handle, window, Perms(Perms::kRWX),
      CapRights(CapRights::kAll), RevocationPolicy(RevocationPolicy::kZeroMemory));
  if (!granted.ok()) {
    return granted.status();
  }
  TYCHE_RETURN_IF_ERROR(monitor_->SetEntryPoint(0, created.handle, window.base));
  TYCHE_RETURN_IF_ERROR(monitor_->ExtendMeasurement(0, created.handle, window));
  TYCHE_RETURN_IF_ERROR(monitor_->Seal(0, created.handle));
  TYCHE_ASSIGN_OR_RETURN(const DomainAttestation report,
                         monitor_->AttestDomain(0, created.handle, 0x601D));
  return ServicePlacement{created.domain, report.measurement, window};
}

void MonitorNode::Pump() {
  if (crashed_) {
    return;  // silence: requests rot in the queue until failover
  }
  if (FaultInjector::active() &&
      !FaultInjector::Instance().Check(faults::kFleetNodeCrash).ok()) {
    Crash();  // CONSUMED: the node dies mid-pump, clients see timeouts
    return;
  }
  while (true) {
    auto frame = requests_.Recv();
    if (!frame.ok()) {
      break;
    }
    HandleRequest(*frame);
  }
}

void MonitorNode::HandleRequest(std::span<const uint8_t> frame) {
  FleetRequest request;
  if (!DecodeFleetRequest(frame, &request)) {
    return;  // corrupt frame: indistinguishable from a drop, client retries
  }
  ++served_;
  if (recovering_) {
    // Mid-recovery: typed and retryable, never a stale answer.
    Respond(request.request_id, ErrorCode::kUnavailable, {});
    return;
  }
  std::vector<uint8_t> payload;
  if (request.kind == FleetRequestKind::kIdentity) {
    const auto identity = monitor_->Identity(request.nonce);
    if (!identity.ok()) {
      Respond(request.request_id, identity.status().code(), {});
      return;
    }
    payload = SerializeMonitorIdentity(*identity);
  } else if (request.kind == FleetRequestKind::kResume) {
    // Stateless token validation: derive the shared secret from the
    // client's public key and recompute the epoch-bound token. A stale
    // token (pre-failover epoch) is a typed precondition failure — the
    // client must fall back to the full chain walk, and the response says
    // nothing about this node's health.
    // Direct-mapped memo of the per-client key exchange: SessionSecret is a
    // modular exponentiation and the token HMAC is epoch-constant, so a warm
    // client costs a lookup instead of re-deriving both per request.
    ResumeSecret& slot =
        resume_secrets_[request.client_pub % kResumeSecretSlots];
    if (!slot.valid || slot.client_pub != request.client_pub ||
        slot.epoch != epoch_) {
      slot.valid = true;
      slot.client_pub = request.client_pub;
      slot.epoch = epoch_;
      slot.secret = monitor_->SessionSecret(SchnorrPublicKey{request.client_pub});
      slot.expected_token = FleetSessionToken(slot.secret, id_, epoch_);
    }
    const Digest& secret = slot.secret;
    if (request.token != slot.expected_token) {
      Respond(request.request_id, ErrorCode::kFailedPrecondition, {});
      return;
    }
    const auto domain = monitor_->GetDomain(request.domain);
    if (!domain.ok()) {
      Respond(request.request_id, ErrorCode::kNotFound, {});
      return;
    }
    if (!(*domain)->sealed()) {
      Respond(request.request_id, ErrorCode::kFailedPrecondition, {});
      return;
    }
    // Fast path: the sealed measurement plus a MAC binding it to (node,
    // epoch, domain, nonce) — no report serialization, no signature.
    const Digest& measurement = (*domain)->measurement;
    const Digest ack = FleetSessionAck(secret, id_, epoch_, request.domain,
                                       request.nonce, measurement);
    payload.insert(payload.end(), measurement.bytes.begin(), measurement.bytes.end());
    payload.insert(payload.end(), ack.bytes.begin(), ack.bytes.end());
  } else {
    const auto handle =
        FindUnitCap(*monitor_, os_domain_, ResourceKind::kDomain, request.domain);
    if (!handle.ok()) {
      Respond(request.request_id, ErrorCode::kNotFound, {});
      return;
    }
    const auto report = monitor_->AttestDomain(0, *handle, request.nonce);
    if (!report.ok()) {
      // e.g. kMigrating while the domain drains to a replica: typed,
      // retryable, and the retry re-routes to the new home.
      Respond(request.request_id, report.status().code(), {});
      return;
    }
    payload = SerializeAttestation(*report);
  }
  // Poisoning attempt: flip one byte of the outbound report. The defense
  // under test is downstream — the tampered bytes must fail verification at
  // the front end and never enter the measurement cache.
  if (FaultInjector::active() && !payload.empty() &&
      !FaultInjector::Instance().Check(faults::kFleetCachePoison).ok()) {
    payload[payload.size() / 2] ^= 0x01;
  }
  Respond(request.request_id, ErrorCode::kOk, std::move(payload));
}

void MonitorNode::Respond(uint64_t request_id, ErrorCode code,
                          std::vector<uint8_t> payload) {
  FleetResponse response;
  response.request_id = request_id;
  response.code = code;
  response.payload = std::move(payload);
  const Status sent = responses_.Send(EncodeFleetResponse(response));
  (void)sent;  // a lossy wire may eat the response; the client's retry owns it
}

Status MonitorNode::Recover() {
  // The journal is the durable medium: re-parse it raw (a crash left no
  // final checkpoint — Recover()'s relaxed tail rule handles that) and
  // rebuild via PR 4 measured recovery, genesis replay, no snapshot.
  const std::vector<uint8_t> wire = monitor_->audit().journal().Serialize();
  TYCHE_ASSIGN_OR_RETURN(const ParsedJournal parsed, Journal::Deserialize(wire));
  BootParams params;
  params.firmware_image = firmware_image_;
  params.monitor_image = monitor_image_;
  TYCHE_ASSIGN_OR_RETURN(BootOutcome outcome,
                         MeasuredRecovery(machine_.get(), params, {}, parsed));
  monitor_ = std::move(outcome.monitor);
  crashed_ = false;
  recovering_ = false;
  // Epoch bump: every measurement cached against the pre-crash instance is
  // now unreachable (epoch is part of the cache key) and gets purged.
  ++epoch_;
  return OkStatus();
}

std::unique_ptr<Fleet> Fleet::Create(const FleetOptions& options) {
  if (options.num_nodes == 0) {
    return nullptr;
  }
  auto fleet = std::unique_ptr<Fleet>(new Fleet());
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    auto node = MonitorNode::Boot(i, options.arch, options.services_per_node);
    if (node == nullptr) {
      return nullptr;
    }
    fleet->nodes_.push_back(std::move(node));
  }
  const uint64_t window_top = fleet->nodes_[0]->monitor()->monitor_range().end();
  uint64_t stride = options.window_stride;
  if (stride == 0) {
    // Auto: the roomy legacy stride when the whole fleet's windows fit in a
    // node's 64 MiB memory; otherwise pack windows back to back so
    // thousands of services per node still get fleet-wide unique bases.
    const uint64_t total_services =
        static_cast<uint64_t>(options.num_nodes) * options.services_per_node;
    const uint64_t memory_bytes = 64ull << 20;
    stride = kWindowStride;
    if (window_top + (total_services + 1) * stride > memory_bytes) {
      stride = static_cast<uint64_t>(options.pages_per_service) * kPageSize;
    }
  }
  uint64_t window_cursor = window_top + stride;
  uint32_t service_id = 0;
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    for (uint32_t s = 0; s < options.services_per_node; ++s) {
      const std::string name = "svc-" + std::to_string(service_id);
      const auto placed = fleet->nodes_[i]->InstallService(
          name, window_cursor, options.pages_per_service);
      if (!placed.ok()) {
        return nullptr;
      }
      ServiceRecord record;
      record.service = service_id;
      record.node = i;
      record.domain = placed->domain;
      record.measurement = placed->measurement;
      record.name = name;
      fleet->services_.push_back(std::move(record));
      window_cursor += stride;
      ++service_id;
    }
  }
  return fleet;
}

void Fleet::PumpAll() {
  for (auto& node : nodes_) {
    node->Pump();
  }
}

Status Fleet::FailoverNode(uint32_t node_id) {
  if (node_id >= nodes_.size()) {
    return Error(ErrorCode::kInvalidArgument, "no such node");
  }
  MonitorNode* down = nodes_[node_id].get();
  MonitorNode* replica = nodes_[replica_of(node_id)].get();
  if (nodes_.size() < 2 || replica->crashed()) {
    return Error(ErrorCode::kUnavailable, "no live replica to fail over to");
  }
  // Ladder step 1 (PR 4): measured recovery from the surviving journal.
  // While it runs the node answers kUnavailable, not stale state.
  down->BeginRecovery();
  TYCHE_RETURN_IF_ERROR(down->Recover());
  // Ladder step 2 (PR 8): drain every service homed here to the replica.
  // The recovered monitor signs the handoff; the journals must splice.
  for (ServiceRecord& svc : services_) {
    if (svc.node != node_id) {
      continue;
    }
    LossyChannel wire;
    const auto report =
        MigrateDomain(down->monitor(), replica->monitor(), svc.domain, &wire,
                      down->monitor()->public_key());
    if (!report.ok()) {
      return report.status();
    }
    svc.node = replica->id();
    svc.domain = report->dest_domain;
    ++svc.failovers;
    ++migrations_;
  }
  ++failovers_;
  return OkStatus();
}

}  // namespace tyche
