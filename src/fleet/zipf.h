// Copyright 2026 The Tyche Reproduction Authors.
// Zipf-distributed index picker: the fleet's client-load shape. A small
// head of popular services absorbs most verifications (where the
// measurement cache earns its keep) while the long tail keeps producing
// cold misses — the "millions of users" popularity curve from ROADMAP's
// cloud-scale item, made concrete and deterministic.

#ifndef SRC_FLEET_ZIPF_H_
#define SRC_FLEET_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/support/prng.h"

namespace tyche {

class ZipfPicker {
 public:
  // Ranks 1..n weighted 1/rank^s. s=0 degenerates to uniform.
  ZipfPicker(size_t n, double s) : cumulative_(n) {
    double total = 0.0;
    for (size_t rank = 1; rank <= n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank), s);
      cumulative_[rank - 1] = total;
    }
  }

  // Index in [0, n), rank-0 most popular. Deterministic given the Prng.
  uint32_t Pick(Prng& prng) const {
    if (cumulative_.empty()) {
      return 0;
    }
    const double point = prng.NextDouble() * cumulative_.back();
    size_t lo = 0;
    size_t hi = cumulative_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < point) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<uint32_t>(lo);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace tyche

#endif  // SRC_FLEET_ZIPF_H_
