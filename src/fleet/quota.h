// Copyright 2026 The Tyche Reproduction Authors.
// Per-tenant admission quotas for the verification front end (DESIGN.md
// §13). Each tenant gets a token bucket refilled at `rate_per_sec` over the
// fleet's simulated clock, capped at `burst` tokens; a request is admitted
// only if its tenant has a whole token to spend. Quota exhaustion is a
// PER-TENANT verdict (kQuotaExceeded): unlike kOverloaded — the SHARED
// bounded queue is full and a retry after backoff may win — an over-quota
// tenant must wait for its own refill, and its rejection must not depend on
// how loud the other tenants are. That independence is what makes the
// Zipf-skewed soak fair: a heavy hitter exhausts its own bucket while light
// tenants keep being admitted.

#ifndef SRC_FLEET_QUOTA_H_
#define SRC_FLEET_QUOTA_H_

#include <cstdint>
#include <map>

namespace tyche {

struct TenantQuotaConfig {
  // Tokens granted per simulated second. 0 disables quota enforcement
  // entirely (every request admitted; the historical behavior).
  double rate_per_sec = 0.0;
  // Bucket capacity: how large a burst a fully idle tenant may spend at
  // once.
  double burst = 1.0;
};

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(const TenantQuotaConfig& config, uint64_t now_ns)
      : config_(config), tokens_(config.burst), refilled_at_ns_(now_ns) {}

  // Spends one token if available. Refill is lazy and fractional so two
  // tenants with the same rate admit the same count regardless of how their
  // arrivals interleave.
  bool TryAcquire(uint64_t now_ns) {
    Refill(now_ns);
    if (tokens_ < 1.0) {
      return false;
    }
    tokens_ -= 1.0;
    return true;
  }

  double tokens(uint64_t now_ns) {
    Refill(now_ns);
    return tokens_;
  }

 private:
  void Refill(uint64_t now_ns) {
    if (now_ns <= refilled_at_ns_) {
      return;
    }
    const double elapsed_sec =
        static_cast<double>(now_ns - refilled_at_ns_) / 1e9;
    tokens_ += elapsed_sec * config_.rate_per_sec;
    if (tokens_ > config_.burst) {
      tokens_ = config_.burst;
    }
    refilled_at_ns_ = now_ns;
  }

  TenantQuotaConfig config_;
  double tokens_ = 0.0;
  uint64_t refilled_at_ns_ = 0;
};

// Lazily materialized per-tenant buckets, all sharing one config. With
// rate_per_sec == 0 the registry admits everything and allocates nothing.
class TenantQuotas {
 public:
  explicit TenantQuotas(TenantQuotaConfig config = {}) : config_(config) {}

  bool enabled() const { return config_.rate_per_sec > 0.0; }

  bool TryAcquire(uint32_t tenant, uint64_t now_ns) {
    if (!enabled()) {
      return true;
    }
    return Bucket(tenant, now_ns).TryAcquire(now_ns);
  }

  double tokens(uint32_t tenant, uint64_t now_ns) {
    if (!enabled()) {
      return 0.0;
    }
    return Bucket(tenant, now_ns).tokens(now_ns);
  }

 private:
  TokenBucket& Bucket(uint32_t tenant, uint64_t now_ns) {
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_.emplace(tenant, TokenBucket(config_, now_ns)).first;
    }
    return it->second;
  }

  TenantQuotaConfig config_;
  std::map<uint32_t, TokenBucket> buckets_;
};

}  // namespace tyche

#endif  // SRC_FLEET_QUOTA_H_
