// Copyright 2026 The Tyche Reproduction Authors.
// Fault-tolerant verification front end (DESIGN.md §12): the customer-side
// service that turns "verify service S" into a verdict that is correct even
// when monitors crash, wires drop, and load spikes — the trust workflow of
// §2.1 hardened into a fleet client.
//
// One Verify() call composes, in order:
//   routing      the service table is re-consulted EVERY attempt, so a
//                request in flight across a failover transparently lands on
//                the replica;
//   cache        a (PCR digest, node, epoch, service) hit short-circuits
//                the wire entirely — epoch is part of the key, so entries
//                verified against a pre-crash monitor are unreachable the
//                instant the node recovers (see cache.h);
//   breaker      a per-monitor circuit breaker (breaker.h) fails fast while
//                a node is sick and probes it back to health; a breaker
//                that keeps re-opening declares the node down and triggers
//                the failover ladder (Fleet::FailoverNode);
//   attempt      deadline-carrying request over the lossy wire, tier 1
//                (monitor identity, verified once per (node, epoch)) then
//                tier 2 (domain report vs the pinned golden measurement);
//                optionally a hedged duplicate after `hedge_delay_ns`;
//   retry        typed failures back off with de-synchronized jitter
//                (backoff.h) and try again until `max_attempts` or the
//                deadline.
//
// The invariant everything above serves: a verdict is kOk ONLY when the
// full two-tier chain verified against the pinned golden measurement.
// Every other outcome is a typed error — kDeadlineExceeded, kUnavailable,
// kOverloaded — produced within the deadline. Tampered reports (the
// fleet.cache_poison fault) die at signature/digest verification and are
// never cached; overload sheds at admission with kOverloaded, never by
// silent drop or unbounded queueing.

#ifndef SRC_FLEET_FRONTEND_H_
#define SRC_FLEET_FRONTEND_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/fleet/breaker.h"
#include "src/fleet/cache.h"
#include "src/fleet/node.h"
#include "src/support/backoff.h"
#include "src/support/metrics.h"
#include "src/support/prng.h"

namespace tyche {

struct FrontEndOptions {
  // Overall budget per Verify() when the request carries none.
  uint64_t default_deadline_ns = 2'000'000;
  // Per-attempt wire wait before the attempt is charged as kUnavailable.
  uint64_t attempt_timeout_ns = 60'000;
  // Hedged retry: duplicate the attest request after this long with no
  // response (0 disables). The hedge re-consults the routing table at send
  // time, so mid-failover it lands on the replica.
  uint64_t hedge_delay_ns = 30'000;
  uint32_t max_attempts = 8;
  // Exponential backoff between attempts, equal-jitter (backoff.h).
  BackoffPolicy backoff{/*base=*/8'000, /*cap=*/250'000};
  // Simulated time step while polling the wire.
  uint64_t poll_step_ns = 1'000;
  BreakerConfig breaker{/*failure_threshold=*/3, /*open_cooldown_ns=*/60'000,
                        /*probe_successes=*/1};
  // A breaker that opened this many times declares its node down and
  // triggers the failover ladder. >= 2 means the first open still gets a
  // half-open probe before the client gives up on the node.
  uint32_t declare_down_opens = 2;
  bool auto_failover = true;
  // Bounded admission queue: beyond this, requests shed with kOverloaded.
  size_t queue_capacity = 16;
  size_t cache_capacity = 128;
  uint64_t seed = 0xF1EE7;
};

struct VerifyRequest {
  uint32_t service = 0;
  uint64_t nonce = 0;
  uint64_t deadline_ns = 0;  // budget from now; 0 -> options default
};

struct VerifyVerdict {
  Digest measurement;        // == the pinned golden measurement, always
  bool from_cache = false;
  bool hedged_win = false;   // the hedged duplicate answered first
  uint32_t node = 0;         // node that served (or whose cache entry hit)
  uint64_t epoch = 0;        // its serving epoch at verification time
  uint32_t attempts = 0;     // wire attempts spent (0 = pure cache hit)
  uint64_t latency_ns = 0;
};

class VerificationFrontEnd {
 public:
  explicit VerificationFrontEnd(Fleet* fleet, FrontEndOptions options = {});
  VerificationFrontEnd(const VerificationFrontEnd&) = delete;
  VerificationFrontEnd& operator=(const VerificationFrontEnd&) = delete;

  // The full retry/breaker/cache/failover composition described above.
  // kOk only with a fully verified golden measurement; otherwise a typed
  // error within the deadline.
  Result<VerifyVerdict> Verify(const VerifyRequest& request);

  // Bounded admission. Cache-servable requests are answered inline even
  // when the queue is full (shedding prefers work that needs no wire);
  // otherwise the request queues, or sheds with typed kOverloaded.
  struct AdmissionOutcome {
    bool enqueued = false;
    std::optional<VerifyVerdict> verdict;  // set when served from cache
  };
  Result<AdmissionOutcome> Submit(const VerifyRequest& request);

  struct QueuedResult {
    VerifyRequest request;
    Result<VerifyVerdict> result;
  };
  // Runs every queued request through Verify().
  std::vector<QueuedResult> DrainQueue();

  // Declares `node_id` down and runs the failover ladder now (breaker
  // reset, cache epoch invalidation included). Normally driven internally
  // by `declare_down_opens`; exposed for tests and operators.
  Status TriggerFailover(uint32_t node_id);

  size_t queue_depth() const { return queue_.size(); }
  MeasurementCache& cache() { return cache_; }
  CircuitBreaker& breaker(uint32_t node_id) { return breakers_[node_id]; }
  MetricsRegistry& metrics() { return metrics_; }
  Fleet* fleet() { return fleet_; }

  uint64_t shed() const { return shed_->Value(); }
  uint64_t hedged() const { return hedged_->Value(); }
  uint64_t hedged_wins() const { return hedged_wins_->Value(); }
  uint64_t failovers_triggered() const { return failover_->Value(); }
  uint64_t retries() const { return retries_->Value(); }

 private:
  uint64_t now() const { return fleet_->clock().now_ns; }

  // Pumps every node and sweeps all response channels into the inbox.
  // The fleet.verify_timeout fault site lives here: an injected hit
  // blackholes one received response, indistinguishable from a drop.
  void PumpAndDrain();
  std::optional<FleetResponse> TakeResponse(uint64_t request_id);
  uint64_t SendRequest(MonitorNode* node, FleetRequestKind kind,
                       uint32_t domain, uint64_t nonce);
  // Waits for `request_id` until the attempt window or overall deadline
  // closes, advancing simulated time in poll steps.
  Result<FleetResponse> Await(uint64_t request_id, uint64_t attempt_deadline,
                              uint64_t overall_deadline);

  // Tier 1, memoized per (node, epoch): identity round trip + TPM quote
  // verification against the golden images. Returns the monitor's verified
  // report-signing key for tier-2 checks.
  Result<SchnorrPublicKey> EnsureMonitorVerified(MonitorNode* node,
                                                 uint64_t overall_deadline);

  // One wire attempt (tier 1 + tier 2 + optional hedge). On success fills
  // verdict->{measurement, node, epoch, hedged_win}.
  Status AttemptVerify(const ServiceRecord& route, const VerifyRequest& request,
                       uint64_t overall_deadline, VerifyVerdict* verdict);

  std::optional<VerifyVerdict> TryCache(const VerifyRequest& request);
  void MaybeDeclareDown(uint32_t node_id);
  void AdvanceBackoff(uint32_t attempt, uint64_t overall_deadline);

  Fleet* fleet_;
  FrontEndOptions opts_;
  MeasurementCache cache_;
  std::vector<CircuitBreaker> breakers_;
  Prng prng_;
  uint64_t next_request_id_ = 0;
  std::map<uint64_t, FleetResponse> inbox_;
  // (node, epoch) -> verified monitor report-signing key.
  std::map<std::pair<uint32_t, uint64_t>, SchnorrPublicKey> verified_monitors_;
  std::deque<VerifyRequest> queue_;

  MetricsRegistry metrics_;
  StripedCounter* verifications_ok_;
  StripedCounter* verifications_cache_;
  StripedCounter* verifications_error_;
  StripedCounter* retries_;
  StripedCounter* hedged_;
  StripedCounter* hedged_wins_;
  StripedCounter* shed_;
  StripedCounter* failover_;
  StripedCounter* deadline_exceeded_;
};

}  // namespace tyche

#endif  // SRC_FLEET_FRONTEND_H_
