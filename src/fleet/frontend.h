// Copyright 2026 The Tyche Reproduction Authors.
// Fault-tolerant verification front end (DESIGN.md §12): the customer-side
// service that turns "verify service S" into a verdict that is correct even
// when monitors crash, wires drop, and load spikes — the trust workflow of
// §2.1 hardened into a fleet client.
//
// One Verify() call composes, in order:
//   routing      the service table is re-consulted EVERY attempt, so a
//                request in flight across a failover transparently lands on
//                the replica;
//   cache        a (PCR digest, node, epoch, service) hit short-circuits
//                the wire entirely — epoch is part of the key, so entries
//                verified against a pre-crash monitor are unreachable the
//                instant the node recovers (see cache.h);
//   breaker      a per-monitor circuit breaker (breaker.h) fails fast while
//                a node is sick and probes it back to health; a breaker
//                that keeps re-opening declares the node down and triggers
//                the failover ladder (Fleet::FailoverNode);
//   attempt      deadline-carrying request over the lossy wire, tier 1
//                (monitor identity, verified once per (node, epoch)) then
//                tier 2 (domain report vs the pinned golden measurement);
//                optionally a hedged duplicate after `hedge_delay_ns`;
//   retry        typed failures back off with de-synchronized jitter
//                (backoff.h) and try again until `max_attempts` or the
//                deadline.
//
// The invariant everything above serves: a verdict is kOk ONLY when the
// full two-tier chain verified against the pinned golden measurement.
// Every other outcome is a typed error — kDeadlineExceeded, kUnavailable,
// kOverloaded — produced within the deadline. Tampered reports (the
// fleet.cache_poison fault) die at signature/digest verification and are
// never cached; overload sheds at admission with kOverloaded, never by
// silent drop or unbounded queueing.

#ifndef SRC_FLEET_FRONTEND_H_
#define SRC_FLEET_FRONTEND_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/fleet/breaker.h"
#include "src/fleet/cache.h"
#include "src/fleet/node.h"
#include "src/fleet/quota.h"
#include "src/support/backoff.h"
#include "src/support/metrics.h"
#include "src/support/prng.h"

namespace tyche {

struct FrontEndOptions {
  // Overall budget per Verify() when the request carries none.
  uint64_t default_deadline_ns = 2'000'000;
  // Per-attempt wire wait before the attempt is charged as kUnavailable.
  uint64_t attempt_timeout_ns = 60'000;
  // Hedged retry: duplicate the attest request after this long with no
  // response (0 disables). The hedge re-consults the routing table at send
  // time, so mid-failover it lands on the replica.
  uint64_t hedge_delay_ns = 30'000;
  uint32_t max_attempts = 8;
  // Exponential backoff between attempts, equal-jitter (backoff.h).
  BackoffPolicy backoff{/*base=*/8'000, /*cap=*/250'000};
  // Simulated time step while polling the wire.
  uint64_t poll_step_ns = 1'000;
  BreakerConfig breaker{/*failure_threshold=*/3, /*open_cooldown_ns=*/60'000,
                        /*probe_successes=*/1};
  // A breaker that opened this many times declares its node down and
  // triggers the failover ladder. >= 2 means the first open still gets a
  // half-open probe before the client gives up on the node.
  uint32_t declare_down_opens = 2;
  bool auto_failover = true;
  // Bounded admission queue: beyond this, requests shed with kOverloaded.
  size_t queue_capacity = 16;
  size_t cache_capacity = 128;
  // Staleness bound on cache entries (0 = off, the historical behavior);
  // expirations count in tyche_fleet_cache_expired_total.
  uint64_t cache_ttl_ns = 0;
  // DrainQueue groups up to this many queued requests for the SAME node and
  // verifies their quotes with one batched Schnorr check (DESIGN.md §13).
  // 1 disables batching.
  size_t max_batch = 8;
  // After one full two-tier verify, keep an epoch-bound session per node so
  // repeat verifications skip the chain walk (DESIGN.md §13).
  bool enable_resumption = true;
  // Per-tenant admission quotas (rate 0 = unlimited, the historical
  // behavior). Exhaustion is typed kQuotaExceeded, never kOverloaded.
  TenantQuotaConfig tenant_quota{};
  uint64_t seed = 0xF1EE7;
};

struct VerifyRequest {
  uint32_t service = 0;
  uint64_t nonce = 0;
  uint64_t deadline_ns = 0;  // budget from now; 0 -> options default
  uint32_t tenant = 0;       // admission-quota accounting key
};

struct VerifyVerdict {
  Digest measurement;        // == the pinned golden measurement, always
  bool from_cache = false;
  bool hedged_win = false;   // the hedged duplicate answered first
  bool resumed = false;      // served via session resumption, no chain walk
  uint32_t node = 0;         // node that served (or whose cache entry hit)
  uint64_t epoch = 0;        // its serving epoch at verification time
  uint32_t attempts = 0;     // wire attempts spent (0 = pure cache hit)
  uint64_t latency_ns = 0;
};

class VerificationFrontEnd {
 public:
  explicit VerificationFrontEnd(Fleet* fleet, FrontEndOptions options = {});
  VerificationFrontEnd(const VerificationFrontEnd&) = delete;
  VerificationFrontEnd& operator=(const VerificationFrontEnd&) = delete;

  // The full retry/breaker/cache/failover composition described above.
  // kOk only with a fully verified golden measurement; otherwise a typed
  // error within the deadline.
  Result<VerifyVerdict> Verify(const VerifyRequest& request);

  // Bounded admission. Cache-servable requests are answered inline even
  // when the queue is full (shedding prefers work that needs no wire);
  // otherwise the request queues, or sheds with typed kOverloaded.
  struct AdmissionOutcome {
    bool enqueued = false;
    std::optional<VerifyVerdict> verdict;  // set when served from cache
  };
  Result<AdmissionOutcome> Submit(const VerifyRequest& request);

  struct QueuedResult {
    VerifyRequest request;
    Result<VerifyVerdict> result;
  };
  // Drains the admission queue, grouping runs of requests homed on the same
  // node into batches of up to `max_batch`: one tier-1 check, one wire
  // round, ONE batched Schnorr verification for the whole group. Requests
  // the batch cannot vouch for (missing response, refused, forged quote —
  // attributed by the batch fallback) are re-run through the full Verify()
  // composition, so every queued request still gets exactly one result with
  // the same verdict Verify() would produce.
  std::vector<QueuedResult> DrainQueue();

  // Declares `node_id` down and runs the failover ladder now (breaker
  // reset, cache epoch invalidation included). Normally driven internally
  // by `declare_down_opens`; exposed for tests and operators.
  Status TriggerFailover(uint32_t node_id);

  size_t queue_depth() const { return queue_.size(); }
  MeasurementCache& cache() { return cache_; }
  CircuitBreaker& breaker(uint32_t node_id) { return breakers_[node_id]; }
  MetricsRegistry& metrics() { return metrics_; }
  Fleet* fleet() { return fleet_; }

  uint64_t shed() const { return shed_->Value(); }
  uint64_t hedged() const { return hedged_->Value(); }
  uint64_t hedged_wins() const { return hedged_wins_->Value(); }
  uint64_t failovers_triggered() const { return failover_->Value(); }
  uint64_t retries() const { return retries_->Value(); }
  uint64_t sessions_established() const { return session_established_->Value(); }
  uint64_t sessions_resumed() const { return session_resumed_->Value(); }
  uint64_t sessions_rejected() const { return session_rejected_->Value(); }
  uint64_t batch_verifies() const { return batch_verifies_->Value(); }
  uint64_t batch_quotes() const { return batch_quotes_->Value(); }
  uint64_t batch_forged() const { return batch_forged_->Value(); }
  uint64_t batch_fallbacks() const { return batch_fallback_->Value(); }
  uint64_t quota_rejections() const { return quota_rejected_total_; }

  // Bench hooks: drop memoized state so one iteration re-pays the full
  // chain walk (ForgetVerifiedMonitors) or the resumption handshake
  // (ForgetSessions).
  void ForgetSessions() { sessions_.clear(); }
  void ForgetVerifiedMonitors() { verified_monitors_.clear(); }

 private:
  uint64_t now() const { return fleet_->clock().now_ns; }

  // Pumps every node and sweeps all response channels into the inbox.
  // The fleet.verify_timeout fault site lives here: an injected hit
  // blackholes one received response, indistinguishable from a drop.
  void PumpAndDrain();
  std::optional<FleetResponse> TakeResponse(uint64_t request_id);
  uint64_t SendRequest(MonitorNode* node, FleetRequestKind kind,
                       uint32_t domain, uint64_t nonce,
                       const Digest* token = nullptr);
  // Waits for `request_id` until the attempt window or overall deadline
  // closes, advancing simulated time in poll steps.
  Result<FleetResponse> Await(uint64_t request_id, uint64_t attempt_deadline,
                              uint64_t overall_deadline);

  // Tier 1, memoized per (node, epoch): identity round trip + TPM quote
  // verification against the golden images. Returns the monitor's verified
  // report-signing key for tier-2 checks.
  Result<SchnorrPublicKey> EnsureMonitorVerified(MonitorNode* node,
                                                 uint64_t overall_deadline);

  // One wire attempt (tier 1 + tier 2 + optional hedge). On success fills
  // verdict->{measurement, node, epoch, hedged_win}.
  Status AttemptVerify(const ServiceRecord& route, const VerifyRequest& request,
                       uint64_t overall_deadline, VerifyVerdict* verdict);

  std::optional<VerifyVerdict> TryCache(const VerifyRequest& request);
  void MaybeDeclareDown(uint32_t node_id);
  void AdvanceBackoff(uint32_t attempt, uint64_t overall_deadline);

  // An established resumption session with one monitor instance: the DH
  // shared secret and the epoch-bound token derived from it. Dropped on
  // failover (we trigger it) or on a node-side kFailedPrecondition (someone
  // else bumped the epoch).
  struct Session {
    uint64_t epoch = 0;
    Digest secret;
    Digest token;
  };

  // One resumed attempt: token out, measurement + ack MAC back, checked
  // against the pinned golden measurement. kFailedPrecondition means the
  // token's epoch is stale — the caller drops the session and falls back to
  // the full chain walk within the same attempt.
  Status AttemptResume(const ServiceRecord& route, const VerifyRequest& request,
                       const Session& session, uint64_t overall_deadline,
                       VerifyVerdict* verdict);
  void MaybeEstablishSession(const VerifyVerdict& verdict);

  // Drains one same-node group through the batched fast path; appends one
  // QueuedResult per request.
  void DrainBatch(uint32_t node_id, const std::vector<VerifyRequest>& group,
                  std::vector<QueuedResult>* results);

  struct TenantMetrics {
    StripedCounter* admitted = nullptr;
    StripedCounter* quota_exceeded = nullptr;
  };
  TenantMetrics& EnsureTenantMetrics(uint32_t tenant);

  Fleet* fleet_;
  FrontEndOptions opts_;
  MeasurementCache cache_;
  std::vector<CircuitBreaker> breakers_;
  Prng prng_;
  uint64_t next_request_id_ = 0;
  std::map<uint64_t, FleetResponse> inbox_;
  // (node, epoch) -> verified monitor report-signing key.
  std::map<std::pair<uint32_t, uint64_t>, SchnorrPublicKey> verified_monitors_;
  std::deque<VerifyRequest> queue_;
  // This front end's DH identity for session resumption.
  SchnorrKeyPair client_key_;
  std::map<uint32_t, Session> sessions_;  // node -> live session
  TenantQuotas quotas_;
  std::map<uint32_t, TenantMetrics> tenant_metrics_;
  uint64_t quota_rejected_total_ = 0;

  MetricsRegistry metrics_;
  StripedCounter* verifications_ok_;
  StripedCounter* verifications_cache_;
  StripedCounter* verifications_error_;
  StripedCounter* retries_;
  StripedCounter* hedged_;
  StripedCounter* hedged_wins_;
  StripedCounter* shed_;
  StripedCounter* failover_;
  StripedCounter* deadline_exceeded_;
  StripedCounter* session_established_;
  StripedCounter* session_resumed_;
  StripedCounter* session_rejected_;
  StripedCounter* batch_verifies_;
  StripedCounter* batch_quotes_;
  StripedCounter* batch_forged_;
  StripedCounter* batch_fallback_;
};

}  // namespace tyche

#endif  // SRC_FLEET_FRONTEND_H_
