// Copyright 2026 The Tyche Reproduction Authors.

#include "src/fleet/frontend.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/support/faults.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

// Responses whose stale request died are swept out past this bound.
constexpr size_t kInboxCap = 64;

// Outcomes that say "this monitor (or the path to it) is unhealthy" and feed
// its breaker. kNotFound (stale route, fixed by re-routing) and kOverloaded
// (our own admission control) say nothing about the node and must not trip
// it — see breaker.h.
bool CountsAsNodeFailure(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kMigrating:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kAttestationMismatch:
    case ErrorCode::kSignatureInvalid:
    case ErrorCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

VerificationFrontEnd::VerificationFrontEnd(Fleet* fleet, FrontEndOptions options)
    : fleet_(fleet),
      opts_(options),
      cache_(options.cache_capacity),
      prng_(options.seed) {
  breakers_.resize(fleet_->num_nodes(), CircuitBreaker(opts_.breaker));
  verifications_ok_ = metrics_.AddCounter(
      "tyche_fleet_verifications_total", "Verification verdicts by result.",
      {{"result", "ok"}});
  verifications_cache_ = metrics_.AddCounter(
      "tyche_fleet_verifications_total", "Verification verdicts by result.",
      {{"result", "cache"}});
  verifications_error_ = metrics_.AddCounter(
      "tyche_fleet_verifications_total", "Verification verdicts by result.",
      {{"result", "error"}});
  retries_ = metrics_.AddCounter("tyche_fleet_retries_total",
                                 "Wire attempts beyond the first per request.");
  hedged_ = metrics_.AddCounter("tyche_fleet_hedged_total",
                                "Hedged duplicate attest requests sent.");
  hedged_wins_ = metrics_.AddCounter(
      "tyche_fleet_hedged_wins_total",
      "Verifications where the hedged duplicate answered first.");
  shed_ = metrics_.AddCounter(
      "tyche_fleet_shed_total",
      "Requests shed at admission with typed kOverloaded.");
  failover_ = metrics_.AddCounter(
      "tyche_fleet_failover_total",
      "Failover ladders triggered by breaker declare-down.");
  deadline_exceeded_ = metrics_.AddCounter(
      "tyche_fleet_deadline_exceeded_total",
      "Verifications that exhausted their deadline.");
  metrics_.AddCallback("tyche_fleet_cache_hits_total",
                       "Measurement cache hits.", /*counter=*/true, {},
                       [this] { return cache_.hits(); });
  metrics_.AddCallback("tyche_fleet_cache_misses_total",
                       "Measurement cache misses.", /*counter=*/true, {},
                       [this] { return cache_.misses(); });
  metrics_.AddCallback(
      "tyche_fleet_cache_hit_ratio_percent",
      "Cache hits as a percentage of lookups.", /*counter=*/false, {},
      [this]() -> uint64_t {
        const uint64_t total = cache_.hits() + cache_.misses();
        return total == 0 ? 0 : cache_.hits() * 100 / total;
      });
  metrics_.AddCallback("tyche_fleet_queue_depth",
                       "Admission queue occupancy.", /*counter=*/false, {},
                       [this] { return static_cast<uint64_t>(queue_.size()); });
  for (size_t i = 0; i < fleet_->num_nodes(); ++i) {
    const MetricLabels labels = {{"node", std::to_string(i)}};
    metrics_.AddCallback(
        "tyche_fleet_breaker_state",
        "Breaker state per node: 0 closed, 1 open, 2 half-open.",
        /*counter=*/false, labels, [this, i] {
          return static_cast<uint64_t>(breakers_[i].state(now()));
        });
    metrics_.AddCallback("tyche_fleet_node_epoch",
                         "Serving epoch per node (bumps on recovery).",
                         /*counter=*/false, labels,
                         [this, i] { return fleet_->node(i)->epoch(); });
  }
}

void VerificationFrontEnd::PumpAndDrain() {
  fleet_->PumpAll();
  for (size_t i = 0; i < fleet_->num_nodes(); ++i) {
    LossyChannel* wire = fleet_->node(i)->responses();
    while (true) {
      auto frame = wire->Recv();
      if (!frame.ok()) {
        break;
      }
      if (FaultInjector::active() &&
          !FaultInjector::Instance().Check(faults::kFleetVerifyTimeout).ok()) {
        continue;  // CONSUMED: blackhole this response; the client times out
      }
      FleetResponse response;
      if (!DecodeFleetResponse(*frame, &response)) {
        continue;
      }
      if (inbox_.size() >= kInboxCap) {
        inbox_.erase(inbox_.begin());
      }
      inbox_[response.request_id] = std::move(response);
    }
  }
}

std::optional<FleetResponse> VerificationFrontEnd::TakeResponse(uint64_t request_id) {
  auto it = inbox_.find(request_id);
  if (it == inbox_.end()) {
    return std::nullopt;
  }
  FleetResponse response = std::move(it->second);
  inbox_.erase(it);
  return response;
}

uint64_t VerificationFrontEnd::SendRequest(MonitorNode* node, FleetRequestKind kind,
                                           uint32_t domain, uint64_t nonce) {
  FleetRequest request;
  request.request_id = ++next_request_id_;
  request.kind = kind;
  request.domain = domain;
  request.nonce = nonce;
  const Status sent = node->requests()->Send(EncodeFleetRequest(request));
  (void)sent;  // a dropped request is just a timeout; retries own recovery
  return request.request_id;
}

Result<FleetResponse> VerificationFrontEnd::Await(uint64_t request_id,
                                                  uint64_t attempt_deadline,
                                                  uint64_t overall_deadline) {
  while (true) {
    // A round trip is never free: one wire poll costs one step of simulated
    // time, so a response cannot be observed before the poll that carries it.
    fleet_->clock().Advance(opts_.poll_step_ns);
    PumpAndDrain();
    const uint64_t t = now();
    if (auto response = TakeResponse(request_id)) {
      if (t >= overall_deadline) {
        return Error(ErrorCode::kDeadlineExceeded, "response arrived after the deadline");
      }
      return *response;
    }
    if (t >= overall_deadline) {
      return Error(ErrorCode::kDeadlineExceeded, "deadline while awaiting response");
    }
    if (t >= attempt_deadline) {
      return Error(ErrorCode::kUnavailable, "attempt timed out");
    }
  }
}

Result<SchnorrPublicKey> VerificationFrontEnd::EnsureMonitorVerified(
    MonitorNode* node, uint64_t overall_deadline) {
  // The (node id, advertised epoch) pair names one monitor INSTANCE; a
  // recovered monitor is a new instance and gets re-verified from scratch.
  const auto cached = verified_monitors_.find({node->id(), node->epoch()});
  if (cached != verified_monitors_.end()) {
    return cached->second;
  }
  const uint64_t nonce = prng_.Next();
  const uint64_t rid = SendRequest(node, FleetRequestKind::kIdentity, 0, nonce);
  const uint64_t attempt_deadline =
      std::min(now() + opts_.attempt_timeout_ns, overall_deadline);
  TYCHE_ASSIGN_OR_RETURN(const FleetResponse response,
                         Await(rid, attempt_deadline, overall_deadline));
  if (response.code != ErrorCode::kOk) {
    return Error(response.code, "identity request refused");
  }
  auto identity = DeserializeMonitorIdentity(response.payload);
  if (!identity.ok()) {
    return Error(ErrorCode::kAttestationMismatch, "identity failed to parse");
  }
  const RemoteVerifier verifier(node->machine()->tpm().attestation_key(),
                                node->golden_firmware(), node->golden_monitor());
  TYCHE_RETURN_IF_ERROR(verifier.VerifyMonitor(*identity, nonce));
  verified_monitors_[{node->id(), node->epoch()}] = identity->monitor_key;
  return identity->monitor_key;
}

Status VerificationFrontEnd::AttemptVerify(const ServiceRecord& route,
                                           const VerifyRequest& request,
                                           uint64_t overall_deadline,
                                           VerifyVerdict* verdict) {
  MonitorNode* primary = fleet_->node(route.node);
  TYCHE_ASSIGN_OR_RETURN(const SchnorrPublicKey primary_key,
                         EnsureMonitorVerified(primary, overall_deadline));
  const uint32_t primary_node = route.node;
  const uint64_t primary_epoch = primary->epoch();
  const uint64_t rid =
      SendRequest(primary, FleetRequestKind::kAttest, route.domain, request.nonce);
  const uint64_t attempt_deadline =
      std::min(now() + opts_.attempt_timeout_ns, overall_deadline);
  const uint64_t hedge_at =
      opts_.hedge_delay_ns == 0 ? UINT64_MAX : now() + opts_.hedge_delay_ns;

  uint64_t hedge_rid = 0;
  SchnorrPublicKey hedge_key;
  Digest hedge_measurement;
  uint32_t hedge_node = 0;
  uint64_t hedge_epoch = 0;

  const auto settle = [&](const FleetResponse& response,
                          const SchnorrPublicKey& key, const Digest& golden,
                          uint32_t node_id, uint64_t epoch, bool hedged) -> Status {
    if (response.code != ErrorCode::kOk) {
      return Error(response.code, "attest request refused");
    }
    TYCHE_ASSIGN_OR_RETURN(
        const DomainAttestation report,
        VerifySerializedReport(response.payload, key, request.nonce, &golden));
    verdict->measurement = report.measurement;
    verdict->node = node_id;
    verdict->epoch = epoch;
    verdict->hedged_win = hedged;
    if (hedged) {
      hedged_wins_->Add();
    }
    return OkStatus();
  };

  while (true) {
    // Same wire-time model as Await: the poll itself costs a step, and a
    // quote that lands after the caller's deadline is late, not a success.
    fleet_->clock().Advance(opts_.poll_step_ns);
    PumpAndDrain();
    const uint64_t t = now();
    if (t < overall_deadline) {
      if (auto response = TakeResponse(rid)) {
        return settle(*response, primary_key, route.measurement, primary_node,
                      primary_epoch, /*hedged=*/false);
      }
      if (hedge_rid != 0) {
        if (auto response = TakeResponse(hedge_rid)) {
          return settle(*response, hedge_key, hedge_measurement, hedge_node,
                        hedge_epoch, /*hedged=*/true);
        }
      }
    }
    if (t >= overall_deadline) {
      return Error(ErrorCode::kDeadlineExceeded, "deadline mid-attempt");
    }
    if (t >= attempt_deadline) {
      return Error(ErrorCode::kUnavailable, "attempt timed out");
    }
    if (hedge_rid == 0 && t >= hedge_at) {
      // Hedge against drops and slow nodes: duplicate the attest to the
      // service's CURRENT home (re-consulted now, so mid-failover the hedge
      // lands on the replica). Only hedge to an already-verified monitor
      // instance — tier 1 inside a hedge would nest wire waits.
      const ServiceRecord fresh = fleet_->service(request.service);
      MonitorNode* target = fleet_->node(fresh.node);
      const auto key = verified_monitors_.find({target->id(), target->epoch()});
      if (key != verified_monitors_.end()) {
        hedge_key = key->second;
        hedge_measurement = fresh.measurement;
        hedge_node = fresh.node;
        hedge_epoch = target->epoch();
        hedge_rid = SendRequest(target, FleetRequestKind::kAttest, fresh.domain,
                                request.nonce);
        hedged_->Add();
      }
    }
  }
}

std::optional<VerifyVerdict> VerificationFrontEnd::TryCache(
    const VerifyRequest& request) {
  const ServiceRecord route = fleet_->service(request.service);
  MonitorNode* primary = fleet_->node(route.node);
  const MeasurementCacheKey key{primary->pcr_prefix(), route.node,
                                primary->epoch(), request.service};
  const MeasurementCacheEntry* entry = cache_.Lookup(key);
  if (entry == nullptr || !(entry->measurement == route.measurement)) {
    return std::nullopt;  // a mismatching entry is never served
  }
  VerifyVerdict verdict;
  verdict.measurement = entry->measurement;
  verdict.from_cache = true;
  verdict.node = route.node;
  verdict.epoch = primary->epoch();
  verdict.attempts = 0;
  verdict.latency_ns = 0;
  return verdict;
}

void VerificationFrontEnd::MaybeDeclareDown(uint32_t node_id) {
  if (!opts_.auto_failover) {
    return;
  }
  CircuitBreaker& breaker = breakers_[node_id];
  if (breaker.state(now()) != BreakerState::kOpen ||
      breaker.times_opened() < opts_.declare_down_opens) {
    return;
  }
  (void)TriggerFailover(node_id);  // replica down -> keep retrying later
}

Status VerificationFrontEnd::TriggerFailover(uint32_t node_id) {
  TYCHE_RETURN_IF_ERROR(fleet_->FailoverNode(node_id));
  failover_->Add();
  breakers_[node_id].Reset();
  MonitorNode* node = fleet_->node(node_id);
  // Epoch-bump invalidation: purge measurements and tier-1 verifications
  // recorded against the pre-failover instance.
  cache_.InvalidateEpochsBelow(node_id, node->epoch());
  for (auto it = verified_monitors_.begin(); it != verified_monitors_.end();) {
    if (it->first.first == node_id && it->first.second < node->epoch()) {
      it = verified_monitors_.erase(it);
    } else {
      ++it;
    }
  }
  return OkStatus();
}

void VerificationFrontEnd::AdvanceBackoff(uint32_t attempt,
                                          uint64_t overall_deadline) {
  uint64_t wait = JitteredBackoff(prng_, opts_.backoff, attempt);
  const uint64_t t = now();
  if (t + wait > overall_deadline) {
    wait = overall_deadline > t ? overall_deadline - t : 0;
  }
  fleet_->clock().Advance(wait);
}

Result<VerifyVerdict> VerificationFrontEnd::Verify(const VerifyRequest& request) {
  if (request.service >= fleet_->num_services()) {
    return Error(ErrorCode::kNotFound, "no such service");
  }
  const uint64_t start = now();
  const uint64_t deadline =
      start + (request.deadline_ns != 0 ? request.deadline_ns
                                        : opts_.default_deadline_ns);
  Status last = Error(ErrorCode::kUnavailable, "no attempt made");
  for (uint32_t attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    if (now() >= deadline) {
      break;
    }
    // Fresh route every attempt: failover repoints mid-request.
    const ServiceRecord route = fleet_->service(request.service);
    if (auto verdict = TryCache(request)) {
      verdict->attempts = attempt - 1;
      verdict->latency_ns = now() - start;
      verifications_cache_->Add();
      return *verdict;
    }
    CircuitBreaker& breaker = breakers_[route.node];
    const BreakerState pre_state = breaker.state(now());
    if (!breaker.Admit(now())) {
      last = Error(ErrorCode::kUnavailable, "breaker open");
      MaybeDeclareDown(route.node);
      AdvanceBackoff(attempt, deadline);
      continue;
    }
    if (pre_state == BreakerState::kHalfOpen && FaultInjector::active() &&
        !FaultInjector::Instance().Check(faults::kFleetBreakerProbe).ok()) {
      // CONSUMED: the half-open probe dies on the wire. Recovery is
      // delayed by one cooldown, never wrong.
      breaker.RecordFailure(now());
      last = Error(ErrorCode::kUnavailable, "breaker probe lost");
      MaybeDeclareDown(route.node);
      AdvanceBackoff(attempt, deadline);
      continue;
    }
    if (attempt > 1) {
      retries_->Add();
    }
    VerifyVerdict verdict;
    const Status outcome = AttemptVerify(route, request, deadline, &verdict);
    if (outcome.ok()) {
      breaker.RecordSuccess(now());
      MonitorNode* served_by = fleet_->node(verdict.node);
      cache_.Insert({served_by->pcr_prefix(), verdict.node, verdict.epoch,
                     request.service},
                    {verdict.measurement, now()});
      verdict.attempts = attempt;
      verdict.latency_ns = now() - start;
      verifications_ok_->Add();
      return verdict;
    }
    last = outcome;
    if (CountsAsNodeFailure(outcome.code())) {
      breaker.RecordFailure(now());
      MaybeDeclareDown(route.node);
    }
    AdvanceBackoff(attempt, deadline);
  }
  verifications_error_->Add();
  if (now() >= deadline) {
    deadline_exceeded_->Add();
    return Error(ErrorCode::kDeadlineExceeded,
                 "deadline exhausted; last error: " + last.message());
  }
  return Error(ErrorCode::kUnavailable,
               "attempts exhausted; last error: " + last.message());
}

Result<VerificationFrontEnd::AdmissionOutcome> VerificationFrontEnd::Submit(
    const VerifyRequest& request) {
  if (request.service >= fleet_->num_services()) {
    return Error(ErrorCode::kNotFound, "no such service");
  }
  const bool forced_overflow =
      FaultInjector::active() &&
      !FaultInjector::Instance().Check(faults::kFleetQueueOverflow).ok();
  // Shedding prefers work that needs no wire: a cache-servable request is
  // answered inline even when the queue is full.
  if (auto verdict = TryCache(request)) {
    verifications_cache_->Add();
    AdmissionOutcome outcome;
    outcome.verdict = *verdict;
    return outcome;
  }
  if (forced_overflow || queue_.size() >= opts_.queue_capacity) {
    shed_->Add();
    return Error(ErrorCode::kOverloaded, "admission queue full");
  }
  queue_.push_back(request);
  AdmissionOutcome outcome;
  outcome.enqueued = true;
  return outcome;
}

std::vector<VerificationFrontEnd::QueuedResult> VerificationFrontEnd::DrainQueue() {
  std::vector<QueuedResult> results;
  while (!queue_.empty()) {
    const VerifyRequest request = queue_.front();
    queue_.pop_front();
    results.push_back(QueuedResult{request, Verify(request)});
  }
  return results;
}

}  // namespace tyche
