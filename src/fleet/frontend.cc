// Copyright 2026 The Tyche Reproduction Authors.

#include "src/fleet/frontend.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/support/faults.h"
#include "src/tyche/verifier.h"

namespace tyche {
namespace {

// Responses whose stale request died are swept out past this bound.
constexpr size_t kInboxCap = 64;

// Outcomes that say "this monitor (or the path to it) is unhealthy" and feed
// its breaker. kNotFound (stale route, fixed by re-routing) and kOverloaded
// (our own admission control) say nothing about the node and must not trip
// it — see breaker.h.
bool CountsAsNodeFailure(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kMigrating:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kAttestationMismatch:
    case ErrorCode::kSignatureInvalid:
    case ErrorCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

VerificationFrontEnd::VerificationFrontEnd(Fleet* fleet, FrontEndOptions options)
    : fleet_(fleet),
      opts_(options),
      cache_(options.cache_capacity, options.cache_ttl_ns),
      prng_(options.seed),
      quotas_(options.tenant_quota) {
  breakers_.resize(fleet_->num_nodes(), CircuitBreaker(opts_.breaker));
  const std::string client_seed = "fleet-frontend-client-" + std::to_string(opts_.seed);
  client_key_ = DeriveKeyPair(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(client_seed.data()), client_seed.size()));
  verifications_ok_ = metrics_.AddCounter(
      "tyche_fleet_verifications_total", "Verification verdicts by result.",
      {{"result", "ok"}});
  verifications_cache_ = metrics_.AddCounter(
      "tyche_fleet_verifications_total", "Verification verdicts by result.",
      {{"result", "cache"}});
  verifications_error_ = metrics_.AddCounter(
      "tyche_fleet_verifications_total", "Verification verdicts by result.",
      {{"result", "error"}});
  retries_ = metrics_.AddCounter("tyche_fleet_retries_total",
                                 "Wire attempts beyond the first per request.");
  hedged_ = metrics_.AddCounter("tyche_fleet_hedged_total",
                                "Hedged duplicate attest requests sent.");
  hedged_wins_ = metrics_.AddCounter(
      "tyche_fleet_hedged_wins_total",
      "Verifications where the hedged duplicate answered first.");
  shed_ = metrics_.AddCounter(
      "tyche_fleet_shed_total",
      "Requests shed at admission with typed kOverloaded.");
  failover_ = metrics_.AddCounter(
      "tyche_fleet_failover_total",
      "Failover ladders triggered by breaker declare-down.");
  deadline_exceeded_ = metrics_.AddCounter(
      "tyche_fleet_deadline_exceeded_total",
      "Verifications that exhausted their deadline.");
  session_established_ = metrics_.AddCounter(
      "tyche_fleet_session_established_total",
      "Resumption sessions established after a full two-tier verify.");
  session_resumed_ = metrics_.AddCounter(
      "tyche_fleet_session_resumed_total",
      "Verifications served via session resumption (no chain walk).");
  session_rejected_ = metrics_.AddCounter(
      "tyche_fleet_session_rejected_total",
      "Resume attempts refused by the node (stale epoch-bound token).");
  batch_verifies_ = metrics_.AddCounter(
      "tyche_fleet_batch_verifies_total",
      "Batched Schnorr verifications performed by DrainQueue.");
  batch_quotes_ = metrics_.AddCounter(
      "tyche_fleet_batch_quotes_total",
      "Quotes verified inside batched verifications.");
  batch_forged_ = metrics_.AddCounter(
      "tyche_fleet_batch_forged_total",
      "Quotes inside a batch rejected and attributed by the fallback.");
  batch_fallback_ = metrics_.AddCounter(
      "tyche_fleet_batch_fallback_total",
      "Batched verifications that fell back to per-signature checks.");
  metrics_.AddCallback("tyche_fleet_cache_expired_total",
                       "Cache entries expired by the TTL bound.",
                       /*counter=*/true, {},
                       [this] { return cache_.expired(); });
  metrics_.AddCallback("tyche_fleet_cache_hits_total",
                       "Measurement cache hits.", /*counter=*/true, {},
                       [this] { return cache_.hits(); });
  metrics_.AddCallback("tyche_fleet_cache_misses_total",
                       "Measurement cache misses.", /*counter=*/true, {},
                       [this] { return cache_.misses(); });
  metrics_.AddCallback(
      "tyche_fleet_cache_hit_ratio_percent",
      "Cache hits as a percentage of lookups.", /*counter=*/false, {},
      [this]() -> uint64_t {
        const uint64_t total = cache_.hits() + cache_.misses();
        return total == 0 ? 0 : cache_.hits() * 100 / total;
      });
  metrics_.AddCallback("tyche_fleet_queue_depth",
                       "Admission queue occupancy.", /*counter=*/false, {},
                       [this] { return static_cast<uint64_t>(queue_.size()); });
  for (size_t i = 0; i < fleet_->num_nodes(); ++i) {
    const MetricLabels labels = {{"node", std::to_string(i)}};
    metrics_.AddCallback(
        "tyche_fleet_breaker_state",
        "Breaker state per node: 0 closed, 1 open, 2 half-open.",
        /*counter=*/false, labels, [this, i] {
          return static_cast<uint64_t>(breakers_[i].state(now()));
        });
    metrics_.AddCallback("tyche_fleet_node_epoch",
                         "Serving epoch per node (bumps on recovery).",
                         /*counter=*/false, labels,
                         [this, i] { return fleet_->node(i)->epoch(); });
  }
}

void VerificationFrontEnd::PumpAndDrain() {
  fleet_->PumpAll();
  for (size_t i = 0; i < fleet_->num_nodes(); ++i) {
    LossyChannel* wire = fleet_->node(i)->responses();
    while (true) {
      auto frame = wire->Recv();
      if (!frame.ok()) {
        break;
      }
      if (FaultInjector::active() &&
          !FaultInjector::Instance().Check(faults::kFleetVerifyTimeout).ok()) {
        continue;  // CONSUMED: blackhole this response; the client times out
      }
      FleetResponse response;
      if (!DecodeFleetResponse(*frame, &response)) {
        continue;
      }
      if (inbox_.size() >= kInboxCap) {
        inbox_.erase(inbox_.begin());
      }
      inbox_[response.request_id] = std::move(response);
    }
  }
}

std::optional<FleetResponse> VerificationFrontEnd::TakeResponse(uint64_t request_id) {
  auto it = inbox_.find(request_id);
  if (it == inbox_.end()) {
    return std::nullopt;
  }
  FleetResponse response = std::move(it->second);
  inbox_.erase(it);
  return response;
}

uint64_t VerificationFrontEnd::SendRequest(MonitorNode* node, FleetRequestKind kind,
                                           uint32_t domain, uint64_t nonce,
                                           const Digest* token) {
  FleetRequest request;
  request.request_id = ++next_request_id_;
  request.kind = kind;
  request.domain = domain;
  request.nonce = nonce;
  request.client_pub = client_key_.pub.y;
  if (token != nullptr) {
    request.token = *token;
  }
  const Status sent = node->requests()->Send(EncodeFleetRequest(request));
  (void)sent;  // a dropped request is just a timeout; retries own recovery
  return request.request_id;
}

Result<FleetResponse> VerificationFrontEnd::Await(uint64_t request_id,
                                                  uint64_t attempt_deadline,
                                                  uint64_t overall_deadline) {
  while (true) {
    // A round trip is never free: one wire poll costs one step of simulated
    // time, so a response cannot be observed before the poll that carries it.
    fleet_->clock().Advance(opts_.poll_step_ns);
    PumpAndDrain();
    const uint64_t t = now();
    if (auto response = TakeResponse(request_id)) {
      if (t >= overall_deadline) {
        return Error(ErrorCode::kDeadlineExceeded, "response arrived after the deadline");
      }
      return *response;
    }
    if (t >= overall_deadline) {
      return Error(ErrorCode::kDeadlineExceeded, "deadline while awaiting response");
    }
    if (t >= attempt_deadline) {
      return Error(ErrorCode::kUnavailable, "attempt timed out");
    }
  }
}

Result<SchnorrPublicKey> VerificationFrontEnd::EnsureMonitorVerified(
    MonitorNode* node, uint64_t overall_deadline) {
  // The (node id, advertised epoch) pair names one monitor INSTANCE; a
  // recovered monitor is a new instance and gets re-verified from scratch.
  const auto cached = verified_monitors_.find({node->id(), node->epoch()});
  if (cached != verified_monitors_.end()) {
    return cached->second;
  }
  const uint64_t nonce = prng_.Next();
  const uint64_t rid = SendRequest(node, FleetRequestKind::kIdentity, 0, nonce);
  const uint64_t attempt_deadline =
      std::min(now() + opts_.attempt_timeout_ns, overall_deadline);
  TYCHE_ASSIGN_OR_RETURN(const FleetResponse response,
                         Await(rid, attempt_deadline, overall_deadline));
  if (response.code != ErrorCode::kOk) {
    return Error(response.code, "identity request refused");
  }
  auto identity = DeserializeMonitorIdentity(response.payload);
  if (!identity.ok()) {
    return Error(ErrorCode::kAttestationMismatch, "identity failed to parse");
  }
  const RemoteVerifier verifier(node->machine()->tpm().attestation_key(),
                                node->golden_firmware(), node->golden_monitor());
  TYCHE_RETURN_IF_ERROR(verifier.VerifyMonitor(*identity, nonce));
  verified_monitors_[{node->id(), node->epoch()}] = identity->monitor_key;
  return identity->monitor_key;
}

Status VerificationFrontEnd::AttemptVerify(const ServiceRecord& route,
                                           const VerifyRequest& request,
                                           uint64_t overall_deadline,
                                           VerifyVerdict* verdict) {
  MonitorNode* primary = fleet_->node(route.node);
  TYCHE_ASSIGN_OR_RETURN(const SchnorrPublicKey primary_key,
                         EnsureMonitorVerified(primary, overall_deadline));
  const uint32_t primary_node = route.node;
  const uint64_t primary_epoch = primary->epoch();
  const uint64_t rid =
      SendRequest(primary, FleetRequestKind::kAttest, route.domain, request.nonce);
  const uint64_t attempt_deadline =
      std::min(now() + opts_.attempt_timeout_ns, overall_deadline);
  const uint64_t hedge_at =
      opts_.hedge_delay_ns == 0 ? UINT64_MAX : now() + opts_.hedge_delay_ns;

  uint64_t hedge_rid = 0;
  SchnorrPublicKey hedge_key;
  Digest hedge_measurement;
  uint32_t hedge_node = 0;
  uint64_t hedge_epoch = 0;

  const auto settle = [&](const FleetResponse& response,
                          const SchnorrPublicKey& key, const Digest& golden,
                          uint32_t node_id, uint64_t epoch, bool hedged) -> Status {
    if (response.code != ErrorCode::kOk) {
      return Error(response.code, "attest request refused");
    }
    TYCHE_ASSIGN_OR_RETURN(
        const DomainAttestation report,
        VerifySerializedReport(response.payload, key, request.nonce, &golden));
    verdict->measurement = report.measurement;
    verdict->node = node_id;
    verdict->epoch = epoch;
    verdict->hedged_win = hedged;
    if (hedged) {
      hedged_wins_->Add();
    }
    return OkStatus();
  };

  while (true) {
    // Same wire-time model as Await: the poll itself costs a step, and a
    // quote that lands after the caller's deadline is late, not a success.
    fleet_->clock().Advance(opts_.poll_step_ns);
    PumpAndDrain();
    const uint64_t t = now();
    if (t < overall_deadline) {
      if (auto response = TakeResponse(rid)) {
        return settle(*response, primary_key, route.measurement, primary_node,
                      primary_epoch, /*hedged=*/false);
      }
      if (hedge_rid != 0) {
        if (auto response = TakeResponse(hedge_rid)) {
          return settle(*response, hedge_key, hedge_measurement, hedge_node,
                        hedge_epoch, /*hedged=*/true);
        }
      }
    }
    if (t >= overall_deadline) {
      return Error(ErrorCode::kDeadlineExceeded, "deadline mid-attempt");
    }
    if (t >= attempt_deadline) {
      return Error(ErrorCode::kUnavailable, "attempt timed out");
    }
    if (hedge_rid == 0 && t >= hedge_at) {
      // Hedge against drops and slow nodes: duplicate the attest to the
      // service's CURRENT home (re-consulted now, so mid-failover the hedge
      // lands on the replica). Only hedge to an already-verified monitor
      // instance — tier 1 inside a hedge would nest wire waits.
      const ServiceRecord fresh = fleet_->service(request.service);
      MonitorNode* target = fleet_->node(fresh.node);
      const auto key = verified_monitors_.find({target->id(), target->epoch()});
      if (key != verified_monitors_.end()) {
        hedge_key = key->second;
        hedge_measurement = fresh.measurement;
        hedge_node = fresh.node;
        hedge_epoch = target->epoch();
        hedge_rid = SendRequest(target, FleetRequestKind::kAttest, fresh.domain,
                                request.nonce);
        hedged_->Add();
      }
    }
  }
}

Status VerificationFrontEnd::AttemptResume(const ServiceRecord& route,
                                           const VerifyRequest& request,
                                           const Session& session,
                                           uint64_t overall_deadline,
                                           VerifyVerdict* verdict) {
  MonitorNode* primary = fleet_->node(route.node);
  const uint64_t rid = SendRequest(primary, FleetRequestKind::kResume,
                                   route.domain, request.nonce, &session.token);
  const uint64_t attempt_deadline =
      std::min(now() + opts_.attempt_timeout_ns, overall_deadline);
  TYCHE_ASSIGN_OR_RETURN(const FleetResponse response,
                         Await(rid, attempt_deadline, overall_deadline));
  if (response.code != ErrorCode::kOk) {
    // kFailedPrecondition = stale token (epoch bumped); the caller drops
    // the session and runs the full chain walk in the same attempt.
    return Error(response.code, "resume refused");
  }
  if (response.payload.size() != kResumePayloadSize) {
    return Error(ErrorCode::kAttestationMismatch, "resume payload malformed");
  }
  Digest measurement;
  Digest ack;
  std::copy(response.payload.begin(), response.payload.begin() + 32,
            measurement.bytes.begin());
  std::copy(response.payload.begin() + 32, response.payload.end(), ack.bytes.begin());
  // The ack MAC binds (node, epoch, domain, nonce, measurement) under the
  // session secret: fresh (our nonce), from the right instance (epoch), and
  // unforgeable in transit — a tampered payload dies here, exactly like a
  // tampered report dies at signature verification.
  if (!(ack == FleetSessionAck(session.secret, route.node, session.epoch,
                               route.domain, request.nonce, measurement))) {
    return Error(ErrorCode::kAttestationMismatch, "resume ack MAC mismatch");
  }
  if (!(measurement == route.measurement)) {
    return Error(ErrorCode::kAttestationMismatch,
                 "resumed measurement does not match pinned golden value");
  }
  verdict->measurement = measurement;
  verdict->node = route.node;
  verdict->epoch = session.epoch;
  verdict->resumed = true;
  return OkStatus();
}

void VerificationFrontEnd::MaybeEstablishSession(const VerifyVerdict& verdict) {
  if (!opts_.enable_resumption) {
    return;
  }
  const auto existing = sessions_.find(verdict.node);
  if (existing != sessions_.end() && existing->second.epoch == verdict.epoch) {
    return;
  }
  // The peer key comes from the tier-1 verification this verdict rode on,
  // so the DH secret is bound to the VERIFIED monitor instance.
  const auto key = verified_monitors_.find({verdict.node, verdict.epoch});
  if (key == verified_monitors_.end()) {
    return;
  }
  Session session;
  session.epoch = verdict.epoch;
  session.secret = DhSharedSecret(client_key_.priv, key->second);
  session.token = FleetSessionToken(session.secret, verdict.node, verdict.epoch);
  sessions_[verdict.node] = session;
  session_established_->Add();
}

std::optional<VerifyVerdict> VerificationFrontEnd::TryCache(
    const VerifyRequest& request) {
  const ServiceRecord route = fleet_->service(request.service);
  MonitorNode* primary = fleet_->node(route.node);
  const MeasurementCacheKey key{primary->pcr_prefix(), route.node,
                                primary->epoch(), request.service};
  const MeasurementCacheEntry* entry = cache_.Lookup(key, now());
  if (entry == nullptr || !(entry->measurement == route.measurement)) {
    return std::nullopt;  // a mismatching entry is never served
  }
  VerifyVerdict verdict;
  verdict.measurement = entry->measurement;
  verdict.from_cache = true;
  verdict.node = route.node;
  verdict.epoch = primary->epoch();
  verdict.attempts = 0;
  verdict.latency_ns = 0;
  return verdict;
}

void VerificationFrontEnd::MaybeDeclareDown(uint32_t node_id) {
  if (!opts_.auto_failover) {
    return;
  }
  CircuitBreaker& breaker = breakers_[node_id];
  if (breaker.state(now()) != BreakerState::kOpen ||
      breaker.times_opened() < opts_.declare_down_opens) {
    return;
  }
  (void)TriggerFailover(node_id);  // replica down -> keep retrying later
}

Status VerificationFrontEnd::TriggerFailover(uint32_t node_id) {
  TYCHE_RETURN_IF_ERROR(fleet_->FailoverNode(node_id));
  failover_->Add();
  breakers_[node_id].Reset();
  MonitorNode* node = fleet_->node(node_id);
  // Epoch-bump invalidation: purge measurements, tier-1 verifications, AND
  // resumption sessions recorded against the pre-failover instance — the
  // same bump kills all three.
  sessions_.erase(node_id);
  cache_.InvalidateEpochsBelow(node_id, node->epoch());
  for (auto it = verified_monitors_.begin(); it != verified_monitors_.end();) {
    if (it->first.first == node_id && it->first.second < node->epoch()) {
      it = verified_monitors_.erase(it);
    } else {
      ++it;
    }
  }
  return OkStatus();
}

void VerificationFrontEnd::AdvanceBackoff(uint32_t attempt,
                                          uint64_t overall_deadline) {
  uint64_t wait = JitteredBackoff(prng_, opts_.backoff, attempt);
  const uint64_t t = now();
  if (t + wait > overall_deadline) {
    wait = overall_deadline > t ? overall_deadline - t : 0;
  }
  fleet_->clock().Advance(wait);
}

Result<VerifyVerdict> VerificationFrontEnd::Verify(const VerifyRequest& request) {
  if (request.service >= fleet_->num_services()) {
    return Error(ErrorCode::kNotFound, "no such service");
  }
  const uint64_t start = now();
  const uint64_t deadline =
      start + (request.deadline_ns != 0 ? request.deadline_ns
                                        : opts_.default_deadline_ns);
  Status last = Error(ErrorCode::kUnavailable, "no attempt made");
  for (uint32_t attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    if (now() >= deadline) {
      break;
    }
    // Fresh route every attempt: failover repoints mid-request.
    const ServiceRecord route = fleet_->service(request.service);
    if (auto verdict = TryCache(request)) {
      verdict->attempts = attempt - 1;
      verdict->latency_ns = now() - start;
      verifications_cache_->Add();
      return *verdict;
    }
    CircuitBreaker& breaker = breakers_[route.node];
    const BreakerState pre_state = breaker.state(now());
    if (!breaker.Admit(now())) {
      last = Error(ErrorCode::kUnavailable, "breaker open");
      MaybeDeclareDown(route.node);
      AdvanceBackoff(attempt, deadline);
      continue;
    }
    if (pre_state == BreakerState::kHalfOpen && FaultInjector::active() &&
        !FaultInjector::Instance().Check(faults::kFleetBreakerProbe).ok()) {
      // CONSUMED: the half-open probe dies on the wire. Recovery is
      // delayed by one cooldown, never wrong.
      breaker.RecordFailure(now());
      last = Error(ErrorCode::kUnavailable, "breaker probe lost");
      MaybeDeclareDown(route.node);
      AdvanceBackoff(attempt, deadline);
      continue;
    }
    if (attempt > 1) {
      retries_->Add();
    }
    VerifyVerdict verdict;
    Status outcome = OkStatus();
    bool ran_attempt = false;
    if (opts_.enable_resumption) {
      const auto session = sessions_.find(route.node);
      if (session != sessions_.end()) {
        ran_attempt = true;
        outcome = AttemptResume(route, request, session->second, deadline, &verdict);
        if (outcome.ok()) {
          session_resumed_->Add();
        } else if (outcome.code() == ErrorCode::kFailedPrecondition) {
          // Stale token: the node's epoch moved without us driving the
          // failover. Says nothing about the node's health — drop the
          // session and run the full chain walk within the same attempt.
          sessions_.erase(session);
          session_rejected_->Add();
          verdict = VerifyVerdict{};
          outcome = AttemptVerify(route, request, deadline, &verdict);
        }
      }
    }
    if (!ran_attempt) {
      outcome = AttemptVerify(route, request, deadline, &verdict);
    }
    if (outcome.ok()) {
      breaker.RecordSuccess(now());
      MonitorNode* served_by = fleet_->node(verdict.node);
      cache_.Insert({served_by->pcr_prefix(), verdict.node, verdict.epoch,
                     request.service},
                    {verdict.measurement, now()});
      MaybeEstablishSession(verdict);
      verdict.attempts = attempt;
      verdict.latency_ns = now() - start;
      verifications_ok_->Add();
      return verdict;
    }
    last = outcome;
    if (CountsAsNodeFailure(outcome.code())) {
      breaker.RecordFailure(now());
      MaybeDeclareDown(route.node);
    }
    AdvanceBackoff(attempt, deadline);
  }
  verifications_error_->Add();
  if (now() >= deadline) {
    deadline_exceeded_->Add();
    return Error(ErrorCode::kDeadlineExceeded,
                 "deadline exhausted; last error: " + last.message());
  }
  return Error(ErrorCode::kUnavailable,
               "attempts exhausted; last error: " + last.message());
}

VerificationFrontEnd::TenantMetrics& VerificationFrontEnd::EnsureTenantMetrics(
    uint32_t tenant) {
  auto it = tenant_metrics_.find(tenant);
  if (it != tenant_metrics_.end()) {
    return it->second;
  }
  const MetricLabels labels = {{"tenant", std::to_string(tenant)}};
  TenantMetrics tm;
  tm.admitted = metrics_.AddCounter("tyche_fleet_tenant_admitted_total",
                                    "Requests admitted per tenant.", labels);
  tm.quota_exceeded = metrics_.AddCounter(
      "tyche_fleet_tenant_quota_exceeded_total",
      "Requests rejected with kQuotaExceeded per tenant.", labels);
  metrics_.AddCallback("tyche_fleet_tenant_tokens",
                       "Remaining quota tokens per tenant.", /*counter=*/false,
                       labels, [this, tenant] {
                         return static_cast<uint64_t>(
                             quotas_.tokens(tenant, now()));
                       });
  return tenant_metrics_.emplace(tenant, tm).first->second;
}

Result<VerificationFrontEnd::AdmissionOutcome> VerificationFrontEnd::Submit(
    const VerifyRequest& request) {
  if (request.service >= fleet_->num_services()) {
    return Error(ErrorCode::kNotFound, "no such service");
  }
  // Quota is charged at admission, before any other consideration: a
  // tenant's spend is its request RATE, whether answers come from cache or
  // wire. kQuotaExceeded is a per-tenant verdict — the shared queue may be
  // empty; retrying sooner will not help, waiting for refill will.
  if (quotas_.enabled()) {
    TenantMetrics& tm = EnsureTenantMetrics(request.tenant);
    if (!quotas_.TryAcquire(request.tenant, now())) {
      tm.quota_exceeded->Add();
      ++quota_rejected_total_;
      return Error(ErrorCode::kQuotaExceeded, "tenant quota exhausted");
    }
    tm.admitted->Add();
  }
  const bool forced_overflow =
      FaultInjector::active() &&
      !FaultInjector::Instance().Check(faults::kFleetQueueOverflow).ok();
  // Shedding prefers work that needs no wire: a cache-servable request is
  // answered inline even when the queue is full.
  if (auto verdict = TryCache(request)) {
    verifications_cache_->Add();
    AdmissionOutcome outcome;
    outcome.verdict = *verdict;
    return outcome;
  }
  if (forced_overflow || queue_.size() >= opts_.queue_capacity) {
    shed_->Add();
    return Error(ErrorCode::kOverloaded, "admission queue full");
  }
  queue_.push_back(request);
  AdmissionOutcome outcome;
  outcome.enqueued = true;
  return outcome;
}

std::vector<VerificationFrontEnd::QueuedResult> VerificationFrontEnd::DrainQueue() {
  std::vector<QueuedResult> results;
  while (!queue_.empty()) {
    if (opts_.max_batch <= 1) {
      const VerifyRequest request = queue_.front();
      queue_.pop_front();
      results.push_back(QueuedResult{request, Verify(request)});
      continue;
    }
    // Group the head run of same-node requests: quotes signed by ONE
    // monitor key, verifiable as one batch.
    const uint32_t head_node = fleet_->service(queue_.front().service).node;
    std::vector<VerifyRequest> group;
    while (!queue_.empty() && group.size() < opts_.max_batch &&
           fleet_->service(queue_.front().service).node == head_node) {
      group.push_back(queue_.front());
      queue_.pop_front();
    }
    DrainBatch(head_node, group, &results);
  }
  return results;
}

void VerificationFrontEnd::DrainBatch(uint32_t node_id,
                                      const std::vector<VerifyRequest>& group,
                                      std::vector<QueuedResult>* results) {
  // Cache first, exactly like Verify() would.
  std::vector<VerifyRequest> live;
  for (const VerifyRequest& request : group) {
    if (auto verdict = TryCache(request)) {
      verifications_cache_->Add();
      results->push_back(QueuedResult{request, *verdict});
    } else {
      live.push_back(request);
    }
  }
  if (live.empty()) {
    return;
  }
  // The batched fast path is an accelerator, not a policy change: any
  // obstacle — breaker refusal, tier-1 failure, missing or refused
  // response, a quote the batch verification rejects — drops THAT request
  // back to the full Verify() composition (retries, backoff, failover), so
  // verdicts and typed errors are the same as the serial path's.
  const auto fall_back_all = [&] {
    for (const VerifyRequest& request : live) {
      results->push_back(QueuedResult{request, Verify(request)});
    }
  };
  if (live.size() == 1) {
    fall_back_all();
    return;
  }
  MonitorNode* node = fleet_->node(node_id);
  CircuitBreaker& breaker = breakers_[node_id];
  if (!breaker.Admit(now())) {
    fall_back_all();
    return;
  }
  const uint64_t overall_deadline = now() + opts_.default_deadline_ns;
  const auto monitor_key = EnsureMonitorVerified(node, overall_deadline);
  if (!monitor_key.ok()) {
    if (CountsAsNodeFailure(monitor_key.status().code())) {
      breaker.RecordFailure(now());
      MaybeDeclareDown(node_id);
    }
    fall_back_all();
    return;
  }
  // One wire round for the whole group: all attests go out back to back and
  // share one poll loop.
  std::vector<uint64_t> rids(live.size(), 0);
  std::vector<ServiceRecord> routes;
  routes.reserve(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    const ServiceRecord route = fleet_->service(live[i].service);
    routes.push_back(route);
    rids[i] = SendRequest(node, FleetRequestKind::kAttest, route.domain,
                          live[i].nonce);
  }
  std::vector<std::optional<FleetResponse>> responses(live.size());
  size_t pending = live.size();
  const uint64_t attempt_deadline =
      std::min(now() + opts_.attempt_timeout_ns, overall_deadline);
  while (pending > 0 && now() < attempt_deadline) {
    fleet_->clock().Advance(opts_.poll_step_ns);
    PumpAndDrain();
    for (size_t i = 0; i < live.size(); ++i) {
      if (responses[i].has_value()) {
        continue;
      }
      if (auto response = TakeResponse(rids[i])) {
        responses[i] = std::move(*response);
        --pending;
      }
    }
  }
  // Forgery attempt inside the batch: replace the first usable report's
  // signature response scalar with a near-miss. The defense under test is
  // that the batch verification's fallback attributes the forgery to THIS
  // quote — it is rejected (and retried clean) while the rest of the batch
  // is still served.
  if (FaultInjector::active() &&
      !FaultInjector::Instance().Check(faults::kFleetBatchForge).ok()) {
    for (auto& response : responses) {
      if (!response.has_value() || response->code != ErrorCode::kOk) {
        continue;
      }
      auto report = DeserializeAttestation(response->payload);
      if (!report.ok()) {
        continue;
      }
      report->signature.s ^= 1;  // structurally sound, cryptographically not
      response->payload = SerializeAttestation(*report);
      break;
    }
  }
  // Assemble the batch from responses that LOOK like reports; everything
  // else (timeout, typed refusal) falls back per request.
  std::vector<BatchReportInput> inputs;
  std::vector<size_t> input_owner;  // batch slot -> live index
  bool node_failure = false;
  for (size_t i = 0; i < live.size(); ++i) {
    if (!responses[i].has_value()) {
      node_failure = true;  // silence within the window: availability-shaped
      continue;
    }
    if (responses[i]->code != ErrorCode::kOk) {
      node_failure = node_failure || CountsAsNodeFailure(responses[i]->code);
      continue;
    }
    inputs.push_back(BatchReportInput{responses[i]->payload, live[i].nonce,
                                      &routes[i].measurement});
    input_owner.push_back(i);
  }
  std::vector<bool> served(live.size(), false);
  if (!inputs.empty()) {
    batch_verifies_->Add();
    batch_quotes_->Add(inputs.size());
    const std::vector<BatchReportOutcome> outcomes =
        VerifySerializedReportBatch(inputs, *monitor_key);
    bool any_rejected = false;
    for (size_t b = 0; b < outcomes.size(); ++b) {
      const size_t i = input_owner[b];
      if (!outcomes[b].status.ok()) {
        any_rejected = true;
        if (outcomes[b].status.code() == ErrorCode::kSignatureInvalid) {
          batch_forged_->Add();
        }
        node_failure = node_failure || CountsAsNodeFailure(outcomes[b].status.code());
        continue;
      }
      VerifyVerdict verdict;
      verdict.measurement = outcomes[b].report->measurement;
      verdict.node = node_id;
      verdict.epoch = node->epoch();
      verdict.attempts = 1;
      cache_.Insert({node->pcr_prefix(), node_id, node->epoch(), live[i].service},
                    {verdict.measurement, now()});
      MaybeEstablishSession(verdict);
      verifications_ok_->Add();
      results->push_back(QueuedResult{live[i], verdict});
      served[i] = true;
    }
    if (any_rejected) {
      batch_fallback_->Add();
    }
  }
  if (node_failure) {
    breaker.RecordFailure(now());
    MaybeDeclareDown(node_id);
  } else {
    breaker.RecordSuccess(now());
  }
  for (size_t i = 0; i < live.size(); ++i) {
    if (!served[i]) {
      results->push_back(QueuedResult{live[i], Verify(live[i])});
    }
  }
}

}  // namespace tyche
