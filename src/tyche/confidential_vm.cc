// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/confidential_vm.h"

namespace tyche {

Result<ConfidentialVm> ConfidentialVm::Create(Monitor* monitor, CoreId core,
                                              const TycheImage& guest_image,
                                              const ConfidentialVmOptions& options) {
  LoadOptions load;
  load.src_cap = options.src_cap;
  load.base = options.base;
  load.size = options.size;
  load.cores = options.cores;
  load.core_caps = options.core_caps;
  load.seal = false;  // devices are attached before sealing
  load.policy = RevocationPolicy(RevocationPolicy::kObfuscate);
  TYCHE_ASSIGN_OR_RETURN(LoadedDomain loaded, LoadImage(monitor, core, guest_image, load));

  for (const CapId device_cap : options.device_caps) {
    TYCHE_RETURN_IF_ERROR(monitor
                              ->GrantUnit(core, device_cap, loaded.handle, CapRights{},
                                          RevocationPolicy{})
                              .status());
  }
  TYCHE_RETURN_IF_ERROR(monitor->Seal(core, loaded.handle));
  return ConfidentialVm(monitor, loaded);
}

}  // namespace tyche
