// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/loader.h"

#include <algorithm>

namespace tyche {

Result<std::vector<LayoutRegion>> ComputeLoadLayout(const TycheImage& image, uint64_t base,
                                                    uint64_t size) {
  if (!IsPageAligned(base) || !IsPageAligned(size) || size == 0) {
    return Error(ErrorCode::kInvalidArgument, "load region must be page-aligned");
  }
  if (image.extent() > size) {
    return Error(ErrorCode::kInvalidArgument, "image larger than load region");
  }
  std::vector<LayoutRegion> regions;
  uint64_t cursor = base;
  // Segments are kept sorted by offset inside TycheImage.
  for (const ImageSegment& segment : image.segments()) {
    const uint64_t seg_base = base + segment.offset;
    if (seg_base > cursor) {
      regions.push_back(LayoutRegion{AddrRange{cursor, seg_base - cursor},
                                     Perms(Perms::kRWX), /*shared=*/false, /*heap=*/true});
    }
    regions.push_back(LayoutRegion{AddrRange{seg_base, segment.size}, segment.perms,
                                   segment.shared, /*heap=*/false});
    cursor = seg_base + segment.size;
  }
  if (cursor < base + size) {
    regions.push_back(LayoutRegion{AddrRange{cursor, base + size - cursor},
                                   Perms(Perms::kRWX), /*shared=*/false, /*heap=*/true});
  }
  return regions;
}

Result<CapId> FindMemoryCap(const Monitor& monitor, DomainId domain, AddrRange range) {
  CapId found = kInvalidCap;
  monitor.engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == domain && cap.kind == ResourceKind::kMemory &&
        cap.range.Contains(range)) {
      found = cap.id;
    }
  });
  if (found == kInvalidCap) {
    return Error(ErrorCode::kNotFound, "no capability covering range");
  }
  return found;
}

Result<CapId> FindUnitCap(const Monitor& monitor, DomainId domain, ResourceKind kind,
                          uint64_t unit) {
  CapId found = kInvalidCap;
  monitor.engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == domain && cap.kind == kind && cap.unit == unit) {
      found = cap.id;
    }
  });
  if (found == kInvalidCap) {
    return Error(ErrorCode::kNotFound, "no capability for unit");
  }
  return found;
}

Result<LoadedDomain> LoadImage(Monitor* monitor, CoreId core, const TycheImage& image,
                               const LoadOptions& options) {
  if (options.cores.size() != options.core_caps.size()) {
    return Error(ErrorCode::kInvalidArgument, "cores and core_caps must align");
  }
  const DomainId caller = monitor->CurrentDomain(core);
  TYCHE_ASSIGN_OR_RETURN(const std::vector<LayoutRegion> layout,
                         ComputeLoadLayout(image, options.base, options.size));

  Machine* machine = monitor->machine();

  // 1. Zero the whole region so unmeasured bytes are deterministic, then
  //    write segment payloads. The caller still owns the region here.
  {
    const std::vector<uint8_t> zeros(kPageSize, 0);
    for (uint64_t off = 0; off < options.size; off += kPageSize) {
      TYCHE_RETURN_IF_ERROR(machine->CheckedWrite(core, options.base + off,
                                                  std::span<const uint8_t>(zeros)));
    }
  }
  for (const ImageSegment& segment : image.segments()) {
    if (!segment.data.empty()) {
      TYCHE_RETURN_IF_ERROR(machine->CheckedWrite(
          core, options.base + segment.offset, std::span<const uint8_t>(segment.data)));
    }
  }

  // 2. Create the domain.
  TYCHE_ASSIGN_OR_RETURN(const CreateDomainResult created,
                         monitor->CreateDomain(core, image.name()));
  LoadedDomain loaded;
  loaded.domain = created.domain;
  loaded.handle = created.handle;
  loaded.base = options.base;
  loaded.size = options.size;

  // 3. Shared regions first (sharing does not split the source capability).
  for (const LayoutRegion& region : layout) {
    if (region.shared) {
      CapId src = options.src_cap;
      if (src == kInvalidCap) {
        TYCHE_ASSIGN_OR_RETURN(src, FindMemoryCap(*monitor, caller, region.range));
      }
      TYCHE_ASSIGN_OR_RETURN(
          const CapId shared_cap,
          monitor->ShareMemory(core, src, created.handle, region.range, region.perms,
                               CapRights{}, options.policy));
      loaded.shared_caps.push_back(shared_cap);
    }
  }

  // 4. Confidential regions: granted exclusively, in ascending order. Each
  //    grant splits the covering capability, so it is rediscovered per
  //    region.
  for (const LayoutRegion& region : layout) {
    if (region.shared) {
      continue;
    }
    TYCHE_ASSIGN_OR_RETURN(const CapId src,
                           FindMemoryCap(*monitor, caller, region.range));
    TYCHE_ASSIGN_OR_RETURN(
        const GrantResult grant,
        monitor->GrantMemory(core, src, created.handle, region.range, region.perms,
                             CapRights(CapRights::kAll), options.policy));
    loaded.granted_caps.push_back(grant.granted);
    for (const CapId rem : grant.remainders) {
      loaded.remainder_caps.push_back(rem);
    }
  }

  // 5. Cores. Shared with the share right so the domain can delegate its
  //    cores to nested children (§4.2 nesting).
  for (const CapId core_cap : options.core_caps) {
    TYCHE_RETURN_IF_ERROR(monitor
                              ->ShareUnit(core, core_cap, created.handle,
                                          CapRights(CapRights::kShare), RevocationPolicy{})
                              .status());
  }

  // 6. Entry point + measurement of flagged segments, in segment order.
  TYCHE_RETURN_IF_ERROR(
      monitor->SetEntryPoint(core, created.handle, options.base + image.entry_offset()));
  for (const ImageSegment& segment : image.segments()) {
    if (segment.measured) {
      TYCHE_RETURN_IF_ERROR(monitor->ExtendMeasurement(
          core, created.handle, AddrRange{options.base + segment.offset, segment.size}));
    }
  }

  // 7. Seal (freezes resources, finalizes the measurement).
  if (options.seal) {
    TYCHE_RETURN_IF_ERROR(monitor->Seal(core, created.handle));
  }
  return loaded;
}

Result<Digest> ComputeExpectedMeasurement(const TycheImage& image, uint64_t base,
                                          uint64_t size, const std::vector<CoreId>& cores,
                                          const std::vector<uint16_t>& devices,
                                          const std::vector<ExtraRegion>& extra) {
  TYCHE_ASSIGN_OR_RETURN(const std::vector<LayoutRegion> layout,
                         ComputeLoadLayout(image, base, size));

  Sha256 ctx;
  // Content measurements, exactly as the monitor's ExtendMeasurement folds
  // them: (base, size, SHA256(content zero-padded to size)).
  for (const ImageSegment& segment : image.segments()) {
    if (!segment.measured) {
      continue;
    }
    std::vector<uint8_t> content(segment.size, 0);
    std::copy(segment.data.begin(), segment.data.end(), content.begin());
    const Digest content_hash = Sha256::Hash(std::span<const uint8_t>(content));
    ctx.UpdateValue(base + segment.offset);
    ctx.UpdateValue(segment.size);
    ctx.Update(std::span<const uint8_t>(content_hash.bytes.data(), 32));
  }

  // Configuration hash, exactly as Monitor::Seal folds it: entry point plus
  // the canonical (kind, base, size, unit, perms) list of the domain's caps.
  ctx.Update(std::string_view("tyche-config-v1"));
  ctx.UpdateValue(base + image.entry_offset());

  struct Claim {
    uint8_t kind;
    uint64_t range_base;
    uint64_t range_size;
    uint64_t unit;
    uint8_t perms;
  };
  std::vector<Claim> claims;
  for (const LayoutRegion& region : layout) {
    claims.push_back(Claim{static_cast<uint8_t>(ResourceKind::kMemory), region.range.base,
                           region.range.size, 0, region.perms.mask});
  }
  for (const CoreId core : cores) {
    claims.push_back(Claim{static_cast<uint8_t>(ResourceKind::kCpuCore), 0, 0, core, 0});
  }
  for (const uint16_t bdf : devices) {
    claims.push_back(Claim{static_cast<uint8_t>(ResourceKind::kPciDevice), 0, 0, bdf, 0});
  }
  for (const ExtraRegion& region : extra) {
    claims.push_back(Claim{static_cast<uint8_t>(ResourceKind::kMemory), region.range.base,
                           region.range.size, 0, region.perms.mask});
  }
  std::sort(claims.begin(), claims.end(), [](const Claim& a, const Claim& b) {
    return std::tuple(a.kind, a.range_base, a.range_size, a.unit) <
           std::tuple(b.kind, b.range_base, b.range_size, b.unit);
  });
  for (const Claim& claim : claims) {
    ctx.UpdateValue(claim.kind);
    ctx.UpdateValue(claim.range_base);
    ctx.UpdateValue(claim.range_size);
    ctx.UpdateValue(claim.unit);
    ctx.UpdateValue(claim.perms);
  }
  return ctx.Finalize();
}

}  // namespace tyche
