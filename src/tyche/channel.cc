// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/channel.h"

#include "src/support/faults.h"

namespace tyche {

Result<Channel> Channel::Create(Monitor* monitor, CoreId core, AddrRange region) {
  if (!IsPageAligned(region.base) || !IsPageAligned(region.size) ||
      region.size < 2 * kPageSize) {
    return Error(ErrorCode::kInvalidArgument, "channel region must be >= 2 aligned pages");
  }
  Channel channel(monitor, region);
  Machine* machine = monitor->machine();
  TYCHE_RETURN_IF_ERROR(machine->CheckedWrite64(core, channel.head_addr_, 0));
  TYCHE_RETURN_IF_ERROR(machine->CheckedWrite64(core, channel.tail_addr_, 0));
  return channel;
}

Status Channel::Send(CoreId core, std::span<const uint8_t> message) {
  Machine* machine = monitor_->machine();
  TYCHE_ASSIGN_OR_RETURN(const uint64_t head, machine->CheckedRead64(core, head_addr_));
  TYCHE_ASSIGN_OR_RETURN(const uint64_t tail, machine->CheckedRead64(core, tail_addr_));
  const uint64_t needed = 8 + message.size();
  if (tail - head + needed > data_size_) {
    return Error(ErrorCode::kResourceExhausted, "channel full");
  }
  // Length prefix, then payload, both byte-wise modulo the ring size.
  uint64_t cursor = tail;
  uint64_t length = message.size();
  for (int i = 0; i < 8; ++i) {
    const uint8_t byte = static_cast<uint8_t>(length >> (8 * i));
    TYCHE_RETURN_IF_ERROR(machine->CheckedWrite(
        core, data_base_ + (cursor % data_size_), std::span<const uint8_t>(&byte, 1)));
    ++cursor;
  }
  for (const uint8_t byte : message) {
    TYCHE_RETURN_IF_ERROR(machine->CheckedWrite(
        core, data_base_ + (cursor % data_size_), std::span<const uint8_t>(&byte, 1)));
    ++cursor;
  }
  return machine->CheckedWrite64(core, tail_addr_, cursor);
}

Result<std::vector<uint8_t>> Channel::Recv(CoreId core) {
  Machine* machine = monitor_->machine();
  TYCHE_ASSIGN_OR_RETURN(const uint64_t head, machine->CheckedRead64(core, head_addr_));
  TYCHE_ASSIGN_OR_RETURN(const uint64_t tail, machine->CheckedRead64(core, tail_addr_));
  if (head == tail) {
    return Error(ErrorCode::kNotFound, "channel empty");
  }
  uint64_t cursor = head;
  uint64_t length = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t byte = 0;
    TYCHE_RETURN_IF_ERROR(machine->CheckedRead(core, data_base_ + (cursor % data_size_),
                                               std::span<uint8_t>(&byte, 1)));
    length |= static_cast<uint64_t>(byte) << (8 * i);
    ++cursor;
  }
  if (length > data_size_) {
    return Error(ErrorCode::kInternal, "corrupt channel length");
  }
  std::vector<uint8_t> message(length);
  for (uint64_t i = 0; i < length; ++i) {
    TYCHE_RETURN_IF_ERROR(machine->CheckedRead(core, data_base_ + (cursor % data_size_),
                                               std::span<uint8_t>(&message[i], 1)));
    ++cursor;
  }
  TYCHE_RETURN_IF_ERROR(machine->CheckedWrite64(core, head_addr_, cursor));
  return message;
}

void LossyChannel::Enqueue(std::span<const uint8_t> frame, bool duplicate) {
  Frame entry;
  entry.bytes.assign(frame.begin(), frame.end());
  entry.duplicate = duplicate;
  queue_.push_back(std::move(entry));
}

Status LossyChannel::Send(std::span<const uint8_t> frame) {
  if (FaultInjector::active()) {
    // Each site CONSUMES its trigger: the injected status is the signal that
    // the loss mode fires for THIS frame; nothing propagates to the caller.
    if (!FaultInjector::Instance().Check(faults::kChannelDrop).ok()) {
      ++dropped_;
      return OkStatus();  // frame lost in flight
    }
    if (!FaultInjector::Instance().Check(faults::kChannelDup).ok()) {
      // Bounded amplification: a dup-storm plan (repeat=true) may fire on
      // every Send(), but only max_pending_duplicates_ injected copies may
      // be queued at once; the rest are counted and discarded.
      if (pending_duplicates_ < max_pending_duplicates_) {
        Enqueue(frame, /*duplicate=*/true);
        ++pending_duplicates_;
        ++duplicated_;
      } else {
        ++dup_suppressed_;
      }
    }
    if (!FaultInjector::Instance().Check(faults::kChannelReorder).ok()) {
      if (stashed_) {
        // The delay line is single-slot; release the earlier straggler.
        Enqueue(*stashed_, /*duplicate=*/false);
      }
      stashed_.emplace(frame.begin(), frame.end());
      ++reordered_;
      return OkStatus();
    }
  }
  Enqueue(frame, /*duplicate=*/false);
  if (stashed_) {
    Enqueue(*stashed_, /*duplicate=*/false);
    stashed_.reset();
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> LossyChannel::Recv() {
  if (queue_.empty()) {
    return Error(ErrorCode::kNotFound, "no frame pending");
  }
  Frame entry = std::move(queue_.front());
  queue_.pop_front();
  if (entry.duplicate) {
    --pending_duplicates_;
  }
  return std::move(entry.bytes);
}

}  // namespace tyche
