// Copyright 2026 The Tyche Reproduction Authors.
// Confidential VMs on the isolation monitor: the largest trust-domain shape
// the paper describes ("as large as a full confidential VM", §3.1). A
// confidential VM is simply a sealed domain with exclusively granted memory
// (holding a guest kernel image), several CPU cores, and optionally
// exclusively granted devices -- there is no separate mechanism, which is
// exactly the unification argument of §3.5.

#ifndef SRC_TYCHE_CONFIDENTIAL_VM_H_
#define SRC_TYCHE_CONFIDENTIAL_VM_H_

#include <vector>

#include "src/tyche/loader.h"

namespace tyche {

struct ConfidentialVmOptions {
  CapId src_cap = kInvalidCap;
  uint64_t base = 0;
  uint64_t size = 0;
  std::vector<CoreId> cores;
  std::vector<CapId> core_caps;
  std::vector<CapId> device_caps;  // devices granted exclusively to the VM
};

class ConfidentialVm {
 public:
  // `guest_image` is the VM's (measured, confidential) guest kernel.
  static Result<ConfidentialVm> Create(Monitor* monitor, CoreId core,
                                       const TycheImage& guest_image,
                                       const ConfidentialVmOptions& options);

  DomainId domain() const { return loaded_.domain; }
  CapId handle() const { return loaded_.handle; }
  const LoadedDomain& loaded() const { return loaded_; }

  // Boots a virtual CPU: transitions the given core into the VM.
  Status StartVcpu(CoreId core) { return monitor_->Transition(core, loaded_.handle); }
  Status StopVcpu(CoreId core) { return monitor_->ReturnFromDomain(core); }

  Result<DomainAttestation> Attest(CoreId core, uint64_t nonce) {
    return monitor_->AttestDomain(core, loaded_.handle, nonce);
  }

  // True iff every byte of VM memory is exclusive (refcount 1): what a
  // customer checks before provisioning secrets.
  bool MemoryIsExclusive() const {
    return monitor_->engine().ExclusivelyOwned(loaded_.domain,
                                               AddrRange{loaded_.base, loaded_.size});
  }

 private:
  ConfidentialVm(Monitor* monitor, LoadedDomain loaded)
      : monitor_(monitor), loaded_(loaded) {}

  Monitor* monitor_ = nullptr;
  LoadedDomain loaded_;
};

}  // namespace tyche

#endif  // SRC_TYCHE_CONFIDENTIAL_VM_H_
