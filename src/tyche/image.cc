// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/image.h"

#include <algorithm>
#include <cstring>

namespace tyche {

namespace {

constexpr uint64_t kMagic = 0x5459434845494d47ULL;  // "TYCHEIMG"

void PutU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutBytes(std::vector<uint8_t>* out, std::span<const uint8_t> bytes) {
  out->insert(out->end(), bytes.begin(), bytes.end());
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return Error(ErrorCode::kOutOfRange, "truncated image");
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  Result<std::vector<uint8_t>> Bytes(uint64_t count) {
    if (pos_ + count > bytes_.size()) {
      return Error(ErrorCode::kOutOfRange, "truncated image payload");
    }
    std::vector<uint8_t> out(bytes_.begin() + static_cast<long>(pos_),
                             bytes_.begin() + static_cast<long>(pos_ + count));
    pos_ += count;
    return out;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

Status TycheImage::AddSegment(ImageSegment segment) {
  if (!IsPageAligned(segment.offset) || !IsPageAligned(segment.size) || segment.size == 0) {
    return Error(ErrorCode::kInvalidArgument, "segment must be page-aligned and non-empty");
  }
  if (segment.data.size() > segment.size) {
    return Error(ErrorCode::kInvalidArgument, "segment data larger than reserved size");
  }
  const AddrRange range{segment.offset, segment.size};
  for (const ImageSegment& existing : segments_) {
    if (range.Overlaps(AddrRange{existing.offset, existing.size})) {
      return Error(ErrorCode::kAlreadyExists, "segment overlaps existing segment");
    }
  }
  segments_.push_back(std::move(segment));
  // Keep segments sorted by offset: the loader and the offline measurement
  // rely on a canonical order.
  std::sort(segments_.begin(), segments_.end(),
            [](const ImageSegment& a, const ImageSegment& b) { return a.offset < b.offset; });
  return OkStatus();
}

uint64_t TycheImage::extent() const {
  uint64_t end = 0;
  for (const ImageSegment& segment : segments_) {
    end = std::max(end, segment.offset + segment.size);
  }
  return end;
}

std::vector<uint8_t> TycheImage::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(&out, kMagic);
  PutU64(&out, entry_offset_);
  PutU64(&out, name_.size());
  PutBytes(&out, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(name_.data()),
                                          name_.size()));
  PutU64(&out, segments_.size());
  for (const ImageSegment& segment : segments_) {
    PutU64(&out, segment.name.size());
    PutBytes(&out,
             std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(segment.name.data()),
                                      segment.name.size()));
    PutU64(&out, segment.offset);
    PutU64(&out, segment.size);
    PutU64(&out, segment.perms.mask);
    PutU64(&out, segment.ring);
    PutU64(&out, (segment.shared ? 1u : 0u) | (segment.measured ? 2u : 0u));
    PutU64(&out, segment.data.size());
    PutBytes(&out, std::span<const uint8_t>(segment.data));
  }
  return out;
}

Result<TycheImage> TycheImage::Deserialize(std::span<const uint8_t> bytes) {
  Reader reader(bytes);
  TYCHE_ASSIGN_OR_RETURN(const uint64_t magic, reader.U64());
  if (magic != kMagic) {
    return Error(ErrorCode::kInvalidArgument, "not a tyche image (bad magic)");
  }
  TycheImage image;
  TYCHE_ASSIGN_OR_RETURN(image.entry_offset_, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(const uint64_t name_len, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(const std::vector<uint8_t> name_bytes, reader.Bytes(name_len));
  image.name_.assign(name_bytes.begin(), name_bytes.end());
  TYCHE_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  for (uint64_t i = 0; i < count; ++i) {
    ImageSegment segment;
    TYCHE_ASSIGN_OR_RETURN(const uint64_t seg_name_len, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(const std::vector<uint8_t> seg_name, reader.Bytes(seg_name_len));
    segment.name.assign(seg_name.begin(), seg_name.end());
    TYCHE_ASSIGN_OR_RETURN(segment.offset, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(segment.size, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(const uint64_t perms, reader.U64());
    segment.perms = Perms(static_cast<uint8_t>(perms));
    TYCHE_ASSIGN_OR_RETURN(const uint64_t ring, reader.U64());
    segment.ring = static_cast<uint8_t>(ring);
    TYCHE_ASSIGN_OR_RETURN(const uint64_t flags, reader.U64());
    segment.shared = (flags & 1) != 0;
    segment.measured = (flags & 2) != 0;
    TYCHE_ASSIGN_OR_RETURN(const uint64_t data_len, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(segment.data, reader.Bytes(data_len));
    TYCHE_RETURN_IF_ERROR(image.AddSegment(std::move(segment)));
  }
  return image;
}

TycheImage TycheImage::MakeDemo(const std::string& name, uint64_t code_size,
                                uint64_t shared_size) {
  TycheImage image(name);
  ImageSegment code;
  code.name = "text";
  code.offset = 0;
  code.size = AlignUp(code_size, kPageSize);
  code.perms = Perms(Perms::kRWX);
  code.ring = 0;
  code.shared = false;
  code.measured = true;
  code.data.resize(code_size);
  for (uint64_t i = 0; i < code_size; ++i) {
    code.data[i] = static_cast<uint8_t>((i * 131 + name.size()) & 0xff);
  }
  (void)image.AddSegment(std::move(code));
  if (shared_size > 0) {
    ImageSegment shared;
    shared.name = "shared";
    shared.offset = AlignUp(code_size, kPageSize);
    shared.size = AlignUp(shared_size, kPageSize);
    shared.perms = Perms(Perms::kRW);
    shared.ring = 3;
    shared.shared = true;
    shared.measured = false;
    (void)image.AddSegment(std::move(shared));
  }
  image.set_entry_offset(0);
  return image;
}

}  // namespace tyche
