// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/enclave.h"

namespace tyche {

Result<Enclave> Enclave::Create(Monitor* monitor, CoreId core, const TycheImage& image,
                                const LoadOptions& options) {
  TYCHE_ASSIGN_OR_RETURN(LoadedDomain loaded, LoadImage(monitor, core, image, options));
  return Enclave(monitor, loaded);
}

Result<CapId> Enclave::FindOwnCap(AddrRange range) const {
  CapId found = kInvalidCap;
  monitor_->engine().ForEachActive([&](const Capability& cap) {
    if (cap.owner == loaded_.domain && cap.kind == ResourceKind::kMemory &&
        cap.range.Contains(range)) {
      found = cap.id;
    }
  });
  if (found == kInvalidCap) {
    return Error(ErrorCode::kNotFound, "enclave holds no capability covering range");
  }
  return found;
}

Result<Enclave> Enclave::SpawnNested(CoreId core, const TycheImage& image, uint64_t base,
                                     uint64_t size, const std::vector<CoreId>& cores,
                                     bool seal) {
  // Must be called while this enclave runs on `core`.
  if (monitor_->CurrentDomain(core) != loaded_.domain) {
    return Error(ErrorCode::kFailedPrecondition, "SpawnNested must run inside the enclave");
  }
  LoadOptions options;
  TYCHE_ASSIGN_OR_RETURN(options.src_cap, FindOwnCap(AddrRange{base, size}));
  options.base = base;
  options.size = size;
  options.cores = cores;
  for (const CoreId c : cores) {
    CapId core_cap = kInvalidCap;
    monitor_->engine().ForEachActive([&](const Capability& cap) {
      if (cap.owner == loaded_.domain && cap.kind == ResourceKind::kCpuCore &&
          cap.unit == c) {
        core_cap = cap.id;
      }
    });
    if (core_cap == kInvalidCap) {
      return Error(ErrorCode::kNotFound, "enclave does not own the requested core");
    }
    options.core_caps.push_back(core_cap);
  }
  options.seal = seal;
  options.policy = RevocationPolicy(RevocationPolicy::kObfuscate);
  TYCHE_ASSIGN_OR_RETURN(LoadedDomain loaded, LoadImage(monitor_, core, image, options));
  return Enclave(monitor_, loaded);
}

Result<CapId> Enclave::ShareWithChild(CoreId core, CapId child_handle, AddrRange range,
                                      Perms perms) {
  if (monitor_->CurrentDomain(core) != loaded_.domain) {
    return Error(ErrorCode::kFailedPrecondition,
                 "ShareWithChild must run inside the enclave");
  }
  TYCHE_ASSIGN_OR_RETURN(const CapId own, FindOwnCap(range));
  return monitor_->ShareMemory(core, own, child_handle, range, perms, CapRights{},
                               RevocationPolicy(RevocationPolicy::kObfuscate));
}

}  // namespace tyche
