// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/verifier.h"

#include "src/monitor/audit.h"
#include "src/support/journal.h"

namespace tyche {

namespace {

// Finds the channel covering `range`, if any.
const DeploymentChannel* ChannelFor(const DeploymentPolicy& policy, const AddrRange& range) {
  for (const DeploymentChannel& channel : policy.channels) {
    if (channel.range.Contains(range)) {
      return &channel;
    }
  }
  return nullptr;
}

bool ChannelNamesDomain(const DeploymentChannel& channel, uint32_t domain) {
  for (const uint32_t endpoint : channel.endpoints) {
    if (endpoint == domain) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status VerifyDeployment(std::span<const DomainAttestation> reports,
                        const DeploymentPolicy& policy) {
  // Pass 1: every memory claim must be either exclusive or a declared
  // channel with exactly the expected reference count.
  for (const DomainAttestation& report : reports) {
    for (const ResourceClaim& claim : report.resources) {
      if (claim.kind != ResourceKind::kMemory) {
        continue;
      }
      const DeploymentChannel* channel = ChannelFor(policy, claim.range);
      if (channel == nullptr) {
        if (claim.ref_count != 1) {
          return Error(ErrorCode::kPolicyViolation,
                       "undeclared sharing on a non-channel region of domain " +
                           std::to_string(report.domain));
        }
        continue;
      }
      if (!ChannelNamesDomain(*channel, report.domain)) {
        return Error(ErrorCode::kPolicyViolation,
                     "domain " + std::to_string(report.domain) +
                         " holds a channel it is not an endpoint of");
      }
      const uint32_t expected =
          static_cast<uint32_t>(channel->endpoints.size()) + channel->external_parties;
      if (claim.ref_count != expected) {
        return Error(ErrorCode::kPolicyViolation,
                     "channel refcount mismatch (eavesdropper?) on domain " +
                         std::to_string(report.domain));
      }
    }
  }
  // Pass 2: every declared channel must actually appear in each endpoint's
  // report (a missing claim means the path was never established).
  for (const DeploymentChannel& channel : policy.channels) {
    for (const uint32_t endpoint : channel.endpoints) {
      const DomainAttestation* report = nullptr;
      for (const DomainAttestation& candidate : reports) {
        if (candidate.domain == endpoint) {
          report = &candidate;
          break;
        }
      }
      if (report == nullptr) {
        return Error(ErrorCode::kPolicyViolation,
                     "no report for channel endpoint " + std::to_string(endpoint));
      }
      bool covered = false;
      for (const ResourceClaim& claim : report->resources) {
        if (claim.kind == ResourceKind::kMemory && channel.range.Contains(claim.range) &&
            claim.range.base == channel.range.base &&
            claim.range.size == channel.range.size) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Error(ErrorCode::kPolicyViolation,
                     "endpoint " + std::to_string(endpoint) +
                         " does not hold the declared channel");
      }
    }
  }
  return OkStatus();
}

Status CustomerVerifier::VerifyMonitor(const MonitorIdentity& identity, uint64_t nonce) {
  TYCHE_RETURN_IF_ERROR(verifier_.VerifyMonitor(identity, nonce));
  monitor_key_ = identity.monitor_key;
  return OkStatus();
}

Status CustomerVerifier::VerifyDomainAgainstImage(const DomainAttestation& report,
                                                  const TycheImage& image, uint64_t base,
                                                  uint64_t size,
                                                  const std::vector<CoreId>& cores,
                                                  uint64_t nonce) {
  if (!monitor_verified()) {
    return Error(ErrorCode::kFailedPrecondition, "verify the monitor first (tier 1)");
  }
  TYCHE_ASSIGN_OR_RETURN(const Digest golden,
                         ComputeExpectedMeasurement(image, base, size, cores));
  return verifier_.VerifyDomain(report, *monitor_key_, nonce, &golden);
}

Status CustomerVerifier::CheckSharingPolicy(const DomainAttestation& report,
                                            const SharingPolicy& policy) {
  for (const ResourceClaim& claim : report.resources) {
    if (claim.kind != ResourceKind::kMemory) {
      continue;
    }
    bool expected_shared = false;
    for (const AddrRange& range : policy.expected_shared) {
      if (range.Contains(claim.range)) {
        expected_shared = true;
        break;
      }
    }
    const uint32_t limit =
        expected_shared ? policy.shared_ref_count : policy.max_memory_ref_count;
    if (claim.ref_count > limit) {
      return Error(ErrorCode::kPolicyViolation,
                   "memory region shared more widely than the policy allows");
    }
  }
  return OkStatus();
}

namespace {

uint64_t LinkPrefix64(const Digest& digest) {
  uint64_t value = 0;
  for (size_t i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(digest.bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

Result<DomainAttestation> VerifySerializedReport(
    std::span<const uint8_t> bytes, const SchnorrPublicKey& monitor_key,
    uint64_t expected_nonce, const Digest* expected_measurement) {
  auto report = DeserializeAttestation(bytes);
  if (!report.ok()) {
    // Parse failure on attestation bytes is an integrity event, not a
    // format quibble: surface it as the typed mismatch the caller's retry
    // and breaker logic key on.
    return Error(ErrorCode::kAttestationMismatch,
                 "attestation failed to deserialize: " + report.status().message());
  }
  // VerifyDomain only consults its parameters; the verifier's golden/TPM
  // state is tier-1 material and unused here.
  const RemoteVerifier verifier(SchnorrPublicKey{}, Digest{}, Digest{});
  TYCHE_RETURN_IF_ERROR(verifier.VerifyDomain(*report, monitor_key,
                                              expected_nonce, expected_measurement));
  return *report;
}

std::vector<BatchReportOutcome> VerifySerializedReportBatch(
    std::span<const BatchReportInput> inputs, const SchnorrPublicKey& monitor_key) {
  std::vector<BatchReportOutcome> outcomes(inputs.size());

  // Phase 1: per-report structural checks in the same order as
  // VerifySerializedReport (parse, nonce, digest) so per-item statuses are
  // identical to the unbatched path. Reports that survive contribute their
  // signature to the shared batch.
  std::vector<SchnorrBatchItem> items;
  std::vector<size_t> item_owner;  // batch index -> input index
  items.reserve(inputs.size());
  item_owner.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto report = DeserializeAttestation(inputs[i].bytes);
    if (!report.ok()) {
      outcomes[i].status =
          Error(ErrorCode::kAttestationMismatch,
                "attestation failed to deserialize: " + report.status().message());
      continue;
    }
    if (report->nonce != inputs[i].expected_nonce) {
      outcomes[i].status = Error(ErrorCode::kAttestationMismatch, "stale report nonce");
      continue;
    }
    if (report->ComputeDigest() != report->report_digest) {
      outcomes[i].status = Error(ErrorCode::kAttestationMismatch, "report digest inconsistent");
      continue;
    }
    items.push_back(SchnorrBatchItem{monitor_key, report->report_digest, report->signature});
    item_owner.push_back(i);
    outcomes[i].report = std::move(*report);
  }

  // Phase 2: one combined signature check for every structurally sound
  // report. The outcome's invalid list attributes any forgery to its index.
  const SchnorrBatchOutcome batch = SchnorrBatchVerify(items);
  std::vector<bool> sig_ok(items.size(), true);
  for (const size_t bad : batch.invalid) {
    sig_ok[bad] = false;
  }

  // Phase 3: post-signature checks (sealed, golden measurement), still in
  // single-verify order.
  for (size_t b = 0; b < items.size(); ++b) {
    const size_t i = item_owner[b];
    if (!sig_ok[b]) {
      outcomes[i].status = Error(ErrorCode::kSignatureInvalid, "report signature invalid");
      outcomes[i].report.reset();
      continue;
    }
    const DomainAttestation& report = *outcomes[i].report;
    if (!report.sealed) {
      outcomes[i].status = Error(ErrorCode::kAttestationMismatch, "domain not sealed");
      outcomes[i].report.reset();
      continue;
    }
    if (inputs[i].expected_measurement != nullptr &&
        report.measurement != *inputs[i].expected_measurement) {
      outcomes[i].status =
          Error(ErrorCode::kAttestationMismatch, "measurement does not match golden value");
      outcomes[i].report.reset();
    }
  }
  return outcomes;
}

Status VerifyJournalSplice(std::span<const uint8_t> source_journal,
                           std::span<const uint8_t> dest_journal,
                           const SchnorrPublicKey& source_key,
                           const SchnorrPublicKey& dest_key) {
  TYCHE_ASSIGN_OR_RETURN(const ParsedJournal source, Journal::Deserialize(source_journal));
  TYCHE_RETURN_IF_ERROR(Journal::VerifyChain(source.records, source.checkpoints, source_key,
                                             /*require_covered_tail=*/true));
  TYCHE_ASSIGN_OR_RETURN(const ParsedJournal dest, Journal::Deserialize(dest_journal));
  TYCHE_RETURN_IF_ERROR(Journal::VerifyChain(dest.records, dest.checkpoints, dest_key,
                                             /*require_covered_tail=*/true));

  std::vector<const JournalRecord*> outs;
  for (const JournalRecord& record : source.records) {
    if (record.event == static_cast<uint8_t>(JournalEvent::kMigrateOut)) {
      outs.push_back(&record);
    }
  }
  std::vector<bool> matched(outs.size(), false);

  for (const JournalRecord& in : dest.records) {
    if (in.event != static_cast<uint8_t>(JournalEvent::kMigrateIn)) {
      continue;
    }
    const Digest in_digest = PackedSealDigest(in);
    bool found = false;
    for (size_t i = 0; i < outs.size(); ++i) {
      const JournalRecord& out = *outs[i];
      // The payload digest identifies the handoff (domain ids differ across
      // monitors); the aux link pins it to one specific source record.
      if (matched[i] || PackedSealDigest(out) != in_digest ||
          in.aux != LinkPrefix64(out.link)) {
        continue;
      }
      matched[i] = true;
      found = true;
      // The source must have torn the domain down AFTER handing it off:
      // otherwise it would be live on both monitors.
      bool purged = false;
      for (const JournalRecord& later : source.records) {
        if (later.seq > out.seq &&
            later.event == static_cast<uint8_t>(JournalEvent::kPurgeDomain) &&
            later.domain == out.domain) {
          purged = true;
          break;
        }
      }
      if (!purged) {
        return Error(ErrorCode::kJournalChainBroken,
                     "splice: migrated domain was never purged on the source");
      }
      break;
    }
    if (!found) {
      return Error(ErrorCode::kJournalChainBroken,
                   "splice: destination adoption has no matching source handoff");
    }
  }

  for (size_t i = 0; i < outs.size(); ++i) {
    if (!matched[i]) {
      return Error(ErrorCode::kJournalChainBroken,
                   "splice: source handoff has no matching destination adoption");
    }
  }
  return OkStatus();
}

}  // namespace tyche
