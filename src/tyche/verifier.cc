// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/verifier.h"

namespace tyche {

namespace {

// Finds the channel covering `range`, if any.
const DeploymentChannel* ChannelFor(const DeploymentPolicy& policy, const AddrRange& range) {
  for (const DeploymentChannel& channel : policy.channels) {
    if (channel.range.Contains(range)) {
      return &channel;
    }
  }
  return nullptr;
}

bool ChannelNamesDomain(const DeploymentChannel& channel, uint32_t domain) {
  for (const uint32_t endpoint : channel.endpoints) {
    if (endpoint == domain) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status VerifyDeployment(std::span<const DomainAttestation> reports,
                        const DeploymentPolicy& policy) {
  // Pass 1: every memory claim must be either exclusive or a declared
  // channel with exactly the expected reference count.
  for (const DomainAttestation& report : reports) {
    for (const ResourceClaim& claim : report.resources) {
      if (claim.kind != ResourceKind::kMemory) {
        continue;
      }
      const DeploymentChannel* channel = ChannelFor(policy, claim.range);
      if (channel == nullptr) {
        if (claim.ref_count != 1) {
          return Error(ErrorCode::kPolicyViolation,
                       "undeclared sharing on a non-channel region of domain " +
                           std::to_string(report.domain));
        }
        continue;
      }
      if (!ChannelNamesDomain(*channel, report.domain)) {
        return Error(ErrorCode::kPolicyViolation,
                     "domain " + std::to_string(report.domain) +
                         " holds a channel it is not an endpoint of");
      }
      const uint32_t expected =
          static_cast<uint32_t>(channel->endpoints.size()) + channel->external_parties;
      if (claim.ref_count != expected) {
        return Error(ErrorCode::kPolicyViolation,
                     "channel refcount mismatch (eavesdropper?) on domain " +
                         std::to_string(report.domain));
      }
    }
  }
  // Pass 2: every declared channel must actually appear in each endpoint's
  // report (a missing claim means the path was never established).
  for (const DeploymentChannel& channel : policy.channels) {
    for (const uint32_t endpoint : channel.endpoints) {
      const DomainAttestation* report = nullptr;
      for (const DomainAttestation& candidate : reports) {
        if (candidate.domain == endpoint) {
          report = &candidate;
          break;
        }
      }
      if (report == nullptr) {
        return Error(ErrorCode::kPolicyViolation,
                     "no report for channel endpoint " + std::to_string(endpoint));
      }
      bool covered = false;
      for (const ResourceClaim& claim : report->resources) {
        if (claim.kind == ResourceKind::kMemory && channel.range.Contains(claim.range) &&
            claim.range.base == channel.range.base &&
            claim.range.size == channel.range.size) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Error(ErrorCode::kPolicyViolation,
                     "endpoint " + std::to_string(endpoint) +
                         " does not hold the declared channel");
      }
    }
  }
  return OkStatus();
}

Status CustomerVerifier::VerifyMonitor(const MonitorIdentity& identity, uint64_t nonce) {
  TYCHE_RETURN_IF_ERROR(verifier_.VerifyMonitor(identity, nonce));
  monitor_key_ = identity.monitor_key;
  return OkStatus();
}

Status CustomerVerifier::VerifyDomainAgainstImage(const DomainAttestation& report,
                                                  const TycheImage& image, uint64_t base,
                                                  uint64_t size,
                                                  const std::vector<CoreId>& cores,
                                                  uint64_t nonce) {
  if (!monitor_verified()) {
    return Error(ErrorCode::kFailedPrecondition, "verify the monitor first (tier 1)");
  }
  TYCHE_ASSIGN_OR_RETURN(const Digest golden,
                         ComputeExpectedMeasurement(image, base, size, cores));
  return verifier_.VerifyDomain(report, *monitor_key_, nonce, &golden);
}

Status CustomerVerifier::CheckSharingPolicy(const DomainAttestation& report,
                                            const SharingPolicy& policy) {
  for (const ResourceClaim& claim : report.resources) {
    if (claim.kind != ResourceKind::kMemory) {
      continue;
    }
    bool expected_shared = false;
    for (const AddrRange& range : policy.expected_shared) {
      if (range.Contains(claim.range)) {
        expected_shared = true;
        break;
      }
    }
    const uint32_t limit =
        expected_shared ? policy.shared_ref_count : policy.max_memory_ref_count;
    if (claim.ref_count > limit) {
      return Error(ErrorCode::kPolicyViolation,
                   "memory region shared more widely than the policy allows");
    }
  }
  return OkStatus();
}

}  // namespace tyche
