// Copyright 2026 The Tyche Reproduction Authors.
// libtyche's loader: turns a TycheImage into a sealed trust domain through
// the monitor's isolation API, and computes the golden measurement offline
// so remote verifiers can check the resulting attestation (§4.2).

#ifndef SRC_TYCHE_LOADER_H_
#define SRC_TYCHE_LOADER_H_

#include <vector>

#include "src/monitor/monitor.h"
#include "src/tyche/image.h"

namespace tyche {

struct LoadOptions {
  // Caller's memory capability covering the region. kInvalidCap = discover
  // automatically (the loader finds the caller's active capability covering
  // each region; grants split capabilities, so discovery per region is the
  // robust default).
  CapId src_cap = kInvalidCap;
  uint64_t base = 0;            // physical load base (page-aligned)
  uint64_t size = 0;            // total memory for the domain (>= image extent)
  std::vector<CoreId> cores;    // cores to share with the domain
  std::vector<CapId> core_caps; // caller's capabilities for those cores
  bool seal = true;
  // Cleanup obligation attached to the confidential grants.
  RevocationPolicy policy = RevocationPolicy(RevocationPolicy::kObfuscate);
};

struct LoadedDomain {
  DomainId domain = kInvalidDomain;
  CapId handle = kInvalidCap;
  uint64_t base = 0;
  uint64_t size = 0;
  // Capabilities the caller keeps for the shared segments (source side).
  std::vector<CapId> shared_caps;
  // Caller's remainder capabilities after the confidential grants.
  std::vector<CapId> remainder_caps;
  // Capabilities now owned by the loaded domain (granted regions).
  std::vector<CapId> granted_caps;
};

// One region of the computed load layout.
struct LayoutRegion {
  AddrRange range;  // absolute physical range
  Perms perms;
  bool shared = false;
  bool heap = false;  // gap region not described by any segment (granted RWX)
};

// Deterministic layout shared by the loader and the offline verifier:
// shared segments stay shared; confidential segments and the remaining gaps
// are granted exclusively.
Result<std::vector<LayoutRegion>> ComputeLoadLayout(const TycheImage& image, uint64_t base,
                                                    uint64_t size);

// Loads `image` as a new trust domain on behalf of the domain currently
// running on `core`.
Result<LoadedDomain> LoadImage(Monitor* monitor, CoreId core, const TycheImage& image,
                               const LoadOptions& options);

// Finds an active memory capability owned by `domain` whose range contains
// `range` (capability handle discovery, used by libtyche helpers).
Result<CapId> FindMemoryCap(const Monitor& monitor, DomainId domain, AddrRange range);

// Same for unit resources (cores, devices).
Result<CapId> FindUnitCap(const Monitor& monitor, DomainId domain, ResourceKind kind,
                          uint64_t unit);

// Offline golden measurement: exactly what the monitor will report for a
// domain loaded with LoadImage(image, options). Runs entirely outside the
// machine (customer side).
// Memory shared into the domain after loading but before sealing (e.g.
// attested channel pages).
struct ExtraRegion {
  AddrRange range;
  Perms perms;
};

// `devices` lists PCI functions granted before sealing (BDF values), e.g.
// for confidential VMs with passthrough devices; `extra` lists post-load,
// pre-seal shared regions.
Result<Digest> ComputeExpectedMeasurement(const TycheImage& image, uint64_t base,
                                          uint64_t size, const std::vector<CoreId>& cores,
                                          const std::vector<uint16_t>& devices = {},
                                          const std::vector<ExtraRegion>& extra = {});

}  // namespace tyche

#endif  // SRC_TYCHE_LOADER_H_
