// Copyright 2026 The Tyche Reproduction Authors.
// The TycheImage format: libtyche's loadable unit (§4.2).
//
// The paper's libtyche "loads an ELF binary as a domain using a manifest
// that describes which segments should run in which privilege ring, whether
// they are shared or confidential, and if their content is part of the
// attestation or not", and "supports generating a binary's hash offline to
// be compared with the attestation provided by Tyche". We substitute a
// self-contained binary format for ELF (see DESIGN.md): same manifest
// semantics, no external parser dependency.

#ifndef SRC_TYCHE_IMAGE_H_
#define SRC_TYCHE_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/hw/access.h"
#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

// One loadable segment. Offsets are relative to the domain's load base and
// must be page-aligned and non-overlapping.
struct ImageSegment {
  std::string name;
  uint64_t offset = 0;     // page-aligned placement offset
  uint64_t size = 0;       // page-aligned reserved size (>= data.size())
  Perms perms;             // access the domain gets
  uint8_t ring = 0;        // privilege ring the segment runs in (0 or 3)
  bool shared = false;     // shared with the creator (true) or confidential
  bool measured = false;   // folded into the attestation measurement
  std::vector<uint8_t> data;  // initial content (zero-padded to size)
};

class TycheImage {
 public:
  TycheImage() = default;
  explicit TycheImage(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  uint64_t entry_offset() const { return entry_offset_; }
  void set_entry_offset(uint64_t offset) { entry_offset_ = offset; }

  // Appends a segment; fails if it is unaligned or overlaps an existing one.
  Status AddSegment(ImageSegment segment);

  const std::vector<ImageSegment>& segments() const { return segments_; }

  // Total extent: the end offset of the last segment.
  uint64_t extent() const;

  // --- Wire format (magic + count + per-segment header + payload) ---
  std::vector<uint8_t> Serialize() const;
  static Result<TycheImage> Deserialize(std::span<const uint8_t> bytes);

  // Convenience builders for the examples/tests: a minimal image with one
  // measured confidential RWX code segment of `code_size` bytes filled with
  // a deterministic pattern, and optionally one shared RW buffer segment.
  static TycheImage MakeDemo(const std::string& name, uint64_t code_size,
                             uint64_t shared_size);

 private:
  std::string name_;
  uint64_t entry_offset_ = 0;
  std::vector<ImageSegment> segments_;
};

}  // namespace tyche

#endif  // SRC_TYCHE_IMAGE_H_
