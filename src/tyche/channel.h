// Copyright 2026 The Tyche Reproduction Authors.
// Attested shared-memory channels: the "secured communication channels"
// enclaves build from exclusively-owned shared pages (§4.2). A channel is a
// single-producer ring buffer in a memory region shared between exactly two
// domains; VerifyPrivate() checks the attested property (reference count 2).

#ifndef SRC_TYCHE_CHANNEL_H_
#define SRC_TYCHE_CHANNEL_H_

#include <deque>
#include <optional>
#include <vector>

#include "src/monitor/migration.h"
#include "src/monitor/monitor.h"

namespace tyche {

class Channel {
 public:
  // Lays a ring buffer over `region`. The region must be RW for both
  // endpoints and at least 3 pages (head, tail, data). Construction zeroes
  // the control words through `core` (so the caller must currently have
  // write access).
  static Result<Channel> Create(Monitor* monitor, CoreId core, AddrRange region);

  // Sends one message (length-prefixed). Fails when the ring is full.
  Status Send(CoreId core, std::span<const uint8_t> message);

  // Receives one message; kNotFound when the ring is empty.
  Result<std::vector<uint8_t>> Recv(CoreId core);

  // Judiciary check: the channel region is visible to exactly `expected`
  // domains (2 for a private pair).
  bool VerifyRefCount(uint32_t expected) const {
    return monitor_->engine().MemoryRefCount(region_) == expected;
  }

  const AddrRange& region() const { return region_; }
  uint64_t capacity() const { return data_size_; }

 private:
  Channel(Monitor* monitor, AddrRange region)
      : monitor_(monitor),
        region_(region),
        head_addr_(region.base),
        tail_addr_(region.base + 8),
        data_base_(region.base + kPageSize),
        data_size_(region.size - kPageSize) {}

  Monitor* monitor_ = nullptr;
  AddrRange region_;
  uint64_t head_addr_;  // read cursor (bytes consumed)
  uint64_t tail_addr_;  // write cursor (bytes produced)
  uint64_t data_base_;
  uint64_t data_size_;
};

// The simulated lossy wire between two monitors during a live migration.
// With no fault plan armed it delivers every frame in order (so clean runs
// and fault-counting runs behave identically); under an armed plan the
// channel.* fault sites CONSUME their trigger to drop, duplicate, or delay
// one frame. The migration protocol's retry rounds are what make a
// migration survive these — that is the property the sweep asserts.
class LossyChannel : public MigrationTransport {
 public:
  Status Send(std::span<const uint8_t> frame) override;
  Result<std::vector<uint8_t>> Recv() override;

  // Telemetry for tests: how often each loss mode actually fired.
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t reordered() const { return reordered_; }
  // Duplicates suppressed by the amplification bound.
  uint64_t dup_suppressed() const { return dup_suppressed_; }

  size_t pending() const { return queue_.size() + (stashed_ ? 1 : 0); }

  // Amplification bound: at most this many injected duplicates may sit in
  // the receive queue at once. Without it a repeating `channel.dup` plan
  // grows the queue by one extra frame per Send() forever — the receiver
  // pays unbounded memory and drain work for a storm it never asked for.
  // With the bound, pending() <= frames sent (and not dropped) + this cap.
  void set_max_pending_duplicates(uint64_t cap) { max_pending_duplicates_ = cap; }
  uint64_t max_pending_duplicates() const { return max_pending_duplicates_; }

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    bool duplicate = false;  // injected copy, counted against the dup bound
  };

  void Enqueue(std::span<const uint8_t> frame, bool duplicate);

  std::deque<Frame> queue_;
  // A reordered frame waits here and is delivered AFTER the next frame that
  // passes through (a one-slot delay line). If no later Send() flushes it,
  // the next retry round's re-send does — delivery is delayed, never lost.
  std::optional<std::vector<uint8_t>> stashed_;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t reordered_ = 0;
  uint64_t dup_suppressed_ = 0;
  uint64_t pending_duplicates_ = 0;
  uint64_t max_pending_duplicates_ = 8;
};

}  // namespace tyche

#endif  // SRC_TYCHE_CHANNEL_H_
