// Copyright 2026 The Tyche Reproduction Authors.
// Attested shared-memory channels: the "secured communication channels"
// enclaves build from exclusively-owned shared pages (§4.2). A channel is a
// single-producer ring buffer in a memory region shared between exactly two
// domains; VerifyPrivate() checks the attested property (reference count 2).

#ifndef SRC_TYCHE_CHANNEL_H_
#define SRC_TYCHE_CHANNEL_H_

#include <vector>

#include "src/monitor/monitor.h"

namespace tyche {

class Channel {
 public:
  // Lays a ring buffer over `region`. The region must be RW for both
  // endpoints and at least 3 pages (head, tail, data). Construction zeroes
  // the control words through `core` (so the caller must currently have
  // write access).
  static Result<Channel> Create(Monitor* monitor, CoreId core, AddrRange region);

  // Sends one message (length-prefixed). Fails when the ring is full.
  Status Send(CoreId core, std::span<const uint8_t> message);

  // Receives one message; kNotFound when the ring is empty.
  Result<std::vector<uint8_t>> Recv(CoreId core);

  // Judiciary check: the channel region is visible to exactly `expected`
  // domains (2 for a private pair).
  bool VerifyRefCount(uint32_t expected) const {
    return monitor_->engine().MemoryRefCount(region_) == expected;
  }

  const AddrRange& region() const { return region_; }
  uint64_t capacity() const { return data_size_; }

 private:
  Channel(Monitor* monitor, AddrRange region)
      : monitor_(monitor),
        region_(region),
        head_addr_(region.base),
        tail_addr_(region.base + 8),
        data_base_(region.base + kPageSize),
        data_size_(region.size - kPageSize) {}

  Monitor* monitor_ = nullptr;
  AddrRange region_;
  uint64_t head_addr_;  // read cursor (bytes consumed)
  uint64_t tail_addr_;  // write cursor (bytes produced)
  uint64_t data_base_;
  uint64_t data_size_;
};

}  // namespace tyche

#endif  // SRC_TYCHE_CHANNEL_H_
