// Copyright 2026 The Tyche Reproduction Authors.
// The customer-side verification workflow (§2.1 / Figure 2): before handing
// sensitive data to software running on an untrusted machine, the customer
//   1. verifies the machine runs the golden isolation monitor (tier 1),
//   2. verifies each participating domain: identity (golden measurement
//      computed offline from the image) and isolation configuration
//      (reference counts expose every sharing relationship),
//   3. only then provisions its secrets.

#ifndef SRC_TYCHE_VERIFIER_H_
#define SRC_TYCHE_VERIFIER_H_

#include <optional>

#include "src/monitor/attestation.h"
#include "src/tyche/loader.h"

namespace tyche {

// Policy the customer applies to a verified domain report.
struct SharingPolicy {
  // Every memory resource must have ref_count <= this.
  uint32_t max_memory_ref_count = 1;
  // Ranges that ARE expected to be shared (e.g. the channel to the GPU);
  // these may have ref_count up to `shared_ref_count`.
  std::vector<AddrRange> expected_shared;
  uint32_t shared_ref_count = 2;
};

// A multi-domain deployment policy (§4.2: "extend attestation to
// multi-domain deployments with the insurance that all communication paths
// are secured and attested"). The deployment is a set of verified domain
// reports plus the channels the customer EXPECTS between them; verification
// checks that the reports agree with each other:
//   - every declared channel appears in BOTH endpoints' reports, with a
//     reference count equal to the number of endpoints (no eavesdropper);
//   - no undeclared cross-domain sharing exists anywhere in the set;
//   - memory not on any channel is exclusive to its domain.
struct DeploymentChannel {
  AddrRange range;
  std::vector<uint32_t> endpoints;  // domain ids of the report set
  // Extra parties outside the report set allowed on this range (e.g. the
  // untrusted OS on a network buffer). Counted into the expected refcount.
  uint32_t external_parties = 0;
};

struct DeploymentPolicy {
  std::vector<DeploymentChannel> channels;
};

// Cross-checks a set of already-signature-verified reports against the
// deployment policy. Returns kPolicyViolation with a message naming the
// first inconsistency.
Status VerifyDeployment(std::span<const DomainAttestation> reports,
                        const DeploymentPolicy& policy);

class CustomerVerifier {
 public:
  CustomerVerifier(SchnorrPublicKey trusted_tpm_key, Digest golden_firmware,
                   Digest golden_monitor)
      : verifier_(trusted_tpm_key, golden_firmware, golden_monitor) {}

  // Tier 1. On success caches the monitor key for tier-2 checks.
  Status VerifyMonitor(const MonitorIdentity& identity, uint64_t nonce);

  // Tier 2 with code identity: recomputes the golden measurement offline
  // from the image + load parameters.
  Status VerifyDomainAgainstImage(const DomainAttestation& report, const TycheImage& image,
                                  uint64_t base, uint64_t size,
                                  const std::vector<CoreId>& cores, uint64_t nonce);

  // Checks the isolation configuration of a verified report against a
  // sharing policy.
  static Status CheckSharingPolicy(const DomainAttestation& report,
                                   const SharingPolicy& policy);

  bool monitor_verified() const { return monitor_key_.has_value(); }
  const SchnorrPublicKey& monitor_key() const { return *monitor_key_; }

 private:
  RemoteVerifier verifier_;
  std::optional<SchnorrPublicKey> monitor_key_;
};

// Offline check that two monitors' exported journals splice into ONE
// verifiable history across live migrations (DESIGN.md §11). After both
// chains verify under their monitors' keys, every handoff must pair up:
//   - each kMigrateIn in the destination journal matches exactly one source
//     kMigrateOut carrying the same packed payload digest, and its aux field
//     equals the first 8 bytes of that kMigrateOut record's chain link (the
//     destination adopted THIS point of the source history, not a replay of
//     an older one);
//   - the source journal shows the migrated domain purged AFTER the
//     handoff (the domain lives on exactly one monitor);
//   - no kMigrateOut is left unmatched (a domain that left one monitor
//     must have arrived somewhere in the pair).
// Violations return kJournalChainBroken (exit code 3 in journal_verify);
// bad signatures surface as kJournalSignatureInvalid from the per-journal
// chain verification.
// One-shot wire-to-verdict check for a serialized tier-2 report: hardened
// deserialization, then signature / digest / nonce / (optional) golden
// measurement verification under the already-verified monitor key. A report
// tampered in transit — truncated, bit-flipped, replayed under a stale
// nonce — fails here with a typed kAttestationMismatch / kSignatureInvalid
// and MUST NOT be cached or acted on. This is the fleet front end's tier-2
// entry point (src/fleet/frontend.cc).
Result<DomainAttestation> VerifySerializedReport(
    std::span<const uint8_t> bytes, const SchnorrPublicKey& monitor_key,
    uint64_t expected_nonce, const Digest* expected_measurement);

// One report inside a batched verification: the serialized bytes plus the
// per-request expectations VerifySerializedReport would receive.
struct BatchReportInput {
  std::span<const uint8_t> bytes;
  uint64_t expected_nonce = 0;
  const Digest* expected_measurement = nullptr;
};

struct BatchReportOutcome {
  Status status = OkStatus();
  std::optional<DomainAttestation> report;  // set iff status is ok
};

// Batched tier-2 verification: the Schnorr signatures of all structurally
// sound reports are checked with ONE SchnorrBatchVerify (a single
// randomized-combiner multi-exponentiation in the all-valid case), instead
// of two exponentiations per report. Per-report verdicts are exactly what
// VerifySerializedReport would return — a forged signature anywhere in the
// batch drops the crypto layer to per-signature fallback, which attributes
// the failure to the culprit index while the rest of the batch still
// verifies. Returns one outcome per input, in order.
std::vector<BatchReportOutcome> VerifySerializedReportBatch(
    std::span<const BatchReportInput> inputs, const SchnorrPublicKey& monitor_key);

Status VerifyJournalSplice(std::span<const uint8_t> source_journal,
                           std::span<const uint8_t> dest_journal,
                           const SchnorrPublicKey& source_key,
                           const SchnorrPublicKey& dest_key);

}  // namespace tyche

#endif  // SRC_TYCHE_VERIFIER_H_
