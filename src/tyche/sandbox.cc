// Copyright 2026 The Tyche Reproduction Authors.

#include "src/tyche/sandbox.h"

#include "src/tyche/loader.h"

namespace tyche {

Result<Sandbox> Sandbox::Create(Monitor* monitor, CoreId core, const std::string& name,
                                const SandboxOptions& options) {
  if (options.cores.size() != options.core_caps.size()) {
    return Error(ErrorCode::kInvalidArgument, "cores and core_caps must align");
  }
  TYCHE_ASSIGN_OR_RETURN(const CreateDomainResult created,
                         monitor->CreateDomain(core, name));

  const DomainId caller = monitor->CurrentDomain(core);
  std::vector<CapId> region_caps;
  for (const SandboxRegion& region : options.regions) {
    CapId src = options.src_cap;
    if (src == kInvalidCap) {
      TYCHE_ASSIGN_OR_RETURN(src, FindMemoryCap(*monitor, caller, region.range));
    }
    TYCHE_ASSIGN_OR_RETURN(
        const CapId cap,
        monitor->ShareMemory(core, src, created.handle, region.range, region.perms,
                             CapRights{},
                             RevocationPolicy(RevocationPolicy::kFlushCache)));
    region_caps.push_back(cap);
  }
  for (const CapId core_cap : options.core_caps) {
    TYCHE_RETURN_IF_ERROR(
        monitor->ShareUnit(core, core_cap, created.handle, CapRights{}, RevocationPolicy{})
            .status());
  }
  for (const CapId device_cap : options.device_caps) {
    // Devices are granted: DMA must be confined to the sandbox's view.
    TYCHE_RETURN_IF_ERROR(monitor
                              ->GrantUnit(core, device_cap, created.handle, CapRights{},
                                          RevocationPolicy{})
                              .status());
  }
  TYCHE_RETURN_IF_ERROR(monitor->SetEntryPoint(core, created.handle, options.entry));
  if (options.seal) {
    TYCHE_RETURN_IF_ERROR(monitor->Seal(core, created.handle));
  }
  return Sandbox(monitor, created.domain, created.handle, std::move(region_caps));
}

}  // namespace tyche
