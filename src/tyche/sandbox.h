// Copyright 2026 The Tyche Reproduction Authors.
// Sandboxes (§4.2 "user and kernel compartments"): trust domains that
// confine a component to a SUBSET of the creator's resources. Unlike an
// enclave, the creator keeps access (regions are shared, not granted) and
// the domain usually stays unsealed so the creator can adjust its policy.
//
//  - A user sandbox confines an untrusted library inside an application:
//    RX view of its code, RW scratch, nothing else.
//  - A kernel sandbox confines an untrusted driver: the kernel shares the
//    driver code/data and GRANTS the device, so driver DMA is checked
//    against the sandbox's resources instead of the kernel's.

#ifndef SRC_TYCHE_SANDBOX_H_
#define SRC_TYCHE_SANDBOX_H_

#include <string>
#include <vector>

#include "src/monitor/monitor.h"

namespace tyche {

struct SandboxRegion {
  AddrRange range;
  Perms perms;
};

struct SandboxOptions {
  CapId src_cap = kInvalidCap;          // creator's memory capability
  std::vector<SandboxRegion> regions;   // shared views (first must contain entry)
  uint64_t entry = 0;                   // entry point (must be executable)
  std::vector<CoreId> cores;
  std::vector<CapId> core_caps;
  std::vector<CapId> device_caps;       // devices GRANTED to the sandbox
  bool seal = false;
};

class Sandbox {
 public:
  static Result<Sandbox> Create(Monitor* monitor, CoreId core, const std::string& name,
                                const SandboxOptions& options);

  DomainId domain() const { return domain_; }
  CapId handle() const { return handle_; }
  const std::vector<CapId>& region_caps() const { return region_caps_; }

  Status Enter(CoreId core) { return monitor_->Transition(core, handle_); }
  Status Exit(CoreId core) { return monitor_->ReturnFromDomain(core); }

  // Revokes one shared region (e.g. after the library call returns) --
  // policy adjustment without tearing the sandbox down.
  Status RevokeRegion(CoreId core, CapId region_cap) {
    return monitor_->Revoke(core, region_cap);
  }

  // Tears the sandbox down entirely.
  Status Destroy(CoreId core) { return monitor_->DestroyDomain(core, handle_); }

 private:
  Sandbox(Monitor* monitor, DomainId domain, CapId handle, std::vector<CapId> region_caps)
      : monitor_(monitor), domain_(domain), handle_(handle),
        region_caps_(std::move(region_caps)) {}

  Monitor* monitor_ = nullptr;
  DomainId domain_ = kInvalidDomain;
  CapId handle_ = kInvalidCap;
  std::vector<CapId> region_caps_;
};

}  // namespace tyche

#endif  // SRC_TYCHE_SANDBOX_H_
