// Copyright 2026 The Tyche Reproduction Authors.
// Tyche-enclaves (§4.2): confidential, attestable trust domains built on the
// monitor API by libtyche. "Notable improvements over SGX ones":
//   1. untrusted memory must be EXPLICITLY shared (no accidental leakage
//      through an implicitly accessible host address space);
//   2. arbitrary layout and number of enclaves in the same process
//      (no single reserved enclave range, physical addresses are reusable);
//   3. nesting and sharing among enclaves: an enclave can map libtyche and
//      spawn nested enclaves, and share exclusively owned pages with them to
//      create secured communication channels.

#ifndef SRC_TYCHE_ENCLAVE_H_
#define SRC_TYCHE_ENCLAVE_H_

#include <memory>

#include "src/tyche/loader.h"

namespace tyche {

class Enclave {
 public:
  // Loads `image` as a sealed enclave. The caller (current domain on `core`)
  // provides the memory and cores through `options`.
  static Result<Enclave> Create(Monitor* monitor, CoreId core, const TycheImage& image,
                                const LoadOptions& options);

  DomainId domain() const { return loaded_.domain; }
  CapId handle() const { return loaded_.handle; }
  uint64_t base() const { return loaded_.base; }
  uint64_t size() const { return loaded_.size; }
  const LoadedDomain& loaded() const { return loaded_; }

  // Synchronous enclave call: transition in; the caller resumes after the
  // enclave returns (ReturnFromDomain / Exit).
  Status Enter(CoreId core) { return monitor_->Transition(core, loaded_.handle); }
  Status Exit(CoreId core) { return monitor_->ReturnFromDomain(core); }

  // Arms and uses the hardware fast path (VMFUNC-style).
  Status EnableFastCalls(CoreId core) {
    return monitor_->RegisterFastTransition(core, loaded_.handle);
  }
  Status FastEnter(CoreId core) { return monitor_->FastTransition(core, loaded_.domain); }
  Status FastExit(CoreId core) { return monitor_->FastReturn(core); }

  Result<DomainAttestation> Attest(CoreId core, uint64_t nonce) {
    return monitor_->AttestDomain(core, loaded_.handle, nonce);
  }

  // --- Operations executed FROM INSIDE the enclave (the enclave must be the
  // domain currently running on `core`); this is the "map libtyche in their
  // domains" story. ---

  // Spawns a nested enclave carved out of this enclave's own memory. With
  // `seal` false the child is left open so the parent can share additional
  // pages (ShareWithChild) before sealing it through the monitor.
  Result<Enclave> SpawnNested(CoreId core, const TycheImage& image, uint64_t base,
                              uint64_t size, const std::vector<CoreId>& cores,
                              bool seal = true);

  // Shares exclusively-owned pages of this (sealed) enclave with a domain it
  // created -- the secured communication channel of §4.2.
  Result<CapId> ShareWithChild(CoreId core, CapId child_handle, AddrRange range,
                               Perms perms);

  // Finds this enclave's active memory capability containing `range`.
  Result<CapId> FindOwnCap(AddrRange range) const;

  Monitor* monitor() { return monitor_; }

 private:
  Enclave(Monitor* monitor, LoadedDomain loaded) : monitor_(monitor), loaded_(loaded) {}

  Monitor* monitor_ = nullptr;
  LoadedDomain loaded_;
};

}  // namespace tyche

#endif  // SRC_TYCHE_ENCLAVE_H_
