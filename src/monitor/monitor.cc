// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/monitor.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "src/capability/graph_export.h"
#include "src/crypto/authenticated.h"
#include "src/monitor/pmp_backend.h"
#include "src/monitor/vtx_backend.h"
#include "src/support/faults.h"
#include "src/support/locking.h"
#include "src/support/log.h"

namespace tyche {

const char* ApiOpName(ApiOp op) {
  switch (op) {
    case ApiOp::kCreateDomain:
      return "create_domain";
    case ApiOp::kSetEntryPoint:
      return "set_entry_point";
    case ApiOp::kShareMemory:
      return "share_memory";
    case ApiOp::kGrantMemory:
      return "grant_memory";
    case ApiOp::kShareUnit:
      return "share_unit";
    case ApiOp::kGrantUnit:
      return "grant_unit";
    case ApiOp::kRevoke:
      return "revoke";
    case ApiOp::kExtendMeasurement:
      return "extend_measurement";
    case ApiOp::kSeal:
      return "seal";
    case ApiOp::kAttestDomain:
      return "attest_domain";
    case ApiOp::kEnumerate:
      return "enumerate";
    case ApiOp::kTransition:
      return "transition";
    case ApiOp::kReturn:
      return "return";
    case ApiOp::kRegisterFastTransition:
      return "register_fast_transition";
    case ApiOp::kFastTransition:
      return "fast_transition";
    case ApiOp::kDestroyDomain:
      return "destroy_domain";
    case ApiOp::kRouteInterrupt:
      return "route_interrupt";
    case ApiOp::kTakeInterrupt:
      return "take_interrupt";
    case ApiOp::kSetTransitionPolicy:
      return "set_transition_policy";
    case ApiOp::kSealData:
      return "seal_data";
    case ApiOp::kUnsealData:
      return "unseal_data";
    case ApiOp::kOpCount:
      break;
  }
  return "?";
}

const char* CapEffectKindName(CapEffect::Kind kind) {
  switch (kind) {
    case CapEffect::Kind::kMapMemory:
      return "map";
    case CapEffect::Kind::kUnmapMemory:
      return "unmap";
    case CapEffect::Kind::kZeroMemory:
      return "zero";
    case CapEffect::Kind::kFlushCache:
      return "flush";
    case CapEffect::Kind::kAttachUnit:
      return "attach";
    case CapEffect::Kind::kDetachUnit:
      return "detach";
  }
  return "?";
}

Monitor::Monitor(Machine* machine, AddrRange monitor_range, FrameAllocator metadata_pool,
                 SchnorrKeyPair key)
    : machine_(machine),
      monitor_range_(monitor_range),
      metadata_pool_(metadata_pool),
      key_(key) {
  if (machine_->arch() == IsaArch::kX86_64) {
    backend_ = std::make_unique<VtxBackend>(machine_, &engine_, &metadata_pool_);
  } else {
    backend_ = std::make_unique<PmpBackend>(machine_, &engine_, monitor_range_);
  }
  watchdog_.set_backend(backend_.get());
  call_stacks_.resize(machine_->num_cores());
  active_spans_.resize(machine_->num_cores(), 0);

  // The journal's ticks come from the simulated cycle account; checkpoints
  // are signed under the monitor's attestation key, binding the history to
  // the same identity as domain attestations.
  audit_.journal().set_tick_source([this] { return machine_->cycles().cycles(); });
  audit_.journal().set_signer(
      [this](const Digest& digest) { return SchnorrSign(key_.priv, digest); });

  // Sealing root: bound to the monitor's (measurement-derived) identity key,
  // so blobs only open under the same monitor image.
  uint8_t key_bytes[8];
  std::memcpy(key_bytes, &key_.priv.x, sizeof(key_bytes));
  const std::string_view label = "tyche-sealing-root-v1";
  sealing_root_ = HmacSha256(
      std::span<const uint8_t>(key_bytes, sizeof(key_bytes)),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(label.data()),
                               label.size()));

  RegisterMetrics();
}

namespace {

// Bridges a LatencyHistogram into the registry's neutral snapshot shape,
// trimming trailing empty buckets so the export stays compact.
HistogramSnapshot ToHistogramSnapshot(const LatencyHistogram& histogram) {
  HistogramSnapshot snapshot;
  snapshot.count = histogram.count();
  snapshot.sum = histogram.sum();
  size_t highest = 0;
  bool any = false;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (histogram.buckets()[i] != 0) {
      highest = i;
      any = true;
    }
  }
  if (any) {
    for (size_t i = 0; i <= highest; ++i) {
      snapshot.buckets.emplace_back(LatencyHistogram::BucketUpperBound(i),
                                    histogram.buckets()[i]);
    }
  }
  return snapshot;
}

}  // namespace

void Monitor::RegisterMetrics() {
  // Native striped counters: the hot-path signals the dispatcher bumps.
  for (size_t op = 0; op < static_cast<size_t>(ApiOp::kOpCount); ++op) {
    const MetricLabels labels = {{"op", ApiOpName(static_cast<ApiOp>(op))}};
    counters_.api_calls[op] = metrics_.AddCounter(
        "tyche_api_calls_total", "ABI calls dispatched, by operation", labels);
    metrics_.AddHistogram(
        "tyche_dispatch_latency_ns",
        "Monitor-side wall-clock latency per ABI call (log2 buckets)", labels,
        [this, op] { return ToHistogramSnapshot(telemetry_.OpHistogram(op)); });
  }
  counters_.transitions = metrics_.AddCounter(
      "tyche_transitions_total", "Inter-domain control transfers, by path",
      {{"path", "trap"}});
  counters_.fast_transitions = metrics_.AddCounter(
      "tyche_transitions_total", "Inter-domain control transfers, by path",
      {{"path", "fast"}});
  counters_.shares =
      metrics_.AddCounter("tyche_capability_ops_total",
                          "Successful capability-graph mutations", {{"kind", "share"}});
  counters_.grants =
      metrics_.AddCounter("tyche_capability_ops_total",
                          "Successful capability-graph mutations", {{"kind", "grant"}});
  counters_.revokes =
      metrics_.AddCounter("tyche_capability_ops_total",
                          "Successful capability-graph mutations", {{"kind", "revoke"}});
  counters_.revocations_cascaded = metrics_.AddCounter(
      "tyche_revocations_cascaded_total",
      "Capabilities revoked transitively by cascading revocation");
  counters_.recoveries = metrics_.AddCounter(
      "tyche_recoveries_total",
      "Crash recoveries survived; the only counter that crosses Recover()");
  constexpr CapEffect::Kind kKinds[] = {
      CapEffect::Kind::kMapMemory,  CapEffect::Kind::kUnmapMemory,
      CapEffect::Kind::kZeroMemory, CapEffect::Kind::kFlushCache,
      CapEffect::Kind::kAttachUnit, CapEffect::Kind::kDetachUnit,
  };
  for (const CapEffect::Kind kind : kKinds) {
    counters_.effects_by_kind[static_cast<size_t>(kind)] = metrics_.AddCounter(
        "tyche_effects_total",
        "Hardware obligations produced by capability operations, by effect kind",
        {{"kind", CapEffectKindName(kind)}});
  }

  // Pull callbacks for signals owned elsewhere. All of these are read under
  // the api lock at export time (ExportMetrics quiesces like DumpTelemetry),
  // so plain-field sources (backend stats, domain table) are safe.
  struct BackendField {
    const char* op;
    uint64_t BackendStats::*field;
  };
  static constexpr BackendField kBackendFields[] = {
      {"memory_syncs", &BackendStats::memory_syncs},
      {"pages_mapped", &BackendStats::pages_mapped},
      {"pages_unmapped", &BackendStats::pages_unmapped},
      {"pages_protected", &BackendStats::pages_protected},
      {"pmp_recompiles", &BackendStats::pmp_recompiles},
      {"pmp_entry_writes", &BackendStats::pmp_entry_writes},
      {"tlb_shootdowns", &BackendStats::tlb_shootdowns},
      {"iommu_updates", &BackendStats::iommu_updates},
      {"core_binds", &BackendStats::core_binds},
      {"fast_binds", &BackendStats::fast_binds},
  };
  for (const BackendField& field : kBackendFields) {
    metrics_.AddCallback(
        "tyche_backend_ops_total",
        "Hardware projection operations performed by the platform backend", true,
        {{"backend", backend_->name()}, {"op", field.op}},
        [this, ptr = field.field] { return backend_->stats().*ptr; });
  }
  metrics_.AddCallback("tyche_journal_records", "Audit-journal chain length (records)",
                       false, {}, [this] { return audit_.journal().size(); });
  metrics_.AddCallback("tyche_journal_checkpoints",
                       "Signed checkpoints in the audit journal", false, {},
                       [this] { return audit_.journal().checkpoint_count(); });
  metrics_.AddCallback(
      "tyche_journal_group_commit_batches_total",
      "Flat-combining group-commit batches flushed by the journal", true, {},
      [this] { return audit_.journal().group_commit_stats().batches; });
  metrics_.AddCallback(
      "tyche_journal_group_commit_records_total",
      "Records flushed through group-commit batches", true, {},
      [this] { return audit_.journal().group_commit_stats().batched_records; });
  metrics_.AddCallback(
      "tyche_journal_group_commit_max_batch", "Largest group-commit batch observed",
      false, {}, [this] { return audit_.journal().group_commit_stats().max_batch; });
  metrics_.AddCallback("tyche_trace_recorded_total",
                       "ABI calls recorded into the trace ring", true, {},
                       [this] { return telemetry_.ring().recorded(); });
  metrics_.AddCallback("tyche_trace_dropped_total",
                       "Trace entries overwritten by ring wrap-around", true, {},
                       [this] { return telemetry_.ring().dropped(); });
  metrics_.AddCallback("tyche_lock_contention_total",
                       "Conditional-guard acquisitions that had to block", true,
                       {{"class", "exclusive"}},
                       [this] { return telemetry_.exclusive_contention_count(); });
  metrics_.AddCallback("tyche_lock_contention_total",
                       "Conditional-guard acquisitions that had to block", true,
                       {{"class", "shared"}},
                       [this] { return telemetry_.shared_contention_count(); });
  metrics_.AddCallback(
      "tyche_fault_injections_fired_total",
      "Deterministic fault injections delivered over the process lifetime", true, {},
      [] { return FaultInjector::Instance().lifetime_fired_count(); });
  metrics_.AddCallback(
      "tyche_fault_injection_active",
      "1 while a fault plan is armed or occurrence counting is on", false, {},
      [] { return FaultInjector::active() ? 1u : 0u; });
  metrics_.AddCallback("tyche_domains_alive", "Trust domains currently alive", false, {},
                       [this] { return num_domains_alive(); });
  // captures() is a bare atomic, so this callback never touches the flight
  // recorder's mutex (a size() callback would deadlock against a capture
  // that is concurrently reading ScalarValues from the registry).
  metrics_.AddCallback("tyche_flight_captures_total",
                       "Post-mortem flight records captured", true, {},
                       [this] { return flight_.captures(); });

  // Phase-attribution profiler (DESIGN.md §6): per (op, phase) latency
  // histograms plus the slowest sample's size / span / timestamp, so a
  // histogram outlier is joinable into the Chrome trace. All empty until
  // the profiler is enabled.
  for (size_t op = 0; op < static_cast<size_t>(ApiOp::kOpCount); ++op) {
    for (size_t phase = 0; phase < kDispatchPhaseCount; ++phase) {
      const auto p = static_cast<DispatchPhase>(phase);
      const uint16_t op16 = static_cast<uint16_t>(op);
      const MetricLabels labels = {{"op", ApiOpName(static_cast<ApiOp>(op))},
                                   {"phase", DispatchPhaseName(p)}};
      metrics_.AddHistogram(
          "tyche_dispatch_phase_latency_ns",
          "Per-phase dispatch latency (log2 buckets)", labels,
          [this, op16, p] { return profiler_.PhaseSnapshot(op16, p); });
      metrics_.AddCallback(
          "tyche_dispatch_phase_slowest_ns",
          "Slowest sample recorded for this (op, phase)", false, labels,
          [this, op16, p] { return profiler_.Exemplar(op16, p).ns; });
      metrics_.AddCallback(
          "tyche_dispatch_phase_slowest_span",
          "Dispatch span id of the slowest sample (joins the Chrome trace)", false,
          labels, [this, op16, p] { return profiler_.Exemplar(op16, p).span; });
      metrics_.AddCallback(
          "tyche_dispatch_phase_slowest_ts_ns",
          "Steady-clock timestamp of the slowest sample", false, labels,
          [this, op16, p] { return profiler_.Exemplar(op16, p).ts_ns; });
    }
  }
  metrics_.AddCallback("tyche_profiler_samples_total",
                       "Phase samples recorded by the dispatch profiler", true, {},
                       [this] { return profiler_.TotalSamples(); });

  // Attributed lock-wait time: measured at the guards (src/support/locking.h)
  // and the journal's group-commit waiter path, not inferred from counts.
  metrics_.AddCallback("tyche_lock_wait_ns_total",
                       "Nanoseconds spent blocked on contended conditional guards",
                       true, {{"class", "exclusive"}},
                       [this] { return telemetry_.exclusive_wait_ns_total(); });
  metrics_.AddCallback("tyche_lock_wait_ns_total",
                       "Nanoseconds spent blocked on contended conditional guards",
                       true, {{"class", "shared"}},
                       [this] { return telemetry_.shared_wait_ns_total(); });
  metrics_.AddCallback("tyche_lock_wait_ns_total",
                       "Nanoseconds spent blocked on contended conditional guards",
                       true, {{"class", "shard"}},
                       [this] { return telemetry_.shard_wait_ns_total(); });
  metrics_.AddCallback(
      "tyche_journal_commit_waits_total",
      "Group-commit appends that blocked waiting for a combiner", true, {},
      [this] { return audit_.journal().commit_wait_stats().waits; });
  metrics_.AddCallback(
      "tyche_journal_commit_wait_ns_total",
      "Nanoseconds spent blocked waiting for a group-commit combiner", true, {},
      [this] { return audit_.journal().commit_wait_stats().wait_ns; });

  // Invariant watchdog: per-invariant health (1 = holds), check/violation
  // totals, and the backend fail-safe occupancy the dirtiness check reads.
  metrics_.AddCallback("tyche_watchdog_healthy",
                       "1 while the named invariant holds, 0 after a violation",
                       false, {{"invariant", "journal_chain"}},
                       [this] { return watchdog_.chain_healthy() ? 1u : 0u; });
  metrics_.AddCallback("tyche_watchdog_healthy",
                       "1 while the named invariant holds, 0 after a violation",
                       false, {{"invariant", "owned_index"}},
                       [this] { return watchdog_.index_healthy() ? 1u : 0u; });
  metrics_.AddCallback("tyche_watchdog_healthy",
                       "1 while the named invariant holds, 0 after a violation",
                       false, {{"invariant", "backend_sync"}},
                       [this] { return watchdog_.backend_healthy() ? 1u : 0u; });
  metrics_.AddCallback("tyche_watchdog_checks_total",
                       "Invariant check rounds run by the watchdog", true, {},
                       [this] { return watchdog_.checks(); });
  metrics_.AddCallback("tyche_watchdog_violations_total",
                       "Invariant violations detected by the watchdog", true, {},
                       [this] { return watchdog_.violations(); });
  metrics_.AddCallback("tyche_backend_failsafe_active",
                       "Domains currently parked in the backend's fail-safe state",
                       false, {}, [this] { return backend_->failsafe_active(); });
}

MonitorStats Monitor::stats() const {
  MonitorStats stats;
  for (size_t op = 0; op < static_cast<size_t>(ApiOp::kOpCount); ++op) {
    stats.api_calls[op] = counters_.api_calls[op]->Value();
  }
  stats.transitions = counters_.transitions->Value();
  stats.fast_transitions = counters_.fast_transitions->Value();
  stats.revocations_cascaded = counters_.revocations_cascaded->Value();
  stats.recoveries = counters_.recoveries->Value();
  stats.shares = counters_.shares->Value();
  stats.grants = counters_.grants->Value();
  stats.revokes = counters_.revokes->Value();
  for (size_t kind = 0; kind < MonitorStats::kEffectKinds; ++kind) {
    stats.effects_by_kind[kind] = counters_.effects_by_kind[kind]->Value();
  }
  return stats;
}

void Monitor::ResetStatCounters() {
  for (StripedCounter* counter : counters_.api_calls) {
    counter->Reset();
  }
  counters_.transitions->Reset();
  counters_.fast_transitions->Reset();
  counters_.revocations_cascaded->Reset();
  counters_.recoveries->Reset();
  counters_.shares->Reset();
  counters_.grants->Reset();
  counters_.revokes->Reset();
  for (StripedCounter* counter : counters_.effects_by_kind) {
    counter->Reset();
  }
}

std::string Monitor::ExportMetrics() const {
  // Quiesce dispatchers like DumpTelemetry: callback metrics read plain
  // fields (backend stats, domain table) that must not be mid-mutation.
  ConditionalUniqueLock api(api_mu_, concurrent_dispatch(), nullptr);
  return metrics_.ExportPrometheus();
}

uint64_t Monitor::TrapCost() const {
  const CostModel& cost = CostModel::Default();
  return machine_->arch() == IsaArch::kX86_64 ? cost.vmcall_round_trip
                                              : cost.smc_round_trip;
}

Status Monitor::ChargeCall(ApiOp op) {
  machine_->cycles().Charge(TrapCost());
  Count(counters_.api_calls[static_cast<size_t>(op)]);
  return OkStatus();
}

Status Monitor::EnableConcurrentDispatch() {
  if (snapshots_bound_) {
    // The snapshot provider runs under the journal lock and reads monitor
    // state; a concurrent dispatcher holding monitor locks while appending
    // would invert that order. Pick one: snapshots or concurrency.
    return Error(ErrorCode::kFailedPrecondition,
                 "concurrent dispatch is incompatible with bound snapshots");
  }
  if (migration_in_progress()) {
    // MigrateDomain() reads and mutates monitor state without the dispatch
    // locks (it runs serial-only by contract); flipping to concurrent mode
    // under it would race the staged commit.
    return Error(ErrorCode::kFailedPrecondition,
                 "concurrent dispatch cannot start during a live migration");
  }
  concurrent_.store(true, std::memory_order_relaxed);
  return OkStatus();
}

void Monitor::DisableConcurrentDispatch() {
  concurrent_.store(false, std::memory_order_relaxed);
}

uint64_t Monitor::BeginSpan(CoreId core) {
  const uint64_t span = next_span_.fetch_add(1, std::memory_order_relaxed);
  if (core < active_spans_.size()) {
    active_spans_[core] = span;
  }
  return span;
}

void Monitor::EndSpan(CoreId core) {
  if (core < active_spans_.size()) {
    active_spans_[core] = 0;
  }
}

uint64_t Monitor::SpanForCore(CoreId core) {
  if (core < active_spans_.size() && active_spans_[core] != 0) {
    return active_spans_[core];
  }
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

Result<DomainId> Monitor::Caller(CoreId core) const {
  if (core >= machine_->num_cores()) {
    return Error(ErrorCode::kOutOfRange, "bad core id");
  }
  const DomainId domain = machine_->cpu(core).current_domain();
  if (domain == kInvalidDomain || !domains_.contains(domain)) {
    return Error(ErrorCode::kFailedPrecondition, "no domain running on core");
  }
  if (domain_frozen(domain)) {
    return Error(ErrorCode::kMigrating, "caller is frozen by a live migration");
  }
  return domain;
}

Result<DomainId> Monitor::ResolveHandle(DomainId caller, CapId handle,
                                        bool require_manage) const {
  TYCHE_ASSIGN_OR_RETURN(const Capability* cap, engine_.Get(handle));
  if (!cap->active()) {
    return Error(ErrorCode::kCapabilityRevoked, "domain handle revoked");
  }
  if (cap->owner != caller) {
    return Error(ErrorCode::kCapabilityNotOwned, "domain handle not owned by caller");
  }
  if (cap->kind != ResourceKind::kDomain) {
    return Error(ErrorCode::kInvalidArgument, "capability is not a domain handle");
  }
  if (require_manage && !cap->rights.CanManage()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "handle lacks manage right");
  }
  const DomainId target = static_cast<DomainId>(cap->unit);
  const auto it = domains_.find(target);
  if (it == domains_.end() || !it->second.alive()) {
    return Error(ErrorCode::kDomainDead, "target domain not alive");
  }
  if (domain_frozen(target)) {
    return Error(ErrorCode::kMigrating, "target is frozen by a live migration");
  }
  return target;
}

Result<TrustDomain*> Monitor::GetDomainMutable(DomainId id) {
  const auto it = domains_.find(id);
  if (it == domains_.end()) {
    return Error(ErrorCode::kNotFound, "no such domain");
  }
  return &it->second;
}

Result<const TrustDomain*> Monitor::GetDomain(DomainId id) const {
  const auto it = domains_.find(id);
  if (it == domains_.end()) {
    return Error(ErrorCode::kNotFound, "no such domain");
  }
  return &it->second;
}

DomainId Monitor::CurrentDomain(CoreId core) const {
  return machine_->cpu(core).current_domain();
}

uint64_t Monitor::num_domains_alive() const {
  uint64_t count = 0;
  for (const auto& [id, domain] : domains_) {
    if (domain.alive()) {
      ++count;
    }
  }
  return count;
}

Result<DomainId> Monitor::InstallInitialDomain(const std::string& name) {
  if (next_domain_ != 0) {
    return Error(ErrorCode::kFailedPrecondition, "initial domain already installed");
  }
  const DomainId id = next_domain_++;
  TrustDomain& domain = domains_[id];
  domain.id = id;
  domain.creator = kInvalidDomain;
  domain.name = name;
  domain.asid = next_asid_++;
  domain.entry_point = 0;
  domain.entry_point_set = true;

  const uint64_t span = next_span_.fetch_add(1, std::memory_order_relaxed);
  engine_.RegisterDomain(id, CapabilityEngine::kNoCreator);
  audit_.RegisterDomain(span, id, kJournalNoDomain);
  TYCHE_RETURN_IF_ERROR(backend_->CreateDomainContext(id, domain.asid));

  // Endow the initial domain with everything outside the monitor.
  const AddrRange rest{monitor_range_.end(),
                       machine_->memory().size() - monitor_range_.end()};
  CapEffects effects;
  TYCHE_ASSIGN_OR_RETURN(
      const CapId mem_cap,
      engine_.MintMemory(id, rest, Perms(Perms::kRWX), CapRights(CapRights::kAll)));
  audit_.MintMemory(span, id, mem_cap, rest, Perms(Perms::kRWX), CapRights(CapRights::kAll));
  effects.Add(CapEffect{CapEffect::Kind::kMapMemory, id, ResourceKind::kMemory, rest, 0,
                        Perms(Perms::kRWX)});
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    TYCHE_ASSIGN_OR_RETURN(
        const CapId core_cap,
        engine_.MintUnit(id, ResourceKind::kCpuCore, core, CapRights(CapRights::kAll)));
    audit_.MintUnit(span, id, core_cap, ResourceKind::kCpuCore, core,
                    CapRights(CapRights::kAll));
  }
  for (const auto& device : machine_->devices()) {
    TYCHE_ASSIGN_OR_RETURN(const CapId dev_cap,
                           engine_.MintUnit(id, ResourceKind::kPciDevice,
                                            device->bdf().value, CapRights(CapRights::kAll)));
    audit_.MintUnit(span, id, dev_cap, ResourceKind::kPciDevice, device->bdf().value,
                    CapRights(CapRights::kAll));
    effects.Add(CapEffect{CapEffect::Kind::kAttachUnit, id, ResourceKind::kPciDevice,
                          AddrRange{}, device->bdf().value, Perms{}});
  }
  TYCHE_RETURN_IF_ERROR(ApplyEffects(effects, span));

  // Put the initial domain on every core.
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    machine_->cpu(core).set_current_domain(id);
    machine_->cpu(core).set_mode(PrivilegeMode::kSupervisor);
    TYCHE_RETURN_IF_ERROR(backend_->BindCore(id, core));
  }
  return id;
}

Status Monitor::ApplyEffects(const CapEffects& effects, uint64_t span) {
  // Best-effort over the WHOLE list: revocation cleanups are guaranteed
  // (§3.2), so one failing projection (e.g. a PMP layout that stopped
  // fitting -- which fail-safes to deny-all) must not prevent the remaining
  // unmaps, zeroing, and restores. The first error is still reported so
  // policy operations can compensate.
  Status first_error = OkStatus();
  auto note = [&first_error](const Status& status) {
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  };
  for (const CapEffect& effect : effects.effects) {
    const auto kind_index = static_cast<size_t>(effect.kind);
    if (kind_index < MonitorStats::kEffectKinds) {
      Count(counters_.effects_by_kind[kind_index]);
    }
    audit_.Effect(span, effect);
    switch (effect.kind) {
      case CapEffect::Kind::kMapMemory:
      case CapEffect::Kind::kUnmapMemory:
        note(backend_->SyncMemory(effect.domain, effect.range));
        break;
      case CapEffect::Kind::kZeroMemory:
        note(machine_->ZeroRange(effect.range.base, effect.range.size));
        break;
      case CapEffect::Kind::kFlushCache:
        machine_->FlushCacheRange(effect.range.base, effect.range.size);
        break;
      case CapEffect::Kind::kAttachUnit:
      case CapEffect::Kind::kDetachUnit:
        if (effect.resource == ResourceKind::kPciDevice) {
          note(ReconcileDevice(effect.unit));
        }
        // Core and domain-handle movements need no hardware action: cores
        // are checked at transition time, handles are pure bookkeeping.
        break;
    }
  }
  return first_error;
}

Status Monitor::ReconcileDevice(uint64_t bdf) {
  // A device DMAs on behalf of exactly one trust domain: it is attached iff
  // a single domain holds its capability; shared devices are quiesced.
  DomainId sole_holder = kInvalidDomain;
  uint32_t holders = 0;
  for (const auto& [id, domain] : domains_) {
    if (domain.alive() && engine_.HasUnit(id, ResourceKind::kPciDevice, bdf)) {
      ++holders;
      sole_holder = id;
    }
  }
  // Detach from everyone first. kNotFound just means "was not attached"
  // (the common case); any other failure is a device that refused to
  // quiesce and must be surfaced to the enclosing operation.
  Status first_error = OkStatus();
  for (const auto& [id, domain] : domains_) {
    if (!domain.alive()) {
      continue;
    }
    const Status detached = backend_->DetachDevice(id, static_cast<uint16_t>(bdf));
    if (!detached.ok() && detached.code() != ErrorCode::kNotFound && first_error.ok()) {
      first_error = detached;
    }
  }
  // Interrupt routes follow exclusive ownership: a route pointing anywhere
  // but the sole holder is torn down.
  const auto route = machine_->interrupts().RouteOf(PciBdf(static_cast<uint16_t>(bdf)));
  if (route.has_value() && (holders != 1 || *route != sole_holder)) {
    machine_->interrupts().Unroute(PciBdf(static_cast<uint16_t>(bdf)));
  }
  if (holders == 1) {
    const Status attached = backend_->AttachDevice(sole_holder, static_cast<uint16_t>(bdf));
    if (!attached.ok() && first_error.ok()) {
      first_error = attached;
    }
  }
  return first_error;
}

Status Monitor::RollbackTransfer(ApiOp op, uint64_t span, DomainId requester,
                                 DomainId owner, CapId created, const Status& cause) {
  // The forward mutation is already journaled; revoking the created
  // capability as its owner (a domain may always drop what it holds) emits
  // the compensating records, so shadow replay performs the same
  // compensation and the graphs converge.
  const auto comp = engine_.Revoke(owner, created);
  if (!comp.ok()) {
    // Unreachable unless the engine lost the capability underneath us; the
    // abort record below still marks the span as failed.
    TYCHE_LOG(kError) << "rollback: revoke of cap " << created
                      << " failed: " << comp.status().ToString();
  } else {
    audit_.Revoke(span, owner, created, *comp, engine_);
    Count(counters_.revocations_cascaded, comp->revoked_count);
    const Status reverted = ApplyEffects(comp->effects, span);
    if (!reverted.ok()) {
      // The compensation itself could not be fully projected: the failing
      // backend has already fail-safed to deny, so hardware still enforces
      // a subset of the (now restored) tree.
      TYCHE_LOG(kWarn) << "rollback: compensating effects degraded to fail-safe: "
                       << reverted.ToString();
    }
  }
  audit_.Abort(span, static_cast<uint16_t>(op), requester, cause.code());
  return cause;
}

Status Monitor::RouteInterrupt(CoreId core, CapId device_cap) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kRouteInterrupt));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const Capability* cap, engine_.Get(device_cap));
  if (!cap->active() || cap->owner != caller) {
    return Error(ErrorCode::kCapabilityNotOwned, "route: caller does not hold the device");
  }
  if (cap->kind != ResourceKind::kPciDevice) {
    return Error(ErrorCode::kInvalidArgument, "route: not a device capability");
  }
  // Routing requires exclusive ownership: interrupts carry information, so
  // a shared device must not leak its completion pattern to one holder.
  if (engine_.UnitRefCount(ResourceKind::kPciDevice, cap->unit) != 1) {
    return Error(ErrorCode::kPolicyViolation, "route: device is not exclusively owned");
  }
  machine_->interrupts().Route(PciBdf(static_cast<uint16_t>(cap->unit)), caller);
  return OkStatus();
}

Result<Interrupt> Monitor::TakeInterrupt(CoreId core) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kTakeInterrupt));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  const auto interrupt = machine_->interrupts().Take(caller);
  if (!interrupt.has_value()) {
    return Error(ErrorCode::kNotFound, "no pending interrupt");
  }
  return *interrupt;
}

Status Monitor::SetTransitionPolicy(CoreId core, CapId domain_handle, bool scrub_on_exit) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kSetTransitionPolicy));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/true));
  ConditionalUniqueLock shard(ShardFor(target), concurrent_dispatch(),
                              telemetry_.exclusive_contention(),
                              telemetry_.shard_wait_ns());
  TYCHE_ASSIGN_OR_RETURN(TrustDomain * domain, GetDomainMutable(target));
  if (domain->sealed()) {
    return Error(ErrorCode::kDomainSealed, "transition policy is fixed at seal time");
  }
  domain->scrub_on_exit = scrub_on_exit;
  return OkStatus();
}

Result<CreateDomainResult> Monitor::CreateDomain(CoreId core, const std::string& name) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kCreateDomain));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));

  const DomainId id = next_domain_++;
  TrustDomain& domain = domains_[id];
  domain.id = id;
  domain.creator = caller;
  domain.name = name;
  domain.asid = next_asid_++;

  const uint64_t span = SpanForCore(core);
  engine_.RegisterDomain(id, caller);
  audit_.RegisterDomain(span, id, caller);
  const Status context = backend_->CreateDomainContext(id, domain.asid);
  if (!context.ok()) {
    // Unwind: a domain the backend cannot enforce must not stay registered.
    // The purge is journaled like any other mutation so shadow replay stays
    // in lockstep; the id is simply never reused (next_domain_ moved on).
    const auto purge = engine_.PurgeDomain(id);
    if (purge.ok()) {
      audit_.PurgeDomain(span, id, *purge, engine_);
    }
    domains_.erase(id);
    audit_.Abort(span, static_cast<uint16_t>(ApiOp::kCreateDomain), caller, context.code());
    return context;
  }

  TYCHE_ASSIGN_OR_RETURN(
      const CapId handle,
      engine_.MintUnit(caller, ResourceKind::kDomain, id, CapRights(CapRights::kAll)));
  audit_.MintUnit(span, caller, handle, ResourceKind::kDomain, id, CapRights(CapRights::kAll));
  return CreateDomainResult{id, handle};
}

Status Monitor::SetEntryPoint(CoreId core, CapId domain_handle, uint64_t entry) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kSetEntryPoint));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/true));
  ConditionalUniqueLock shard(ShardFor(target), concurrent_dispatch(),
                              telemetry_.exclusive_contention(),
                              telemetry_.shard_wait_ns());
  TYCHE_ASSIGN_OR_RETURN(TrustDomain * domain, GetDomainMutable(target));
  if (domain->sealed()) {
    return Error(ErrorCode::kDomainSealed, "cannot move a sealed domain's entry point");
  }
  domain->entry_point = entry;
  domain->entry_point_set = true;
  return OkStatus();
}

Status Monitor::ExtendMeasurement(CoreId core, CapId domain_handle, AddrRange range) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kExtendMeasurement));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/true));
  ConditionalUniqueLock shard(ShardFor(target), concurrent_dispatch(),
                              telemetry_.exclusive_contention(),
                              telemetry_.shard_wait_ns());
  TYCHE_ASSIGN_OR_RETURN(TrustDomain * domain, GetDomainMutable(target));
  if (domain->sealed()) {
    return Error(ErrorCode::kDomainSealed, "measurement already finalized");
  }
  // The measured range must belong to the target (readable by it): the
  // measurement covers the domain's own initial content.
  for (uint64_t page = AlignDown(range.base, kPageSize); page < range.end();
       page += kPageSize) {
    if (!engine_.EffectivePerms(target, page).Allows(AccessType::kRead)) {
      return Error(ErrorCode::kPolicyViolation, "measured range not owned by target");
    }
  }
  TYCHE_ASSIGN_OR_RETURN(const Digest digest,
                         machine_->MeasureRange(range.base, range.size));
  domain->measurement_ctx.UpdateValue(range.base);
  domain->measurement_ctx.UpdateValue(range.size);
  domain->measurement_ctx.Update(
      std::span<const uint8_t>(digest.bytes.data(), digest.bytes.size()));
  return OkStatus();
}

Status Monitor::Seal(CoreId core, CapId domain_handle) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kSeal));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/true));
  ConditionalUniqueLock shard(ShardFor(target), concurrent_dispatch(),
                              telemetry_.exclusive_contention(),
                              telemetry_.shard_wait_ns());
  TYCHE_ASSIGN_OR_RETURN(TrustDomain * domain, GetDomainMutable(target));
  if (domain->sealed()) {
    return Error(ErrorCode::kDomainSealed, "already sealed");
  }
  if (!domain->entry_point_set) {
    return Error(ErrorCode::kFailedPrecondition, "seal requires an entry point");
  }
  // The entry point must be executable by the domain.
  if (!engine_.EffectivePerms(target, domain->entry_point).Allows(AccessType::kExecute)) {
    return Error(ErrorCode::kPolicyViolation, "entry point not executable by domain");
  }

  // Finalize measurement with the configuration hash: entry point plus the
  // canonical resource list (kind, range, perms). This is what makes the
  // attested identity cover the isolation configuration, not just code.
  domain->measurement_ctx.Update(std::string_view("tyche-config-v1"));
  domain->measurement_ctx.UpdateValue(domain->entry_point);
  std::vector<const Capability*> caps = engine_.DomainCaps(target);
  std::sort(caps.begin(), caps.end(), [](const Capability* a, const Capability* b) {
    return std::tuple(a->kind, a->range.base, a->range.size, a->unit) <
           std::tuple(b->kind, b->range.base, b->range.size, b->unit);
  });
  for (const Capability* cap : caps) {
    domain->measurement_ctx.UpdateValue(static_cast<uint8_t>(cap->kind));
    domain->measurement_ctx.UpdateValue(cap->range.base);
    domain->measurement_ctx.UpdateValue(cap->range.size);
    domain->measurement_ctx.UpdateValue(cap->unit);
    domain->measurement_ctx.UpdateValue(cap->perms.mask);
  }
  domain->measurement = domain->measurement_ctx.Finalize();
  domain->state = DomainState::kSealed;
  engine_.SealDomain(target);
  audit_.SealDomain(SpanForCore(core), target, domain->measurement, domain->entry_point);
  return OkStatus();
}

Status Monitor::DestroyDomain(CoreId core, CapId domain_handle) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kDestroyDomain));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/true));
  // Refuse while the domain is on a core or present in a return stack.
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    if (machine_->cpu(c).current_domain() == target) {
      return Error(ErrorCode::kFailedPrecondition, "domain is running");
    }
    const auto& stack = call_stacks_[c];
    if (std::find(stack.begin(), stack.end(), target) != stack.end()) {
      return Error(ErrorCode::kFailedPrecondition, "domain is on a transition stack");
    }
  }
  const uint64_t span = SpanForCore(core);
  std::vector<std::pair<CapId, RevokeOutcome>> partial;
  const auto purged = engine_.PurgeDomain(target, &partial);
  if (!purged.ok()) {
    // The purge aborted mid-cascade: the domain is still registered and
    // alive, but the per-root revocations that DID commit are real. Journal
    // each as an ordinary revoke (the target owns its own roots, so replay
    // authorization holds), project its effects so hardware tracks the tree,
    // and surface the typed error. A retry purges whatever remains; its
    // kPurgeDomain record then replays against the same remainder.
    for (const auto& [root, committed] : partial) {
      audit_.Revoke(span, target, root, committed, engine_);
      Count(counters_.revocations_cascaded, committed.revoked_count);
      const Status projected = ApplyEffects(committed.effects, span);
      if (!projected.ok()) {
        TYCHE_LOG(kWarn) << "destroy: partial-purge effects degraded to fail-safe: "
                         << projected.ToString();
      }
    }
    audit_.Abort(span, static_cast<uint16_t>(ApiOp::kDestroyDomain), caller,
                 purged.status().code());
    return purged.status();
  }
  const RevokeOutcome& outcome = *purged;
  audit_.PurgeDomain(span, target, outcome, engine_);
  Count(counters_.revocations_cascaded, outcome.revoked_count);
  // The engine purge is the commit point: teardown is never rolled back,
  // because a dead domain with live hardware state would be the worst torn
  // state of all. Push through every cleanup step (failed projections have
  // already fail-safed to deny), mark the domain dead, and report the first
  // failure as a terminal-but-contained error.
  Status first = ApplyEffects(outcome.effects, span);
  const Status context = backend_->DestroyDomainContext(target);
  if (!context.ok() && first.ok()) {
    first = context;
  }
  machine_->interrupts().PurgeDomain(target);
  TYCHE_ASSIGN_OR_RETURN(TrustDomain * domain, GetDomainMutable(target));
  domain->state = DomainState::kDead;
  if (!first.ok()) {
    audit_.Abort(span, static_cast<uint16_t>(ApiOp::kDestroyDomain), caller, first.code());
  }
  return first;
}

Result<CapId> Monitor::ShareMemory(CoreId core, CapId src_cap, CapId dst_domain_handle,
                                   AddrRange sub, Perms perms, CapRights rights,
                                   RevocationPolicy policy) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kShareMemory));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId dst,
                         ResolveHandle(caller, dst_domain_handle, /*require_manage=*/false));
  const uint64_t span = SpanForCore(core);
  CapEffects effects;
  TYCHE_ASSIGN_OR_RETURN(
      const CapId child,
      engine_.ShareMemory(caller, src_cap, dst, sub, perms, rights, policy, &effects));
  audit_.ShareMemory(span, caller, dst, src_cap, child, sub, perms, rights, policy);
  const Status applied = ApplyEffects(effects, span);
  if (!applied.ok()) {
    // Compensate: the hardware could not accommodate the new mapping (e.g.
    // PMP exhaustion); roll the capability back so tree and hardware agree.
    return RollbackTransfer(ApiOp::kShareMemory, span, caller, dst, child, applied);
  }
  Count(counters_.shares);
  return child;
}

Result<GrantResult> Monitor::GrantMemory(CoreId core, CapId src_cap, CapId dst_domain_handle,
                                         AddrRange sub, Perms perms, CapRights rights,
                                         RevocationPolicy policy) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kGrantMemory));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId dst,
                         ResolveHandle(caller, dst_domain_handle, /*require_manage=*/false));
  const uint64_t span = SpanForCore(core);
  TYCHE_ASSIGN_OR_RETURN(GrantOutcome outcome, engine_.GrantMemory(caller, src_cap, dst, sub,
                                                                   perms, rights, policy));
  audit_.GrantMemory(span, caller, dst, src_cap, outcome.granted, sub, perms, rights, policy,
                     outcome.remainders.size());
  const Status applied = ApplyEffects(outcome.effects, span);
  if (!applied.ok()) {
    // Revoking the granted capability mints a restore capability back to the
    // grantor (the engine's grant-revocation rule), so the rollback is
    // access-equivalent to the pre-grant state.
    return RollbackTransfer(ApiOp::kGrantMemory, span, caller, dst, outcome.granted,
                            applied);
  }
  Count(counters_.grants);
  return GrantResult{outcome.granted, outcome.remainders};
}

Result<CapId> Monitor::ShareUnit(CoreId core, CapId src_cap, CapId dst_domain_handle,
                                 CapRights rights, RevocationPolicy policy) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kShareUnit));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId dst,
                         ResolveHandle(caller, dst_domain_handle, /*require_manage=*/false));
  const uint64_t span = SpanForCore(core);
  CapEffects effects;
  TYCHE_ASSIGN_OR_RETURN(const CapId child,
                         engine_.ShareUnit(caller, src_cap, dst, rights, policy, &effects));
  if (const auto child_cap = engine_.Get(child); child_cap.ok()) {
    audit_.ShareUnit(span, caller, dst, src_cap, child, (*child_cap)->kind,
                     (*child_cap)->unit, rights, policy);
  }
  const Status applied = ApplyEffects(effects, span);
  if (!applied.ok()) {
    return RollbackTransfer(ApiOp::kShareUnit, span, caller, dst, child, applied);
  }
  Count(counters_.shares);
  return child;
}

Result<CapId> Monitor::GrantUnit(CoreId core, CapId src_cap, CapId dst_domain_handle,
                                 CapRights rights, RevocationPolicy policy) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kGrantUnit));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId dst,
                         ResolveHandle(caller, dst_domain_handle, /*require_manage=*/false));
  const uint64_t span = SpanForCore(core);
  TYCHE_ASSIGN_OR_RETURN(GrantOutcome outcome,
                         engine_.GrantUnit(caller, src_cap, dst, rights, policy));
  if (const auto granted = engine_.Get(outcome.granted); granted.ok()) {
    audit_.GrantUnit(span, caller, dst, src_cap, outcome.granted, (*granted)->kind,
                     (*granted)->unit, rights, policy);
  }
  const Status applied = ApplyEffects(outcome.effects, span);
  if (!applied.ok()) {
    return RollbackTransfer(ApiOp::kGrantUnit, span, caller, dst, outcome.granted, applied);
  }
  Count(counters_.grants);
  return outcome.granted;
}

Status Monitor::Revoke(CoreId core, CapId cap) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kRevoke));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  const uint64_t span = SpanForCore(core);
  TYCHE_ASSIGN_OR_RETURN(const RevokeOutcome outcome, engine_.Revoke(caller, cap));
  audit_.Revoke(span, caller, cap, outcome, engine_);
  Count(counters_.revokes);
  Count(counters_.revocations_cascaded, outcome.revoked_count);
  const Status applied = ApplyEffects(outcome.effects, span);
  if (!applied.ok()) {
    // Revocation is never rolled back (§3.2: cleanups are guaranteed). The
    // failing projection already fail-safed to deny, so hardware enforces a
    // subset of the tree; the abort record plus the typed error tell the
    // caller the degraded state is theirs to repair (any later successful
    // sync restores full enforcement).
    audit_.Abort(span, static_cast<uint16_t>(ApiOp::kRevoke), caller, applied.code());
  }
  return applied;
}

Result<DomainAttestation> Monitor::BuildAttestation(DomainId target, uint64_t nonce) {
  ConditionalSharedLock shard(ShardFor(target), concurrent_dispatch(),
                              telemetry_.shared_contention(),
                              telemetry_.shard_wait_ns(),
                              DispatchPhase::kShardLockWait);
  TYCHE_ASSIGN_OR_RETURN(const TrustDomain* domain, GetDomain(target));
  DomainAttestation report;
  report.domain = target;
  report.nonce = nonce;
  report.sealed = domain->sealed();
  report.measurement = domain->measurement;

  std::vector<const Capability*> caps = engine_.DomainCaps(target);
  std::sort(caps.begin(), caps.end(), [](const Capability* a, const Capability* b) {
    return std::tuple(a->kind, a->range.base, a->range.size, a->unit) <
           std::tuple(b->kind, b->range.base, b->range.size, b->unit);
  });
  // Memory claims are reported at constant-refcount granularity (the
  // resolution of the paper's Figure 4): a capability spanning both private
  // and shared bytes is split, so a verifier's per-region policy can tell
  // the attested channel from the private heap around it.
  const std::vector<RegionView> view = engine_.MemoryView();
  for (const Capability* cap : caps) {
    if (cap->kind != ResourceKind::kMemory) {
      ResourceClaim claim;
      claim.kind = cap->kind;
      claim.unit = cap->unit;
      claim.ref_count = engine_.UnitRefCount(cap->kind, cap->unit);
      report.resources.push_back(claim);
      continue;
    }
    for (const RegionView& region : view) {
      if (!region.range.Overlaps(cap->range)) {
        continue;
      }
      ResourceClaim claim;
      claim.kind = ResourceKind::kMemory;
      claim.range.base = std::max(region.range.base, cap->range.base);
      claim.range.size =
          std::min(region.range.end(), cap->range.end()) - claim.range.base;
      claim.perms = cap->perms;
      claim.ref_count = region.ref_count();
      report.resources.push_back(claim);
    }
  }
  report.report_digest = report.ComputeDigest();
  report.signature = SchnorrSign(key_.priv, report.report_digest);
  machine_->cycles().Charge(CostModel::Default().sign);
  return report;
}

Result<DomainAttestation> Monitor::AttestDomain(CoreId core, CapId domain_handle,
                                                uint64_t nonce) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kAttestDomain));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/false));
  return BuildAttestation(target, nonce);
}

Result<DomainAttestation> Monitor::AttestSelf(CoreId core, uint64_t nonce) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kAttestDomain));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  return BuildAttestation(caller, nonce);
}

Result<std::vector<ResourceClaim>> Monitor::Enumerate(CoreId core, CapId domain_handle) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kEnumerate));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/false));
  TYCHE_ASSIGN_OR_RETURN(const DomainAttestation report, BuildAttestation(target, 0));
  return report.resources;
}

Status Monitor::Transition(CoreId core, CapId domain_handle) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kTransition));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/false));
  TYCHE_ASSIGN_OR_RETURN(const TrustDomain* domain, GetDomain(target));
  if (!domain->entry_point_set) {
    return Error(ErrorCode::kTransitionDenied, "target has no entry point");
  }
  // §3.1: "Domains ... are only allowed to run on CPU cores ... that are
  // part of their resource configuration."
  if (!engine_.HasUnit(target, ResourceKind::kCpuCore, core)) {
    return Error(ErrorCode::kTransitionDenied, "target does not own this core");
  }
  ScrubOnExitIfRequested(caller, core);
  // Bind first: if the backend refuses the switch, the call stack and the
  // core's current domain must still describe the caller, not the target.
  TYCHE_RETURN_IF_ERROR(backend_->BindCore(target, core));
  call_stacks_[core].push_back(caller);
  machine_->cpu(core).set_current_domain(target);
  Count(counters_.transitions);
  return OkStatus();
}

void Monitor::ScrubOnExitIfRequested(DomainId leaving, CoreId core) {
  const auto it = domains_.find(leaving);
  if (it == domains_.end() || !it->second.scrub_on_exit) {
    return;
  }
  // Wipe the micro-architectural state the domain may have left behind:
  // TLB entries plus (modelled) caches and predictors.
  machine_->FlushTlb(core);
  machine_->cycles().Charge(CostModel::Default().microarch_scrub);
}

Status Monitor::ReturnFromDomain(CoreId core) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kReturn));
  TYCHE_RETURN_IF_ERROR(Caller(core).status());
  if (call_stacks_[core].empty()) {
    return Error(ErrorCode::kFailedPrecondition, "no domain to return to");
  }
  const DomainId leaving = machine_->cpu(core).current_domain();
  ScrubOnExitIfRequested(leaving, core);
  const DomainId previous = call_stacks_[core].back();
  // Bind first (see Transition): a refused switch leaves the stack intact.
  TYCHE_RETURN_IF_ERROR(backend_->BindCore(previous, core));
  call_stacks_[core].pop_back();
  machine_->cpu(core).set_current_domain(previous);
  Count(counters_.transitions);
  return OkStatus();
}

Status Monitor::RegisterFastTransition(CoreId core, CapId domain_handle) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kRegisterFastTransition));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  TYCHE_ASSIGN_OR_RETURN(const DomainId target,
                         ResolveHandle(caller, domain_handle, /*require_manage=*/false));
  TYCHE_ASSIGN_OR_RETURN(const TrustDomain* domain, GetDomain(target));
  if (!domain->entry_point_set) {
    return Error(ErrorCode::kTransitionDenied, "target has no entry point");
  }
  if (!engine_.HasUnit(target, ResourceKind::kCpuCore, core)) {
    return Error(ErrorCode::kTransitionDenied, "target does not own this core");
  }
  // The fast path bypasses the monitor, so it cannot honour a scrub-on-exit
  // policy: domains that asked for the mitigation are excluded.
  if (domains_[caller].scrub_on_exit || domains_[target].scrub_on_exit) {
    return Error(ErrorCode::kPolicyViolation,
                 "scrub-on-exit domains cannot use the unmediated fast path");
  }
  // Arm the fast path both ways so the pair can call and return.
  TYCHE_RETURN_IF_ERROR(backend_->RegisterFastPath(target, core));
  return backend_->RegisterFastPath(caller, core);
}

Status Monitor::FastTransition(CoreId core, DomainId target) {
  if (core >= machine_->num_cores()) {
    return Error(ErrorCode::kOutOfRange, "bad core id");
  }
  // The fast path bypasses handle resolution, so the frozen check must live
  // here: entering a half-captured domain would let it observe (and dirty)
  // state the migration already serialized.
  if (domain_frozen(target)) {
    return Error(ErrorCode::kMigrating, "target is frozen by a live migration");
  }
  // No trap: the hardware validates against the pre-armed EPTP list. Only
  // the VMFUNC-equivalent cost is charged.
  machine_->cycles().Charge(CostModel::Default().vmfunc_switch);
  Count(counters_.api_calls[static_cast<size_t>(ApiOp::kFastTransition)]);
  const DomainId caller = machine_->cpu(core).current_domain();
  TYCHE_RETURN_IF_ERROR(backend_->FastBindCore(target, core));
  call_stacks_[core].push_back(caller);
  machine_->cpu(core).set_current_domain(target);
  Count(counters_.fast_transitions);
  return OkStatus();
}

Status Monitor::FastReturn(CoreId core) {
  if (core >= machine_->num_cores()) {
    return Error(ErrorCode::kOutOfRange, "bad core id");
  }
  machine_->cycles().Charge(CostModel::Default().vmfunc_switch);
  if (call_stacks_[core].empty()) {
    return Error(ErrorCode::kFailedPrecondition, "no domain to return to");
  }
  const DomainId previous = call_stacks_[core].back();
  TYCHE_RETURN_IF_ERROR(backend_->FastBindCore(previous, core));
  call_stacks_[core].pop_back();
  machine_->cpu(core).set_current_domain(previous);
  Count(counters_.fast_transitions);
  return OkStatus();
}

Result<std::vector<uint8_t>> Monitor::SealData(CoreId core, std::span<const uint8_t> data) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kSealData));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  ConditionalSharedLock shard(ShardFor(caller), concurrent_dispatch(),
                              telemetry_.shared_contention(),
                              telemetry_.shard_wait_ns(),
                              DispatchPhase::kShardLockWait);
  TYCHE_ASSIGN_OR_RETURN(const TrustDomain* domain, GetDomain(caller));
  if (!domain->sealed()) {
    return Error(ErrorCode::kDomainNotSealed,
                 "sealing requires a final measurement (seal the domain first)");
  }
  const Digest key =
      HmacSha256(std::span<const uint8_t>(sealing_root_.bytes.data(), 32),
                 std::span<const uint8_t>(domain->measurement.bytes.data(), 32));
  // NOTE: the per-boot nonce counter is enough here because the simulation
  // has no persistent storage; a production monitor must persist or
  // randomize nonces to avoid cross-boot reuse.
  const SealedBlob blob = AeadSeal(key, seal_nonce_++, data);
  machine_->cycles().Charge(CostModel::Default().hash_per_page *
                            (AlignUp(data.size(), kPageSize) / kPageSize + 1));
  return blob.Serialize();
}

Result<std::vector<uint8_t>> Monitor::UnsealData(CoreId core,
                                                 std::span<const uint8_t> blob_bytes) {
  TYCHE_RETURN_IF_ERROR(ChargeCall(ApiOp::kUnsealData));
  TYCHE_ASSIGN_OR_RETURN(const DomainId caller, Caller(core));
  ConditionalSharedLock shard(ShardFor(caller), concurrent_dispatch(),
                              telemetry_.shared_contention(),
                              telemetry_.shard_wait_ns(),
                              DispatchPhase::kShardLockWait);
  TYCHE_ASSIGN_OR_RETURN(const TrustDomain* domain, GetDomain(caller));
  if (!domain->sealed()) {
    return Error(ErrorCode::kDomainNotSealed, "unsealing requires a final measurement");
  }
  TYCHE_ASSIGN_OR_RETURN(const SealedBlob blob, SealedBlob::Deserialize(blob_bytes));
  const Digest key =
      HmacSha256(std::span<const uint8_t>(sealing_root_.bytes.data(), 32),
                 std::span<const uint8_t>(domain->measurement.bytes.data(), 32));
  machine_->cycles().Charge(CostModel::Default().hash_per_page *
                            (AlignUp(blob.ciphertext.size(), kPageSize) / kPageSize + 1));
  return AeadOpen(key, blob);
}

Result<MonitorIdentity> Monitor::Identity(uint64_t nonce) const {
  MonitorIdentity identity;
  identity.tpm_key = machine_->tpm().attestation_key();
  identity.monitor_key = key_.pub;
  identity.firmware_measurement = firmware_measurement_;
  identity.monitor_measurement = monitor_measurement_;
  const uint32_t mask = (1u << Tpm::kPcrFirmware) | (1u << Tpm::kPcrMonitor);
  TYCHE_ASSIGN_OR_RETURN(identity.boot_quote, machine_->tpm().Quote(nonce, mask));
  return identity;
}

TelemetrySnapshot Monitor::DumpTelemetry() const {
  // Quiesce dispatchers while copying: the snapshot must be a consistent cut.
  ConditionalUniqueLock api(api_mu_, concurrent_dispatch(), nullptr);
  TelemetrySnapshot snapshot;
  snapshot.stats = stats();
  snapshot.backend = backend_->stats();
  snapshot.trace = telemetry_.ring().Snapshot();
  snapshot.trace_recorded = telemetry_.ring().recorded();
  snapshot.trace_dropped = telemetry_.ring().dropped();
  snapshot.per_op_latency = telemetry_.AllHistograms();
  snapshot.capability_graph_dot = ExportCapabilityGraphDot(engine_);
  snapshot.capability_graph_json = ExportCapabilityGraphJson(engine_);
  snapshot.journal_records = audit_.journal().size();
  snapshot.journal_checkpoints = audit_.journal().checkpoint_count();
  snapshot.journal_head = audit_.journal().head().ToHex();
  snapshot.journal_summary = audit_.Summary();
  snapshot.span_tree_json = audit_.SpanTreeJson();
  snapshot.lock_exclusive_contention = telemetry_.exclusive_contention_count();
  snapshot.lock_shared_contention = telemetry_.shared_contention_count();
  const auto group = audit_.journal().group_commit_stats();
  snapshot.journal_batches = group.batches;
  snapshot.journal_batched_records = group.batched_records;
  snapshot.journal_max_batch = group.max_batch;
  return snapshot;
}

std::string TelemetrySnapshot::ToString() const {
  std::ostringstream out;
  out << "=== monitor telemetry ===\n";
  out << "api calls: " << stats.TotalCalls() << " total\n";
  out << "op                          calls   p50(ns)   p99(ns)   max(ns)\n";
  for (size_t op = 0; op < static_cast<size_t>(ApiOp::kOpCount); ++op) {
    if (stats.api_calls[op] == 0) {
      continue;
    }
    std::string name = ApiOpName(static_cast<ApiOp>(op));
    name.resize(26, ' ');
    out << name << std::setw(7) << stats.api_calls[op];
    if (op < per_op_latency.size() && per_op_latency[op].count() > 0) {
      const LatencyHistogram& histogram = per_op_latency[op];
      out << std::setw(10) << histogram.Percentile(50) << std::setw(10)
          << histogram.Percentile(99) << std::setw(10) << histogram.max();
    } else {
      out << std::setw(10) << "-" << std::setw(10) << "-" << std::setw(10) << "-";
    }
    out << "\n";
  }
  out << "transitions=" << stats.transitions << " fast=" << stats.fast_transitions
      << " shares=" << stats.shares << " grants=" << stats.grants
      << " revokes=" << stats.revokes << " cascaded=" << stats.revocations_cascaded
      << "\n";
  out << "effects:";
  constexpr CapEffect::Kind kKinds[] = {
      CapEffect::Kind::kMapMemory,  CapEffect::Kind::kUnmapMemory,
      CapEffect::Kind::kZeroMemory, CapEffect::Kind::kFlushCache,
      CapEffect::Kind::kAttachUnit, CapEffect::Kind::kDetachUnit,
  };
  for (const CapEffect::Kind kind : kKinds) {
    out << " " << CapEffectKindName(kind) << "="
        << stats.effects_by_kind[static_cast<size_t>(kind)];
  }
  out << "\n";
  out << "backend: syncs=" << backend.memory_syncs << " pages(map/unmap/prot)="
      << backend.pages_mapped << "/" << backend.pages_unmapped << "/"
      << backend.pages_protected << " pmp(recompiles/writes)=" << backend.pmp_recompiles
      << "/" << backend.pmp_entry_writes << " tlb_shootdowns=" << backend.tlb_shootdowns
      << " iommu_updates=" << backend.iommu_updates << " binds(slow/fast)="
      << backend.core_binds << "/" << backend.fast_binds << "\n";
  out << "trace: " << trace.size() << " held, " << trace_recorded << " recorded, "
      << trace_dropped << " dropped\n";
  out << "capability graph: " << capability_graph_json.size() << " bytes json, "
      << capability_graph_dot.size() << " bytes dot\n";
  out << "journal: " << journal_records << " records, " << journal_checkpoints
      << " checkpoints, head=" << journal_head.substr(0, 16) << "\n";
  out << "concurrency: contended(excl/shared)=" << lock_exclusive_contention << "/"
      << lock_shared_contention << " group-commit(batches/records/max)="
      << journal_batches << "/" << journal_batched_records << "/" << journal_max_batch
      << "\n";
  return out.str();
}

Result<bool> Monitor::AuditHardwareConsistency() {
  for (const auto& [id, domain] : domains_) {
    if (!domain.alive()) {
      continue;
    }
    TYCHE_ASSIGN_OR_RETURN(const bool consistent, backend_->ValidateAgainst(engine_, id));
    if (!consistent) {
      TYCHE_LOG(kError) << "hardware state of domain " << id
                        << " is not justified by the capability tree";
      return false;
    }
  }
  return true;
}

}  // namespace tyche
