// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/audit.h"

#include <deque>
#include <sstream>

#include "src/capability/graph_export.h"
#include "src/monitor/monitor.h"

namespace tyche {

namespace {

JournalRecord Base(uint64_t span, JournalEvent event) {
  JournalRecord record;
  record.span = span;
  record.event = static_cast<uint8_t>(event);
  return record;
}

}  // namespace

void AuditJournal::Dispatch(uint64_t span, uint16_t op, uint32_t caller,
                            uint64_t args_digest, uint64_t error) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kDispatch);
  record.op = static_cast<uint8_t>(op <= 0xff ? op : 0xff);
  record.domain = caller;
  record.aux = args_digest;
  record.result = error;
  journal_.Append(record);
}

void AuditJournal::RegisterDomain(uint64_t span, uint32_t domain, uint32_t creator) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kRegisterDomain);
  record.domain = domain;
  record.dst = creator;
  journal_.Append(record);
}

namespace {

// The 32-byte measurement rides in the four u64 payload fields of the seal
// record (little-endian quarters). PackedSealDigest reverses it.
void PackSealDigest(JournalRecord* record, const Digest& digest) {
  auto quarter = [&digest](size_t offset) {
    uint64_t value = 0;
    for (size_t i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(digest.bytes[offset + i]) << (8 * i);
    }
    return value;
  };
  record->cap = quarter(0);
  record->parent = quarter(8);
  record->base = quarter(16);
  record->size = quarter(24);
}

}  // namespace

Digest PackedSealDigest(const JournalRecord& record) {
  Digest digest;
  auto unpack = [&digest](size_t offset, uint64_t value) {
    for (size_t i = 0; i < 8; ++i) {
      digest.bytes[offset + i] = static_cast<uint8_t>(value >> (8 * i));
    }
  };
  unpack(0, record.cap);
  unpack(8, record.parent);
  unpack(16, record.base);
  unpack(24, record.size);
  return digest;
}

void AuditJournal::SealDomain(uint64_t span, uint32_t domain, const Digest& measurement,
                              uint64_t entry_point) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kSealDomain);
  record.domain = domain;
  PackSealDigest(&record, measurement);
  record.aux = entry_point;
  journal_.Append(record);
}

void AuditJournal::MintMemory(uint64_t span, uint32_t owner, uint64_t cap, AddrRange range,
                              Perms perms, CapRights rights) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kMintMemory);
  record.domain = owner;
  record.cap = cap;
  record.base = range.base;
  record.size = range.size;
  record.perms = perms.mask;
  record.rights = rights.mask;
  record.resource = static_cast<uint8_t>(ResourceKind::kMemory);
  journal_.Append(record);
}

void AuditJournal::MintUnit(uint64_t span, uint32_t owner, uint64_t cap, ResourceKind kind,
                            uint64_t unit, CapRights rights) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kMintUnit);
  record.domain = owner;
  record.cap = cap;
  record.base = unit;
  record.rights = rights.mask;
  record.resource = static_cast<uint8_t>(kind);
  journal_.Append(record);
}

void AuditJournal::ShareMemory(uint64_t span, uint32_t requester, uint32_t dst,
                               uint64_t src_cap, uint64_t child, AddrRange sub, Perms perms,
                               CapRights rights, RevocationPolicy policy) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kShareMemory);
  record.domain = requester;
  record.dst = dst;
  record.parent = src_cap;
  record.cap = child;
  record.base = sub.base;
  record.size = sub.size;
  record.perms = perms.mask;
  record.rights = rights.mask;
  record.policy = policy.mask;
  record.resource = static_cast<uint8_t>(ResourceKind::kMemory);
  journal_.Append(record);
}

void AuditJournal::GrantMemory(uint64_t span, uint32_t requester, uint32_t dst,
                               uint64_t src_cap, uint64_t granted, AddrRange sub, Perms perms,
                               CapRights rights, RevocationPolicy policy,
                               uint64_t remainder_count) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kGrantMemory);
  record.domain = requester;
  record.dst = dst;
  record.parent = src_cap;
  record.cap = granted;
  record.base = sub.base;
  record.size = sub.size;
  record.perms = perms.mask;
  record.rights = rights.mask;
  record.policy = policy.mask;
  record.aux = remainder_count;
  record.resource = static_cast<uint8_t>(ResourceKind::kMemory);
  journal_.Append(record);
}

void AuditJournal::ShareUnit(uint64_t span, uint32_t requester, uint32_t dst,
                             uint64_t src_cap, uint64_t child, ResourceKind kind,
                             uint64_t unit, CapRights rights, RevocationPolicy policy) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kShareUnit);
  record.domain = requester;
  record.dst = dst;
  record.parent = src_cap;
  record.cap = child;
  record.base = unit;
  record.rights = rights.mask;
  record.policy = policy.mask;
  record.resource = static_cast<uint8_t>(kind);
  journal_.Append(record);
}

void AuditJournal::GrantUnit(uint64_t span, uint32_t requester, uint32_t dst,
                             uint64_t src_cap, uint64_t granted, ResourceKind kind,
                             uint64_t unit, CapRights rights, RevocationPolicy policy) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kGrantUnit);
  record.domain = requester;
  record.dst = dst;
  record.parent = src_cap;
  record.cap = granted;
  record.base = unit;
  record.rights = rights.mask;
  record.policy = policy.mask;
  record.resource = static_cast<uint8_t>(kind);
  journal_.Append(record);
}

void AuditJournal::Cascades(std::vector<JournalRecord>* out, uint64_t span,
                            uint64_t root_cap, const RevokeOutcome& outcome,
                            const CapabilityEngine& engine) {
  for (const CapId revoked : outcome.revoked_caps) {
    JournalRecord record = Base(span, JournalEvent::kCascade);
    record.cap = revoked;
    record.parent = root_cap;
    const auto cap = engine.Get(revoked);
    if (cap.ok()) {
      record.domain = (*cap)->owner;
      record.resource = static_cast<uint8_t>((*cap)->kind);
    }
    out->push_back(record);
  }
}

// A revoke's record family (kRevoke, its kCascades, an optional kRestore) is
// appended as ONE atomic group: replay requires the cascades to follow their
// root with nothing but context records in between, and under concurrent
// dispatch a reader's kDispatch record could otherwise land mid-family.
void AuditJournal::Revoke(uint64_t span, uint32_t requester, uint64_t cap,
                          const RevokeOutcome& outcome, const CapabilityEngine& engine) {
  if (!enabled()) {
    return;
  }
  std::vector<JournalRecord> records;
  records.reserve(outcome.revoked_caps.size() + 2);
  JournalRecord record = Base(span, JournalEvent::kRevoke);
  record.domain = requester;
  record.cap = cap;
  record.aux = outcome.revoked_count;
  records.push_back(record);
  Cascades(&records, span, cap, outcome, engine);
  if (outcome.restored != kInvalidCap) {
    JournalRecord restore = Base(span, JournalEvent::kRestore);
    restore.cap = outcome.restored;
    restore.parent = cap;
    const auto restored_cap = engine.Get(outcome.restored);
    if (restored_cap.ok()) {
      restore.domain = (*restored_cap)->owner;
      restore.resource = static_cast<uint8_t>((*restored_cap)->kind);
    }
    records.push_back(restore);
  }
  journal_.AppendGroup(records);
}

void AuditJournal::PurgeDomain(uint64_t span, uint32_t domain, const RevokeOutcome& outcome,
                               const CapabilityEngine& engine) {
  if (!enabled()) {
    return;
  }
  std::vector<JournalRecord> records;
  records.reserve(outcome.revoked_caps.size() + 1);
  JournalRecord record = Base(span, JournalEvent::kPurgeDomain);
  record.domain = domain;
  record.aux = outcome.revoked_count;
  records.push_back(record);
  Cascades(&records, span, 0, outcome, engine);
  journal_.AppendGroup(records);
}

void AuditJournal::Abort(uint64_t span, uint16_t op, uint32_t requester, ErrorCode error) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kOpAbort);
  record.op = static_cast<uint8_t>(op <= 0xff ? op : 0xff);
  record.domain = requester;
  record.result = static_cast<uint64_t>(error);
  journal_.Append(record);
}

void AuditJournal::Recovery(uint64_t span, uint64_t recovered_seq) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kRecovery);
  record.aux = recovered_seq;
  journal_.Append(record);
}

void AuditJournal::MigrateOut(uint64_t span, uint32_t domain, const Digest& payload_digest,
                              uint64_t source_head_prefix) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kMigrateOut);
  record.domain = domain;
  PackSealDigest(&record, payload_digest);
  record.aux = source_head_prefix;
  journal_.Append(record);
}

void AuditJournal::MigrateIn(uint64_t span, uint32_t domain, const Digest& payload_digest,
                             uint64_t source_head_prefix) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kMigrateIn);
  record.domain = domain;
  PackSealDigest(&record, payload_digest);
  record.aux = source_head_prefix;
  journal_.Append(record);
}

void AuditJournal::Effect(uint64_t span, const CapEffect& effect) {
  if (!enabled()) {
    return;
  }
  JournalRecord record = Base(span, JournalEvent::kEffect);
  record.domain = effect.domain;
  record.resource = static_cast<uint8_t>(effect.resource);
  record.base = effect.range.empty() ? effect.unit : effect.range.base;
  record.size = effect.range.size;
  record.perms = effect.perms.mask;
  record.aux = static_cast<uint64_t>(effect.kind);
  journal_.Append(record);
}

std::string AuditJournal::Summary() const {
  std::ostringstream out;
  out << "journal: " << journal_.size() << " records, " << journal_.checkpoint_count()
      << " checkpoints, head=" << journal_.head().ToHex().substr(0, 16) << "\n ";
  for (size_t i = 0; i < static_cast<size_t>(JournalEvent::kEventCount); ++i) {
    const uint64_t count = journal_.EventCount(static_cast<JournalEvent>(i));
    if (count == 0) {
      continue;
    }
    out << " " << JournalEventName(static_cast<JournalEvent>(i)) << "=" << count;
  }
  out << "\n";
  return out.str();
}

std::string AuditJournal::SpanTreeJson() const {
  return ExportSpanTreeJson(journal_.Records(), [](uint8_t op) {
    return std::string(op < static_cast<uint8_t>(ApiOp::kOpCount)
                           ? ApiOpName(static_cast<ApiOp>(op))
                           : "?");
  });
}

std::vector<uint8_t> AuditJournal::Export() {
  journal_.Checkpoint();
  return journal_.Serialize();
}

Result<JournalReplay> ReplayJournalInto(CapabilityEngine* shadow,
                                        std::span<const JournalRecord> records,
                                        const ReplayOptions& options) {
  JournalReplay replay;
  // Cascade/restore records are cross-checked against the outcome of the
  // enclosing revoke: drops and reorders the hash chain would also catch
  // become *semantic* divergences here.
  std::deque<CapId> expected_cascades;
  CapId expected_restore = kInvalidCap;
  bool at_leading_edge = options.skip_leading_orphans;

  auto diverged = [](uint64_t seq, const std::string& what) {
    return Error(ErrorCode::kJournalReplayDivergence,
                 "journal replay diverged at seq " + std::to_string(seq) + ": " + what);
  };

  for (const JournalRecord& record : records) {
    const auto event = static_cast<JournalEvent>(record.event);
    if (at_leading_edge) {
      if (event == JournalEvent::kCascade || event == JournalEvent::kRestore) {
        // Orphaned confirmations of a revoke that landed before the snapshot
        // point; the snapshot already contains their effects.
        ++replay.skipped;
        continue;
      }
      at_leading_edge = false;
    }
    if (event == JournalEvent::kRecovery) {
      // A crash boundary inside the journal: the enclosing revoke completed
      // in the engine before its record was written, but the monitor died
      // before journaling the trailing cascade/restore confirmations. The
      // recovery replay tolerated that cut; the full-history replay must
      // tolerate it at the same place. Only the monitor can mint this
      // record -- it is chained and checkpoint-signed like any other.
      expected_cascades.clear();
      expected_restore = kInvalidCap;
      ++replay.skipped;
      continue;
    }
    if (event != JournalEvent::kCascade && event != JournalEvent::kRestore) {
      if (!expected_cascades.empty()) {
        return diverged(record.seq, "cascade records missing");
      }
      expected_restore = kInvalidCap;
    }
    switch (event) {
      case JournalEvent::kDispatch:
      case JournalEvent::kEffect:
      case JournalEvent::kOpAbort:
      case JournalEvent::kRecovery:
      case JournalEvent::kMigrateOut:
      case JournalEvent::kMigrateIn:
        // Context records. An abort's compensating engine mutations were
        // journaled as ordinary records, so the shadow engine stays in
        // lockstep without special handling here; a migration's purge (out)
        // and adopting mutations (in) are likewise ordinary records.
        ++replay.skipped;
        continue;
      case JournalEvent::kRegisterDomain:
        shadow->RegisterDomain(record.domain, record.dst);
        break;
      case JournalEvent::kSealDomain:
        shadow->SealDomain(record.domain);
        break;
      case JournalEvent::kMintMemory: {
        const auto cap = shadow->MintMemory(record.domain, AddrRange{record.base, record.size},
                                            Perms(record.perms), CapRights(record.rights));
        if (!cap.ok() || *cap != record.cap) {
          return diverged(record.seq, "mint_memory id mismatch");
        }
        break;
      }
      case JournalEvent::kMintUnit: {
        const auto cap =
            shadow->MintUnit(record.domain, static_cast<ResourceKind>(record.resource),
                             record.base, CapRights(record.rights));
        if (!cap.ok() || *cap != record.cap) {
          return diverged(record.seq, "mint_unit id mismatch");
        }
        break;
      }
      case JournalEvent::kShareMemory: {
        const auto cap = shadow->ShareMemory(
            record.domain, record.parent, record.dst, AddrRange{record.base, record.size},
            Perms(record.perms), CapRights(record.rights), RevocationPolicy(record.policy),
            nullptr);
        if (!cap.ok() || *cap != record.cap) {
          return diverged(record.seq, "share_memory id mismatch");
        }
        break;
      }
      case JournalEvent::kGrantMemory: {
        const auto outcome = shadow->GrantMemory(
            record.domain, record.parent, record.dst, AddrRange{record.base, record.size},
            Perms(record.perms), CapRights(record.rights), RevocationPolicy(record.policy));
        if (!outcome.ok() || outcome->granted != record.cap ||
            outcome->remainders.size() != record.aux) {
          return diverged(record.seq, "grant_memory outcome mismatch");
        }
        break;
      }
      case JournalEvent::kShareUnit: {
        const auto cap =
            shadow->ShareUnit(record.domain, record.parent, record.dst,
                              CapRights(record.rights), RevocationPolicy(record.policy),
                              nullptr);
        if (!cap.ok() || *cap != record.cap) {
          return diverged(record.seq, "share_unit id mismatch");
        }
        break;
      }
      case JournalEvent::kGrantUnit: {
        const auto outcome =
            shadow->GrantUnit(record.domain, record.parent, record.dst,
                              CapRights(record.rights), RevocationPolicy(record.policy));
        if (!outcome.ok() || outcome->granted != record.cap) {
          return diverged(record.seq, "grant_unit outcome mismatch");
        }
        break;
      }
      case JournalEvent::kRevoke: {
        const auto outcome = shadow->Revoke(record.domain, record.cap);
        if (!outcome.ok() || outcome->revoked_count != record.aux) {
          return diverged(record.seq, "revoke outcome mismatch");
        }
        expected_cascades.assign(outcome->revoked_caps.begin(),
                                 outcome->revoked_caps.end());
        expected_restore = outcome->restored;
        break;
      }
      case JournalEvent::kCascade:
        if (expected_cascades.empty() || expected_cascades.front() != record.cap) {
          return diverged(record.seq, "cascade id mismatch");
        }
        expected_cascades.pop_front();
        break;
      case JournalEvent::kRestore:
        if (record.cap != expected_restore) {
          return diverged(record.seq, "restore id mismatch");
        }
        expected_restore = kInvalidCap;
        break;
      case JournalEvent::kPurgeDomain: {
        const auto outcome = shadow->PurgeDomain(record.domain);
        if (!outcome.ok() || outcome->revoked_count != record.aux) {
          return diverged(record.seq, "purge outcome mismatch");
        }
        expected_cascades.assign(outcome->revoked_caps.begin(),
                                 outcome->revoked_caps.end());
        expected_restore = kInvalidCap;
        break;
      }
      case JournalEvent::kEventCount:
        return diverged(record.seq, "unknown event");
    }
    ++replay.applied;
  }
  if (!expected_cascades.empty() && !options.tolerate_truncated_tail) {
    return Error(ErrorCode::kJournalReplayDivergence,
                 "journal replay: trailing cascade records missing");
  }
  replay.graph_json = ExportCapabilityGraphJson(*shadow);
  return replay;
}

Result<JournalReplay> ReplayJournal(const std::vector<JournalRecord>& records) {
  CapabilityEngine shadow;
  return ReplayJournalInto(&shadow, records);
}

}  // namespace tyche
