// Copyright 2026 The Tyche Reproduction Authors.
// The monitor's register-level ABI.
//
// Real domains do not call C++ methods: they execute VMCALL (x86) or ECALL
// (RISC-V) with arguments in registers. This dispatcher is that boundary --
// a single entry point taking six argument registers, returning two result
// registers plus an error code. It exists for three reasons:
//   1. realism: libtyche-style runtimes can be written against a stable ABI;
//   2. auditability: the COMPLETE attack surface of the monitor is this one
//      function (the C7 experiment counts it);
//   3. fuzzability: hostile register values exercise every validation path
//      (see dispatch_fuzz coverage in tests).
//
// Calls with out-of-band payloads (attestation reports) write results into
// caller-owned memory passed by physical address, like real monitors do.

#ifndef SRC_MONITOR_DISPATCH_H_
#define SRC_MONITOR_DISPATCH_H_

#include "src/monitor/monitor.h"

namespace tyche {

// The virtual "registers" of a monitor call.
struct ApiRegs {
  uint64_t op = 0;       // ApiOp
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
  uint64_t arg3 = 0;
  uint64_t arg4 = 0;
  uint64_t arg5 = 0;
};

struct ApiResult {
  uint64_t error = 0;  // ErrorCode (0 = OK)
  uint64_t ret0 = 0;
  uint64_t ret1 = 0;
};

// Register conventions per op (all unspecified registers must be zero):
//   kCreateDomain      -> ret0 = domain id, ret1 = handle cap
//   kSetEntryPoint      arg0 = handle, arg1 = entry pa
//   kShareMemory        arg0 = src cap, arg1 = dst handle, arg2 = base,
//                       arg3 = size, arg4 = perms, arg5 = rights<<8|policy
//                      -> ret0 = new cap
//   kGrantMemory        like kShareMemory -> ret0 = granted cap
//   kShareUnit          arg0 = src cap, arg1 = dst handle,
//                       arg2 = rights<<8|policy -> ret0 = new cap
//   kGrantUnit          like kShareUnit -> ret0 = granted cap
//   kRevoke             arg0 = cap
//   kExtendMeasurement  arg0 = handle, arg1 = base, arg2 = size
//   kSeal               arg0 = handle
//   kAttestDomain       arg0 = handle (0 = self), arg1 = nonce,
//                       arg2 = out pa, arg3 = out size
//                      -> ret0 = bytes written (serialized report)
//   kEnumerate          arg0 = handle -> ret0 = resource count
//   kTransition         arg0 = handle
//   kReturn             (no args)
//   kRegisterFastTransition arg0 = handle
//   kFastTransition     arg0 = target domain id
//   kDestroyDomain      arg0 = handle
//   kRouteInterrupt     arg0 = device cap
//   kTakeInterrupt     -> ret0 = vector, ret1 = source bdf
//   kSetTransitionPolicy arg0 = handle, arg1 = scrub flag (0/1)
ApiResult Dispatch(Monitor* monitor, CoreId core, const ApiRegs& regs);

}  // namespace tyche

#endif  // SRC_MONITOR_DISPATCH_H_
