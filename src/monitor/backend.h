// Copyright 2026 The Tyche Reproduction Authors.
// Platform backend interface (§4: "a platform-specific backend ...
// configures commodity hardware mechanisms to enforce the desired
// policies"). The capability engine produces effect lists; a backend
// projects them onto real enforcement state: nested page tables + IOMMU on
// the VT-x machine, PMP files + IOPMP on the RISC-V machine.

#ifndef SRC_MONITOR_BACKEND_H_
#define SRC_MONITOR_BACKEND_H_

#include <atomic>
#include <cstdint>

#include "src/capability/engine.h"
#include "src/hw/cpu.h"
#include "src/support/status.h"

namespace tyche {

// What the enforcement hardware actually did on the monitor's behalf.
// Maintained by every backend; exported through Monitor::DumpTelemetry() so
// the cost of projecting policy onto hardware is observable per deployment.
struct BackendStats {
  uint64_t memory_syncs = 0;      // SyncMemory invocations
  uint64_t pages_mapped = 0;      // EPT pages installed (VT-x)
  uint64_t pages_unmapped = 0;    // EPT pages removed (VT-x)
  uint64_t pages_protected = 0;   // EPT permission rewrites (VT-x)
  uint64_t pmp_recompiles = 0;    // full PMP program recompilations (RISC-V)
  uint64_t pmp_entry_writes = 0;  // PMP/IOPMP entry register writes (RISC-V)
  uint64_t tlb_shootdowns = 0;    // TLB flushes issued to cores
  uint64_t iommu_updates = 0;     // device attach/detach reprogramming
  uint64_t core_binds = 0;        // slow-path protection-context switches
  uint64_t fast_binds = 0;        // VMFUNC-style fast switches
};

class Backend {
 public:
  virtual ~Backend() = default;

  // Allocates per-domain enforcement state (e.g. an empty EPT).
  virtual Status CreateDomainContext(DomainId domain, uint16_t asid) = 0;
  virtual Status DestroyDomainContext(DomainId domain) = 0;

  // Re-derives the enforcement state for `domain` over `range` from the
  // capability engine (the single source of truth). Idempotent; called
  // after every capability mutation that touches the domain.
  virtual Status SyncMemory(DomainId domain, const AddrRange& range) = 0;

  // Attaches / detaches a PCI device to a domain's protection context.
  virtual Status AttachDevice(DomainId domain, uint16_t bdf) = 0;
  virtual Status DetachDevice(DomainId domain, uint16_t bdf) = 0;

  // Installs domain's protection context on a core (slow path: full switch
  // with TLB flush where the hardware requires it).
  virtual Status BindCore(DomainId domain, CoreId core) = 0;

  // Fast-transition support (VMFUNC EPTP-list style). Returns
  // kUnimplemented where the hardware has no fast path (PMP).
  virtual Status RegisterFastPath(DomainId domain, CoreId core) = 0;
  virtual Status FastBindCore(DomainId domain, CoreId core) = 0;

  // Flushes stale translations for a domain after revocation. `cores_mask`
  // selects the cores currently running the domain.
  virtual void FlushDomain(DomainId domain) = 0;

  // True if every mapping the hardware would honour for `domain` is
  // justified by an active capability -- the judiciary-facing consistency
  // check used by tests and the self-audit.
  virtual Result<bool> ValidateAgainst(const CapabilityEngine& engine, DomainId domain) = 0;

  virtual const char* name() const = 0;

  const BackendStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BackendStats{}; }

  // Fail-safe occupancy: domains currently parked in this backend's
  // fail-safe state (VT-x degraded hull / PMP deny-all). Maintained with
  // relaxed atomics at the fail-safe transitions so the invariant watchdog
  // can read "backend sync dirtiness" without taking any monitor lock.
  uint64_t failsafe_active() const {
    return failsafe_active_.load(std::memory_order_relaxed);
  }

 protected:
  void NoteFailsafeEntered() {
    failsafe_active_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteFailsafeCleared() {
    failsafe_active_.fetch_sub(1, std::memory_order_relaxed);
  }

  BackendStats stats_;
  std::atomic<uint64_t> failsafe_active_{0};
};

}  // namespace tyche

#endif  // SRC_MONITOR_BACKEND_H_
