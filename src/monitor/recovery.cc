// Copyright 2026 The Tyche Reproduction Authors.
// Recovery subsystem: snapshot encode/decode, Monitor::Recover /
// Monitor::ResyncAll / Monitor::CaptureSnapshot, and the offline
// snapshot-anchored verifier. Kept out of monitor.cc so the crash path and
// the hot path do not share a translation unit.

#include "src/monitor/recovery.h"

#include <algorithm>
#include <map>

#include "src/monitor/audit.h"
#include "src/monitor/monitor.h"
#include "src/monitor/pmp_backend.h"
#include "src/monitor/vtx_backend.h"
#include "src/support/log.h"

namespace tyche {

namespace {

// Section tags inside the TYSN container.
constexpr uint32_t kSectionEngine = 1;   // EngineImage: lineage tree + domains
constexpr uint32_t kSectionMonitor = 2;  // TrustDomain table + id allocators
constexpr uint32_t kSectionMeta = 3;     // metadata pool geometry

// Everything a snapshot carries. The rolling measurement contexts of
// unsealed domains are deliberately absent: they are NOT durable (a sealed
// domain's final measurement rides in its seal record instead).
struct MonitorImage {
  EngineImage engine;
  std::vector<TrustDomain> domains;
  DomainId next_domain = 0;
  uint16_t next_asid = 1;
  uint64_t seal_nonce = 1;
  AddrRange monitor_range;
  Digest firmware_measurement;
  Digest monitor_measurement;
  AddrRange metadata_pool;
};

std::vector<uint8_t> EncodeEngine(const EngineImage& image) {
  SectionWriter out;
  out.Append<uint64_t>(image.next_id);
  out.Append<uint32_t>(static_cast<uint32_t>(image.caps.size()));
  for (const Capability& cap : image.caps) {
    out.Append<uint64_t>(cap.id);
    out.Append<uint32_t>(cap.owner);
    out.Append<uint8_t>(static_cast<uint8_t>(cap.kind));
    out.Append<uint64_t>(cap.range.base);
    out.Append<uint64_t>(cap.range.size);
    out.Append<uint64_t>(cap.unit);
    out.Append<uint8_t>(cap.perms.mask);
    out.Append<uint8_t>(cap.rights.mask);
    out.Append<uint8_t>(cap.revocation.mask);
    out.Append<uint8_t>(static_cast<uint8_t>(cap.state));
    out.Append<uint8_t>(static_cast<uint8_t>(cap.origin));
    out.Append<uint64_t>(cap.parent);
    out.Append<uint32_t>(static_cast<uint32_t>(cap.children.size()));
    for (const CapId child : cap.children) {
      out.Append<uint64_t>(child);
    }
  }
  out.Append<uint32_t>(static_cast<uint32_t>(image.domains.size()));
  for (const EngineImage::DomainEntry& entry : image.domains) {
    out.Append<uint32_t>(entry.id);
    out.Append<uint32_t>(entry.creator);
    out.Append<uint8_t>(entry.sealed ? 1 : 0);
  }
  return out.Take();
}

Status DecodeEngine(std::span<const uint8_t> bytes, EngineImage* image) {
  SectionReader in(bytes);
  const auto malformed = [](const char* what) {
    return Error(ErrorCode::kInvalidArgument, std::string("snapshot engine: ") + what);
  };
  uint32_t cap_count = 0;
  if (!in.Read(&image->next_id) || !in.Read(&cap_count)) {
    return malformed("truncated header");
  }
  if (cap_count > bytes.size()) {
    return malformed("implausible cap count");
  }
  image->caps.reserve(cap_count);
  for (uint32_t i = 0; i < cap_count; ++i) {
    Capability cap;
    uint8_t kind = 0;
    uint8_t state = 0;
    uint8_t origin = 0;
    uint32_t child_count = 0;
    const bool ok = in.Read(&cap.id) && in.Read(&cap.owner) && in.Read(&kind) &&
                    in.Read(&cap.range.base) && in.Read(&cap.range.size) &&
                    in.Read(&cap.unit) && in.Read(&cap.perms.mask) &&
                    in.Read(&cap.rights.mask) && in.Read(&cap.revocation.mask) &&
                    in.Read(&state) && in.Read(&origin) && in.Read(&cap.parent) &&
                    in.Read(&child_count);
    if (!ok || child_count > bytes.size()) {
      return malformed("truncated capability");
    }
    if (kind > static_cast<uint8_t>(ResourceKind::kDomain) ||
        state > static_cast<uint8_t>(CapState::kDonated) ||
        origin > static_cast<uint8_t>(CapOrigin::kRestore)) {
      return malformed("enum out of range");
    }
    cap.kind = static_cast<ResourceKind>(kind);
    cap.state = static_cast<CapState>(state);
    cap.origin = static_cast<CapOrigin>(origin);
    cap.children.reserve(child_count);
    for (uint32_t c = 0; c < child_count; ++c) {
      CapId child = kInvalidCap;
      if (!in.Read(&child)) {
        return malformed("truncated child list");
      }
      cap.children.push_back(child);
    }
    image->caps.push_back(std::move(cap));
  }
  uint32_t domain_count = 0;
  if (!in.Read(&domain_count) || domain_count > bytes.size()) {
    return malformed("truncated domain table");
  }
  image->domains.reserve(domain_count);
  for (uint32_t i = 0; i < domain_count; ++i) {
    EngineImage::DomainEntry entry;
    uint8_t sealed = 0;
    if (!in.Read(&entry.id) || !in.Read(&entry.creator) || !in.Read(&sealed)) {
      return malformed("truncated domain entry");
    }
    entry.sealed = sealed != 0;
    image->domains.push_back(entry);
  }
  if (in.remaining() != 0) {
    return malformed("trailing bytes");
  }
  return OkStatus();
}

Status DecodeMonitorImage(std::span<const uint8_t> snapshot_bytes, MonitorImage* image) {
  TYCHE_ASSIGN_OR_RETURN(const SnapshotView view, SnapshotView::Parse(snapshot_bytes));
  TYCHE_ASSIGN_OR_RETURN(const std::span<const uint8_t> engine_bytes,
                         view.Section(kSectionEngine));
  TYCHE_RETURN_IF_ERROR(DecodeEngine(engine_bytes, &image->engine));

  TYCHE_ASSIGN_OR_RETURN(const std::span<const uint8_t> monitor_bytes,
                         view.Section(kSectionMonitor));
  const auto malformed = [](const char* what) {
    return Error(ErrorCode::kInvalidArgument, std::string("snapshot monitor: ") + what);
  };
  SectionReader in(monitor_bytes);
  uint32_t domain_count = 0;
  const bool header_ok =
      in.Read(&image->next_domain) && in.Read(&image->next_asid) &&
      in.Read(&image->seal_nonce) && in.Read(&image->monitor_range.base) &&
      in.Read(&image->monitor_range.size) && in.ReadDigest(&image->firmware_measurement) &&
      in.ReadDigest(&image->monitor_measurement) && in.Read(&domain_count);
  if (!header_ok || domain_count > monitor_bytes.size()) {
    return malformed("truncated header");
  }
  image->domains.reserve(domain_count);
  for (uint32_t i = 0; i < domain_count; ++i) {
    TrustDomain domain;
    uint8_t state = 0;
    uint8_t entry_point_set = 0;
    uint8_t scrub = 0;
    const bool ok = in.Read(&domain.id) && in.Read(&domain.creator) && in.Read(&state) &&
                    in.ReadString(&domain.name) && in.Read(&domain.entry_point) &&
                    in.Read(&entry_point_set) && in.ReadDigest(&domain.measurement) &&
                    in.Read(&domain.asid) && in.Read(&scrub);
    if (!ok || state > static_cast<uint8_t>(DomainState::kDead)) {
      return malformed("truncated or invalid trust domain");
    }
    domain.state = static_cast<DomainState>(state);
    domain.entry_point_set = entry_point_set != 0;
    domain.scrub_on_exit = scrub != 0;
    // measurement_ctx is left fresh on purpose: rolling measurements of
    // unsealed domains are not durable.
    image->domains.push_back(std::move(domain));
  }
  if (in.remaining() != 0) {
    return malformed("trailing bytes");
  }

  TYCHE_ASSIGN_OR_RETURN(const std::span<const uint8_t> meta_bytes,
                         view.Section(kSectionMeta));
  SectionReader meta(meta_bytes);
  if (!meta.Read(&image->metadata_pool.base) || !meta.Read(&image->metadata_pool.size) ||
      meta.remaining() != 0) {
    return Error(ErrorCode::kInvalidArgument, "snapshot meta: malformed");
  }
  return OkStatus();
}

}  // namespace

void SnapshotStore::Put(MonitorSnapshot snapshot) {
  // Overwrite an existing entry for the same seq (re-checkpoint after
  // recovery), otherwise keep ascending order.
  for (MonitorSnapshot& existing : snapshots_) {
    if (existing.seq == snapshot.seq) {
      existing = std::move(snapshot);
      return;
    }
  }
  snapshots_.push_back(std::move(snapshot));
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const MonitorSnapshot& a, const MonitorSnapshot& b) { return a.seq < b.seq; });
}

Result<MonitorSnapshot> SnapshotStore::LatestAtOrBefore(uint64_t seq) const {
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->seq <= seq) {
      return *it;
    }
  }
  return Error(ErrorCode::kNotFound, "no snapshot at or before seq " + std::to_string(seq));
}

Result<MonitorSnapshot> SnapshotStore::Latest() const {
  if (snapshots_.empty()) {
    return Error(ErrorCode::kNotFound, "no snapshots");
  }
  return snapshots_.back();
}

void SnapshotStore::PruneOlderThan(uint64_t seq) {
  snapshots_.erase(std::remove_if(snapshots_.begin(), snapshots_.end(),
                                  [seq](const MonitorSnapshot& s) { return s.seq < seq; }),
                   snapshots_.end());
}

Digest EngineDigest(const CapabilityEngine& engine) {
  const std::vector<uint8_t> bytes = EncodeEngine(engine.Capture());
  return Sha256::Hash(std::span<const uint8_t>(bytes.data(), bytes.size()));
}

std::vector<uint8_t> Monitor::CaptureSnapshot() const {
  SnapshotWriter writer;
  writer.AddSection(kSectionEngine, EncodeEngine(engine_.Capture()));

  SectionWriter monitor;
  monitor.Append<uint32_t>(next_domain_);
  monitor.Append<uint16_t>(next_asid_);
  monitor.Append<uint64_t>(seal_nonce_.load(std::memory_order_relaxed));
  monitor.Append<uint64_t>(monitor_range_.base);
  monitor.Append<uint64_t>(monitor_range_.size);
  monitor.AppendDigest(firmware_measurement_);
  monitor.AppendDigest(monitor_measurement_);
  monitor.Append<uint32_t>(static_cast<uint32_t>(domains_.size()));
  for (const auto& [id, domain] : domains_) {
    monitor.Append<uint32_t>(domain.id);
    monitor.Append<uint32_t>(domain.creator);
    monitor.Append<uint8_t>(static_cast<uint8_t>(domain.state));
    monitor.AppendString(domain.name);
    monitor.Append<uint64_t>(domain.entry_point);
    monitor.Append<uint8_t>(domain.entry_point_set ? 1 : 0);
    monitor.AppendDigest(domain.measurement);
    monitor.Append<uint16_t>(domain.asid);
    monitor.Append<uint8_t>(domain.scrub_on_exit ? 1 : 0);
  }
  writer.AddSection(kSectionMonitor, monitor.Take());

  SectionWriter meta;
  meta.Append<uint64_t>(metadata_pool_.pool().base);
  meta.Append<uint64_t>(metadata_pool_.pool().size);
  writer.AddSection(kSectionMeta, meta.Take());
  return writer.Finish();
}

Status Monitor::EnableSnapshots(SnapshotStore* store) {
  // The provider reads monitor state under the journal lock, which is why
  // EnableConcurrentDispatch refuses to engage once this flag is set. The
  // exclusion must hold in BOTH orders: binding a provider under a live
  // concurrent dispatcher would hand the journal lock a state reader that
  // races every in-flight mutation.
  if (concurrent_dispatch()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "snapshots cannot bind while concurrent dispatch is live");
  }
  snapshots_bound_ = true;
  // Runs under the journal lock each time a checkpoint is signed; it must
  // not call back into the journal (and does not).
  audit_.journal().set_snapshot_provider([this, store](uint64_t seq) {
    MonitorSnapshot snapshot;
    snapshot.seq = seq;
    snapshot.bytes = CaptureSnapshot();
    snapshot.digest = SnapshotDigest(snapshot.bytes);
    const Digest digest = snapshot.digest;
    store->Put(std::move(snapshot));
    return digest;
  });
  return OkStatus();
}

Status Monitor::ResyncAll() {
  // The platform reset cleared volatile translation hardware. Mirror that
  // before rebuilding: any IOMMU context, I/O-PMP file, or per-core table
  // pointer left by the dead monitor references page tables that no longer
  // exist, and the fresh backend's bookkeeping would never find them.
  for (const auto& device : machine_->devices()) {
    (void)machine_->iommu().DetachDevice(device->bdf());
    machine_->io_pmp().Remove(device->bdf());
  }
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    machine_->SetCoreEpt(core, nullptr, /*flush_tlb=*/true);
    machine_->SetCoreGuestPageTable(core, nullptr);
    machine_->cpu(core).pmp().Reset();
  }
  // The old translation structures died with the crash: rebuild the backend
  // and the metadata pool it allocates from (same selection as the
  // constructor). Backend stats start a fresh epoch with the new backend.
  metadata_pool_ = FrameAllocator(metadata_pool_.pool());
  if (machine_->arch() == IsaArch::kX86_64) {
    backend_ = std::make_unique<VtxBackend>(machine_, &engine_, &metadata_pool_);
  } else {
    backend_ = std::make_unique<PmpBackend>(machine_, &engine_, monitor_range_);
  }
  watchdog_.set_backend(backend_.get());
  for (const auto& [id, domain] : domains_) {
    if (!domain.alive()) {
      continue;
    }
    TYCHE_RETURN_IF_ERROR(backend_->CreateDomainContext(id, domain.asid));
    for (const CapabilityEngine::MappedRegion& region : engine_.DomainMemoryMap(id)) {
      TYCHE_RETURN_IF_ERROR(backend_->SyncMemory(id, region.range));
    }
  }
  for (const auto& device : machine_->devices()) {
    TYCHE_RETURN_IF_ERROR(ReconcileDevice(device->bdf().value));
  }
  // Execution state is not durable: clear call stacks and restart every
  // core in the initial domain.
  for (auto& stack : call_stacks_) {
    stack.clear();
  }
  std::fill(active_spans_.begin(), active_spans_.end(), 0);
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    machine_->cpu(core).set_current_domain(0);
    machine_->cpu(core).set_mode(PrivilegeMode::kSupervisor);
    TYCHE_RETURN_IF_ERROR(backend_->BindCore(0, core));
  }
  return OkStatus();
}

Status Monitor::Recover(std::span<const uint8_t> snapshot_bytes,
                        const ParsedJournal& journal) {
  // 1. The journal must verify: anchored chain, every checkpoint signature.
  //    Tail coverage is relaxed — a crashed monitor cannot sign its death.
  TYCHE_RETURN_IF_ERROR(Journal::VerifyChain(journal.records, journal.checkpoints, key_.pub,
                                             /*require_covered_tail=*/false));

  // 2. Stage everything before touching live state: a malformed snapshot or
  //    a diverging replay must leave this monitor unchanged.
  CapabilityEngine staged_engine;
  std::map<DomainId, TrustDomain> staged_domains;
  DomainId staged_next_domain = 0;
  uint16_t staged_next_asid = 1;
  uint64_t staged_seal_nonce = 1;
  size_t suffix_begin = 0;
  const uint64_t base = journal.records.empty() ? 0 : journal.records.front().seq;
  const bool have_snapshot = !snapshot_bytes.empty();

  if (have_snapshot) {
    // The snapshot is trusted only through its checkpoint binding: its
    // digest must appear in a checkpoint whose signature VerifyChain
    // already validated. The newest binding wins (shortest replay).
    const Digest digest = SnapshotDigest(snapshot_bytes);
    const JournalCheckpoint* bound = nullptr;
    for (const JournalCheckpoint& checkpoint : journal.checkpoints) {
      if (checkpoint.snapshot == digest) {
        bound = &checkpoint;
      }
    }
    if (bound == nullptr) {
      return Error(ErrorCode::kJournalSignatureInvalid,
                   "recovery: snapshot is not bound to any signed checkpoint");
    }
    MonitorImage image;
    TYCHE_RETURN_IF_ERROR(DecodeMonitorImage(snapshot_bytes, &image));
    if (image.monitor_measurement != monitor_measurement_ ||
        image.firmware_measurement != firmware_measurement_) {
      return Error(ErrorCode::kAttestationMismatch,
                   "recovery: snapshot was taken by a different monitor identity");
    }
    if (image.monitor_range.base != monitor_range_.base ||
        image.monitor_range.size != monitor_range_.size ||
        image.metadata_pool.base != metadata_pool_.pool().base ||
        image.metadata_pool.size != metadata_pool_.pool().size) {
      return Error(ErrorCode::kAttestationMismatch,
                   "recovery: monitor reservation geometry changed");
    }
    TYCHE_RETURN_IF_ERROR(staged_engine.Restore(image.engine));
    for (TrustDomain& domain : image.domains) {
      const DomainId id = domain.id;
      staged_domains[id] = std::move(domain);
    }
    staged_next_domain = image.next_domain;
    staged_next_asid = image.next_asid;
    staged_seal_nonce = image.seal_nonce;
    const uint64_t suffix_start_seq = bound->seq + 1;
    if (suffix_start_seq < base) {
      return Error(ErrorCode::kJournalChainBroken,
                   "recovery: journal does not reach back to the snapshot checkpoint");
    }
    suffix_begin = std::min(static_cast<size_t>(suffix_start_seq - base),
                            journal.records.size());
  } else if (base != 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 "recovery: a truncated journal requires its anchoring snapshot");
  }

  const std::span<const JournalRecord> suffix =
      std::span<const JournalRecord>(journal.records).subspan(suffix_begin);

  // 3. Replay the suffix on top of the snapshot image through the shadow
  //    replay machinery. kOpAbort spans need no special handling: their
  //    compensating mutations are ordinary records, so rolled-back
  //    transactions from the fault framework land rolled-back here too.
  ReplayOptions options;
  options.tolerate_truncated_tail = true;  // the crash can cut a span in half
  options.skip_leading_orphans = have_snapshot;
  TYCHE_RETURN_IF_ERROR(ReplayJournalInto(&staged_engine, suffix, options).status());

  // 4. Domain lifecycle + attested identity from the same suffix. Asids are
  //    reassigned in record order, matching the original creation order.
  for (const JournalRecord& record : suffix) {
    switch (static_cast<JournalEvent>(record.event)) {
      case JournalEvent::kRegisterDomain: {
        TrustDomain domain;
        domain.id = record.domain;
        if (record.dst == kJournalNoDomain) {
          domain.creator = kInvalidDomain;
          domain.entry_point = 0;  // the initial domain enters anywhere
          domain.entry_point_set = true;
        } else {
          domain.creator = record.dst;
        }
        domain.name = "recovered-" + std::to_string(record.domain);
        domain.asid = staged_next_asid++;
        if (record.domain >= staged_next_domain) {
          staged_next_domain = record.domain + 1;
        }
        staged_domains[domain.id] = std::move(domain);
        break;
      }
      case JournalEvent::kSealDomain: {
        const auto it = staged_domains.find(record.domain);
        if (it == staged_domains.end()) {
          return Error(ErrorCode::kJournalReplayDivergence,
                       "recovery: seal record for unknown domain");
        }
        it->second.state = DomainState::kSealed;
        it->second.measurement = PackedSealDigest(record);
        it->second.entry_point = record.aux;
        it->second.entry_point_set = true;
        break;
      }
      case JournalEvent::kPurgeDomain: {
        const auto it = staged_domains.find(record.domain);
        if (it != staged_domains.end()) {
          it->second.state = DomainState::kDead;
        }
        break;
      }
      default:
        break;
    }
  }
  const auto initial = staged_domains.find(0);
  if (initial == staged_domains.end() || !initial->second.alive()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "recovery: history contains no live initial domain");
  }

  // 5. Commit the bookkeeping. From here on a failure (e.g. an injected
  //    re-sync fault) leaves hardware incomplete but the committed state is
  //    re-derivable: Recover() simply runs again.
  engine_ = std::move(staged_engine);
  domains_ = std::move(staged_domains);
  next_domain_ = staged_next_domain;
  next_asid_ = staged_next_asid;
  // Nonce-reuse guard: seal_nonce_ grew by at most one per journaled record
  // between the snapshot and the crash; skip past that bound.
  seal_nonce_ = staged_seal_nonce + suffix.size() + 1;

  // Span ids restart above everything in the recovered history so the span
  // tree never merges pre- and post-crash work.
  uint64_t max_span = 0;
  for (const JournalRecord& record : journal.records) {
    max_span = std::max(max_span, record.span);
  }
  next_span_.store(max_span + 1, std::memory_order_relaxed);

  // 6. Resume the chain: new records extend the recovered history instead
  //    of restarting from genesis.
  audit_.journal().Restore(journal.records, journal.checkpoints);

  // 7. Hardware: full re-sync of both backend families.
  TYCHE_RETURN_IF_ERROR(ResyncAll());

  // A crash mid-migration is an implicit rollback: the source journal only
  // carries a handoff record once the migration committed, so a recovered
  // monitor must not keep any domain frozen.
  frozen_.clear();

  // 8. Telemetry reset-and-mark: only the recovery counter crosses the
  //    epoch, so post-recovery dumps never mix pre-crash samples. The
  //    recovered-seq flight record is captured BEFORE the reset so its
  //    metrics delta shows the pre-crash epoch draining to zero.
  const uint64_t recovered_seq =
      journal.records.empty()
          ? (journal.checkpoints.empty() ? 0 : journal.checkpoints.back().seq)
          : journal.records.back().seq;
  const uint64_t recovery_span = next_span_.fetch_add(1, std::memory_order_relaxed);
  flight_.Capture("recovery", static_cast<uint16_t>(ApiOp::kOpCount), recovery_span,
                  /*error=*/0,
                  "recovered to journal seq " + std::to_string(recovered_seq));
  const uint64_t recoveries = counters_.recoveries->Value() + 1;
  ResetStatCounters();
  counters_.recoveries->Add(recoveries);
  telemetry_.ring().Clear();
  telemetry_.ClearHistograms();

  audit_.Recovery(recovery_span, recovered_seq);
  TYCHE_LOG(kWarn) << "monitor recovered to journal seq " << recovered_seq << " ("
                   << (have_snapshot ? "snapshot + suffix replay" : "full replay")
                   << ", recovery #" << recoveries << ")";
  return OkStatus();
}

Status VerifyJournalWithSnapshot(std::span<const uint8_t> journal_bytes,
                                 std::span<const uint8_t> snapshot_bytes,
                                 const SchnorrPublicKey& key,
                                 const std::string& expected_graph_json) {
  TYCHE_ASSIGN_OR_RETURN(const ParsedJournal parsed, Journal::Deserialize(journal_bytes));
  TYCHE_RETURN_IF_ERROR(Journal::VerifyChain(parsed.records, parsed.checkpoints, key));

  const Digest digest = SnapshotDigest(snapshot_bytes);
  const JournalCheckpoint* bound = nullptr;
  for (const JournalCheckpoint& checkpoint : parsed.checkpoints) {
    if (checkpoint.snapshot == digest) {
      bound = &checkpoint;
    }
  }
  if (bound == nullptr) {
    return Error(ErrorCode::kJournalSignatureInvalid,
                 "snapshot digest is not bound to any signed checkpoint");
  }

  MonitorImage image;
  TYCHE_RETURN_IF_ERROR(DecodeMonitorImage(snapshot_bytes, &image));
  CapabilityEngine shadow;
  TYCHE_RETURN_IF_ERROR(shadow.Restore(image.engine));

  const uint64_t parsed_base = parsed.records.empty() ? 0 : parsed.records.front().seq;
  const uint64_t suffix_start_seq = bound->seq + 1;
  if (suffix_start_seq < parsed_base) {
    return Error(ErrorCode::kJournalChainBroken,
                 "journal does not reach back to the snapshot checkpoint");
  }
  const size_t suffix_begin =
      std::min(static_cast<size_t>(suffix_start_seq - parsed_base), parsed.records.size());

  ReplayOptions options;
  options.skip_leading_orphans = true;  // checkpoints can land mid-span
  TYCHE_ASSIGN_OR_RETURN(
      const JournalReplay replay,
      ReplayJournalInto(&shadow,
                        std::span<const JournalRecord>(parsed.records).subspan(suffix_begin),
                        options));
  if (!expected_graph_json.empty() && replay.graph_json != expected_graph_json) {
    return Error(ErrorCode::kJournalReplayDivergence,
                 "suffix replay over the snapshot diverges from the attested graph");
  }
  return OkStatus();
}

Result<BootOutcome> MeasuredRecovery(Machine* machine, const BootParams& params,
                                     std::span<const uint8_t> snapshot_bytes,
                                     const ParsedJournal& journal) {
  // The crash rebooted the platform: PCR banks are back to zero, so the
  // re-measured boot of the same image reproduces the golden PCR values and
  // tier-1 attestation works unchanged after recovery.
  machine->tpm().Reset();
  TYCHE_ASSIGN_OR_RETURN(BootOutcome outcome, PrepareMonitor(machine, params));
  TYCHE_RETURN_IF_ERROR(outcome.monitor->Recover(snapshot_bytes, journal));
  outcome.initial_domain = 0;
  return outcome;
}

}  // namespace tyche
