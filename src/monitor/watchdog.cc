// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/watchdog.h"

#include <string>

#include "src/support/log.h"

namespace tyche {

InvariantWatchdog::InvariantWatchdog(const Journal* journal,
                                     const CapabilityEngine* engine,
                                     FlightRecorder* flight)
    : journal_(journal), engine_(engine), flight_(flight) {
  pos_.head = JournalGenesis();
}

void InvariantWatchdog::Tick(uint64_t n, uint16_t op, uint64_t span) {
  if (dispatches_.fetch_add(1, std::memory_order_relaxed) % n != n - 1) {
    return;
  }
  RunChecks(op, span);
}

void InvariantWatchdog::CheckNow(uint16_t op, uint64_t span) {
  RunChecks(op, span);
}

void InvariantWatchdog::RunChecks(uint16_t op, uint64_t span) {
  std::unique_lock lock(check_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    return;  // another thread is mid-check; this tick's turn is forfeit
  }
  checks_.fetch_add(1, std::memory_order_relaxed);

  // 1. Chain-head continuity, incremental from the last verified position.
  //    Sticky: once the chain is broken there is nothing sound to re-anchor
  //    on, and re-verifying would capture the same corpse every N dispatches.
  if (chain_healthy_.load(std::memory_order_relaxed)) {
    const Status chain = journal_->VerifyTail(&pos_);
    if (!chain.ok()) {
      Violation(&chain_healthy_, "journal_chain", op, span, chain.ToString());
    }
  }

  // 2. Per-owner root-cap index vs the lineage map. Sticky for the same
  //    reason.
  if (index_healthy_.load(std::memory_order_relaxed)) {
    const Status index = engine_->CheckOwnedIndex();
    if (!index.ok()) {
      Violation(&index_healthy_, "owned_index", op, span, index.ToString());
    }
  }

  // 3. Backend fail-safe occupancy. TRANSIENT: the fail-safe is designed to
  //    be repaired by a later covering sync, so the gauge recovers when the
  //    count returns to zero. Only the healthy->unhealthy edge captures.
  if (backend_ != nullptr) {
    const uint64_t dirty = backend_->failsafe_active();
    if (dirty == 0) {
      backend_healthy_.store(true, std::memory_order_relaxed);
    } else if (backend_healthy_.load(std::memory_order_relaxed)) {
      Violation(&backend_healthy_, "backend_sync", op, span,
                std::to_string(dirty) + " domain(s) in fail-safe state");
    }
  }
}

void InvariantWatchdog::Violation(std::atomic<bool>* gauge, const char* invariant,
                                  uint16_t op, uint64_t span,
                                  const std::string& detail) {
  gauge->store(false, std::memory_order_relaxed);
  violations_.fetch_add(1, std::memory_order_relaxed);
  TYCHE_LOG(kWarn) << "watchdog: invariant '" << invariant
                   << "' violated (span " << span << "): " << detail;
  if (flight_ != nullptr) {
    flight_->Capture("watchdog", op, span, /*error=*/0,
                     std::string(invariant) + ": " + detail);
  }
}

}  // namespace tyche
