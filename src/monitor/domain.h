// Copyright 2026 The Tyche Reproduction Authors.
// Trust domains (§3.1): "an identity associated with a set of access rights
// to physical resources". The resource set itself lives in the capability
// engine; this struct carries identity, life-cycle state, the fixed entry
// point, and the accumulated measurement.

#ifndef SRC_MONITOR_DOMAIN_H_
#define SRC_MONITOR_DOMAIN_H_

#include <cstdint>
#include <string>

#include "src/crypto/sha256.h"
#include "src/hw/cpu.h"

namespace tyche {

enum class DomainState : uint8_t {
  kCreated,  // resources may still be added, measurement still open
  kSealed,   // resource set frozen (§3.1), measurement final
  kDead,     // destroyed; all capabilities revoked
};

struct TrustDomain {
  DomainId id = kInvalidDomain;
  DomainId creator = kInvalidDomain;
  DomainState state = DomainState::kCreated;
  std::string name;  // debugging / reports only, not part of identity

  // Fixed entry point (physical address). Transitions may only enter here.
  uint64_t entry_point = 0;
  bool entry_point_set = false;

  // Rolling measurement of explicitly registered content (extended via the
  // ExtendMeasurement call, finalized at seal time with the config hash).
  Sha256 measurement_ctx;
  Digest measurement;  // valid once sealed

  // VPID/ASID tag for the fast-transition path.
  uint16_t asid = 0;

  // Side-channel mitigation policy (§4.1: "revocation policies that flush
  // micro-architectural state (caches) during a transition"): when set,
  // every monitor-mediated exit from this domain scrubs the core's
  // micro-architectural state. Incompatible with the unmediated fast path.
  bool scrub_on_exit = false;

  bool alive() const { return state != DomainState::kDead; }
  bool sealed() const { return state == DomainState::kSealed; }
};

}  // namespace tyche

#endif  // SRC_MONITOR_DOMAIN_H_
