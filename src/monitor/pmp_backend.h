// Copyright 2026 The Tyche Reproduction Authors.
// The RISC-V backend (§4): enforces capabilities with per-hart PMP files.
//
// "PMP only supports a fixed number of segments, which requires a careful
// memory layout of trust domains and validation by the monitor." This
// backend makes that constraint concrete: each capability mutation
// recomputes the domain's memory map and re-validates that it can be encoded
// into the available PMP entries (NAPOT regions cost one entry, irregular
// regions cost a TOR pair = two). Domains whose layout does not fit are
// rejected with kPmpExhausted / kPmpLayoutUnsupported.

#ifndef SRC_MONITOR_PMP_BACKEND_H_
#define SRC_MONITOR_PMP_BACKEND_H_

#include <map>
#include <set>
#include <vector>

#include "src/hw/machine.h"
#include "src/monitor/backend.h"

namespace tyche {

class PmpBackend : public Backend {
 public:
  // `monitor_range`: physical memory holding the monitor itself, protected
  // on every hart by a locked deny-all entry 0.
  PmpBackend(Machine* machine, const CapabilityEngine* engine, AddrRange monitor_range);

  Status CreateDomainContext(DomainId domain, uint16_t asid) override;
  Status DestroyDomainContext(DomainId domain) override;
  Status SyncMemory(DomainId domain, const AddrRange& range) override;
  Status AttachDevice(DomainId domain, uint16_t bdf) override;
  Status DetachDevice(DomainId domain, uint16_t bdf) override;
  Status BindCore(DomainId domain, CoreId core) override;
  Status RegisterFastPath(DomainId domain, CoreId core) override;
  Status FastBindCore(DomainId domain, CoreId core) override;
  void FlushDomain(DomainId domain) override;
  Result<bool> ValidateAgainst(const CapabilityEngine& engine, DomainId domain) override;
  const char* name() const override { return "pmp"; }

  // One encoded PMP program: the concrete entries for a domain's layout.
  struct PmpProgram {
    std::vector<PmpEntry> entries;  // placed starting at kFirstDomainEntry
  };

  // Compiles a memory map into PMP entries. Public for tests and the
  // backend-comparison bench. Fails when the layout needs more than
  // `budget` entries.
  static Result<PmpProgram> Compile(const std::vector<CapabilityEngine::MappedRegion>& map,
                                    int budget);

  // Entry 0 is the monitor's locked guard; domains use the rest.
  static constexpr int kFirstDomainEntry = 1;
  static constexpr int kDomainEntryBudget = PmpFile::kNumEntries - kFirstDomainEntry;

  // Number of PMP entries a domain's current layout consumes.
  Result<int> DomainEntryCount(DomainId domain) const;

  // True while the domain sits in the fail-safe deny-all state. Exposed for
  // tests.
  bool Denied(DomainId domain) const;

 private:
  struct DomainContext {
    uint16_t asid = 0;
    PmpProgram program;
    std::set<uint16_t> devices;
    // Fail-safe state: set when a recompile or a hart/device write failed
    // and the backend fell back to an empty (deny-all) program even though
    // the layout may be expressible. The validator accepts the empty program
    // while this is set; the next successful sync clears it.
    bool denied = false;
  };

  Result<DomainContext*> ContextOf(DomainId domain);

  // Installs the monitor guard entry on a hart (idempotent).
  void InstallGuard(CoreId core);

  // Reprograms the IOPMP file of a device bound to `context`.
  Status SyncDevice(const DomainContext& context, uint16_t bdf);

  Machine* machine_;
  const CapabilityEngine* engine_;
  AddrRange monitor_range_;
  std::map<DomainId, DomainContext> contexts_;
  std::set<CoreId> guarded_cores_;
};

}  // namespace tyche

#endif  // SRC_MONITOR_PMP_BACKEND_H_
