// Copyright 2026 The Tyche Reproduction Authors.
// The monitor-side face of the audit journal (§3.4 extended to history):
// typed record builders for every capability mutation, human/JSON summaries,
// and the shadow-replay verifier. The journal itself (hash chain, signed
// checkpoints, wire format) lives in src/support/journal.h; this layer binds
// it to the monitor's vocabulary -- ApiOps, capability ids, revoke outcomes.
//
// Replay is the strongest check the journal affords: because the capability
// engine allocates ids deterministically (validation happens before any id
// is consumed), re-applying the journaled root operations to a fresh shadow
// engine must reproduce the exact lineage tree, including every cascade,
// remainder, and restore id. A journal that verifies AND replays to the
// attested graph snapshot is evidence of *how* the current sharing state
// came to be, not just what it is.

#ifndef SRC_MONITOR_AUDIT_H_
#define SRC_MONITOR_AUDIT_H_

#include <string>
#include <vector>

#include "src/capability/engine.h"
#include "src/support/journal.h"

namespace tyche {

// Owned by the Monitor; all builders are no-ops while the journal is
// disabled. Builders take the causal span id threaded from Dispatch().
class AuditJournal {
 public:
  AuditJournal() = default;

  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  bool enabled() const { return journal_.enabled(); }
  void set_enabled(bool enabled) { journal_.set_enabled(enabled); }

  // --- Record builders (one per monitor event) ---
  void Dispatch(uint64_t span, uint16_t op, uint32_t caller, uint64_t args_digest,
                uint64_t error);
  void RegisterDomain(uint64_t span, uint32_t domain, uint32_t creator);
  void SealDomain(uint64_t span, uint32_t domain);
  void MintMemory(uint64_t span, uint32_t owner, uint64_t cap, AddrRange range, Perms perms,
                  CapRights rights);
  void MintUnit(uint64_t span, uint32_t owner, uint64_t cap, ResourceKind kind, uint64_t unit,
                CapRights rights);
  void ShareMemory(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                   uint64_t child, AddrRange sub, Perms perms, CapRights rights,
                   RevocationPolicy policy);
  void GrantMemory(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                   uint64_t granted, AddrRange sub, Perms perms, CapRights rights,
                   RevocationPolicy policy, uint64_t remainder_count);
  void ShareUnit(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                 uint64_t child, ResourceKind kind, uint64_t unit, CapRights rights,
                 RevocationPolicy policy);
  void GrantUnit(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                 uint64_t granted, ResourceKind kind, uint64_t unit, CapRights rights,
                 RevocationPolicy policy);
  // Emits kRevoke plus one kCascade per deactivated capability plus kRestore
  // when the revocation returned ownership: N+1 records, one span.
  void Revoke(uint64_t span, uint32_t requester, uint64_t cap, const RevokeOutcome& outcome,
              const CapabilityEngine& engine);
  void PurgeDomain(uint64_t span, uint32_t domain, const RevokeOutcome& outcome,
                   const CapabilityEngine& engine);
  void Effect(uint64_t span, const CapEffect& effect);
  // An operation failed mid-flight: its compensating mutations (if any) were
  // journaled as ordinary records, and this marks the whole span as aborted
  // with the operation's error code. Context-only for replay.
  void Abort(uint64_t span, uint16_t op, uint32_t requester, ErrorCode error);

  // --- Introspection / export ---
  // One-paragraph text: record/checkpoint counts, per-event tallies, head.
  std::string Summary() const;
  // Causal span tree (flamegraph-style), ops named via ApiOpName.
  std::string SpanTreeJson() const;
  // Checkpoints the head, then serializes the whole journal for transport.
  std::vector<uint8_t> Export();

 private:
  void Cascades(uint64_t span, uint64_t root_cap, const RevokeOutcome& outcome,
                const CapabilityEngine& engine);

  Journal journal_;
};

struct JournalReplay {
  uint64_t applied = 0;  // engine mutations re-applied
  uint64_t skipped = 0;  // context records (dispatch, effects)
  std::string graph_json;  // full-lineage export of the shadow engine
};

// Replays journaled engine mutations through a fresh shadow engine,
// asserting every journaled capability id (shares, grants, cascades,
// restores, remainder counts) matches what the shadow engine produced.
// Fails with the diverging sequence number on any mismatch.
Result<JournalReplay> ReplayJournal(const std::vector<JournalRecord>& records);

}  // namespace tyche

#endif  // SRC_MONITOR_AUDIT_H_
