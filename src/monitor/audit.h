// Copyright 2026 The Tyche Reproduction Authors.
// The monitor-side face of the audit journal (§3.4 extended to history):
// typed record builders for every capability mutation, human/JSON summaries,
// and the shadow-replay verifier. The journal itself (hash chain, signed
// checkpoints, wire format) lives in src/support/journal.h; this layer binds
// it to the monitor's vocabulary -- ApiOps, capability ids, revoke outcomes.
//
// Replay is the strongest check the journal affords: because the capability
// engine allocates ids deterministically (validation happens before any id
// is consumed), re-applying the journaled root operations to a fresh shadow
// engine must reproduce the exact lineage tree, including every cascade,
// remainder, and restore id. A journal that verifies AND replays to the
// attested graph snapshot is evidence of *how* the current sharing state
// came to be, not just what it is.

#ifndef SRC_MONITOR_AUDIT_H_
#define SRC_MONITOR_AUDIT_H_

#include <span>
#include <string>
#include <vector>

#include "src/capability/engine.h"
#include "src/support/journal.h"

namespace tyche {

// Owned by the Monitor; all builders are no-ops while the journal is
// disabled. Builders take the causal span id threaded from Dispatch().
class AuditJournal {
 public:
  AuditJournal() = default;

  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  bool enabled() const { return journal_.enabled(); }
  void set_enabled(bool enabled) { journal_.set_enabled(enabled); }

  // --- Record builders (one per monitor event) ---
  void Dispatch(uint64_t span, uint16_t op, uint32_t caller, uint64_t args_digest,
                uint64_t error);
  void RegisterDomain(uint64_t span, uint32_t domain, uint32_t creator);
  // The seal record carries the finalized measurement (packed into
  // cap/parent/base/size) and the entry point (aux) so recovery can rebuild
  // the domain's attested identity from the journal alone — the rolling
  // measurement context is not durable, but its final digest is.
  void SealDomain(uint64_t span, uint32_t domain, const Digest& measurement,
                  uint64_t entry_point);
  void MintMemory(uint64_t span, uint32_t owner, uint64_t cap, AddrRange range, Perms perms,
                  CapRights rights);
  void MintUnit(uint64_t span, uint32_t owner, uint64_t cap, ResourceKind kind, uint64_t unit,
                CapRights rights);
  void ShareMemory(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                   uint64_t child, AddrRange sub, Perms perms, CapRights rights,
                   RevocationPolicy policy);
  void GrantMemory(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                   uint64_t granted, AddrRange sub, Perms perms, CapRights rights,
                   RevocationPolicy policy, uint64_t remainder_count);
  void ShareUnit(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                 uint64_t child, ResourceKind kind, uint64_t unit, CapRights rights,
                 RevocationPolicy policy);
  void GrantUnit(uint64_t span, uint32_t requester, uint32_t dst, uint64_t src_cap,
                 uint64_t granted, ResourceKind kind, uint64_t unit, CapRights rights,
                 RevocationPolicy policy);
  // Emits kRevoke plus one kCascade per deactivated capability plus kRestore
  // when the revocation returned ownership: N+1 records, one span.
  void Revoke(uint64_t span, uint32_t requester, uint64_t cap, const RevokeOutcome& outcome,
              const CapabilityEngine& engine);
  void PurgeDomain(uint64_t span, uint32_t domain, const RevokeOutcome& outcome,
                   const CapabilityEngine& engine);
  void Effect(uint64_t span, const CapEffect& effect);
  // An operation failed mid-flight: its compensating mutations (if any) were
  // journaled as ordinary records, and this marks the whole span as aborted
  // with the operation's error code. Context-only for replay.
  void Abort(uint64_t span, uint16_t op, uint32_t requester, ErrorCode error);
  // The monitor recovered from a crash, having replayed up to `recovered_seq`.
  void Recovery(uint64_t span, uint64_t recovered_seq);
  // Migration handoff records. Both sides bind the payload digest (packed
  // into cap/parent/base/size like a seal measurement) so the two journals
  // can be spliced into one verifiable history: a kMigrateOut on the source
  // and a kMigrateIn that carry the SAME packed digest describe one handoff
  // (the domain ids differ across monitors). aux is the cross-journal
  // binding: kMigrateOut carries the first 8 bytes (little-endian) of the
  // source chain head at capture (the head the shipped provenance journal
  // ends at), kMigrateIn carries the first 8 bytes of the source
  // kMigrateOut record's own chain link — so a verifier holding both
  // journals can pin the destination's adoption to one specific record of
  // the source history. Context-only for replay.
  void MigrateOut(uint64_t span, uint32_t domain, const Digest& payload_digest,
                  uint64_t source_head_prefix);
  void MigrateIn(uint64_t span, uint32_t domain, const Digest& payload_digest,
                 uint64_t source_head_prefix);

  // --- Introspection / export ---
  // One-paragraph text: record/checkpoint counts, per-event tallies, head.
  std::string Summary() const;
  // Causal span tree (flamegraph-style), ops named via ApiOpName.
  std::string SpanTreeJson() const;
  // Checkpoints the head, then serializes the whole journal for transport.
  std::vector<uint8_t> Export();

 private:
  // Builds (does not append) one kCascade record per revoked cap.
  void Cascades(std::vector<JournalRecord>* out, uint64_t span, uint64_t root_cap,
                const RevokeOutcome& outcome, const CapabilityEngine& engine);

  Journal journal_;
};

struct JournalReplay {
  uint64_t applied = 0;  // engine mutations re-applied
  uint64_t skipped = 0;  // context records (dispatch, effects)
  std::string graph_json;  // full-lineage export of the shadow engine
};

// Tolerances a recovery replay needs that a full-history audit must NOT
// grant. Both default off: the strict verifier path stays strict.
struct ReplayOptions {
  // A journal cut at an arbitrary record boundary can end mid-span, with a
  // revoke's trailing cascade records missing. The engine mutation itself
  // was journaled AFTER it completed, so the state is already consistent —
  // tolerate the missing confirmations instead of failing.
  bool tolerate_truncated_tail = false;
  // A suffix that starts mid-span can OPEN with cascade/restore records
  // whose enclosing revoke landed before the snapshot point; the snapshot
  // already contains their effects. Skip them until the first real record.
  bool skip_leading_orphans = false;
};

// Replays journaled engine mutations into `shadow` (which carries the state
// the records build on — fresh for a full-history replay, snapshot-restored
// for a suffix replay), asserting every journaled capability id (shares,
// grants, cascades, restores, remainder counts) matches what the engine
// produced. Fails with kJournalReplayDivergence and the diverging sequence
// number on any mismatch.
Result<JournalReplay> ReplayJournalInto(CapabilityEngine* shadow,
                                        std::span<const JournalRecord> records,
                                        const ReplayOptions& options = {});

// Strict full-history replay through a fresh shadow engine.
Result<JournalReplay> ReplayJournal(const std::vector<JournalRecord>& records);

// The measurement a kSealDomain record carries (packed across its
// cap/parent/base/size fields). Recovery uses it to rebuild attested
// identities from the journal alone.
Digest PackedSealDigest(const JournalRecord& record);

}  // namespace tyche

#endif  // SRC_MONITOR_AUDIT_H_
