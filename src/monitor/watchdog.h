// Copyright 2026 The Tyche Reproduction Authors.
// Online invariant watchdog (DESIGN.md §6 "Phase attribution & watchdog").
//
// The audit machinery (journal chain verification, owner-index cross-check,
// backend fail-safe flags) existed only as offline tools and test helpers
// until now. This watchdog is its first LIVE use: every N dispatches it
// cheaply re-validates three invariants that silent corruption -- a bug, a
// bit flip, an injected fault -- would otherwise leave undetected until the
// next full audit:
//
//  1. Chain-head continuity: the journal records appended since the last
//     check still hash-chain onto the previously verified head
//     (Journal::VerifyTail). Incremental, so the steady-state cost is
//     proportional to the records appended between checks, not history.
//  2. Owner-index consistency: the engine's per-owner root-cap index agrees
//     with the lineage map's per-owner totals (CheckOwnedIndex). O(caps)
//     under the engine's shared lock.
//  3. Backend sync dirtiness: no domain is parked in the backend's fail-safe
//     state (degraded hull / deny-all) -- enforcement is a full projection
//     of the capability tree, not a subset.
//
// Cost model: off (interval 0, the default) the tick is one relaxed load and
// a predicted-not-taken branch. On, the non-Nth tick adds one relaxed
// fetch_add. The Nth tick runs the checks OUTSIDE every dispatch lock --
// only the journal mutex, the engine's shared lock, and one relaxed backend
// load are taken, all leaves in the lock order -- so a slow check delays the
// checking thread only.
//
// Violations flip the per-invariant health gauge to 0, log at kWarn, and
// trigger a flight-recorder capture carrying the span id of the dispatch
// whose tick detected the violation. Chain and index violations are sticky
// (state stays corrupt; re-verifying would re-capture forever); the backend
// gauge recovers when a later successful sync clears the fail-safe.

#ifndef SRC_MONITOR_WATCHDOG_H_
#define SRC_MONITOR_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/capability/engine.h"
#include "src/monitor/backend.h"
#include "src/support/flight_recorder.h"
#include "src/support/journal.h"

namespace tyche {

class InvariantWatchdog {
 public:
  // All sources are borrowed and must outlive the watchdog. `flight` may be
  // null (violations then log but do not capture).
  InvariantWatchdog(const Journal* journal, const CapabilityEngine* engine,
                    FlightRecorder* flight);

  // The backend is installed after construction (the monitor builds it
  // behind a unique_ptr) and may be replaced by recovery.
  void set_backend(const Backend* backend) { backend_ = backend; }

  // Check every `n` dispatches; 0 disables (the default -- the serial hot
  // path pays one relaxed load and a branch).
  void set_interval(uint64_t n) { interval_.store(n, std::memory_order_relaxed); }
  uint64_t interval() const { return interval_.load(std::memory_order_relaxed); }

  // Dispatch-boundary tick. Inline fast path: disabled costs a relaxed load.
  void MaybeTick(uint16_t op, uint64_t span) {
    const uint64_t n = interval_.load(std::memory_order_relaxed);
    if (n == 0) [[likely]] {
      return;
    }
    Tick(n, op, span);
  }

  // Runs every check immediately (tests, shutdown sweeps).
  void CheckNow(uint16_t op, uint64_t span);

  // Health gauges: 1 = invariant holds, 0 = violated. Exported through the
  // metrics registry as tyche_watchdog_healthy{invariant=...}.
  bool chain_healthy() const { return chain_healthy_.load(std::memory_order_relaxed); }
  bool index_healthy() const { return index_healthy_.load(std::memory_order_relaxed); }
  bool backend_healthy() const {
    return backend_healthy_.load(std::memory_order_relaxed);
  }
  bool healthy() const { return chain_healthy() && index_healthy() && backend_healthy(); }

  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  uint64_t violations() const { return violations_.load(std::memory_order_relaxed); }

 private:
  void Tick(uint64_t n, uint16_t op, uint64_t span);
  void RunChecks(uint16_t op, uint64_t span);
  void Violation(std::atomic<bool>* gauge, const char* invariant, uint16_t op,
                 uint64_t span, const std::string& detail);

  const Journal* journal_;
  const CapabilityEngine* engine_;
  const Backend* backend_ = nullptr;
  FlightRecorder* flight_;

  std::atomic<uint64_t> interval_{0};
  std::atomic<uint64_t> dispatches_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> violations_{0};
  std::atomic<bool> chain_healthy_{true};
  std::atomic<bool> index_healthy_{true};
  std::atomic<bool> backend_healthy_{true};

  // Serializes check runs; concurrent ticks that lose the race skip their
  // check instead of convoying behind it.
  std::mutex check_mu_;
  Journal::ChainPosition pos_;  // guarded by check_mu_
};

}  // namespace tyche

#endif  // SRC_MONITOR_WATCHDOG_H_
