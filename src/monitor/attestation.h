// Copyright 2026 The Tyche Reproduction Authors.
// Two-tier attestation (§3.4):
//   Tier 1 -- the TPM measures the boot chain (firmware, monitor image,
//   monitor attestation key) and signs quotes; a verifier compares against
//   golden values to conclude "the machine is under the complete control of
//   a specific monitor implementation".
//   Tier 2 -- the (now trusted) monitor signs per-domain attestations that
//   enumerate physical resources, their reference counts, and the
//   measurement of selected memory regions, which "makes sharing and
//   communication paths between domains explicit".

#ifndef SRC_MONITOR_ATTESTATION_H_
#define SRC_MONITOR_ATTESTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/capability/types.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/hw/tpm.h"
#include "src/support/status.h"

namespace tyche {

// One resource entry in a domain attestation.
struct ResourceClaim {
  ResourceKind kind = ResourceKind::kMemory;
  AddrRange range;     // memory only
  uint64_t unit = 0;   // cores / devices / domain handles
  Perms perms;         // memory only
  uint32_t ref_count = 0;

  bool operator==(const ResourceClaim&) const = default;
};

// Tier-2 report: signed by the monitor.
struct DomainAttestation {
  uint32_t domain = 0;
  uint64_t nonce = 0;
  bool sealed = false;
  Digest measurement;  // rolling measurement finalized at seal time
  std::vector<ResourceClaim> resources;

  Digest report_digest;        // hash over all of the above
  SchnorrSignature signature;  // by the monitor attestation key

  // Canonical serialization hash (shared by signer and verifier).
  Digest ComputeDigest() const;
};

// Tier-1 identity: what a remote party needs to trust the monitor.
struct MonitorIdentity {
  SchnorrPublicKey tpm_key;      // TPM attestation key (trust anchor)
  SchnorrPublicKey monitor_key;  // monitor's report-signing key
  Digest firmware_measurement;   // H(firmware image)
  Digest monitor_measurement;    // H(monitor image)
  TpmQuote boot_quote;           // over PCR0 (firmware) and PCR1 (monitor+key)
};

// Wire format for reports (remote transport / the dispatch ABI's
// out-buffer). Deserialization is hardened against truncation and garbage:
// a report altered in transit fails digest/signature checks afterwards.
std::vector<uint8_t> SerializeAttestation(const DomainAttestation& report);
Result<DomainAttestation> DeserializeAttestation(std::span<const uint8_t> bytes);

std::vector<uint8_t> SerializeMonitorIdentity(const MonitorIdentity& identity);
Result<MonitorIdentity> DeserializeMonitorIdentity(std::span<const uint8_t> bytes);

// Recomputes the expected PCR values for a boot chain. PCR0 is extended
// with the firmware measurement; PCR1 with the monitor measurement, then
// with the hash of the monitor's public signing key (binding the key to the
// measured code).
Digest ExpectedPcr0(const Digest& firmware_measurement);
Digest ExpectedPcr1(const Digest& monitor_measurement, const SchnorrPublicKey& monitor_key);

// Hash of a public key (for PCR binding).
Digest HashPublicKey(const SchnorrPublicKey& key);

// The remote verifier (the paper's "customer"). Holds golden values and
// checks the full chain.
class RemoteVerifier {
 public:
  RemoteVerifier(SchnorrPublicKey trusted_tpm_key, Digest golden_firmware,
                 Digest golden_monitor)
      : tpm_key_(trusted_tpm_key),
        golden_firmware_(golden_firmware),
        golden_monitor_(golden_monitor) {}

  // Tier 1: checks the TPM quote covers PCR0+PCR1 with the expected values
  // for the golden measurements and the claimed monitor key, under the
  // trusted TPM key, with the expected nonce.
  Status VerifyMonitor(const MonitorIdentity& identity, uint64_t expected_nonce) const;

  // Tier 2: checks a domain report: signature by the (already verified)
  // monitor key, nonce freshness, digest consistency, and -- optionally --
  // an expected measurement (golden code identity).
  Status VerifyDomain(const DomainAttestation& report, const SchnorrPublicKey& monitor_key,
                      uint64_t expected_nonce, const Digest* expected_measurement) const;

  // History: verifies a serialized audit journal end-to-end -- wire format,
  // hash chain, checkpoint signatures under the (verified) monitor key --
  // then replays it through a shadow capability engine. When
  // `expected_graph_json` is non-null, the replayed graph (including
  // refcounts) must match that graph_export snapshot byte-for-byte. Detects
  // any single-record tamper, drop, reorder, or tail truncation.
  static Status VerifyJournal(std::span<const uint8_t> journal_bytes,
                              const SchnorrPublicKey& monitor_key,
                              const std::string* expected_graph_json);

  // Controlled-sharing policy checks over a verified report (§3.4: e.g.
  // "exclusive access to a resource (reference count of 1) coupled with an
  // obfuscating revocation policy guarantees integrity and
  // confidentiality").
  static bool AllResourcesExclusive(const DomainAttestation& report);
  // True if every memory resource has ref_count <= limit.
  static bool MaxRefCount(const DomainAttestation& report, uint32_t limit);

 private:
  SchnorrPublicKey tpm_key_;
  Digest golden_firmware_;
  Digest golden_monitor_;
};

}  // namespace tyche

#endif  // SRC_MONITOR_ATTESTATION_H_
