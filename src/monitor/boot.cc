// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/boot.h"

#include "src/monitor/attestation.h"

namespace tyche {

Result<BootOutcome> PrepareMonitor(Machine* machine, const BootParams& params) {
  if (!IsPageAligned(params.monitor_memory_bytes) || params.monitor_memory_bytes == 0) {
    return Error(ErrorCode::kInvalidArgument, "monitor memory must be page aligned");
  }
  if (params.monitor_memory_bytes >= machine->memory().size()) {
    return Error(ErrorCode::kInvalidArgument, "monitor memory exceeds machine memory");
  }

  BootOutcome outcome;

  // 1. SRTM: measure the firmware into PCR0.
  outcome.firmware_measurement = Sha256::Hash(params.firmware_image);
  TYCHE_RETURN_IF_ERROR(machine->tpm().Extend(Tpm::kPcrFirmware,
                                              outcome.firmware_measurement, "firmware"));

  // 2. Firmware measures the monitor image into PCR1 and loads it at the
  //    bottom of physical memory.
  outcome.monitor_measurement = Sha256::Hash(params.monitor_image);
  TYCHE_RETURN_IF_ERROR(
      machine->tpm().Extend(Tpm::kPcrMonitor, outcome.monitor_measurement, "monitor image"));
  const uint64_t image_bytes = AlignUp(params.monitor_image.size(), kPageSize);
  if (image_bytes >= params.monitor_memory_bytes) {
    return Error(ErrorCode::kInvalidArgument, "monitor image larger than its reservation");
  }
  TYCHE_RETURN_IF_ERROR(machine->memory().Write(0, params.monitor_image));

  // 3. The monitor derives its measurement-bound attestation key. Seed =
  //    H(endorsement seed || monitor measurement): a modified monitor image
  //    cannot impersonate the golden one.
  Sha256 seed_ctx;
  seed_ctx.Update(std::span<const uint8_t>(machine->config().endorsement_seed.data(),
                                           machine->config().endorsement_seed.size()));
  seed_ctx.Update(std::span<const uint8_t>(outcome.monitor_measurement.bytes.data(),
                                           outcome.monitor_measurement.bytes.size()));
  const Digest seed = seed_ctx.Finalize();
  const SchnorrKeyPair key =
      DeriveKeyPair(std::span<const uint8_t>(seed.bytes.data(), seed.bytes.size()));

  // ... and binds the public key into PCR1.
  TYCHE_RETURN_IF_ERROR(
      machine->tpm().Extend(Tpm::kPcrMonitor, HashPublicKey(key.pub), "monitor key"));

  // 4. Construct the monitor over its reservation; the metadata pool is the
  //    reservation minus the image.
  const AddrRange monitor_range{0, params.monitor_memory_bytes};
  const AddrRange metadata_pool{image_bytes, params.monitor_memory_bytes - image_bytes};
  outcome.monitor = std::make_unique<Monitor>(machine, monitor_range,
                                              FrameAllocator(metadata_pool), key);
  outcome.monitor->SetBootMeasurements(outcome.firmware_measurement,
                                       outcome.monitor_measurement);
  return outcome;
}

Result<BootOutcome> MeasuredBoot(Machine* machine, const BootParams& params) {
  TYCHE_ASSIGN_OR_RETURN(BootOutcome outcome, PrepareMonitor(machine, params));

  // 5. Hand everything else to the initial domain.
  TYCHE_ASSIGN_OR_RETURN(outcome.initial_domain,
                         outcome.monitor->InstallInitialDomain(params.initial_domain_name));
  return outcome;
}

namespace {

std::vector<uint8_t> PatternImage(uint64_t bytes, uint8_t tag) {
  std::vector<uint8_t> image(bytes);
  for (uint64_t i = 0; i < bytes; ++i) {
    image[i] = static_cast<uint8_t>((i * 31 + tag) & 0xff);
  }
  return image;
}

}  // namespace

std::vector<uint8_t> DemoFirmwareImage() { return PatternImage(16 * 1024, 0xf1); }

std::vector<uint8_t> DemoMonitorImage() { return PatternImage(64 * 1024, 0x7c); }

}  // namespace tyche
