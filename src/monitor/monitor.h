// Copyright 2026 The Tyche Reproduction Authors.
// The isolation monitor (§3): the executive branch. It validates policies
// expressed by ANY domain through a narrow API, projects them onto hardware
// through a platform backend, mediates all inter-domain control transfers,
// and signs attestations under a key bound to its own measurement.
//
// Deliberately NOT here (§3.5): resource management, device emulation,
// scheduling, high-level abstractions. The monitor never chooses which
// resources a domain gets -- it only validates grant / share / revoke
// operations issued by the current holders.

#ifndef SRC_MONITOR_MONITOR_H_
#define SRC_MONITOR_MONITOR_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/capability/engine.h"
#include "src/hw/machine.h"
#include "src/monitor/attestation.h"
#include "src/monitor/audit.h"
#include "src/monitor/backend.h"
#include "src/monitor/domain.h"
#include "src/monitor/watchdog.h"
#include "src/support/flight_recorder.h"
#include "src/support/metrics.h"
#include "src/support/profiler.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace tyche {

class SnapshotStore;  // recovery.h

// The narrow API surface (every external entry point of the monitor).
// Exposed as an enum for dispatch cost accounting and TCB-surface metrics.
enum class ApiOp : uint8_t {
  kCreateDomain = 0,
  kSetEntryPoint,
  kShareMemory,
  kGrantMemory,
  kShareUnit,
  kGrantUnit,
  kRevoke,
  kExtendMeasurement,
  kSeal,
  kAttestDomain,
  kEnumerate,
  kTransition,
  kReturn,
  kRegisterFastTransition,
  kFastTransition,
  kDestroyDomain,
  kRouteInterrupt,
  kTakeInterrupt,
  kSetTransitionPolicy,
  kSealData,
  kUnsealData,
  kOpCount,  // sentinel
};

const char* ApiOpName(ApiOp op);

struct CreateDomainResult {
  DomainId domain = kInvalidDomain;
  CapId handle = kInvalidCap;  // management capability held by the creator
};

// Result of a grant: the recipient's capability plus the capabilities
// covering the pieces of the source range the grantor keeps.
struct GrantResult {
  CapId granted = kInvalidCap;
  std::vector<CapId> remainders;
};

// Aggregated view of the monitor's stat counters. Since PR 6 this is a
// SNAPSHOT type: the live counters are per-core striped cells in the
// metrics registry (src/support/metrics.h) so concurrent dispatchers never
// bounce a shared cache line; Monitor::stats() sums the stripes on read.
struct MonitorStats {
  uint64_t api_calls[static_cast<size_t>(ApiOp::kOpCount)] = {};
  uint64_t transitions = 0;
  uint64_t fast_transitions = 0;
  uint64_t revocations_cascaded = 0;
  // Crash recoveries survived. The ONLY counter that crosses a Recover():
  // everything else is reset so post-recovery dumps never mix epochs.
  uint64_t recoveries = 0;

  // Capability-engine events: successful policy mutations...
  uint64_t shares = 0;       // ShareMemory + ShareUnit
  uint64_t grants = 0;       // GrantMemory + GrantUnit
  uint64_t revokes = 0;      // explicit Revoke calls that cascaded
  // ...and the hardware obligations they produced, by effect kind
  // (indexed by CapEffect::Kind: map/unmap/zero/flush/attach/detach).
  static constexpr size_t kEffectKinds = 6;
  uint64_t effects_by_kind[kEffectKinds] = {};

  uint64_t TotalCalls() const {
    uint64_t total = 0;
    for (const uint64_t count : api_calls) {
      total += count;
    }
    return total;
  }

  uint64_t TotalEffects() const {
    uint64_t total = 0;
    for (const uint64_t count : effects_by_kind) {
      total += count;
    }
    return total;
  }
};

// The name telemetry dumps use for each effect-kind counter slot.
const char* CapEffectKindName(CapEffect::Kind kind);

// Everything an external verifier (or a bench) needs about what the monitor
// did: per-op call counts and latency distributions, the trace of recent
// ABI calls, the hardware-projection counters, and the capability graph a
// judiciary would attest. Produced by Monitor::DumpTelemetry().
struct TelemetrySnapshot {
  MonitorStats stats;
  BackendStats backend;
  std::vector<TraceEntry> trace;                 // oldest first
  uint64_t trace_recorded = 0;                   // total traced calls
  uint64_t trace_dropped = 0;                    // overwritten by the ring
  std::vector<LatencyHistogram> per_op_latency;  // indexed by ApiOp
  std::string capability_graph_dot;
  std::string capability_graph_json;

  // Audit-journal view: record/checkpoint counts, chain head (hex), the
  // per-event summary paragraph, and the causal span tree.
  uint64_t journal_records = 0;
  uint64_t journal_checkpoints = 0;
  std::string journal_head;
  std::string journal_summary;
  std::string span_tree_json;

  // Concurrent-dispatch view: lock-contention counters (how often a
  // conditional guard had to block) and journal group-commit batching. All
  // zero in the default serial mode.
  uint64_t lock_exclusive_contention = 0;
  uint64_t lock_shared_contention = 0;
  uint64_t journal_batches = 0;
  uint64_t journal_batched_records = 0;
  uint64_t journal_max_batch = 0;

  // Human-readable summary: per-op table (count/p50/p99/max), effect and
  // backend counters, trace ring occupancy, graph size.
  std::string ToString() const;
};

class Monitor {
 public:
  // Construction happens through MeasuredBoot() (boot.h); the constructor is
  // public only for the boot sequence and tests.
  Monitor(Machine* machine, AddrRange monitor_range, FrameAllocator metadata_pool,
          SchnorrKeyPair key);

  Machine* machine() { return machine_; }
  const CapabilityEngine& engine() const { return engine_; }
  Backend& backend() { return *backend_; }
  // Aggregates the striped registry counters into the legacy snapshot shape.
  MonitorStats stats() const;
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  FlightRecorder& flight_recorder() { return flight_; }
  const FlightRecorder& flight_recorder() const { return flight_; }
  // Kill switch for the stat counters, mirroring the telemetry switches so
  // bench_telemetry can cost the registry itself. Disabling freezes
  // stats()/ExportMetrics() counter values; production leaves it on.
  void set_counters_enabled(bool enabled) {
    counters_on_.store(enabled, std::memory_order_relaxed);
  }
  bool counters_enabled() const { return counters_on_.load(std::memory_order_relaxed); }
  AuditJournal& audit() { return audit_; }
  const AuditJournal& audit() const { return audit_; }
  // Per-op × per-phase dispatch profiler (DESIGN.md §6). Off by default;
  // bench_profile gates the enabled-mode overhead.
  DispatchProfiler& profiler() { return profiler_; }
  const DispatchProfiler& profiler() const { return profiler_; }
  // Online invariant watchdog. EnableWatchdog(N) checks every N dispatches;
  // 0 (the default) keeps the tick to one relaxed load on the hot path.
  InvariantWatchdog& watchdog() { return watchdog_; }
  const InvariantWatchdog& watchdog() const { return watchdog_; }
  void EnableWatchdog(uint64_t interval) { watchdog_.set_interval(interval); }
  const SchnorrPublicKey& public_key() const { return key_.pub; }
  // DH shared secret between this monitor's attestation key and a peer's
  // public key. Both sides derive the same value, so a verifier that has
  // completed one full two-tier verification can resume later sessions with
  // an epoch-bound MAC instead of repeating the chain walk (DESIGN.md §13).
  Digest SessionSecret(const SchnorrPublicKey& peer) const {
    return DhSharedSecret(key_.priv, peer);
  }
  const AddrRange& monitor_range() const { return monitor_range_; }

  // Called once by the boot sequence: registers the initial domain (the
  // commodity OS) and endows it with every resource the monitor does not
  // keep for itself.
  Result<DomainId> InstallInitialDomain(const std::string& name);

  // ===== The isolation API (§3.2). All calls execute on behalf of the
  // domain currently running on `core` and charge the trap cost. =====

  // --- Domain lifecycle ---
  Result<CreateDomainResult> CreateDomain(CoreId core, const std::string& name);
  Status SetEntryPoint(CoreId core, CapId domain_handle, uint64_t entry);
  // Hashes the *current* content of `range` (which must be accessible to the
  // target domain) into the target's rolling measurement.
  Status ExtendMeasurement(CoreId core, CapId domain_handle, AddrRange range);
  // Freezes the resource set and finalizes the measurement with the
  // configuration hash.
  Status Seal(CoreId core, CapId domain_handle);
  // Tears the domain down: revokes all its capabilities (running their
  // revocation policies), destroys backend state. Fails while the domain is
  // running on any core.
  Status DestroyDomain(CoreId core, CapId domain_handle);

  // --- Resource policies ---
  Result<CapId> ShareMemory(CoreId core, CapId src_cap, CapId dst_domain_handle,
                            AddrRange sub, Perms perms, CapRights rights,
                            RevocationPolicy policy);
  Result<GrantResult> GrantMemory(CoreId core, CapId src_cap, CapId dst_domain_handle,
                                  AddrRange sub, Perms perms, CapRights rights,
                                  RevocationPolicy policy);
  Result<CapId> ShareUnit(CoreId core, CapId src_cap, CapId dst_domain_handle,
                          CapRights rights, RevocationPolicy policy);
  Result<CapId> GrantUnit(CoreId core, CapId src_cap, CapId dst_domain_handle,
                          CapRights rights, RevocationPolicy policy);
  Status Revoke(CoreId core, CapId cap);

  // --- Attestation (tier 2) ---
  Result<DomainAttestation> AttestDomain(CoreId core, CapId domain_handle, uint64_t nonce);
  // A sealed domain attests itself (enclave-style).
  Result<DomainAttestation> AttestSelf(CoreId core, uint64_t nonce);
  Result<std::vector<ResourceClaim>> Enumerate(CoreId core, CapId domain_handle);

  // --- Transitions ---
  // Trap-mediated switch to the target domain on this core. The target must
  // hold a capability for the core and have a fixed entry point.
  Status Transition(CoreId core, CapId domain_handle);
  // Return to the domain that transitioned here.
  Status ReturnFromDomain(CoreId core);
  // Pre-arms the hardware fast path (VMFUNC EPTP list) for target on core.
  Status RegisterFastTransition(CoreId core, CapId domain_handle);
  // Hardware fast switch: no monitor trap, ~100 cycles (§4.1).
  Status FastTransition(CoreId core, DomainId target);
  Status FastReturn(CoreId core);

  // --- Interrupt routing (§4.1 "cross-domain interrupt routing") ---
  // Routes the interrupts of a device the caller EXCLUSIVELY owns to the
  // caller. Routing follows ownership: when the device capability moves,
  // the route is torn down.
  Status RouteInterrupt(CoreId core, CapId device_cap);
  // Takes the calling domain's next pending interrupt (kNotFound if none).
  Result<Interrupt> TakeInterrupt(CoreId core);

  // --- Side-channel mitigation policy (§4.1) ---
  // When enabled, every monitor-mediated exit from the target domain scrubs
  // the core's micro-architectural state; the unmediated fast path becomes
  // unavailable for it.
  Status SetTransitionPolicy(CoreId core, CapId domain_handle, bool scrub_on_exit);

  // --- Sealed storage ---
  // Encrypts `data` under a key derived from (monitor identity, caller's
  // measurement): only the SAME code, attested by the SAME monitor, can
  // unseal -- across domain instances and reboots of the same image. The
  // caller must be sealed (its measurement must be final). This is how the
  // SaaS scenario's crypto engine persists the customer key.
  Result<std::vector<uint8_t>> SealData(CoreId core, std::span<const uint8_t> data);
  Result<std::vector<uint8_t>> UnsealData(CoreId core, std::span<const uint8_t> blob);

  // ===== Judiciary support =====

  // Tier-1 identity material (boot quote fetched fresh with the nonce).
  Result<MonitorIdentity> Identity(uint64_t nonce) const;

  // Self-audit: is every hardware enforcement structure a projection of the
  // capability tree? (Invariant 5 in DESIGN.md.)
  Result<bool> AuditHardwareConsistency();

  // --- Introspection (tests, benches, examples) ---
  // Full observability snapshot; see TelemetrySnapshot. Cheap relative to
  // the work it describes, but it does walk the capability tree.
  TelemetrySnapshot DumpTelemetry() const;
  // Prometheus text-exposition snapshot of every registered metric: stat
  // counters, backend/journal/trace/contention signals, fault-injection
  // hits, per-op latency histograms. Safe against concurrent dispatchers
  // (quiesces via api_mu_ exactly like DumpTelemetry).
  std::string ExportMetrics() const;
  // Checkpoints and serializes the audit journal (wire format for
  // RemoteVerifier::VerifyJournal / tools/journal_verify).
  std::vector<uint8_t> ExportJournal() { return audit_.Export(); }

  // --- Causal spans ---
  // Dispatch() brackets every ABI call in a span; direct monitor calls (as
  // tests and examples make) get a fresh root span per call instead.
  uint64_t BeginSpan(CoreId core);
  void EndSpan(CoreId core);

  Result<const TrustDomain*> GetDomain(DomainId id) const;
  DomainId CurrentDomain(CoreId core) const;
  std::vector<RegionView> MemoryView() const { return engine_.MemoryView(); }
  uint64_t num_domains_alive() const;

  // Set by the boot sequence so Identity() can report boot measurements.
  void SetBootMeasurements(const Digest& firmware, const Digest& monitor_image) {
    firmware_measurement_ = firmware;
    monitor_measurement_ = monitor_image;
  }

  // ===== Crash recovery (implemented in recovery.cc; DESIGN.md §8) =====

  // Binds `store` into the journal's checkpoint path: every signed
  // checkpoint captures the monitor's durable state into the store and binds
  // its digest into the checkpoint signature. Costs nothing on the dispatch
  // fast path — the provider only runs when a checkpoint is signed. Fails
  // with kFailedPrecondition while concurrent dispatch is live: the provider
  // runs under the journal lock and reads monitor state, which would invert
  // the lock order against a concurrent dispatcher (the mirror of
  // EnableConcurrentDispatch refusing while snapshots are bound).
  [[nodiscard]] Status EnableSnapshots(SnapshotStore* store);

  // Serializes the durable state (engine image, domain table, id allocators,
  // measurements) into a hash-committed snapshot (src/support/snapshot.h).
  std::vector<uint8_t> CaptureSnapshot() const;

  // Rebuilds this monitor from a snapshot plus the journal that extends it,
  // then re-syncs all hardware and resumes the journal chain. The journal
  // must verify (anchored chain + signatures; the tail-coverage rule is
  // relaxed — a crashed monitor cannot sign its own death). An empty
  // snapshot span means fresh-boot recovery: replay the whole journal from
  // genesis. Re-entrant: a Recover() that fails mid-way (e.g. an injected
  // re-sync fault) can simply be called again.
  Status Recover(std::span<const uint8_t> snapshot_bytes, const ParsedJournal& journal);

  // Rebuilds every hardware enforcement structure from the capability
  // engine: fresh backend, per-domain contexts, memory sync, device
  // reconciliation, core bindings. This is the degraded-hull / deny-all
  // self-repair path lifted to first class: after it succeeds, hardware is a
  // projection of the capability tree again.
  Status ResyncAll();

  // ===== Concurrent dispatch (DESIGN.md §10) =====

  // Switches the monitor into concurrent mode: Dispatch() brackets every ABI
  // call in the api reader-writer lock (shared for the read-mostly ops,
  // exclusive for graph mutations and transitions), per-domain shard locks
  // order config mutations within the shared class, and stat counters flip
  // to atomic updates. Contract: while concurrent mode is on, concurrent
  // callers must enter through Dispatch() — direct Monitor method calls
  // remain serial-only. Fails with kFailedPrecondition when snapshots are
  // bound: the snapshot provider runs under the journal lock and reads
  // monitor state, which would invert the lock order against a concurrent
  // dispatcher.
  Status EnableConcurrentDispatch();
  // Back to serial mode. Callers must quiesce dispatch threads first.
  void DisableConcurrentDispatch();
  bool concurrent_dispatch() const {
    return concurrent_.load(std::memory_order_relaxed);
  }

  // ===== Live migration (implemented in migration.cc; DESIGN.md §11) =====

  // True while `id` is frozen by an in-flight migration. Frozen domains
  // reject every operation (as caller or as handle target) with kMigrating
  // so the untrusted OS degrades gracefully instead of observing partial
  // state. Only mutated by MigrateDomain() in serial mode, so the
  // unsynchronized read is safe: frozen_ is always empty while concurrent
  // dispatch is live (the two modes exclude each other).
  bool domain_frozen(DomainId id) const { return frozen_.contains(id); }
  bool migration_in_progress() const { return !frozen_.empty(); }
  // The dispatch-level lock. Taken by Dispatch() around the WHOLE call —
  // including the guest-memory reads/writes some ops do outside the monitor
  // methods — so EPT mutations by exclusive ops cannot race them.
  std::shared_mutex& api_mu() { return api_mu_; }

 private:
  // Resolves the caller: the domain currently running on `core`.
  Result<DomainId> Caller(CoreId core) const;
  // Validates a domain-handle capability: active, owned by `caller`, kind
  // kDomain, with kManage. Returns the target domain id.
  Result<DomainId> ResolveHandle(DomainId caller, CapId handle, bool require_manage) const;
  Result<TrustDomain*> GetDomainMutable(DomainId id);

  // The span the journal attributes work on `core` to: the active dispatch
  // span when inside Dispatch(), else a fresh root span.
  uint64_t SpanForCore(CoreId core);

  // Applies an effect list produced by the capability engine to hardware,
  // journaling each applied effect under `span`.
  Status ApplyEffects(const CapEffects& effects, uint64_t span);
  // Rolls back a share/grant whose hardware projection failed: revokes the
  // capability the operation created (as `owner`, the recipient — an owner
  // may always drop its own capability), applies the compensating effects,
  // and journals the compensation plus an abort record so replay stays in
  // lockstep. Returns `cause` so callers can `return RollbackTransfer(...)`.
  Status RollbackTransfer(ApiOp op, uint64_t span, DomainId requester, DomainId owner,
                          CapId created, const Status& cause);
  // Re-binds a shared device: attached iff exactly one domain holds it.
  Status ReconcileDevice(uint64_t bdf);

  Status ChargeCall(ApiOp op);
  uint64_t TrapCost() const;

  // Registers every monitor signal with the registry: the native striped
  // stat counters plus pull callbacks for backend, journal, trace ring,
  // lock contention, fault injection, and per-op latency histograms.
  void RegisterMetrics();
  // Zeroes every MonitorStats-equivalent counter (recovery epoch reset).
  // Contention counters and journal group-commit stats are NOT touched —
  // the pre-PR-6 code never reset those either.
  void ResetStatCounters();

  // Stat-counter bump. Striped cells make this safe in both serial and
  // concurrent mode; the flag is the bench kill switch (see
  // set_counters_enabled).
  void Count(StripedCounter* counter, uint64_t delta = 1) {
    if (counters_on_.load(std::memory_order_relaxed)) {
      counter->Add(delta);
    }
  }

  // Per-domain shard lock: orders config mutations (entry point, measurement,
  // seal, transition policy) against attestation reads within the shared
  // dispatch class. Locked AFTER api_mu_, BEFORE the engine lock.
  std::shared_mutex& ShardFor(DomainId id) const {
    return domain_shards_[id % kDomainShards].mu;
  }

  // Applies the scrub-on-exit policy when execution leaves `leaving`.
  void ScrubOnExitIfRequested(DomainId leaving, CoreId core);

  Result<DomainAttestation> BuildAttestation(DomainId target, uint64_t nonce);

  Machine* machine_;
  AddrRange monitor_range_;
  FrameAllocator metadata_pool_;
  SchnorrKeyPair key_;
  CapabilityEngine engine_;
  std::unique_ptr<Backend> backend_;

  std::map<DomainId, TrustDomain> domains_;
  DomainId next_domain_ = 0;
  uint16_t next_asid_ = 1;

  // Per-core transition stack (who to return to).
  std::vector<std::vector<DomainId>> call_stacks_;

  Digest firmware_measurement_;
  Digest monitor_measurement_;
  Digest sealing_root_;  // derived from the monitor's identity key
  // Per-boot unique AEAD nonces. Atomic because SealData runs in the shared
  // dispatch class: two concurrent seals must never reuse a nonce.
  std::atomic<uint64_t> seal_nonce_{1};

  // The live stat counters (MonitorStats is now just the snapshot shape).
  // Cached pointers into metrics_; the registry owns the cells.
  struct StatCounters {
    std::array<StripedCounter*, static_cast<size_t>(ApiOp::kOpCount)> api_calls{};
    StripedCounter* transitions = nullptr;
    StripedCounter* fast_transitions = nullptr;
    StripedCounter* revocations_cascaded = nullptr;
    StripedCounter* recoveries = nullptr;
    StripedCounter* shares = nullptr;
    StripedCounter* grants = nullptr;
    StripedCounter* revokes = nullptr;
    std::array<StripedCounter*, MonitorStats::kEffectKinds> effects_by_kind{};
  };
  MetricsRegistry metrics_;
  StatCounters counters_;
  std::atomic<bool> counters_on_{true};
  Telemetry telemetry_{static_cast<size_t>(ApiOp::kOpCount)};
  // Post-mortem ring: snapshots trace tail + metric deltas on dispatch
  // errors, fault-site triggers, and recovery. Depends on telemetry_ and
  // metrics_, so it is declared after both.
  FlightRecorder flight_{&telemetry_.ring(), &metrics_};
  AuditJournal audit_;
  // Depends on telemetry/metrics only through the registry callbacks wired
  // in RegisterMetrics(); storage is lazily allocated on first enable.
  DispatchProfiler profiler_{static_cast<size_t>(ApiOp::kOpCount)};
  // Borrows the journal, engine, and flight recorder declared above; the
  // backend pointer is installed by the constructor (and re-installed by
  // recovery) since backend_ is rebuilt behind its unique_ptr.
  InvariantWatchdog watchdog_{&audit_.journal(), &engine_, &flight_};
  std::atomic<uint64_t> next_span_{1};
  std::vector<uint64_t> active_spans_;  // per-core; 0 = no dispatch in flight

  // --- Live migration state (DESIGN.md §11) ---
  // Domains frozen by an in-flight MigrateDomain(). Cleared on commit,
  // rollback, and Recover() (a crash mid-migration is an implicit rollback:
  // the source journal carries no handoff record until the commit stage).
  std::set<DomainId> frozen_;
  // The migration protocol lives outside the Monitor class (migration.cc)
  // but needs the same staged-commit access Recover() has.
  friend class MigrationInternal;

  // --- Concurrent dispatch state (DESIGN.md §10) ---
  std::atomic<bool> concurrent_{false};
  bool snapshots_bound_ = false;  // EnableSnapshots was called
  // Lock order, strictly downward: api_mu_ -> domain shard -> engine lock ->
  // journal locks.
  mutable std::shared_mutex api_mu_;
  static constexpr size_t kDomainShards = 8;
  struct alignas(64) DomainShard {
    std::shared_mutex mu;
  };
  mutable std::array<DomainShard, kDomainShards> domain_shards_;
};

}  // namespace tyche

#endif  // SRC_MONITOR_MONITOR_H_
