// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/pmp_backend.h"

#include <algorithm>

#include "src/support/faults.h"
#include "src/support/log.h"
#include "src/support/profiler.h"

namespace tyche {

PmpBackend::PmpBackend(Machine* machine, const CapabilityEngine* engine,
                       AddrRange monitor_range)
    : machine_(machine), engine_(engine), monitor_range_(monitor_range) {}

Result<PmpBackend::DomainContext*> PmpBackend::ContextOf(DomainId domain) {
  const auto it = contexts_.find(domain);
  if (it == contexts_.end()) {
    return Error(ErrorCode::kNotFound, "no backend context for domain");
  }
  return &it->second;
}

Status PmpBackend::CreateDomainContext(DomainId domain, uint16_t asid) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  if (contexts_.contains(domain)) {
    return Error(ErrorCode::kAlreadyExists, "backend context exists");
  }
  TYCHE_FAULT_POINT(faults::kPmpCreateContext);
  DomainContext context;
  context.asid = asid;
  contexts_.emplace(domain, std::move(context));
  return OkStatus();
}

Status PmpBackend::DestroyDomainContext(DomainId domain) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  for (const uint16_t bdf : context->devices) {
    machine_->io_pmp().Remove(PciBdf{bdf});
  }
  // Clear any hart still carrying this domain's entries. Teardown keeps
  // going past individual write failures (there is nothing safer to fall
  // back to than continuing to clear), but they are reported, not swallowed.
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    if (machine_->cpu(core).current_domain() == domain) {
      for (int i = kFirstDomainEntry; i < PmpFile::kNumEntries; ++i) {
        const Status cleared = machine_->cpu(core).pmp().ClearEntry(i, &machine_->cycles());
        if (!cleared.ok()) {
          TYCHE_LOG(kError) << "pmp: teardown clear of core " << core << " entry " << i
                            << " failed: " << cleared.ToString();
        }
      }
    }
  }
  if (context->denied) {
    NoteFailsafeCleared();  // the fail-safe state dies with the context
  }
  contexts_.erase(domain);
  return OkStatus();
}

Result<PmpBackend::PmpProgram> PmpBackend::Compile(
    const std::vector<CapabilityEngine::MappedRegion>& map, int budget) {
  PmpProgram program;
  int used = 0;
  for (const auto& region : map) {
    const bool napot_ok = region.range.size >= 8 && IsPowerOfTwo(region.range.size) &&
                          IsAligned(region.range.base, region.range.size);
    if (napot_ok) {
      if (used + 1 > budget) {
        return Error(ErrorCode::kPmpExhausted, "domain layout exceeds PMP entries");
      }
      TYCHE_ASSIGN_OR_RETURN(const uint64_t addr,
                             PmpFile::EncodeNapot(region.range.base, region.range.size));
      PmpEntry entry;
      entry.mode = PmpAddressMode::kNapot;
      entry.perms = region.perms;
      entry.addr = addr;
      program.entries.push_back(entry);
      used += 1;
    } else {
      if (used + 2 > budget) {
        return Error(ErrorCode::kPmpExhausted, "domain layout exceeds PMP entries");
      }
      // TOR pair: an OFF entry carrying the base, then the TOR entry.
      PmpEntry bottom;
      bottom.mode = PmpAddressMode::kOff;
      bottom.addr = PmpFile::EncodeTorAddr(region.range.base);
      PmpEntry top;
      top.mode = PmpAddressMode::kTor;
      top.perms = region.perms;
      top.addr = PmpFile::EncodeTorAddr(region.range.end());
      program.entries.push_back(bottom);
      program.entries.push_back(top);
      used += 2;
    }
  }
  return program;
}

Status PmpBackend::SyncMemory(DomainId domain, const AddrRange& range) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  (void)range;  // PMP has no page granularity: recompile the whole layout.
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  ++stats_.memory_syncs;
  ++stats_.pmp_recompiles;
  auto compile = [&]() -> Result<PmpProgram> {
    TYCHE_FAULT_POINT(faults::kPmpRecompile);
    return Compile(engine_->DomainMemoryMap(domain), kDomainEntryBudget);
  };
  Result<PmpProgram> program = compile();
  Status failure = program.ok() ? OkStatus() : program.status();
  if (program.ok()) {
    context->program = std::move(*program);
    if (context->denied) {
      NoteFailsafeCleared();
    }
    context->denied = false;
    // Rewrite harts currently running this domain and any bound devices.
    // Visit EVERY hart and device even after a failure — an early return
    // here would silently leave the remaining cores enforcing the stale
    // (possibly revoked) program — then fall into the deny path below with
    // the first error.
    for (CoreId core = 0; core < machine_->num_cores(); ++core) {
      if (machine_->cpu(core).current_domain() != domain) {
        continue;
      }
      const Status bound = BindCore(domain, core);
      if (!bound.ok() && failure.ok()) {
        failure = bound;
      }
    }
    for (const uint16_t bdf : context->devices) {
      const Status synced = SyncDevice(*context, bdf);
      if (!synced.ok() && failure.ok()) {
        failure = synced;
      }
    }
    if (failure.ok()) {
      return OkStatus();
    }
  }
  // FAIL SAFE. Either the new layout does not fit the entry budget, or a
  // hart/device write failed half-way; leaving the OLD (or a torn) program
  // installed would keep enforcing stale access. Deny the whole domain
  // instead -- the hardware may enforce a subset of the capability tree,
  // never a superset -- and report the error so policy operations can be
  // rolled back (a later successful sync restores enforcement).
  context->program.entries.clear();
  if (!context->denied) {
    NoteFailsafeEntered();
  }
  context->denied = true;
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    if (machine_->cpu(core).current_domain() != domain) {
      continue;
    }
    const Status denied = BindCore(domain, core);
    if (!denied.ok()) {
      // Clearing entries cannot allocate; a failure here means even the
      // deny write was refused. Nothing sounder is reachable — report it.
      TYCHE_LOG(kError) << "pmp: deny-all write to core " << core
                        << " failed: " << denied.ToString();
    }
  }
  for (const uint16_t bdf : context->devices) {
    const Status synced = SyncDevice(*context, bdf);
    if (!synced.ok()) {
      TYCHE_LOG(kError) << "pmp: deny-all write to device " << bdf
                        << " failed: " << synced.ToString();
    }
  }
  return failure;
}

Status PmpBackend::SyncDevice(const DomainContext& context, uint16_t bdf) {
  TYCHE_FAULT_POINT(faults::kPmpSyncDevice);
  PmpFile& file = machine_->io_pmp().FileFor(PciBdf{bdf});
  for (int i = 0; i < PmpFile::kNumEntries; ++i) {
    TYCHE_RETURN_IF_ERROR(file.ClearEntry(i, &machine_->cycles()));
    ++stats_.pmp_entry_writes;
  }
  int slot = 0;
  for (const PmpEntry& entry : context.program.entries) {
    TYCHE_RETURN_IF_ERROR(file.SetEntry(slot++, entry, &machine_->cycles()));
    ++stats_.pmp_entry_writes;
  }
  ++stats_.iommu_updates;
  return OkStatus();
}

Status PmpBackend::AttachDevice(DomainId domain, uint16_t bdf) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  TYCHE_FAULT_POINT(faults::kPmpAttachDevice);
  context->devices.insert(bdf);
  const Status synced = SyncDevice(*context, bdf);
  if (!synced.ok()) {
    // A device whose IOPMP could not be programmed must not be remembered
    // as attached: undo the insert and drop its file (default-deny).
    context->devices.erase(bdf);
    machine_->io_pmp().Remove(PciBdf{bdf});
    return synced;
  }
  return OkStatus();
}

Status PmpBackend::DetachDevice(DomainId domain, uint16_t bdf) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  if (!context->devices.contains(bdf)) {
    return Error(ErrorCode::kNotFound, "device not attached to domain");
  }
  TYCHE_FAULT_POINT(faults::kPmpDetachDevice);
  context->devices.erase(bdf);
  machine_->io_pmp().Remove(PciBdf{bdf});
  ++stats_.iommu_updates;
  return OkStatus();
}

void PmpBackend::InstallGuard(CoreId core) {
  if (guarded_cores_.contains(core)) {
    return;
  }
  PmpEntry guard;
  guard.mode = PmpAddressMode::kNapot;
  guard.perms = Perms{};  // match-and-deny for S/U mode
  guard.locked = true;
  const auto addr = PmpFile::EncodeNapot(monitor_range_.base, monitor_range_.size);
  if (addr.ok()) {
    guard.addr = *addr;
    const Status installed = machine_->cpu(core).pmp().SetEntry(0, guard, &machine_->cycles());
    if (!installed.ok()) {
      // Leave the core out of guarded_cores_ so the next bind retries.
      TYCHE_LOG(kError) << "pmp: monitor guard install on core " << core
                        << " failed: " << installed.ToString();
      return;
    }
    guarded_cores_.insert(core);
  }
}

Status PmpBackend::BindCore(DomainId domain, CoreId core) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  TYCHE_FAULT_POINT(faults::kPmpBindCore);
  InstallGuard(core);
  PmpFile& pmp = machine_->cpu(core).pmp();
  // Deterministic switch cost: rewrite every domain-owned entry.
  int slot = kFirstDomainEntry;
  for (const PmpEntry& entry : context->program.entries) {
    TYCHE_RETURN_IF_ERROR(pmp.SetEntry(slot++, entry, &machine_->cycles()));
    ++stats_.pmp_entry_writes;
  }
  for (; slot < PmpFile::kNumEntries; ++slot) {
    TYCHE_RETURN_IF_ERROR(pmp.ClearEntry(slot, &machine_->cycles()));
    ++stats_.pmp_entry_writes;
  }
  machine_->cpu(core).set_asid(context->asid);
  ++stats_.core_binds;
  return OkStatus();
}

Status PmpBackend::RegisterFastPath(DomainId domain, CoreId core) {
  (void)domain;
  (void)core;
  return Error(ErrorCode::kUnimplemented, "PMP has no hardware fast-transition path");
}

Status PmpBackend::FastBindCore(DomainId domain, CoreId core) {
  (void)domain;
  (void)core;
  return Error(ErrorCode::kUnimplemented, "PMP has no hardware fast-transition path");
}

void PmpBackend::FlushDomain(DomainId domain) {
  // PMP checks are not cached in this model; nothing to flush.
  (void)domain;
}

Result<bool> PmpBackend::ValidateAgainst(const CapabilityEngine& engine, DomainId domain) {
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));

  // Recompile from the engine (source of truth) and compare with what the
  // hardware would enforce.
  auto expected = Compile(engine.DomainMemoryMap(domain), kDomainEntryBudget);
  if (!expected.ok() || context->denied) {
    // Deny-all fallback is the only sound hardware state here: either the
    // layout is not expressible, or a hart/device write failure forced
    // fail-safe denial (a strict subset of the tree in both cases).
    return context->program.entries.empty();
  }
  if (expected->entries.size() != context->program.entries.size()) {
    return false;
  }
  for (size_t i = 0; i < expected->entries.size(); ++i) {
    const PmpEntry& a = expected->entries[i];
    const PmpEntry& b = context->program.entries[i];
    if (a.mode != b.mode || a.addr != b.addr || !(a.perms == b.perms)) {
      return false;
    }
  }

  // Harts running this domain must carry exactly the compiled program.
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    if (machine_->cpu(core).current_domain() != domain) {
      continue;
    }
    const PmpFile& pmp = machine_->cpu(core).pmp();
    int slot = kFirstDomainEntry;
    for (const PmpEntry& entry : context->program.entries) {
      const auto installed = pmp.GetEntry(slot++);
      if (!installed.ok() || installed->mode != entry.mode || installed->addr != entry.addr ||
          !(installed->perms == entry.perms)) {
        return false;
      }
    }
  }
  return true;
}

bool PmpBackend::Denied(DomainId domain) const {
  const auto it = contexts_.find(domain);
  return it != contexts_.end() && it->second.denied;
}

Result<int> PmpBackend::DomainEntryCount(DomainId domain) const {
  const auto it = contexts_.find(domain);
  if (it == contexts_.end()) {
    return Error(ErrorCode::kNotFound, "no backend context for domain");
  }
  return static_cast<int>(it->second.program.entries.size());
}

}  // namespace tyche
