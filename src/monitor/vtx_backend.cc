// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/vtx_backend.h"

#include <algorithm>

#include "src/support/faults.h"
#include "src/support/log.h"
#include "src/support/profiler.h"

namespace tyche {

VtxBackend::VtxBackend(Machine* machine, const CapabilityEngine* engine,
                       FrameAllocator* metadata)
    : machine_(machine), engine_(engine), metadata_(metadata) {}

Result<VtxBackend::DomainContext*> VtxBackend::ContextOf(DomainId domain) {
  const auto it = contexts_.find(domain);
  if (it == contexts_.end()) {
    return Error(ErrorCode::kNotFound, "no backend context for domain");
  }
  return &it->second;
}

Status VtxBackend::CreateDomainContext(DomainId domain, uint16_t asid) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  if (contexts_.contains(domain)) {
    return Error(ErrorCode::kAlreadyExists, "backend context exists");
  }
  TYCHE_FAULT_POINT(faults::kVtxCreateContext);
  TYCHE_ASSIGN_OR_RETURN(NestedPageTable table,
                         NestedPageTable::Create(&machine_->memory(), metadata_,
                                                 &machine_->cycles()));
  DomainContext context;
  context.ept = std::make_unique<NestedPageTable>(std::move(table));
  context.asid = asid;
  contexts_.emplace(domain, std::move(context));
  return OkStatus();
}

Status VtxBackend::DestroyDomainContext(DomainId domain) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  // Detach any devices still bound to this context. Teardown must not stop
  // half-way, so failures here are logged and the walk continues; a device
  // that would not detach still loses its translation when the EPT below is
  // destroyed.
  for (const uint16_t bdf : context->devices) {
    const Status detached = machine_->iommu().DetachDevice(PciBdf{bdf});
    if (!detached.ok()) {
      TYCHE_LOG(kWarn) << "vtx: teardown detach of device " << bdf
                       << " failed: " << detached.ToString();
    }
  }
  // Make sure no core keeps the dying EPT installed.
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    if (machine_->CoreEpt(core) == context->ept.get()) {
      machine_->SetCoreEpt(core, nullptr, /*flush_tlb=*/true);
    }
  }
  for (auto& [core, domains] : fast_paths_) {
    domains.erase(domain);
  }
  TYCHE_RETURN_IF_ERROR(context->ept->Destroy());
  if (!context->degraded.empty()) {
    NoteFailsafeCleared();  // the fail-safe state dies with the context
  }
  contexts_.erase(domain);
  return OkStatus();
}

Status VtxBackend::SyncMemory(DomainId domain, const AddrRange& range) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  NestedPageTable* ept = context->ept.get();

  ++stats_.memory_syncs;
  auto sync_pages = [&]() -> Status {
    TYCHE_FAULT_POINT(faults::kVtxSyncMemory);
    for (uint64_t page = AlignDown(range.base, kPageSize); page < range.end();
         page += kPageSize) {
      const Perms effective = engine_->EffectivePerms(domain, page);
      const auto current = ept->Lookup(page);
      if (effective.empty()) {
        if (current.ok()) {
          TYCHE_RETURN_IF_ERROR(ept->UnmapPage(page));
          ++stats_.pages_unmapped;
        }
      } else if (!current.ok()) {
        // Identity mapping: domains name physical memory directly.
        TYCHE_RETURN_IF_ERROR(ept->MapPage(page, page, effective));
        ++stats_.pages_mapped;
      } else if (current->perms != effective) {
        TYCHE_RETURN_IF_ERROR(ept->ProtectPage(page, effective));
        ++stats_.pages_protected;
      }
    }
    return OkStatus();
  };
  const Status synced = sync_pages();
  if (!synced.ok()) {
    // FAIL SAFE: a half-applied sync could leave a page mapped that the tree
    // no longer justifies. Deny the whole range instead; hardware then
    // enforces a subset of the capability tree until a later sync repairs it.
    DenyRange(context, range);
    FlushDomain(domain);
    return synced;
  }
  if (!context->degraded.empty() && range.base <= context->degraded.base &&
      context->degraded.end() <= range.end()) {
    // A full, successful sync over the degraded hull restores liveness.
    context->degraded = AddrRange{0, 0};
    NoteFailsafeCleared();
  }
  FlushDomain(domain);
  return OkStatus();
}

void VtxBackend::DenyRange(DomainContext* context, const AddrRange& range) {
  const uint64_t begin = AlignDown(range.base, kPageSize);
  const uint64_t end = range.end();
  for (uint64_t page = begin; page < end; page += kPageSize) {
    if (!context->ept->Lookup(page).ok()) {
      continue;
    }
    const Status unmapped = context->ept->UnmapPage(page);
    if (!unmapped.ok()) {
      // Unmapping an existing leaf cannot allocate and should never fail;
      // if it somehow does, scream — this is the one path with no fallback.
      TYCHE_LOG(kError) << "vtx: deny-range unmap of page " << page
                        << " failed: " << unmapped.ToString();
    } else {
      ++stats_.pages_unmapped;
    }
  }
  if (context->degraded.empty()) {
    context->degraded = AddrRange{begin, end - begin};
    NoteFailsafeEntered();
  } else {
    const uint64_t lo = std::min(context->degraded.base, begin);
    const uint64_t hi = std::max(context->degraded.end(), end);
    context->degraded = AddrRange{lo, hi - lo};
  }
}

bool VtxBackend::Degraded(DomainId domain) const {
  const auto it = contexts_.find(domain);
  return it != contexts_.end() && !it->second.degraded.empty();
}

Status VtxBackend::AttachDevice(DomainId domain, uint16_t bdf) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  TYCHE_FAULT_POINT(faults::kVtxAttachDevice);
  TYCHE_RETURN_IF_ERROR(machine_->iommu().AttachDevice(PciBdf{bdf}, context->ept.get()));
  context->devices.insert(bdf);
  ++stats_.iommu_updates;
  return OkStatus();
}

Status VtxBackend::DetachDevice(DomainId domain, uint16_t bdf) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  if (!context->devices.contains(bdf)) {
    return Error(ErrorCode::kNotFound, "device not attached to domain");
  }
  TYCHE_FAULT_POINT(faults::kVtxDetachDevice);
  // Drop the bookkeeping entry only once the IOMMU walk succeeded, so a
  // failed detach stays visible to the validator (rule 3) instead of
  // leaving a silently-forgotten live translation.
  TYCHE_RETURN_IF_ERROR(machine_->iommu().DetachDevice(PciBdf{bdf}));
  context->devices.erase(bdf);
  ++stats_.iommu_updates;
  return OkStatus();
}

Status VtxBackend::BindCore(DomainId domain, CoreId core) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  TYCHE_FAULT_POINT(faults::kVtxBindCore);
  // Slow path: full EPTP load; without VPID tagging this flushes the TLB.
  machine_->SetCoreEpt(core, context->ept.get(), /*flush_tlb=*/true);
  machine_->cpu(core).set_asid(context->asid);
  ++stats_.core_binds;
  ++stats_.tlb_shootdowns;
  return OkStatus();
}

Status VtxBackend::RegisterFastPath(DomainId domain, CoreId core) {
  if (!contexts_.contains(domain)) {
    return Error(ErrorCode::kNotFound, "no backend context for domain");
  }
  std::set<DomainId>& list = fast_paths_[core];
  if (list.size() >= kEptpListSize) {
    return Error(ErrorCode::kResourceExhausted, "EPTP list full");
  }
  list.insert(domain);
  return OkStatus();
}

Status VtxBackend::FastBindCore(DomainId domain, CoreId core) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  const auto it = fast_paths_.find(core);
  if (it == fast_paths_.end() || !it->second.contains(domain)) {
    return Error(ErrorCode::kTransitionDenied, "domain not in core's EPTP list");
  }
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  // VMFUNC path: EPTP switch with VPID-tagged TLB, no flush, no VM exit.
  machine_->SetCoreEpt(core, context->ept.get(), /*flush_tlb=*/false);
  machine_->cpu(core).set_asid(context->asid);
  ++stats_.fast_binds;
  return OkStatus();
}

void VtxBackend::FlushDomain(DomainId domain) {
  const ScopedPhase phase(DispatchPhase::kBackend);
  const auto it = contexts_.find(domain);
  if (it == contexts_.end()) {
    return;
  }
  for (CoreId core = 0; core < machine_->num_cores(); ++core) {
    if (machine_->CoreEpt(core) == it->second.ept.get()) {
      machine_->FlushTlb(core);
      ++stats_.tlb_shootdowns;
    }
  }
}

Result<bool> VtxBackend::ValidateAgainst(const CapabilityEngine& engine, DomainId domain) {
  TYCHE_ASSIGN_OR_RETURN(DomainContext * context, ContextOf(domain));
  bool consistent = true;

  // 1. Every hardware mapping must be justified by an active capability
  //    with at least those permissions, and must be an identity mapping.
  context->ept->ForEachMapping([&](uint64_t gpa, uint64_t hpa, Perms perms) {
    if (gpa != hpa) {
      consistent = false;
      return;
    }
    if (!engine.EffectivePerms(domain, gpa).Covers(perms)) {
      consistent = false;
    }
  });

  // 2. Every capability-mandated region must be mapped with exactly the
  //    effective permissions — except inside a fail-safe denied hull, where
  //    missing mappings are the *intended* degraded state (rule 1 above
  //    still forbids any mapping the tree does not justify).
  for (const auto& region : engine.DomainMemoryMap(domain)) {
    for (uint64_t page = region.range.base; page < region.range.end(); page += kPageSize) {
      if (!context->degraded.empty() && context->degraded.Contains(page)) {
        continue;
      }
      const auto mapping = context->ept->Lookup(page);
      if (!mapping.ok() || mapping->perms != region.perms) {
        consistent = false;
        break;
      }
    }
  }

  // 3. Devices attached to this domain must point at this domain's EPT.
  for (const uint16_t bdf : context->devices) {
    if (machine_->iommu().ContextOf(PciBdf{bdf}) != context->ept.get()) {
      consistent = false;
    }
  }
  return consistent;
}

const NestedPageTable* VtxBackend::DomainEpt(DomainId domain) const {
  const auto it = contexts_.find(domain);
  return it == contexts_.end() ? nullptr : it->second.ept.get();
}

uint64_t VtxBackend::TotalTableFrames() const {
  uint64_t total = 0;
  for (const auto& [id, context] : contexts_) {
    total += context.ept->table_frames();
  }
  return total;
}

}  // namespace tyche
