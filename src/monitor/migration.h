// Copyright 2026 The Tyche Reproduction Authors.
// Live migration & failover of attested domains (DESIGN.md §11).
//
// A sealed domain is moved from a source monitor to a destination monitor
// through a staged commit:
//
//   freeze    -- quiesce the domain on the source: every operation by or on
//                it now fails typed with kMigrating; preconditions (sealed,
//                not running, exclusively owned resources) are checked here.
//   capture   -- serialize the domain's slice of engine + hardware state
//                into a hash-committed payload, bind it to the source's
//                measured identity with a Schnorr signature, and ship the
//                source's checkpointed journal alongside as provenance.
//   transfer  -- chunk the payload into checksummed frames and push them
//                through a MigrationTransport, re-sending un-delivered
//                frames for up to MigrationOptions::max_attempts rounds (the
//                simulated channel may drop, duplicate, or reorder frames).
//   restore   -- the destination verifies everything it can (container
//                commitment, binding signature, journal chain, shadow-replay
//                cross-check) and stages the adoption on a COPY of its
//                engine; the live monitor is untouched.
//   resync    -- the staged engine is swapped in and the destination's
//                hardware is rebuilt from it (ResyncAll); failure swaps the
//                kept pre-image back.
//   commit    -- handoff records are journaled on both sides (kMigrateOut
//                binding the payload digest on the source, kMigrateIn
//                binding the same digest plus the source record's chain link
//                on the destination) and the source purges the domain.
//
// Any failure before commit rolls back to the source: the destination
// restores its pre-image, the source unfreezes the domain and journals an
// abort. The source journal carries a handoff record ONLY for committed
// migrations, so a crash mid-migration is an implicit rollback (Recover()
// clears the frozen set). VerifyJournalSplice (src/tyche/verifier.h) checks
// offline that the two journals splice into one verifiable history.

#ifndef SRC_MONITOR_MIGRATION_H_
#define SRC_MONITOR_MIGRATION_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "src/monitor/monitor.h"

namespace tyche {

// Byte-frame transport between the two monitors. Send() MAY silently lose,
// duplicate, or delay frames (that is the point of LossyChannel); Recv()
// returns kNotFound when no frame is pending. The migration protocol owns
// reliability: frames carry sequence numbers and checksums, and missing
// frames are re-sent.
class MigrationTransport {
 public:
  virtual ~MigrationTransport() = default;
  virtual Status Send(std::span<const uint8_t> frame) = 0;
  virtual Result<std::vector<uint8_t>> Recv() = 0;
};

// In-process transport with perfect delivery (tests, benches). The lossy
// variant lives in src/tyche/channel.h next to the attested ring channels.
class ReliableTransport : public MigrationTransport {
 public:
  Status Send(std::span<const uint8_t> frame) override {
    frames_.emplace_back(frame.begin(), frame.end());
    return OkStatus();
  }
  Result<std::vector<uint8_t>> Recv() override {
    if (frames_.empty()) {
      return Error(ErrorCode::kNotFound, "no frame pending");
    }
    std::vector<uint8_t> frame = std::move(frames_.front());
    frames_.pop_front();
    return frame;
  }

 private:
  std::deque<std::vector<uint8_t>> frames_;
};

struct MigrationOptions {
  // Payload bytes per frame. Small enough that a multi-page domain spans
  // many frames (so drop/reorder faults have structure to break), large
  // enough that the bench can sweep footprint without frame-count noise.
  uint64_t chunk_size = 4096;
  // Send-and-drain rounds before the transfer stage gives up. Round 1 sends
  // everything; each later round re-sends only the frames that never
  // arrived, so a single dropped frame costs one retry, not a full resend.
  uint32_t max_attempts = 8;
  // Seed for the jittered retry backoff (src/support/backoff.h). 0 derives a
  // per-migration seed from the payload digest, so concurrent migrations
  // against one congested channel de-synchronize by default; a fixed nonzero
  // seed pins the schedule for reproducibility.
  uint64_t backoff_seed = 0;
};

struct MigrationReport {
  DomainId dest_domain = kInvalidDomain;  // id adopted on the destination
  Digest payload_digest;                  // what both handoff records bind
  uint64_t payload_bytes = 0;
  uint64_t frames_sent = 0;  // includes re-sends
  uint64_t retries = 0;      // transfer rounds beyond the first
  // Total jittered backoff charged across retry rounds, in sim cycles.
  // Exposed so tests can assert the schedule is jittered (two seeds =>
  // different totals) yet reproducible (same seed => same total).
  uint64_t backoff_cycles = 0;
};

// Migrates `domain` from `source` to `dest`. Both monitors must be in serial
// dispatch mode; the domain must be sealed, idle (not on any core or
// transition stack), not the initial domain, and must own every one of its
// resources exclusively. `source_key` authenticates the payload on the
// destination -- in the failover deployment both monitors boot the same
// measured image, so this is source->public_key() and key continuity is what
// makes the migrated domain's attestation verify unchanged.
Result<MigrationReport> MigrateDomain(Monitor* source, Monitor* dest,
                                      DomainId domain,
                                      MigrationTransport* transport,
                                      const SchnorrPublicKey& source_key,
                                      const MigrationOptions& options = {});

// Test-only hooks: freeze / unfreeze a domain exactly as the protocol does.
// The freeze window is otherwise synchronous inside MigrateDomain(), so the
// kMigrating rejection paths (and the concurrent-dispatch exclusion against
// an in-flight migration) would be unobservable from a test.
void FreezeDomainForTest(Monitor* monitor, DomainId domain);
void UnfreezeDomainForTest(Monitor* monitor, DomainId domain);

}  // namespace tyche

#endif  // SRC_MONITOR_MIGRATION_H_
