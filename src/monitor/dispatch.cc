// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/dispatch.h"

#include <chrono>

#include "src/support/faults.h"
#include "src/support/locking.h"

namespace tyche {

namespace {

// Dispatch-level reader/writer classification (DESIGN.md §10). SHARED ops
// never mutate the capability tree, the domain table's shape, or backend
// mappings; whatever per-domain state they do touch is ordered by the
// per-domain shard locks the monitor takes internally. Everything else --
// transfers, revocations, transitions, domain lifecycle -- runs exclusive.
// The classification lives HERE and not inside the monitor because the
// boundary work around some ops (attestation serialization, seal-data
// buffer reads through CheckedRead/CheckedWrite) walks guest memory that an
// exclusive op may be remapping: the lock has to cover the whole call.
bool IsSharedDispatchOp(uint64_t op) {
  switch (static_cast<ApiOp>(op)) {
    case ApiOp::kAttestDomain:
    case ApiOp::kEnumerate:
    case ApiOp::kSetEntryPoint:
    case ApiOp::kExtendMeasurement:
    case ApiOp::kSeal:
    case ApiOp::kSetTransitionPolicy:
    case ApiOp::kSealData:
    case ApiOp::kUnsealData:
      return true;
    default:
      return false;
  }
}

ApiResult Ok(uint64_t ret0 = 0, uint64_t ret1 = 0) {
  return ApiResult{0, ret0, ret1};
}

ApiResult Fail(const Status& status) {
  return ApiResult{static_cast<uint64_t>(status.code()), 0, 0};
}

ApiResult Fail(ErrorCode code) { return ApiResult{static_cast<uint64_t>(code), 0, 0}; }

// Unpacks arg = rights<<8 | policy.
CapRights UnpackRights(uint64_t arg) {
  return CapRights(static_cast<uint8_t>((arg >> 8) & CapRights::kAll));
}
RevocationPolicy UnpackPolicy(uint64_t arg) {
  return RevocationPolicy(static_cast<uint8_t>(arg & RevocationPolicy::kObfuscate));
}

ApiResult DispatchInner(Monitor* monitor, CoreId core, const ApiRegs& regs) {
  if (regs.op >= static_cast<uint64_t>(ApiOp::kOpCount)) {
    return Fail(ErrorCode::kInvalidArgument);
  }
  switch (static_cast<ApiOp>(regs.op)) {
    case ApiOp::kCreateDomain: {
      const auto result = monitor->CreateDomain(core, "anon");
      if (!result.ok()) {
        return Fail(result.status());
      }
      return Ok(result->domain, result->handle);
    }
    case ApiOp::kSetEntryPoint: {
      const Status status = monitor->SetEntryPoint(core, regs.arg0, regs.arg1);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kShareMemory: {
      const auto result = monitor->ShareMemory(
          core, regs.arg0, regs.arg1, AddrRange{regs.arg2, regs.arg3},
          Perms(static_cast<uint8_t>(regs.arg4 & Perms::kRWX)), UnpackRights(regs.arg5),
          UnpackPolicy(regs.arg5));
      return result.ok() ? Ok(*result) : Fail(result.status());
    }
    case ApiOp::kGrantMemory: {
      const auto result = monitor->GrantMemory(
          core, regs.arg0, regs.arg1, AddrRange{regs.arg2, regs.arg3},
          Perms(static_cast<uint8_t>(regs.arg4 & Perms::kRWX)), UnpackRights(regs.arg5),
          UnpackPolicy(regs.arg5));
      return result.ok() ? Ok(result->granted) : Fail(result.status());
    }
    case ApiOp::kShareUnit: {
      const auto result = monitor->ShareUnit(core, regs.arg0, regs.arg1,
                                             UnpackRights(regs.arg2),
                                             UnpackPolicy(regs.arg2));
      return result.ok() ? Ok(*result) : Fail(result.status());
    }
    case ApiOp::kGrantUnit: {
      const auto result = monitor->GrantUnit(core, regs.arg0, regs.arg1,
                                             UnpackRights(regs.arg2),
                                             UnpackPolicy(regs.arg2));
      return result.ok() ? Ok(*result) : Fail(result.status());
    }
    case ApiOp::kRevoke: {
      const Status status = monitor->Revoke(core, regs.arg0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kExtendMeasurement: {
      const Status status =
          monitor->ExtendMeasurement(core, regs.arg0, AddrRange{regs.arg1, regs.arg2});
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kSeal: {
      const Status status = monitor->Seal(core, regs.arg0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kAttestDomain: {
      const auto report = regs.arg0 == 0
                              ? monitor->AttestSelf(core, regs.arg1)
                              : monitor->AttestDomain(core, regs.arg0, regs.arg1);
      if (!report.ok()) {
        return Fail(report.status());
      }
      const std::vector<uint8_t> wire = SerializeAttestation(*report);
      if (wire.size() > regs.arg3) {
        return Fail(ErrorCode::kResourceExhausted);
      }
      // Written through the CALLER's protection context: the out-buffer
      // must be caller-writable or the write faults like any other access.
      const Status written = monitor->machine()->CheckedWrite(
          core, regs.arg2, std::span<const uint8_t>(wire));
      if (!written.ok()) {
        return Fail(written);
      }
      return Ok(wire.size());
    }
    case ApiOp::kEnumerate: {
      const auto resources = monitor->Enumerate(core, regs.arg0);
      return resources.ok() ? Ok(resources->size()) : Fail(resources.status());
    }
    case ApiOp::kTransition: {
      const Status status = monitor->Transition(core, regs.arg0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kReturn: {
      const Status status = monitor->ReturnFromDomain(core);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kRegisterFastTransition: {
      const Status status = monitor->RegisterFastTransition(core, regs.arg0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kFastTransition: {
      const Status status =
          monitor->FastTransition(core, static_cast<DomainId>(regs.arg0));
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kDestroyDomain: {
      const Status status = monitor->DestroyDomain(core, regs.arg0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kRouteInterrupt: {
      const Status status = monitor->RouteInterrupt(core, regs.arg0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kTakeInterrupt: {
      const auto interrupt = monitor->TakeInterrupt(core);
      return interrupt.ok() ? Ok(interrupt->vector, interrupt->source.value)
                            : Fail(interrupt.status());
    }
    case ApiOp::kSetTransitionPolicy: {
      const Status status =
          monitor->SetTransitionPolicy(core, regs.arg0, regs.arg1 != 0);
      return status.ok() ? Ok() : Fail(status);
    }
    case ApiOp::kSealData:
    case ApiOp::kUnsealData: {
      // arg0 = in pa, arg1 = in size, arg2 = out pa, arg3 = out capacity.
      // Both buffers are touched through the caller's protection context.
      if (regs.arg1 > (1u << 20)) {
        return Fail(ErrorCode::kInvalidArgument);
      }
      std::vector<uint8_t> input(regs.arg1);
      const Status read =
          monitor->machine()->CheckedRead(core, regs.arg0, std::span<uint8_t>(input));
      if (!read.ok()) {
        return Fail(read);
      }
      const auto output = static_cast<ApiOp>(regs.op) == ApiOp::kSealData
                              ? monitor->SealData(core, input)
                              : monitor->UnsealData(core, input);
      if (!output.ok()) {
        return Fail(output.status());
      }
      if (output->size() > regs.arg3) {
        return Fail(ErrorCode::kResourceExhausted);
      }
      const Status written = monitor->machine()->CheckedWrite(
          core, regs.arg2, std::span<const uint8_t>(*output));
      if (!written.ok()) {
        return Fail(written);
      }
      return Ok(output->size());
    }
    case ApiOp::kOpCount:
      break;
  }
  return Fail(ErrorCode::kInvalidArgument);
}

}  // namespace

ApiResult Dispatch(Monitor* monitor, CoreId core, const ApiRegs& regs) {
  Telemetry& telemetry = monitor->telemetry();
  AuditJournal& audit = monitor->audit();
  DispatchProfiler& profiler = monitor->profiler();
  // Serial mode keeps the boundary overhead at a few relaxed loads and
  // predicted branches; concurrent mode (EnableConcurrentDispatch) classifies
  // the op and takes the api lock shared or exclusive around the WHOLE call,
  // including the guest-memory staging above/below DispatchInner. Callers
  // that want concurrency MUST come through Dispatch(): direct monitor
  // method calls remain serial-only.
  const bool concurrent = monitor->concurrent_dispatch();
  const bool shared_op = concurrent && IsSharedDispatchOp(regs.op);
  // With telemetry, the journal, AND the profiler fully off the boundary
  // adds a handful of relaxed loads and branches (including the watchdog's
  // disabled tick) -- measured by bench_telemetry / bench_profile against
  // the seed baseline.
  const bool journal_on = audit.enabled();
  const bool prof_on = profiler.enabled();
  if (!telemetry.any_enabled() && !journal_on && !prof_on) {
    ApiResult result;
    {
      ConditionalSharedLock read_lock(monitor->api_mu(), shared_op,
                                      telemetry.shared_contention(),
                                      telemetry.shared_wait_ns());
      ConditionalUniqueLock write_lock(monitor->api_mu(), concurrent && !shared_op,
                                       telemetry.exclusive_contention(),
                                       telemetry.exclusive_wait_ns(),
                                       DispatchPhase::kApiLockWait);
      result = DispatchInner(monitor, core, regs);
    }
    if (result.error != 0) [[unlikely]] {
      // First occurrence of each (op, error) shape snapshots a post-mortem
      // record; repeats cost two relaxed loads (see FlightRecorder). No
      // span id here -- the uninstrumented path never opens one.
      monitor->flight_recorder().OnDispatchError(static_cast<uint16_t>(regs.op),
                                                 /*span=*/0, result.error);
    }
    monitor->watchdog().MaybeTick(static_cast<uint16_t>(regs.op), /*span=*/0);
    return result;
  }
  // Resolve the caller BEFORE the call: ops like kTransition change it.
  const uint32_t caller = core < monitor->machine()->num_cores()
                              ? monitor->CurrentDomain(core)
                              : kTraceNoDomain;
  const bool timing = telemetry.any_enabled();
  const auto start = (timing || prof_on) ? std::chrono::steady_clock::now()
                                         : std::chrono::steady_clock::time_point{};
  const uint64_t start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start.time_since_epoch())
          .count());
  // The phase window opens on the SAME clock read the TraceEntry timing
  // uses and closes on the same end read below, so the per-phase sums
  // reconcile with the end-to-end duration exactly (kOther absorbs the
  // residual boundary work; bench_profile gates the ratio).
  const bool windowed = prof_on && profiler.BeginWindow(start_ns);

  // Fault-site triggers are detected by delta: if the global injector
  // delivered a fault during this call, the flight recorder captures the
  // site alongside the dispatch outcome. Only sampled while a plan is
  // armed, so production dispatch never reads the injector's mutex.
  const bool faults_active = FaultInjector::active();
  const uint64_t faults_before =
      faults_active ? FaultInjector::Instance().fired_count() : 0;

  // Every journal record caused by this call -- engine mutations, cascades,
  // backend effects -- shares this span id with the TraceEntry.
  const uint64_t span = monitor->BeginSpan(core);
  ApiResult result;
  {
    ConditionalSharedLock read_lock(monitor->api_mu(), shared_op,
                                    telemetry.shared_contention(),
                                    telemetry.shared_wait_ns());
    ConditionalUniqueLock write_lock(monitor->api_mu(), concurrent && !shared_op,
                                     telemetry.exclusive_contention(),
                                     telemetry.exclusive_wait_ns(),
                                     DispatchPhase::kApiLockWait);
    result = DispatchInner(monitor, core, regs);
  }
  monitor->EndSpan(core);

  const uint16_t op = static_cast<uint16_t>(
      regs.op < static_cast<uint64_t>(ApiOp::kOpCount) ? regs.op : ~0ull);
  const uint64_t args[] = {regs.arg0, regs.arg1, regs.arg2,
                           regs.arg3, regs.arg4, regs.arg5};
  const uint64_t args_digest = Fnv1aDigest(args, 6);

  if (journal_on) {
    audit.Dispatch(span, op, caller, args_digest, result.error);
  }
  const auto end = (timing || windowed) ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point{};
  const uint64_t end_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end.time_since_epoch())
          .count());
  if (windowed) {
    profiler.EndWindow(op, span, end_ns);
  }
  if (timing) {
    TraceEntry entry;
    entry.op = op;
    entry.core = core;
    entry.domain = caller;
    entry.span = span;
    entry.args_digest = args_digest;
    entry.error = result.error;
    entry.duration_ns = end_ns - start_ns;
    entry.start_ns = start_ns;
    // The telemetry-record overhead runs after the e2e clock stopped, so it
    // is measured DETACHED: visible in the phase histograms without ever
    // perturbing the reconciliation property above. Sampled 1-in-16 (keyed
    // off the monotonic span id, so no extra state) because the measurement
    // itself costs two clock reads -- full-rate sampling would tax every
    // dispatch to time a ~constant-cost recording step.
    const bool sample_telemetry = windowed && (span & 15) == 0;
    const uint64_t record_start = sample_telemetry ? ProfilerNowNs() : 0;
    telemetry.RecordCall(entry);
    if (sample_telemetry) {
      const uint64_t record_end = ProfilerNowNs();
      profiler.RecordDetached(op, DispatchPhase::kTelemetry,
                              record_end - record_start, span, record_end);
    }
  }
  // Post-mortem hooks, outside every dispatch lock. An injected fault that
  // fired during this call is the stronger signal, so it wins over the
  // generic dispatch-error capture.
  if (faults_active &&
      FaultInjector::Instance().fired_count() > faults_before) [[unlikely]] {
    const std::vector<std::string> sites = FaultInjector::Instance().fired_sites();
    monitor->flight_recorder().Capture(
        "fault_site", op, span, result.error,
        sites.empty() ? std::string() : "site " + sites.back());
  } else if (result.error != 0) [[unlikely]] {
    monitor->flight_recorder().OnDispatchError(op, span, result.error);
  }
  // Watchdog tick LAST, after every lock is released: the checks take only
  // leaf locks (journal mutex, engine shared lock) plus one relaxed backend
  // load. The span lets a violation capture name the dispatch whose tick
  // detected it.
  monitor->watchdog().MaybeTick(op, span);
  return result;
}

}  // namespace tyche
