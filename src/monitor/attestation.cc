// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/attestation.h"

#include "src/monitor/audit.h"

namespace tyche {

namespace {

constexpr uint64_t kReportMagic = 0x5459434841545431ULL;    // "TYCHATT1"
constexpr uint64_t kIdentityMagic = 0x545943484d4f4e31ULL;  // "TYCHMON1"

void PutU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutDigest(std::vector<uint8_t>* out, const Digest& digest) {
  out->insert(out->end(), digest.bytes.begin(), digest.bytes.end());
}

class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return Error(ErrorCode::kOutOfRange, "truncated wire data");
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  Result<Digest> ReadDigest() {
    if (pos_ + 32 > bytes_.size()) {
      return Error(ErrorCode::kOutOfRange, "truncated digest");
    }
    Digest digest;
    std::copy(bytes_.begin() + static_cast<long>(pos_),
              bytes_.begin() + static_cast<long>(pos_) + 32, digest.bytes.begin());
    pos_ += 32;
    return digest;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeAttestation(const DomainAttestation& report) {
  std::vector<uint8_t> out;
  PutU64(&out, kReportMagic);
  PutU64(&out, report.domain);
  PutU64(&out, report.nonce);
  PutU64(&out, report.sealed ? 1 : 0);
  PutDigest(&out, report.measurement);
  PutU64(&out, report.resources.size());
  for (const ResourceClaim& claim : report.resources) {
    PutU64(&out, static_cast<uint64_t>(claim.kind));
    PutU64(&out, claim.range.base);
    PutU64(&out, claim.range.size);
    PutU64(&out, claim.unit);
    PutU64(&out, claim.perms.mask);
    PutU64(&out, claim.ref_count);
  }
  PutDigest(&out, report.report_digest);
  PutU64(&out, report.signature.s);
  PutDigest(&out, report.signature.e);
  PutU64(&out, report.signature.r);
  return out;
}

Result<DomainAttestation> DeserializeAttestation(std::span<const uint8_t> bytes) {
  WireReader reader(bytes);
  TYCHE_ASSIGN_OR_RETURN(const uint64_t magic, reader.U64());
  if (magic != kReportMagic) {
    return Error(ErrorCode::kInvalidArgument, "not an attestation report");
  }
  DomainAttestation report;
  TYCHE_ASSIGN_OR_RETURN(const uint64_t domain, reader.U64());
  report.domain = static_cast<uint32_t>(domain);
  TYCHE_ASSIGN_OR_RETURN(report.nonce, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(const uint64_t sealed, reader.U64());
  report.sealed = sealed != 0;
  TYCHE_ASSIGN_OR_RETURN(report.measurement, reader.ReadDigest());
  TYCHE_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  if (count > 1u << 20) {
    return Error(ErrorCode::kInvalidArgument, "implausible resource count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    ResourceClaim claim;
    TYCHE_ASSIGN_OR_RETURN(const uint64_t kind, reader.U64());
    if (kind > static_cast<uint64_t>(ResourceKind::kDomain)) {
      return Error(ErrorCode::kInvalidArgument, "bad resource kind");
    }
    claim.kind = static_cast<ResourceKind>(kind);
    TYCHE_ASSIGN_OR_RETURN(claim.range.base, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(claim.range.size, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(claim.unit, reader.U64());
    TYCHE_ASSIGN_OR_RETURN(const uint64_t perms, reader.U64());
    claim.perms = Perms(static_cast<uint8_t>(perms));
    TYCHE_ASSIGN_OR_RETURN(const uint64_t ref_count, reader.U64());
    claim.ref_count = static_cast<uint32_t>(ref_count);
    report.resources.push_back(claim);
  }
  TYCHE_ASSIGN_OR_RETURN(report.report_digest, reader.ReadDigest());
  TYCHE_ASSIGN_OR_RETURN(report.signature.s, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(report.signature.e, reader.ReadDigest());
  // Commitment for batch verification, appended to the report wire format.
  TYCHE_ASSIGN_OR_RETURN(report.signature.r, reader.U64());
  return report;
}

std::vector<uint8_t> SerializeMonitorIdentity(const MonitorIdentity& identity) {
  std::vector<uint8_t> out;
  PutU64(&out, kIdentityMagic);
  PutU64(&out, identity.tpm_key.y);
  PutU64(&out, identity.monitor_key.y);
  PutDigest(&out, identity.firmware_measurement);
  PutDigest(&out, identity.monitor_measurement);
  PutU64(&out, identity.boot_quote.nonce);
  PutU64(&out, identity.boot_quote.pcr_mask);
  PutU64(&out, identity.boot_quote.pcr_values.size());
  for (const Digest& value : identity.boot_quote.pcr_values) {
    PutDigest(&out, value);
  }
  PutDigest(&out, identity.boot_quote.quote_digest);
  PutU64(&out, identity.boot_quote.signature.s);
  PutDigest(&out, identity.boot_quote.signature.e);
  return out;
}

Result<MonitorIdentity> DeserializeMonitorIdentity(std::span<const uint8_t> bytes) {
  WireReader reader(bytes);
  TYCHE_ASSIGN_OR_RETURN(const uint64_t magic, reader.U64());
  if (magic != kIdentityMagic) {
    return Error(ErrorCode::kInvalidArgument, "not a monitor identity");
  }
  MonitorIdentity identity;
  TYCHE_ASSIGN_OR_RETURN(identity.tpm_key.y, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(identity.monitor_key.y, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(identity.firmware_measurement, reader.ReadDigest());
  TYCHE_ASSIGN_OR_RETURN(identity.monitor_measurement, reader.ReadDigest());
  TYCHE_ASSIGN_OR_RETURN(identity.boot_quote.nonce, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(const uint64_t mask, reader.U64());
  identity.boot_quote.pcr_mask = static_cast<uint32_t>(mask);
  TYCHE_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  if (count > Tpm::kNumPcrs) {
    return Error(ErrorCode::kInvalidArgument, "implausible PCR count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    TYCHE_ASSIGN_OR_RETURN(const Digest value, reader.ReadDigest());
    identity.boot_quote.pcr_values.push_back(value);
  }
  TYCHE_ASSIGN_OR_RETURN(identity.boot_quote.quote_digest, reader.ReadDigest());
  TYCHE_ASSIGN_OR_RETURN(identity.boot_quote.signature.s, reader.U64());
  TYCHE_ASSIGN_OR_RETURN(identity.boot_quote.signature.e, reader.ReadDigest());
  return identity;
}

Digest DomainAttestation::ComputeDigest() const {
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-domain-attestation-v1"));
  ctx.UpdateValue(domain);
  ctx.UpdateValue(nonce);
  ctx.UpdateValue(static_cast<uint8_t>(sealed ? 1 : 0));
  ctx.Update(std::span<const uint8_t>(measurement.bytes.data(), measurement.bytes.size()));
  ctx.UpdateValue(static_cast<uint64_t>(resources.size()));
  for (const ResourceClaim& claim : resources) {
    ctx.UpdateValue(static_cast<uint8_t>(claim.kind));
    ctx.UpdateValue(claim.range.base);
    ctx.UpdateValue(claim.range.size);
    ctx.UpdateValue(claim.unit);
    ctx.UpdateValue(claim.perms.mask);
    ctx.UpdateValue(claim.ref_count);
  }
  return ctx.Finalize();
}

Digest HashPublicKey(const SchnorrPublicKey& key) {
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-pubkey-v1"));
  ctx.UpdateValue(key.y);
  return ctx.Finalize();
}

namespace {

Digest ExtendDigest(const Digest& pcr, const Digest& value) {
  Sha256 ctx;
  ctx.Update(std::span<const uint8_t>(pcr.bytes.data(), pcr.bytes.size()));
  ctx.Update(std::span<const uint8_t>(value.bytes.data(), value.bytes.size()));
  return ctx.Finalize();
}

}  // namespace

Digest ExpectedPcr0(const Digest& firmware_measurement) {
  return ExtendDigest(Digest{}, firmware_measurement);
}

Digest ExpectedPcr1(const Digest& monitor_measurement, const SchnorrPublicKey& monitor_key) {
  const Digest after_image = ExtendDigest(Digest{}, monitor_measurement);
  return ExtendDigest(after_image, HashPublicKey(monitor_key));
}

Status RemoteVerifier::VerifyMonitor(const MonitorIdentity& identity,
                                     uint64_t expected_nonce) const {
  if (!(identity.tpm_key == tpm_key_)) {
    return Error(ErrorCode::kAttestationMismatch, "untrusted TPM key");
  }
  if (identity.firmware_measurement != golden_firmware_) {
    return Error(ErrorCode::kAttestationMismatch, "firmware measurement mismatch");
  }
  if (identity.monitor_measurement != golden_monitor_) {
    return Error(ErrorCode::kAttestationMismatch, "monitor measurement mismatch");
  }
  const TpmQuote& quote = identity.boot_quote;
  if (quote.nonce != expected_nonce) {
    return Error(ErrorCode::kAttestationMismatch, "stale quote nonce");
  }
  const uint32_t expected_mask = (1u << Tpm::kPcrFirmware) | (1u << Tpm::kPcrMonitor);
  if (quote.pcr_mask != expected_mask || quote.pcr_values.size() != 2) {
    return Error(ErrorCode::kAttestationMismatch, "quote does not cover boot PCRs");
  }
  if (quote.pcr_values[0] != ExpectedPcr0(golden_firmware_)) {
    return Error(ErrorCode::kAttestationMismatch, "PCR0 does not match golden firmware");
  }
  if (quote.pcr_values[1] != ExpectedPcr1(golden_monitor_, identity.monitor_key)) {
    return Error(ErrorCode::kAttestationMismatch,
                 "PCR1 does not bind golden monitor to claimed key");
  }
  if (!Tpm::VerifyQuote(quote, tpm_key_)) {
    return Error(ErrorCode::kSignatureInvalid, "TPM quote signature invalid");
  }
  return OkStatus();
}

Status RemoteVerifier::VerifyDomain(const DomainAttestation& report,
                                    const SchnorrPublicKey& monitor_key,
                                    uint64_t expected_nonce,
                                    const Digest* expected_measurement) const {
  if (report.nonce != expected_nonce) {
    return Error(ErrorCode::kAttestationMismatch, "stale report nonce");
  }
  if (report.ComputeDigest() != report.report_digest) {
    return Error(ErrorCode::kAttestationMismatch, "report digest inconsistent");
  }
  if (!SchnorrVerify(monitor_key, report.report_digest, report.signature)) {
    return Error(ErrorCode::kSignatureInvalid, "report signature invalid");
  }
  if (!report.sealed) {
    return Error(ErrorCode::kAttestationMismatch, "domain not sealed");
  }
  if (expected_measurement != nullptr && report.measurement != *expected_measurement) {
    return Error(ErrorCode::kAttestationMismatch, "measurement does not match golden value");
  }
  return OkStatus();
}

Status RemoteVerifier::VerifyJournal(std::span<const uint8_t> journal_bytes,
                                     const SchnorrPublicKey& monitor_key,
                                     const std::string* expected_graph_json) {
  TYCHE_ASSIGN_OR_RETURN(const ParsedJournal parsed, Journal::Deserialize(journal_bytes));
  TYCHE_RETURN_IF_ERROR(
      Journal::VerifyChain(parsed.records, parsed.checkpoints, monitor_key));
  if (!parsed.records.empty() && parsed.records.front().seq != 0) {
    // A compacted journal starts mid-history: the chain above is anchored to
    // a signed checkpoint, but a genesis replay is impossible without the
    // anchoring snapshot (VerifyJournalWithSnapshot in recovery.h).
    if (expected_graph_json != nullptr) {
      return Error(ErrorCode::kFailedPrecondition,
                   "journal: truncated journal needs its snapshot to replay "
                   "(use --snapshot)");
    }
    return OkStatus();
  }
  TYCHE_ASSIGN_OR_RETURN(const JournalReplay replay, ReplayJournal(parsed.records));
  if (expected_graph_json != nullptr && replay.graph_json != *expected_graph_json) {
    return Error(ErrorCode::kJournalReplayDivergence,
                 "journal: replayed capability graph does not match the snapshot");
  }
  return OkStatus();
}

bool RemoteVerifier::AllResourcesExclusive(const DomainAttestation& report) {
  for (const ResourceClaim& claim : report.resources) {
    if (claim.ref_count != 1) {
      return false;
    }
  }
  return true;
}

bool RemoteVerifier::MaxRefCount(const DomainAttestation& report, uint32_t limit) {
  for (const ResourceClaim& claim : report.resources) {
    if (claim.kind == ResourceKind::kMemory && claim.ref_count > limit) {
      return false;
    }
  }
  return true;
}

}  // namespace tyche
