// Copyright 2026 The Tyche Reproduction Authors.
// Crash-consistent monitor recovery (DESIGN.md §8).
//
// The durability story: every engine mutation is journaled AFTER it
// completes, so at any record boundary the live engine state equals the
// replay of the journal prefix up to that record. Signed checkpoints
// periodically bind a hash-committed snapshot of the full monitor state
// (capability lineage tree, refcounts, domain table, id allocators) into
// the chain. A monitor that dies at an arbitrary point is rebuilt by:
//
//   snapshot at checkpoint S  +  journal suffix (S, crash]  →  engine state
//   ResyncAll()                                             →  hardware state
//   measured re-boot of the same image                      →  same key, so
//                                                              the chain and
//                                                              attestation
//                                                              continue
//
// Durable:      the journal, snapshots, sealed-domain measurements + entry
//               points (carried by seal records), domain lifecycle.
// NOT durable:  execution state (core bindings, call stacks — every core
//               restarts in the initial domain), rolling measurement
//               contexts of unsealed domains, unsealed domains' entry
//               points and names set after the last snapshot.

#ifndef SRC_MONITOR_RECOVERY_H_
#define SRC_MONITOR_RECOVERY_H_

#include <span>
#include <string>
#include <vector>

#include "src/monitor/boot.h"
#include "src/support/snapshot.h"

namespace tyche {

// One durable snapshot: serialized bytes plus the journal seq it covers and
// the content digest (what the checkpoint signature binds).
struct MonitorSnapshot {
  uint64_t seq = 0;
  Digest digest;
  std::vector<uint8_t> bytes;
};

// In-memory stand-in for the durable medium snapshots live on (flash, a
// host file). The monitor writes through it at every signed checkpoint once
// EnableSnapshots() is called.
class SnapshotStore {
 public:
  void Put(MonitorSnapshot snapshot);

  // Newest snapshot covering seq <= `seq` (kNotFound if none).
  Result<MonitorSnapshot> LatestAtOrBefore(uint64_t seq) const;
  Result<MonitorSnapshot> Latest() const;
  size_t size() const { return snapshots_.size(); }

  // Drops snapshots older than `seq` (pairs with Journal::TruncateBefore).
  void PruneOlderThan(uint64_t seq);

 private:
  std::vector<MonitorSnapshot> snapshots_;  // ascending seq
};

// Deterministic digest of an engine's complete state. Two engines with the
// same lineage tree, domain table, and id allocator hash identically — the
// crash sweep's equivalence oracle.
Digest EngineDigest(const CapabilityEngine& engine);

// Offline snapshot-anchored verification (tools/journal_verify --snapshot):
// parses and self-checks the snapshot, requires its digest to be bound into
// a signed checkpoint, verifies the (possibly truncated) chain, replays the
// suffix on top of the snapshot's engine image, and — when non-empty —
// compares the resulting graph against `expected_graph_json`. Error codes
// distinguish chain breaks (kJournalChainBroken), bad signatures
// (kJournalSignatureInvalid), and replay divergence
// (kJournalReplayDivergence).
Status VerifyJournalWithSnapshot(std::span<const uint8_t> journal_bytes,
                                 std::span<const uint8_t> snapshot_bytes,
                                 const SchnorrPublicKey& key,
                                 const std::string& expected_graph_json);

// Crash-recovery boot: measured-boot steps 1–4 (measure firmware + monitor,
// derive the measurement-bound attestation key) followed by
// Monitor::Recover() instead of InstallInitialDomain(). Because the key is
// derived from the monitor measurement, the SAME image on the SAME machine
// regains the SAME key: old checkpoint signatures verify and new ones
// continue the chain. `snapshot_bytes` may be empty (fresh-boot recovery:
// the whole journal replays from genesis).
Result<BootOutcome> MeasuredRecovery(Machine* machine, const BootParams& params,
                                     std::span<const uint8_t> snapshot_bytes,
                                     const ParsedJournal& journal);

}  // namespace tyche

#endif  // SRC_MONITOR_RECOVERY_H_
