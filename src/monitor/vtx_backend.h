// Copyright 2026 The Tyche Reproduction Authors.
// The x86 backend (§4): enforces capabilities with VT-x-style nested page
// tables, an IOMMU for device DMA, and a VMFUNC-style EPTP list for fast
// domain transitions.

#ifndef SRC_MONITOR_VTX_BACKEND_H_
#define SRC_MONITOR_VTX_BACKEND_H_

#include <map>
#include <memory>
#include <set>

#include "src/hw/machine.h"
#include "src/monitor/backend.h"

namespace tyche {

class VtxBackend : public Backend {
 public:
  // `metadata` provides frames for page tables; it must cover memory the
  // monitor owns exclusively.
  VtxBackend(Machine* machine, const CapabilityEngine* engine, FrameAllocator* metadata);

  Status CreateDomainContext(DomainId domain, uint16_t asid) override;
  Status DestroyDomainContext(DomainId domain) override;
  Status SyncMemory(DomainId domain, const AddrRange& range) override;
  Status AttachDevice(DomainId domain, uint16_t bdf) override;
  Status DetachDevice(DomainId domain, uint16_t bdf) override;
  Status BindCore(DomainId domain, CoreId core) override;
  Status RegisterFastPath(DomainId domain, CoreId core) override;
  Status FastBindCore(DomainId domain, CoreId core) override;
  void FlushDomain(DomainId domain) override;
  Result<bool> ValidateAgainst(const CapabilityEngine& engine, DomainId domain) override;
  const char* name() const override { return "vtx"; }

  // Exposed for TCB accounting and tests.
  const NestedPageTable* DomainEpt(DomainId domain) const;
  uint64_t TotalTableFrames() const;

  // Architectural EPTP-list size (VMFUNC leaf 0).
  static constexpr size_t kEptpListSize = 512;

  // True when a failed sync forced part of this domain's address space into
  // fail-safe denial (see DenyRange). Exposed for tests.
  bool Degraded(DomainId domain) const;

 private:
  struct DomainContext {
    std::unique_ptr<NestedPageTable> ept;
    uint16_t asid = 0;
    std::set<uint16_t> devices;
    // Fail-safe state: when a SyncMemory cannot complete, every page in the
    // affected range is unmapped (deny) and the range is recorded here. The
    // validator accepts missing mappings inside this hull — hardware then
    // enforces a SUBSET of the capability tree, never a superset — and a
    // later successful sync covering the hull clears it.
    AddrRange degraded{0, 0};
  };

  Result<DomainContext*> ContextOf(DomainId domain);
  void DenyRange(DomainContext* context, const AddrRange& range);

  Machine* machine_;
  const CapabilityEngine* engine_;
  FrameAllocator* metadata_;
  std::map<DomainId, DomainContext> contexts_;
  // Per-core EPTP list for VMFUNC transitions.
  std::map<CoreId, std::set<DomainId>> fast_paths_;
};

}  // namespace tyche

#endif  // SRC_MONITOR_VTX_BACKEND_H_
