// Copyright 2026 The Tyche Reproduction Authors.
// Measured boot (§3.4 tier 1): SRTM-style chain rooted in the TPM.
//
//   1. The firmware is measured into PCR0.
//   2. The monitor image is measured into PCR1.
//   3. The monitor derives its attestation key from the TPM endorsement
//      seed bound to its own measurement (a different monitor image yields
//      a different key) and extends PCR1 with the public key's hash.
//   4. The monitor takes ownership of its own memory range, then installs
//      the initial domain (the commodity OS) with every remaining resource.

#ifndef SRC_MONITOR_BOOT_H_
#define SRC_MONITOR_BOOT_H_

#include <memory>
#include <span>

#include "src/monitor/monitor.h"

namespace tyche {

struct BootParams {
  std::span<const uint8_t> firmware_image;
  std::span<const uint8_t> monitor_image;
  // Memory reserved for the monitor: image + metadata pool (page tables,
  // domain contexts). Carved from the bottom of physical memory.
  uint64_t monitor_memory_bytes = 4ull << 20;  // 4 MiB
  std::string initial_domain_name = "os";
};

struct BootOutcome {
  std::unique_ptr<Monitor> monitor;
  DomainId initial_domain = kInvalidDomain;
  // Golden values a remote verifier would be provisioned with.
  Digest firmware_measurement;
  Digest monitor_measurement;
};

// Boots `machine` under the isolation monitor. After this returns, the
// initial domain runs on every core and owns all resources outside the
// monitor's reservation.
Result<BootOutcome> MeasuredBoot(Machine* machine, const BootParams& params);

// Steps 1–4 only: measure firmware + monitor, derive the measurement-bound
// key, construct the monitor — WITHOUT installing the initial domain.
// MeasuredBoot() completes it with InstallInitialDomain();
// MeasuredRecovery() (recovery.h) completes it with Monitor::Recover().
// `outcome.initial_domain` is left invalid.
Result<BootOutcome> PrepareMonitor(Machine* machine, const BootParams& params);

// Canonical demo images (deterministic content) so examples/tests/benches
// share golden measurements.
std::vector<uint8_t> DemoFirmwareImage();
std::vector<uint8_t> DemoMonitorImage();

}  // namespace tyche

#endif  // SRC_MONITOR_BOOT_H_
