// Copyright 2026 The Tyche Reproduction Authors.

#include "src/monitor/migration.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "src/hw/cost_model.h"
#include "src/monitor/audit.h"
#include "src/support/backoff.h"
#include "src/support/faults.h"
#include "src/support/log.h"
#include "src/support/snapshot.h"

namespace tyche {
namespace {

// Payload container tags (outer) and state-image tags (inner). The state
// image is its own TYSN container so the payload digest -- what both handoff
// records bind -- covers exactly the state being adopted, independent of the
// journal and signature riding alongside.
constexpr uint32_t kPayloadState = 1;
constexpr uint32_t kPayloadJournal = 2;
constexpr uint32_t kPayloadMeta = 3;
constexpr uint32_t kStateDomain = 1;
constexpr uint32_t kStateCaps = 2;
constexpr uint32_t kStatePages = 3;

constexpr uint32_t kFrameMagic = 0x464D5954;  // "TYMF"

// One serialized capability of the migrating domain.
struct PayloadCap {
  ResourceKind kind = ResourceKind::kMemory;
  AddrRange range;
  uint64_t unit = 0;
  Perms perms;
  CapRights rights;
  RevocationPolicy policy;
};

struct PayloadImage {
  uint32_t source_domain = 0;
  std::string name;
  uint64_t entry_point = 0;
  bool entry_point_set = false;
  Digest measurement;
  bool scrub_on_exit = false;
  std::vector<PayloadCap> caps;
  std::vector<std::pair<uint64_t, std::string>> pages;  // base -> content
};

uint64_t Prefix64(const Digest& digest) {
  uint64_t value = 0;
  for (size_t i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(digest.bytes[i]) << (8 * i);
  }
  return value;
}

// The statement the source signs: its measured identity vouches that THIS
// state image describes THIS domain. Domain-bound so a payload cannot be
// replayed as a different domain's state.
Digest BindingDigest(const Digest& payload_digest, uint32_t domain) {
  Sha256 ctx;
  ctx.Update(std::string_view("tyche-migration-v1"));
  ctx.Update(std::span<const uint8_t>(payload_digest.bytes));
  ctx.UpdateValue(domain);
  return ctx.Finalize();
}

// --- Frame codec (transfer stage) ---
// magic | seq | total | length | payload bytes | checksum64. The checksum is
// the SHA-256 prefix of the chunk, so a frame corrupted in flight is simply
// treated as lost and re-sent.

std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload, uint64_t chunk,
                                 uint32_t seq, uint32_t total) {
  const uint64_t offset = static_cast<uint64_t>(seq) * chunk;
  const uint64_t length = std::min<uint64_t>(chunk, payload.size() - offset);
  const std::span<const uint8_t> body = payload.subspan(offset, length);
  SectionWriter w;
  w.Append<uint32_t>(kFrameMagic);
  w.Append<uint32_t>(seq);
  w.Append<uint32_t>(total);
  w.Append<uint32_t>(static_cast<uint32_t>(length));
  std::vector<uint8_t> frame = w.Take();
  frame.insert(frame.end(), body.begin(), body.end());
  SectionWriter tail;
  tail.Append<uint64_t>(Prefix64(Sha256::Hash(body)));
  const std::vector<uint8_t> checksum = tail.Take();
  frame.insert(frame.end(), checksum.begin(), checksum.end());
  return frame;
}

struct DecodedFrame {
  uint32_t seq = 0;
  uint32_t total = 0;
  std::vector<uint8_t> bytes;
};

bool DecodeFrame(std::span<const uint8_t> frame, DecodedFrame* out) {
  SectionReader r(frame);
  uint32_t magic = 0;
  uint32_t length = 0;
  if (!r.Read(&magic) || magic != kFrameMagic || !r.Read(&out->seq) ||
      !r.Read(&out->total) || !r.Read(&length)) {
    return false;
  }
  if (r.remaining() != static_cast<size_t>(length) + sizeof(uint64_t)) {
    return false;
  }
  const std::span<const uint8_t> body = frame.subspan(frame.size() - length - 8, length);
  out->bytes.assign(body.begin(), body.end());
  uint64_t checksum = 0;
  SectionReader tail(frame.subspan(frame.size() - 8));
  return tail.Read(&checksum) && checksum == Prefix64(Sha256::Hash(body));
}

}  // namespace

// Friend of Monitor: the staged-commit protocol needs the same private
// access Recover() has (engine swap, domain table, journal builders).
class MigrationInternal {
 public:
  // Everything the destination stages before anything live changes. The
  // journal records are NOT appended here -- they land at commit, after the
  // source's kMigrateOut, so an aborted migration leaves no trace of an
  // adoption that never happened.
  struct StagedAdoption {
    DomainId new_id = kInvalidDomain;
    CapabilityEngine engine;  // dest pre-state + adoption mutations
    TrustDomain adopted;
    Digest payload_digest;
    uint64_t source_head_prefix = 0;  // source chain head at capture
    CapId handle_cap = kInvalidCap;
    struct MemGrant {
      CapId src_cap = kInvalidCap;
      GrantOutcome outcome;
      AddrRange sub;
      Perms perms;
      CapRights rights;
      RevocationPolicy policy;
    };
    struct UnitGrant {
      CapId src_cap = kInvalidCap;
      GrantOutcome outcome;
      ResourceKind kind = ResourceKind::kCpuCore;
      uint64_t unit = 0;
      CapRights rights;
      RevocationPolicy policy;
    };
    std::vector<MemGrant> mem_grants;
    std::vector<UnitGrant> unit_grants;
    std::vector<std::pair<uint64_t, std::string>> pages;
  };

  static Result<MigrationReport> Run(Monitor* source, Monitor* dest, DomainId domain,
                                     MigrationTransport* transport,
                                     const SchnorrPublicKey& source_key,
                                     const MigrationOptions& options);

  static void FreezeForTest(Monitor* monitor, DomainId domain) {
    monitor->frozen_.insert(domain);
  }
  static void UnfreezeForTest(Monitor* monitor, DomainId domain) {
    monitor->frozen_.erase(domain);
  }

 private:
  static Status Gate(std::string_view site) {
    TYCHE_FAULT_POINT(site);
    return OkStatus();
  }

  static Status Freeze(Monitor* source, Monitor* dest, DomainId domain);
  static Result<MigrationReport> RunFrozen(Monitor* source, Monitor* dest,
                                           DomainId domain, MigrationTransport* transport,
                                           const SchnorrPublicKey& source_key,
                                           const MigrationOptions& options);
  static void RollbackSource(Monitor* source, DomainId domain, const Status& cause);

  static Result<std::vector<uint8_t>> BuildPayload(Monitor* source, DomainId domain,
                                                   Digest* payload_digest,
                                                   uint64_t* head_prefix);
  static Result<std::vector<uint8_t>> Transfer(Monitor* source,
                                               MigrationTransport* transport,
                                               std::span<const uint8_t> payload,
                                               const MigrationOptions& options,
                                               MigrationReport* report);
  static Result<StagedAdoption> StageOnDest(Monitor* dest, std::span<const uint8_t> payload,
                                            const SchnorrPublicKey& source_key);
  static Result<PayloadImage> ParseStateImage(std::span<const uint8_t> bytes);
  static Status CrossCheckAgainstJournal(const PayloadImage& image,
                                         const ParsedJournal& journal);
  static void RollbackDest(Monitor* dest, const StagedAdoption& staged,
                           const EngineImage& pre_engine, DomainId pre_next_domain,
                           uint16_t pre_next_asid);
  static Status CommitSourceTeardown(Monitor* source, DomainId domain, uint64_t span);
};

Status MigrationInternal::Freeze(Monitor* source, Monitor* dest, DomainId domain) {
  if (source == dest) {
    return Error(ErrorCode::kInvalidArgument, "source and destination are the same monitor");
  }
  if (source->concurrent_dispatch() || dest->concurrent_dispatch()) {
    // The protocol reads and mutates monitor state without the dispatch
    // locks; the mirror check lives in EnableConcurrentDispatch().
    return Error(ErrorCode::kFailedPrecondition,
                 "migration requires serial dispatch on both monitors");
  }
  if (source->migration_in_progress() || dest->migration_in_progress()) {
    return Error(ErrorCode::kFailedPrecondition, "another migration is in flight");
  }
  TYCHE_FAULT_POINT(faults::kMigrateFreeze);
  const auto it = source->domains_.find(domain);
  if (it == source->domains_.end() || !it->second.alive()) {
    return Error(ErrorCode::kDomainDead, "migration source domain not alive");
  }
  const TrustDomain& dom = it->second;
  if (dom.creator == kInvalidDomain) {
    return Error(ErrorCode::kFailedPrecondition, "the initial domain cannot migrate");
  }
  if (!dom.sealed()) {
    // The rolling measurement context is not serializable (and an unsealed
    // domain has no attested identity to preserve anyway).
    return Error(ErrorCode::kFailedPrecondition, "only sealed domains migrate");
  }
  for (CoreId core = 0; core < source->machine_->num_cores(); ++core) {
    if (source->machine_->cpu(core).current_domain() == domain) {
      return Error(ErrorCode::kFailedPrecondition, "domain is running");
    }
    const auto& stack = source->call_stacks_[core];
    if (std::find(stack.begin(), stack.end(), domain) != stack.end()) {
      return Error(ErrorCode::kFailedPrecondition, "domain is on a transition stack");
    }
  }
  for (const auto& [id, other] : source->domains_) {
    if (other.alive() && other.creator == domain) {
      return Error(ErrorCode::kFailedPrecondition, "domain has live children");
    }
  }
  // Exclusive ownership of every resource: migration moves state, and a
  // resource another domain can still see cannot move machines.
  for (const Capability* cap : source->engine_.DomainCaps(domain)) {
    switch (cap->kind) {
      case ResourceKind::kMemory:
        if (!source->engine_.ExclusivelyOwned(domain, cap->range)) {
          return Error(ErrorCode::kFailedPrecondition, "memory is shared, not exclusive");
        }
        break;
      case ResourceKind::kDomain:
        return Error(ErrorCode::kFailedPrecondition, "domain handles do not migrate");
      default:
        if (source->engine_.UnitRefCount(cap->kind, cap->unit) != 1) {
          return Error(ErrorCode::kFailedPrecondition, "unit resource is shared");
        }
        break;
    }
  }
  source->frozen_.insert(domain);
  return OkStatus();
}

void MigrationInternal::RollbackSource(Monitor* source, DomainId domain,
                                       const Status& cause) {
  source->frozen_.erase(domain);
  // Journal the abort so the history shows the freeze window; no handoff
  // record was appended, so replay sees nothing to compensate.
  const uint64_t span = source->next_span_.fetch_add(1, std::memory_order_relaxed);
  source->audit_.Abort(span, static_cast<uint16_t>(ApiOp::kOpCount), domain, cause.code());
  TYCHE_LOG(kWarn) << "migration of domain " << domain
                   << " rolled back to source: " << cause.ToString();
}

Result<std::vector<uint8_t>> MigrationInternal::BuildPayload(Monitor* source,
                                                             DomainId domain,
                                                             Digest* payload_digest,
                                                             uint64_t* head_prefix) {
  TYCHE_FAULT_POINT(faults::kMigrateCapture);
  const TrustDomain& dom = source->domains_.at(domain);

  SectionWriter dw;
  dw.Append<uint32_t>(domain);
  dw.AppendString(dom.name);
  dw.Append<uint64_t>(dom.entry_point);
  dw.Append<uint8_t>(dom.entry_point_set ? 1 : 0);
  dw.AppendDigest(dom.measurement);
  dw.Append<uint8_t>(dom.scrub_on_exit ? 1 : 0);

  const std::vector<const Capability*> caps = source->engine_.DomainCaps(domain);
  SectionWriter cw;
  cw.Append<uint32_t>(static_cast<uint32_t>(caps.size()));
  for (const Capability* cap : caps) {
    cw.Append<uint8_t>(static_cast<uint8_t>(cap->kind));
    cw.Append<uint64_t>(cap->range.base);
    cw.Append<uint64_t>(cap->range.size);
    cw.Append<uint64_t>(cap->unit);
    cw.Append<uint8_t>(cap->perms.mask);
    cw.Append<uint8_t>(cap->rights.mask);
    cw.Append<uint8_t>(cap->revocation.mask);
  }

  SectionWriter pw;
  uint32_t regions = 0;
  for (const Capability* cap : caps) {
    if (cap->kind == ResourceKind::kMemory) {
      ++regions;
    }
  }
  pw.Append<uint32_t>(regions);
  for (const Capability* cap : caps) {
    if (cap->kind != ResourceKind::kMemory) {
      continue;
    }
    std::string content(cap->range.size, '\0');
    TYCHE_RETURN_IF_ERROR(source->machine_->memory().Read(
        cap->range.base,
        std::span<uint8_t>(reinterpret_cast<uint8_t*>(content.data()), content.size())));
    pw.Append<uint64_t>(cap->range.base);
    pw.AppendString(content);
  }

  SnapshotWriter state;
  state.AddSection(kStateDomain, dw.Take());
  state.AddSection(kStateCaps, cw.Take());
  state.AddSection(kStatePages, pw.Take());
  std::vector<uint8_t> state_bytes = state.Finish();
  *payload_digest = SnapshotDigest(state_bytes);

  // Checkpoint + export: the shipped provenance journal always has a signed
  // covered tail, so the destination verifies it under the strict rule.
  std::vector<uint8_t> journal_bytes = source->audit_.Export();
  *head_prefix = Prefix64(source->audit_.journal().head());

  const SchnorrSignature sig =
      SchnorrSign(source->key_.priv, BindingDigest(*payload_digest, domain));
  SectionWriter mw;
  mw.Append<uint32_t>(domain);
  mw.Append<uint64_t>(*head_prefix);
  mw.Append<uint64_t>(sig.s);
  mw.AppendDigest(sig.e);

  SnapshotWriter payload;
  payload.AddSection(kPayloadState, std::move(state_bytes));
  payload.AddSection(kPayloadJournal, std::move(journal_bytes));
  payload.AddSection(kPayloadMeta, mw.Take());
  return payload.Finish();
}

Result<std::vector<uint8_t>> MigrationInternal::Transfer(Monitor* source,
                                                         MigrationTransport* transport,
                                                         std::span<const uint8_t> payload,
                                                         const MigrationOptions& options,
                                                         MigrationReport* report) {
  const uint64_t chunk = std::max<uint64_t>(1, options.chunk_size);
  const uint32_t total = static_cast<uint32_t>((payload.size() + chunk - 1) / chunk);
  std::map<uint32_t, std::vector<uint8_t>> received;
  // Jittered exponential backoff between retry rounds. The seed defaults to
  // a per-migration value (payload digest prefix) so two migrations that
  // failed against the same congested channel at the same instant do NOT
  // re-send in lockstep every round — the bug class this replaces was a
  // deterministic `vmcall_round_trip << round` charge identical across all
  // migrations.
  Prng backoff_prng(options.backoff_seed != 0
                        ? options.backoff_seed
                        : Prefix64(report->payload_digest) ^ 0x6261636b6f6666ULL);
  const BackoffPolicy backoff{/*base=*/CostModel::Default().vmcall_round_trip,
                              /*cap=*/CostModel::Default().vmcall_round_trip
                                  << 10};
  for (uint32_t round = 0; received.size() < total; ++round) {
    if (round >= options.max_attempts) {
      return Error(ErrorCode::kResourceExhausted, "migration transfer retries exhausted");
    }
    if (round > 0) {
      ++report->retries;
      const uint64_t wait = JitteredBackoff(backoff_prng, backoff, round);
      report->backoff_cycles += wait;
      source->machine_->cycles().Charge(wait);
    }
    TYCHE_FAULT_POINT(faults::kMigrateTransfer);
    for (uint32_t seq = 0; seq < total; ++seq) {
      if (received.contains(seq)) {
        continue;
      }
      TYCHE_RETURN_IF_ERROR(transport->Send(EncodeFrame(payload, chunk, seq, total)));
      ++report->frames_sent;
    }
    while (true) {
      auto frame = transport->Recv();
      if (!frame.ok()) {
        if (frame.status().code() == ErrorCode::kNotFound) {
          break;  // channel drained; missing frames go to the next round
        }
        return frame.status();
      }
      DecodedFrame decoded;
      if (!DecodeFrame(*frame, &decoded) || decoded.total != total ||
          decoded.seq >= total) {
        continue;  // corrupt or alien frame: treated as lost
      }
      received.emplace(decoded.seq, std::move(decoded.bytes));  // dedupes
    }
  }
  std::vector<uint8_t> out;
  out.reserve(payload.size());
  for (uint32_t seq = 0; seq < total; ++seq) {
    const std::vector<uint8_t>& piece = received.at(seq);
    out.insert(out.end(), piece.begin(), piece.end());
  }
  report->payload_bytes = out.size();
  return out;
}

Result<PayloadImage> MigrationInternal::ParseStateImage(std::span<const uint8_t> bytes) {
  TYCHE_ASSIGN_OR_RETURN(const SnapshotView view, SnapshotView::Parse(bytes));
  PayloadImage image;

  TYCHE_ASSIGN_OR_RETURN(const auto domain_bytes, view.Section(kStateDomain));
  SectionReader dr(domain_bytes);
  uint8_t entry_set = 0;
  uint8_t scrub = 0;
  if (!dr.Read(&image.source_domain) || !dr.ReadString(&image.name) ||
      !dr.Read(&image.entry_point) || !dr.Read(&entry_set) ||
      !dr.ReadDigest(&image.measurement) || !dr.Read(&scrub) || dr.remaining() != 0) {
    return Error(ErrorCode::kInvalidArgument, "migration payload: bad domain section");
  }
  image.entry_point_set = entry_set != 0;
  image.scrub_on_exit = scrub != 0;

  TYCHE_ASSIGN_OR_RETURN(const auto caps_bytes, view.Section(kStateCaps));
  SectionReader cr(caps_bytes);
  uint32_t cap_count = 0;
  if (!cr.Read(&cap_count)) {
    return Error(ErrorCode::kInvalidArgument, "migration payload: bad caps section");
  }
  for (uint32_t i = 0; i < cap_count; ++i) {
    PayloadCap cap;
    uint8_t kind = 0;
    uint8_t perms = 0;
    uint8_t rights = 0;
    uint8_t policy = 0;
    if (!cr.Read(&kind) || !cr.Read(&cap.range.base) || !cr.Read(&cap.range.size) ||
        !cr.Read(&cap.unit) || !cr.Read(&perms) || !cr.Read(&rights) ||
        !cr.Read(&policy)) {
      return Error(ErrorCode::kInvalidArgument, "migration payload: truncated cap");
    }
    cap.kind = static_cast<ResourceKind>(kind);
    cap.perms = Perms(perms);
    cap.rights = CapRights(rights);
    cap.policy = RevocationPolicy(policy);
    image.caps.push_back(cap);
  }

  TYCHE_ASSIGN_OR_RETURN(const auto pages_bytes, view.Section(kStatePages));
  SectionReader pr(pages_bytes);
  uint32_t region_count = 0;
  if (!pr.Read(&region_count)) {
    return Error(ErrorCode::kInvalidArgument, "migration payload: bad pages section");
  }
  for (uint32_t i = 0; i < region_count; ++i) {
    uint64_t base = 0;
    std::string content;
    if (!pr.Read(&base) || !pr.ReadString(&content)) {
      return Error(ErrorCode::kInvalidArgument, "migration payload: truncated region");
    }
    image.pages.emplace_back(base, std::move(content));
  }
  return image;
}

Status MigrationInternal::CrossCheckAgainstJournal(const PayloadImage& image,
                                                   const ParsedJournal& journal) {
  // Only a full-history journal can be shadow-replayed without a snapshot; a
  // source that compacted its journal still ships a chain-verified,
  // signature-bound provenance, just without this extra replay check.
  if (journal.records.empty() || journal.records.front().seq != 0) {
    return OkStatus();
  }
  CapabilityEngine shadow;
  TYCHE_RETURN_IF_ERROR(ReplayJournalInto(&shadow, journal.records).status());

  // The journaled attested identity must be the one the payload claims.
  Digest sealed_measurement;
  bool sealed_seen = false;
  for (const JournalRecord& record : journal.records) {
    if (record.event == static_cast<uint8_t>(JournalEvent::kSealDomain) &&
        record.domain == image.source_domain) {
      sealed_measurement = PackedSealDigest(record);
      sealed_seen = true;
    }
  }
  if (!sealed_seen || sealed_measurement != image.measurement) {
    return Error(ErrorCode::kJournalReplayDivergence,
                 "payload measurement does not match the journaled seal");
  }

  // The replayed capability slice must be the one the payload carries.
  auto key = [](ResourceKind kind, AddrRange range, uint64_t unit, uint8_t perms) {
    return std::tuple<uint8_t, uint64_t, uint64_t, uint64_t, uint8_t>(
        static_cast<uint8_t>(kind), range.base, range.size, unit, perms);
  };
  std::multiset<std::tuple<uint8_t, uint64_t, uint64_t, uint64_t, uint8_t>> expect;
  for (const PayloadCap& cap : image.caps) {
    expect.insert(key(cap.kind, cap.range, cap.unit, cap.perms.mask));
  }
  std::multiset<std::tuple<uint8_t, uint64_t, uint64_t, uint64_t, uint8_t>> replayed;
  for (const Capability* cap : shadow.DomainCaps(image.source_domain)) {
    replayed.insert(key(cap->kind, cap->range, cap->unit, cap->perms.mask));
  }
  if (expect != replayed) {
    return Error(ErrorCode::kJournalReplayDivergence,
                 "payload capability set does not match the journal replay");
  }
  return OkStatus();
}

Result<MigrationInternal::StagedAdoption> MigrationInternal::StageOnDest(
    Monitor* dest, std::span<const uint8_t> payload, const SchnorrPublicKey& source_key) {
  TYCHE_FAULT_POINT(faults::kMigrateRestore);
  TYCHE_ASSIGN_OR_RETURN(const SnapshotView view, SnapshotView::Parse(payload));
  TYCHE_ASSIGN_OR_RETURN(const auto state_bytes, view.Section(kPayloadState));
  TYCHE_ASSIGN_OR_RETURN(const auto journal_bytes, view.Section(kPayloadJournal));
  TYCHE_ASSIGN_OR_RETURN(const auto meta_bytes, view.Section(kPayloadMeta));

  SectionReader mr(meta_bytes);
  uint32_t source_domain = 0;
  uint64_t head_prefix = 0;
  SchnorrSignature sig;
  if (!mr.Read(&source_domain) || !mr.Read(&head_prefix) || !mr.Read(&sig.s) ||
      !mr.ReadDigest(&sig.e) || mr.remaining() != 0) {
    return Error(ErrorCode::kInvalidArgument, "migration payload: bad meta section");
  }

  const Digest payload_digest = SnapshotDigest(state_bytes);
  if (!SchnorrVerify(source_key, BindingDigest(payload_digest, source_domain), sig)) {
    return Error(ErrorCode::kSignatureInvalid,
                 "migration payload not signed by the source monitor");
  }

  // The provenance journal: chain-verified under the source's measured key,
  // strict covered-tail rule (the source checkpointed before export).
  TYCHE_ASSIGN_OR_RETURN(const ParsedJournal journal, Journal::Deserialize(journal_bytes));
  TYCHE_RETURN_IF_ERROR(Journal::VerifyChain(journal.records, journal.checkpoints,
                                             source_key, /*require_covered_tail=*/true));

  TYCHE_ASSIGN_OR_RETURN(const PayloadImage image, ParseStateImage(state_bytes));
  if (image.source_domain != source_domain) {
    return Error(ErrorCode::kSignatureInvalid,
                 "migration payload: state and signature disagree on the domain");
  }
  TYCHE_RETURN_IF_ERROR(CrossCheckAgainstJournal(image, journal));

  // Stage the adoption on a COPY of the destination engine. The record
  // family for these mutations is journaled at commit; the ids it will carry
  // are exactly the ones minted here, because the staged copy starts from
  // the live id allocator and nothing else mutates the destination while a
  // serial-mode migration is in flight.
  StagedAdoption staged;
  staged.payload_digest = payload_digest;
  staged.source_head_prefix = head_prefix;
  staged.new_id = dest->next_domain_;
  TYCHE_RETURN_IF_ERROR(staged.engine.Restore(dest->engine_.Capture()));

  staged.engine.RegisterDomain(staged.new_id, /*creator=*/0);
  TYCHE_ASSIGN_OR_RETURN(staged.handle_cap,
                         staged.engine.MintUnit(/*owner=*/0, ResourceKind::kDomain,
                                                staged.new_id, CapRights(CapRights::kAll)));
  for (const PayloadCap& cap : image.caps) {
    if (cap.kind == ResourceKind::kMemory) {
      // The destination OS must hold a capability covering the range; grants
      // carve it out exclusively, re-searching each time because earlier
      // grants donate the covering cap and mint remainders.
      CapId covering = kInvalidCap;
      for (const Capability* own : staged.engine.DomainCaps(0)) {
        if (own->kind == ResourceKind::kMemory && own->range.base <= cap.range.base &&
            !own->range.Wraps() && cap.range.end() <= own->range.end()) {
          covering = own->id;
          break;
        }
      }
      if (covering == kInvalidCap) {
        return Error(ErrorCode::kFailedPrecondition,
                     "destination lacks a covering memory capability");
      }
      TYCHE_ASSIGN_OR_RETURN(
          GrantOutcome outcome,
          staged.engine.GrantMemory(/*requester=*/0, covering, staged.new_id, cap.range,
                                    cap.perms, cap.rights, cap.policy));
      staged.mem_grants.push_back(
          {covering, std::move(outcome), cap.range, cap.perms, cap.rights, cap.policy});
    } else {
      CapId covering = kInvalidCap;
      for (const Capability* own : staged.engine.DomainCaps(0)) {
        if (own->kind == cap.kind && own->unit == cap.unit) {
          covering = own->id;
          break;
        }
      }
      if (covering == kInvalidCap) {
        return Error(ErrorCode::kFailedPrecondition,
                     "destination lacks the unit resource (core or device)");
      }
      TYCHE_ASSIGN_OR_RETURN(GrantOutcome outcome,
                             staged.engine.GrantUnit(/*requester=*/0, covering,
                                                     staged.new_id, cap.rights, cap.policy));
      staged.unit_grants.push_back(
          {covering, std::move(outcome), cap.kind, cap.unit, cap.rights, cap.policy});
    }
  }
  staged.engine.SealDomain(staged.new_id);

  staged.adopted.id = staged.new_id;
  staged.adopted.creator = 0;
  staged.adopted.state = DomainState::kSealed;
  staged.adopted.name = image.name;
  staged.adopted.entry_point = image.entry_point;
  staged.adopted.entry_point_set = image.entry_point_set;
  staged.adopted.measurement = image.measurement;  // attestation continuity
  staged.adopted.scrub_on_exit = image.scrub_on_exit;
  staged.pages = std::move(image.pages);
  return staged;
}

void MigrationInternal::RollbackDest(Monitor* dest, const StagedAdoption& staged,
                                     const EngineImage& pre_engine,
                                     DomainId pre_next_domain, uint16_t pre_next_asid) {
  const Status restored = dest->engine_.Restore(pre_engine);
  if (!restored.ok()) {
    TYCHE_LOG(kError) << "migration rollback: destination pre-image refused: "
                      << restored.ToString();
  }
  dest->domains_.erase(staged.new_id);
  dest->next_domain_ = pre_next_domain;
  dest->next_asid_ = pre_next_asid;
  // Scrub the half-delivered payload pages: they carried another domain's
  // (possibly secret) state into memory the destination OS still owns.
  for (const auto& [base, content] : staged.pages) {
    (void)dest->machine_->ZeroRange(base, content.size());
  }
  const Status sync = dest->ResyncAll();
  if (!sync.ok()) {
    TYCHE_LOG(kError) << "migration rollback: destination re-sync degraded: "
                      << sync.ToString();
  }
}

Status MigrationInternal::CommitSourceTeardown(Monitor* source, DomainId domain,
                                               uint64_t span) {
  // Mirror of the DestroyDomain commit path: the handoff is already
  // journaled, so the source side is never rolled back -- push through every
  // cleanup step and report the first failure as contained.
  std::vector<std::pair<CapId, RevokeOutcome>> partial;
  const auto purged = source->engine_.PurgeDomain(domain, &partial);
  Status first = OkStatus();
  if (!purged.ok()) {
    for (const auto& [root, committed] : partial) {
      source->audit_.Revoke(span, domain, root, committed, source->engine_);
      source->Count(source->counters_.revocations_cascaded, committed.revoked_count);
      const Status projected = source->ApplyEffects(committed.effects, span);
      if (!projected.ok()) {
        TYCHE_LOG(kWarn) << "migration: partial-purge effects degraded to fail-safe: "
                         << projected.ToString();
      }
    }
    first = purged.status();
  } else {
    source->audit_.PurgeDomain(span, domain, *purged, source->engine_);
    source->Count(source->counters_.revocations_cascaded, purged->revoked_count);
    first = source->ApplyEffects(purged->effects, span);
  }
  const Status context = source->backend_->DestroyDomainContext(domain);
  if (!context.ok() && first.ok()) {
    first = context;
  }
  source->machine_->interrupts().PurgeDomain(domain);
  source->domains_.at(domain).state = DomainState::kDead;
  if (!first.ok()) {
    source->audit_.Abort(span, static_cast<uint16_t>(ApiOp::kOpCount), domain, first.code());
  }
  return first;
}

Result<MigrationReport> MigrationInternal::RunFrozen(Monitor* source, Monitor* dest,
                                                     DomainId domain,
                                                     MigrationTransport* transport,
                                                     const SchnorrPublicKey& source_key,
                                                     const MigrationOptions& options) {
  MigrationReport report;

  // --- capture ---
  Digest payload_digest;
  uint64_t head_prefix = 0;
  TYCHE_ASSIGN_OR_RETURN(const std::vector<uint8_t> payload,
                         BuildPayload(source, domain, &payload_digest, &head_prefix));
  report.payload_digest = payload_digest;

  // --- transfer ---
  TYCHE_ASSIGN_OR_RETURN(const std::vector<uint8_t> delivered,
                         Transfer(source, transport, payload, options, &report));

  // --- restore (staged, destination untouched) ---
  TYCHE_ASSIGN_OR_RETURN(StagedAdoption staged, StageOnDest(dest, delivered, source_key));

  // --- resync: swap the staged engine in, rebuild destination hardware ---
  const EngineImage pre_engine = dest->engine_.Capture();
  const DomainId pre_next_domain = dest->next_domain_;
  const uint16_t pre_next_asid = dest->next_asid_;

  TYCHE_RETURN_IF_ERROR(dest->engine_.Restore(staged.engine.Capture()));
  staged.adopted.asid = dest->next_asid_;
  dest->domains_.emplace(staged.new_id, staged.adopted);
  dest->next_domain_ = staged.new_id + 1;
  ++dest->next_asid_;
  for (const auto& [base, content] : staged.pages) {
    const Status wrote = dest->machine_->memory().Write(
        base, std::span<const uint8_t>(
                  reinterpret_cast<const uint8_t*>(content.data()), content.size()));
    if (!wrote.ok()) {
      RollbackDest(dest, staged, pre_engine, pre_next_domain, pre_next_asid);
      return wrote;
    }
  }
  Status sync = Gate(faults::kMigrateResync);
  if (sync.ok()) {
    sync = dest->ResyncAll();
  }
  if (!sync.ok()) {
    RollbackDest(dest, staged, pre_engine, pre_next_domain, pre_next_asid);
    return sync;
  }

  // --- commit ---
  const Status gate = Gate(faults::kMigrateCommit);
  if (!gate.ok()) {
    RollbackDest(dest, staged, pre_engine, pre_next_domain, pre_next_asid);
    return gate;
  }
  // Source handoff first: the destination's kMigrateIn binds the link of the
  // source's kMigrateOut, which only exists once appended.
  const uint64_t out_span = source->next_span_.fetch_add(1, std::memory_order_relaxed);
  source->audit_.MigrateOut(out_span, domain, payload_digest, head_prefix);
  const Digest out_link = source->audit_.journal().head();

  const uint64_t in_span = dest->next_span_.fetch_add(1, std::memory_order_relaxed);
  dest->audit_.RegisterDomain(in_span, staged.new_id, /*creator=*/0);
  dest->audit_.MintUnit(in_span, /*owner=*/0, staged.handle_cap, ResourceKind::kDomain,
                        staged.new_id, CapRights(CapRights::kAll));
  for (const StagedAdoption::MemGrant& grant : staged.mem_grants) {
    dest->audit_.GrantMemory(in_span, /*requester=*/0, staged.new_id, grant.src_cap,
                             grant.outcome.granted, grant.sub, grant.perms, grant.rights,
                             grant.policy, grant.outcome.remainders.size());
  }
  for (const StagedAdoption::UnitGrant& grant : staged.unit_grants) {
    dest->audit_.GrantUnit(in_span, /*requester=*/0, staged.new_id, grant.src_cap,
                           grant.outcome.granted, grant.kind, grant.unit, grant.rights,
                           grant.policy);
  }
  dest->audit_.SealDomain(in_span, staged.new_id, staged.adopted.measurement,
                          staged.adopted.entry_point);
  dest->audit_.MigrateIn(in_span, staged.new_id, payload_digest, Prefix64(out_link));

  const Status teardown = CommitSourceTeardown(source, domain, out_span);
  source->frozen_.erase(domain);
  if (!teardown.ok()) {
    TYCHE_LOG(kWarn) << "migration committed; source teardown degraded: "
                     << teardown.ToString();
  }
  report.dest_domain = staged.new_id;
  TYCHE_LOG(kInfo) << "domain " << domain << " migrated: now domain " << staged.new_id
                   << " on the destination (" << report.payload_bytes << " bytes, "
                   << report.frames_sent << " frames, " << report.retries << " retries)";
  return report;
}

Result<MigrationReport> MigrationInternal::Run(Monitor* source, Monitor* dest,
                                               DomainId domain,
                                               MigrationTransport* transport,
                                               const SchnorrPublicKey& source_key,
                                               const MigrationOptions& options) {
  TYCHE_RETURN_IF_ERROR(Freeze(source, dest, domain));
  auto result = RunFrozen(source, dest, domain, transport, source_key, options);
  if (!result.ok()) {
    RollbackSource(source, domain, result.status());
  }
  return result;
}

Result<MigrationReport> MigrateDomain(Monitor* source, Monitor* dest, DomainId domain,
                                      MigrationTransport* transport,
                                      const SchnorrPublicKey& source_key,
                                      const MigrationOptions& options) {
  return MigrationInternal::Run(source, dest, domain, transport, source_key, options);
}

void FreezeDomainForTest(Monitor* monitor, DomainId domain) {
  MigrationInternal::FreezeForTest(monitor, domain);
}

void UnfreezeDomainForTest(Monitor* monitor, DomainId domain) {
  MigrationInternal::UnfreezeForTest(monitor, domain);
}

}  // namespace tyche
