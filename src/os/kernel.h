// Copyright 2026 The Tyche Reproduction Authors.
// LinOS: the miniature commodity kernel that runs as the INITIAL DOMAIN on
// the isolation monitor (the paper boots unmodified Linux here; we boot this
// instead -- see DESIGN.md substitutions).
//
// LinOS demonstrates the paper's central architectural point (§3.5): the
// monitor does not replace the OS. LinOS keeps providing processes, a
// scheduler, syscalls, and memory management -- all *software* abstractions
// inside domain 0 -- while the monitor transparently lets LinOS (or anyone)
// carve hardware-isolated sub-compartments: driver sandboxes, per-process
// enclaves, confidential VMs.
//
// It also embodies the problem statement (§2.2): LinOS process "isolation"
// is bookkeeping that privileged code can bypass at will (KernelPeek),
// which the threat-model tests contrast with monitor-enforced domains.

#ifndef SRC_OS_KERNEL_H_
#define SRC_OS_KERNEL_H_

#include <map>
#include <string>

#include "src/monitor/monitor.h"
#include "src/os/allocator.h"
#include "src/os/scheduler.h"
#include "src/tyche/enclave.h"
#include "src/tyche/sandbox.h"

namespace tyche {

using Pid = uint32_t;

struct OsProcess {
  Pid pid = 0;
  std::string name;
  AddrRange memory;  // physical range backing the process
  bool alive = true;
  uint64_t syscalls = 0;
  // The process's guest-virtual address space: user memory appears at
  // kUserBase regardless of where its frames physically live. Table frames
  // come from the kernel's page-table pool -- they are NOT mapped into any
  // process, so user code cannot rewrite its own translations.
  std::unique_ptr<NestedPageTable> address_space;
};

class LinOs {
 public:
  // `memory_cap` is the OS's root memory capability; `managed` the part of
  // it handed to the process allocator (the rest stays kernel-reserved).
  LinOs(Monitor* monitor, DomainId self, CapId memory_cap, AddrRange managed);

  DomainId domain() const { return self_; }
  CapId memory_cap() const { return memory_cap_; }
  RangeAllocator& allocator() { return allocator_; }
  RoundRobinScheduler& scheduler() { return scheduler_; }

  // Canonical base of every process's user segment (classic commodity-OS
  // address-space layout: same VA, different frames).
  static constexpr uint64_t kUserBase = 0x10000000;

  // --- Process management (pure OS business, no monitor involved) ---
  Result<Pid> CreateProcess(const std::string& name, uint64_t memory_bytes);
  Status KillProcess(Pid pid);
  Result<const OsProcess*> GetProcess(Pid pid) const;
  uint64_t process_count() const;

  // Puts `pid`'s address space on `core` (context switch into user mode);
  // guest-virtual accesses on that core then see the process's world.
  Status RunProcess(CoreId core, Pid pid);
  // Back to kernel mode (paging off).
  void StopUserMode(CoreId core);
  // The pid whose address space is installed on `core` (kInvalid if none).
  Pid RunningOn(CoreId core) const;

  // --- Syscalls (charged, bounds-checked against the process) ---
  // Physical-address variants (kernel-internal copies).
  Status SysWrite(CoreId core, Pid pid, uint64_t addr, std::span<const uint8_t> data);
  Result<std::vector<uint8_t>> SysRead(CoreId core, Pid pid, uint64_t addr, uint64_t size);
  // User-virtual variants: the classic copy_{to,from}_user -- addresses are
  // translated through the PROCESS's page tables, so the process's own
  // address space is the bounds check.
  Status SysWriteUser(CoreId core, Pid pid, uint64_t vaddr, std::span<const uint8_t> data);
  Result<std::vector<uint8_t>> SysReadUser(CoreId core, Pid pid, uint64_t vaddr,
                                           uint64_t size);

  // --- The monopoly problem, made concrete ---
  // Privileged code reading arbitrary process memory: ALWAYS succeeds in a
  // commodity design, because the kernel's mappings cover every process.
  Result<std::vector<uint8_t>> KernelPeek(CoreId core, uint64_t addr, uint64_t size);

  // --- Monitor-backed extensions (what the isolation monitor adds) ---

  // Confines an untrusted driver to a sandbox owning only its code/data
  // window and its device. Returns the sandbox; the kernel keeps the handle.
  Result<Sandbox> LoadDriverSandboxed(CoreId core, const std::string& name,
                                      uint64_t window_bytes, CapId device_cap,
                                      CoreId driver_core, CapId driver_core_cap);

  // Carves an enclave out of an existing process's memory: the
  // "sub-compartments within a process" of §3.5. The process (and kernel!)
  // lose access to the carved range.
  Result<Enclave> SpawnProcessEnclave(CoreId core, Pid pid, const TycheImage& image,
                                      uint64_t enclave_bytes, CoreId enclave_core,
                                      CapId enclave_core_cap);

 private:
  Monitor* monitor_;
  DomainId self_;
  CapId memory_cap_;
  RangeAllocator allocator_;
  RoundRobinScheduler scheduler_;
  std::map<Pid, OsProcess> processes_;
  std::map<CoreId, Pid> running_;
  // Frames for process page tables, carved from the managed pool at boot.
  std::unique_ptr<FrameAllocator> pt_frames_;
  Pid next_pid_ = 1;

 public:
  static constexpr Pid kInvalidPid = 0;
};

}  // namespace tyche

#endif  // SRC_OS_KERNEL_H_
