// Copyright 2026 The Tyche Reproduction Authors.
// Round-robin scheduler for LinOS processes. Exists for two reasons: it
// makes LinOS a believable commodity kernel, and it provides the
// context-switch cost baseline the transition benchmarks (experiment C1)
// compare against.

#ifndef SRC_OS_SCHEDULER_H_
#define SRC_OS_SCHEDULER_H_

#include <cstdint>
#include <deque>

#include "src/hw/cost_model.h"
#include "src/support/status.h"

namespace tyche {

class RoundRobinScheduler {
 public:
  explicit RoundRobinScheduler(CycleAccount* cycles) : cycles_(cycles) {}

  void AddTask(uint32_t pid) { run_queue_.push_back(pid); }

  Status RemoveTask(uint32_t pid) {
    for (auto it = run_queue_.begin(); it != run_queue_.end(); ++it) {
      if (*it == pid) {
        run_queue_.erase(it);
        if (current_ == pid) {
          current_ = kIdle;
        }
        return OkStatus();
      }
    }
    if (current_ == pid) {
      current_ = kIdle;
      return OkStatus();
    }
    return Error(ErrorCode::kNotFound, "pid not scheduled");
  }

  // One scheduling decision: picks the next task, charging the context
  // switch cost if the task changes. Returns the running pid (kIdle if the
  // queue is empty).
  uint32_t Tick() {
    if (run_queue_.empty()) {
      // Nothing else runnable: keep the current task (or stay idle).
      return current_;
    }
    const uint32_t next = run_queue_.front();
    run_queue_.pop_front();
    if (current_ != kIdle) {
      run_queue_.push_back(current_);
    }
    if (next != current_) {
      cycles_->Charge(CostModel::Default().context_switch);
      ++switches_;
    }
    current_ = next;
    return current_;
  }

  uint32_t current() const { return current_; }
  uint64_t switches() const { return switches_; }
  size_t runnable() const { return run_queue_.size() + (current_ == kIdle ? 0 : 1); }

  static constexpr uint32_t kIdle = ~0u;

 private:
  CycleAccount* cycles_;
  std::deque<uint32_t> run_queue_;
  uint32_t current_ = kIdle;
  uint64_t switches_ = 0;
};

}  // namespace tyche

#endif  // SRC_OS_SCHEDULER_H_
