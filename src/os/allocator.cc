// Copyright 2026 The Tyche Reproduction Authors.

#include "src/os/allocator.h"

#include <algorithm>

#include "src/support/faults.h"

namespace tyche {

RangeAllocator::RangeAllocator(AddrRange pool) : pool_(pool) {
  if (!pool.empty()) {
    free_list_.push_back(pool);
  }
}

Result<AddrRange> RangeAllocator::Alloc(uint64_t size, uint64_t alignment) {
  if (size == 0 || !IsPowerOfTwo(alignment)) {
    return Error(ErrorCode::kInvalidArgument, "bad allocation request");
  }
  TYCHE_FAULT_POINT(faults::kRangeAlloc);
  size = AlignUp(size, kPageSize);
  for (size_t i = 0; i < free_list_.size(); ++i) {
    const AddrRange& candidate = free_list_[i];
    const uint64_t aligned_base = AlignUp(candidate.base, alignment);
    if (aligned_base + size > candidate.end() || aligned_base < candidate.base) {
      continue;
    }
    const AddrRange allocated{aligned_base, size};
    // Split the free range into up to two pieces.
    const AddrRange before{candidate.base, aligned_base - candidate.base};
    const AddrRange after{allocated.end(), candidate.end() - allocated.end()};
    free_list_.erase(free_list_.begin() + static_cast<long>(i));
    if (!after.empty()) {
      free_list_.insert(free_list_.begin() + static_cast<long>(i), after);
    }
    if (!before.empty()) {
      free_list_.insert(free_list_.begin() + static_cast<long>(i), before);
    }
    return allocated;
  }
  return Error(ErrorCode::kResourceExhausted, "allocator out of memory");
}

Status RangeAllocator::Free(AddrRange range) {
  if (range.empty() || !pool_.Contains(range)) {
    return Error(ErrorCode::kInvalidArgument, "freeing range outside pool");
  }
  // Find the insertion point; reject overlap with existing free ranges
  // (double free).
  auto it = std::lower_bound(
      free_list_.begin(), free_list_.end(), range,
      [](const AddrRange& a, const AddrRange& b) { return a.base < b.base; });
  if (it != free_list_.end() && range.Overlaps(*it)) {
    return Error(ErrorCode::kFailedPrecondition, "double free");
  }
  if (it != free_list_.begin() && range.Overlaps(*(it - 1))) {
    return Error(ErrorCode::kFailedPrecondition, "double free");
  }
  it = free_list_.insert(it, range);
  // Coalesce with the next range...
  if (it + 1 != free_list_.end() && it->end() == (it + 1)->base) {
    it->size += (it + 1)->size;
    free_list_.erase(it + 1);
  }
  // ... and with the previous one.
  if (it != free_list_.begin() && (it - 1)->end() == it->base) {
    (it - 1)->size += it->size;
    free_list_.erase(it);
  }
  return OkStatus();
}

uint64_t RangeAllocator::free_bytes() const {
  uint64_t total = 0;
  for (const AddrRange& range : free_list_) {
    total += range.size;
  }
  return total;
}

uint64_t RangeAllocator::largest_free() const {
  uint64_t largest = 0;
  for (const AddrRange& range : free_list_) {
    largest = std::max(largest, range.size);
  }
  return largest;
}

}  // namespace tyche
