// Copyright 2026 The Tyche Reproduction Authors.

#include "src/os/testbed.h"

namespace tyche {

Result<Testbed> Testbed::Create(const TestbedOptions& options) {
  Testbed testbed;
  MachineConfig config;
  config.arch = options.arch;
  config.memory_bytes = options.memory_bytes;
  config.num_cores = options.cores;
  testbed.machine_ = std::make_unique<Machine>(config);
  if (options.with_nic) {
    TYCHE_RETURN_IF_ERROR(
        testbed.machine_->AddDevice(std::make_unique<DmaEngine>(kNicBdf, "nic0")));
  }
  if (options.with_gpu) {
    TYCHE_RETURN_IF_ERROR(
        testbed.machine_->AddDevice(std::make_unique<GpuDevice>(kGpuBdf, "gpu0")));
  }

  testbed.firmware_image_ = DemoFirmwareImage();
  testbed.monitor_image_ = DemoMonitorImage();
  BootParams params;
  params.firmware_image = testbed.firmware_image_;
  params.monitor_image = testbed.monitor_image_;
  params.monitor_memory_bytes = options.monitor_memory_bytes;
  TYCHE_ASSIGN_OR_RETURN(BootOutcome outcome, MeasuredBoot(testbed.machine_.get(), params));
  testbed.monitor_ = std::move(outcome.monitor);
  testbed.os_domain_ = outcome.initial_domain;
  testbed.golden_firmware_ = outcome.firmware_measurement;
  testbed.golden_monitor_ = outcome.monitor_measurement;

  const uint64_t os_base = testbed.monitor_->monitor_range().end();
  const uint64_t os_size = options.memory_bytes - os_base;
  TYCHE_ASSIGN_OR_RETURN(const CapId os_mem,
                         FindMemoryCap(*testbed.monitor_, testbed.os_domain_,
                                       AddrRange{os_base, os_size}));
  testbed.os_ = std::make_unique<LinOs>(testbed.monitor_.get(), testbed.os_domain_, os_mem,
                                        AddrRange{os_base + os_size / 2, os_size / 2});
  return testbed;
}

}  // namespace tyche
