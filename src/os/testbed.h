// Copyright 2026 The Tyche Reproduction Authors.
// Testbed: the full system assembled -- simulated machine, measured boot,
// isolation monitor, LinOS as the initial domain. This is the entry point
// benchmarks, examples, and downstream experiments use to get a running
// deployment in one call.

#ifndef SRC_OS_TESTBED_H_
#define SRC_OS_TESTBED_H_

#include <memory>

#include "src/monitor/boot.h"
#include "src/os/kernel.h"
#include "src/tyche/loader.h"

namespace tyche {

struct TestbedOptions {
  IsaArch arch = IsaArch::kX86_64;
  uint64_t memory_bytes = 128ull << 20;
  uint32_t cores = 4;
  bool with_nic = false;  // DmaEngine at 0:3.0
  bool with_gpu = false;  // GpuDevice at 0:4.0
  // Monitor reservation (image + metadata pool for page tables). The pool
  // bounds how many domain contexts can exist concurrently on the VT-x
  // backend -- a deliberate, configurable budget.
  uint64_t monitor_memory_bytes = 4ull << 20;
};

class Testbed {
 public:
  static constexpr PciBdf kNicBdf = PciBdf(0, 3, 0);
  static constexpr PciBdf kGpuBdf = PciBdf(0, 4, 0);

  static Result<Testbed> Create(const TestbedOptions& options);

  Machine& machine() { return *machine_; }
  Monitor& monitor() { return *monitor_; }
  LinOs& os() { return *os_; }
  DomainId os_domain() const { return os_domain_; }
  const Digest& golden_firmware() const { return golden_firmware_; }
  const Digest& golden_monitor() const { return golden_monitor_; }

  // Capability handle discovery for the initial domain.
  Result<CapId> OsMemCap(AddrRange range) const {
    return FindMemoryCap(*monitor_, os_domain_, range);
  }
  Result<CapId> OsCoreCap(CoreId core) const {
    return FindUnitCap(*monitor_, os_domain_, ResourceKind::kCpuCore, core);
  }
  Result<CapId> OsDeviceCap(uint16_t bdf) const {
    return FindUnitCap(*monitor_, os_domain_, ResourceKind::kPciDevice, bdf);
  }

  // Kernel-reserved scratch address (outside the LinOS allocator pool).
  uint64_t Scratch(uint64_t offset) const {
    return monitor_->monitor_range().end() + offset;
  }

 private:
  Testbed() = default;

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<LinOs> os_;
  DomainId os_domain_ = kInvalidDomain;
  Digest golden_firmware_;
  Digest golden_monitor_;
  std::vector<uint8_t> firmware_image_;
  std::vector<uint8_t> monitor_image_;
};

}  // namespace tyche

#endif  // SRC_OS_TESTBED_H_
