// Copyright 2026 The Tyche Reproduction Authors.

#include "src/os/kernel.h"

#include <algorithm>

namespace tyche {

LinOs::LinOs(Monitor* monitor, DomainId self, CapId memory_cap, AddrRange managed)
    : monitor_(monitor),
      self_(self),
      memory_cap_(memory_cap),
      allocator_(managed),
      scheduler_(&monitor->machine()->cycles()) {
  // Reserve a slice of the managed pool for process page tables.
  const uint64_t pool_bytes = std::min<uint64_t>(4ull << 20, managed.size / 8);
  const auto pool = allocator_.Alloc(pool_bytes);
  if (pool.ok()) {
    pt_frames_ = std::make_unique<FrameAllocator>(*pool);
  }
}

Result<Pid> LinOs::CreateProcess(const std::string& name, uint64_t memory_bytes) {
  TYCHE_ASSIGN_OR_RETURN(const AddrRange memory, allocator_.Alloc(memory_bytes));
  const Pid pid = next_pid_++;
  OsProcess process;
  process.pid = pid;
  process.name = name;
  process.memory = memory;
  if (pt_frames_ != nullptr) {
    auto table = NestedPageTable::Create(&monitor_->machine()->memory(), pt_frames_.get(),
                                         &monitor_->machine()->cycles());
    if (!table.ok()) {
      (void)allocator_.Free(memory);
      return table.status();
    }
    process.address_space = std::make_unique<NestedPageTable>(std::move(*table));
    const Status mapped = process.address_space->MapRange(kUserBase, memory.base,
                                                          memory.size, Perms(Perms::kRWX));
    if (!mapped.ok()) {
      (void)process.address_space->Destroy();
      (void)allocator_.Free(memory);
      return mapped;
    }
  }
  processes_[pid] = std::move(process);
  scheduler_.AddTask(pid);
  return pid;
}

Status LinOs::KillProcess(Pid pid) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  // Pull its address space off any core still running it.
  std::vector<CoreId> cores;
  for (const auto& [core, running] : running_) {
    if (running == pid) {
      cores.push_back(core);
    }
  }
  for (const CoreId core : cores) {
    StopUserMode(core);
  }
  if (it->second.address_space != nullptr) {
    (void)it->second.address_space->Destroy();
    it->second.address_space.reset();
  }
  it->second.alive = false;
  (void)scheduler_.RemoveTask(pid);
  return allocator_.Free(it->second.memory);
}

Status LinOs::RunProcess(CoreId core, Pid pid) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  if (it->second.address_space == nullptr) {
    return Error(ErrorCode::kFailedPrecondition, "process has no address space");
  }
  monitor_->machine()->SetCoreGuestPageTable(core, it->second.address_space.get());
  monitor_->machine()->cpu(core).set_mode(PrivilegeMode::kUser);
  running_[core] = pid;
  monitor_->machine()->cycles().Charge(CostModel::Default().context_switch);
  return OkStatus();
}

void LinOs::StopUserMode(CoreId core) {
  monitor_->machine()->SetCoreGuestPageTable(core, nullptr);
  monitor_->machine()->cpu(core).set_mode(PrivilegeMode::kSupervisor);
  running_.erase(core);
}

Pid LinOs::RunningOn(CoreId core) const {
  const auto it = running_.find(core);
  return it == running_.end() ? kInvalidPid : it->second;
}

Result<const OsProcess*> LinOs::GetProcess(Pid pid) const {
  const auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  return &it->second;
}

uint64_t LinOs::process_count() const {
  uint64_t count = 0;
  for (const auto& [pid, process] : processes_) {
    if (process.alive) {
      ++count;
    }
  }
  return count;
}

Status LinOs::SysWrite(CoreId core, Pid pid, uint64_t addr, std::span<const uint8_t> data) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  // Software bounds check: the OS's notion of process isolation.
  if (!it->second.memory.Contains(AddrRange{addr, data.size()})) {
    return Error(ErrorCode::kAccessViolation, "address outside process");
  }
  monitor_->machine()->cycles().Charge(CostModel::Default().syscall_round_trip);
  ++it->second.syscalls;
  return monitor_->machine()->CheckedWrite(core, addr, data);
}

Result<std::vector<uint8_t>> LinOs::SysRead(CoreId core, Pid pid, uint64_t addr,
                                            uint64_t size) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  if (!it->second.memory.Contains(AddrRange{addr, size})) {
    return Error(ErrorCode::kAccessViolation, "address outside process");
  }
  monitor_->machine()->cycles().Charge(CostModel::Default().syscall_round_trip);
  ++it->second.syscalls;
  std::vector<uint8_t> out(size);
  TYCHE_RETURN_IF_ERROR(monitor_->machine()->CheckedRead(core, addr, std::span<uint8_t>(out)));
  return out;
}

Status LinOs::SysWriteUser(CoreId core, Pid pid, uint64_t vaddr,
                           std::span<const uint8_t> data) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive ||
      it->second.address_space == nullptr) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  monitor_->machine()->cycles().Charge(CostModel::Default().syscall_round_trip);
  ++it->second.syscalls;
  size_t offset = 0;
  while (offset < data.size()) {
    const uint64_t va = vaddr + offset;
    const size_t in_page =
        std::min<size_t>(data.size() - offset, kPageSize - (va & (kPageSize - 1)));
    TYCHE_ASSIGN_OR_RETURN(const Translation t,
                           it->second.address_space->Translate(va, AccessType::kWrite));
    TYCHE_RETURN_IF_ERROR(
        monitor_->machine()->CheckedWrite(core, t.host_addr, data.subspan(offset, in_page)));
    offset += in_page;
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> LinOs::SysReadUser(CoreId core, Pid pid, uint64_t vaddr,
                                                uint64_t size) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive ||
      it->second.address_space == nullptr) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  monitor_->machine()->cycles().Charge(CostModel::Default().syscall_round_trip);
  ++it->second.syscalls;
  std::vector<uint8_t> out(size);
  size_t offset = 0;
  while (offset < size) {
    const uint64_t va = vaddr + offset;
    const size_t in_page =
        std::min<size_t>(size - offset, kPageSize - (va & (kPageSize - 1)));
    TYCHE_ASSIGN_OR_RETURN(const Translation t,
                           it->second.address_space->Translate(va, AccessType::kRead));
    TYCHE_RETURN_IF_ERROR(monitor_->machine()->CheckedRead(
        core, t.host_addr, std::span<uint8_t>(out).subspan(offset, in_page)));
    offset += in_page;
  }
  return out;
}

Result<std::vector<uint8_t>> LinOs::KernelPeek(CoreId core, uint64_t addr, uint64_t size) {
  // No bounds check at all: privileged code "allows arbitrary modifications
  // to access control mechanisms" (§2.2). Whether this succeeds depends
  // only on whether the MONITOR still maps the range for domain 0.
  std::vector<uint8_t> out(size);
  TYCHE_RETURN_IF_ERROR(monitor_->machine()->CheckedRead(core, addr, std::span<uint8_t>(out)));
  return out;
}

Result<Sandbox> LinOs::LoadDriverSandboxed(CoreId core, const std::string& name,
                                           uint64_t window_bytes, CapId device_cap,
                                           CoreId driver_core, CapId driver_core_cap) {
  TYCHE_ASSIGN_OR_RETURN(const AddrRange window, allocator_.Alloc(window_bytes));
  SandboxOptions options;
  options.src_cap = kInvalidCap;  // discover: grants split the root capability
  options.regions.push_back(SandboxRegion{window, Perms(Perms::kRWX)});
  options.entry = window.base;
  options.cores = {driver_core};
  options.core_caps = {driver_core_cap};
  options.device_caps = {device_cap};
  auto sandbox = Sandbox::Create(monitor_, core, name, options);
  if (!sandbox.ok()) {
    (void)allocator_.Free(window);
  }
  return sandbox;
}

Result<Enclave> LinOs::SpawnProcessEnclave(CoreId core, Pid pid, const TycheImage& image,
                                           uint64_t enclave_bytes, CoreId enclave_core,
                                           CapId enclave_core_cap) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return Error(ErrorCode::kNotFound, "no such process");
  }
  if (enclave_bytes > it->second.memory.size) {
    return Error(ErrorCode::kInvalidArgument, "enclave larger than process");
  }
  // Carve the enclave from the TOP of the process's memory. The grant
  // removes the carved range from domain 0 -- after this, neither the
  // process nor the kernel itself can touch it.
  LoadOptions options;
  options.src_cap = kInvalidCap;  // discover: grants split the root capability
  options.base = it->second.memory.end() - AlignUp(enclave_bytes, kPageSize);
  options.size = AlignUp(enclave_bytes, kPageSize);
  options.cores = {enclave_core};
  options.core_caps = {enclave_core_cap};
  options.seal = true;
  options.policy = RevocationPolicy(RevocationPolicy::kObfuscate);
  TYCHE_ASSIGN_OR_RETURN(Enclave enclave,
                         Enclave::Create(monitor_, core, image, options));
  // The OS shrinks its software bookkeeping accordingly, and removes the
  // carved range from the process's address space -- the enclave's frames
  // vanish from the process's world at BOTH translation layers (even if
  // the guest mapping were left stale, the monitor's layer would fault it).
  if (it->second.address_space != nullptr) {
    const uint64_t carved_va = kUserBase + (options.base - it->second.memory.base);
    (void)it->second.address_space->UnmapRange(carved_va, options.size);
  }
  it->second.memory.size -= options.size;
  return enclave;
}

}  // namespace tyche
