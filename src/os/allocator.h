// Copyright 2026 The Tyche Reproduction Authors.
// First-fit range allocator used by the mini OS for process memory and by
// examples for carving domain regions. Operates on abstract address ranges;
// the OS points it at the physical memory it owns.

#ifndef SRC_OS_ALLOCATOR_H_
#define SRC_OS_ALLOCATOR_H_

#include <vector>

#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

class RangeAllocator {
 public:
  explicit RangeAllocator(AddrRange pool);

  // Allocates `size` bytes aligned to `alignment` (power of two >= page).
  Result<AddrRange> Alloc(uint64_t size, uint64_t alignment = kPageSize);
  // Returns a previously allocated range. Coalesces adjacent free ranges.
  Status Free(AddrRange range);

  uint64_t free_bytes() const;
  uint64_t largest_free() const;
  size_t fragment_count() const { return free_list_.size(); }
  const AddrRange& pool() const { return pool_; }

 private:
  AddrRange pool_;
  std::vector<AddrRange> free_list_;  // sorted by base, pairwise disjoint
};

}  // namespace tyche

#endif  // SRC_OS_ALLOCATOR_H_
