// Copyright 2026 The Tyche Reproduction Authors.

#include "src/capability/graph_export.h"

#include <cstdio>
#include <sstream>

namespace tyche {

namespace {

const char* StateName(CapState state) {
  switch (state) {
    case CapState::kActive:
      return "active";
    case CapState::kRevoked:
      return "revoked";
    case CapState::kDonated:
      return "donated";
  }
  return "?";
}

const char* OriginName(CapOrigin origin) {
  switch (origin) {
    case CapOrigin::kMint:
      return "mint";
    case CapOrigin::kShare:
      return "share";
    case CapOrigin::kGrant:
      return "grant";
    case CapOrigin::kRemainder:
      return "remainder";
    case CapOrigin::kRestore:
      return "restore";
  }
  return "?";
}

uint32_t RefCountOf(const CapabilityEngine& engine, const Capability& cap) {
  return cap.kind == ResourceKind::kMemory ? engine.MemoryRefCount(cap.range)
                                           : engine.UnitRefCount(cap.kind, cap.unit);
}

std::string ResourceLabel(const Capability& cap) {
  std::ostringstream out;
  if (cap.kind == ResourceKind::kMemory) {
    out << "[0x" << std::hex << cap.range.base << ",0x" << cap.range.end() << std::dec
        << ") " << cap.perms.ToString();
  } else {
    out << ResourceKindName(cap.kind) << " " << cap.unit;
  }
  return out.str();
}

}  // namespace

std::string EscapeGraphLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";  // literal backslash-n: a DOT label line break
        break;
      case '\r':
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJsonString(const std::string& text) {
  std::ostringstream out;
  for (const char c : text) {
    switch (c) {
      case '\\':
        out << "\\\\";
        break;
      case '"':
        out << "\\\"";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

std::string ExportCapabilityGraphDot(const CapabilityEngine& engine,
                                     const GraphExportOptions& options) {
  std::ostringstream out;
  out << "digraph capabilities {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=box, fontsize=10];\n";
  engine.ForEach([&](const Capability& cap) {
    if (!options.include_inactive && !cap.active()) {
      return;
    }
    out << "  cap" << cap.id << " [label=\"cap#" << cap.id << " d" << cap.owner << "\\n"
        << EscapeGraphLabel(ResourceLabel(cap)) << "\\n" << OriginName(cap.origin)
        << " refcount=" << RefCountOf(engine, cap) << "\"";
    switch (cap.state) {
      case CapState::kActive:
        break;
      case CapState::kDonated:
        out << ", style=dashed";
        break;
      case CapState::kRevoked:
        out << ", style=filled, fillcolor=gray80, fontcolor=gray40";
        break;
    }
    out << "];\n";
  });
  engine.ForEach([&](const Capability& cap) {
    if (!options.include_inactive && !cap.active()) {
      return;
    }
    for (const CapId child : cap.children) {
      const auto child_cap = engine.Get(child);
      if (!child_cap.ok()) {
        continue;
      }
      if (!options.include_inactive && !(*child_cap)->active()) {
        continue;
      }
      out << "  cap" << cap.id << " -> cap" << child << ";\n";
    }
  });
  out << "}\n";
  return out.str();
}

std::string ExportCapabilityGraphJson(const CapabilityEngine& engine,
                                      const GraphExportOptions& options) {
  std::ostringstream out;
  out << "{\"nodes\":[";
  bool first = true;
  engine.ForEach([&](const Capability& cap) {
    if (!options.include_inactive && !cap.active()) {
      return;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"id\":" << cap.id << ",\"owner\":" << cap.owner << ",\"kind\":\""
        << ResourceKindName(cap.kind) << "\",\"state\":\"" << StateName(cap.state)
        << "\",\"origin\":\"" << OriginName(cap.origin)
        << "\",\"ref_count\":" << RefCountOf(engine, cap);
    if (cap.kind == ResourceKind::kMemory) {
      out << ",\"base\":" << cap.range.base << ",\"size\":" << cap.range.size
          << ",\"perms\":\"" << EscapeJsonString(cap.perms.ToString()) << "\"";
    } else {
      out << ",\"unit\":" << cap.unit;
    }
    out << "}";
  });
  out << "],\"edges\":[";
  first = true;
  engine.ForEach([&](const Capability& cap) {
    if (!options.include_inactive && !cap.active()) {
      return;
    }
    for (const CapId child : cap.children) {
      const auto child_cap = engine.Get(child);
      if (!child_cap.ok()) {
        continue;
      }
      if (!options.include_inactive && !(*child_cap)->active()) {
        continue;
      }
      if (!first) {
        out << ",";
      }
      first = false;
      out << "{\"parent\":" << cap.id << ",\"child\":" << child << "}";
    }
  });
  out << "]}";
  return out.str();
}

}  // namespace tyche
