// Copyright 2026 The Tyche Reproduction Authors.
// The platform-independent capability engine (§4.1).
//
// Grant, share, and revoke operations "modify a tree structure that
// represents a capability's lineage, maintains per-resource reference
// counts, and facilitates cascading revocations, even in the presence of
// circular sharing". This engine is pure bookkeeping: it never touches
// hardware. Every mutating operation returns the *effects* the executive
// (the monitor's backend) must apply -- mappings to install or remove and
// cleanup obligations (zero / cache flush) to honour.
//
// Semantics implemented here, chosen to match the paper:
//  - Share(src, dst, sub): duplicates access. The source stays active; a new
//    child capability owned by dst is created. Reference counts of the
//    shared bytes go up if dst had no prior access.
//  - Grant(src, dst, sub): moves exclusive control. The source capability is
//    deactivated ("donated"); children are created for the granted piece
//    (owned by dst) and for every remainder piece (owned by the grantor).
//  - Revoke(cap): deactivates cap and its entire active subtree (cascading).
//    Revoking a granted capability creates a "restore" capability returning
//    ownership to the grantor. A visited set makes the cascade terminate
//    even when domains share in cycles (A→B→A→...).
//  - Sealed domains can neither receive new capabilities nor share/grant
//    onward -- except to domains they created themselves (their nested
//    children), which is what lets sealed enclaves spawn nested enclaves
//    (§4.2) without invalidating their attested sharing state.

#ifndef SRC_CAPABILITY_ENGINE_H_
#define SRC_CAPABILITY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/capability/capability.h"
#include "src/capability/types.h"
#include "src/support/status.h"

namespace tyche {

// One entry of the effect list returned by mutating operations.
struct CapEffect {
  enum class Kind : uint8_t {
    kMapMemory,      // domain gained access to range with perms
    kUnmapMemory,    // domain lost access to range (recompute residual perms!)
    kZeroMemory,     // revocation policy: zero the range
    kFlushCache,     // revocation policy: flush caches for the range
    kAttachUnit,     // domain gained a core / device / domain handle
    kDetachUnit,     // domain lost a core / device / domain handle
  };

  Kind kind;
  CapDomainId domain = 0;
  ResourceKind resource = ResourceKind::kMemory;
  AddrRange range;
  uint64_t unit = 0;
  Perms perms;
};

struct CapEffects {
  std::vector<CapEffect> effects;

  void Add(CapEffect effect) { effects.push_back(effect); }
  void Append(const CapEffects& other) {
    effects.insert(effects.end(), other.effects.begin(), other.effects.end());
  }
};

// Result of a Grant: the capability now owned by the recipient plus the
// remainder capabilities returned to the grantor.
struct GrantOutcome {
  CapId granted = kInvalidCap;
  std::vector<CapId> remainders;
  CapEffects effects;
};

struct RevokeOutcome {
  // Number of capabilities deactivated by the cascade.
  uint64_t revoked_count = 0;
  // The deactivated capabilities in cascade (post-order) sequence. The audit
  // journal emits one cascade record per entry; replay cross-checks them.
  std::vector<CapId> revoked_caps;
  // Capability restoring ownership to the grantor (grants only).
  CapId restored = kInvalidCap;
  CapEffects effects;
};

// A maximal memory interval over which the set of domains with active access
// is constant. The sequence of these reconstructs the paper's Figure 4.
struct RegionView {
  AddrRange range;
  std::vector<CapDomainId> domains;  // sorted, distinct
  uint32_t ref_count() const { return static_cast<uint32_t>(domains.size()); }
};

// A value-type copy of the engine's complete state — every lineage node
// (active or not), the domain table, and the id allocator. Capture/Restore
// round-trips through this for snapshots and recovery.
struct EngineImage {
  struct DomainEntry {
    CapDomainId id = 0;
    CapDomainId creator = 0;
    bool sealed = false;
  };
  std::vector<Capability> caps;     // in id order
  std::vector<DomainEntry> domains; // in id order
  CapId next_id = 1;
};

// Thread-safety contract (DESIGN.md §10): every public method takes the
// engine's internal reader-writer lock — shared for queries, exclusive for
// mutations — so the engine is individually safe under concurrent dispatch.
// Pointer-returning queries (Get, DomainCaps) hand out pointers into the
// lineage map; std::map node stability keeps them alive across OTHER
// insertions, but they are only meaningful until the next mutation. The
// monitor's dispatch-level lock provides that ordering: readers holding such
// pointers exclude mutators for the duration of their operation.
class CapabilityEngine {
 public:
  CapabilityEngine() = default;

  // Moves the STATE, not the lock (mutexes are not movable). Both engines
  // must be externally quiesced — used by recovery to install a staged
  // engine, which runs strictly single-threaded.
  CapabilityEngine(CapabilityEngine&& other) noexcept;
  CapabilityEngine& operator=(CapabilityEngine&& other) noexcept;

  // --- Domain lifecycle hooks (driven by the monitor) ---

  // Registers a domain and who created it (kInvalidDomainId for the root).
  static constexpr CapDomainId kNoCreator = ~0u;
  void RegisterDomain(CapDomainId domain, CapDomainId creator);
  void SealDomain(CapDomainId domain);
  bool IsSealed(CapDomainId domain) const;
  bool IsRegistered(CapDomainId domain) const;
  // Removes a dead domain: revokes every active capability it owns, then
  // unregisters it. All-or-unregister: if any per-root revoke fails, the
  // error is propagated, the domain stays REGISTERED, and the caps already
  // revoked stay revoked (revocation never resurrects). `partial`, when
  // non-null, receives one (root cap, outcome) pair per revoke that DID
  // commit before the failure, in order, so the caller can journal them and
  // retry the purge over whatever remains.
  Result<RevokeOutcome> PurgeDomain(
      CapDomainId domain,
      std::vector<std::pair<CapId, RevokeOutcome>>* partial = nullptr);

  // --- Minting (boot / monitor only; not reachable from the domain API) ---

  Result<CapId> MintMemory(CapDomainId owner, AddrRange range, Perms perms, CapRights rights);
  Result<CapId> MintUnit(CapDomainId owner, ResourceKind kind, uint64_t unit,
                         CapRights rights);

  // --- The isolation API (§3.2) ---

  // Shares `sub` of memory capability `src_cap` with `dst`. `perms` must be
  // a subset of the source permissions, `rights` a subset of source rights.
  Result<CapId> ShareMemory(CapDomainId requester, CapId src_cap, CapDomainId dst,
                            AddrRange sub, Perms perms, CapRights rights,
                            RevocationPolicy policy, CapEffects* effects);

  // Grants (moves) `sub` of `src_cap` to `dst` exclusively.
  Result<GrantOutcome> GrantMemory(CapDomainId requester, CapId src_cap, CapDomainId dst,
                                   AddrRange sub, Perms perms, CapRights rights,
                                   RevocationPolicy policy);

  // Unit resources (cores, devices, domain handles) are shared / granted
  // whole.
  Result<CapId> ShareUnit(CapDomainId requester, CapId src_cap, CapDomainId dst,
                          CapRights rights, RevocationPolicy policy, CapEffects* effects);
  Result<GrantOutcome> GrantUnit(CapDomainId requester, CapId src_cap, CapDomainId dst,
                                 CapRights rights, RevocationPolicy policy);

  // Revokes `cap` (and its subtree). The requester must own the parent of
  // `cap` with kRevoke rights, or own `cap` itself (dropping one's own
  // access is always allowed).
  Result<RevokeOutcome> Revoke(CapDomainId requester, CapId cap);

  // --- Queries (attestation + enforcement support) ---

  Result<const Capability*> Get(CapId cap) const;

  // All active capabilities owned by a domain.
  std::vector<const Capability*> DomainCaps(CapDomainId domain) const;

  // Effective memory permissions of a domain at `addr` (union over active
  // caps). Used by backends to recompute residual access after revocation.
  Perms EffectivePerms(CapDomainId domain, uint64_t addr) const;

  // Does the domain hold an active unit capability?
  bool HasUnit(CapDomainId domain, ResourceKind kind, uint64_t unit) const;

  // Reference count: number of distinct domains with active access
  // overlapping `range` (memory) / holding `unit`.
  uint32_t MemoryRefCount(AddrRange range) const;
  uint32_t UnitRefCount(ResourceKind kind, uint64_t unit) const;

  // True iff `domain` is the only domain with access to every byte of range.
  bool ExclusivelyOwned(CapDomainId domain, AddrRange range) const;

  // The domain's effective memory map: maximal intervals with constant
  // non-empty effective permissions, sorted by base. This is what a backend
  // must make the hardware enforce.
  struct MappedRegion {
    AddrRange range;
    Perms perms;
    bool operator==(const MappedRegion&) const = default;
  };
  std::vector<MappedRegion> DomainMemoryMap(CapDomainId domain) const;

  // Figure 4: the physical memory view as maximal constant-refcount regions.
  // Only ranges below `limit` are reported (0 = no limit).
  std::vector<RegionView> MemoryView(uint64_t limit = 0) const;

  // Lineage inspection (for audits and tests).
  uint64_t total_caps() const;
  uint64_t active_caps() const;
  std::string DumpTree() const;

  // Cross-checks the per-owner index (owned_) against the lineage map: every
  // indexed id must exist with the matching owner, every cap must be indexed
  // under its owner, and per-owner counts must agree. O(caps) under a shared
  // lock; run by the invariant watchdog to catch silent index desync that no
  // single query would notice (a missing entry just makes a cap invisible to
  // owner-filtered queries).
  Status CheckOwnedIndex() const;

  // Walks every active capability (hardware-consistency validator support).
  void ForEachActive(const std::function<void(const Capability&)>& fn) const;

  // Walks EVERY lineage node, active or not, in id order. Revoked and
  // donated nodes are history a verifier may want to see (graph export).
  void ForEach(const std::function<void(const Capability&)>& fn) const;

  // --- Snapshot / recovery support ---

  // A complete value copy of the engine state.
  EngineImage Capture() const;
  // Replaces the engine state with `image`. Rejects internally inconsistent
  // images (id mismatches, parents pointing at missing nodes, caps owned by
  // unregistered domains) so a corrupted snapshot cannot half-install.
  Status Restore(const EngineImage& image);

 private:
  // *Locked variants run with mu_ already held; public methods that other
  // engine methods call internally split into a lock-taking wrapper and a
  // Locked body (std::shared_mutex is not recursive).
  bool IsSealedLocked(CapDomainId domain) const;
  bool IsRegisteredLocked(CapDomainId domain) const;
  Result<const Capability*> GetLocked(CapId cap) const;
  Result<RevokeOutcome> RevokeLocked(CapDomainId requester, CapId cap);
  std::vector<RegionView> MemoryViewLocked(uint64_t limit) const;

  Capability& NewCap(CapDomainId owner, ResourceKind kind);
  Result<Capability*> GetMutable(CapId cap);

  // Checks the sealing rules for moving resources from src_owner to dst.
  Status CheckSealingRules(CapDomainId src_owner, CapDomainId dst) const;

  // Cascade: deactivates the subtree rooted at `cap` (inclusive), appending
  // effects and the deactivated ids. Returns number of caps deactivated.
  uint64_t RevokeSubtree(CapId cap, std::set<CapId>* visited, CapEffects* effects,
                         std::vector<CapId>* revoked_ids);

  // Emits the unmap/detach + cleanup effects for one deactivated cap.
  void EmitRevokeEffects(const Capability& cap, CapEffects* effects);

  // Shared for queries, exclusive for mutations. Leaf lock: the engine never
  // calls out of itself while holding it.
  mutable std::shared_mutex mu_;

  std::map<CapId, Capability> caps_;
  CapId next_id_ = 1;

  // Per-owner index: every cap id EVER owned by a domain, in mint order.
  // Ownership is immutable (grants and restores mint NEW caps), so entries
  // are only appended by NewCap, rebuilt by Restore, and dropped when a purge
  // unregisters the domain. Readers filter on active(); this turns the
  // owner-filtered queries (DomainCaps, EffectivePerms, DomainMemoryMap, the
  // purge collection pass) from whole-lineage scans into direct lookups. Not
  // part of EngineImage: it is derived state.
  std::map<CapDomainId, std::vector<CapId>> owned_;

  struct DomainInfo {
    CapDomainId creator = kNoCreator;
    bool sealed = false;
  };
  std::map<CapDomainId, DomainInfo> domains_;
};

}  // namespace tyche

#endif  // SRC_CAPABILITY_ENGINE_H_
