// Copyright 2026 The Tyche Reproduction Authors.
// One node of the capability lineage tree.

#ifndef SRC_CAPABILITY_CAPABILITY_H_
#define SRC_CAPABILITY_CAPABILITY_H_

#include <string>
#include <vector>

#include "src/capability/types.h"

namespace tyche {

// Why a node exists in the lineage tree.
enum class CapOrigin : uint8_t {
  kMint,       // created at boot by the monitor
  kShare,      // duplicated from parent (parent stays active)
  kGrant,      // moved from parent (parent deactivated)
  kRemainder,  // leftover piece returned to the grantor after a partial grant
  kRestore,    // ownership returned to the grantor after revoking a grant
};

// The current life-cycle state. Lineage nodes are never deleted -- a revoked
// capability stays in the tree as history (and as the anchor for audit) but
// confers no access.
enum class CapState : uint8_t {
  kActive,
  kRevoked,   // explicitly revoked; subtree revoked with it
  kDonated,   // was the source of a Grant; superseded by its children
};

struct Capability {
  CapId id = kInvalidCap;
  CapDomainId owner = 0;
  ResourceKind kind = ResourceKind::kMemory;

  // Resource payload. For kMemory, `range` is the physical range; for the
  // other kinds, `unit` identifies the core / device (BDF) / domain.
  AddrRange range;
  uint64_t unit = 0;

  Perms perms;                  // memory access permissions (kMemory only)
  CapRights rights;             // operational rights
  RevocationPolicy revocation;  // cleanup to run when this cap is revoked

  CapState state = CapState::kActive;
  CapOrigin origin = CapOrigin::kMint;

  CapId parent = kInvalidCap;
  std::vector<CapId> children;

  bool active() const { return state == CapState::kActive; }

  std::string ToString() const;
};

}  // namespace tyche

#endif  // SRC_CAPABILITY_CAPABILITY_H_
