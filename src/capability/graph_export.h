// Copyright 2026 The Tyche Reproduction Authors.
// Capability-graph export: the artifact the paper's judiciary branch would
// attest. Walks the engine's lineage tree and emits a snapshot -- every
// node with its owner, resource, state, and per-resource reference count
// (distinct domains with active access), every parent->child edge -- as
// GraphViz DOT or JSON. A verifier diffing two snapshots sees exactly which
// sharing relationships appeared, moved, or were revoked.

#ifndef SRC_CAPABILITY_GRAPH_EXPORT_H_
#define SRC_CAPABILITY_GRAPH_EXPORT_H_

#include <string>

#include "src/capability/engine.h"

namespace tyche {

struct GraphExportOptions {
  // Include revoked / donated lineage nodes (history), not just live access.
  bool include_inactive = true;
};

// Escapes a string for use inside a double-quoted DOT label: backslashes,
// quotes, and newlines. DOT treats `\n`/`\l`/`\r` in labels as line breaks,
// so raw content must not inject them.
std::string EscapeGraphLabel(const std::string& text);

// Escapes a string for use inside a JSON string literal (quotes, backslash,
// control characters as \uXXXX).
std::string EscapeJsonString(const std::string& text);

// GraphViz DOT. Active nodes are solid, donated nodes dashed, revoked nodes
// greyed out; edge direction is parent -> child (the delegation direction).
std::string ExportCapabilityGraphDot(const CapabilityEngine& engine,
                                     const GraphExportOptions& options = {});

// JSON object {"nodes":[...],"edges":[...]} with the same information plus
// machine-readable ranges and refcounts.
std::string ExportCapabilityGraphJson(const CapabilityEngine& engine,
                                      const GraphExportOptions& options = {});

}  // namespace tyche

#endif  // SRC_CAPABILITY_GRAPH_EXPORT_H_
