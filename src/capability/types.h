// Copyright 2026 The Tyche Reproduction Authors.
// Core vocabulary of the platform-independent capability model (§4.1).
//
// Resources are physical names -- memory ranges, CPU cores, PCI devices, and
// domain handles -- never virtual aliases, which is what lets the monitor
// "reason about sharing and exclusive ownership without having to consider
// aliasing" (§3.2).

#ifndef SRC_CAPABILITY_TYPES_H_
#define SRC_CAPABILITY_TYPES_H_

#include <cstdint>
#include <string>

#include "src/hw/access.h"
#include "src/support/align.h"

namespace tyche {

using CapId = uint64_t;
using CapDomainId = uint32_t;  // matches hw DomainId

inline constexpr CapId kInvalidCap = 0;

enum class ResourceKind : uint8_t {
  kMemory = 0,
  kCpuCore = 1,
  kPciDevice = 2,
  kDomain = 3,
};

inline const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kCpuCore:
      return "cpu-core";
    case ResourceKind::kPciDevice:
      return "pci-device";
    case ResourceKind::kDomain:
      return "domain";
  }
  return "?";
}

// Operational rights carried by a capability, on top of the resource
// permissions (Perms for memory). A capability without kShare cannot be the
// source of a Share operation, etc. kManage on a domain handle allows
// sealing and transitions.
struct CapRights {
  static constexpr uint8_t kNone = 0;
  static constexpr uint8_t kShare = 1 << 0;
  static constexpr uint8_t kGrant = 1 << 1;
  static constexpr uint8_t kRevoke = 1 << 2;
  static constexpr uint8_t kManage = 1 << 3;
  static constexpr uint8_t kAll = kShare | kGrant | kRevoke | kManage;

  uint8_t mask = kNone;

  constexpr CapRights() = default;
  constexpr explicit CapRights(uint8_t m) : mask(m) {}

  constexpr bool CanShare() const { return (mask & kShare) != 0; }
  constexpr bool CanGrant() const { return (mask & kGrant) != 0; }
  constexpr bool CanRevoke() const { return (mask & kRevoke) != 0; }
  constexpr bool CanManage() const { return (mask & kManage) != 0; }
  constexpr bool Covers(CapRights other) const { return (other.mask & ~mask) == 0; }

  bool operator==(const CapRights&) const = default;
};

// Cleanup guaranteed to run when a capability is revoked (§3.2: "a
// revocation policy specifies a clean-up operation, e.g., zeroing-out memory
// or flushing CPU cache, that is guaranteed to execute upon revocation").
struct RevocationPolicy {
  static constexpr uint8_t kNone = 0;
  static constexpr uint8_t kZeroMemory = 1 << 0;
  static constexpr uint8_t kFlushCache = 1 << 1;
  static constexpr uint8_t kObfuscate = kZeroMemory | kFlushCache;

  uint8_t mask = kNone;

  constexpr RevocationPolicy() = default;
  constexpr explicit RevocationPolicy(uint8_t m) : mask(m) {}

  constexpr bool ZeroMemory() const { return (mask & kZeroMemory) != 0; }
  constexpr bool FlushCache() const { return (mask & kFlushCache) != 0; }
  // An "obfuscating" policy (§3.4) wipes both memory and microarchitectural
  // state, giving integrity + confidentiality for exclusive resources.
  constexpr bool Obfuscating() const { return (mask & kObfuscate) == kObfuscate; }

  bool operator==(const RevocationPolicy&) const = default;
};

}  // namespace tyche

#endif  // SRC_CAPABILITY_TYPES_H_
