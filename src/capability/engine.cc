// Copyright 2026 The Tyche Reproduction Authors.

#include "src/capability/engine.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <sstream>

#include "src/support/faults.h"
#include "src/support/log.h"
#include "src/support/profiler.h"

namespace tyche {

namespace {

// Splits `whole` minus `sub` into at most two remainder pieces.
std::vector<AddrRange> RemainderPieces(const AddrRange& whole, const AddrRange& sub) {
  std::vector<AddrRange> pieces;
  if (sub.base > whole.base) {
    pieces.push_back(AddrRange{whole.base, sub.base - whole.base});
  }
  if (sub.end() < whole.end()) {
    pieces.push_back(AddrRange{sub.end(), whole.end() - sub.end()});
  }
  return pieces;
}

}  // namespace

std::string Capability::ToString() const {
  std::ostringstream out;
  out << "cap#" << id << " owner=" << owner << " " << ResourceKindName(kind);
  if (kind == ResourceKind::kMemory) {
    out << " [0x" << std::hex << range.base << ",0x" << range.end() << std::dec << ") "
        << perms.ToString();
  } else {
    out << " unit=" << unit;
  }
  switch (state) {
    case CapState::kActive:
      out << " active";
      break;
    case CapState::kRevoked:
      out << " revoked";
      break;
    case CapState::kDonated:
      out << " donated";
      break;
  }
  return out.str();
}

CapabilityEngine::CapabilityEngine(CapabilityEngine&& other) noexcept
    : caps_(std::move(other.caps_)),
      next_id_(other.next_id_),
      owned_(std::move(other.owned_)),
      domains_(std::move(other.domains_)) {}

CapabilityEngine& CapabilityEngine::operator=(CapabilityEngine&& other) noexcept {
  if (this != &other) {
    caps_ = std::move(other.caps_);
    next_id_ = other.next_id_;
    owned_ = std::move(other.owned_);
    domains_ = std::move(other.domains_);
  }
  return *this;
}

void CapabilityEngine::RegisterDomain(CapDomainId domain, CapDomainId creator) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  domains_[domain] = DomainInfo{creator, /*sealed=*/false};
}

void CapabilityEngine::SealDomain(CapDomainId domain) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  const auto it = domains_.find(domain);
  if (it != domains_.end()) {
    it->second.sealed = true;
  }
}

bool CapabilityEngine::IsSealed(CapDomainId domain) const {
  std::shared_lock lock(mu_);
  return IsSealedLocked(domain);
}

bool CapabilityEngine::IsSealedLocked(CapDomainId domain) const {
  const auto it = domains_.find(domain);
  return it != domains_.end() && it->second.sealed;
}

bool CapabilityEngine::IsRegistered(CapDomainId domain) const {
  std::shared_lock lock(mu_);
  return IsRegisteredLocked(domain);
}

bool CapabilityEngine::IsRegisteredLocked(CapDomainId domain) const {
  return domains_.contains(domain);
}

Capability& CapabilityEngine::NewCap(CapDomainId owner, ResourceKind kind) {
  const CapId id = next_id_++;
  Capability& cap = caps_[id];
  cap.id = id;
  cap.owner = owner;
  cap.kind = kind;
  owned_[owner].push_back(id);
  // Silent-corruption injection: drop the index entry the cap just earned.
  // The operation still succeeds -- exactly the failure mode (derived state
  // drifting from the lineage map) the invariant watchdog exists to catch.
  if (FaultInjector::active()) [[unlikely]] {
    if (!FaultInjector::Instance().Check(faults::kEngineOwnedDesync).ok()) {
      owned_[owner].pop_back();
    }
  }
  return cap;
}

Result<Capability*> CapabilityEngine::GetMutable(CapId cap) {
  const auto it = caps_.find(cap);
  if (it == caps_.end()) {
    return Error(ErrorCode::kNotFound, "no such capability");
  }
  return &it->second;
}

Result<const Capability*> CapabilityEngine::Get(CapId cap) const {
  std::shared_lock lock(mu_);
  return GetLocked(cap);
}

Result<const Capability*> CapabilityEngine::GetLocked(CapId cap) const {
  const auto it = caps_.find(cap);
  if (it == caps_.end()) {
    return Error(ErrorCode::kNotFound, "no such capability");
  }
  return &it->second;
}

Result<CapId> CapabilityEngine::MintMemory(CapDomainId owner, AddrRange range, Perms perms,
                                           CapRights rights) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  if (!IsRegisteredLocked(owner)) {
    return Error(ErrorCode::kNotFound, "owner domain not registered");
  }
  if (range.empty() || !IsPageAligned(range.base) || !IsPageAligned(range.size)) {
    return Error(ErrorCode::kInvalidArgument, "memory capability must be page-aligned");
  }
  Capability& cap = NewCap(owner, ResourceKind::kMemory);
  cap.range = range;
  cap.perms = perms;
  cap.rights = rights;
  cap.origin = CapOrigin::kMint;
  return cap.id;
}

Result<CapId> CapabilityEngine::MintUnit(CapDomainId owner, ResourceKind kind, uint64_t unit,
                                         CapRights rights) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  if (!IsRegisteredLocked(owner)) {
    return Error(ErrorCode::kNotFound, "owner domain not registered");
  }
  if (kind == ResourceKind::kMemory) {
    return Error(ErrorCode::kInvalidArgument, "use MintMemory for memory");
  }
  Capability& cap = NewCap(owner, kind);
  cap.unit = unit;
  cap.rights = rights;
  cap.origin = CapOrigin::kMint;
  return cap.id;
}

Status CapabilityEngine::CheckSealingRules(CapDomainId src_owner, CapDomainId dst) const {
  const auto dst_it = domains_.find(dst);
  if (dst_it == domains_.end()) {
    return Error(ErrorCode::kNotFound, "destination domain not registered");
  }
  // A sealed domain's resource set cannot be extended (§3.1) -- not even by
  // its creator, or the attested configuration would be mutable.
  if (dst_it->second.sealed) {
    TYCHE_LOG(kWarn) << "sealing rules deny transfer: domain " << dst
                     << " is sealed (requested by domain " << src_owner << ")";
    return Error(ErrorCode::kDomainSealed, "cannot extend a sealed domain's resources");
  }
  // A sealed domain cannot share onward -- except into domains it created
  // itself (nested enclaves, §4.2).
  if (IsSealedLocked(src_owner) && dst_it->second.creator != src_owner) {
    TYCHE_LOG(kWarn) << "sealing rules deny transfer: sealed domain " << src_owner
                     << " may only delegate to its children, not domain " << dst;
    return Error(ErrorCode::kDomainSealed, "sealed domain may only delegate to its children");
  }
  return OkStatus();
}

Result<CapId> CapabilityEngine::ShareMemory(CapDomainId requester, CapId src_cap,
                                            CapDomainId dst, AddrRange sub, Perms perms,
                                            CapRights rights, RevocationPolicy policy,
                                            CapEffects* effects) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  TYCHE_ASSIGN_OR_RETURN(Capability * src, GetMutable(src_cap));
  if (src->owner != requester) {
    return Error(ErrorCode::kCapabilityNotOwned, "share: requester does not own capability");
  }
  if (!src->active()) {
    return Error(ErrorCode::kCapabilityRevoked, "share: source capability inactive");
  }
  if (src->kind != ResourceKind::kMemory) {
    return Error(ErrorCode::kInvalidArgument, "share: not a memory capability");
  }
  if (!src->rights.CanShare()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "share: missing share right");
  }
  if (sub.empty() || !src->range.Contains(sub)) {
    return Error(ErrorCode::kOutOfRange, "share: sub-range outside capability");
  }
  if (!IsPageAligned(sub.base) || !IsPageAligned(sub.size)) {
    return Error(ErrorCode::kInvalidArgument, "share: sub-range must be page-aligned");
  }
  if (!src->perms.Covers(perms) || perms.empty()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "share: permissions exceed source");
  }
  if (!src->rights.Covers(rights)) {
    return Error(ErrorCode::kCapabilityRightsViolation, "share: rights exceed source");
  }
  TYCHE_RETURN_IF_ERROR(CheckSealingRules(requester, dst));

  Capability& child = NewCap(dst, ResourceKind::kMemory);
  child.range = sub;
  child.perms = perms;
  child.rights = rights;
  child.revocation = policy;
  child.origin = CapOrigin::kShare;
  child.parent = src->id;
  // NewCap may rehash caps_; re-fetch src.
  caps_[src_cap].children.push_back(child.id);

  if (effects != nullptr) {
    effects->Add(CapEffect{CapEffect::Kind::kMapMemory, dst, ResourceKind::kMemory, sub, 0,
                           perms});
  }
  return child.id;
}

Result<GrantOutcome> CapabilityEngine::GrantMemory(CapDomainId requester, CapId src_cap,
                                                   CapDomainId dst, AddrRange sub,
                                                   Perms perms, CapRights rights,
                                                   RevocationPolicy policy) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  TYCHE_ASSIGN_OR_RETURN(Capability * src_ptr, GetMutable(src_cap));
  if (src_ptr->owner != requester) {
    return Error(ErrorCode::kCapabilityNotOwned, "grant: requester does not own capability");
  }
  if (!src_ptr->active()) {
    return Error(ErrorCode::kCapabilityRevoked, "grant: source capability inactive");
  }
  if (src_ptr->kind != ResourceKind::kMemory) {
    return Error(ErrorCode::kInvalidArgument, "grant: not a memory capability");
  }
  if (!src_ptr->rights.CanGrant()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "grant: missing grant right");
  }
  if (sub.empty() || !src_ptr->range.Contains(sub)) {
    return Error(ErrorCode::kOutOfRange, "grant: sub-range outside capability");
  }
  if (!IsPageAligned(sub.base) || !IsPageAligned(sub.size)) {
    return Error(ErrorCode::kInvalidArgument, "grant: sub-range must be page-aligned");
  }
  if (!src_ptr->perms.Covers(perms) || perms.empty()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "grant: permissions exceed source");
  }
  if (!src_ptr->rights.Covers(rights)) {
    return Error(ErrorCode::kCapabilityRightsViolation, "grant: rights exceed source");
  }
  TYCHE_RETURN_IF_ERROR(CheckSealingRules(requester, dst));

  // Snapshot fields before NewCap invalidates the pointer.
  const AddrRange src_range = src_ptr->range;
  const Perms src_perms = src_ptr->perms;
  const CapRights src_rights = src_ptr->rights;
  const RevocationPolicy src_policy = src_ptr->revocation;

  GrantOutcome outcome;

  Capability& granted = NewCap(dst, ResourceKind::kMemory);
  granted.range = sub;
  granted.perms = perms;
  granted.rights = rights;
  granted.revocation = policy;
  granted.origin = CapOrigin::kGrant;
  granted.parent = src_cap;
  outcome.granted = granted.id;
  caps_[src_cap].children.push_back(granted.id);

  for (const AddrRange& piece : RemainderPieces(src_range, sub)) {
    Capability& rem = NewCap(requester, ResourceKind::kMemory);
    rem.range = piece;
    rem.perms = src_perms;
    rem.rights = src_rights;
    rem.revocation = src_policy;
    rem.origin = CapOrigin::kRemainder;
    rem.parent = src_cap;
    caps_[src_cap].children.push_back(rem.id);
    outcome.remainders.push_back(rem.id);
  }

  caps_[src_cap].state = CapState::kDonated;

  // The grantor loses access to the granted bytes; the recipient gains it.
  outcome.effects.Add(CapEffect{CapEffect::Kind::kUnmapMemory, requester,
                                ResourceKind::kMemory, sub, 0, src_perms});
  outcome.effects.Add(
      CapEffect{CapEffect::Kind::kMapMemory, dst, ResourceKind::kMemory, sub, 0, perms});
  return outcome;
}

Result<CapId> CapabilityEngine::ShareUnit(CapDomainId requester, CapId src_cap,
                                          CapDomainId dst, CapRights rights,
                                          RevocationPolicy policy, CapEffects* effects) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  TYCHE_ASSIGN_OR_RETURN(Capability * src, GetMutable(src_cap));
  if (src->owner != requester) {
    return Error(ErrorCode::kCapabilityNotOwned, "share: requester does not own capability");
  }
  if (!src->active()) {
    return Error(ErrorCode::kCapabilityRevoked, "share: source capability inactive");
  }
  if (src->kind == ResourceKind::kMemory) {
    return Error(ErrorCode::kInvalidArgument, "share: use ShareMemory for memory");
  }
  if (!src->rights.CanShare()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "share: missing share right");
  }
  if (!src->rights.Covers(rights)) {
    return Error(ErrorCode::kCapabilityRightsViolation, "share: rights exceed source");
  }
  TYCHE_RETURN_IF_ERROR(CheckSealingRules(requester, dst));

  const ResourceKind kind = src->kind;
  const uint64_t unit = src->unit;
  Capability& child = NewCap(dst, kind);
  child.unit = unit;
  child.rights = rights;
  child.revocation = policy;
  child.origin = CapOrigin::kShare;
  child.parent = src_cap;
  caps_[src_cap].children.push_back(child.id);

  if (effects != nullptr) {
    effects->Add(CapEffect{CapEffect::Kind::kAttachUnit, dst, kind, AddrRange{}, unit,
                           Perms{}});
  }
  return child.id;
}

Result<GrantOutcome> CapabilityEngine::GrantUnit(CapDomainId requester, CapId src_cap,
                                                 CapDomainId dst, CapRights rights,
                                                 RevocationPolicy policy) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  TYCHE_ASSIGN_OR_RETURN(Capability * src, GetMutable(src_cap));
  if (src->owner != requester) {
    return Error(ErrorCode::kCapabilityNotOwned, "grant: requester does not own capability");
  }
  if (!src->active()) {
    return Error(ErrorCode::kCapabilityRevoked, "grant: source capability inactive");
  }
  if (src->kind == ResourceKind::kMemory) {
    return Error(ErrorCode::kInvalidArgument, "grant: use GrantMemory for memory");
  }
  if (!src->rights.CanGrant()) {
    return Error(ErrorCode::kCapabilityRightsViolation, "grant: missing grant right");
  }
  if (!src->rights.Covers(rights)) {
    return Error(ErrorCode::kCapabilityRightsViolation, "grant: rights exceed source");
  }
  TYCHE_RETURN_IF_ERROR(CheckSealingRules(requester, dst));

  const ResourceKind kind = src->kind;
  const uint64_t unit = src->unit;

  GrantOutcome outcome;
  Capability& granted = NewCap(dst, kind);
  granted.unit = unit;
  granted.rights = rights;
  granted.revocation = policy;
  granted.origin = CapOrigin::kGrant;
  granted.parent = src_cap;
  outcome.granted = granted.id;
  caps_[src_cap].children.push_back(granted.id);
  caps_[src_cap].state = CapState::kDonated;

  outcome.effects.Add(CapEffect{CapEffect::Kind::kDetachUnit, requester, kind, AddrRange{},
                                unit, Perms{}});
  outcome.effects.Add(
      CapEffect{CapEffect::Kind::kAttachUnit, dst, kind, AddrRange{}, unit, Perms{}});
  return outcome;
}

void CapabilityEngine::EmitRevokeEffects(const Capability& cap, CapEffects* effects) {
  if (cap.kind == ResourceKind::kMemory) {
    effects->Add(CapEffect{CapEffect::Kind::kUnmapMemory, cap.owner, cap.kind, cap.range, 0,
                           cap.perms});
    if (cap.revocation.ZeroMemory()) {
      effects->Add(CapEffect{CapEffect::Kind::kZeroMemory, cap.owner, cap.kind, cap.range, 0,
                             Perms{}});
    }
    if (cap.revocation.FlushCache()) {
      effects->Add(CapEffect{CapEffect::Kind::kFlushCache, cap.owner, cap.kind, cap.range, 0,
                             Perms{}});
    }
  } else {
    effects->Add(CapEffect{CapEffect::Kind::kDetachUnit, cap.owner, cap.kind, AddrRange{},
                           cap.unit, Perms{}});
  }
}

uint64_t CapabilityEngine::RevokeSubtree(CapId cap_id, std::set<CapId>* visited,
                                         CapEffects* effects,
                                         std::vector<CapId>* revoked_ids) {
  if (visited->contains(cap_id)) {
    return 0;  // cycle tolerance: each node processed at most once
  }
  visited->insert(cap_id);

  const auto it = caps_.find(cap_id);
  if (it == caps_.end()) {
    return 0;
  }
  uint64_t revoked = 0;
  // Children first: a shared-out mapping must disappear before the sharer's.
  const std::vector<CapId> children = it->second.children;
  for (const CapId child : children) {
    revoked += RevokeSubtree(child, visited, effects, revoked_ids);
  }
  Capability& cap = caps_[cap_id];
  if (cap.state != CapState::kRevoked) {
    if (cap.state == CapState::kActive) {
      EmitRevokeEffects(cap, effects);
      ++revoked;
      revoked_ids->push_back(cap_id);
      // One line per cascaded deactivation; the visited-set size is the
      // evidence that cyclic sharing (A→B→A) still terminates.
      TYCHE_LOG(kTrace) << "revoke cascade: cap#" << cap_id << " owner=" << cap.owner
                        << " " << ResourceKindName(cap.kind)
                        << " visited=" << visited->size();
    }
    cap.state = CapState::kRevoked;
  }
  return revoked;
}

Result<RevokeOutcome> CapabilityEngine::Revoke(CapDomainId requester, CapId cap_id) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  return RevokeLocked(requester, cap_id);
}

Result<RevokeOutcome> CapabilityEngine::RevokeLocked(CapDomainId requester, CapId cap_id) {
  TYCHE_ASSIGN_OR_RETURN(const Capability* cap, GetLocked(cap_id));
  if (cap->state == CapState::kRevoked) {
    return Error(ErrorCode::kCapabilityRevoked, "revoke: already revoked");
  }

  bool authorized = cap->owner == requester;  // dropping one's own access
  CapDomainId grantor = kNoCreator;
  if (cap->parent != kInvalidCap) {
    const auto parent_it = caps_.find(cap->parent);
    if (parent_it != caps_.end()) {
      grantor = parent_it->second.owner;
      if (parent_it->second.owner == requester && parent_it->second.rights.CanRevoke()) {
        authorized = true;  // revoking what one shared / granted out
      }
    }
  }
  if (!authorized) {
    return Error(ErrorCode::kCapabilityRightsViolation, "revoke: not authorized");
  }

  RevokeOutcome outcome;
  std::set<CapId> visited;
  const bool was_grant = cap->origin == CapOrigin::kGrant;
  const AddrRange range = cap->range;
  const ResourceKind kind = cap->kind;
  const uint64_t unit = cap->unit;
  const CapId parent = cap->parent;

  outcome.revoked_count = RevokeSubtree(cap_id, &visited, &outcome.effects,
                                        &outcome.revoked_caps);

  // Revoking a grant returns ownership to the grantor.
  if (was_grant && grantor != kNoCreator && parent != kInvalidCap) {
    const Capability& parent_cap = caps_[parent];
    Capability& restore = NewCap(grantor, kind);
    restore.range = range;
    restore.unit = unit;
    restore.perms = parent_cap.perms;
    restore.rights = parent_cap.rights;
    restore.revocation = parent_cap.revocation;
    restore.origin = CapOrigin::kRestore;
    restore.parent = parent;
    caps_[parent].children.push_back(restore.id);
    outcome.restored = restore.id;
    if (kind == ResourceKind::kMemory) {
      outcome.effects.Add(CapEffect{CapEffect::Kind::kMapMemory, grantor, kind, range, 0,
                                    restore.perms});
    } else {
      outcome.effects.Add(
          CapEffect{CapEffect::Kind::kAttachUnit, grantor, kind, AddrRange{}, unit, Perms{}});
    }
  }
  return outcome;
}

Result<RevokeOutcome> CapabilityEngine::PurgeDomain(
    CapDomainId domain, std::vector<std::pair<CapId, RevokeOutcome>>* partial) {
  const ScopedPhase phase(DispatchPhase::kEngine);
  std::unique_lock lock(mu_);
  if (!IsRegisteredLocked(domain)) {
    return Error(ErrorCode::kNotFound, "purge: domain not registered");
  }
  RevokeOutcome total;
  // Collect first: revocation mutates the index. The owner index holds every
  // id the domain ever owned; inactive ones are skipped below.
  std::vector<CapId> owned;
  if (const auto owned_it = owned_.find(domain); owned_it != owned_.end()) {
    owned = owned_it->second;
  }
  for (const CapId id : owned) {
    const auto it = caps_.find(id);
    if (it == caps_.end() || !it->second.active()) {
      continue;  // revoked by an earlier cascade, or never activated
    }
    // A failed revoke aborts the purge: the error propagates, the domain
    // stays registered, and `partial` already names every root that DID
    // commit, so the caller can journal those and retry the remainder.
    // Revocation itself has no failing path today; the fault point models
    // one (and any future organic failure takes the same exit).
    TYCHE_FAULT_POINT(faults::kEnginePurgeRevoke);
    auto result = RevokeLocked(domain, id);
    if (!result.ok()) {
      return result.status();
    }
    total.revoked_count += result->revoked_count;
    total.revoked_caps.insert(total.revoked_caps.end(), result->revoked_caps.begin(),
                              result->revoked_caps.end());
    total.effects.Append(result->effects);
    if (partial != nullptr) {
      partial->emplace_back(id, *result);
    }
  }
  owned_.erase(domain);
  domains_.erase(domain);
  return total;
}

std::vector<const Capability*> CapabilityEngine::DomainCaps(CapDomainId domain) const {
  std::shared_lock lock(mu_);
  std::vector<const Capability*> out;
  const auto owned_it = owned_.find(domain);
  if (owned_it == owned_.end()) {
    return out;
  }
  for (const CapId id : owned_it->second) {
    const auto it = caps_.find(id);
    if (it != caps_.end() && it->second.active()) {
      out.push_back(&it->second);
    }
  }
  return out;
}

Perms CapabilityEngine::EffectivePerms(CapDomainId domain, uint64_t addr) const {
  std::shared_lock lock(mu_);
  uint8_t mask = Perms::kNone;
  const auto owned_it = owned_.find(domain);
  if (owned_it == owned_.end()) {
    return Perms(mask);
  }
  for (const CapId id : owned_it->second) {
    const auto it = caps_.find(id);
    if (it == caps_.end()) {
      continue;
    }
    const Capability& cap = it->second;
    if (cap.active() && cap.kind == ResourceKind::kMemory && cap.range.Contains(addr)) {
      mask |= cap.perms.mask;
    }
  }
  return Perms(mask);
}

bool CapabilityEngine::HasUnit(CapDomainId domain, ResourceKind kind, uint64_t unit) const {
  std::shared_lock lock(mu_);
  const auto owned_it = owned_.find(domain);
  if (owned_it == owned_.end()) {
    return false;
  }
  for (const CapId id : owned_it->second) {
    const auto it = caps_.find(id);
    if (it == caps_.end()) {
      continue;
    }
    const Capability& cap = it->second;
    if (cap.active() && cap.kind == kind && cap.unit == unit) {
      return true;
    }
  }
  return false;
}

uint32_t CapabilityEngine::MemoryRefCount(AddrRange range) const {
  std::shared_lock lock(mu_);
  std::set<CapDomainId> holders;
  for (const auto& [id, cap] : caps_) {
    if (cap.active() && cap.kind == ResourceKind::kMemory && cap.range.Overlaps(range)) {
      holders.insert(cap.owner);
    }
  }
  return static_cast<uint32_t>(holders.size());
}

uint32_t CapabilityEngine::UnitRefCount(ResourceKind kind, uint64_t unit) const {
  std::shared_lock lock(mu_);
  std::set<CapDomainId> holders;
  for (const auto& [id, cap] : caps_) {
    if (cap.active() && cap.kind == kind && cap.unit == unit) {
      holders.insert(cap.owner);
    }
  }
  return static_cast<uint32_t>(holders.size());
}

bool CapabilityEngine::ExclusivelyOwned(CapDomainId domain, AddrRange range) const {
  std::shared_lock lock(mu_);
  if (range.empty()) {
    return false;
  }
  // Every byte must be covered by `domain` and by no one else. Check
  // coverage at region granularity using the view.
  for (const RegionView& view : MemoryViewLocked(0)) {
    if (!view.range.Overlaps(range)) {
      continue;
    }
    if (view.domains.size() != 1 || view.domains[0] != domain) {
      return false;
    }
  }
  // Check full coverage: union of owned caps must contain range.
  const auto owned_it = owned_.find(domain);
  if (owned_it == owned_.end()) {
    return false;
  }
  uint64_t covered_until = range.base;
  bool progress = true;
  while (covered_until < range.end() && progress) {
    progress = false;
    for (const CapId id : owned_it->second) {
      const auto it = caps_.find(id);
      if (it == caps_.end()) {
        continue;
      }
      const Capability& cap = it->second;
      if (cap.active() && cap.kind == ResourceKind::kMemory &&
          cap.range.Contains(covered_until)) {
        covered_until = cap.range.end();
        progress = true;
        break;
      }
    }
  }
  return covered_until >= range.end();
}

std::vector<CapabilityEngine::MappedRegion> CapabilityEngine::DomainMemoryMap(
    CapDomainId domain) const {
  std::shared_lock lock(mu_);
  std::vector<const Capability*> mem_caps;
  std::vector<uint64_t> boundaries;
  if (const auto owned_it = owned_.find(domain); owned_it != owned_.end()) {
    for (const CapId id : owned_it->second) {
      const auto it = caps_.find(id);
      if (it == caps_.end()) {
        continue;
      }
      const Capability& cap = it->second;
      if (cap.active() && cap.kind == ResourceKind::kMemory) {
        mem_caps.push_back(&cap);
        boundaries.push_back(cap.range.base);
        boundaries.push_back(cap.range.end());
      }
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()), boundaries.end());

  std::vector<MappedRegion> regions;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const AddrRange interval{boundaries[i], boundaries[i + 1] - boundaries[i]};
    uint8_t mask = Perms::kNone;
    for (const Capability* cap : mem_caps) {
      if (cap->range.Overlaps(interval)) {
        mask |= cap->perms.mask;
      }
    }
    if (mask == Perms::kNone) {
      continue;
    }
    if (!regions.empty() && regions.back().range.end() == interval.base &&
        regions.back().perms.mask == mask) {
      regions.back().range.size += interval.size;
    } else {
      regions.push_back(MappedRegion{interval, Perms(mask)});
    }
  }
  return regions;
}

std::vector<RegionView> CapabilityEngine::MemoryView(uint64_t limit) const {
  std::shared_lock lock(mu_);
  return MemoryViewLocked(limit);
}

std::vector<RegionView> CapabilityEngine::MemoryViewLocked(uint64_t limit) const {
  std::vector<uint64_t> boundaries;
  std::vector<const Capability*> mem_caps;
  for (const auto& [id, cap] : caps_) {
    if (cap.active() && cap.kind == ResourceKind::kMemory) {
      if (limit != 0 && cap.range.base >= limit) {
        continue;
      }
      mem_caps.push_back(&cap);
      boundaries.push_back(cap.range.base);
      boundaries.push_back(limit != 0 ? std::min(cap.range.end(), limit) : cap.range.end());
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()), boundaries.end());

  std::vector<RegionView> views;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const AddrRange interval{boundaries[i], boundaries[i + 1] - boundaries[i]};
    std::set<CapDomainId> holders;
    for (const Capability* cap : mem_caps) {
      if (cap->range.Overlaps(interval)) {
        holders.insert(cap->owner);
      }
    }
    if (holders.empty()) {
      continue;
    }
    RegionView view;
    view.range = interval;
    view.domains.assign(holders.begin(), holders.end());
    // Merge with the previous view when contiguous and identical.
    if (!views.empty() && views.back().range.end() == interval.base &&
        views.back().domains == view.domains) {
      views.back().range.size += interval.size;
    } else {
      views.push_back(std::move(view));
    }
  }
  return views;
}

uint64_t CapabilityEngine::total_caps() const {
  std::shared_lock lock(mu_);
  return static_cast<uint64_t>(caps_.size());
}

uint64_t CapabilityEngine::active_caps() const {
  std::shared_lock lock(mu_);
  uint64_t count = 0;
  for (const auto& [id, cap] : caps_) {
    if (cap.active()) {
      ++count;
    }
  }
  return count;
}

// The ForEach walks and DumpTree run the callback under the shared lock:
// callbacks must not call back into the engine.
void CapabilityEngine::ForEachActive(const std::function<void(const Capability&)>& fn) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, cap] : caps_) {
    if (cap.active()) {
      fn(cap);
    }
  }
}

void CapabilityEngine::ForEach(const std::function<void(const Capability&)>& fn) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, cap] : caps_) {
    fn(cap);
  }
}

Status CapabilityEngine::CheckOwnedIndex() const {
  std::shared_lock lock(mu_);
  // Expected per-owner counts from the lineage map (the source of truth).
  std::map<CapDomainId, uint64_t> expected;
  for (const auto& [id, cap] : caps_) {
    if (domains_.contains(cap.owner)) {
      ++expected[cap.owner];
    }
  }
  uint64_t indexed_total = 0;
  for (const auto& [owner, ids] : owned_) {
    for (const CapId id : ids) {
      const auto it = caps_.find(id);
      if (it == caps_.end()) {
        return Error(ErrorCode::kInternal, "owner index names a nonexistent capability");
      }
      if (it->second.owner != owner) {
        return Error(ErrorCode::kInternal, "owner index entry under the wrong owner");
      }
    }
    const auto want = expected.find(owner);
    const uint64_t want_count = want == expected.end() ? 0 : want->second;
    if (ids.size() != want_count) {
      return Error(ErrorCode::kInternal, "owner index count disagrees with lineage map");
    }
    indexed_total += ids.size();
  }
  // Totals catch an owner bucket that is missing entirely.
  uint64_t expected_total = 0;
  for (const auto& [owner, count] : expected) {
    expected_total += count;
  }
  if (indexed_total != expected_total) {
    return Error(ErrorCode::kInternal, "owner index is missing a domain's bucket");
  }
  return OkStatus();
}

std::string CapabilityEngine::DumpTree() const {
  std::shared_lock lock(mu_);
  std::ostringstream out;
  std::function<void(CapId, int)> recurse = [&](CapId id, int depth) {
    const auto it = caps_.find(id);
    if (it == caps_.end()) {
      return;
    }
    for (int i = 0; i < depth; ++i) {
      out << "  ";
    }
    out << it->second.ToString() << "\n";
    for (const CapId child : it->second.children) {
      recurse(child, depth + 1);
    }
  };
  for (const auto& [id, cap] : caps_) {
    if (cap.parent == kInvalidCap) {
      recurse(id, 0);
    }
  }
  return out.str();
}

EngineImage CapabilityEngine::Capture() const {
  std::shared_lock lock(mu_);
  EngineImage image;
  image.caps.reserve(caps_.size());
  for (const auto& [id, cap] : caps_) {
    image.caps.push_back(cap);
  }
  image.domains.reserve(domains_.size());
  for (const auto& [id, info] : domains_) {
    image.domains.push_back(EngineImage::DomainEntry{id, info.creator, info.sealed});
  }
  image.next_id = next_id_;
  return image;
}

Status CapabilityEngine::Restore(const EngineImage& image) {
  std::unique_lock lock(mu_);
  // Validate before mutating anything: a corrupted snapshot must not leave
  // the engine half-installed.
  std::map<CapDomainId, DomainInfo> domains;
  for (const EngineImage::DomainEntry& entry : image.domains) {
    if (!domains.emplace(entry.id, DomainInfo{entry.creator, entry.sealed}).second) {
      return Error(ErrorCode::kInvalidArgument, "engine image: duplicate domain");
    }
  }
  std::map<CapId, Capability> caps;
  for (const Capability& cap : image.caps) {
    if (cap.id == kInvalidCap || cap.id >= image.next_id) {
      return Error(ErrorCode::kInvalidArgument, "engine image: cap id out of range");
    }
    // Only ACTIVE caps need a registered owner. Lineage tombstones survive
    // PurgeDomain (revocation never deletes nodes, the purge unregisters the
    // domain), so a faithful Capture of a healthy engine can legitimately
    // carry inactive caps whose owner is gone.
    if (cap.active() && domains.find(cap.owner) == domains.end()) {
      return Error(ErrorCode::kInvalidArgument,
                   "engine image: active cap " + std::to_string(cap.id) +
                       " owned by unregistered domain " + std::to_string(cap.owner));
    }
    if (!caps.emplace(cap.id, cap).second) {
      return Error(ErrorCode::kInvalidArgument, "engine image: duplicate cap id");
    }
  }
  for (const auto& [id, cap] : caps) {
    if (cap.parent != kInvalidCap && caps.find(cap.parent) == caps.end()) {
      return Error(ErrorCode::kInvalidArgument, "engine image: dangling parent");
    }
    for (const CapId child : cap.children) {
      if (caps.find(child) == caps.end()) {
        return Error(ErrorCode::kInvalidArgument, "engine image: dangling child");
      }
    }
  }
  caps_ = std::move(caps);
  domains_ = std::move(domains);
  next_id_ = image.next_id;
  // Rebuild the derived owner index (images predate it / never carry it).
  // std::map iteration is id order, matching NewCap's mint-order appends.
  owned_.clear();
  for (const auto& [id, cap] : caps_) {
    owned_[cap.owner].push_back(id);
  }
  return OkStatus();
}

}  // namespace tyche
