// Copyright 2026 The Tyche Reproduction Authors.
// Simulated physical memory (DRAM) plus a frame allocator.
//
// All simulated software -- the mini OS, domains, devices, and the monitor's
// own page tables -- lives inside one flat byte array indexed by physical
// address. The monitor reasons exclusively in this physical name space,
// exactly as §3.2 of the paper prescribes ("policies operate on physical
// name spaces").

#ifndef SRC_HW_PHYS_MEMORY_H_
#define SRC_HW_PHYS_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

class PhysMemory {
 public:
  // Size must be page aligned.
  explicit PhysMemory(uint64_t size_bytes);

  uint64_t size() const { return static_cast<uint64_t>(bytes_.size()); }

  bool ValidRange(uint64_t addr, uint64_t size) const {
    return size <= this->size() && addr <= this->size() - size;
  }

  // Raw access, no protection checks: protection is the machine's job.
  Status Read(uint64_t addr, std::span<uint8_t> out) const;
  Status Write(uint64_t addr, std::span<const uint8_t> data);

  Result<uint64_t> Read64(uint64_t addr) const;
  Status Write64(uint64_t addr, uint64_t value);

  // Zeroes [addr, addr+size). Used by the ZeroMemory revocation policy.
  Status Zero(uint64_t addr, uint64_t size);

  // Direct view for hashing / measurement (monitor-only use).
  Result<std::span<const uint8_t>> View(uint64_t addr, uint64_t size) const;
  Result<std::span<uint8_t>> MutableView(uint64_t addr, uint64_t size);

 private:
  std::vector<uint8_t> bytes_;
};

// Page-frame allocator over a sub-range of physical memory. The monitor uses
// one instance for its private metadata pool (page tables, domain contexts);
// the mini OS uses another for general allocation. Free frames are kept in a
// LIFO free list.
class FrameAllocator {
 public:
  FrameAllocator(AddrRange pool);

  // Allocates one 4K frame; returns its physical address.
  Result<uint64_t> Alloc();
  // Allocates `count` physically contiguous frames.
  Result<uint64_t> AllocContiguous(uint64_t count);
  Status Free(uint64_t frame_addr);

  uint64_t free_frames() const { return free_count_; }
  uint64_t total_frames() const { return total_frames_; }
  const AddrRange& pool() const { return pool_; }

 private:
  AddrRange pool_;
  uint64_t total_frames_;
  uint64_t bump_next_;        // frames never yet allocated start here
  std::vector<uint64_t> free_list_;
  uint64_t free_count_;
};

}  // namespace tyche

#endif  // SRC_HW_PHYS_MEMORY_H_
