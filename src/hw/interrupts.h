// Copyright 2026 The Tyche Reproduction Authors.
// Interrupt plane: device interrupts routed to trust domains.
//
// §4.1 lists "cross-domain interrupt routing" among the capabilities Tyche
// explores, with "hardware interrupt routing via remapping" (the VT-d
// posted-interrupt idea) as the accelerated path. The model here: devices
// raise (bdf, vector) interrupts; a routing table -- programmed ONLY by the
// monitor, which validates device ownership -- maps each device to the
// domain that should receive its interrupts. Unrouted interrupts are
// dropped and counted (default deny, like DMA).

#ifndef SRC_HW_INTERRUPTS_H_
#define SRC_HW_INTERRUPTS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/hw/cpu.h"
#include "src/hw/iommu.h"
#include "src/support/status.h"

namespace tyche {

struct Interrupt {
  PciBdf source;
  uint32_t vector = 0;

  bool operator==(const Interrupt&) const = default;
};

class InterruptPlane {
 public:
  struct Stats {
    uint64_t delivered = 0;
    uint64_t dropped = 0;
  };

  // Programs the route for a device: its interrupts land in `domain`'s
  // pending queue. One route per device.
  void Route(PciBdf bdf, DomainId domain) { routes_[bdf] = domain; }

  // Removes the route (subsequent interrupts from bdf are dropped).
  void Unroute(PciBdf bdf) { routes_.erase(bdf); }

  std::optional<DomainId> RouteOf(PciBdf bdf) const {
    const auto it = routes_.find(bdf);
    if (it == routes_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  // Device side: raises an interrupt. Returns true if it was routed.
  bool Raise(PciBdf bdf, uint32_t vector) {
    const auto it = routes_.find(bdf);
    if (it == routes_.end()) {
      ++stats_.dropped;
      return false;
    }
    pending_[it->second].push_back(Interrupt{bdf, vector});
    ++stats_.delivered;
    return true;
  }

  // Domain side: takes the next pending interrupt for `domain`.
  std::optional<Interrupt> Take(DomainId domain) {
    const auto it = pending_.find(domain);
    if (it == pending_.end() || it->second.empty()) {
      return std::nullopt;
    }
    const Interrupt interrupt = it->second.front();
    it->second.pop_front();
    return interrupt;
  }

  uint64_t PendingCount(DomainId domain) const {
    const auto it = pending_.find(domain);
    return it == pending_.end() ? 0 : it->second.size();
  }

  // Drops all routes and pending interrupts involving `domain` (domain
  // teardown) or `bdf` (device ownership change).
  void PurgeDomain(DomainId domain) {
    pending_.erase(domain);
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (it->second == domain) {
        it = routes_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const Stats& stats() const { return stats_; }

 private:
  std::map<PciBdf, DomainId> routes_;
  std::map<DomainId, std::deque<Interrupt>> pending_;
  Stats stats_;
};

}  // namespace tyche

#endif  // SRC_HW_INTERRUPTS_H_
