// Copyright 2026 The Tyche Reproduction Authors.
// Software TPM: the paper's judiciary root of trust (§3.4, first tier).
//
// Models the parts the isolation monitor's trust story needs: PCR banks with
// extend semantics, an event log, an endorsement-derived attestation key,
// and signed quotes binding a nonce to PCR contents. A remote verifier
// checks the quote against golden measurements to convince itself "the
// machine is under the complete control of a specific monitor
// implementation".

#ifndef SRC_HW_TPM_H_
#define SRC_HW_TPM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/hw/cost_model.h"
#include "src/support/status.h"

namespace tyche {

struct TpmEvent {
  uint32_t pcr_index;
  Digest measured;
  std::string description;
};

struct TpmQuote {
  uint64_t nonce = 0;
  uint32_t pcr_mask = 0;             // which PCRs are included
  std::vector<Digest> pcr_values;    // in ascending index order
  Digest quote_digest;               // hash of (nonce, mask, values)
  SchnorrSignature signature;        // by the TPM attestation key
};

class Tpm {
 public:
  static constexpr uint32_t kNumPcrs = 24;
  // Conventional PCR allocation in this system.
  static constexpr uint32_t kPcrFirmware = 0;  // SRTM / boot firmware
  static constexpr uint32_t kPcrMonitor = 1;   // isolation monitor image

  // `endorsement_seed` plays the role of the burned-in endorsement primary
  // seed; the attestation key is derived from it deterministically.
  explicit Tpm(std::span<const uint8_t> endorsement_seed, CycleAccount* cycles);

  // PCR extend: pcr = SHA256(pcr || digest). Appends to the event log.
  Status Extend(uint32_t pcr_index, const Digest& digest, std::string description);

  // Platform reset (power cycle / crash reboot): PCR banks return to zero
  // and the event log clears. The endorsement-derived attestation key
  // survives — it is fused, not volatile.
  void Reset();

  Result<Digest> ReadPcr(uint32_t pcr_index) const;

  // Produces a signed quote over the selected PCRs.
  Result<TpmQuote> Quote(uint64_t nonce, uint32_t pcr_mask) const;

  const SchnorrPublicKey& attestation_key() const { return key_.pub; }
  const std::vector<TpmEvent>& event_log() const { return events_; }

  // Verifier side: checks signature and digest consistency of a quote
  // against a claimed public key.
  static bool VerifyQuote(const TpmQuote& quote, const SchnorrPublicKey& key);

  // Computes the digest a quote signs (shared by Quote and VerifyQuote).
  static Digest QuoteDigest(uint64_t nonce, uint32_t pcr_mask,
                            const std::vector<Digest>& pcr_values);

 private:
  std::vector<Digest> pcrs_;
  std::vector<TpmEvent> events_;
  SchnorrKeyPair key_;
  CycleAccount* cycles_;
};

}  // namespace tyche

#endif  // SRC_HW_TPM_H_
