// Copyright 2026 The Tyche Reproduction Authors.
// RISC-V Physical Memory Protection (PMP) register file.
//
// PMP is the deliberately *weaker* mechanism the paper uses to demonstrate
// generality (§4): a small fixed number of segment registers per hart,
// checked in priority order. The monitor's PMP backend must fit each
// domain's memory layout into these entries -- the scarcity constraint is
// the whole point, so this model keeps the architectural encodings (OFF /
// TOR / NA4 / NAPOT) and the lowest-numbered-match-wins rule.

#ifndef SRC_HW_PMP_H_
#define SRC_HW_PMP_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "src/hw/access.h"
#include "src/hw/cost_model.h"
#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

enum class PmpAddressMode : uint8_t {
  kOff = 0,
  kTor = 1,    // top-of-range: [pmpaddr[i-1], pmpaddr[i])
  kNa4 = 2,    // naturally aligned 4-byte region
  kNapot = 3,  // naturally aligned power-of-two region >= 8 bytes
};

struct PmpEntry {
  PmpAddressMode mode = PmpAddressMode::kOff;
  Perms perms;
  bool locked = false;
  // Architectural pmpaddr register value (address >> 2 with NAPOT encoding
  // folded into the low bits).
  uint64_t addr = 0;
};

// One hart's PMP file.
class PmpFile {
 public:
  static constexpr int kNumEntries = 16;

  PmpFile() = default;

  // Programs entry `index`. Locked entries cannot be reprogrammed (the
  // monitor locks the entries that protect itself).
  Status SetEntry(int index, const PmpEntry& entry, CycleAccount* cycles);
  Status ClearEntry(int index, CycleAccount* cycles);
  Result<PmpEntry> GetEntry(int index) const;

  // Hart reset: every entry returns to kOff and lock bits clear. Lock bits
  // only survive until the next reset -- that is what makes them safe to
  // use for the monitor guard in the first place.
  void Reset() { entries_ = {}; }

  // Architectural check: finds the lowest-numbered matching entry and applies
  // its permissions. If no entry matches, access is denied (the monitor runs
  // with no default-allow: machine mode would be exempt, but domains are not).
  // Charges pmp_check_per_entry cycles per entry scanned.
  Status Check(uint64_t addr, uint64_t size, AccessType access, CycleAccount* cycles) const;

  // Decodes the effective byte range of an entry; nullopt for kOff.
  std::optional<AddrRange> EntryRange(int index) const;

  int used_entries() const;

  std::string Dump() const;

  // --- Encoding helpers used by the PMP backend ---

  // Encodes a NAPOT region. base must be size-aligned, size a power of two
  // >= 8 bytes.
  static Result<uint64_t> EncodeNapot(uint64_t base, uint64_t size);
  // Builds a TOR pair: entry i-1 holds bottom (mode kOff, addr=base>>2),
  // entry i holds top. Handled at the backend level; here we only expose the
  // address encoding.
  static uint64_t EncodeTorAddr(uint64_t byte_addr) { return byte_addr >> 2; }

 private:
  std::array<PmpEntry, kNumEntries> entries_{};
};

}  // namespace tyche

#endif  // SRC_HW_PMP_H_
