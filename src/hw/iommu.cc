// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/iommu.h"

#include "src/support/faults.h"

namespace tyche {

Status Iommu::AttachDevice(PciBdf bdf, const NestedPageTable* table) {
  if (table == nullptr) {
    return DetachDevice(bdf);
  }
  TYCHE_FAULT_POINT(faults::kIommuAttach);
  contexts_[bdf] = table;
  cycles_->Charge(CostModel::Default().iommu_entry_update);
  return OkStatus();
}

Status Iommu::DetachDevice(PciBdf bdf) {
  contexts_.erase(bdf);
  cycles_->Charge(CostModel::Default().iommu_entry_update);
  return OkStatus();
}

Result<Translation> Iommu::Translate(PciBdf bdf, uint64_t addr, AccessType access) const {
  const auto it = contexts_.find(bdf);
  if (it == contexts_.end()) {
    return Error(ErrorCode::kIommuFault, "device has no IOMMU context");
  }
  auto translation = it->second->Translate(addr, access);
  if (!translation.ok()) {
    return Error(ErrorCode::kIommuFault, "DMA translation fault");
  }
  return translation;
}

const NestedPageTable* Iommu::ContextOf(PciBdf bdf) const {
  const auto it = contexts_.find(bdf);
  return it == contexts_.end() ? nullptr : it->second;
}

}  // namespace tyche
