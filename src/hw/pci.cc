// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/pci.h"

#include "src/hw/machine.h"

namespace tyche {

Result<std::vector<uint8_t>> PciDevice::DmaRead(Machine* machine, uint64_t addr,
                                                uint64_t size) {
  std::vector<uint8_t> buffer(size);
  TYCHE_RETURN_IF_ERROR(machine->DmaRead(bdf_, addr, std::span<uint8_t>(buffer)));
  return buffer;
}

Status PciDevice::DmaWrite(Machine* machine, uint64_t addr, std::span<const uint8_t> data) {
  return machine->DmaWrite(bdf_, addr, data);
}

Status DmaEngine::Copy(Machine* machine, uint64_t src, uint64_t dst, uint64_t size) {
  TYCHE_ASSIGN_OR_RETURN(const std::vector<uint8_t> buffer, DmaRead(machine, src, size));
  return DmaWrite(machine, dst, std::span<const uint8_t>(buffer));
}

Status DmaEngine::CopyAndNotify(Machine* machine, uint64_t src, uint64_t dst,
                                uint64_t size, uint32_t vector) {
  TYCHE_RETURN_IF_ERROR(Copy(machine, src, dst, size));
  machine->interrupts().Raise(bdf(), vector);
  return OkStatus();
}

Status GpuDevice::RunKernel(Machine* machine, uint64_t input, uint64_t output, uint64_t size,
                            uint8_t key) {
  TYCHE_ASSIGN_OR_RETURN(std::vector<uint8_t> buffer, DmaRead(machine, input, size));
  for (uint8_t& byte : buffer) {
    byte = Transform(byte, key);
  }
  return DmaWrite(machine, output, std::span<const uint8_t>(buffer));
}

}  // namespace tyche
