// Copyright 2026 The Tyche Reproduction Authors.
// EPT-style nested page tables, the x86 backend's enforcement mechanism.
//
// Tables live inside simulated physical memory (they consume real frames from
// the monitor's metadata pool), use the x86 4-level / 512-entry / 48-bit
// format, and charge page-walk cycles through a CycleAccount. The monitor is
// the only writer; simulated software and devices only ever *walk* them via
// Translate().
//
// Entry layout (one 64-bit word, loosely mirroring EPT):
//   bit 0      valid
//   bit 1..3   R/W/X (leaf entries only; non-leaf entries always pass through)
//   bit 12..47 physical frame / next-level table address

#ifndef SRC_HW_NESTED_PAGE_TABLE_H_
#define SRC_HW_NESTED_PAGE_TABLE_H_

#include <cstdint>
#include <functional>

#include "src/hw/access.h"
#include "src/hw/cost_model.h"
#include "src/hw/phys_memory.h"
#include "src/support/align.h"
#include "src/support/status.h"

namespace tyche {

struct Translation {
  uint64_t host_addr = 0;
  Perms perms;
  int levels_walked = 0;
};

class NestedPageTable {
 public:
  // Creates an empty table hierarchy. `frames` provides the metadata frames;
  // `memory` is where the tables physically live.
  static Result<NestedPageTable> Create(PhysMemory* memory, FrameAllocator* frames,
                                        CycleAccount* cycles);

  // Maps the 4K guest-physical page at `gpa` to host-physical `hpa`.
  // Fails with kAlreadyExists if the page is already mapped.
  Status MapPage(uint64_t gpa, uint64_t hpa, Perms perms);
  // Maps a page-aligned range with identity or offset translation.
  Status MapRange(uint64_t gpa, uint64_t hpa, uint64_t size, Perms perms);

  Status UnmapPage(uint64_t gpa);
  Status UnmapRange(uint64_t gpa, uint64_t size);

  // Changes permissions of an existing mapping.
  Status ProtectPage(uint64_t gpa, Perms perms);
  Status ProtectRange(uint64_t gpa, uint64_t size, Perms perms);

  // Hardware walk: translates and permission-checks one access. Charges
  // page_walk_per_level cycles per level touched.
  Result<Translation> Translate(uint64_t gpa, AccessType access) const;

  // Walk without permission check (for audits / the hardware validator).
  Result<Translation> Lookup(uint64_t gpa) const;

  // Visits every valid leaf mapping: callback(gpa, hpa, perms).
  void ForEachMapping(const std::function<void(uint64_t, uint64_t, Perms)>& fn) const;

  // Number of valid leaf mappings.
  uint64_t mapped_pages() const { return mapped_pages_; }
  // Frames consumed by table structures (TCB memory overhead metric).
  uint64_t table_frames() const { return table_frames_; }

  uint64_t root() const { return root_; }

  // Releases all table frames back to the allocator. The table is unusable
  // afterwards; used when a domain is destroyed.
  Status Destroy();

 private:
  NestedPageTable(PhysMemory* memory, FrameAllocator* frames, CycleAccount* cycles,
                  uint64_t root)
      : memory_(memory), frames_(frames), cycles_(cycles), root_(root) {}

  static constexpr int kLevels = 4;
  static constexpr uint64_t kEntriesPerTable = 512;
  static constexpr uint64_t kValidBit = 1ULL << 0;
  static constexpr uint64_t kPermShift = 1;  // bits 1..3 hold R/W/X
  static constexpr uint64_t kAddrMask = 0x0000fffffffff000ULL;

  static int IndexAt(uint64_t gpa, int level) {
    return static_cast<int>((gpa >> (kPageShift + 9 * level)) & 0x1ff);
  }

  // Walks to the leaf entry for gpa. If `create` is true, allocates missing
  // intermediate tables. Returns the physical address of the leaf entry slot.
  Result<uint64_t> WalkToLeafEntry(uint64_t gpa, bool create);
  Result<uint64_t> WalkToLeafEntryConst(uint64_t gpa, int* levels) const;

  void FreeSubtree(uint64_t table_addr, int level);

  PhysMemory* memory_;
  FrameAllocator* frames_;
  CycleAccount* cycles_;
  uint64_t root_;
  uint64_t mapped_pages_ = 0;
  uint64_t table_frames_ = 1;
  bool destroyed_ = false;
};

}  // namespace tyche

#endif  // SRC_HW_NESTED_PAGE_TABLE_H_
