// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/phys_memory.h"

#include <cstring>

#include "src/support/faults.h"

namespace tyche {

PhysMemory::PhysMemory(uint64_t size_bytes) : bytes_(size_bytes, 0) {}

Status PhysMemory::Read(uint64_t addr, std::span<uint8_t> out) const {
  if (!ValidRange(addr, out.size())) {
    return Error(ErrorCode::kOutOfRange, "phys read out of range");
  }
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
  return OkStatus();
}

Status PhysMemory::Write(uint64_t addr, std::span<const uint8_t> data) {
  if (!ValidRange(addr, data.size())) {
    return Error(ErrorCode::kOutOfRange, "phys write out of range");
  }
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
  return OkStatus();
}

Result<uint64_t> PhysMemory::Read64(uint64_t addr) const {
  if (!ValidRange(addr, 8)) {
    return Error(ErrorCode::kOutOfRange, "phys read64 out of range");
  }
  uint64_t value;
  std::memcpy(&value, bytes_.data() + addr, 8);
  return value;
}

Status PhysMemory::Write64(uint64_t addr, uint64_t value) {
  if (!ValidRange(addr, 8)) {
    return Error(ErrorCode::kOutOfRange, "phys write64 out of range");
  }
  std::memcpy(bytes_.data() + addr, &value, 8);
  return OkStatus();
}

Status PhysMemory::Zero(uint64_t addr, uint64_t size) {
  if (!ValidRange(addr, size)) {
    return Error(ErrorCode::kOutOfRange, "phys zero out of range");
  }
  std::memset(bytes_.data() + addr, 0, size);
  return OkStatus();
}

Result<std::span<const uint8_t>> PhysMemory::View(uint64_t addr, uint64_t size) const {
  if (!ValidRange(addr, size)) {
    return Error(ErrorCode::kOutOfRange, "phys view out of range");
  }
  return std::span<const uint8_t>(bytes_.data() + addr, size);
}

Result<std::span<uint8_t>> PhysMemory::MutableView(uint64_t addr, uint64_t size) {
  if (!ValidRange(addr, size)) {
    return Error(ErrorCode::kOutOfRange, "phys view out of range");
  }
  return std::span<uint8_t>(bytes_.data() + addr, size);
}

FrameAllocator::FrameAllocator(AddrRange pool)
    : pool_(pool),
      total_frames_(pool.size / kPageSize),
      bump_next_(pool.base),
      free_count_(total_frames_) {}

Result<uint64_t> FrameAllocator::Alloc() {
  TYCHE_FAULT_POINT(faults::kFrameAlloc);
  if (!free_list_.empty()) {
    const uint64_t frame = free_list_.back();
    free_list_.pop_back();
    --free_count_;
    return frame;
  }
  if (bump_next_ >= pool_.end()) {
    return Error(ErrorCode::kResourceExhausted, "frame pool exhausted");
  }
  const uint64_t frame = bump_next_;
  bump_next_ += kPageSize;
  --free_count_;
  return frame;
}

Result<uint64_t> FrameAllocator::AllocContiguous(uint64_t count) {
  // Contiguous allocation only draws from the never-allocated bump region;
  // good enough for boot-time carving of domain memory.
  if (count == 0) {
    return Error(ErrorCode::kInvalidArgument, "zero-frame allocation");
  }
  const uint64_t bytes = count * kPageSize;
  if (bump_next_ + bytes > pool_.end()) {
    return Error(ErrorCode::kResourceExhausted, "contiguous frame pool exhausted");
  }
  const uint64_t base = bump_next_;
  bump_next_ += bytes;
  free_count_ -= count;
  return base;
}

Status FrameAllocator::Free(uint64_t frame_addr) {
  if (!IsPageAligned(frame_addr) || !pool_.Contains(frame_addr)) {
    return Error(ErrorCode::kInvalidArgument, "freeing frame outside pool");
  }
  free_list_.push_back(frame_addr);
  ++free_count_;
  return OkStatus();
}

}  // namespace tyche
