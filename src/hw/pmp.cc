// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/pmp.h"

#include <sstream>

namespace tyche {

Status PmpFile::SetEntry(int index, const PmpEntry& entry, CycleAccount* cycles) {
  if (index < 0 || index >= kNumEntries) {
    return Error(ErrorCode::kOutOfRange, "PMP index out of range");
  }
  if (entries_[static_cast<size_t>(index)].locked) {
    return Error(ErrorCode::kFailedPrecondition, "PMP entry locked");
  }
  entries_[static_cast<size_t>(index)] = entry;
  if (cycles != nullptr) {
    cycles->Charge(CostModel::Default().pmp_entry_update);
  }
  return OkStatus();
}

Status PmpFile::ClearEntry(int index, CycleAccount* cycles) {
  return SetEntry(index, PmpEntry{}, cycles);
}

Result<PmpEntry> PmpFile::GetEntry(int index) const {
  if (index < 0 || index >= kNumEntries) {
    return Error(ErrorCode::kOutOfRange, "PMP index out of range");
  }
  return entries_[static_cast<size_t>(index)];
}

std::optional<AddrRange> PmpFile::EntryRange(int index) const {
  const PmpEntry& entry = entries_[static_cast<size_t>(index)];
  switch (entry.mode) {
    case PmpAddressMode::kOff:
      return std::nullopt;
    case PmpAddressMode::kTor: {
      const uint64_t top = entry.addr << 2;
      const uint64_t bottom =
          index == 0 ? 0 : (entries_[static_cast<size_t>(index - 1)].addr << 2);
      if (top <= bottom) {
        return AddrRange{bottom, 0};
      }
      return AddrRange{bottom, top - bottom};
    }
    case PmpAddressMode::kNa4:
      return AddrRange{entry.addr << 2, 4};
    case PmpAddressMode::kNapot: {
      // addr = (base >> 2) | ((size/2 - 1) >> 2); trailing ones encode size.
      uint64_t a = entry.addr;
      int trailing_ones = 0;
      while ((a & 1) != 0) {
        a >>= 1;
        ++trailing_ones;
      }
      const uint64_t size = 1ULL << (trailing_ones + 3);
      const uint64_t base = (entry.addr & ~((1ULL << trailing_ones) - 1)) << 2;
      return AddrRange{base, size};
    }
  }
  return std::nullopt;
}

Status PmpFile::Check(uint64_t addr, uint64_t size, AccessType access,
                      CycleAccount* cycles) const {
  const CostModel& cost = CostModel::Default();
  for (int i = 0; i < kNumEntries; ++i) {
    if (cycles != nullptr) {
      cycles->Charge(cost.pmp_check_per_entry);
    }
    const std::optional<AddrRange> range = EntryRange(i);
    if (!range.has_value() || range->empty()) {
      continue;
    }
    const AddrRange request{addr, size};
    if (!range->Overlaps(request)) {
      continue;
    }
    // Architectural rule: the access must be entirely contained in the
    // matching entry, otherwise it faults.
    if (!range->Contains(request)) {
      return Error(ErrorCode::kAccessViolation, "PMP partial match");
    }
    if (!entries_[static_cast<size_t>(i)].perms.Allows(access)) {
      return Error(ErrorCode::kAccessViolation, "PMP permission violation");
    }
    return OkStatus();
  }
  return Error(ErrorCode::kAccessViolation, "no matching PMP entry");
}

int PmpFile::used_entries() const {
  int used = 0;
  for (const PmpEntry& entry : entries_) {
    if (entry.mode != PmpAddressMode::kOff) {
      ++used;
    }
  }
  return used;
}

std::string PmpFile::Dump() const {
  std::ostringstream out;
  for (int i = 0; i < kNumEntries; ++i) {
    const PmpEntry& entry = entries_[static_cast<size_t>(i)];
    if (entry.mode == PmpAddressMode::kOff) {
      continue;
    }
    const std::optional<AddrRange> range = EntryRange(i);
    out << "pmp" << i << ": ";
    switch (entry.mode) {
      case PmpAddressMode::kTor:
        out << "TOR  ";
        break;
      case PmpAddressMode::kNa4:
        out << "NA4  ";
        break;
      case PmpAddressMode::kNapot:
        out << "NAPOT";
        break;
      case PmpAddressMode::kOff:
        break;
    }
    if (range.has_value()) {
      out << " [0x" << std::hex << range->base << ", 0x" << range->end() << std::dec << ") ";
    }
    out << entry.perms.ToString() << (entry.locked ? " L" : "") << "\n";
  }
  return out.str();
}

Result<uint64_t> PmpFile::EncodeNapot(uint64_t base, uint64_t size) {
  if (size < 8 || !IsPowerOfTwo(size)) {
    return Error(ErrorCode::kInvalidArgument, "NAPOT size must be a power of two >= 8");
  }
  if (!IsAligned(base, size)) {
    return Error(ErrorCode::kInvalidArgument, "NAPOT base must be size-aligned");
  }
  return (base >> 2) | ((size / 2 - 1) >> 2);
}

}  // namespace tyche
