// Copyright 2026 The Tyche Reproduction Authors.
// Simulated IOMMU: per-device context entries pointing at nested page
// tables. Devices (PCI functions) issue DMA through Translate(); an
// unprogrammed device has no context and every DMA faults -- default deny,
// which is what lets the monitor make I/O domains (§3.1's GPU example)
// verifiably isolated.

#ifndef SRC_HW_IOMMU_H_
#define SRC_HW_IOMMU_H_

#include <cstdint>
#include <map>

#include "src/hw/access.h"
#include "src/hw/cost_model.h"
#include "src/hw/nested_page_table.h"
#include "src/support/status.h"

namespace tyche {

// PCI bus/device/function identifier, encoded as a 16-bit BDF.
struct PciBdf {
  uint16_t value = 0;

  constexpr PciBdf() = default;
  constexpr explicit PciBdf(uint16_t raw) : value(raw) {}
  constexpr PciBdf(uint8_t bus, uint8_t device, uint8_t function)
      : value(static_cast<uint16_t>((bus << 8) | ((device & 0x1f) << 3) | (function & 0x7))) {}

  auto operator<=>(const PciBdf&) const = default;
};

class Iommu {
 public:
  explicit Iommu(CycleAccount* cycles) : cycles_(cycles) {}

  // Binds a device to a translation root (an EPT-format table). Passing
  // nullptr detaches the device (subsequent DMA faults).
  Status AttachDevice(PciBdf bdf, const NestedPageTable* table);
  Status DetachDevice(PciBdf bdf);

  // Translates one DMA access issued by `bdf`.
  Result<Translation> Translate(PciBdf bdf, uint64_t addr, AccessType access) const;

  bool IsAttached(PciBdf bdf) const { return contexts_.contains(bdf); }
  const NestedPageTable* ContextOf(PciBdf bdf) const;

 private:
  CycleAccount* cycles_;
  std::map<PciBdf, const NestedPageTable*> contexts_;
};

}  // namespace tyche

#endif  // SRC_HW_IOMMU_H_
