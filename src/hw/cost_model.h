// Copyright 2026 The Tyche Reproduction Authors.
// Cycle-cost model for the simulated machine.
//
// The paper's prototype runs on bare metal; this reproduction runs on a
// simulator, so absolute wall-clock numbers are meaningless. Instead every
// hardware operation charges simulated cycles against the issuing CPU core,
// and benchmarks report those cycles. Constants are drawn from published
// measurements of the corresponding mechanisms:
//   - VMCALL/VMRESUME round trip ~ 700-1500 cycles (Intel SDM era numbers;
//     the paper's related work, e.g. Hodor/ERIM, reports similar).
//   - VMFUNC EPTP-switch ~ 100-160 cycles -- the paper explicitly cites
//     "fast (100 cycles) domain transitions using VMFUNC" [Hodor, ATC'19].
//   - Process context switch ~ 2000+ cycles (direct cost, excluding cache
//     pollution).

#ifndef SRC_HW_COST_MODEL_H_
#define SRC_HW_COST_MODEL_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace tyche {

struct CostModel {
  // Memory system.
  uint64_t dram_access = 4;            // per access issued by simulated software
  uint64_t tlb_hit = 1;                // translation found in TLB
  uint64_t page_walk_per_level = 20;   // EPT/IOMMU walk, per level touched
  uint64_t tlb_flush = 500;            // full TLB shootdown on one core
  uint64_t cache_flush_per_page = 120; // wbinvd-style flush, charged per 4K page
  uint64_t zero_per_page = 200;        // memset of one 4K page

  // Control transfers.
  uint64_t vmcall_round_trip = 700;    // trap into monitor + resume
  uint64_t vmfunc_switch = 100;        // hardware EPTP switch, no trap
  uint64_t context_switch = 2000;      // OS process switch (baseline)
  uint64_t syscall_round_trip = 150;   // OS syscall (baseline)
  uint64_t smc_round_trip = 900;       // RISC-V ecall into M-mode + mret

  // Protection-state reprogramming.
  uint64_t ept_entry_update = 30;      // one EPT entry write (+ later flush)
  uint64_t pmp_entry_update = 15;      // one PMP CSR write
  uint64_t pmp_check_per_entry = 2;    // sequential match against PMP entries
  uint64_t iommu_entry_update = 40;    // context/page-table entry write

  // Side-channel mitigation: scrubbing micro-architectural state (L1/L2
  // lines, branch predictor) when leaving a domain that asked for it.
  uint64_t microarch_scrub = 1800;

  // Roots of trust.
  uint64_t tpm_extend = 5000;          // PCR extend (LPC-attached TPM is slow)
  uint64_t tpm_quote = 60000;          // quote generation (sign)
  uint64_t sign = 50000;               // monitor attestation signature
  uint64_t hash_per_page = 800;        // SHA-256 of one 4K page

  static const CostModel& Default();
};

// Mutable global cycle account, one per machine (see Machine). Split out so
// the page-table walker and TLB can charge cycles without a machine pointer.
//
// Charges land on cache-line-padded per-thread slots (relaxed fetch_add on a
// slot no other thread writes), so concurrent dispatch threads never bounce a
// shared counter line. cycles() sums the slots; each slot only grows, so the
// sum is monotonic and stays a valid journal tick source even while other
// threads keep charging.
class CycleAccount {
 public:
  void Charge(uint64_t cycles) {
    slots_[SlotIndex()].value.fetch_add(cycles, std::memory_order_relaxed);
  }

  uint64_t cycles() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Slot& slot : slots_) {
      slot.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kSlots = 16;
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };

  static size_t SlotIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kSlots;
    return slot;
  }

  std::array<Slot, kSlots> slots_{};
};

}  // namespace tyche

#endif  // SRC_HW_COST_MODEL_H_
