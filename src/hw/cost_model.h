// Copyright 2026 The Tyche Reproduction Authors.
// Cycle-cost model for the simulated machine.
//
// The paper's prototype runs on bare metal; this reproduction runs on a
// simulator, so absolute wall-clock numbers are meaningless. Instead every
// hardware operation charges simulated cycles against the issuing CPU core,
// and benchmarks report those cycles. Constants are drawn from published
// measurements of the corresponding mechanisms:
//   - VMCALL/VMRESUME round trip ~ 700-1500 cycles (Intel SDM era numbers;
//     the paper's related work, e.g. Hodor/ERIM, reports similar).
//   - VMFUNC EPTP-switch ~ 100-160 cycles -- the paper explicitly cites
//     "fast (100 cycles) domain transitions using VMFUNC" [Hodor, ATC'19].
//   - Process context switch ~ 2000+ cycles (direct cost, excluding cache
//     pollution).

#ifndef SRC_HW_COST_MODEL_H_
#define SRC_HW_COST_MODEL_H_

#include <cstdint>

namespace tyche {

struct CostModel {
  // Memory system.
  uint64_t dram_access = 4;            // per access issued by simulated software
  uint64_t tlb_hit = 1;                // translation found in TLB
  uint64_t page_walk_per_level = 20;   // EPT/IOMMU walk, per level touched
  uint64_t tlb_flush = 500;            // full TLB shootdown on one core
  uint64_t cache_flush_per_page = 120; // wbinvd-style flush, charged per 4K page
  uint64_t zero_per_page = 200;        // memset of one 4K page

  // Control transfers.
  uint64_t vmcall_round_trip = 700;    // trap into monitor + resume
  uint64_t vmfunc_switch = 100;        // hardware EPTP switch, no trap
  uint64_t context_switch = 2000;      // OS process switch (baseline)
  uint64_t syscall_round_trip = 150;   // OS syscall (baseline)
  uint64_t smc_round_trip = 900;       // RISC-V ecall into M-mode + mret

  // Protection-state reprogramming.
  uint64_t ept_entry_update = 30;      // one EPT entry write (+ later flush)
  uint64_t pmp_entry_update = 15;      // one PMP CSR write
  uint64_t pmp_check_per_entry = 2;    // sequential match against PMP entries
  uint64_t iommu_entry_update = 40;    // context/page-table entry write

  // Side-channel mitigation: scrubbing micro-architectural state (L1/L2
  // lines, branch predictor) when leaving a domain that asked for it.
  uint64_t microarch_scrub = 1800;

  // Roots of trust.
  uint64_t tpm_extend = 5000;          // PCR extend (LPC-attached TPM is slow)
  uint64_t tpm_quote = 60000;          // quote generation (sign)
  uint64_t sign = 50000;               // monitor attestation signature
  uint64_t hash_per_page = 800;        // SHA-256 of one 4K page

  static const CostModel& Default();
};

// Mutable global cycle account, one per machine (see Machine). Split out so
// the page-table walker and TLB can charge cycles without a machine pointer.
class CycleAccount {
 public:
  void Charge(uint64_t cycles) { cycles_ += cycles; }
  uint64_t cycles() const { return cycles_; }
  void Reset() { cycles_ = 0; }

 private:
  uint64_t cycles_ = 0;
};

}  // namespace tyche

#endif  // SRC_HW_COST_MODEL_H_
