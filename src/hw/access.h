// Copyright 2026 The Tyche Reproduction Authors.
// Access kinds and permission masks shared by every enforcement mechanism
// (nested page tables, PMP, IOMMU).

#ifndef SRC_HW_ACCESS_H_
#define SRC_HW_ACCESS_H_

#include <cstdint>
#include <string>

namespace tyche {

enum class AccessType : uint8_t {
  kRead,
  kWrite,
  kExecute,
};

// Permission bitmask.
struct Perms {
  static constexpr uint8_t kNone = 0;
  static constexpr uint8_t kRead = 1 << 0;
  static constexpr uint8_t kWrite = 1 << 1;
  static constexpr uint8_t kExec = 1 << 2;
  static constexpr uint8_t kRW = kRead | kWrite;
  static constexpr uint8_t kRX = kRead | kExec;
  static constexpr uint8_t kRWX = kRead | kWrite | kExec;

  uint8_t mask = kNone;

  constexpr Perms() = default;
  constexpr explicit Perms(uint8_t m) : mask(m) {}

  constexpr bool Allows(AccessType access) const {
    switch (access) {
      case AccessType::kRead:
        return (mask & kRead) != 0;
      case AccessType::kWrite:
        return (mask & kWrite) != 0;
      case AccessType::kExecute:
        return (mask & kExec) != 0;
    }
    return false;
  }

  constexpr bool Covers(Perms other) const { return (other.mask & ~mask) == 0; }
  constexpr Perms Intersect(Perms other) const {
    return Perms(static_cast<uint8_t>(mask & other.mask));
  }
  constexpr bool empty() const { return mask == kNone; }

  bool operator==(const Perms& other) const = default;

  std::string ToString() const {
    std::string s;
    s += (mask & kRead) ? 'r' : '-';
    s += (mask & kWrite) ? 'w' : '-';
    s += (mask & kExec) ? 'x' : '-';
    return s;
  }
};

inline const char* AccessTypeName(AccessType access) {
  switch (access) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kExecute:
      return "execute";
  }
  return "?";
}

}  // namespace tyche

#endif  // SRC_HW_ACCESS_H_
