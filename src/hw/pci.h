// Copyright 2026 The Tyche Reproduction Authors.
// Simulated PCI devices. A device is a DMA initiator: everything it reads or
// writes goes through the IOMMU, so the monitor's device capabilities are
// enforceable. Two concrete device models are provided:
//   - DmaEngine: generic copy engine (stands in for NICs, storage).
//   - GpuDevice: a compute device that runs a kernel over an input buffer --
//     the "GPU" of the paper's Figure 2 SaaS scenario.

#ifndef SRC_HW_PCI_H_
#define SRC_HW_PCI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/iommu.h"
#include "src/hw/phys_memory.h"
#include "src/support/status.h"

namespace tyche {

class Machine;

class PciDevice {
 public:
  PciDevice(PciBdf bdf, std::string name) : bdf_(bdf), name_(std::move(name)) {}
  virtual ~PciDevice() = default;

  PciBdf bdf() const { return bdf_; }
  const std::string& name() const { return name_; }

 protected:
  // DMA helpers: translate through the machine's IOMMU, then touch memory.
  Result<std::vector<uint8_t>> DmaRead(Machine* machine, uint64_t addr, uint64_t size);
  Status DmaWrite(Machine* machine, uint64_t addr, std::span<const uint8_t> data);

 private:
  PciBdf bdf_;
  std::string name_;
};

// Generic DMA copy engine.
class DmaEngine : public PciDevice {
 public:
  DmaEngine(PciBdf bdf, std::string name) : PciDevice(bdf, std::move(name)) {}

  // Copies `size` bytes from src to dst, both device-visible addresses.
  Status Copy(Machine* machine, uint64_t src, uint64_t dst, uint64_t size);

  // Copy, then raise a completion interrupt with `vector`. The interrupt is
  // delivered only where the interrupt plane routes it.
  Status CopyAndNotify(Machine* machine, uint64_t src, uint64_t dst, uint64_t size,
                       uint32_t vector);
};

// Compute device: reads an input buffer, applies a trivially checkable
// transform (byte-wise xor + rotate), writes an output buffer. Used by the
// SaaS scenario to show an I/O trust domain collaborating with enclaves.
class GpuDevice : public PciDevice {
 public:
  GpuDevice(PciBdf bdf, std::string name) : PciDevice(bdf, std::move(name)) {}

  Status RunKernel(Machine* machine, uint64_t input, uint64_t output, uint64_t size,
                   uint8_t key);

  // The transform the kernel applies, exposed so verifiers can recompute it.
  static uint8_t Transform(uint8_t byte, uint8_t key) {
    const uint8_t x = byte ^ key;
    return static_cast<uint8_t>((x << 3) | (x >> 5));
  }
};

}  // namespace tyche

#endif  // SRC_HW_PCI_H_
