// Copyright 2026 The Tyche Reproduction Authors.
// The simulated machine: physical memory, CPU cores, IOMMU + PCI devices,
// and a TPM, with one global cycle account.
//
// Every access issued by simulated software goes through CheckedRead /
// CheckedWrite / CheckedFetch, which consult the protection context of the
// issuing core -- the EPT on the x86 machine, the PMP file on the RISC-V
// machine -- exactly like the hardware the paper's monitor programs. Monitor
// mode (VMX-root / M-mode) bypasses those structures, which is precisely the
// monopoly the paper describes: whoever runs at that level controls
// isolation. The reproduction's point is that *only* the isolation monitor
// runs there.

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/interrupts.h"
#include "src/hw/io_pmp.h"
#include "src/hw/iommu.h"
#include "src/hw/nested_page_table.h"
#include "src/hw/pci.h"
#include "src/hw/phys_memory.h"
#include "src/hw/tpm.h"
#include "src/support/status.h"

namespace tyche {

enum class IsaArch : uint8_t {
  kX86_64,
  kRiscV,
};

struct MachineConfig {
  IsaArch arch = IsaArch::kX86_64;
  uint64_t memory_bytes = 64ull << 20;  // 64 MiB
  uint32_t num_cores = 4;
  std::vector<uint8_t> endorsement_seed = {0x42};
};

// Outcome of a checked access: where it landed plus which path resolved it
// (for cost/behaviour assertions in tests).
struct AccessOutcome {
  uint64_t phys_addr = 0;
  bool tlb_hit = false;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  IsaArch arch() const { return config_.arch; }
  const MachineConfig& config() const { return config_; }

  PhysMemory& memory() { return memory_; }
  const PhysMemory& memory() const { return memory_; }

  Cpu& cpu(CoreId id) { return cpus_[id]; }
  const Cpu& cpu(CoreId id) const { return cpus_[id]; }
  uint32_t num_cores() const { return static_cast<uint32_t>(cpus_.size()); }

  Iommu& iommu() { return iommu_; }
  IoPmp& io_pmp() { return io_pmp_; }
  InterruptPlane& interrupts() { return interrupts_; }
  Tpm& tpm() { return tpm_; }

  CycleAccount& cycles() { return cycles_; }
  const CycleAccount& cycles() const { return cycles_; }

  // --- Protection context plumbing (used by the monitor's backends) ---

  // Installs `table` as the active EPT of `core`. `flush_tlb` models a switch
  // without VPID tagging; the VMFUNC fast path passes false.
  void SetCoreEpt(CoreId core, const NestedPageTable* table, bool flush_tlb);
  const NestedPageTable* CoreEpt(CoreId core) const { return core_epts_[core]; }

  // --- Guest paging (the OS's own, UNTRUSTED layer under the monitor's) ---

  // Installs a guest page table (CR3 load). Guest-virtual accesses issued
  // with the *Virt methods below translate through it FIRST, then through
  // the core's protection context -- two-layer enforcement, so a guest
  // mapping cannot resurrect physical access the monitor revoked. Passing
  // nullptr disables paging (guest-virtual == physical).
  void SetCoreGuestPageTable(CoreId core, const NestedPageTable* table);
  const NestedPageTable* CoreGuestPageTable(CoreId core) const {
    return core_guest_pts_[core];
  }

  // Flushes one core's TLB (charged to the cycle account).
  void FlushTlb(CoreId core);

  // --- Software-issued accesses (charged + protection-checked) ---

  Result<AccessOutcome> CheckAccess(CoreId core, uint64_t addr, uint64_t size,
                                    AccessType access);

  Status CheckedRead(CoreId core, uint64_t addr, std::span<uint8_t> out);
  Status CheckedWrite(CoreId core, uint64_t addr, std::span<const uint8_t> data);
  Result<uint64_t> CheckedRead64(CoreId core, uint64_t addr);
  Status CheckedWrite64(CoreId core, uint64_t addr, uint64_t value);
  // Instruction fetch (execute permission).
  Status CheckedFetch(CoreId core, uint64_t addr, uint64_t size);

  // Guest-virtual accesses: translate through the core's guest page table
  // (if installed), then apply the normal protection checks on the
  // resulting physical address. With no guest table these are identical to
  // the physical methods.
  Result<uint64_t> TranslateGuest(CoreId core, uint64_t vaddr, AccessType access);
  Status CheckedReadVirt(CoreId core, uint64_t vaddr, std::span<uint8_t> out);
  Status CheckedWriteVirt(CoreId core, uint64_t vaddr, std::span<const uint8_t> data);
  Result<uint64_t> CheckedRead64Virt(CoreId core, uint64_t vaddr);
  Status CheckedWrite64Virt(CoreId core, uint64_t vaddr, uint64_t value);
  Status CheckedFetchVirt(CoreId core, uint64_t vaddr, uint64_t size);

  // --- Device DMA (checked against the IOMMU) ---

  Status DmaRead(PciBdf bdf, uint64_t addr, std::span<uint8_t> out);
  Status DmaWrite(PciBdf bdf, uint64_t addr, std::span<const uint8_t> data);

  // --- Devices ---

  // Takes ownership. Fails if the BDF is already taken.
  Status AddDevice(std::unique_ptr<PciDevice> device);
  PciDevice* FindDevice(PciBdf bdf);
  const std::vector<std::unique_ptr<PciDevice>>& devices() const { return devices_; }

  // --- Maintenance operations the monitor's revocation policies invoke ---

  // Zeroes a physical range (charged per page).
  Status ZeroRange(uint64_t addr, uint64_t size);
  // Architectural cache flush over a range (pure cost in this model).
  void FlushCacheRange(uint64_t addr, uint64_t size);

  // Measures (SHA-256) a physical range, charging hash cycles.
  Result<Digest> MeasureRange(uint64_t addr, uint64_t size);

 private:
  MachineConfig config_;
  CycleAccount cycles_;
  PhysMemory memory_;
  std::vector<Cpu> cpus_;
  std::vector<const NestedPageTable*> core_epts_;
  std::vector<const NestedPageTable*> core_guest_pts_;
  Iommu iommu_;
  IoPmp io_pmp_;
  InterruptPlane interrupts_;
  Tpm tpm_;
  std::vector<std::unique_ptr<PciDevice>> devices_;
};

}  // namespace tyche

#endif  // SRC_HW_MACHINE_H_
