// Copyright 2026 The Tyche Reproduction Authors.
// Simulated CPU cores.
//
// A core carries: an architectural privilege mode, the identity of the trust
// domain currently executing on it, and a pointer to the protection context
// the hardware consults on every access (a nested page table on the VT-x
// machine, a PMP file on the RISC-V machine). Cores are resources in the
// capability model: the monitor only lets a domain run on cores it owns.

#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include <cstdint>

#include "src/hw/pmp.h"
#include "src/hw/tlb.h"

namespace tyche {

// Architectural privilege modes, unified across the two simulated ISAs.
// kMonitor is VMX-root / M-mode: only the isolation monitor runs there.
enum class PrivilegeMode : uint8_t {
  kUser = 0,
  kSupervisor = 1,
  kMonitor = 3,
};

using CoreId = uint32_t;
using DomainId = uint32_t;

inline constexpr DomainId kInvalidDomain = ~0u;

class Cpu {
 public:
  explicit Cpu(CoreId id) : id_(id) {}

  CoreId id() const { return id_; }

  PrivilegeMode mode() const { return mode_; }
  void set_mode(PrivilegeMode mode) { mode_ = mode; }

  DomainId current_domain() const { return current_domain_; }
  void set_current_domain(DomainId domain) { current_domain_ = domain; }

  // VT-x machine: physical address of the active EPT root (EPTP), or 0 when
  // the core runs unrestricted (monitor mode).
  uint64_t ept_root() const { return ept_root_; }
  void set_ept_root(uint64_t root) { ept_root_ = root; }

  // RISC-V machine: the PMP file consulted on every access from S/U mode.
  PmpFile& pmp() { return pmp_; }
  const PmpFile& pmp() const { return pmp_; }

  Tlb& tlb() { return tlb_; }

  // ASID/VPID tag used to avoid TLB flushes on domain switch where the
  // hardware supports tagging (VMFUNC fast path).
  uint16_t asid() const { return asid_; }
  void set_asid(uint16_t asid) { asid_ = asid; }

 private:
  CoreId id_;
  PrivilegeMode mode_ = PrivilegeMode::kSupervisor;
  DomainId current_domain_ = kInvalidDomain;
  uint64_t ept_root_ = 0;
  uint16_t asid_ = 0;
  PmpFile pmp_;
  Tlb tlb_;
};

}  // namespace tyche

#endif  // SRC_HW_CPU_H_
