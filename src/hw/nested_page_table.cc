// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/nested_page_table.h"

namespace tyche {

Result<NestedPageTable> NestedPageTable::Create(PhysMemory* memory, FrameAllocator* frames,
                                                CycleAccount* cycles) {
  TYCHE_ASSIGN_OR_RETURN(const uint64_t root, frames->Alloc());
  TYCHE_RETURN_IF_ERROR(memory->Zero(root, kPageSize));
  return NestedPageTable(memory, frames, cycles, root);
}

Result<uint64_t> NestedPageTable::WalkToLeafEntry(uint64_t gpa, bool create) {
  uint64_t table = root_;
  for (int level = kLevels - 1; level > 0; --level) {
    const uint64_t slot = table + 8 * IndexAt(gpa, level);
    TYCHE_ASSIGN_OR_RETURN(uint64_t entry, memory_->Read64(slot));
    if ((entry & kValidBit) == 0) {
      if (!create) {
        return Error(ErrorCode::kNotFound, "unmapped intermediate level");
      }
      TYCHE_ASSIGN_OR_RETURN(const uint64_t next, frames_->Alloc());
      TYCHE_RETURN_IF_ERROR(memory_->Zero(next, kPageSize));
      ++table_frames_;
      entry = (next & kAddrMask) | kValidBit;
      TYCHE_RETURN_IF_ERROR(memory_->Write64(slot, entry));
    }
    table = entry & kAddrMask;
  }
  return table + 8 * IndexAt(gpa, 0);
}

Result<uint64_t> NestedPageTable::WalkToLeafEntryConst(uint64_t gpa, int* levels) const {
  uint64_t table = root_;
  *levels = 0;
  for (int level = kLevels - 1; level > 0; --level) {
    ++*levels;
    const uint64_t slot = table + 8 * IndexAt(gpa, level);
    TYCHE_ASSIGN_OR_RETURN(const uint64_t entry, memory_->Read64(slot));
    if ((entry & kValidBit) == 0) {
      return Error(ErrorCode::kNotFound, "unmapped intermediate level");
    }
    table = entry & kAddrMask;
  }
  ++*levels;
  return table + 8 * IndexAt(gpa, 0);
}

Status NestedPageTable::MapPage(uint64_t gpa, uint64_t hpa, Perms perms) {
  if (!IsPageAligned(gpa) || !IsPageAligned(hpa)) {
    return Error(ErrorCode::kInvalidArgument, "unaligned mapping");
  }
  if (perms.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty permissions");
  }
  TYCHE_ASSIGN_OR_RETURN(const uint64_t slot, WalkToLeafEntry(gpa, /*create=*/true));
  TYCHE_ASSIGN_OR_RETURN(const uint64_t existing, memory_->Read64(slot));
  if ((existing & kValidBit) != 0) {
    return Error(ErrorCode::kAlreadyExists, "page already mapped");
  }
  const uint64_t entry =
      (hpa & kAddrMask) | (static_cast<uint64_t>(perms.mask) << kPermShift) | kValidBit;
  TYCHE_RETURN_IF_ERROR(memory_->Write64(slot, entry));
  cycles_->Charge(CostModel::Default().ept_entry_update);
  ++mapped_pages_;
  return OkStatus();
}

Status NestedPageTable::MapRange(uint64_t gpa, uint64_t hpa, uint64_t size, Perms perms) {
  if (!IsPageAligned(size) || size == 0) {
    return Error(ErrorCode::kInvalidArgument, "unaligned or empty range");
  }
  for (uint64_t offset = 0; offset < size; offset += kPageSize) {
    TYCHE_RETURN_IF_ERROR(MapPage(gpa + offset, hpa + offset, perms));
  }
  return OkStatus();
}

Status NestedPageTable::UnmapPage(uint64_t gpa) {
  TYCHE_ASSIGN_OR_RETURN(const uint64_t slot, WalkToLeafEntry(gpa, /*create=*/false));
  TYCHE_ASSIGN_OR_RETURN(const uint64_t entry, memory_->Read64(slot));
  if ((entry & kValidBit) == 0) {
    return Error(ErrorCode::kNotFound, "page not mapped");
  }
  TYCHE_RETURN_IF_ERROR(memory_->Write64(slot, 0));
  cycles_->Charge(CostModel::Default().ept_entry_update);
  --mapped_pages_;
  return OkStatus();
}

Status NestedPageTable::UnmapRange(uint64_t gpa, uint64_t size) {
  for (uint64_t offset = 0; offset < size; offset += kPageSize) {
    TYCHE_RETURN_IF_ERROR(UnmapPage(gpa + offset));
  }
  return OkStatus();
}

Status NestedPageTable::ProtectPage(uint64_t gpa, Perms perms) {
  if (perms.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty permissions; use UnmapPage");
  }
  TYCHE_ASSIGN_OR_RETURN(const uint64_t slot, WalkToLeafEntry(gpa, /*create=*/false));
  TYCHE_ASSIGN_OR_RETURN(const uint64_t entry, memory_->Read64(slot));
  if ((entry & kValidBit) == 0) {
    return Error(ErrorCode::kNotFound, "page not mapped");
  }
  const uint64_t updated = (entry & ~(0x7ULL << kPermShift)) |
                           (static_cast<uint64_t>(perms.mask) << kPermShift);
  TYCHE_RETURN_IF_ERROR(memory_->Write64(slot, updated));
  cycles_->Charge(CostModel::Default().ept_entry_update);
  return OkStatus();
}

Status NestedPageTable::ProtectRange(uint64_t gpa, uint64_t size, Perms perms) {
  for (uint64_t offset = 0; offset < size; offset += kPageSize) {
    TYCHE_RETURN_IF_ERROR(ProtectPage(gpa + offset, perms));
  }
  return OkStatus();
}

Result<Translation> NestedPageTable::Translate(uint64_t gpa, AccessType access) const {
  TYCHE_ASSIGN_OR_RETURN(Translation t, Lookup(gpa));
  if (!t.perms.Allows(access)) {
    return Error(ErrorCode::kAccessViolation, "EPT permission violation");
  }
  return t;
}

Result<Translation> NestedPageTable::Lookup(uint64_t gpa) const {
  int levels = 0;
  auto slot = WalkToLeafEntryConst(gpa, &levels);
  cycles_->Charge(CostModel::Default().page_walk_per_level * static_cast<uint64_t>(levels));
  if (!slot.ok()) {
    return slot.status();
  }
  TYCHE_ASSIGN_OR_RETURN(const uint64_t entry, memory_->Read64(*slot));
  if ((entry & kValidBit) == 0) {
    return Error(ErrorCode::kNotFound, "page not mapped");
  }
  Translation t;
  t.host_addr = (entry & kAddrMask) | (gpa & (kPageSize - 1));
  t.perms = Perms(static_cast<uint8_t>((entry >> kPermShift) & 0x7));
  t.levels_walked = levels;
  return t;
}

namespace {

void ForEachLeaf(const PhysMemory* memory, uint64_t table, int level, uint64_t gpa_prefix,
                 const std::function<void(uint64_t, uint64_t, Perms)>& fn) {
  for (uint64_t i = 0; i < 512; ++i) {
    const auto entry_or = memory->Read64(table + 8 * i);
    if (!entry_or.ok()) {
      continue;
    }
    const uint64_t entry = *entry_or;
    if ((entry & 1) == 0) {
      continue;
    }
    const uint64_t gpa = gpa_prefix | (i << (kPageShift + 9 * level));
    const uint64_t addr = entry & 0x0000fffffffff000ULL;
    if (level == 0) {
      fn(gpa, addr, Perms(static_cast<uint8_t>((entry >> 1) & 0x7)));
    } else {
      ForEachLeaf(memory, addr, level - 1, gpa, fn);
    }
  }
}

}  // namespace

void NestedPageTable::ForEachMapping(
    const std::function<void(uint64_t, uint64_t, Perms)>& fn) const {
  ForEachLeaf(memory_, root_, kLevels - 1, 0, fn);
}

void NestedPageTable::FreeSubtree(uint64_t table_addr, int level) {
  if (level > 0) {
    for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
      const auto entry_or = memory_->Read64(table_addr + 8 * i);
      if (entry_or.ok() && (*entry_or & kValidBit) != 0) {
        FreeSubtree(*entry_or & kAddrMask, level - 1);
      }
    }
  }
  (void)memory_->Zero(table_addr, kPageSize);
  (void)frames_->Free(table_addr);
}

Status NestedPageTable::Destroy() {
  if (destroyed_) {
    return Error(ErrorCode::kFailedPrecondition, "page table already destroyed");
  }
  FreeSubtree(root_, kLevels - 1);
  destroyed_ = true;
  mapped_pages_ = 0;
  table_frames_ = 0;
  return OkStatus();
}

}  // namespace tyche
