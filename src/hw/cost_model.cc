// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/cost_model.h"

namespace tyche {

const CostModel& CostModel::Default() {
  static const CostModel model{};
  return model;
}

}  // namespace tyche
