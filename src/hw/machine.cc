// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/machine.h"

#include "src/support/align.h"
#include "src/support/log.h"

namespace tyche {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.memory_bytes),
      iommu_(&cycles_),
      io_pmp_(&cycles_),
      tpm_(std::span<const uint8_t>(config.endorsement_seed.data(),
                                    config.endorsement_seed.size()),
           &cycles_) {
  cpus_.reserve(config.num_cores);
  for (uint32_t i = 0; i < config.num_cores; ++i) {
    cpus_.emplace_back(i);
  }
  core_epts_.resize(config.num_cores, nullptr);
  core_guest_pts_.resize(config.num_cores, nullptr);
}

void Machine::SetCoreGuestPageTable(CoreId core, const NestedPageTable* table) {
  core_guest_pts_[core] = table;
  // CR3 load: untagged guest translations die.
  cpus_[core].tlb().Flush(&cycles_);
}

Result<uint64_t> Machine::TranslateGuest(CoreId core, uint64_t vaddr, AccessType access) {
  const NestedPageTable* guest = core_guest_pts_[core];
  if (guest == nullptr) {
    return vaddr;  // paging off: virtual == physical
  }
  // NOTE: the guest walker reads page-table frames directly; they live in
  // memory the guest OS owns, so this equals a hardware walk through the
  // domain's own mappings.
  TYCHE_ASSIGN_OR_RETURN(const Translation t, guest->Translate(vaddr, access));
  return t.host_addr;
}

Status Machine::CheckedReadVirt(CoreId core, uint64_t vaddr, std::span<uint8_t> out) {
  // Chunk per guest page: contiguous virtual spans may be physically
  // scattered.
  size_t offset = 0;
  while (offset < out.size()) {
    const uint64_t va = vaddr + offset;
    const size_t in_page = std::min<size_t>(out.size() - offset,
                                            kPageSize - (va & (kPageSize - 1)));
    TYCHE_ASSIGN_OR_RETURN(const uint64_t pa, TranslateGuest(core, va, AccessType::kRead));
    TYCHE_RETURN_IF_ERROR(CheckedRead(core, pa, out.subspan(offset, in_page)));
    offset += in_page;
  }
  return OkStatus();
}

Status Machine::CheckedWriteVirt(CoreId core, uint64_t vaddr,
                                 std::span<const uint8_t> data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const uint64_t va = vaddr + offset;
    const size_t in_page = std::min<size_t>(data.size() - offset,
                                            kPageSize - (va & (kPageSize - 1)));
    TYCHE_ASSIGN_OR_RETURN(const uint64_t pa,
                           TranslateGuest(core, va, AccessType::kWrite));
    TYCHE_RETURN_IF_ERROR(CheckedWrite(core, pa, data.subspan(offset, in_page)));
    offset += in_page;
  }
  return OkStatus();
}

Result<uint64_t> Machine::CheckedRead64Virt(CoreId core, uint64_t vaddr) {
  uint64_t value = 0;
  TYCHE_RETURN_IF_ERROR(CheckedReadVirt(
      core, vaddr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value), 8)));
  return value;
}

Status Machine::CheckedWrite64Virt(CoreId core, uint64_t vaddr, uint64_t value) {
  return CheckedWriteVirt(
      core, vaddr,
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), 8));
}

Status Machine::CheckedFetchVirt(CoreId core, uint64_t vaddr, uint64_t size) {
  TYCHE_ASSIGN_OR_RETURN(const uint64_t pa,
                         TranslateGuest(core, vaddr, AccessType::kExecute));
  return CheckedFetch(core, pa, size);
}

void Machine::SetCoreEpt(CoreId core, const NestedPageTable* table, bool flush_tlb) {
  core_epts_[core] = table;
  cpus_[core].set_ept_root(table != nullptr ? table->root() : 0);
  if (flush_tlb) {
    cpus_[core].tlb().Flush(&cycles_);
  }
}

void Machine::FlushTlb(CoreId core) { cpus_[core].tlb().Flush(&cycles_); }

Result<AccessOutcome> Machine::CheckAccess(CoreId core, uint64_t addr, uint64_t size,
                                           AccessType access) {
  if (size == 0 || !memory_.ValidRange(addr, size)) {
    return Error(ErrorCode::kOutOfRange, "access outside physical memory");
  }
  Cpu& cpu = cpus_[core];
  cycles_.Charge(CostModel::Default().dram_access);

  // Monitor mode (VMX-root / M-mode) is architecturally unrestricted.
  if (cpu.mode() == PrivilegeMode::kMonitor) {
    return AccessOutcome{addr, false};
  }

  if (config_.arch == IsaArch::kRiscV) {
    TYCHE_RETURN_IF_ERROR(cpu.pmp().Check(addr, size, access, &cycles_));
    return AccessOutcome{addr, false};
  }

  // x86: EPT-protected. A core with no EPT installed has no access at all
  // (the monitor installs an EPT before resuming any domain).
  const NestedPageTable* ept = core_epts_[core];
  if (ept == nullptr) {
    return Error(ErrorCode::kAccessViolation, "no protection context installed");
  }

  // Accesses may straddle pages; check each touched page.
  const uint64_t first_page = AlignDown(addr, kPageSize);
  const uint64_t last_page = AlignDown(addr + size - 1, kPageSize);
  AccessOutcome outcome;
  outcome.tlb_hit = true;
  for (uint64_t page = first_page; page <= last_page; page += kPageSize) {
    uint64_t frame = 0;
    Perms perms;
    if (cpu.tlb().Lookup(page, cpu.asid(), &frame, &perms)) {
      cycles_.Charge(CostModel::Default().tlb_hit);
      if (!perms.Allows(access)) {
        return Error(ErrorCode::kAccessViolation, "EPT permission violation (TLB)");
      }
    } else {
      outcome.tlb_hit = false;
      auto translation = ept->Translate(page, access);
      if (!translation.ok()) {
        return translation.status();
      }
      frame = translation->host_addr;
      cpu.tlb().Insert(page, cpu.asid(), frame, translation->perms);
    }
    if (page == first_page) {
      outcome.phys_addr = frame + (addr - first_page);
    }
  }
  return outcome;
}

Status Machine::CheckedRead(CoreId core, uint64_t addr, std::span<uint8_t> out) {
  TYCHE_ASSIGN_OR_RETURN(const AccessOutcome outcome,
                         CheckAccess(core, addr, out.size(), AccessType::kRead));
  return memory_.Read(outcome.phys_addr, out);
}

Status Machine::CheckedWrite(CoreId core, uint64_t addr, std::span<const uint8_t> data) {
  TYCHE_ASSIGN_OR_RETURN(const AccessOutcome outcome,
                         CheckAccess(core, addr, data.size(), AccessType::kWrite));
  return memory_.Write(outcome.phys_addr, data);
}

Result<uint64_t> Machine::CheckedRead64(CoreId core, uint64_t addr) {
  TYCHE_ASSIGN_OR_RETURN(const AccessOutcome outcome,
                         CheckAccess(core, addr, 8, AccessType::kRead));
  return memory_.Read64(outcome.phys_addr);
}

Status Machine::CheckedWrite64(CoreId core, uint64_t addr, uint64_t value) {
  TYCHE_ASSIGN_OR_RETURN(const AccessOutcome outcome,
                         CheckAccess(core, addr, 8, AccessType::kWrite));
  return memory_.Write64(outcome.phys_addr, value);
}

Status Machine::CheckedFetch(CoreId core, uint64_t addr, uint64_t size) {
  return CheckAccess(core, addr, size, AccessType::kExecute).status();
}

Status Machine::DmaRead(PciBdf bdf, uint64_t addr, std::span<uint8_t> out) {
  cycles_.Charge(CostModel::Default().dram_access);
  if (config_.arch == IsaArch::kRiscV) {
    TYCHE_RETURN_IF_ERROR(io_pmp_.Check(bdf, addr, out.size(), AccessType::kRead));
    return memory_.Read(addr, out);
  }
  TYCHE_ASSIGN_OR_RETURN(const Translation t,
                         iommu_.Translate(bdf, addr, AccessType::kRead));
  return memory_.Read(t.host_addr, out);
}

Status Machine::DmaWrite(PciBdf bdf, uint64_t addr, std::span<const uint8_t> data) {
  cycles_.Charge(CostModel::Default().dram_access);
  if (config_.arch == IsaArch::kRiscV) {
    TYCHE_RETURN_IF_ERROR(io_pmp_.Check(bdf, addr, data.size(), AccessType::kWrite));
    return memory_.Write(addr, data);
  }
  TYCHE_ASSIGN_OR_RETURN(const Translation t,
                         iommu_.Translate(bdf, addr, AccessType::kWrite));
  return memory_.Write(t.host_addr, data);
}

Status Machine::AddDevice(std::unique_ptr<PciDevice> device) {
  if (FindDevice(device->bdf()) != nullptr) {
    return Error(ErrorCode::kAlreadyExists, "BDF already present");
  }
  devices_.push_back(std::move(device));
  return OkStatus();
}

PciDevice* Machine::FindDevice(PciBdf bdf) {
  for (const auto& device : devices_) {
    if (device->bdf() == bdf) {
      return device.get();
    }
  }
  return nullptr;
}

Status Machine::ZeroRange(uint64_t addr, uint64_t size) {
  TYCHE_RETURN_IF_ERROR(memory_.Zero(addr, size));
  const uint64_t pages = AlignUp(size, kPageSize) / kPageSize;
  cycles_.Charge(CostModel::Default().zero_per_page * pages);
  return OkStatus();
}

void Machine::FlushCacheRange(uint64_t addr, uint64_t size) {
  (void)addr;
  const uint64_t pages = AlignUp(size, kPageSize) / kPageSize;
  cycles_.Charge(CostModel::Default().cache_flush_per_page * pages);
}

Result<Digest> Machine::MeasureRange(uint64_t addr, uint64_t size) {
  TYCHE_ASSIGN_OR_RETURN(const std::span<const uint8_t> view, memory_.View(addr, size));
  const uint64_t pages = AlignUp(size, kPageSize) / kPageSize;
  cycles_.Charge(CostModel::Default().hash_per_page * pages);
  return Sha256::Hash(view);
}

}  // namespace tyche
