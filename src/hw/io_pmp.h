// Copyright 2026 The Tyche Reproduction Authors.
// IOPMP: per-device PMP files, the RISC-V machine's analogue of the IOMMU.
// DMA from a device is checked against the device's PMP file; a device with
// no file configured is denied (default deny, like the IOMMU).

#ifndef SRC_HW_IO_PMP_H_
#define SRC_HW_IO_PMP_H_

#include <map>

#include "src/hw/iommu.h"
#include "src/hw/pmp.h"

namespace tyche {

class IoPmp {
 public:
  explicit IoPmp(CycleAccount* cycles) : cycles_(cycles) {}

  // Returns the device's PMP file, creating an empty (deny-all) one.
  PmpFile& FileFor(PciBdf bdf) { return files_[bdf]; }

  void Remove(PciBdf bdf) { files_.erase(bdf); }

  Status Check(PciBdf bdf, uint64_t addr, uint64_t size, AccessType access) const {
    const auto it = files_.find(bdf);
    if (it == files_.end()) {
      return Error(ErrorCode::kIommuFault, "device has no IOPMP context");
    }
    Status status = it->second.Check(addr, size, access, cycles_);
    if (!status.ok()) {
      return Error(ErrorCode::kIommuFault, status.message());
    }
    return OkStatus();
  }

 private:
  CycleAccount* cycles_;
  std::map<PciBdf, PmpFile> files_;
};

}  // namespace tyche

#endif  // SRC_HW_IO_PMP_H_
