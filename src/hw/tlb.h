// Copyright 2026 The Tyche Reproduction Authors.
// A small translation cache in front of the nested page table. Exists to
// model the two costs that matter for the paper's transition claims: TLB
// hits make steady-state access cheap, and revocation/permission changes
// force flushes whose cost the monitor's revocation policies must absorb.

#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <array>
#include <cstdint>

#include "src/hw/access.h"
#include "src/hw/cost_model.h"
#include "src/support/align.h"

namespace tyche {

class Tlb {
 public:
  static constexpr int kEntries = 64;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t flushes = 0;
  };

  // Looks up a translation for `page` (page-aligned). Returns true and fills
  // outputs on hit.
  bool Lookup(uint64_t page, uint16_t asid, uint64_t* out_frame, Perms* out_perms) {
    Entry& e = entries_[SlotFor(page, asid)];
    if (e.valid && e.page == page && e.asid == asid) {
      ++stats_.hits;
      *out_frame = e.frame;
      *out_perms = e.perms;
      return true;
    }
    ++stats_.misses;
    return false;
  }

  void Insert(uint64_t page, uint16_t asid, uint64_t frame, Perms perms) {
    Entry& e = entries_[SlotFor(page, asid)];
    e.valid = true;
    e.page = page;
    e.asid = asid;
    e.frame = frame;
    e.perms = perms;
  }

  // Full flush (e.g. EPT modified without VPID tagging).
  void Flush(CycleAccount* cycles) {
    for (Entry& e : entries_) {
      e.valid = false;
    }
    ++stats_.flushes;
    if (cycles != nullptr) {
      cycles->Charge(CostModel::Default().tlb_flush);
    }
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct Entry {
    bool valid = false;
    uint16_t asid = 0;
    uint64_t page = 0;
    uint64_t frame = 0;
    Perms perms;
  };

  static size_t SlotFor(uint64_t page, uint16_t asid) {
    return ((page >> kPageShift) ^ (asid * 0x9e37ULL)) % kEntries;
  }

  std::array<Entry, kEntries> entries_{};
  Stats stats_;
};

}  // namespace tyche

#endif  // SRC_HW_TLB_H_
