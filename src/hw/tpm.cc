// Copyright 2026 The Tyche Reproduction Authors.

#include "src/hw/tpm.h"

namespace tyche {

Tpm::Tpm(std::span<const uint8_t> endorsement_seed, CycleAccount* cycles)
    : pcrs_(kNumPcrs), key_(DeriveKeyPair(endorsement_seed)), cycles_(cycles) {}

Status Tpm::Extend(uint32_t pcr_index, const Digest& digest, std::string description) {
  if (pcr_index >= kNumPcrs) {
    return Error(ErrorCode::kOutOfRange, "PCR index out of range");
  }
  Sha256 ctx;
  ctx.Update(std::span<const uint8_t>(pcrs_[pcr_index].bytes.data(),
                                      pcrs_[pcr_index].bytes.size()));
  ctx.Update(std::span<const uint8_t>(digest.bytes.data(), digest.bytes.size()));
  pcrs_[pcr_index] = ctx.Finalize();
  events_.push_back(TpmEvent{pcr_index, digest, std::move(description)});
  if (cycles_ != nullptr) {
    cycles_->Charge(CostModel::Default().tpm_extend);
  }
  return OkStatus();
}

void Tpm::Reset() {
  pcrs_.assign(kNumPcrs, Digest{});
  events_.clear();
}

Result<Digest> Tpm::ReadPcr(uint32_t pcr_index) const {
  if (pcr_index >= kNumPcrs) {
    return Error(ErrorCode::kOutOfRange, "PCR index out of range");
  }
  return pcrs_[pcr_index];
}

Digest Tpm::QuoteDigest(uint64_t nonce, uint32_t pcr_mask,
                        const std::vector<Digest>& pcr_values) {
  Sha256 ctx;
  ctx.Update(std::string_view("tpm-quote-v1"));
  ctx.UpdateValue(nonce);
  ctx.UpdateValue(pcr_mask);
  for (const Digest& value : pcr_values) {
    ctx.Update(std::span<const uint8_t>(value.bytes.data(), value.bytes.size()));
  }
  return ctx.Finalize();
}

Result<TpmQuote> Tpm::Quote(uint64_t nonce, uint32_t pcr_mask) const {
  TpmQuote quote;
  quote.nonce = nonce;
  quote.pcr_mask = pcr_mask;
  for (uint32_t i = 0; i < kNumPcrs; ++i) {
    if ((pcr_mask & (1u << i)) != 0) {
      quote.pcr_values.push_back(pcrs_[i]);
    }
  }
  quote.quote_digest = QuoteDigest(nonce, pcr_mask, quote.pcr_values);
  quote.signature = SchnorrSign(key_.priv, quote.quote_digest);
  if (cycles_ != nullptr) {
    cycles_->Charge(CostModel::Default().tpm_quote);
  }
  return quote;
}

bool Tpm::VerifyQuote(const TpmQuote& quote, const SchnorrPublicKey& key) {
  const Digest expected = QuoteDigest(quote.nonce, quote.pcr_mask, quote.pcr_values);
  if (expected != quote.quote_digest) {
    return false;
  }
  return SchnorrVerify(key, quote.quote_digest, quote.signature);
}

}  // namespace tyche
