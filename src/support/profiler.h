// Copyright 2026 The Tyche Reproduction Authors.
// Phase-level dispatch profiler (DESIGN.md §6 "Phase attribution &
// watchdog"). PR 6 made a dispatch observable from the outside -- one
// TraceEntry says an op took 40ns. This layer opens the inside: WHERE the
// nanoseconds went, split into a small fixed phase taxonomy:
//
//   api_lock_wait    blocking on the dispatch-level RW lock (contended only)
//   shard_lock_wait  blocking on a per-domain shard lock (contended only)
//   engine           capability-engine mutation / query time
//   backend          hardware projection (VT-x / PMP) time
//   journal          audit-journal append, including the group-commit wait
//   telemetry        trace-ring + histogram recording overhead (measured
//                    OUTSIDE the e2e window and SAMPLED 1-in-16, because
//                    the measurement itself costs two clock reads)
//   other            residual boundary work (arg staging, caller resolution,
//                    guest-memory copies, attestation serialization, ...)
//
// The accounting is CONTINUOUS: a per-thread scratch window opens at the
// dispatch start timestamp, every phase switch charges the elapsed time to
// the phase being left, and the window closes on the same clock read that
// produces the TraceEntry duration. Sum over the window phases therefore
// equals the end-to-end latency exactly (bench_profile gates the ratio at
// +/-10% to catch accounting regressions). The telemetry phase is recorded
// detached because it runs after the e2e clock stops.
//
// Cost model: ScopedPhase is one bare TLS load when no window is open (the
// profiler off / serial production case), and two steady-clock reads when
// one is. Samples land in per-op x per-phase log2 histograms striped over
// the same per-thread cells as StripedCounter, so eight dispatching cores
// never bounce a bucket line. The whole feature sits behind a kill switch
// (set_enabled) mirroring the telemetry switches; storage (~1.2 MiB) is
// allocated on first enable, never on the record path.
//
// Exemplars: every (op, phase) keeps its slowest sample's trace span id and
// steady-clock timestamp, so a histogram outlier is clickable into the
// Chrome trace (tools/trace_export joins them as instant events).

#ifndef SRC_SUPPORT_PROFILER_H_
#define SRC_SUPPORT_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/support/metrics.h"
#include "src/support/telemetry.h"

namespace tyche {

// The phase taxonomy. Small and closed on purpose: phases are histogram
// dimensions, and the residual bucket keeps the sum-reconciliation property
// without enumerating every boundary activity.
enum class DispatchPhase : uint8_t {
  kApiLockWait = 0,
  kShardLockWait,
  kEngine,
  kBackend,
  kJournal,
  kTelemetry,
  kOther,
  kPhaseCount,  // sentinel
};

inline constexpr size_t kDispatchPhaseCount =
    static_cast<size_t>(DispatchPhase::kPhaseCount);

// Stable lowercase token per phase ("api_lock_wait", ...), used as the
// Prometheus label value and the folded-stack frame name.
const char* DispatchPhaseName(DispatchPhase phase);

inline uint64_t ProfilerNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

namespace profiler_internal {

// Per-thread phase window. Constant-initialized (all zero) so the hot-path
// "is a window open" check is a bare TLS load with no init guard -- the
// same trick metrics_internal::tls_stripe_plus1 uses.
struct PhaseScratch {
  bool active;       // a dispatch window is open on this thread
  uint8_t current;   // DispatchPhase currently accumulating
  uint64_t last_ns;  // steady-clock ns when `current` began
  uint64_t ns[kDispatchPhaseCount];
};

extern thread_local PhaseScratch tls_scratch;

}  // namespace profiler_internal

// RAII phase switch. When no window is open on this thread (profiler off,
// or code reached outside Dispatch()) construction is a TLS load and a
// predicted branch. When one is, entry charges the elapsed time to the
// phase being left and exit restores it, so nesting attributes correctly:
// a journal append inside a backend-apply region charges journal time to
// kJournal and the surrounding time to kBackend.
class ScopedPhase {
 public:
  explicit ScopedPhase(DispatchPhase phase) {
    auto& scratch = profiler_internal::tls_scratch;
    if (!scratch.active) [[likely]] {
      prev_ = kInactive;
      return;
    }
    prev_ = scratch.current;
    Switch(scratch, static_cast<uint8_t>(phase));
  }

  ~ScopedPhase() {
    if (prev_ == kInactive) [[likely]] {
      return;
    }
    Switch(profiler_internal::tls_scratch, prev_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  static constexpr uint8_t kInactive = 0xff;

  static void Switch(profiler_internal::PhaseScratch& scratch, uint8_t next) {
    const uint64_t now = ProfilerNowNs();
    scratch.ns[scratch.current] += now - scratch.last_ns;
    scratch.last_ns = now;
    scratch.current = next;
  }

  uint8_t prev_;
};

// Per-op x per-phase log2 latency histograms with striped atomic cells plus
// slowest-sample exemplars. One instance per Monitor; the scratch window is
// per-thread and global, so nested monitors on one thread are not supported
// (BeginWindow refuses while a window is open).
class DispatchProfiler {
 public:
  explicit DispatchProfiler(size_t op_count);

  // Kill switch. First enable allocates the sample storage; disabling keeps
  // it (cheap re-enable, and in-flight windows still have cells to land in).
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Opens the phase window on the calling thread at `start_ns` (the same
  // clock read the dispatcher uses for the TraceEntry). Returns false --
  // and records nothing -- when disabled or a window is already open.
  bool BeginWindow(uint64_t start_ns);

  // Closes the window at `end_ns` (again the shared clock read), charging
  // the open tail to the current phase, and records one sample per phase
  // with nonzero accumulated time. Call iff BeginWindow returned true.
  void EndWindow(uint16_t op, uint64_t span, uint64_t end_ns);

  // Records a sample measured outside any window (the telemetry-overhead
  // phase, which runs after the e2e clock stops).
  void RecordDetached(uint16_t op, DispatchPhase phase, uint64_t ns, uint64_t span,
                      uint64_t ts_ns);

  // Aggregated view of one (op, phase) histogram: log2 buckets in
  // HistogramSnapshot shape (trailing empty buckets trimmed), stripe cells
  // summed. Zero-filled when the op is out of range or nothing recorded.
  HistogramSnapshot PhaseSnapshot(uint16_t op, DispatchPhase phase) const;

  struct ExemplarSample {
    uint64_t ns = 0;     // the slowest sample seen (0 = none yet)
    uint64_t span = 0;   // its dispatch span id
    uint64_t ts_ns = 0;  // steady-clock ns it was recorded at
  };
  ExemplarSample Exemplar(uint16_t op, DispatchPhase phase) const;

  size_t op_count() const { return op_count_; }

  // Total samples recorded across every op and phase (cheap liveness probe
  // for tools and tests).
  uint64_t TotalSamples() const;

  // Clears samples and exemplars; storage and the enable switch stay.
  void Reset();

 private:
  // Cell layout per (stripe, op, phase): kBucketSlots bucket counters then
  // one sum-of-ns slot.
  static constexpr size_t kBucketSlots = LatencyHistogram::kBuckets;
  static constexpr size_t kSlots = kBucketSlots + 1;

  struct ExemplarCell {
    std::atomic<uint64_t> max_ns{0};
    uint64_t span = 0;   // guarded by exemplar_mu_
    uint64_t ts_ns = 0;  // guarded by exemplar_mu_
  };

  size_t CellBase(size_t stripe, size_t op, size_t phase) const {
    return ((stripe * op_count_ + op) * kDispatchPhaseCount + phase) * kSlots;
  }

  void RecordSample(uint16_t op, size_t phase, uint64_t ns, uint64_t span,
                    uint64_t ts_ns);
  void MaybeUpdateExemplar(ExemplarCell& cell, uint64_t ns, uint64_t span,
                           uint64_t ts_ns);

  const size_t op_count_;
  std::atomic<bool> enabled_{false};
  // Storage pointer is written once (under storage_mu_) and read with an
  // acquire load on the record path; null until the first enable.
  std::atomic<std::atomic<uint64_t>*> cells_{nullptr};
  std::mutex storage_mu_;
  std::unique_ptr<std::atomic<uint64_t>[]> cell_storage_;
  std::unique_ptr<ExemplarCell[]> exemplars_;
  mutable std::mutex exemplar_mu_;  // guards ExemplarCell span/ts pairs
};

// Folded-stack rendering for flamegraph.pl: one "op;phase weight" line per
// (op, phase) with samples, weight = accumulated nanoseconds. Deterministic
// order (op index, then phase index).
std::string ExportFoldedStacks(const DispatchProfiler& profiler,
                               const std::function<std::string(uint16_t)>& op_name);

// Human-readable attribution table: the top `top_n` (op, phase) cells by
// accumulated time, with count, total, mean, and share of all profiled time.
std::string ExportAttributionTable(const DispatchProfiler& profiler,
                                   const std::function<std::string(uint16_t)>& op_name,
                                   size_t top_n);

}  // namespace tyche

#endif  // SRC_SUPPORT_PROFILER_H_
