// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/snapshot.h"

#include <cstring>

namespace tyche {

namespace {

constexpr char kMagic[4] = {'T', 'Y', 'S', 'N'};
constexpr uint32_t kVersion = 1;

void AppendU32(std::vector<uint8_t>* out, uint32_t value) {
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

}  // namespace

Digest SnapshotDigest(std::span<const uint8_t> bytes) {
  return Sha256::Hash(bytes);
}

bool SectionReader::ReadDigest(Digest* digest) {
  if (pos_ + digest->bytes.size() > bytes_.size()) {
    return false;
  }
  std::memcpy(digest->bytes.data(), bytes_.data() + pos_, digest->bytes.size());
  pos_ += digest->bytes.size();
  return true;
}

bool SectionReader::ReadString(std::string* value) {
  uint32_t length = 0;
  if (!Read(&length) || pos_ + length > bytes_.size()) {
    return false;
  }
  value->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), length);
  pos_ += length;
  return true;
}

void SnapshotWriter::AddSection(uint32_t tag, std::vector<uint8_t> body) {
  sections_.push_back(Section{tag, std::move(body)});
}

std::vector<uint8_t> SnapshotWriter::Finish() const {
  std::vector<uint8_t> out;
  size_t total = sizeof(kMagic) + 2 * sizeof(uint32_t) + 32;
  for (const Section& section : sections_) {
    total += 2 * sizeof(uint32_t) + section.body.size();
  }
  out.reserve(total);
  for (const char c : kMagic) {
    out.push_back(static_cast<uint8_t>(c));
  }
  AppendU32(&out, kVersion);
  AppendU32(&out, static_cast<uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    AppendU32(&out, section.tag);
    AppendU32(&out, static_cast<uint32_t>(section.body.size()));
    out.insert(out.end(), section.body.begin(), section.body.end());
  }
  const Digest commitment = Sha256::Hash(std::span<const uint8_t>(out.data(), out.size()));
  out.insert(out.end(), commitment.bytes.begin(), commitment.bytes.end());
  return out;
}

Result<SnapshotView> SnapshotView::Parse(std::span<const uint8_t> bytes) {
  constexpr size_t kHeader = sizeof(kMagic) + 2 * sizeof(uint32_t);
  constexpr size_t kCommitment = 32;
  if (bytes.size() < kHeader + kCommitment ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Error(ErrorCode::kInvalidArgument, "snapshot: bad magic or truncated");
  }
  auto read_u32 = [&bytes](size_t pos) {
    uint32_t value = 0;
    for (size_t i = 0; i < sizeof(uint32_t); ++i) {
      value |= static_cast<uint32_t>(bytes[pos + i]) << (8 * i);
    }
    return value;
  };
  if (read_u32(sizeof(kMagic)) != kVersion) {
    return Error(ErrorCode::kInvalidArgument, "snapshot: unsupported version");
  }
  // Self-check first: the trailing commitment must match the preceding bytes.
  const size_t body_end = bytes.size() - kCommitment;
  Digest stored;
  std::memcpy(stored.bytes.data(), bytes.data() + body_end, kCommitment);
  const Digest computed = Sha256::Hash(bytes.subspan(0, body_end));
  if (stored != computed) {
    return Error(ErrorCode::kInvalidArgument, "snapshot: commitment mismatch");
  }
  const uint32_t section_count = read_u32(sizeof(kMagic) + sizeof(uint32_t));
  if (section_count > bytes.size()) {
    return Error(ErrorCode::kInvalidArgument, "snapshot: implausible section count");
  }
  SnapshotView view;
  size_t pos = kHeader;
  for (uint32_t i = 0; i < section_count; ++i) {
    if (pos + 2 * sizeof(uint32_t) > body_end) {
      return Error(ErrorCode::kInvalidArgument, "snapshot: truncated section header");
    }
    const uint32_t tag = read_u32(pos);
    const uint32_t length = read_u32(pos + sizeof(uint32_t));
    pos += 2 * sizeof(uint32_t);
    if (pos + length > body_end) {
      return Error(ErrorCode::kInvalidArgument, "snapshot: truncated section body");
    }
    for (const Entry& entry : view.sections_) {
      if (entry.tag == tag) {
        return Error(ErrorCode::kInvalidArgument, "snapshot: duplicate section tag");
      }
    }
    view.sections_.push_back(Entry{tag, bytes.subspan(pos, length)});
    pos += length;
  }
  if (pos != body_end) {
    return Error(ErrorCode::kInvalidArgument, "snapshot: trailing bytes");
  }
  return view;
}

Result<std::span<const uint8_t>> SnapshotView::Section(uint32_t tag) const {
  for (const Entry& entry : sections_) {
    if (entry.tag == tag) {
      return entry.body;
    }
  }
  return Error(ErrorCode::kNotFound,
               "snapshot: missing section " + std::to_string(tag));
}

}  // namespace tyche
