// Copyright 2026 The Tyche Reproduction Authors.
// Post-mortem flight recorder (DESIGN.md §6 "Metrics & export").
//
// When something goes wrong at the dispatch boundary -- a typed error
// surfaces to the caller, a fault-injection site fires, or the monitor
// comes back through Recover() -- the interesting state is what happened
// JUST BEFORE: the last few trace entries and how the counters moved since
// the previous incident. The flight recorder captures exactly that into a
// fixed ring of records, atomically under one mutex, dumpable as JSON for
// bug reports and CI artifacts.
//
// Hot-path discipline: dispatch errors are routine (an empty interrupt
// queue returns kNotFound thousands of times per second in the benches), so
// OnDispatchError() deduplicates by (op, error): the FIRST occurrence of
// each distinct failure is captured, repeats cost two relaxed loads and a
// compare. Fault-site and recovery captures are rare and always recorded.

#ifndef SRC_SUPPORT_FLIGHT_RECORDER_H_
#define SRC_SUPPORT_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/support/metrics.h"
#include "src/support/telemetry.h"

namespace tyche {

struct FlightRecord {
  uint64_t id = 0;            // capture sequence number, from 0
  std::string reason;         // "dispatch_error" | "fault_site" | "recovery"
  uint16_t op = 0;            // ApiOp at the boundary (~0 when not a dispatch)
  uint64_t span = 0;          // causal span of the failing call (0 = none)
  uint64_t error = 0;         // ErrorCode surfaced (0 for recovery captures)
  std::string detail;         // fault site name, recovery summary, ...
  std::vector<TraceEntry> trace;  // last-N ring entries at capture, oldest first
  // Scalar metrics that CHANGED since the previous capture (or since the
  // recorder was created/cleared), as (series name, delta).
  std::vector<std::pair<std::string, int64_t>> metrics_delta;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 16;  // post-mortem records kept
  static constexpr size_t kDefaultLastN = 64;     // trace entries per record

  // Both sources are borrowed and must outlive the recorder. Either may be
  // null (captures then omit that section).
  FlightRecorder(const TraceRing* ring, const MetricsRegistry* registry,
                 size_t capacity = kDefaultCapacity, size_t last_n = kDefaultLastN);

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Dispatch-error trigger: captures the first occurrence of each distinct
  // (op, error) pair since the last Clear(). Returns true if a record was
  // captured. Safe and cheap to call on every failing dispatch.
  bool OnDispatchError(uint16_t op, uint64_t span, uint64_t error);

  // Unconditional capture for rare triggers (fault-injection hit, recovery).
  void Capture(const std::string& reason, uint16_t op, uint64_t span, uint64_t error,
               const std::string& detail);

  // Oldest-first copy of the retained records.
  std::vector<FlightRecord> Snapshot() const;
  size_t size() const;
  uint64_t captures() const { return captures_.load(std::memory_order_relaxed); }

  // Drops all records and resets the dispatch-error dedup filter.
  void Clear();

  // JSON array of record objects (trace entries inline), for artifacts.
  std::string DumpJson(const std::function<std::string(uint16_t)>& op_name) const;

 private:
  void CaptureLocked(const std::string& reason, uint16_t op, uint64_t span,
                     uint64_t error, const std::string& detail);

  const TraceRing* ring_;
  const MetricsRegistry* registry_;
  const size_t capacity_;
  const size_t last_n_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> captures_{0};

  // Dedup filter: slot = hash(op, error) % size, holding key+1 (0 = empty).
  // Collisions only mean an extra capture -- correctness is unaffected.
  static constexpr size_t kDedupSlots = 256;
  std::array<std::atomic<uint64_t>, kDedupSlots> seen_{};

  mutable std::mutex mu_;
  std::deque<FlightRecord> records_;
  std::map<std::string, uint64_t> last_values_;  // scalar baseline for deltas
};

}  // namespace tyche

#endif  // SRC_SUPPORT_FLIGHT_RECORDER_H_
