// Copyright 2026 The Tyche Reproduction Authors.
// Minimal leveled logging. The monitor logs policy decisions at kDebug and
// security-relevant rejections at kWarn; tests can capture and assert on them.

#ifndef SRC_SUPPORT_LOG_H_
#define SRC_SUPPORT_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace tyche {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global log configuration. Defaults: level kWarn, writing to stderr.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Replaces the output sink (e.g. a capturing sink in tests). Passing
  // nullptr restores the default stderr sink.
  void set_sink(Sink sink);

  // True while the default stderr sink is installed (i.e. no capturing sink
  // is active). Lets tests assert the restore semantics of set_sink(nullptr)
  // without intercepting stderr.
  bool is_default_sink() const { return default_sink_; }

  void Write(LogLevel level, const std::string& message);

 private:
  Logger();
  static Sink DefaultSink();

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  bool default_sink_ = true;
};

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define TYCHE_LOG(severity)                                              \
  if (static_cast<int>(::tyche::LogLevel::severity) <                    \
      static_cast<int>(::tyche::Logger::Get().level()))                  \
    ;                                                                    \
  else                                                                   \
    ::tyche::log_internal::LogMessage(::tyche::LogLevel::severity,       \
                                      __FILE__, __LINE__)                \
        .stream()

}  // namespace tyche

#endif  // SRC_SUPPORT_LOG_H_
