// Copyright 2026 The Tyche Reproduction Authors.
// Chrome trace_event exporter (DESIGN.md §6 "Metrics & export").
//
// Converts the monitor's TraceRing (wall-clock dispatch spans) plus the
// audit journal's span tree (per-record causal events) into the Chrome
// trace-event JSON format, loadable in chrome://tracing / Perfetto:
//
//  - pid 1 "tyche monitor (dispatch)": one complete ("X") slice per trace
//    entry, tid = core, ts/dur from the entry's steady-clock start and
//    duration. Entries with no start timestamp (hand-built in tests, or
//    recorded before PR 6) are laid out synthetically by sequence number.
//  - journal records whose span matches a dispatch slice become instant
//    ("i") events nested inside that slice's interval, so the cascade a
//    revoke produced reads as child ticks under its dispatch span.
//  - pid 2 "tyche audit journal": records with no matching dispatch slice
//    (direct monitor calls, boot-time minting) on the simulated-cycle
//    timeline, ts = tick.
//
// The matching parser below round-trips the exporter's output; tests use it
// to validate the schema and tools/trace_export uses it as a self-check.

#ifndef SRC_SUPPORT_TRACE_EXPORT_H_
#define SRC_SUPPORT_TRACE_EXPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/support/journal.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace tyche {

// A profiler exemplar to join into the timeline: the slowest sample of one
// (op, phase) cell, placed as a global instant event. `span` links it to the
// dispatch slice it was recorded under; `ts_ns` is the steady-clock stamp,
// comparable to TraceEntry::start_ns.
struct TraceExemplarMark {
  std::string name;        // e.g. "slowest kRevoke/journal"
  uint64_t span = 0;       // owning dispatch span id (0 = none)
  uint64_t ts_ns = 0;      // steady-clock ns when the sample was recorded
  uint64_t duration_ns = 0;  // the sample itself, surfaced in args
};

// Renders the trace-event JSON. `op_name` names dispatch ops (ApiOp values),
// `event_name` names journal events (JournalEvent values); both must be
// callable (the tool passes the monitor's tables). `exemplars` (optional)
// are joined as pid-1 instant events: placed inside the owning dispatch
// slice when its span is still in the ring, at their real steady-clock
// position otherwise, and dropped when neither placement is comparable.
std::string ExportChromeTrace(const std::vector<TraceEntry>& trace,
                              const std::vector<JournalRecord>& records,
                              const std::function<std::string(uint16_t)>& op_name,
                              const std::function<std::string(uint8_t)>& event_name,
                              const std::vector<TraceExemplarMark>& exemplars = {});

// One event as the round-trip parser sees it. Only the schema-mandated
// fields plus the span argument the exporter emits.
struct ParsedTraceEvent {
  std::string name;
  std::string phase;   // "X", "i", "M"
  double ts = 0;       // microseconds
  double dur = 0;      // microseconds (complete events)
  int64_t pid = -1;
  int64_t tid = -1;
  uint64_t span = 0;   // args.span when present
};

// Parses a trace-event JSON document produced by ExportChromeTrace (object
// format with a "traceEvents" array). Validates the schema: every event
// must carry name/ph/ts/pid/tid, and "X" events a dur. Not a general JSON
// parser -- strict enough to catch exporter regressions, small enough to
// stay dependency-free.
Result<std::vector<ParsedTraceEvent>> ParseChromeTrace(const std::string& json);

}  // namespace tyche

#endif  // SRC_SUPPORT_TRACE_EXPORT_H_
