// Copyright 2026 The Tyche Reproduction Authors.
// Hash-committed snapshot container: the serialized form of the monitor's
// durable state, emitted at journal checkpoints and bound into the signed
// JournalCheckpoint by digest. The container is deliberately dumb — tagged
// sections of opaque bytes plus a trailing SHA-256 commitment — so the
// support layer needs no knowledge of capability or monitor types; the
// section encodings live with their owners (src/monitor/recovery.cc).
//
// Wire format:
//   magic "TYSN" | u32 version | u32 section_count
//   section_count x { u32 tag | u32 length | length bytes }
//   32-byte SHA-256 over every preceding byte (the commitment)
//
// Integrity story: the trailing commitment catches accidental corruption on
// its own; authenticity comes from the checkpoint signature over
// SnapshotDigest(bytes), which covers the commitment too. Flipping any bit
// of a snapshot therefore breaks BOTH the self-check and the signed binding.

#ifndef SRC_SUPPORT_SNAPSHOT_H_
#define SRC_SUPPORT_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/support/status.h"

namespace tyche {

// Digest a checkpoint binds: SHA-256 over the ENTIRE serialized snapshot
// (header, sections, and trailing commitment).
Digest SnapshotDigest(std::span<const uint8_t> bytes);

// Builds one section body. Little-endian scalars, length-prefixed strings —
// the same conventions as the journal wire format.
class SectionWriter {
 public:
  template <typename T>
  void Append(T value) {
    static_assert(std::is_integral_v<T>);
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  void AppendDigest(const Digest& digest) {
    bytes_.insert(bytes_.end(), digest.bytes.begin(), digest.bytes.end());
  }

  void AppendString(const std::string& value) {
    Append(static_cast<uint32_t>(value.size()));
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }

  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked cursor over one section body.
class SectionReader {
 public:
  explicit SectionReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_integral_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) {
      return false;
    }
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<T>(bytes_[pos_ + i]) << (8 * i));
    }
    *value = out;
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDigest(Digest* digest);
  bool ReadString(std::string* value);

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// Assembles a snapshot: sections are emitted in AddSection() order and the
// commitment is computed by Finish().
class SnapshotWriter {
 public:
  void AddSection(uint32_t tag, std::vector<uint8_t> body);
  std::vector<uint8_t> Finish() const;

 private:
  struct Section {
    uint32_t tag;
    std::vector<uint8_t> body;
  };
  std::vector<Section> sections_;
};

// Parses and self-verifies a snapshot. Sections are looked up by tag;
// duplicate tags are rejected at parse time.
class SnapshotView {
 public:
  static Result<SnapshotView> Parse(std::span<const uint8_t> bytes);

  // The section body for `tag`, or kNotFound.
  Result<std::span<const uint8_t>> Section(uint32_t tag) const;
  size_t section_count() const { return sections_.size(); }

 private:
  struct Entry {
    uint32_t tag;
    std::span<const uint8_t> body;
  };
  std::vector<Entry> sections_;
};

}  // namespace tyche

#endif  // SRC_SUPPORT_SNAPSHOT_H_
