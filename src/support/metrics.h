// Copyright 2026 The Tyche Reproduction Authors.
// Zero-dependency metrics registry for the monitor stack (DESIGN.md §6
// "Metrics & export").
//
// The fleet-observability contract: every signal the monitor produces --
// per-op call counts, transition/revocation totals, backend projection
// counters, journal chain length, lock contention, fault-injection hits --
// must be scrapeable as a Prometheus-style text snapshot without the
// instrumentation itself serializing cores. Two pieces deliver that:
//
//  - StripedCounter: a monotonic counter spread over kMetricStripes
//    cache-line-aligned cells. Each thread picks a stripe once (round-robin
//    at first use) and increments it with one relaxed fetch_add, so eight
//    dispatching cores never bounce a shared line. Reads sum the stripes --
//    monotonic but not linearizable, which is exactly what a scraper needs.
//  - MetricsRegistry: named families of counters, gauges, and histogram
//    views, each with optional labels. Native counters/gauges live in the
//    registry; signals owned elsewhere (backend stats, journal sizes, fault
//    hits) register PULL CALLBACKS so the registry never duplicates state.
//    ExportPrometheus() renders the whole surface in deterministic (sorted)
//    order with proper HELP/label escaping.
//
// Everything here is independent of the monitor's types: histogram views
// are exported through the plain HistogramSnapshot struct below, so
// telemetry.h can include this header (for the striped contention counters)
// without a cycle.

#ifndef SRC_SUPPORT_METRICS_H_
#define SRC_SUPPORT_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tyche {

// Stripe count: a power of two comfortably above the 8-core machines the
// testbed models, small enough that aggregation stays trivial.
inline constexpr size_t kMetricStripes = 16;

namespace metrics_internal {
// This thread's stripe id + 1; 0 means "not assigned yet". Constant-
// initialized on purpose: a zero-init thread_local has no per-access init
// guard, so the hot-path read below is a bare TLS load. Assignment (the
// round-robin fetch_add) happens once per thread, out of line.
extern thread_local size_t tls_stripe_plus1;
size_t AssignThisThreadStripe();  // returns stripe + 1 and caches it
}  // namespace metrics_internal

// Monotonic counter striped over per-thread cache-line-aligned cells.
// Add() is wait-free (one relaxed fetch_add on this thread's stripe);
// Value() sums the stripes.
class StripedCounter {
 public:
  StripedCounter() = default;
  StripedCounter(const StripedCounter&) = delete;
  StripedCounter& operator=(const StripedCounter&) = delete;

  void Add(uint64_t delta = 1) {
    cells_[ThisThreadStripe()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Per-stripe occupancy, for tests asserting that concurrent writers
  // actually spread over distinct lines instead of sharing one.
  std::array<uint64_t, kMetricStripes> StripeValues() const {
    std::array<uint64_t, kMetricStripes> values{};
    for (size_t i = 0; i < kMetricStripes; ++i) {
      values[i] = cells_[i].value.load(std::memory_order_relaxed);
    }
    return values;
  }

  void Reset() {
    for (Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  // Threads take consecutive stripe ids at first use, so up to
  // kMetricStripes concurrent threads never share a cell. Inline and
  // guard-free: the counter bump sits on the dispatch fast path, gated to
  // +10% of the telemetry-off boundary by bench_telemetry.
  static size_t ThisThreadStripe() {
    const size_t cached = metrics_internal::tls_stripe_plus1;
    if (cached != 0) [[likely]] {
      return cached - 1;
    }
    return metrics_internal::AssignThisThreadStripe() - 1;
  }

  std::array<Cell, kMetricStripes> cells_;
};

// A settable instantaneous value. Gauges are off the hot path (domain
// counts, config state), so a single atomic cell is enough.
class MetricGauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram rendered into the export: log2 (or any) bucket upper bounds
// with per-bucket counts, plus count/sum. Produced by a pull callback so
// the registry needs no knowledge of the histogram implementation.
struct HistogramSnapshot {
  // (inclusive upper bound, count in bucket) pairs, ascending. The exporter
  // emits cumulative counts and appends the +Inf bucket itself.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;
};

// label key/value pairs, rendered in the order given.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Prometheus text-format escaping (exposed for tests).
std::string PromEscapeHelp(const std::string& text);
std::string PromEscapeLabelValue(const std::string& text);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create a native striped counter / gauge child. The returned
  // pointer is stable for the registry's lifetime; hot paths cache it and
  // never touch the registry again.
  StripedCounter* AddCounter(const std::string& name, const std::string& help,
                             const MetricLabels& labels = {});
  MetricGauge* AddGauge(const std::string& name, const std::string& help,
                        const MetricLabels& labels = {});

  // Registers a pull callback for a signal owned elsewhere. `counter`
  // controls the TYPE line (counter vs gauge).
  void AddCallback(const std::string& name, const std::string& help, bool counter,
                   const MetricLabels& labels, std::function<uint64_t()> read);

  // Registers a histogram view; the callback snapshots the source histogram
  // at export time.
  void AddHistogram(const std::string& name, const std::string& help,
                    const MetricLabels& labels, std::function<HistogramSnapshot()> read);

  // Prometheus text exposition: families sorted by name, children in
  // registration order, HELP/TYPE once per family.
  std::string ExportPrometheus() const;

  // Every scalar series (histograms excluded) as (rendered series name,
  // value). `include_callbacks = false` restricts to native counters and
  // gauges, whose cells are atomic; the flight recorder uses that form
  // because it samples from dispatch threads while callback-backed state
  // (domain table, backend stats) may be mid-mutation under another lock.
  std::vector<std::pair<std::string, uint64_t>> ScalarValues(
      bool include_callbacks = true) const;

 private:
  struct Child {
    MetricLabels labels;
    std::unique_ptr<StripedCounter> counter;     // native counter
    std::unique_ptr<MetricGauge> gauge;          // native gauge
    std::function<uint64_t()> read;              // callback scalar
    std::function<HistogramSnapshot()> histogram;  // callback histogram
  };
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    std::string help;
    Type type = Type::kCounter;
    std::vector<Child> children;
  };

  Child* FindOrAddChild(const std::string& name, const std::string& help, Type type,
                        const MetricLabels& labels);

  mutable std::mutex mu_;  // guards families_ shape; cell updates are atomic
  std::map<std::string, Family> families_;
};

// Renders "name{k=\"v\",...}" (no labels -> bare name).
std::string RenderSeriesName(const std::string& name, const MetricLabels& labels);

}  // namespace tyche

#endif  // SRC_SUPPORT_METRICS_H_
