// Copyright 2026 The Tyche Reproduction Authors.

#include "src/support/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>

namespace tyche {

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string Micros(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

void EmitMetadata(std::ostringstream& out, bool* first, int64_t pid, int64_t tid,
                  const char* kind, const std::string& value) {
  if (!*first) {
    out << ",\n";
  }
  *first = false;
  out << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":";
  AppendJsonString(out, value);
  out << "}}";
}

struct SliceRef {
  double ts = 0;
  double dur = 0;
  int64_t tid = 0;
};

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEntry>& trace,
                              const std::vector<JournalRecord>& records,
                              const std::function<std::string(uint16_t)>& op_name,
                              const std::function<std::string(uint8_t)>& event_name,
                              const std::vector<TraceExemplarMark>& exemplars) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  EmitMetadata(out, &first, 1, 0, "process_name", "tyche monitor (dispatch)");
  EmitMetadata(out, &first, 2, 0, "process_name", "tyche audit journal (ticks)");

  // Timeline base: real steady-clock placement when every entry carries a
  // start timestamp, synthetic sequence layout otherwise (mixed placement
  // would interleave incomparable clocks).
  uint64_t base_ns = ~0ull;
  bool synthetic = trace.empty();
  for (const TraceEntry& entry : trace) {
    if (entry.start_ns == 0) {
      synthetic = true;
    } else {
      base_ns = std::min(base_ns, entry.start_ns);
    }
  }

  std::map<uint64_t, SliceRef> slice_by_span;
  double cursor = 0;
  for (const TraceEntry& entry : trace) {
    const double dur = std::max(static_cast<double>(entry.duration_ns) / 1000.0, 0.001);
    double ts;
    if (synthetic) {
      ts = cursor;
      cursor += dur + 0.1;
    } else {
      ts = static_cast<double>(entry.start_ns - base_ns) / 1000.0;
    }
    if (entry.span != 0) {
      slice_by_span[entry.span] = SliceRef{ts, dur, static_cast<int64_t>(entry.core)};
    }
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"name\":";
    AppendJsonString(out, op_name ? op_name(entry.op) : std::to_string(entry.op));
    out << ",\"ph\":\"X\",\"ts\":" << Micros(ts) << ",\"dur\":" << Micros(dur)
        << ",\"pid\":1,\"tid\":" << entry.core << ",\"args\":{\"span\":" << entry.span
        << ",\"seq\":" << entry.seq << ",\"domain\":" << entry.domain
        << ",\"error\":" << entry.error << ",\"args_digest\":\"0x" << std::hex
        << entry.args_digest << std::dec << "\"}}";
  }

  // Journal records: nested ticks inside the owning dispatch slice, or the
  // simulated-cycle timeline for spans with no dispatch slice in the ring.
  std::map<uint64_t, uint64_t> span_record_count;
  for (const JournalRecord& record : records) {
    span_record_count[record.span]++;
  }
  std::map<uint64_t, uint64_t> span_record_index;
  for (const JournalRecord& record : records) {
    const auto slice = slice_by_span.find(record.span);
    double ts;
    int64_t pid, tid;
    if (slice != slice_by_span.end()) {
      const uint64_t n = span_record_count[record.span];
      const uint64_t k = span_record_index[record.span]++;
      ts = slice->second.ts +
           slice->second.dur * static_cast<double>(k + 1) / static_cast<double>(n + 1);
      pid = 1;
      tid = slice->second.tid;
    } else {
      ts = static_cast<double>(record.tick) / 1000.0;
      pid = 2;
      tid = 0;
    }
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"name\":";
    AppendJsonString(out, event_name ? event_name(record.event)
                                     : std::to_string(record.event));
    out << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << Micros(ts) << ",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"span\":" << record.span
        << ",\"seq\":" << record.seq << ",\"domain\":" << record.domain
        << ",\"cap\":" << record.cap << ",\"result\":" << record.result << "}}";
  }

  // Profiler exemplars: the slowest (op, phase) samples as global instant
  // events, so a histogram outlier is clickable next to -- or inside -- the
  // dispatch slice that produced it. Slice placement wins (the span links
  // them even after the ring rotated past the real timestamp); real
  // steady-clock placement is the fallback when the timeline is not
  // synthetic; otherwise the mark has no comparable position and is dropped.
  for (const TraceExemplarMark& mark : exemplars) {
    double ts;
    int64_t tid;
    const auto slice = slice_by_span.find(mark.span);
    if (mark.span != 0 && slice != slice_by_span.end()) {
      ts = slice->second.ts + slice->second.dur / 2.0;
      tid = slice->second.tid;
    } else if (!synthetic && mark.ts_ns >= base_ns) {
      ts = static_cast<double>(mark.ts_ns - base_ns) / 1000.0;
      tid = 0;
    } else {
      continue;
    }
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"name\":";
    AppendJsonString(out, mark.name);
    out << ",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << Micros(ts) << ",\"pid\":1,\"tid\":"
        << tid << ",\"args\":{\"span\":" << mark.span << ",\"ns\":" << mark.duration_ns
        << "}}";
  }

  out << "\n]}\n";
  return out.str();
}

// ===== Round-trip parser =====

namespace {

// Minimal JSON DOM, just deep enough for the exporter's own output.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    TYCHE_ASSIGN_OR_RETURN(const JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Error(ErrorCode::kInvalidArgument,
                 "json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      TYCHE_ASSIGN_OR_RETURN(value.string, ParseString());
      return value;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            return Fail(std::string("unsupported escape \\") + escaped);
        }
      } else {
        out += c;
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    try {
      value.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("malformed number");
    }
    return value;
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return Fail("expected object");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipSpace();
      TYCHE_ASSIGN_OR_RETURN(const std::string key, ParseString());
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      TYCHE_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace(key, std::move(member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return Fail("expected array");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      TYCHE_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<ParsedTraceEvent>> ParseChromeTrace(const std::string& json) {
  JsonParser parser(json);
  TYCHE_ASSIGN_OR_RETURN(const JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Error(ErrorCode::kInvalidArgument, "trace document is not a JSON object");
  }
  const auto events_it = root.object.find("traceEvents");
  if (events_it == root.object.end() ||
      events_it->second.kind != JsonValue::Kind::kArray) {
    return Error(ErrorCode::kInvalidArgument, "missing traceEvents array");
  }
  std::vector<ParsedTraceEvent> events;
  for (const JsonValue& event : events_it->second.array) {
    if (event.kind != JsonValue::Kind::kObject) {
      return Error(ErrorCode::kInvalidArgument, "trace event is not an object");
    }
    ParsedTraceEvent parsed;
    const auto require = [&event](const char* key,
                                  JsonValue::Kind kind) -> Result<const JsonValue*> {
      const auto it = event.object.find(key);
      if (it == event.object.end() || it->second.kind != kind) {
        return Error(ErrorCode::kInvalidArgument,
                     std::string("trace event missing required field: ") + key);
      }
      return &it->second;
    };
    TYCHE_ASSIGN_OR_RETURN(const JsonValue* name, require("name", JsonValue::Kind::kString));
    TYCHE_ASSIGN_OR_RETURN(const JsonValue* phase, require("ph", JsonValue::Kind::kString));
    TYCHE_ASSIGN_OR_RETURN(const JsonValue* ts, require("ts", JsonValue::Kind::kNumber));
    TYCHE_ASSIGN_OR_RETURN(const JsonValue* pid, require("pid", JsonValue::Kind::kNumber));
    TYCHE_ASSIGN_OR_RETURN(const JsonValue* tid, require("tid", JsonValue::Kind::kNumber));
    parsed.name = name->string;
    parsed.phase = phase->string;
    parsed.ts = ts->number;
    parsed.pid = static_cast<int64_t>(pid->number);
    parsed.tid = static_cast<int64_t>(tid->number);
    if (parsed.phase == "X") {
      TYCHE_ASSIGN_OR_RETURN(const JsonValue* dur, require("dur", JsonValue::Kind::kNumber));
      parsed.dur = dur->number;
    }
    const auto args = event.object.find("args");
    if (args != event.object.end() && args->second.kind == JsonValue::Kind::kObject) {
      const auto span = args->second.object.find("span");
      if (span != args->second.object.end() &&
          span->second.kind == JsonValue::Kind::kNumber) {
        parsed.span = static_cast<uint64_t>(span->second.number);
      }
    }
    events.push_back(std::move(parsed));
  }
  return events;
}

}  // namespace tyche
