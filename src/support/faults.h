// Copyright 2026 The Tyche Reproduction Authors.
// Deterministic fault injection for the monitor's robustness tests.
//
// A FaultPlan names a set of injection sites and the occurrence at which each
// one fails (1-based: "the Nth time site S is reached, return error E").
// Sites are threaded through the hardware backends, the allocators, and the
// crypto layer via TYCHE_FAULT_POINT; when no plan is armed the hook costs a
// single relaxed atomic load and a predicted-not-taken branch, so production
// dispatch latency is unaffected (see bench/bench_faults.cc).
//
// Two modes beyond "armed":
//  - counting: every site reached increments a per-site counter without ever
//    failing. The sweep test uses this to learn how many occurrences a
//    workload produces, then replays the workload with the trigger set to the
//    first / middle / last occurrence of each site.
//  - seeded: FaultPlan::FromSeed derives one (site, occurrence) choice from a
//    PRNG seed and the observed counts, for randomized soak runs whose seed
//    is logged and replayable.

#ifndef SRC_SUPPORT_FAULTS_H_
#define SRC_SUPPORT_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace tyche {

// Canonical injection-site names. Tests enumerate AllFaultSites(); threading a
// new TYCHE_FAULT_POINT through the stack means adding its name here so the
// sweep picks it up.
namespace faults {
// Hardware substrate.
inline constexpr std::string_view kFrameAlloc = "hw.frame_alloc";
inline constexpr std::string_view kIommuAttach = "hw.iommu_attach";
// OS-side physical range allocator.
inline constexpr std::string_view kRangeAlloc = "os.range_alloc";
// Crypto layer (sealed-storage open path).
inline constexpr std::string_view kAeadOpen = "crypto.aead_open";
// VT-x / EPT backend.
inline constexpr std::string_view kVtxCreateContext = "vtx.create_context";
inline constexpr std::string_view kVtxSyncMemory = "vtx.sync_memory";
inline constexpr std::string_view kVtxAttachDevice = "vtx.attach_device";
inline constexpr std::string_view kVtxDetachDevice = "vtx.detach_device";
inline constexpr std::string_view kVtxBindCore = "vtx.bind_core";
// RISC-V PMP backend.
inline constexpr std::string_view kPmpCreateContext = "pmp.create_context";
inline constexpr std::string_view kPmpRecompile = "pmp.recompile";
inline constexpr std::string_view kPmpBindCore = "pmp.bind_core";
inline constexpr std::string_view kPmpSyncDevice = "pmp.sync_device";
inline constexpr std::string_view kPmpAttachDevice = "pmp.attach_device";
inline constexpr std::string_view kPmpDetachDevice = "pmp.detach_device";
// Capability engine: one per-root revoke inside a domain purge.
inline constexpr std::string_view kEnginePurgeRevoke = "engine.purge_revoke";
// Live-migration protocol stages (src/monitor/migration.cc). Each stage is a
// first-class site so the migration sweep can kill a migration at every
// point of the staged commit and assert rollback-to-source (or, after the
// commit point, completion on the destination).
inline constexpr std::string_view kMigrateFreeze = "migrate.freeze";
inline constexpr std::string_view kMigrateCapture = "migrate.capture";
inline constexpr std::string_view kMigrateTransfer = "migrate.transfer";
inline constexpr std::string_view kMigrateRestore = "migrate.restore";
inline constexpr std::string_view kMigrateResync = "migrate.resync";
inline constexpr std::string_view kMigrateCommit = "migrate.commit";
// Simulated lossy channel (src/tyche/channel.h LossyChannel). The transport
// CONSUMES these faults to lose / duplicate / delay a frame instead of
// surfacing them, so they exercise the retry/timeout/backoff path; the
// migration only fails if retries are exhausted.
inline constexpr std::string_view kChannelDrop = "channel.drop";
inline constexpr std::string_view kChannelDup = "channel.dup";
inline constexpr std::string_view kChannelReorder = "channel.reorder";
// Attestation-fleet sites (src/fleet/). node_crash is CONSUMED by a
// MonitorNode to stop serving mid-pump (the failure manifests to clients as
// timeouts, then breaker-driven failover); verify_timeout is CONSUMED by the
// front end to blackhole one in-flight response; breaker_probe is CONSUMED
// to fail a half-open recovery probe; cache_poison is CONSUMED by a node to
// flip one byte of an outbound serialized report (the defense under test:
// the poisoned report must fail verification and never enter the cache);
// queue_overflow SURFACES as kOverloaded from admission.
inline constexpr std::string_view kFleetNodeCrash = "fleet.node_crash";
inline constexpr std::string_view kFleetVerifyTimeout = "fleet.verify_timeout";
inline constexpr std::string_view kFleetBreakerProbe = "fleet.breaker_probe";
inline constexpr std::string_view kFleetCachePoison = "fleet.cache_poison";
inline constexpr std::string_view kFleetQueueOverflow = "fleet.queue_overflow";
// batch_forge flips one byte of one report inside a batched drain: the
// defense under test is that batch verification's per-signature fallback
// attributes the forgery to the culprit while the rest of the batch is
// still served.
inline constexpr std::string_view kFleetBatchForge = "fleet.batch_forge";

// Silent-corruption sites for the invariant watchdog (src/monitor/watchdog.h).
// Deliberately NOT in AllFaultSites(): the sweep enumerates sites that
// surface typed errors through the normal paths, while these flip internal
// state without failing the operation -- exactly the class of bug only the
// online watchdog can catch.
inline constexpr std::string_view kJournalHeadTamper = "journal.head_tamper";
inline constexpr std::string_view kEngineOwnedDesync = "engine.owned_desync";
}  // namespace faults

// Every canonical site, in a stable order, for sweep enumeration.
const std::vector<std::string_view>& AllFaultSites();

// The error code a site reports when a plan does not override it. Chosen to
// mirror what the real hardware path would return (PMP exhaustion, IOMMU
// fault, allocator exhaustion, ...), so injected failures exercise the same
// error-handling edges as organic ones.
ErrorCode DefaultFaultCode(std::string_view site);

struct FaultSpec {
  std::string site;
  uint64_t trigger = 1;  // 1-based occurrence at which the site fails.
  ErrorCode code = ErrorCode::kInternal;
  bool repeat = false;  // Fail every occurrence >= trigger, not just one.
};

class FaultPlan {
 public:
  FaultPlan() = default;

  static FaultPlan Single(std::string_view site, uint64_t trigger,
                          ErrorCode code);
  static FaultPlan Single(std::string_view site, uint64_t trigger) {
    return Single(site, trigger, DefaultFaultCode(site));
  }

  // Derives one (site, occurrence) choice from `seed`, uniform over the
  // occurrence counts observed by a counting run. Deterministic: the same
  // seed and counts always produce the same plan.
  static FaultPlan FromSeed(uint64_t seed,
                            const std::map<std::string, uint64_t>& occurrences);

  FaultPlan& Add(FaultSpec spec);
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  std::string ToString() const;

 private:
  std::vector<FaultSpec> specs_;
};

// Process-global injector. Arm/Disarm and counting are mutex-guarded; the
// fast-path `active()` check is a relaxed load so disabled hooks stay free.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms `plan` and resets all per-site occurrence counters.
  void Arm(FaultPlan plan);
  // Disarms and clears counters; safe to call when nothing is armed.
  void Disarm();

  // Observation mode: sites count occurrences but never fail.
  void StartCounting();
  // Returns the per-site counts accumulated since StartCounting.
  std::map<std::string, uint64_t> StopCounting();

  // True when a plan is armed or counting is on. The only code that runs on
  // the production fast path.
  static bool active() { return active_.load(std::memory_order_relaxed); }

  // Slow path, reached only while active: bumps the site counter and returns
  // the planned error if this occurrence should fail.
  Status Check(std::string_view site);

  // Number of faults actually delivered since the last Arm().
  uint64_t fired_count() const;
  // Sites that delivered a fault since the last Arm(), in firing order.
  std::vector<std::string> fired_sites() const;
  // Site occurrences observed in the current window (armed or counting).
  uint64_t total_hits() const;
  // Faults delivered over the process lifetime, across Arm()/Disarm()
  // cycles. This is the counter the metrics registry scrapes: a fleet
  // dashboard wants "has injection ever fired here", not the per-plan view.
  uint64_t lifetime_fired_count() const {
    return lifetime_fired_.load(std::memory_order_relaxed);
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;
  void UpdateActiveLocked();

  static std::atomic<bool> active_;

  std::atomic<uint64_t> lifetime_fired_{0};
  mutable std::mutex mu_;
  bool armed_ = false;
  bool counting_ = false;
  FaultPlan plan_;
  std::map<std::string, uint64_t, std::less<>> hits_;
  std::vector<std::string> fired_;
};

// RAII arm/disarm for tests: guarantees the global injector is quiescent when
// the scope exits, even if an assertion throws.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultInjector::Instance().Arm(std::move(plan));
  }
  ~ScopedFaultPlan() { FaultInjector::Instance().Disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// Injection hook. Usable in any function returning Status or Result<T>
// (Result has an implicit Status constructor). `site_expr` should be one of
// the faults:: constants above.
#define TYCHE_FAULT_POINT(site_expr)                             \
  do {                                                           \
    if (::tyche::FaultInjector::active()) [[unlikely]] {         \
      ::tyche::Status _injected_fault =                          \
          ::tyche::FaultInjector::Instance().Check(site_expr);   \
      if (!_injected_fault.ok()) {                               \
        return _injected_fault;                                  \
      }                                                          \
    }                                                            \
  } while (0)

}  // namespace tyche

#endif  // SRC_SUPPORT_FAULTS_H_
