// Copyright 2026 The Tyche Reproduction Authors.
// Exponential retry backoff with seeded jitter, shared by the migration
// transfer stage and the fleet verification front end.
//
// Deterministic exponential backoff makes concurrent retriers fire in
// lockstep: every client that failed at t=0 retries at exactly t=base,
// t=3*base, t=7*base, ... and the congested resource sees the same
// synchronized burst each round. The fix is the standard "equal jitter"
// scheme: wait a uniform draw from [full/2, full], where full is the capped
// exponential base << (round-1). At least half the exponential spacing is
// preserved (so retries still space out), and two retriers with different
// PRNG streams de-synchronize with high probability from round one.
//
// Everything is deterministic given the Prng seed — the simulation's whole
// fault story is replayable from logged seeds, and backoff is no exception.

#ifndef SRC_SUPPORT_BACKOFF_H_
#define SRC_SUPPORT_BACKOFF_H_

#include <cstdint>

#include "src/support/prng.h"

namespace tyche {

struct BackoffPolicy {
  uint64_t base = 1024;     // wait units for the first retry (round 1)
  uint64_t cap = 1u << 20;  // upper bound on any single wait
};

// Jittered wait before retry round `round` (1-based). Uniform in
// [full/2, full] with full = min(cap, base << (round-1)); the shift
// saturates at the cap instead of overflowing.
inline uint64_t JitteredBackoff(Prng& prng, const BackoffPolicy& policy,
                                uint32_t round) {
  const uint32_t shift = round > 1 ? round - 1 : 0;
  uint64_t full = policy.cap;
  if (shift < 64 && (policy.base << shift) >> shift == policy.base) {
    full = policy.base << shift;
    if (full > policy.cap) {
      full = policy.cap;
    }
  }
  if (full == 0) {
    return 0;
  }
  return prng.Range(full / 2, full);
}

}  // namespace tyche

#endif  // SRC_SUPPORT_BACKOFF_H_
