// Copyright 2026 The Tyche Reproduction Authors.
// Conditional reader-writer lock guards for the monitor's concurrent
// dispatch mode (DESIGN.md §10 "Concurrency model").
//
// The monitor models one thread per core. In the default serial mode the
// dispatch fast path must stay at its ~40ns baseline, so the monitor-level
// locks are CONDITIONAL: each guard takes an `engage` flag (one relaxed
// atomic load at the call site) and degenerates to a predicted-not-taken
// branch when concurrent dispatch is off. The capability engine's internal
// lock, by contrast, is unconditional -- engine operations are never on the
// 40ns path.
//
// Both guards optionally count contention: when the uncontended try_lock
// fails, a striped metrics counter is bumped before blocking (per-thread
// cells, so the counting never adds its own cache-line contention).
// Telemetry surfaces these counters so scaling benchmarks can attribute
// flat curves to lock pressure instead of guessing.

#ifndef SRC_SUPPORT_LOCKING_H_
#define SRC_SUPPORT_LOCKING_H_

#include <cstdint>
#include <shared_mutex>

#include "src/support/metrics.h"

namespace tyche {

class ConditionalUniqueLock {
 public:
  ConditionalUniqueLock(std::shared_mutex& mu, bool engage,
                        StripedCounter* contended = nullptr)
      : mu_(engage ? &mu : nullptr) {
    if (mu_ == nullptr) {
      return;
    }
    if (mu_->try_lock()) {
      return;
    }
    if (contended != nullptr) {
      contended->Add();
    }
    mu_->lock();
  }

  ~ConditionalUniqueLock() {
    if (mu_ != nullptr) {
      mu_->unlock();
    }
  }

  ConditionalUniqueLock(const ConditionalUniqueLock&) = delete;
  ConditionalUniqueLock& operator=(const ConditionalUniqueLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

class ConditionalSharedLock {
 public:
  ConditionalSharedLock(std::shared_mutex& mu, bool engage,
                        StripedCounter* contended = nullptr)
      : mu_(engage ? &mu : nullptr) {
    if (mu_ == nullptr) {
      return;
    }
    if (mu_->try_lock_shared()) {
      return;
    }
    if (contended != nullptr) {
      contended->Add();
    }
    mu_->lock_shared();
  }

  ~ConditionalSharedLock() {
    if (mu_ != nullptr) {
      mu_->unlock_shared();
    }
  }

  ConditionalSharedLock(const ConditionalSharedLock&) = delete;
  ConditionalSharedLock& operator=(const ConditionalSharedLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

}  // namespace tyche

#endif  // SRC_SUPPORT_LOCKING_H_
