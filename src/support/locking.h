// Copyright 2026 The Tyche Reproduction Authors.
// Conditional reader-writer lock guards for the monitor's concurrent
// dispatch mode (DESIGN.md §10 "Concurrency model").
//
// The monitor models one thread per core. In the default serial mode the
// dispatch fast path must stay at its ~40ns baseline, so the monitor-level
// locks are CONDITIONAL: each guard takes an `engage` flag (one relaxed
// atomic load at the call site) and degenerates to a predicted-not-taken
// branch when concurrent dispatch is off. The capability engine's internal
// lock, by contrast, is unconditional -- engine operations are never on the
// 40ns path.
//
// Both guards ATTRIBUTE contention instead of leaving it to be inferred:
// when the uncontended try_lock fails, the guard (a) bumps a striped
// contended-acquisition counter, (b) measures the blocking time and adds it
// to a striped wait-nanoseconds counter, and (c) charges the wait to the
// caller's dispatch-profiler phase (api-lock wait vs shard-lock wait; see
// src/support/profiler.h). All of it happens only on the contended path --
// an uncontended acquisition stays a single try_lock, and the phase hook is
// a bare TLS load when no profiler window is open.

#ifndef SRC_SUPPORT_LOCKING_H_
#define SRC_SUPPORT_LOCKING_H_

#include <cstdint>
#include <shared_mutex>

#include "src/support/metrics.h"
#include "src/support/profiler.h"

namespace tyche {

class ConditionalUniqueLock {
 public:
  ConditionalUniqueLock(std::shared_mutex& mu, bool engage,
                        StripedCounter* contended = nullptr,
                        StripedCounter* wait_ns = nullptr,
                        DispatchPhase wait_phase = DispatchPhase::kShardLockWait)
      : mu_(engage ? &mu : nullptr) {
    if (mu_ == nullptr) {
      return;
    }
    if (mu_->try_lock()) {
      return;
    }
    if (contended != nullptr) {
      contended->Add();
    }
    const ScopedPhase wait(wait_phase);
    const uint64_t blocked_at = wait_ns != nullptr ? ProfilerNowNs() : 0;
    mu_->lock();
    if (wait_ns != nullptr) {
      wait_ns->Add(ProfilerNowNs() - blocked_at);
    }
  }

  ~ConditionalUniqueLock() {
    if (mu_ != nullptr) {
      mu_->unlock();
    }
  }

  ConditionalUniqueLock(const ConditionalUniqueLock&) = delete;
  ConditionalUniqueLock& operator=(const ConditionalUniqueLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

class ConditionalSharedLock {
 public:
  ConditionalSharedLock(std::shared_mutex& mu, bool engage,
                        StripedCounter* contended = nullptr,
                        StripedCounter* wait_ns = nullptr,
                        DispatchPhase wait_phase = DispatchPhase::kApiLockWait)
      : mu_(engage ? &mu : nullptr) {
    if (mu_ == nullptr) {
      return;
    }
    if (mu_->try_lock_shared()) {
      return;
    }
    if (contended != nullptr) {
      contended->Add();
    }
    const ScopedPhase wait(wait_phase);
    const uint64_t blocked_at = wait_ns != nullptr ? ProfilerNowNs() : 0;
    mu_->lock_shared();
    if (wait_ns != nullptr) {
      wait_ns->Add(ProfilerNowNs() - blocked_at);
    }
  }

  ~ConditionalSharedLock() {
    if (mu_ != nullptr) {
      mu_->unlock_shared();
    }
  }

  ConditionalSharedLock(const ConditionalSharedLock&) = delete;
  ConditionalSharedLock& operator=(const ConditionalSharedLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

}  // namespace tyche

#endif  // SRC_SUPPORT_LOCKING_H_
